# Empty dependencies file for bench_fig11_mgcfd_cirrus.
# This may be replaced when dependencies are built.
