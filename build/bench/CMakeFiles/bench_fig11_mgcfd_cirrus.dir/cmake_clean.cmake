file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mgcfd_cirrus.dir/bench_fig11_mgcfd_cirrus.cpp.o"
  "CMakeFiles/bench_fig11_mgcfd_cirrus.dir/bench_fig11_mgcfd_cirrus.cpp.o.d"
  "bench_fig11_mgcfd_cirrus"
  "bench_fig11_mgcfd_cirrus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mgcfd_cirrus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
