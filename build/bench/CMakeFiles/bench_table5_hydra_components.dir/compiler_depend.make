# Empty compiler generated dependencies file for bench_table5_hydra_components.
# This may be replaced when dependencies are built.
