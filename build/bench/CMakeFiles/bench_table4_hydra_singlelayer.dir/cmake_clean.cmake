file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hydra_singlelayer.dir/bench_table4_hydra_singlelayer.cpp.o"
  "CMakeFiles/bench_table4_hydra_singlelayer.dir/bench_table4_hydra_singlelayer.cpp.o.d"
  "bench_table4_hydra_singlelayer"
  "bench_table4_hydra_singlelayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hydra_singlelayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
