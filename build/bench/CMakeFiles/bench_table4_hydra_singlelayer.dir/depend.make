# Empty dependencies file for bench_table4_hydra_singlelayer.
# This may be replaced when dependencies are built.
