# Empty compiler generated dependencies file for bench_table3_hydra_multilayer.
# This may be replaced when dependencies are built.
