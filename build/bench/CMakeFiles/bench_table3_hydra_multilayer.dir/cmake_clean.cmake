file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hydra_multilayer.dir/bench_table3_hydra_multilayer.cpp.o"
  "CMakeFiles/bench_table3_hydra_multilayer.dir/bench_table3_hydra_multilayer.cpp.o.d"
  "bench_table3_hydra_multilayer"
  "bench_table3_hydra_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hydra_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
