# Empty dependencies file for bench_fig13_hydra_cirrus.
# This may be replaced when dependencies are built.
