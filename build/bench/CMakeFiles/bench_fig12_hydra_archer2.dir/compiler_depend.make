# Empty compiler generated dependencies file for bench_fig12_hydra_archer2.
# This may be replaced when dependencies are built.
