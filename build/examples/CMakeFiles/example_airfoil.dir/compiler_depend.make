# Empty compiler generated dependencies file for example_airfoil.
# This may be replaced when dependencies are built.
