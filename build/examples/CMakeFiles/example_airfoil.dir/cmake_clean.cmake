file(REMOVE_RECURSE
  "CMakeFiles/example_airfoil.dir/airfoil.cpp.o"
  "CMakeFiles/example_airfoil.dir/airfoil.cpp.o.d"
  "airfoil"
  "airfoil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_airfoil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
