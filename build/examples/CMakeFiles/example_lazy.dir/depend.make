# Empty dependencies file for example_lazy.
# This may be replaced when dependencies are built.
