file(REMOVE_RECURSE
  "CMakeFiles/example_lazy.dir/lazy.cpp.o"
  "CMakeFiles/example_lazy.dir/lazy.cpp.o.d"
  "lazy"
  "lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
