file(REMOVE_RECURSE
  "CMakeFiles/example_mgcfd_mini.dir/mgcfd_mini.cpp.o"
  "CMakeFiles/example_mgcfd_mini.dir/mgcfd_mini.cpp.o.d"
  "mgcfd_mini"
  "mgcfd_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mgcfd_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
