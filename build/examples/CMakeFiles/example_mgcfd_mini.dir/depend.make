# Empty dependencies file for example_mgcfd_mini.
# This may be replaced when dependencies are built.
