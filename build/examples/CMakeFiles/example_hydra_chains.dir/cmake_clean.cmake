file(REMOVE_RECURSE
  "CMakeFiles/example_hydra_chains.dir/hydra_chains.cpp.o"
  "CMakeFiles/example_hydra_chains.dir/hydra_chains.cpp.o.d"
  "hydra_chains"
  "hydra_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hydra_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
