# Empty compiler generated dependencies file for example_hydra_chains.
# This may be replaced when dependencies are built.
