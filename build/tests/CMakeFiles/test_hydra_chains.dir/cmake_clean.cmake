file(REMOVE_RECURSE
  "CMakeFiles/test_hydra_chains.dir/test_hydra_chains.cpp.o"
  "CMakeFiles/test_hydra_chains.dir/test_hydra_chains.cpp.o.d"
  "test_hydra_chains"
  "test_hydra_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hydra_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
