# Empty compiler generated dependencies file for test_hydra_chains.
# This may be replaced when dependencies are built.
