# Empty dependencies file for test_mgcfd.
# This may be replaced when dependencies are built.
