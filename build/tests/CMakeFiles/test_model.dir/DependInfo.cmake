
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/test_model.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_halo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
