file(REMOVE_RECURSE
  "CMakeFiles/test_chain_exec.dir/test_chain_exec.cpp.o"
  "CMakeFiles/test_chain_exec.dir/test_chain_exec.cpp.o.d"
  "test_chain_exec"
  "test_chain_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
