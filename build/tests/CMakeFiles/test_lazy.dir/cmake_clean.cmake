file(REMOVE_RECURSE
  "CMakeFiles/test_lazy.dir/test_lazy.cpp.o"
  "CMakeFiles/test_lazy.dir/test_lazy.cpp.o.d"
  "test_lazy"
  "test_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
