
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/comm/collectives.cpp" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/collectives.cpp.o" "gcc" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/collectives.cpp.o.d"
  "/root/repo/src/op2ca/comm/comm.cpp" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/comm.cpp.o" "gcc" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/comm.cpp.o.d"
  "/root/repo/src/op2ca/comm/cost_model.cpp" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/cost_model.cpp.o" "gcc" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/cost_model.cpp.o.d"
  "/root/repo/src/op2ca/comm/transport.cpp" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/transport.cpp.o" "gcc" "src/CMakeFiles/op2ca_comm.dir/op2ca/comm/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
