file(REMOVE_RECURSE
  "libop2ca_comm.a"
)
