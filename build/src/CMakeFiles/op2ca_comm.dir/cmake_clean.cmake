file(REMOVE_RECURSE
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/collectives.cpp.o"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/collectives.cpp.o.d"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/comm.cpp.o"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/comm.cpp.o.d"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/cost_model.cpp.o"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/cost_model.cpp.o.d"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/transport.cpp.o"
  "CMakeFiles/op2ca_comm.dir/op2ca/comm/transport.cpp.o.d"
  "libop2ca_comm.a"
  "libop2ca_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
