# Empty dependencies file for op2ca_comm.
# This may be replaced when dependencies are built.
