file(REMOVE_RECURSE
  "CMakeFiles/op2ca_core.dir/op2ca/core/chain.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/chain.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/chain_config.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/chain_config.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/dat.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/dat.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/executor_ca.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/executor_ca.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/executor_op2.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/executor_op2.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/inspector.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/inspector.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/par_loop.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/par_loop.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/runtime.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/runtime.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/slice.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/slice.cpp.o.d"
  "CMakeFiles/op2ca_core.dir/op2ca/core/world.cpp.o"
  "CMakeFiles/op2ca_core.dir/op2ca/core/world.cpp.o.d"
  "libop2ca_core.a"
  "libop2ca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
