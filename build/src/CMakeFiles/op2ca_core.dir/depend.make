# Empty dependencies file for op2ca_core.
# This may be replaced when dependencies are built.
