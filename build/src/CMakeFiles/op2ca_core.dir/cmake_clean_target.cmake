file(REMOVE_RECURSE
  "libop2ca_core.a"
)
