
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/core/chain.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/chain.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/chain.cpp.o.d"
  "/root/repo/src/op2ca/core/chain_config.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/chain_config.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/chain_config.cpp.o.d"
  "/root/repo/src/op2ca/core/dat.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/dat.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/dat.cpp.o.d"
  "/root/repo/src/op2ca/core/executor_ca.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/executor_ca.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/executor_ca.cpp.o.d"
  "/root/repo/src/op2ca/core/executor_op2.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/executor_op2.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/executor_op2.cpp.o.d"
  "/root/repo/src/op2ca/core/inspector.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/inspector.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/inspector.cpp.o.d"
  "/root/repo/src/op2ca/core/par_loop.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/par_loop.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/par_loop.cpp.o.d"
  "/root/repo/src/op2ca/core/runtime.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/runtime.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/runtime.cpp.o.d"
  "/root/repo/src/op2ca/core/slice.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/slice.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/slice.cpp.o.d"
  "/root/repo/src/op2ca/core/world.cpp" "src/CMakeFiles/op2ca_core.dir/op2ca/core/world.cpp.o" "gcc" "src/CMakeFiles/op2ca_core.dir/op2ca/core/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_halo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
