file(REMOVE_RECURSE
  "libop2ca_partition.a"
)
