
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/partition/block.cpp" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/block.cpp.o" "gcc" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/block.cpp.o.d"
  "/root/repo/src/op2ca/partition/kway.cpp" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/kway.cpp.o" "gcc" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/kway.cpp.o.d"
  "/root/repo/src/op2ca/partition/partition.cpp" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/partition.cpp.o" "gcc" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/partition.cpp.o.d"
  "/root/repo/src/op2ca/partition/quality.cpp" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/quality.cpp.o" "gcc" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/quality.cpp.o.d"
  "/root/repo/src/op2ca/partition/rib.cpp" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/rib.cpp.o" "gcc" "src/CMakeFiles/op2ca_partition.dir/op2ca/partition/rib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
