file(REMOVE_RECURSE
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/block.cpp.o"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/block.cpp.o.d"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/kway.cpp.o"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/kway.cpp.o.d"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/partition.cpp.o"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/partition.cpp.o.d"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/quality.cpp.o"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/quality.cpp.o.d"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/rib.cpp.o"
  "CMakeFiles/op2ca_partition.dir/op2ca/partition/rib.cpp.o.d"
  "libop2ca_partition.a"
  "libop2ca_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
