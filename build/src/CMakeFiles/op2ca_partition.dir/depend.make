# Empty dependencies file for op2ca_partition.
# This may be replaced when dependencies are built.
