file(REMOVE_RECURSE
  "libop2ca_model.a"
)
