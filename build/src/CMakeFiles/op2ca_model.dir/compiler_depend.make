# Empty compiler generated dependencies file for op2ca_model.
# This may be replaced when dependencies are built.
