file(REMOVE_RECURSE
  "CMakeFiles/op2ca_model.dir/op2ca/model/calibrate.cpp.o"
  "CMakeFiles/op2ca_model.dir/op2ca/model/calibrate.cpp.o.d"
  "CMakeFiles/op2ca_model.dir/op2ca/model/components.cpp.o"
  "CMakeFiles/op2ca_model.dir/op2ca/model/components.cpp.o.d"
  "CMakeFiles/op2ca_model.dir/op2ca/model/machine.cpp.o"
  "CMakeFiles/op2ca_model.dir/op2ca/model/machine.cpp.o.d"
  "CMakeFiles/op2ca_model.dir/op2ca/model/perf_model.cpp.o"
  "CMakeFiles/op2ca_model.dir/op2ca/model/perf_model.cpp.o.d"
  "libop2ca_model.a"
  "libop2ca_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
