# Empty dependencies file for op2ca_apps.
# This may be replaced when dependencies are built.
