file(REMOVE_RECURSE
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_app.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_app.cpp.o.d"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_chains.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_chains.cpp.o.d"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_mesh.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_mesh.cpp.o.d"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_app.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_app.cpp.o.d"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_mesh.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_mesh.cpp.o.d"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/synthetic_chain.cpp.o"
  "CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/synthetic_chain.cpp.o.d"
  "libop2ca_apps.a"
  "libop2ca_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
