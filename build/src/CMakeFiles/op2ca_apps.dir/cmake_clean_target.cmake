file(REMOVE_RECURSE
  "libop2ca_apps.a"
)
