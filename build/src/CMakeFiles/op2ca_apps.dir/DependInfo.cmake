
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/apps/hydra/hydra_app.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_app.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_app.cpp.o.d"
  "/root/repo/src/op2ca/apps/hydra/hydra_chains.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_chains.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_chains.cpp.o.d"
  "/root/repo/src/op2ca/apps/hydra/hydra_mesh.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_mesh.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/hydra/hydra_mesh.cpp.o.d"
  "/root/repo/src/op2ca/apps/mgcfd/mgcfd_app.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_app.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_app.cpp.o.d"
  "/root/repo/src/op2ca/apps/mgcfd/mgcfd_mesh.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_mesh.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/mgcfd_mesh.cpp.o.d"
  "/root/repo/src/op2ca/apps/mgcfd/synthetic_chain.cpp" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/synthetic_chain.cpp.o" "gcc" "src/CMakeFiles/op2ca_apps.dir/op2ca/apps/mgcfd/synthetic_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_halo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
