file(REMOVE_RECURSE
  "libop2ca_gpu.a"
)
