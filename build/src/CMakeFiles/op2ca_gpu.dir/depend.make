# Empty dependencies file for op2ca_gpu.
# This may be replaced when dependencies are built.
