file(REMOVE_RECURSE
  "CMakeFiles/op2ca_gpu.dir/op2ca/gpu/device.cpp.o"
  "CMakeFiles/op2ca_gpu.dir/op2ca/gpu/device.cpp.o.d"
  "CMakeFiles/op2ca_gpu.dir/op2ca/gpu/pipeline.cpp.o"
  "CMakeFiles/op2ca_gpu.dir/op2ca/gpu/pipeline.cpp.o.d"
  "libop2ca_gpu.a"
  "libop2ca_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
