file(REMOVE_RECURSE
  "libop2ca_util.a"
)
