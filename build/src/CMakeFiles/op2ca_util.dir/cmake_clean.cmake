file(REMOVE_RECURSE
  "CMakeFiles/op2ca_util.dir/op2ca/util/log.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/log.cpp.o.d"
  "CMakeFiles/op2ca_util.dir/op2ca/util/options.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/options.cpp.o.d"
  "CMakeFiles/op2ca_util.dir/op2ca/util/rng.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/rng.cpp.o.d"
  "CMakeFiles/op2ca_util.dir/op2ca/util/stats.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/stats.cpp.o.d"
  "CMakeFiles/op2ca_util.dir/op2ca/util/table.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/table.cpp.o.d"
  "CMakeFiles/op2ca_util.dir/op2ca/util/timer.cpp.o"
  "CMakeFiles/op2ca_util.dir/op2ca/util/timer.cpp.o.d"
  "libop2ca_util.a"
  "libop2ca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
