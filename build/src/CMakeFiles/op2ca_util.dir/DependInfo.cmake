
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/util/log.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/log.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/log.cpp.o.d"
  "/root/repo/src/op2ca/util/options.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/options.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/options.cpp.o.d"
  "/root/repo/src/op2ca/util/rng.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/rng.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/rng.cpp.o.d"
  "/root/repo/src/op2ca/util/stats.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/stats.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/stats.cpp.o.d"
  "/root/repo/src/op2ca/util/table.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/table.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/table.cpp.o.d"
  "/root/repo/src/op2ca/util/timer.cpp" "src/CMakeFiles/op2ca_util.dir/op2ca/util/timer.cpp.o" "gcc" "src/CMakeFiles/op2ca_util.dir/op2ca/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
