# Empty compiler generated dependencies file for op2ca_util.
# This may be replaced when dependencies are built.
