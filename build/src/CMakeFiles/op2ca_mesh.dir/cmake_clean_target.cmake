file(REMOVE_RECURSE
  "libop2ca_mesh.a"
)
