
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/mesh/adjacency.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/adjacency.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/adjacency.cpp.o.d"
  "/root/repo/src/op2ca/mesh/annulus.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/annulus.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/annulus.cpp.o.d"
  "/root/repo/src/op2ca/mesh/hex3d.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/hex3d.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/hex3d.cpp.o.d"
  "/root/repo/src/op2ca/mesh/mesh_def.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_def.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_def.cpp.o.d"
  "/root/repo/src/op2ca/mesh/mesh_io.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_io.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_io.cpp.o.d"
  "/root/repo/src/op2ca/mesh/multigrid.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/multigrid.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/multigrid.cpp.o.d"
  "/root/repo/src/op2ca/mesh/quad2d.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/quad2d.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/quad2d.cpp.o.d"
  "/root/repo/src/op2ca/mesh/vtk.cpp" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/vtk.cpp.o" "gcc" "src/CMakeFiles/op2ca_mesh.dir/op2ca/mesh/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
