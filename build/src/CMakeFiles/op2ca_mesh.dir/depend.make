# Empty dependencies file for op2ca_mesh.
# This may be replaced when dependencies are built.
