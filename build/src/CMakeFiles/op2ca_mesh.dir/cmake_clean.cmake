file(REMOVE_RECURSE
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/adjacency.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/adjacency.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/annulus.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/annulus.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/hex3d.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/hex3d.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_def.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_def.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_io.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/mesh_io.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/multigrid.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/multigrid.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/quad2d.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/quad2d.cpp.o.d"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/vtk.cpp.o"
  "CMakeFiles/op2ca_mesh.dir/op2ca/mesh/vtk.cpp.o.d"
  "libop2ca_mesh.a"
  "libop2ca_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
