file(REMOVE_RECURSE
  "libop2ca_halo.a"
)
