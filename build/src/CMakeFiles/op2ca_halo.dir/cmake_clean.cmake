file(REMOVE_RECURSE
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/builder.cpp.o"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/builder.cpp.o.d"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/grouped.cpp.o"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/grouped.cpp.o.d"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/halo_plan.cpp.o"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/halo_plan.cpp.o.d"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/renumber.cpp.o"
  "CMakeFiles/op2ca_halo.dir/op2ca/halo/renumber.cpp.o.d"
  "libop2ca_halo.a"
  "libop2ca_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op2ca_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
