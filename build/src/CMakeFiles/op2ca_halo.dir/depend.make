# Empty dependencies file for op2ca_halo.
# This may be replaced when dependencies are built.
