
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/op2ca/halo/builder.cpp" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/builder.cpp.o" "gcc" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/builder.cpp.o.d"
  "/root/repo/src/op2ca/halo/grouped.cpp" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/grouped.cpp.o" "gcc" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/grouped.cpp.o.d"
  "/root/repo/src/op2ca/halo/halo_plan.cpp" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/halo_plan.cpp.o" "gcc" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/halo_plan.cpp.o.d"
  "/root/repo/src/op2ca/halo/renumber.cpp" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/renumber.cpp.o" "gcc" "src/CMakeFiles/op2ca_halo.dir/op2ca/halo/renumber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/op2ca_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/op2ca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
