// Shared infrastructure for the table/figure benches.
//
// Scale handling: the paper's meshes are 8M and 24M nodes, run on up to
// 128 ARCHER2 nodes (16384 MPI ranks) and 16 Cirrus nodes (64 GPU
// ranks). By default both the mesh and the rank counts are scaled down
// by the same factor (16), which preserves each rank's partition size,
// surface-to-volume ratio and neighbour structure — the quantities the
// analytic model consumes. Pass --scale=1 for paper-size meshes (slow).
//
// Every bench prints paper-style tables through util/table and accepts:
//   --scale=N      divide mesh nodes and rank counts by N (default 16; use 64 for a quick pass)
//   --csv          emit CSV instead of aligned text
//   --calibrate=0  skip kernel calibration (use default costs)
//   --threads=N    model N shared-memory workers per rank (Machine::threads_per_rank)
//   --layout=K     dat storage layout {aos,soa,aosoa}; non-AoS enters the
//                  model as Machine::vector_width (see --vector-width)
//   --aosoa-block=N  AoSoA inner block (elements; power of two, default 8)
//   --vector-width=X override the SIMD speedup factor applied for a
//                  non-AoS layout (default: kDefaultLayoutSpeedup, the
//                  measured direct-loop A/B ratio from BENCH_simd.json)
//   --taskgraph    model dependency-driven block sweeps instead of
//                  colour barriers (Machine::taskgraph; executing
//                  benches also set WorldConfig::taskgraph)
//   --rails=N      stripe large messages across N network rails (0 =
//                  keep the machine preset's rail count; model benches
//                  override Machine::net.net_rails, executing benches
//                  set WorldConfig::transport.rails)
//   --persistent   pre-negotiate persistent channels per cached exchange
//                  plan (WorldConfig::transport.persistent)
//   --backend=K    transport backend {sim,mpi}; mpi is the real backend
//                  when built with -DOP2CA_MPI=ON, a protocol-identical
//                  in-process stub otherwise
//   --calibration=F  fold a bench_calibrate BENCH_calibration.json into
//                  the machine preset's network model (per-tier measured
//                  latency/bandwidth/rails replace the preset's guesses;
//                  an explicit --rails still wins over the measured rail
//                  count)
//   --device       device-resident execution (WorldConfig::device for
//                  executing benches; model benches replace the GPU
//                  preset's extra_latency_s lump with the derived
//                  Machine::DeviceTier Lambda)
//   --device-mode=K  host<->device transfer schedule {staged,pipelined}
//                  (pipelined overlaps PCIe with compute; default)
//   --pipeline-stages=N  software-pipeline depth for pipelined mode
//                  (default 3: H2D | compute | D2H)
//   --device-staging=N  bytes per pinned staging buffer bounced through
//                  the rank BufferPool (default 1 MiB)
//   --tile=N       temporal chain tiling: fuse N consecutive invocations
//                  of each chain into one CA epoch (model benches price
//                  CA with t_ca_chain_tiled; executing benches set
//                  WorldConfig::tile). Default 1 = per-invocation.
#pragma once

#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "op2ca/comm/channel.hpp"
#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/core/chain.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/gpu/device_space.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/model/calibrate.hpp"
#include "op2ca/model/components.hpp"
#include "op2ca/model/machine.hpp"
#include "op2ca/model/perf_model.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/table.hpp"

namespace op2ca::bench {

/// SIMD speedup assumed for a non-AoS layout when --vector-width is not
/// given: the measured direct-loop SoA/AoS ratio from BENCH_simd.json
/// (RCM hex3d, 4 threads) on the reference host. Calibrated kernel costs
/// are taken on AoS storage, so this enters the model's compute terms as
/// a factor > 1; communication terms are unaffected (same bytes, different
/// order on the wire).
inline constexpr double kDefaultLayoutSpeedup = 1.6;

struct BenchConfig {
  std::int64_t scale = 16;
  bool csv = false;
  bool calibrate = true;
  int threads = 1;
  mesh::LayoutKind layout = mesh::LayoutKind::AoS;
  int aosoa_block = 8;
  double vector_width = 0;  ///< 0 = derive from `layout`.
  bool taskgraph = false;
  int rails = 0;  ///< 0 = machine preset's rail count.
  bool persistent = false;
  std::string backend = "sim";
  std::string calibration;  ///< BENCH_calibration.json path; empty = presets.
  bool device = false;
  std::string device_mode = "pipelined";
  int pipeline_stages = 3;
  std::int64_t device_staging = 1 << 20;
  int tile = 1;

  static BenchConfig from_options(const Options& opt) {
    BenchConfig cfg;
    cfg.scale = opt.get_int("scale", 16);
    cfg.csv = opt.get_bool("csv", false);
    cfg.calibrate = opt.get_bool("calibrate", true);
    cfg.threads = static_cast<int>(opt.get_int("threads", 1));
    cfg.layout = mesh::layout_by_name(opt.get_string("layout", "aos"));
    cfg.aosoa_block = static_cast<int>(opt.get_int("aosoa-block", 8));
    cfg.vector_width = opt.get_double("vector-width", 0);
    cfg.taskgraph = opt.get_bool("taskgraph", false);
    cfg.rails = static_cast<int>(opt.get_int("rails", 0));
    cfg.persistent = opt.get_bool("persistent", false);
    cfg.backend = opt.get_string("backend", "sim");
    cfg.calibration = opt.get_string("calibration", "");
    cfg.device = opt.get_bool("device", false);
    cfg.device_mode = opt.get_string("device-mode", "pipelined");
    cfg.pipeline_stages =
        static_cast<int>(opt.get_int("pipeline-stages", 3));
    cfg.device_staging = opt.get_int("device-staging", 1 << 20);
    cfg.tile = static_cast<int>(opt.get_int("tile", 1));
    sim::backend_by_name(cfg.backend);  // validate the name early
    gpu::device_mode_by_name(cfg.device_mode);  // likewise
    OP2CA_REQUIRE(cfg.tile >= 1, "--tile must be >= 1");
    OP2CA_REQUIRE(cfg.scale >= 1, "--scale must be >= 1");
    OP2CA_REQUIRE(cfg.threads >= 1, "--threads must be >= 1");
    OP2CA_REQUIRE(cfg.vector_width >= 0, "--vector-width must be >= 0");
    OP2CA_REQUIRE(cfg.rails >= 0 && cfg.rails <= sim::kMaxRails,
                  "--rails must be in [0, 8]");
    OP2CA_REQUIRE(cfg.pipeline_stages >= 1,
                  "--pipeline-stages must be >= 1");
    OP2CA_REQUIRE(cfg.device_staging >= 4096,
                  "--device-staging must be >= 4096");
    return cfg;
  }

  /// Applies the intra-rank threading and layout knobs to a machine
  /// preset: compute terms scale by Machine::compute_speedup(), and a
  /// non-AoS layout divides them by Machine::vector_width.
  model::Machine apply_threads(model::Machine mach) const {
    mach.threads_per_rank = threads;
    mach.taskgraph = taskgraph;
    if (vector_width > 0)
      mach.vector_width = vector_width;
    else if (layout != mesh::LayoutKind::AoS)
      mach.vector_width = kDefaultLayoutSpeedup;
    // Measured wire parameters replace the preset's guesses first, so an
    // explicit --rails still wins over the calibrated rail count.
    if (!calibration.empty())
      sim::apply_calibration(sim::load_calibration(calibration), &mach.net);
    if (rails > 0) mach.net.net_rails = rails;
    if (device) {
      // Replace the preset's hand-tuned extra_latency_s lump with the
      // derived PCIe tier: an S-stage software pipeline exposes ~1/S of
      // each transfer, a fully-staged schedule exposes all of it.
      mach.device.enabled = true;
      mach.device.overlap =
          gpu::device_mode_by_name(device_mode) ==
                  gpu::DeviceConfig::Mode::Pipelined
              ? 1.0 - 1.0 / static_cast<double>(pipeline_stages)
              : 0.0;
    }
    return mach;
  }

  /// Transport knobs as a WorldConfig ingredient (benches that execute
  /// exchanges rather than evaluate the model).
  sim::TransportConfig transport_config() const {
    sim::TransportConfig tc;
    tc.backend = sim::backend_by_name(backend);
    if (rails > 0) tc.rails = rails;
    tc.persistent = persistent;
    return tc;
  }

  /// Layout knobs as a WorldConfig ingredient (benches that execute
  /// loops rather than evaluate the model).
  mesh::LayoutConfig layout_config() const {
    mesh::LayoutConfig lc;
    lc.kind = layout;
    lc.aosoa_block = aosoa_block;
    return lc;
  }

  /// Device knobs as a WorldConfig ingredient (benches that execute
  /// loops rather than evaluate the model).
  gpu::DeviceConfig device_config() const {
    gpu::DeviceConfig dc;
    dc.enabled = device;
    dc.mode = gpu::device_mode_by_name(device_mode);
    dc.pipeline_stages = pipeline_stages;
    dc.staging_bytes = static_cast<std::size_t>(device_staging);
    return dc;
  }
};

inline std::set<std::string> standard_option_names() {
  return {"scale",      "csv",     "calibrate",  "threads",
          "layout",     "aosoa-block", "vector-width", "taskgraph",
          "rails",      "persistent",  "backend",     "calibration",
          "device",     "device-mode", "pipeline-stages",
          "device-staging", "tile"};
}

/// Paper mesh sizes by label.
inline gidx_t mesh_nodes(const std::string& label) {
  if (label == "8M") return 8'000'000;
  if (label == "24M") return 24'000'000;
  raise("unknown mesh label: " + label);
}

/// Simulated rank count for `machine_nodes` cluster nodes under `scale`.
inline int scaled_ranks(const model::Machine& mach, int machine_nodes,
                        std::int64_t scale) {
  const std::int64_t ranks =
      static_cast<std::int64_t>(machine_nodes) * mach.ranks_per_node /
      scale;
  return static_cast<int>(std::max<std::int64_t>(ranks, 2));
}

inline gidx_t scaled_mesh(const std::string& label, std::int64_t scale) {
  return std::max<gidx_t>(mesh_nodes(label) / scale, 2000);
}

/// Emits a table in the configured format.
inline void emit(const BenchConfig& cfg, const Table& table) {
  if (cfg.csv) {
    std::cout << "# " << table.title() << '\n';
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

/// Builds a halo plan for a partition of `mesh`. Local maps are needed
/// by the sparse-tiling slice the component extractor runs.
inline halo::HaloPlan plan_for(const mesh::MeshDef& mesh,
                               const partition::Partition& part,
                               int depth) {
  halo::HaloPlanOptions opts;
  opts.depth = depth;
  opts.build_local_maps = true;
  return halo::build_halo_plan(mesh, part, opts);
}

/// Predicted OP2 and CA times for one chain execution on `mach`.
struct ChainPrediction {
  double t_op2 = 0;
  double t_ca = 0;
  double gain_pct = 0;
  model::ChainComponents components;
};

inline ChainPrediction predict_chain(
    const model::Machine& mach, const mesh::MeshDef& mesh,
    const halo::HaloPlan& plan, const core::ChainSpec& spec,
    const std::set<mesh::dat_id>& stale,
    const std::map<std::string, double>& host_g, int tile = 1) {
  const core::ChainAnalysis an = core::inspect_chain(mesh, spec);
  ChainPrediction out;
  out.components =
      model::extract_components(mesh, plan, spec, an, &stale);
  model::apply_kernel_costs(spec, host_g, mach.compute_scale,
                            &out.components);
  out.t_op2 = model::t_op2_chain(mach, out.components.op2_terms);
  out.t_ca = tile > 1 ? model::t_ca_chain_tiled(mach,
                                                out.components.ca_terms,
                                                tile)
                      : model::t_ca_chain(mach, out.components.ca_terms);
  out.gain_pct = model::gain_percent(out.t_op2, out.t_ca);
  return out;
}

}  // namespace op2ca::bench
