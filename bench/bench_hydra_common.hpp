// Shared Hydra bench pipeline: problem + chain specs per mesh label,
// RIB partitions/plans cached per rank count (Hydra's default
// partitioner), kernel-cost calibration over one full iteration.
#pragma once

#include <memory>

#include "bench_common.hpp"
#include "op2ca/apps/hydra/hydra.hpp"

namespace op2ca::bench {

class HydraBench {
public:
  HydraBench(const BenchConfig& cfg, const std::string& mesh_label)
      : cfg_(cfg),
        prob_(apps::hydra::build_problem(
            scaled_mesh(mesh_label, cfg.scale))),
        specs_(apps::hydra::chain_specs(prob_)) {
    if (cfg.calibrate) {
      apps::hydra::Problem small = apps::hydra::build_problem(20000);
      host_g_ = model::calibrate_loop_costs(
          std::move(small.an.mesh), [&](core::Runtime& rt) {
            const auto h = apps::hydra::resolve_handles(rt, small);
            apps::hydra::run_setup(rt, h);
            apps::hydra::run_iteration(rt, h);
          });
    }
  }

  const apps::hydra::Problem& problem() const { return prob_; }
  const std::map<std::string, core::ChainSpec>& specs() const {
    return specs_;
  }

  /// Dats the inter-iteration rk_update loop re-dirties.
  std::set<mesh::dat_id> rk_written() const {
    return {prob_.qo,  prob_.qp,  prob_.ql,   prob_.qrg,  prob_.qmu,
            prob_.vol, prob_.xp,  prob_.jacp, prob_.jaca, prob_.jacb};
  }

  ChainPrediction predict(const model::Machine& mach, int machine_nodes,
                          const std::string& chain) {
    const int nranks = scaled_ranks(mach, machine_nodes, cfg_.scale);
    const halo::HaloPlan& plan = plan_for_ranks(nranks);
    const core::ChainSpec& spec = specs_.at(chain);
    const std::set<mesh::dat_id> stale =
        model::steady_state_stale(spec, rk_written());
    return predict_chain(mach, prob_.an.mesh, plan, spec, stale, host_g(),
                         cfg_.tile);
  }

  int ranks_for(const model::Machine& mach, int machine_nodes) const {
    return scaled_ranks(mach, machine_nodes, cfg_.scale);
  }

  const std::map<std::string, double>& host_g() {
    if (host_g_.empty()) {
      // Fallback costs when calibration was skipped.
      for (const auto& [name, spec] : specs_)
        for (const auto& loop : spec.loops)
          host_g_[loop.name] = model::default_host_g();
      host_g_["rk_update"] = model::default_host_g();
    }
    return host_g_;
  }

private:
  const halo::HaloPlan& plan_for_ranks(int nranks) {
    // LRU-1: see bench_mgcfd_common.hpp. Callers should iterate node
    // counts in the inner-most loop order that maximizes reuse.
    if (nranks != cached_ranks_) {
      partition::Partition part = partition::partition_mesh(
          prob_.an.mesh, nranks, partition::Kind::RIB, prob_.an.nodes);
      plan_ = std::make_unique<halo::HaloPlan>(
          plan_for(prob_.an.mesh, part, /*depth=*/2));
      cached_ranks_ = nranks;
    }
    return *plan_;
  }

  BenchConfig cfg_;
  apps::hydra::Problem prob_;
  std::map<std::string, core::ChainSpec> specs_;
  std::map<std::string, double> host_g_;
  int cached_ranks_ = -1;
  std::unique_ptr<halo::HaloPlan> plan_;
};

}  // namespace op2ca::bench
