// Ablation — halo depth. Builds the multi-layer halo plan at depths
// 1..4 and reports how the import region (exec + nonexec elements) and
// the redundant-iteration volume grow per added layer: the memory and
// compute price of deeper communication avoidance.
#include "bench_mgcfd_common.hpp"
#include "op2ca/halo/grouped.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);

  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(
      bench::scaled_mesh("8M", cfg.scale * 4), 1);
  const mesh::MeshDef& m = prob.mg.mesh;
  const mesh::set_id nodes = *m.find_set("nodes_l0");
  const mesh::set_id edges = *m.find_set("edges_l0");

  Table t("Ablation — halo depth vs import volume (8M/" +
          std::to_string(cfg.scale * 4) + ", 64 ranks, kway)");
  t.set_header({"depth", "exec elems (max rank)", "nonexec elems",
                "import/owned %", "grouped msg [B] (2 dats)"});
  t.set_precision(2);

  const partition::Partition part = partition::partition_mesh(
      m, 64, partition::Kind::KWay, nodes);
  for (int depth = 1; depth <= 4; ++depth) {
    const halo::HaloPlan plan = bench::plan_for(m, part, depth);
    std::int64_t max_exec = 0, max_nonexec = 0;
    double max_ratio = 0;
    std::int64_t max_msg = 0;
    for (rank_t r = 0; r < 64; ++r) {
      std::int64_t exec = 0, nonexec = 0, owned = 0;
      for (mesh::set_id s = 0; s < m.num_sets(); ++s) {
        const halo::SetLayout& lay = plan.layout(r, s);
        owned += lay.num_owned;
        exec += lay.exec_end.back() - lay.num_owned;
        nonexec += lay.total - lay.exec_end.back();
      }
      max_exec = std::max(max_exec, exec);
      max_nonexec = std::max(max_nonexec, nonexec);
      if (owned > 0)
        max_ratio = std::max(
            max_ratio, 100.0 * static_cast<double>(exec + nonexec) /
                           static_cast<double>(owned));

      // Grouped message for the synthetic chain's two sync dats at this
      // depth (sres on nodes, spres on nodes — dim 2 each).
      const halo::RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
      halo::DatSyncSpec spec[2];
      for (auto& ds : spec) {
        ds.set = nodes;
        ds.dim = 2;
        ds.depth = depth;
        ds.data = nullptr;  // sizes only
      }
      for (const auto& [q, bytes] :
           halo::grouped_message_bytes(rp, {spec, 2}))
        max_msg = std::max(max_msg, bytes);
    }
    (void)edges;
    t.add_row({static_cast<std::int64_t>(depth), max_exec, max_nonexec,
               max_ratio, max_msg});
  }
  bench::emit(cfg, t);
  return 0;
}
