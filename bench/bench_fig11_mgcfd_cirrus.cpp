// Figure 11 — MG-CFD CA performance on the Cirrus GPU cluster: the same
// synthetic-chain sweep as Fig 10, on 1-16 nodes x 4 V100 ranks, with
// the GPU machine model (Section 3.3: staged host<->device copies fold
// into the effective latency Lambda; per-rank compute runs at GPU
// throughput).
//
// Cirrus rank counts are small (4-64), so they are NOT scaled down; only
// the mesh is. Per-rank partitions are 1/scale of the paper's, which
// shifts the compute/comm balance the same way for OP2 and CA (see
// EXPERIMENTS.md).
//
// Pass --device to replace the preset's hand-tuned extra-latency lump
// with the derived Machine::DeviceTier Lambda (pipelined transfers by
// default; --device-mode=staged models the fully-exposed PCIe regime).
#include "bench_mgcfd_common.hpp"

using namespace op2ca;

namespace {

/// A Cirrus machine whose ranks/node is pre-multiplied by the bench
/// scale so bench::scaled_ranks yields the unscaled GPU count.
model::Machine unscaled_cirrus(std::int64_t scale) {
  model::Machine m = model::cirrus_gpu();
  m.ranks_per_node = static_cast<int>(m.ranks_per_node * scale);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = cfg.apply_threads(unscaled_cirrus(cfg.scale));

  for (const std::string mesh : {"8M", "24M"}) {
    bench::MgcfdBench b(cfg, mesh);
    Table t("Fig 11 — MG-CFD runtime per timestep [ms], " + mesh +
            " mesh (scale 1/" + std::to_string(cfg.scale) +
            "), Cirrus GPU cluster" +
            (cfg.tile > 1 ? ", CA tiled x" + std::to_string(cfg.tile)
                          : ""));
    t.set_header({"#Nodes", "GPU ranks", "#Loops", "OP2 [ms]", "CA [ms]",
                  "Gain%"});
    t.set_precision(4);
    for (int nodes : {1, 2, 4, 8, 16}) {
      for (int loops : {2, 4, 8, 16, 32}) {
        const bench::ChainPrediction p =
            b.predict(mach, nodes, loops / 2);
        t.add_row({static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(b.ranks_for(mach, nodes)),
                   static_cast<std::int64_t>(loops), p.t_op2 * 1e3,
                   p.t_ca * 1e3, p.gain_pct});
      }
    }
    bench::emit(cfg, t);
  }
  return 0;
}
