// Table 4 — OP2-Hydra loop-chains with a single halo level (HE_l = 1):
// vflux, iflux and jacob. Prints, per loop, the iteration set, the dats
// the chain exchanges (the inspector's sync set restricted to dats the
// loop accesses) and the effective halo extension.
#include "bench_hydra_common.hpp"

using namespace op2ca;

namespace {

void print_chain(const bench::BenchConfig& cfg, const mesh::MeshDef& m,
                 const core::ChainSpec& spec) {
  const core::ChainAnalysis an = core::inspect_chain(m, spec);
  std::set<mesh::dat_id> synced;
  for (const core::DatSync& s : an.syncs) synced.insert(s.dat);

  Table t("Table 4 — loop-chain: " + spec.name +
          " (loop count = " + std::to_string(spec.loops.size()) + ")");
  t.set_header(
      {"Parallel loop", "Iteration set", "Halo exchanged datasets",
       "HE_l"});
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const core::LoopSpec& loop = spec.loops[l];
    std::string exchanged;
    for (const auto& [dat, mode] : core::merge_loop_accesses(loop)) {
      if (synced.count(dat) == 0) continue;
      if (!core::reads_value(mode.mode)) continue;
      if (!exchanged.empty()) exchanged += ", ";
      exchanged += m.dat(dat).name;
    }
    if (exchanged.empty()) exchanged = "-";
    t.add_row({loop.name, m.set(loop.set).name, exchanged,
               static_cast<std::int64_t>(an.he_alg3[l])});
  }
  bench::emit(cfg, t);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);

  apps::hydra::Problem prob = apps::hydra::build_problem(20000);
  const auto specs = apps::hydra::chain_specs(prob);
  print_chain(cfg, prob.an.mesh, specs.at("vflux"));
  print_chain(cfg, prob.an.mesh, specs.at("iflux"));
  print_chain(cfg, prob.an.mesh, specs.at("jacob"));
  return 0;
}
