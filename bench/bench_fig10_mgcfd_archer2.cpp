// Figure 10 — MG-CFD CA performance with the 8M and 24M meshes on
// ARCHER2 (CPU cluster): per-timestep runtime of the synthetic
// loop-chain, OP2 vs CA, over node counts {1..64} and loop counts
// {2, 4, 8, 16, 32}. Times come from Eqs (2)/(3) with calibrated kernel
// costs over the measured partition/halo quantities.
#include "bench_mgcfd_common.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = cfg.apply_threads(model::archer2());

  for (const std::string mesh : {"8M", "24M"}) {
    bench::MgcfdBench b(cfg, mesh);
    Table t("Fig 10 — MG-CFD runtime per timestep [ms], " + mesh +
            " mesh (scale 1/" + std::to_string(cfg.scale) + "), ARCHER2");
    t.set_header({"#Nodes", "ranks", "#Loops", "OP2 [ms]", "CA [ms]",
                  "Gain%"});
    t.set_precision(4);
    for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
      for (int loops : {2, 4, 8, 16, 32}) {
        const bench::ChainPrediction p =
            b.predict(mach, nodes, loops / 2);
        t.add_row({static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(b.ranks_for(mach, nodes)),
                   static_cast<std::int64_t>(loops), p.t_op2 * 1e3,
                   p.t_ca * 1e3, p.gain_pct});
      }
    }
    bench::emit(cfg, t);
  }
  return 0;
}
