// Shared MG-CFD bench pipeline: problem construction per mesh label,
// partition/plan caching per rank count, kernel-cost calibration, and
// per-configuration predictions for the synthetic loop-chain.
#pragma once

#include <memory>

#include "bench_common.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"

namespace op2ca::bench {

class MgcfdBench {
public:
  MgcfdBench(const BenchConfig& cfg, const std::string& mesh_label)
      : cfg_(cfg),
        prob_(apps::mgcfd::build_problem(scaled_mesh(mesh_label, cfg.scale),
                                         /*num_levels=*/3)) {
    if (cfg.calibrate) {
      apps::mgcfd::Problem small = apps::mgcfd::build_problem(20000, 3);
      host_g_ = model::calibrate_loop_costs(
          std::move(small.mg.mesh), [&](core::Runtime& rt) {
            const auto h = apps::mgcfd::resolve_handles(rt, small);
            apps::mgcfd::run_synthetic_chain(rt, h, 2);
          });
    } else {
      for (const std::string& name : apps::mgcfd::synthetic_loop_names())
        host_g_[name] = model::default_host_g();
    }
  }

  const apps::mgcfd::Problem& problem() const { return prob_; }

  /// Prediction for `nchains` chained pairs on `machine_nodes` cluster
  /// nodes of `mach`. Partitions/plans are cached per rank count.
  ChainPrediction predict(const model::Machine& mach, int machine_nodes,
                          int nchains) {
    const int nranks = scaled_ranks(mach, machine_nodes, cfg_.scale);
    const halo::HaloPlan& plan = plan_for_ranks(nranks);
    const core::ChainSpec spec =
        apps::mgcfd::synthetic_chain_spec(prob_, nchains);
    const std::set<mesh::dat_id> stale =
        model::steady_state_stale(spec, {prob_.spres});
    return predict_chain(mach, prob_.mg.mesh, plan, spec, stale, host_g_,
                         cfg_.tile);
  }

  int ranks_for(const model::Machine& mach, int machine_nodes) const {
    return scaled_ranks(mach, machine_nodes, cfg_.scale);
  }

private:
  const halo::HaloPlan& plan_for_ranks(int nranks) {
    // Keep only the most recent plan: plans carry local maps and the
    // sweep's node counts are visited in order, so an LRU-1 cache avoids
    // holding gigabytes of localized maps for every rank count at once.
    if (nranks != cached_ranks_) {
      // The paper uses ParMETIS k-way for the MG-CFD runs.
      partition::Partition part = partition::partition_mesh(
          prob_.mg.mesh, nranks, partition::Kind::KWay,
          prob_.mg.levels[0].nodes);
      plan_ = std::make_unique<halo::HaloPlan>(
          plan_for(prob_.mg.mesh, part, /*depth=*/2));
      cached_ranks_ = nranks;
    }
    return *plan_;
  }

  BenchConfig cfg_;
  apps::mgcfd::Problem prob_;
  std::map<std::string, double> host_g_;
  int cached_ranks_ = -1;
  std::unique_ptr<halo::HaloPlan> plan_;
};

}  // namespace op2ca::bench
