// Table 1 — Systems Specifications.
//
// The paper's Table 1 describes ARCHER2 and Cirrus. This bench prints
// the machine parameterisations the reproduction uses in their place:
// the latency/bandwidth/compute-scale values that drive Eqs (1)-(3),
// alongside the published hardware they stand in for.
#include "bench_common.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);

  Table t("Table 1 — System parameterisations (paper: ARCHER2 / Cirrus)");
  t.set_header({"property", "archer2", "cirrus"});
  const model::Machine a = model::archer2();
  const model::Machine c = model::cirrus_gpu();

  t.add_row({std::string("paper system"), std::string("HPE Cray EX"),
             std::string("SGI/HPE 8600 + 4xV100")});
  t.add_row({std::string("paper processor"),
             std::string("2x AMD EPYC 7742 (128 cores)"),
             std::string("2x Xeon 6248 + 4x V100-SXM2-16GB")});
  t.add_row({std::string("paper interconnect"),
             std::string("Slingshot 2x100 Gb/s"),
             std::string("FDR InfiniBand 54.5 Gb/s")});
  t.add_row({std::string("ranks/node"),
             static_cast<std::int64_t>(a.ranks_per_node),
             static_cast<std::int64_t>(c.ranks_per_node)});
  t.add_row({std::string("model latency L [us]"), a.net.latency_s * 1e6,
             c.net.latency_s * 1e6});
  t.add_row({std::string("model GPU staging Lambda extra [us]"),
             a.extra_latency_s * 1e6, c.extra_latency_s * 1e6});
  t.add_row({std::string("model bandwidth B [GB/s]"),
             a.net.bandwidth_Bps / 1e9, c.net.bandwidth_Bps / 1e9});
  t.add_row({std::string("model pack bandwidth [GB/s]"),
             a.net.pack_bandwidth_Bps / 1e9,
             c.net.pack_bandwidth_Bps / 1e9});
  t.add_row({std::string("compute scale vs host core"), a.compute_scale,
             c.compute_scale});
  bench::emit(cfg, t);
  return 0;
}
