// Ablation — message grouping and the GPU transfer pipeline.
//
// Part 1: real execution (simulated ranks) of the MG-CFD synthetic
// chain, baseline vs CA, measuring actual message counts, bytes and the
// largest message — the mechanism behind every table/figure gain.
//
// Part 2: the Section-3.3 GPU pipeline choice: staged host-relay
// transfers overlapping with compute vs GPUDirect-style transfers that
// serialize with kernels (the behaviour the paper observed).
#include "bench_mgcfd_common.hpp"
#include "op2ca/gpu/pipeline.hpp"

using namespace op2ca;

namespace {

void grouping_table(const bench::BenchConfig& cfg) {
  Table t("Ablation — grouped vs per-loop messages (real execution)");
  t.set_header({"#Loops", "mode", "msgs", "bytes", "max msg [B]",
                "core iters", "halo iters", "pack%", "core%", "wait%",
                "halo%"});
  for (int loops : {2, 8, 32}) {
    for (const bool ca : {false, true}) {
      apps::mgcfd::Problem prob = apps::mgcfd::build_problem(30000, 1);
      core::WorldConfig wc;
      wc.nranks = 16;
      wc.partitioner = partition::Kind::KWay;
      wc.halo_depth = 2;
      if (ca) wc.chains.enable("synthetic");
      core::World w(std::move(prob.mg.mesh), wc);
      w.run([&](core::Runtime& rt) {
        const auto h = apps::mgcfd::resolve_handles(rt, prob);
        // Two timesteps; meter the steady-state second one.
        apps::mgcfd::run_synthetic_chain(rt, h, loops / 2);
        w.clear_metrics();
        apps::mgcfd::run_synthetic_chain(rt, h, loops / 2);
      });
      const core::LoopMetrics m = w.chain_metrics().at("synthetic");
      const double wall = std::max(m.wall_seconds, 1e-12);
      t.add_row({static_cast<std::int64_t>(loops),
                 std::string(ca ? "CA" : "OP2"), m.msgs, m.bytes,
                 m.max_msg_bytes, m.core_iters, m.halo_iters,
                 100.0 * m.pack_seconds / wall,
                 100.0 * m.core_seconds / wall,
                 100.0 * m.wait_seconds / wall,
                 100.0 * m.halo_seconds / wall});
    }
  }
  bench::emit(cfg, t);
}

void pipeline_table(const bench::BenchConfig& cfg) {
  Table t("Ablation — staged pipeline vs GPUDirect-style transfers");
  t.set_header({"neighbours", "msg [KiB]", "compute [us]", "staged [us]",
                "gpudirect [us]", "staged wins"});
  t.set_precision(2);
  for (int neighbors : {4, 8, 16}) {
    for (std::int64_t kib : {16, 256}) {
      for (double compute_us : {0.0, 200.0, 2000.0}) {
        gpu::PipelineConfig pc;
        pc.net = model::cirrus_gpu().net;
        pc.compute_s = compute_us * 1e-6;
        std::vector<gpu::Transfer> transfers(
            static_cast<std::size_t>(neighbors),
            gpu::Transfer{kib * 1024});
        const double staged =
            gpu::staged_pipeline_makespan(pc, transfers);
        const double direct = gpu::gpudirect_makespan(pc, transfers);
        t.add_row({static_cast<std::int64_t>(neighbors), kib, compute_us,
                   staged * 1e6, direct * 1e6,
                   std::string(staged <= direct ? "yes" : "no")});
      }
    }
  }
  bench::emit(cfg, t);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  grouping_table(cfg);
  pipeline_table(cfg);
  return 0;
}
