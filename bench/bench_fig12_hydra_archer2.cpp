// Figure 12 — Hydra loop-chain runtimes on ARCHER2 (8M and 24M meshes):
// cumulative time of each chain over 20 main-loop iterations, OP2 vs
// CA, on 4..128 nodes. Hydra's default recursive-inertial-bisection
// partitioner is used, as in the paper.
#include "bench_hydra_common.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = cfg.apply_threads(model::archer2());
  constexpr int kIterations = 20;  // paper: 20 main-loop iterations

  for (const std::string mesh : {"8M", "24M"}) {
    bench::HydraBench b(cfg, mesh);
    Table t("Fig 12 — Hydra chain runtimes [ms] over 20 iterations, " +
            mesh + " mesh (scale 1/" + std::to_string(cfg.scale) +
            "), ARCHER2");
    t.set_header(
        {"chain", "#Nodes", "ranks", "OP2 [ms]", "CA [ms]", "Gain%"});
    t.set_precision(4);
    for (int nodes : {4, 16, 64, 128}) {
      for (const std::string& chain : apps::hydra::chain_names()) {
        const bench::ChainPrediction p = b.predict(mach, nodes, chain);
        t.add_row({chain, static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(b.ranks_for(mach, nodes)),
                   p.t_op2 * kIterations * 1e3,
                   p.t_ca * kIterations * 1e3, p.gain_pct});
      }
    }
    bench::emit(cfg, t);
  }
  return 0;
}
