// Microbenchmarks (google-benchmark): per-iteration kernel costs (the g
// of Eqs 1-3), halo pack/unpack throughput (the c of Eq 3), the simulated
// transport's point-to-point round-trip, and the hot-path comparison
// harness (run after the google benchmarks by the custom main) that
// measures batched region dispatch against the per-element dispatch it
// replaced and the persistent GroupedPlan pack+send against the
// allocate-and-copy style, writing BENCH_hotpath.json. Further custom
// sections write BENCH_locality.json, BENCH_simd.json,
// BENCH_transport.json, BENCH_gpu.json (device pipeline A/Bs) and
// BENCH_tiling.json (temporal chain tiling A/B).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "op2ca/apps/hydra/hydra_kernels.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/comm/comm.hpp"
#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/colouring.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/mesh/reorder.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/rng.hpp"
#include "op2ca/util/thread_pool.hpp"
#include "op2ca/util/timer.hpp"

namespace {

using namespace op2ca;

void BM_MgcfdFluxKernel(benchmark::State& state) {
  Rng rng(1);
  double q1[5], q2[5], ewt[3], r1[5] = {0}, r2[5] = {0};
  for (auto& v : q1) v = rng.next_range(0.5, 1.5);
  for (auto& v : q2) v = rng.next_range(0.5, 1.5);
  for (auto& v : ewt) v = rng.next_range(-0.5, 0.5);
  q1[4] = q2[4] = 2.5;
  for (auto _ : state) {
    apps::mgcfd::kernels::compute_flux_edge(q1, q2, ewt, r1, r2);
    benchmark::DoNotOptimize(r1);
    benchmark::DoNotOptimize(r2);
  }
}
BENCHMARK(BM_MgcfdFluxKernel);

void BM_SyntheticUpdateKernel(benchmark::State& state) {
  double res1[2] = {0}, res2[2] = {0}, p1[2] = {1, 2}, p2[2] = {3, 4};
  for (auto _ : state) {
    apps::mgcfd::kernels::synth_update(res1, res2, p1, p2);
    benchmark::DoNotOptimize(res1);
  }
}
BENCHMARK(BM_SyntheticUpdateKernel);

void BM_SyntheticFluxKernel(benchmark::State& state) {
  double f1[2] = {0}, f2[2] = {0}, r1[2] = {1, 2}, r2[2] = {3, 4},
         ewt[4] = {0.1, 0.2, 0.3, 0.4};
  for (auto _ : state) {
    apps::mgcfd::kernels::synth_edge_flux(f1, f2, r1, r2, ewt);
    benchmark::DoNotOptimize(f1);
  }
}
BENCHMARK(BM_SyntheticFluxKernel);

void BM_HydraVfluxKernel(benchmark::State& state) {
  Rng rng(2);
  double qp1[6], qp2[6], xp1[6], xp2[6], ql1[6], ql2[6];
  double mu1[6], mu2[6], rg1[6], rg2[6], r1[6] = {0}, r2[6] = {0};
  for (auto* arr : {qp1, qp2, xp1, xp2, ql1, ql2, mu1, mu2, rg1, rg2})
    for (int k = 0; k < 6; ++k) arr[k] = rng.next_range(0.5, 1.5);
  for (auto _ : state) {
    apps::hydra::kernels::vflux_edge(qp1, qp2, xp1, xp2, ql1, ql2, mu1,
                                     mu2, rg1, rg2, r1, r2);
    benchmark::DoNotOptimize(r1);
  }
}
BENCHMARK(BM_HydraVfluxKernel);

void BM_PackRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n * 6, 1.0);
  LIdxVec idx(n);
  for (std::size_t i = 0; i < n; ++i)
    idx[i] = static_cast<lidx_t>((i * 7) % n);
  for (auto _ : state) {
    op2ca::ByteBuf buf;
    halo::pack_rows(data.data(), 6, idx, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 6 * 8);
}
BENCHMARK(BM_PackRows)->Arg(256)->Arg(4096)->Arg(65536);

void BM_TransportPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  sim::Transport transport(2);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    sim::Comm c(transport, 1);
    while (!stop.load()) {
      sim::Message msg;
      if (!transport.try_match(1, 0, 0, &msg)) {
        std::this_thread::yield();
        continue;
      }
      c.isend(0, 1, msg.payload);
    }
  });
  sim::Comm c(transport, 0);
  op2ca::ByteBuf payload(bytes, std::byte{1});
  for (auto _ : state) {
    c.isend(1, 0, payload);
    op2ca::ByteBuf back;
    sim::Request r = c.irecv(1, 1, &back);
    c.wait(r);
    benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  // Flush a final message in case the echo thread is blocked; it polls,
  // so it exits on the flag.
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
}
BENCHMARK(BM_TransportPingPong)->Arg(64)->Arg(8192);

// ---------------------------------------------------------------------
// Hot-path comparison harness: timed A/B runs written to
// BENCH_hotpath.json (machine-readable; paths in ns/element and GB/s).
// ---------------------------------------------------------------------

/// Repeats `fn` until ~0.2 s elapse (after one warm-up call) and returns
/// seconds per call.
double time_per_call(const std::function<void()>& fn) {
  fn();  // warm-up
  int reps = 0;
  WallTimer t;
  do {
    fn();
    ++reps;
  } while (t.elapsed() < 0.2);
  return t.elapsed() / reps;
}

struct DispatchResult {
  double per_element_ns = 0;  ///< seed-style std::function per element.
  double batched_ns = 0;      ///< one region body per range.
  double speedup() const { return per_element_ns / batched_ns; }
};

/// Direct loop: two dim-2 direct args, the cheapest realistic kernel, so
/// the measurement isolates dispatch overhead.
DispatchResult bench_direct_dispatch() {
  namespace cd = core::detail;
  constexpr lidx_t kN = 1 << 17;
  std::vector<double> a(static_cast<std::size_t>(kN) * 2, 1.0);
  std::vector<double> b(static_cast<std::size_t>(kN) * 2, 2.0);
  const auto kernel = [](double* x, const double* y) {
    x[0] += 0.5 * y[0];
    x[1] += 0.25 * y[1];
  };
  const mesh::DatLayout aos2 =
      mesh::DatLayout::make(mesh::LayoutKind::AoS, 2, kN, 8);
  std::vector<cd::ResolvedArg> rargs(2);
  rargs[0].base = a.data();
  rargs[0].bind_layout(aos2);
  rargs[1].base = b.data();
  rargs[1].bind_layout(aos2);

  // Seed-style: one type-erased call per element, args resolved from the
  // vector inside every call.
  std::function<void(lidx_t)> element = [kernel, rargs](lidx_t i) {
    kernel(cd::resolve_arg(rargs[0], i, false),
           cd::resolve_arg(rargs[1], i, false));
  };
  // Batched: one type-erased call per region; resolution hoisted.
  std::function<void(lidx_t, lidx_t)> region =
      [kernel, rargs](lidx_t begin, lidx_t end) {
        cd::invoke_kernel_range(kernel, rargs, begin, end, false, "bench",
                                std::make_index_sequence<2>{});
      };

  DispatchResult r;
  r.per_element_ns = 1e9 / kN * time_per_call([&] {
                       for (lidx_t i = 0; i < kN; ++i) element(i);
                     });
  r.batched_ns = 1e9 / kN * time_per_call([&] { region(0, kN); });
  return r;
}

/// Indirect loop: the synthetic update pattern (two INC + two READ args
/// through an arity-2 map).
DispatchResult bench_indirect_dispatch() {
  namespace cd = core::detail;
  constexpr lidx_t kEdges = 1 << 17;
  constexpr lidx_t kNodes = 1 << 16;
  Rng rng(3);
  std::vector<double> res(static_cast<std::size_t>(kNodes) * 2, 0.0);
  std::vector<double> pres(static_cast<std::size_t>(kNodes) * 2, 1.0);
  std::vector<lidx_t> map(static_cast<std::size_t>(kEdges) * 2);
  for (auto& t : map)
    t = static_cast<lidx_t>(rng.next_int(0, kNodes - 1));

  const auto kernel = apps::mgcfd::kernels::synth_update;
  const mesh::DatLayout aos2 =
      mesh::DatLayout::make(mesh::LayoutKind::AoS, 2, kNodes, 8);
  std::vector<cd::ResolvedArg> rargs(4);
  for (int j = 0; j < 4; ++j) {
    rargs[static_cast<std::size_t>(j)].base =
        j < 2 ? res.data() : pres.data();
    rargs[static_cast<std::size_t>(j)].map_targets = map.data();
    rargs[static_cast<std::size_t>(j)].arity = 2;
    rargs[static_cast<std::size_t>(j)].idx = j % 2;
    rargs[static_cast<std::size_t>(j)].bind_layout(aos2);
  }

  std::function<void(lidx_t)> element = [kernel, rargs](lidx_t i) {
    kernel(cd::resolve_arg(rargs[0], i, false),
           cd::resolve_arg(rargs[1], i, false),
           cd::resolve_arg(rargs[2], i, false),
           cd::resolve_arg(rargs[3], i, false));
  };
  std::function<void(lidx_t, lidx_t)> region =
      [kernel, rargs](lidx_t begin, lidx_t end) {
        cd::invoke_kernel_range(kernel, rargs, begin, end, false, "bench",
                                std::make_index_sequence<4>{});
      };

  DispatchResult r;
  r.per_element_ns = 1e9 / kEdges * time_per_call([&] {
                       for (lidx_t i = 0; i < kEdges; ++i) element(i);
                     });
  r.batched_ns = 1e9 / kEdges * time_per_call([&] { region(0, kEdges); });
  return r;
}

struct GroupedResult {
  double seed_pack_send_gbps = 0;  ///< alloc + pack + copying isend.
  double plan_pack_send_gbps = 0;  ///< pooled buffer + plan pack + move.
  double ref_unpack_gbps = 0;
  double plan_unpack_gbps = 0;
  double pack_send_speedup() const {
    return plan_pack_send_gbps / seed_pack_send_gbps;
  }
};

/// Grouped exchange over a real quad2d halo plan: rank 0 packs and sends
/// its grouped message to every neighbour; the neighbour side drains the
/// mailbox (and, on the pooled path, returns the buffer, emulating the
/// steady-state recycling loop).
GroupedResult bench_grouped_pack() {
  mesh::Quad2D q = mesh::make_quad2d(96, 96);
  const partition::Partition part = partition::partition_mesh(
      q.mesh, 4, partition::Kind::RIB, q.nodes);
  halo::HaloPlanOptions opts;
  opts.depth = 2;
  const halo::HaloPlan plan = build_halo_plan(q.mesh, part, opts);
  const halo::RankPlan& rp = plan.ranks[0];

  const auto& lay = plan.layout(0, q.nodes);
  const auto& cl = plan.layout(0, q.cells);
  std::vector<double> nodal(static_cast<std::size_t>(lay.total) * 5, 1.5);
  std::vector<double> cell(static_cast<std::size_t>(cl.total) * 2, -2.5);
  std::vector<halo::DatSyncSpec> specs = {
      {q.nodes, 5, 2, nodal.data()}, {q.cells, 2, 1, cell.data()}};
  const halo::GroupedPlan gp = halo::build_grouped_plan(rp, specs);

  std::int64_t bytes_per_round = 0;
  for (const auto& side : gp.sides)
    bytes_per_round += static_cast<std::int64_t>(side.send_bytes);
  if (bytes_per_round == 0) return {};

  sim::Transport transport(4);
  sim::Comm c0(transport, 0);
  GroupedResult r;

  // Seed style: fresh allocation per message, payload copied into the
  // mailbox from a span.
  const double seed_s = time_per_call([&] {
    std::vector<sim::Request> reqs;
    for (const auto& side : gp.sides) {
      if (side.send_bytes == 0) continue;
      op2ca::ByteBuf buf = halo::pack_grouped(rp, side.q, specs);
      reqs.push_back(
          c0.isend(side.q, 1, std::span<const std::byte>(buf)));
    }
    for (auto& req : reqs) c0.wait(req);
    for (const auto& side : gp.sides) {  // drain
      if (side.send_bytes == 0) continue;
      sim::Message msg;
      while (!transport.try_match(side.q, 0, 1, &msg)) {}
    }
  });
  r.seed_pack_send_gbps = static_cast<double>(bytes_per_round) / seed_s / 1e9;

  // Plan + pool + zero-copy: steady state allocates nothing; the drain
  // releases each payload back into the pool like the symmetric exchange
  // would.
  BufferPool pool;
  const double plan_s = time_per_call([&] {
    std::vector<sim::Request> reqs;
    for (const auto& side : gp.sides) {
      if (side.send_bytes == 0) continue;
      op2ca::ByteBuf buf = pool.take(side.send_bytes);
      halo::pack_grouped(side, specs, buf.data());
      reqs.push_back(c0.isend(side.q, 2, std::move(buf)));
    }
    for (auto& req : reqs) c0.wait(req);
    for (const auto& side : gp.sides) {
      if (side.send_bytes == 0) continue;
      sim::Message msg;
      while (!transport.try_match(side.q, 0, 2, &msg)) {}
      pool.release(std::move(msg.payload));
    }
  });
  r.plan_pack_send_gbps = static_cast<double>(bytes_per_round) / plan_s / 1e9;

  // Unpack: reference map-walk vs plan scatter, same payloads.
  std::vector<std::pair<const halo::GroupedPlan::Side*,
                        op2ca::ByteBuf>> payloads;
  std::int64_t recv_bytes = 0;
  for (const auto& side : gp.sides) {
    if (side.recv_bytes == 0) continue;
    // The inbound payload from q is what q exports to us; its contents
    // don't matter for throughput, only its size.
    payloads.emplace_back(&side, op2ca::ByteBuf(side.recv_bytes));
    recv_bytes += static_cast<std::int64_t>(side.recv_bytes);
  }
  const double ref_s = time_per_call([&] {
    for (const auto& [side, payload] : payloads)
      halo::unpack_grouped(rp, side->q, specs, payload);
  });
  const double plan_unpack_s = time_per_call([&] {
    for (const auto& [side, payload] : payloads)
      halo::unpack_grouped(*side, specs, payload);
  });
  r.ref_unpack_gbps = static_cast<double>(recv_bytes) / ref_s / 1e9;
  r.plan_unpack_gbps =
      static_cast<double>(recv_bytes) / plan_unpack_s / 1e9;
  return r;
}

struct ThreadedSweepResult {
  int colours = 0;
  double serial_region_ns = 0;  ///< one region body over the whole range.
  struct Width {
    int threads = 1;
    double sweep_ns = 0;  ///< colour-ordered sweep at this pool width.
    double speedup = 0;   ///< serial_region_ns / sweep_ns.
  };
  std::vector<Width> widths;
};

/// Colour-ordered threaded sweep of the indirect-INC update loop vs the
/// single serial region it replaces: the executors' threads_per_rank>1
/// path, reproduced standalone over the same synthetic edge->node data
/// as bench_indirect_dispatch. On a single-core host widths > 1 mostly
/// measure colour-barrier overhead; the JSON records whatever this host
/// delivers.
ThreadedSweepResult bench_threaded_sweep() {
  namespace cd = core::detail;
  constexpr lidx_t kEdges = 1 << 17;
  constexpr lidx_t kNodes = 1 << 16;
  Rng rng(4);
  std::vector<double> res(static_cast<std::size_t>(kNodes) * 2, 0.0);
  std::vector<double> pres(static_cast<std::size_t>(kNodes) * 2, 1.0);
  std::vector<lidx_t> map(static_cast<std::size_t>(kEdges) * 2);
  for (auto& t : map)
    t = static_cast<lidx_t>(rng.next_int(0, kNodes - 1));

  const auto kernel = apps::mgcfd::kernels::synth_update;
  const mesh::DatLayout aos2 =
      mesh::DatLayout::make(mesh::LayoutKind::AoS, 2, kNodes, 8);
  std::vector<cd::ResolvedArg> rargs(4);
  for (int j = 0; j < 4; ++j) {
    rargs[static_cast<std::size_t>(j)].base =
        j < 2 ? res.data() : pres.data();
    rargs[static_cast<std::size_t>(j)].map_targets = map.data();
    rargs[static_cast<std::size_t>(j)].arity = 2;
    rargs[static_cast<std::size_t>(j)].idx = j % 2;
    rargs[static_cast<std::size_t>(j)].bind_layout(aos2);
  }
  const auto region = [kernel, &rargs](lidx_t begin, lidx_t end) {
    cd::invoke_kernel_range(kernel, rargs, begin, end, false, "bench",
                            std::make_index_sequence<4>{});
  };
  const auto list = [kernel, &rargs](const lidx_t* idx, std::size_t n) {
    cd::invoke_kernel_list(kernel, rargs, idx, n, false, "bench",
                           std::make_index_sequence<4>{});
  };

  const mesh::ColourMapView view{map.data(), 2, kEdges, kNodes};
  const mesh::Colouring col = mesh::greedy_colouring(kEdges, {&view, 1});

  ThreadedSweepResult r;
  r.colours = col.num_colours;
  r.serial_region_ns =
      1e9 / kEdges * time_per_call([&] { region(0, kEdges); });

  for (int threads : {1, 2, 4}) {
    util::ThreadPool pool(threads);
    const auto nt = static_cast<std::size_t>(pool.threads());
    const double sweep_s = time_per_call([&] {
      for (const LIdxVec& cls : col.classes) {
        pool.run([&](int t) {
          const std::size_t n = cls.size();
          const std::size_t b = n * static_cast<std::size_t>(t) / nt;
          const std::size_t e = n * (static_cast<std::size_t>(t) + 1) / nt;
          if (b < e) list(cls.data() + b, e - b);
        });
      }
    });
    ThreadedSweepResult::Width w;
    w.threads = threads;
    w.sweep_ns = 1e9 / kEdges * sweep_s;
    w.speedup = r.serial_region_ns / w.sweep_ns;
    r.widths.push_back(w);
  }
  return r;
}

// ---------------------------------------------------------------------
// Locality A/B harness: the indirect synthetic-update sweep over a
// scrambled hex3d mesh, run through the full World executor with the
// locality layer off (partition order) and on (RCM / SFC), at pool
// widths 1 and 4, written to BENCH_locality.json. hex3d comes out of
// the generator in lexicographic order, so the baseline scrambles it
// first — the arbitrary mesh-file order the reordering literature
// starts from. The reuse proxies (gather_span / reuse_gap, see
// mesh/reorder.hpp) of the localized edge->node map are recorded per
// ordering so the JSON ties each speedup to a measured locality change.
// ---------------------------------------------------------------------

struct LocalityWidth {
  int threads = 1;
  double sweep_ns = 0;  ///< per edge, full executor path.
  double speedup = 0;   ///< vs partition order at the same width.
};

struct LocalityOrder {
  const char* name = "";
  double gather_span = 0;
  double reuse_gap = 0;
  std::vector<LocalityWidth> widths;
};

struct LocalityResult {
  gidx_t nodes = 0, edges = 0;
  std::vector<LocalityOrder> orders;
  double best_speedup = 0;
};

/// One timed configuration: builds a World over `m` (copied) and times
/// the indirect INC sweep; also reports the localized map's reuse
/// proxies (width-independent, so callers read them from width 1).
double bench_locality_case(const mesh::MeshDef& m, mesh::ReorderKind kind,
                           int threads, mesh::OrderingQuality* oq) {
  core::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.halo_depth = 1;
  cfg.threads_per_rank = threads;
  cfg.reorder.kind = kind;
  core::World w(m, cfg);

  const auto e2n = *w.mesh().find_map("e2n");
  const auto edges_id = *w.mesh().find_set("edges");
  const auto nodes_id = *w.mesh().find_set("nodes");
  const halo::RankPlan& rp = w.plan().ranks[0];
  const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(e2n)];
  *oq = mesh::ordering_quality(
      lm.targets.data(), lm.arity,
      rp.sets[static_cast<std::size_t>(edges_id)].num_owned,
      rp.sets[static_cast<std::size_t>(nodes_id)].total);

  const auto num_edges = static_cast<double>(w.mesh().set(edges_id).size);
  double per_edge_ns = 0;
  w.run([&](core::Runtime& rt) {
    const core::Set edges = rt.set("edges");
    const core::Dat res = rt.dat("loc_res");
    const core::Dat pres = rt.dat("loc_pres");
    const core::Map map = rt.map("e2n");
    per_edge_ns =
        1e9 / num_edges * time_per_call([&] {
          rt.par_loop("loc_update", edges,
                      apps::mgcfd::kernels::synth_update,
                      core::arg_dat(res, 0, map, core::Access::INC),
                      core::arg_dat(res, 1, map, core::Access::INC),
                      core::arg_dat(pres, 0, map, core::Access::READ),
                      core::arg_dat(pres, 1, map, core::Access::READ));
        });
  });
  return per_edge_ns;
}

LocalityResult bench_locality() {
  // ~1.3M nodes / ~3.9M edges: the gathered node streams (res + pres,
  // 4 doubles per node = ~40 MB) dwarf L1/L2, so the scrambled baseline
  // is gather-bound and ordering quality is what the timer sees.
  mesh::Hex3D h = mesh::make_hex3d(108, 108, 108);
  const auto nodes = h.nodes;
  h.mesh.add_dat("loc_res", nodes, 2);
  {
    const gidx_t n = h.mesh.set(nodes).size;
    std::vector<double> pres(static_cast<std::size_t>(n) * 2);
    Rng rng(6);
    for (auto& v : pres) v = rng.next_range(0.5, 1.5);
    h.mesh.add_dat("loc_pres", nodes, 2, std::move(pres));
  }
  const mesh::MeshDef scrambled = mesh::scramble_mesh(h.mesh, 99);

  LocalityResult r;
  r.nodes = h.mesh.set(h.nodes).size;
  r.edges = h.mesh.set(h.edges).size;
  const std::pair<const char*, mesh::ReorderKind> cases[] = {
      {"none", mesh::ReorderKind::None},
      {"rcm", mesh::ReorderKind::RCM},
      {"sfc", mesh::ReorderKind::SFC},
  };
  for (const auto& [name, kind] : cases) {
    LocalityOrder order;
    order.name = name;
    for (const int threads : {1, 4}) {
      mesh::OrderingQuality oq;
      LocalityWidth w;
      w.threads = threads;
      w.sweep_ns = bench_locality_case(scrambled, kind, threads, &oq);
      if (threads == 1) {
        order.gather_span = oq.gather_span;
        order.reuse_gap = oq.reuse_gap;
      }
      order.widths.push_back(w);
    }
    r.orders.push_back(std::move(order));
  }
  // Speedups vs partition order at matching width.
  const LocalityOrder& base = r.orders.front();
  for (LocalityOrder& order : r.orders) {
    for (std::size_t i = 0; i < order.widths.size(); ++i) {
      order.widths[i].speedup =
          base.widths[i].sweep_ns / order.widths[i].sweep_ns;
      if (&order != &base)
        r.best_speedup = std::max(r.best_speedup, order.widths[i].speedup);
    }
  }
  return r;
}

void write_locality_json(const char* path) {
  const LocalityResult r = bench_locality();
  std::ofstream os(path);
  os.precision(5);
  os << "{\n"
     << "  \"mesh\": {\"nodes\": " << r.nodes << ", \"edges\": " << r.edges
     << "},\n"
     << "  \"orders\": [\n";
  for (std::size_t i = 0; i < r.orders.size(); ++i) {
    const LocalityOrder& o = r.orders[i];
    os << "    {\"order\": \"" << o.name
       << "\", \"gather_span\": " << o.gather_span
       << ", \"reuse_gap\": " << o.reuse_gap << ", \"widths\": [";
    for (std::size_t j = 0; j < o.widths.size(); ++j) {
      const LocalityWidth& w = o.widths[j];
      os << (j == 0 ? "" : ", ") << "{\"threads\": " << w.threads
         << ", \"sweep_ns\": " << w.sweep_ns
         << ", \"speedup\": " << w.speedup << "}";
    }
    os << "]}" << (i + 1 < r.orders.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"best_speedup\": " << r.best_speedup << "\n"
     << "}\n";
  std::printf("locality: best reordered speedup %.2fx over partition "
              "order -> %s\n",
              r.best_speedup, path);
  for (const LocalityOrder& o : r.orders) {
    std::printf(
        "  %-4s gather_span %.1f reuse_gap %.1f | 1t %.2f ns/edge "
        "(%.2fx) | 4t %.2f ns/edge (%.2fx)\n",
        o.name, o.gather_span, o.reuse_gap, o.widths[0].sweep_ns,
        o.widths[0].speedup, o.widths[1].sweep_ns, o.widths[1].speedup);
  }
}

// ---------------------------------------------------------------------
// SIMD layout A/B harness: the same scrambled/RCM hex3d methodology as
// the locality harness, but the knob is the dat storage layout
// (WorldConfig::layout = AoS / SoA / AoSoA) and the kernels are the two
// shapes the layout is supposed to help or hurt:
//   direct:   a partial-component update on dim-8 dats (touches 2 of 8
//             components) — under AoS every 64-byte element row is
//             pulled for 16 useful bytes and the loop strides by 8;
//             under SoA/AoSoA the touched components stream
//             contiguously and vectorise.
//   indirect: the same 2-of-8 component pattern gathered through the
//             edge->node map — the layout's worst case, since SoA turns
//             one gathered row into one gather per touched component.
// Results at pool widths 1 and 4 go to BENCH_simd.json; speedups are vs
// AoS at the same ordering/width/kernel. best_speedup is the best
// non-AoS direct-loop speedup in the RCM ordering (the configuration
// the model's Machine::vector_width is calibrated from).
// ---------------------------------------------------------------------

inline constexpr int kSimdDim = 8;

/// Direct partial-component update: a[0..1] from b[0..1] of dim-8 dats.
struct SimdPartialUpdate {
  template <typename A, typename B>
  void operator()(A&& a, B&& b) const {
    a[0] = 0.999 * a[0] + 1e-3 * b[0];
    a[1] = 0.999 * a[1] - 1e-3 * b[1];
  }
};
inline constexpr SimdPartialUpdate simd_partial_update{};

/// Indirect 2-of-8 component gather/increment through an arity-2 map.
struct SimdGatherUpdate {
  template <typename R1, typename R2, typename P1, typename P2>
  void operator()(R1&& r1, R2&& r2, P1&& p1, P2&& p2) const {
    r1[0] += p1[0] - p2[1];
    r1[1] += p2[0] - p1[1];
    r2[0] += p2[1] - p1[0];
    r2[1] += p1[1] - p2[0];
  }
};
inline constexpr SimdGatherUpdate simd_gather_update{};

struct SimdWidth {
  int threads = 1;
  double direct_ns = 0;    ///< per node, full executor path.
  double indirect_ns = 0;  ///< per edge, full executor path.
  double direct_speedup = 0;
  double indirect_speedup = 0;
};

struct SimdLayout {
  std::string name;
  std::vector<SimdWidth> widths;
};

struct SimdOrder {
  const char* name = "";
  mesh::ReorderKind kind = mesh::ReorderKind::None;
  std::vector<SimdLayout> layouts;
};

struct SimdResult {
  gidx_t nodes = 0, edges = 0;
  int aosoa_block = 8;
  std::vector<SimdOrder> orders;
  double best_speedup = 0;
};

/// One timed configuration: a World over `m` (copied) with the given
/// reordering, layout and pool width; times the direct and indirect
/// sweeps through the standard executor.
SimdWidth bench_simd_case(const mesh::MeshDef& m, mesh::ReorderKind kind,
                          const mesh::LayoutConfig& lc, int threads) {
  core::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.halo_depth = 1;
  cfg.threads_per_rank = threads;
  cfg.reorder.kind = kind;
  cfg.layout = lc;
  core::World w(m, cfg);

  const auto num_nodes =
      static_cast<double>(w.mesh().set(*w.mesh().find_set("nodes")).size);
  const auto num_edges =
      static_cast<double>(w.mesh().set(*w.mesh().find_set("edges")).size);
  SimdWidth r;
  r.threads = threads;
  w.run([&](core::Runtime& rt) {
    const core::Set nodes = rt.set("nodes");
    const core::Set edges = rt.set("edges");
    const core::Dat a = rt.dat("simd_a");
    const core::Dat b = rt.dat("simd_b");
    const core::Dat res = rt.dat("simd_res");
    const core::Dat pres = rt.dat("simd_pres");
    const core::Map map = rt.map("e2n");
    r.direct_ns = 1e9 / num_nodes * time_per_call([&] {
                    rt.par_loop("simd_direct", nodes, simd_partial_update,
                                core::arg_dat(a, core::Access::RW),
                                core::arg_dat(b, core::Access::READ));
                  });
    r.indirect_ns =
        1e9 / num_edges * time_per_call([&] {
          rt.par_loop("simd_indirect", edges, simd_gather_update,
                      core::arg_dat(res, 0, map, core::Access::INC),
                      core::arg_dat(res, 1, map, core::Access::INC),
                      core::arg_dat(pres, 0, map, core::Access::READ),
                      core::arg_dat(pres, 1, map, core::Access::READ));
        });
  });
  return r;
}

/// `only` restricts the non-AoS layouts ("soa" | "aosoa"; empty = both —
/// AoS always runs as the baseline).
SimdResult bench_simd(const std::string& only, int aosoa_block) {
  // ~373k nodes: the dim-8 streams (a + b = 48 MB) exceed the LLC, so
  // the direct loop is bandwidth-bound and the layout decides how many
  // of those bytes are useful.
  mesh::Hex3D h = mesh::make_hex3d(72, 72, 72);
  const auto nodes = h.nodes;
  const gidx_t n = h.mesh.set(nodes).size;
  Rng rng(7);
  for (const char* name : {"simd_a", "simd_b", "simd_pres"}) {
    std::vector<double> init(static_cast<std::size_t>(n) * kSimdDim);
    for (auto& v : init) v = rng.next_range(0.5, 1.5);
    h.mesh.add_dat(name, nodes, kSimdDim, std::move(init));
  }
  h.mesh.add_dat("simd_res", nodes, kSimdDim);
  const mesh::MeshDef scrambled = mesh::scramble_mesh(h.mesh, 99);

  SimdResult r;
  r.nodes = h.mesh.set(h.nodes).size;
  r.edges = h.mesh.set(h.edges).size;
  r.aosoa_block = aosoa_block;

  std::vector<std::pair<std::string, mesh::LayoutConfig>> layouts;
  for (const mesh::LayoutKind kind :
       {mesh::LayoutKind::AoS, mesh::LayoutKind::SoA,
        mesh::LayoutKind::AoSoA}) {
    const std::string name(mesh::layout_name(kind));
    if (kind != mesh::LayoutKind::AoS && !only.empty() && name != only)
      continue;
    mesh::LayoutConfig lc;
    lc.kind = kind;
    lc.aosoa_block = aosoa_block;
    layouts.emplace_back(name, lc);
  }

  const std::pair<const char*, mesh::ReorderKind> orders[] = {
      {"scrambled", mesh::ReorderKind::None},
      {"rcm", mesh::ReorderKind::RCM},
  };
  for (const auto& [oname, okind] : orders) {
    SimdOrder order;
    order.name = oname;
    order.kind = okind;
    for (const auto& [lname, lc] : layouts) {
      SimdLayout lay;
      lay.name = lname;
      for (const int threads : {1, 4})
        lay.widths.push_back(bench_simd_case(scrambled, okind, lc, threads));
      order.layouts.push_back(std::move(lay));
    }
    // Speedups vs AoS at the same ordering and width.
    const SimdLayout& base = order.layouts.front();
    for (SimdLayout& lay : order.layouts) {
      for (std::size_t i = 0; i < lay.widths.size(); ++i) {
        SimdWidth& w = lay.widths[i];
        w.direct_speedup = base.widths[i].direct_ns / w.direct_ns;
        w.indirect_speedup = base.widths[i].indirect_ns / w.indirect_ns;
        if (&lay != &base && order.kind == mesh::ReorderKind::RCM)
          r.best_speedup = std::max(r.best_speedup, w.direct_speedup);
      }
    }
    r.orders.push_back(std::move(order));
  }
  return r;
}

void write_simd_json(const char* path, const std::string& only,
                     int aosoa_block) {
  const SimdResult r = bench_simd(only, aosoa_block);
  std::ofstream os(path);
  os.precision(5);
  os << "{\n"
     << "  \"mesh\": {\"nodes\": " << r.nodes << ", \"edges\": " << r.edges
     << ", \"dim\": " << kSimdDim << ", \"aosoa_block\": " << r.aosoa_block
     << "},\n"
     << "  \"orders\": [\n";
  for (std::size_t i = 0; i < r.orders.size(); ++i) {
    const SimdOrder& o = r.orders[i];
    os << "    {\"order\": \"" << o.name << "\", \"layouts\": [\n";
    for (std::size_t l = 0; l < o.layouts.size(); ++l) {
      const SimdLayout& lay = o.layouts[l];
      os << "      {\"layout\": \"" << lay.name << "\", \"widths\": [";
      for (std::size_t j = 0; j < lay.widths.size(); ++j) {
        const SimdWidth& w = lay.widths[j];
        os << (j == 0 ? "" : ", ") << "{\"threads\": " << w.threads
           << ", \"direct_ns\": " << w.direct_ns
           << ", \"indirect_ns\": " << w.indirect_ns
           << ", \"direct_speedup\": " << w.direct_speedup
           << ", \"indirect_speedup\": " << w.indirect_speedup << "}";
      }
      os << "]}" << (l + 1 < o.layouts.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (i + 1 < r.orders.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"best_speedup\": " << r.best_speedup << "\n"
     << "}\n";
  std::printf("simd: best non-AoS direct speedup %.2fx over AoS (rcm) "
              "-> %s\n",
              r.best_speedup, path);
  for (const SimdOrder& o : r.orders) {
    for (const SimdLayout& lay : o.layouts) {
      std::printf("  %-9s %-5s |", o.name, lay.name.c_str());
      for (const SimdWidth& w : lay.widths)
        std::printf(" %dt direct %.2f ns (%.2fx) indirect %.2f ns "
                    "(%.2fx) |",
                    w.threads, w.direct_ns, w.direct_speedup, w.indirect_ns,
                    w.indirect_speedup);
      std::printf("\n");
    }
  }
}

// ---------------------------------------------------------------------
// Task-graph sweep harness (BENCH_hotpath.json "taskgraph_sweep"): the
// indirect-INC update over a scrambled hex3d mesh through the full World
// executor. Serial baseline = scrambled partition order, width 1, colour
// barriers. The graph rows run RCM-reordered at widths 2 and 4, once
// with colour barriers and once with WorldConfig::taskgraph, so the JSON
// separates what the locality layer buys from what dependency-driven
// scheduling buys on top. `speedup` is graph vs the scrambled serial
// baseline — the number CI gates on (>= 2x at 4 threads on multi-core
// runners; on a single-core host it is carried by the reordering).
// ---------------------------------------------------------------------

struct TaskgraphCase {
  double sweep_ns = 0;  ///< per edge, full executor path.
  std::int64_t tasks = 0, steals = 0;
  double dep_wait_s = 0;
};

TaskgraphCase bench_taskgraph_case(const mesh::MeshDef& m,
                                   mesh::ReorderKind kind, int threads,
                                   bool taskgraph) {
  core::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.halo_depth = 1;
  cfg.threads_per_rank = threads;
  cfg.reorder.kind = kind;
  cfg.taskgraph = taskgraph;
  core::World w(m, cfg);

  const auto num_edges =
      static_cast<double>(w.mesh().set(*w.mesh().find_set("edges")).size);
  TaskgraphCase r;
  w.run([&](core::Runtime& rt) {
    const core::Set edges = rt.set("edges");
    const core::Dat res = rt.dat("tg_res");
    const core::Dat pres = rt.dat("tg_pres");
    const core::Map map = rt.map("e2n");
    r.sweep_ns =
        1e9 / num_edges * time_per_call([&] {
          rt.par_loop("tg_update", edges,
                      apps::mgcfd::kernels::synth_update,
                      core::arg_dat(res, 0, map, core::Access::INC),
                      core::arg_dat(res, 1, map, core::Access::INC),
                      core::arg_dat(pres, 0, map, core::Access::READ),
                      core::arg_dat(pres, 1, map, core::Access::READ));
        });
  });
  const auto metrics = w.loop_metrics();
  if (metrics.count("tg_update") != 0) {
    const core::LoopMetrics& m2 = metrics.at("tg_update");
    r.tasks = m2.tasks;
    r.steals = m2.steals;
    r.dep_wait_s = m2.dep_wait_seconds;
  }
  return r;
}

struct TaskgraphWidthResult {
  int threads = 1;
  double barrier_ns = 0;  ///< RCM, colour barriers.
  double graph_ns = 0;    ///< RCM, task graph.
  double speedup = 0;     ///< graph vs scrambled serial baseline.
  double vs_barrier = 0;  ///< graph vs barrier at the same width.
  std::int64_t tasks = 0, steals = 0;
  double dep_wait_s = 0;
};

struct TaskgraphResult {
  gidx_t nodes = 0, edges = 0;
  double serial_ns = 0;
  std::vector<TaskgraphWidthResult> widths;
  double best_speedup = 0;
};

TaskgraphResult bench_taskgraph_sweep() {
  // Same sizing rationale as the locality harness: the gathered node
  // streams dwarf the LLC, so the scrambled serial baseline is
  // gather-bound and both knobs under test (ordering, scheduling) are
  // what the timer sees.
  mesh::Hex3D h = mesh::make_hex3d(108, 108, 108);
  const auto nodes = h.nodes;
  h.mesh.add_dat("tg_res", nodes, 2);
  {
    const gidx_t n = h.mesh.set(nodes).size;
    std::vector<double> pres(static_cast<std::size_t>(n) * 2);
    Rng rng(8);
    for (auto& v : pres) v = rng.next_range(0.5, 1.5);
    h.mesh.add_dat("tg_pres", nodes, 2, std::move(pres));
  }
  const mesh::MeshDef scrambled = mesh::scramble_mesh(h.mesh, 99);

  TaskgraphResult r;
  r.nodes = h.mesh.set(h.nodes).size;
  r.edges = h.mesh.set(h.edges).size;
  r.serial_ns =
      bench_taskgraph_case(scrambled, mesh::ReorderKind::None, 1, false)
          .sweep_ns;
  for (const int threads : {2, 4}) {
    const TaskgraphCase barrier = bench_taskgraph_case(
        scrambled, mesh::ReorderKind::RCM, threads, false);
    const TaskgraphCase graph = bench_taskgraph_case(
        scrambled, mesh::ReorderKind::RCM, threads, true);
    TaskgraphWidthResult w;
    w.threads = threads;
    w.barrier_ns = barrier.sweep_ns;
    w.graph_ns = graph.sweep_ns;
    w.speedup = r.serial_ns / graph.sweep_ns;
    w.vs_barrier = barrier.sweep_ns / graph.sweep_ns;
    w.tasks = graph.tasks;
    w.steals = graph.steals;
    w.dep_wait_s = graph.dep_wait_s;
    r.best_speedup = std::max(r.best_speedup, w.speedup);
    r.widths.push_back(w);
  }
  return r;
}

void write_hotpath_json(const char* path) {
  const DispatchResult direct = bench_direct_dispatch();
  const DispatchResult indirect = bench_indirect_dispatch();
  const GroupedResult grouped = bench_grouped_pack();
  const ThreadedSweepResult sweep = bench_threaded_sweep();
  const TaskgraphResult tg = bench_taskgraph_sweep();

  std::ofstream os(path);
  os.precision(5);
  os << "{\n"
     << "  \"dispatch\": {\n"
     << "    \"direct\": {\"per_element_ns\": " << direct.per_element_ns
     << ", \"batched_ns\": " << direct.batched_ns
     << ", \"speedup\": " << direct.speedup() << "},\n"
     << "    \"indirect\": {\"per_element_ns\": " << indirect.per_element_ns
     << ", \"batched_ns\": " << indirect.batched_ns
     << ", \"speedup\": " << indirect.speedup() << "}\n"
     << "  },\n"
     << "  \"grouped\": {\n"
     << "    \"pack_send\": {\"seed_style_gbps\": "
     << grouped.seed_pack_send_gbps
     << ", \"plan_pooled_gbps\": " << grouped.plan_pack_send_gbps
     << ", \"speedup\": " << grouped.pack_send_speedup() << "},\n"
     << "    \"unpack\": {\"reference_gbps\": " << grouped.ref_unpack_gbps
     << ", \"plan_gbps\": " << grouped.plan_unpack_gbps
     << ", \"speedup\": "
     << grouped.plan_unpack_gbps / grouped.ref_unpack_gbps << "}\n"
     << "  },\n"
     << "  \"threaded_sweep\": {\n"
     << "    \"colours\": " << sweep.colours
     << ", \"serial_region_ns\": " << sweep.serial_region_ns
     << ",\n    \"widths\": [";
  for (std::size_t i = 0; i < sweep.widths.size(); ++i) {
    const auto& w = sweep.widths[i];
    os << (i == 0 ? "" : ", ") << "{\"threads\": " << w.threads
       << ", \"sweep_ns\": " << w.sweep_ns
       << ", \"speedup\": " << w.speedup << "}";
  }
  os << "]\n"
     << "  },\n"
     << "  \"taskgraph_sweep\": {\n"
     << "    \"mesh\": {\"nodes\": " << tg.nodes
     << ", \"edges\": " << tg.edges << "},\n"
     << "    \"serial_ns\": " << tg.serial_ns << ",\n    \"widths\": [";
  for (std::size_t i = 0; i < tg.widths.size(); ++i) {
    const auto& w = tg.widths[i];
    os << (i == 0 ? "" : ", ") << "{\"threads\": " << w.threads
       << ", \"barrier_ns\": " << w.barrier_ns
       << ", \"graph_ns\": " << w.graph_ns
       << ", \"speedup\": " << w.speedup
       << ", \"vs_barrier\": " << w.vs_barrier
       << ", \"tasks\": " << w.tasks << ", \"steals\": " << w.steals
       << ", \"dep_wait_s\": " << w.dep_wait_s << "}";
  }
  os << "],\n"
     << "    \"best_speedup\": " << tg.best_speedup << "\n"
     << "  }\n"
     << "}\n";
  const double best_sweep =
      sweep.widths.empty() ? 0.0 : sweep.widths.back().speedup;
  std::printf(
      "hotpath: direct dispatch %.2fx, indirect dispatch %.2fx, "
      "pack+send %.2fx, unpack %.2fx, colour sweep @%d threads %.2fx "
      "(%d colours) -> %s\n",
      direct.speedup(), indirect.speedup(), grouped.pack_send_speedup(),
      grouped.plan_unpack_gbps / grouped.ref_unpack_gbps,
      sweep.widths.empty() ? 0 : sweep.widths.back().threads, best_sweep,
      sweep.colours, path);
  for (const TaskgraphWidthResult& w : tg.widths)
    std::printf(
        "  taskgraph @%dt: %.2f ns/edge, %.2fx vs scrambled serial "
        "(%.2f ns), %.2fx vs colour barriers, %lld tasks, %lld steals\n",
        w.threads, w.graph_ns, w.speedup, tg.serial_ns, w.vs_barrier,
        static_cast<long long>(w.tasks),
        static_cast<long long>(w.steals));
}

// ---------------------------------------------------------------------
// Transport A/B harness (BENCH_transport.json): ad-hoc striped sends vs
// persistent channels at 1/2/4 rails, small (latency-bound) and large
// (bandwidth-bound) messages. Two numbers per case:
//   wall_us  — measured protocol overhead over the in-process fabric
//              (header framing, reassembly, channel bookkeeping); the
//              sim fabric has one physical memory bus, so wall time
//              CANNOT show a rail win and is recorded for honesty only.
//   model_us — the receiver's virtual clock, charged by the tiered cost
//              model (striped_time / channel_time) on an archer2-like
//              4-rail network. This is what the summary gates read:
//              striping buys ~rails x on the bandwidth term of a large
//              message, and a persistent channel drops the per-message
//              host overhead to the channel overhead.
// ---------------------------------------------------------------------

/// BENCH_calibration.json path from --calibration=; empty = use the
/// bench4rail guesses below.
std::string g_calibration_path;  // NOLINT

/// Archer2-flavoured network with 4 rails for the A/B sweep. The
/// per-message host overhead is the quantity persistent channels
/// amortise; keep it and the channel overhead at the preset's values.
/// With --calibration=, the measured per-tier wire parameters replace
/// these guesses (host overheads stay: the wire sweeps do not measure
/// them).
sim::CostModel transport_bench_model() {
  sim::CostModel cm;
  cm.name = "bench4rail";
  cm.latency_s = 2.0e-6;
  cm.bandwidth_Bps = 12.5e9;
  cm.per_message_overhead_s = 4.0e-6;
  cm.channel_overhead_s = 1.0e-6;
  cm.net_rails = 4;
  if (!g_calibration_path.empty())
    sim::apply_calibration(sim::load_calibration(g_calibration_path), &cm);
  return cm;
}

struct TransportCase {
  const char* mode = "";  ///< "adhoc" | "persistent".
  int rails = 1;
  std::size_t bytes = 0;
  double wall_us = 0;
  double model_us = 0;
};

/// One sender thread streams `iters` messages to one receiver; the
/// receiver's wall time and virtual clock make the case's two numbers.
TransportCase bench_transport_case(bool persistent, int rails,
                                   std::size_t bytes, int iters) {
  const sim::CostModel cm = transport_bench_model();
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = rails;
  tc.stripe_min_bytes = 64 * 1024;
  tc.persistent = persistent;

  TransportCase r;
  r.mode = persistent ? "persistent" : "adhoc";
  r.rails = rails;
  r.bytes = bytes;

  std::thread sender([&] {
    sim::Comm c(t, 0, &cm, &tc);
    std::vector<sim::Channel> chans;
    if (persistent) {
      sim::ChannelSpec spec{1, /*sender=*/true, bytes, /*plan_hash=*/1};
      chans = c.open_channels(std::span<const sim::ChannelSpec>(&spec, 1));
    }
    const op2ca::ByteBuf payload(bytes, std::byte{7});
    for (int i = 0; i < iters; ++i) {
      op2ca::ByteBuf buf = payload;  // staging copy, as the executors do.
      sim::Request req =
          persistent ? c.channel_isend(chans[0], std::move(buf))
                     : c.stripe_isend(1, 5, std::move(buf));
      c.wait(req);
    }
  });
  {
    sim::Comm c(t, 1, &cm, &tc);
    std::vector<sim::Channel> chans;
    if (persistent) {
      sim::ChannelSpec spec{0, /*sender=*/false, bytes, /*plan_hash=*/1};
      chans = c.open_channels(std::span<const sim::ChannelSpec>(&spec, 1));
    }
    WallTimer timer;
    for (int i = 0; i < iters; ++i) {
      op2ca::ByteBuf out;
      sim::Request req = persistent
                             ? c.channel_irecv(chans[0], &out)
                             : c.stripe_irecv(0, 5, &out, bytes);
      c.wait(req);
    }
    r.wall_us = timer.elapsed() / iters * 1e6;
    r.model_us = c.clock().now() / iters * 1e6;
  }
  sender.join();
  return r;
}

void write_transport_json(const char* path) {
  constexpr std::size_t kSmall = 16 * 1024;        // below the threshold.
  constexpr std::size_t kLarge = 4 * 1024 * 1024;  // stripes.
  std::vector<TransportCase> cases;
  for (const bool persistent : {false, true})
    for (const int rails : {1, 2, 4})
      for (const std::size_t bytes : {kSmall, kLarge})
        cases.push_back(bench_transport_case(
            persistent, rails, bytes, bytes == kSmall ? 400 : 50));

  const auto find = [&](const char* mode, int rails,
                        std::size_t bytes) -> const TransportCase& {
    for (const TransportCase& c : cases)
      if (std::string(c.mode) == mode && c.rails == rails &&
          c.bytes == bytes)
        return c;
    raise("transport bench case missing");
  };
  // The two gated summary numbers, both from the modelled times: what
  // 4-rail striping buys on a bandwidth-bound message, and what a
  // persistent channel buys on a latency-bound one.
  const double striping_speedup_large =
      find("adhoc", 1, kLarge).model_us / find("adhoc", 4, kLarge).model_us;
  const double persistent_speedup =
      find("adhoc", 4, kSmall).model_us /
      find("persistent", 4, kSmall).model_us;
  const double persistent_speedup_large =
      find("adhoc", 4, kLarge).model_us /
      find("persistent", 4, kLarge).model_us;

  std::ofstream os(path);
  os.precision(5);
  os << "{\n  \"model\": \"bench4rail (archer2-flavoured, 4 rails)\",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const TransportCase& c = cases[i];
    os << "    {\"mode\": \"" << c.mode << "\", \"rails\": " << c.rails
       << ", \"bytes\": " << c.bytes << ", \"wall_us\": " << c.wall_us
       << ", \"model_us\": " << c.model_us << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"striping_speedup_large\": " << striping_speedup_large << ",\n"
     << "  \"persistent_speedup\": " << persistent_speedup << ",\n"
     << "  \"persistent_speedup_large\": " << persistent_speedup_large
     << "\n}\n";
  std::printf(
      "transport: 4-rail striping %.2fx on %zu KiB (model), persistent "
      "channels %.2fx small / %.2fx large vs ad-hoc -> %s\n",
      striping_speedup_large, kLarge / 1024, persistent_speedup,
      persistent_speedup_large, path);
}

// ---------------------------------------------------------------------
// Device pipeline A/B harness (BENCH_gpu.json): the device-resident
// executor over a scrambled hex3d chain of one direct + one indirect
// loop dragging dim-8 CFD-style state (the kernels touch a fraction of
// the bytes, as real flux loops do).
//
//   staged vs pipelined — the same chain under DeviceConfig::Mode::
//     FullyStaged (every accessed array re-crosses PCIe every epoch,
//     H2D | compute | D2H serialised) and Pipelined (validity tracking
//     moves only invalid mirrors + halo staging rows, 3-stage overlap).
//     `pipelined_speedup` is the ratio of summed modelled device
//     seconds over a fixed iteration count — the number CI gates
//     (>= 1.5x; checked-in runs show >= 1.8x).
//   steady state — first-epoch vs steady-epoch H2D bytes under the
//     pipelined policy: after the initial upload, epochs move only the
//     halo staging rows (zero mirror re-uploads).
//   hierarchical vs flat — wall time of the indirect sweep under the
//     two-level block/inner colouring vs the flat colour sweep, same
//     device config, pool width 4.
// ---------------------------------------------------------------------

/// Direct 2-of-8 update on nodes (a from b), cheap on purpose: staged
/// mode still moves all 8 components both ways.
struct GpuPartialUpdate {
  template <typename A, typename B>
  void operator()(A&& a, B&& b) const {
    a[0] = 0.999 * a[0] + 1e-3 * b[0];
    a[1] = 0.999 * a[1] - 1e-3 * b[1];
  }
};
inline constexpr GpuPartialUpdate gpu_partial_update{};

/// Indirect gather/increment through the edge->node map, weighted by two
/// direct dim-8 edge dats the kernel reads one component of — the cold
/// state a staged port re-uploads every epoch.
struct GpuGatherFlux {
  template <typename R1, typename R2, typename P1, typename P2,
            typename W1, typename W2>
  void operator()(R1&& r1, R2&& r2, P1&& p1, P2&& p2, W1&& w1,
                  W2&& w2) const {
    const double w = 1.0 + 1e-6 * (w1[0] - w2[0]);
    r1[0] += (p1[0] - p2[1]) * w;
    r1[1] += (p2[0] - p1[1]) * w;
    r2[0] += (p2[1] - p1[0]) * w;
    r2[1] += (p1[1] - p2[0]) * w;
  }
};
inline constexpr GpuGatherFlux gpu_gather_flux{};

/// The scrambled hex3d mesh with the chain's dim-8 state.
mesh::MeshDef build_gpu_mesh() {
  mesh::Hex3D h = mesh::make_hex3d(72, 72, 72);
  const auto nodes = h.nodes;
  const auto edges = h.edges;
  const gidx_t n = h.mesh.set(nodes).size;
  const gidx_t e = h.mesh.set(edges).size;
  Rng rng(9);
  for (const char* name : {"gpu_a", "gpu_b", "gpu_pres"}) {
    std::vector<double> init(static_cast<std::size_t>(n) * 8);
    for (auto& v : init) v = rng.next_range(0.5, 1.5);
    h.mesh.add_dat(name, nodes, 8, std::move(init));
  }
  h.mesh.add_dat("gpu_res", nodes, 8);
  for (const char* name : {"gpu_ewt", "gpu_ewt2"}) {
    std::vector<double> init(static_cast<std::size_t>(e) * 8);
    for (auto& v : init) v = rng.next_range(-0.5, 0.5);
    h.mesh.add_dat(name, edges, 8, std::move(init));
  }
  return mesh::scramble_mesh(h.mesh, 99);
}

/// One chain iteration: the direct update + the weighted gather flux.
void run_gpu_chain(core::Runtime& rt) {
  const core::Set nodes = rt.set("nodes");
  const core::Set edges = rt.set("edges");
  const core::Map map = rt.map("e2n");
  rt.par_loop("gpu_direct", nodes, gpu_partial_update,
              core::arg_dat(rt.dat("gpu_a"), core::Access::RW),
              core::arg_dat(rt.dat("gpu_b"), core::Access::READ));
  rt.par_loop("gpu_flux", edges, gpu_gather_flux,
              core::arg_dat(rt.dat("gpu_res"), 0, map, core::Access::INC),
              core::arg_dat(rt.dat("gpu_res"), 1, map, core::Access::INC),
              core::arg_dat(rt.dat("gpu_pres"), 0, map,
                            core::Access::READ),
              core::arg_dat(rt.dat("gpu_pres"), 1, map,
                            core::Access::READ),
              core::arg_dat(rt.dat("gpu_ewt"), core::Access::READ),
              core::arg_dat(rt.dat("gpu_ewt2"), core::Access::READ));
}

struct DevicePipelineCase {
  double wall_s = 0;         ///< wall time of the iteration loop, rank 0.
  double device_s = 0;       ///< summed modelled device seconds.
  std::int64_t h2d_bytes = 0, d2h_bytes = 0, transfers = 0;
};

DevicePipelineCase bench_device_pipeline_case(const mesh::MeshDef& m,
                                              gpu::DeviceConfig::Mode mode,
                                              int iters) {
  core::WorldConfig cfg;
  cfg.nranks = 2;
  cfg.halo_depth = 1;
  cfg.device.enabled = true;
  cfg.device.mode = mode;
  // Model a V100-class device: the gather-bound sweeps run an order of
  // magnitude faster than the emulating host thread, PCIe does not.
  cfg.device.compute_scale = 24.0;
  core::World w(m, cfg);
  DevicePipelineCase r;
  w.run([&](core::Runtime& rt) {
    WallTimer timer;
    for (int i = 0; i < iters; ++i) run_gpu_chain(rt);
    if (rt.rank() == 0) r.wall_s = timer.elapsed();
  });
  for (const auto& [name, lm] : w.loop_metrics()) {
    (void)name;
    r.device_s += lm.device_seconds;
    r.h2d_bytes += lm.h2d_bytes;
    r.d2h_bytes += lm.d2h_bytes;
    r.transfers += lm.device_transfers;
  }
  return r;
}

/// Wall ns/edge of the indirect flux sweep with the two-level device
/// colouring on or off (flat colour sweep), width 4, device pipelined.
double bench_device_colouring_case(const mesh::MeshDef& m,
                                   bool hierarchical) {
  core::WorldConfig cfg;
  cfg.nranks = 1;
  cfg.halo_depth = 1;
  cfg.threads_per_rank = 4;
  cfg.device.enabled = true;
  cfg.device.hierarchical = hierarchical;
  core::World w(m, cfg);
  const auto num_edges =
      static_cast<double>(w.mesh().set(*w.mesh().find_set("edges")).size);
  double per_edge_ns = 0;
  w.run([&](core::Runtime& rt) {
    const core::Set edges = rt.set("edges");
    const core::Map map = rt.map("e2n");
    per_edge_ns =
        1e9 / num_edges * time_per_call([&] {
          rt.par_loop("gpu_flux", edges, gpu_gather_flux,
                      core::arg_dat(rt.dat("gpu_res"), 0, map,
                                    core::Access::INC),
                      core::arg_dat(rt.dat("gpu_res"), 1, map,
                                    core::Access::INC),
                      core::arg_dat(rt.dat("gpu_pres"), 0, map,
                                    core::Access::READ),
                      core::arg_dat(rt.dat("gpu_pres"), 1, map,
                                    core::Access::READ),
                      core::arg_dat(rt.dat("gpu_ewt"),
                                    core::Access::READ),
                      core::arg_dat(rt.dat("gpu_ewt2"),
                                    core::Access::READ));
        });
  });
  return per_edge_ns;
}

void write_gpu_json(const char* path) {
  const mesh::MeshDef m = build_gpu_mesh();
  constexpr int kIters = 10;
  const DevicePipelineCase staged = bench_device_pipeline_case(
      m, gpu::DeviceConfig::Mode::FullyStaged, kIters);
  const DevicePipelineCase pipelined = bench_device_pipeline_case(
      m, gpu::DeviceConfig::Mode::Pipelined, kIters);
  // Steady-state split: a 1-iteration world pays the initial uploads;
  // the per-epoch steady traffic is what the remaining iterations add.
  const DevicePipelineCase first = bench_device_pipeline_case(
      m, gpu::DeviceConfig::Mode::Pipelined, 1);
  const double steady_h2d =
      static_cast<double>(pipelined.h2d_bytes - first.h2d_bytes) /
      (kIters - 1);
  const double pipelined_speedup = staged.device_s / pipelined.device_s;

  const double flat_ns = bench_device_colouring_case(m, false);
  const double hier_ns = bench_device_colouring_case(m, true);

  std::ofstream os(path);
  os.precision(5);
  os << "{\n"
     << "  \"pipeline\": {\n"
     << "    \"iters\": " << kIters << ",\n"
     << "    \"staged\": {\"wall_s\": " << staged.wall_s
     << ", \"device_s\": " << staged.device_s
     << ", \"h2d_bytes\": " << staged.h2d_bytes
     << ", \"d2h_bytes\": " << staged.d2h_bytes
     << ", \"transfers\": " << staged.transfers << "},\n"
     << "    \"pipelined\": {\"wall_s\": " << pipelined.wall_s
     << ", \"device_s\": " << pipelined.device_s
     << ", \"h2d_bytes\": " << pipelined.h2d_bytes
     << ", \"d2h_bytes\": " << pipelined.d2h_bytes
     << ", \"transfers\": " << pipelined.transfers << "},\n"
     << "    \"first_epoch_h2d_bytes\": " << first.h2d_bytes << ",\n"
     << "    \"steady_epoch_h2d_bytes\": " << steady_h2d << ",\n"
     << "    \"pipelined_speedup\": " << pipelined_speedup << "\n"
     << "  },\n"
     << "  \"colouring\": {\n"
     << "    \"flat_ns\": " << flat_ns << ", \"hier_ns\": " << hier_ns
     << ", \"hier_speedup\": " << flat_ns / hier_ns << "\n"
     << "  }\n"
     << "}\n";
  std::printf(
      "gpu: pipelined %.2fx over fully-staged (modelled device s), "
      "steady epoch H2D %.0f B vs first %lld B, hierarchical colouring "
      "%.2fx over flat -> %s\n",
      pipelined_speedup, steady_h2d,
      static_cast<long long>(first.h2d_bytes), flat_ns / hier_ns, path);
}

// ---------------------------------------------------------------------
// Temporal tiling A/B harness (BENCH_tiling.json): a Jacobi-style chain
// of two mutually-dependent indirect edge loops (fwd writes b from a,
// bwd writes a from b — every timestep re-dirties what the next one
// reads, so untiled execution pays a full exchange epoch per
// invocation) over a scrambled hex3d mesh, run back-to-back for a fixed
// number of timesteps at tile = 1, 2, 4, 8. A real per-post wire
// latency is injected through sim::Transport::set_post_delay so
// exchange epochs cost genuine wall time (the sim fabric's memcpy wire
// is otherwise nearly free — the regime where tiling is pointless).
// The gated numbers: tile=4 must cut exchange-epoch count >= 3x and
// wall time >= 1.3x vs tile=1; the sweep's redundant_elems column is
// the measured message-reduction vs redundant-compute crossover ledger
// for EXPERIMENTS.md.
// ---------------------------------------------------------------------

/// Antisymmetric edge relaxation: out gains at both endpoints from the
/// difference of in at the opposite endpoints, scaled by the edge weight.
struct TileRelax {
  template <typename O1, typename O2, typename I1, typename I2,
            typename W>
  void operator()(O1&& o1, O2&& o2, I1&& i1, I2&& i2, W&& w) const {
    const double f = 1e-3 * (1.0 + 0.1 * w[0]);
    o1[0] += f * (i2[0] - i1[0]);
    o2[0] += f * (i1[0] - i2[0]);
  }
};
inline constexpr TileRelax tile_relax{};

mesh::MeshDef build_tiling_mesh() {
  mesh::Hex3D h = mesh::make_hex3d(16, 16, 16);
  const gidx_t n = h.mesh.set(h.nodes).size;
  const gidx_t e = h.mesh.set(h.edges).size;
  Rng rng(17);
  for (const char* name : {"tile_a", "tile_b"}) {
    std::vector<double> init(static_cast<std::size_t>(n));
    for (auto& v : init) v = rng.next_range(0.5, 1.5);
    h.mesh.add_dat(name, h.nodes, 1, std::move(init));
  }
  std::vector<double> wt(static_cast<std::size_t>(e));
  for (auto& v : wt) v = rng.next_range(-0.5, 0.5);
  h.mesh.add_dat("tile_ewt", h.edges, 1, std::move(wt));
  return mesh::scramble_mesh(h.mesh, 99);
}

/// One timestep: the fwd/bwd relaxation pair bracketed as a chain.
void run_tiling_chain(core::Runtime& rt) {
  const core::Set edges = rt.set("edges");
  const core::Map map = rt.map("e2n");
  rt.chain_begin("tile_chain");
  rt.par_loop("tile_fwd", edges, tile_relax,
              core::arg_dat(rt.dat("tile_b"), 0, map, core::Access::INC),
              core::arg_dat(rt.dat("tile_b"), 1, map, core::Access::INC),
              core::arg_dat(rt.dat("tile_a"), 0, map, core::Access::READ),
              core::arg_dat(rt.dat("tile_a"), 1, map, core::Access::READ),
              core::arg_dat(rt.dat("tile_ewt"), core::Access::READ));
  rt.par_loop("tile_bwd", edges, tile_relax,
              core::arg_dat(rt.dat("tile_a"), 0, map, core::Access::INC),
              core::arg_dat(rt.dat("tile_a"), 1, map, core::Access::INC),
              core::arg_dat(rt.dat("tile_b"), 0, map, core::Access::READ),
              core::arg_dat(rt.dat("tile_b"), 1, map, core::Access::READ),
              core::arg_dat(rt.dat("tile_ewt"), core::Access::READ));
  rt.chain_end();
}

struct TilingCase {
  int tile = 1;
  double wall_s = 0;          ///< timed timestep loop, rank 0.
  std::int64_t epochs = 0;    ///< fused chain executions (metric calls).
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;
  std::int64_t msgs_saved = 0;
  std::int64_t redundant_elems = 0;
};

TilingCase bench_tiling_case(const mesh::MeshDef& m, int tile, int steps) {
  core::WorldConfig cfg;
  cfg.nranks = 4;
  cfg.halo_depth = 2;
  cfg.tile = tile;
  cfg.chains.enable("tile_chain");
  core::World w(m, cfg);
  // Inject a 500us per-post wire latency: exchange epochs then dominate
  // wall the way a real network would, and the A/B isolates what fusing
  // k epochs into one actually buys.
  if (auto* t = dynamic_cast<sim::Transport*>(&w.transport()))
    for (rank_t r = 0; r < cfg.nranks; ++r) t->set_post_delay(r, 500e-6);

  // Warm-up: one full tile builds the fused plan, exec lists, exchange
  // and channel caches; the timed loop below measures steady state.
  w.run([&](core::Runtime& rt) {
    for (int i = 0; i < tile; ++i) run_tiling_chain(rt);
  });
  w.clear_metrics();

  TilingCase out;
  out.tile = tile;
  w.run([&](core::Runtime& rt) {
    WallTimer timer;
    for (int i = 0; i < steps; ++i) run_tiling_chain(rt);
    rt.flush();  // drain a trailing partial tile inside the clock
    if (rt.rank() == 0) out.wall_s = timer.elapsed();
  });
  const auto cm = w.chain_metrics();
  const core::LoopMetrics& lm = cm.at("tile_chain");
  out.epochs = lm.calls;
  out.msgs = lm.msgs;
  out.bytes = lm.bytes;
  out.msgs_saved = lm.msgs_saved;
  out.redundant_elems = lm.redundant_elems;
  return out;
}

void write_tiling_json(const char* path) {
  const mesh::MeshDef m = build_tiling_mesh();
  constexpr int kSteps = 32;
  std::vector<TilingCase> cases;
  for (const int tile : {1, 2, 4, 8})
    cases.push_back(bench_tiling_case(m, tile, kSteps));

  const auto find = [&](int tile) -> const TilingCase& {
    for (const TilingCase& c : cases)
      if (c.tile == tile) return c;
    raise("tiling bench case missing");
  };
  const TilingCase& t1 = find(1);
  const TilingCase& t4 = find(4);
  const double epoch_reduction =
      static_cast<double>(t1.epochs) / static_cast<double>(t4.epochs);
  const double wall_speedup = t1.wall_s / t4.wall_s;

  std::ofstream os(path);
  os.precision(5);
  os << "{\n  \"mesh\": \"hex3d 16^3 scrambled, 4 ranks, " << kSteps
     << " timesteps, 500us/post injected wire latency\",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const TilingCase& c = cases[i];
    os << "    {\"tile\": " << c.tile << ", \"wall_s\": " << c.wall_s
       << ", \"epochs\": " << c.epochs << ", \"msgs\": " << c.msgs
       << ", \"bytes\": " << c.bytes
       << ", \"msgs_saved\": " << c.msgs_saved
       << ", \"redundant_elems\": " << c.redundant_elems << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"epoch_reduction\": " << epoch_reduction << ",\n"
     << "  \"wall_speedup\": " << wall_speedup << "\n}\n";
  std::printf(
      "tiling: tile=4 cuts exchange epochs %.2fx (%lld -> %lld) and wall "
      "%.2fx vs tile=1 on the scrambled hex3d chain -> %s\n",
      epoch_reduction, static_cast<long long>(t1.epochs),
      static_cast<long long>(t4.epochs), wall_speedup, path);
}

}  // namespace

int main(int argc, char** argv) {
  // Pull our layout flags out of argv before google-benchmark sees them
  // (it rejects unrecognized arguments).
  std::string layout_only;  // empty = run every layout in the A/B.
  int aosoa_block = 8;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--layout=", 0) == 0) {
      layout_only = arg.substr(9);
      if (layout_only == "aos") layout_only.clear();  // baseline always runs
      else mesh::layout_by_name(layout_only);         // validate the name
    } else if (arg.rfind("--aosoa-block=", 0) == 0) {
      aosoa_block = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--calibration=", 0) == 0) {
      g_calibration_path = arg.substr(14);
      sim::load_calibration(g_calibration_path);  // validate early
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_hotpath_json("BENCH_hotpath.json");
  write_locality_json("BENCH_locality.json");
  write_simd_json("BENCH_simd.json", layout_only, aosoa_block);
  write_transport_json("BENCH_transport.json");
  write_gpu_json("BENCH_gpu.json");
  write_tiling_json("BENCH_tiling.json");
  return 0;
}
