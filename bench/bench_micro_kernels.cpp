// Microbenchmarks (google-benchmark): per-iteration kernel costs (the g
// of Eqs 1-3), halo pack/unpack throughput (the c of Eq 3), and the
// simulated transport's point-to-point round-trip.
#include <benchmark/benchmark.h>

#include <thread>

#include "op2ca/apps/hydra/hydra_kernels.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/comm/comm.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/util/rng.hpp"

namespace {

using namespace op2ca;

void BM_MgcfdFluxKernel(benchmark::State& state) {
  Rng rng(1);
  double q1[5], q2[5], ewt[3], r1[5] = {0}, r2[5] = {0};
  for (auto& v : q1) v = rng.next_range(0.5, 1.5);
  for (auto& v : q2) v = rng.next_range(0.5, 1.5);
  for (auto& v : ewt) v = rng.next_range(-0.5, 0.5);
  q1[4] = q2[4] = 2.5;
  for (auto _ : state) {
    apps::mgcfd::kernels::compute_flux_edge(q1, q2, ewt, r1, r2);
    benchmark::DoNotOptimize(r1);
    benchmark::DoNotOptimize(r2);
  }
}
BENCHMARK(BM_MgcfdFluxKernel);

void BM_SyntheticUpdateKernel(benchmark::State& state) {
  double res1[2] = {0}, res2[2] = {0}, p1[2] = {1, 2}, p2[2] = {3, 4};
  for (auto _ : state) {
    apps::mgcfd::kernels::synth_update(res1, res2, p1, p2);
    benchmark::DoNotOptimize(res1);
  }
}
BENCHMARK(BM_SyntheticUpdateKernel);

void BM_SyntheticFluxKernel(benchmark::State& state) {
  double f1[2] = {0}, f2[2] = {0}, r1[2] = {1, 2}, r2[2] = {3, 4},
         ewt[4] = {0.1, 0.2, 0.3, 0.4};
  for (auto _ : state) {
    apps::mgcfd::kernels::synth_edge_flux(f1, f2, r1, r2, ewt);
    benchmark::DoNotOptimize(f1);
  }
}
BENCHMARK(BM_SyntheticFluxKernel);

void BM_HydraVfluxKernel(benchmark::State& state) {
  Rng rng(2);
  double qp1[6], qp2[6], xp1[6], xp2[6], ql1[6], ql2[6];
  double mu1[6], mu2[6], rg1[6], rg2[6], r1[6] = {0}, r2[6] = {0};
  for (auto* arr : {qp1, qp2, xp1, xp2, ql1, ql2, mu1, mu2, rg1, rg2})
    for (int k = 0; k < 6; ++k) arr[k] = rng.next_range(0.5, 1.5);
  for (auto _ : state) {
    apps::hydra::kernels::vflux_edge(qp1, qp2, xp1, xp2, ql1, ql2, mu1,
                                     mu2, rg1, rg2, r1, r2);
    benchmark::DoNotOptimize(r1);
  }
}
BENCHMARK(BM_HydraVfluxKernel);

void BM_PackRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n * 6, 1.0);
  LIdxVec idx(n);
  for (std::size_t i = 0; i < n; ++i)
    idx[i] = static_cast<lidx_t>((i * 7) % n);
  for (auto _ : state) {
    std::vector<std::byte> buf;
    halo::pack_rows(data.data(), 6, idx, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 6 * 8);
}
BENCHMARK(BM_PackRows)->Arg(256)->Arg(4096)->Arg(65536);

void BM_TransportPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  sim::Transport transport(2);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    sim::Comm c(transport, 1);
    while (!stop.load()) {
      sim::Message msg;
      if (!transport.try_match(1, 0, 0, &msg)) {
        std::this_thread::yield();
        continue;
      }
      c.isend(0, 1, msg.payload);
    }
  });
  sim::Comm c(transport, 0);
  std::vector<std::byte> payload(bytes, std::byte{1});
  for (auto _ : state) {
    c.isend(1, 0, payload);
    std::vector<std::byte> back;
    sim::Request r = c.irecv(1, 1, &back);
    c.wait(r);
    benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  // Flush a final message in case the echo thread is blocked; it polls,
  // so it exits on the flag.
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
}
BENCHMARK(BM_TransportPingPong)->Arg(64)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
