// CommBench-style wire calibration across transport backends.
//
// Measures the cost model's per-tier (latency, bandwidth, effective
// rails) triples on the backend actually selected — the in-process sim
// fabric, the MPI stub, or real MPI under mpirun — and emits
// BENCH_calibration.json for TierParams::from_calibration /
// --calibration consumers. Three sweeps per tier, in the CommBench
// pattern:
//
//   latency     8-byte ping-pong between ranks (0, stride); RTT/2.
//   bandwidth   large-message ping-pong on the same pair; bytes/(RTT/2).
//   rails       every rank joins a disjoint pair at the same stride and
//               streams concurrently; effective rails = aggregate
//               bandwidth / single-pair bandwidth, clamped to
//               [1, kMaxRails].
//
// The tier -> rank-pair mapping mirrors CostModel::tier_of: stride 1
// stays inside a NUMA domain, stride --rpnuma crosses domains of one
// node, stride --rpnode crosses nodes (each clamped to nranks-1; on an
// in-process fabric the tiers are physically identical, so measurements
// are clamped monotone before emission exactly as the loader and the CI
// gate require).
//
// Measurements use the raw TransportBackend post/match interface and
// WallTimer — below Comm, so no virtual clock, striping or channel layer
// colours the numbers. Payload staging allocation rides along on the
// sender, as it does in the runtime's pack path.
//
// Usage:
//   bench_calibrate [--backend=sim|mpi] [--nranks=N] [--bytes=B]
//                   [--iters=N] [--rpnuma=N] [--rpnode=N] [--out=FILE]
//
// Under a real mpirun launch, --nranks is ignored: the MPI world size
// wins, and only the local rank runs in this process (SPMD mode, same
// as World::run).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "op2ca/comm/channel.hpp"
#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/table.hpp"
#include "op2ca/util/timer.hpp"

namespace {

using namespace op2ca;
using namespace op2ca::sim;

constexpr tag_t kTagPing = 1001;
constexpr tag_t kTagPong = 1002;
constexpr tag_t kTagResult = 1003;

struct Config {
  std::string backend = "sim";
  int nranks = 4;
  std::size_t bytes = std::size_t{1} << 20;
  int iters = 16;
  int rpnuma = 2;
  int rpnode = 4;
  std::string out = "BENCH_calibration.json";
};

void send_bytes(TransportBackend& tb, rank_t src, rank_t dst, tag_t tag,
                std::size_t bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = ByteBuf(bytes);
  tb.post(std::move(m));
}

void send_double(TransportBackend& tb, rank_t src, rank_t dst, tag_t tag,
                 double v) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = ByteBuf(sizeof(double));
  std::memcpy(m.payload.data(), &v, sizeof(double));
  tb.post(std::move(m));
}

double recv_double(TransportBackend& tb, rank_t dst, rank_t src, tag_t tag) {
  const Message m = tb.match(dst, src, tag);
  OP2CA_ASSERT(m.payload.size() == sizeof(double),
               "calibrate: result payload size mismatch");
  double v = 0;
  std::memcpy(&v, m.payload.data(), sizeof(double));
  return v;
}

/// One ping-pong sweep between `me` and `peer`; returns the initiator's
/// measured one-way time per message (RTT/2), 0 on the echo side.
double ping_pong(TransportBackend& tb, rank_t me, rank_t peer,
                 std::size_t bytes, int iters, bool initiator) {
  const int warmup = std::max(2, iters / 8);
  WallTimer timer;
  for (int i = 0; i < warmup + iters; ++i) {
    if (i == warmup) timer.reset();
    if (initiator) {
      send_bytes(tb, me, peer, kTagPing, bytes);
      (void)tb.match(me, peer, kTagPong);
    } else {
      (void)tb.match(me, peer, kTagPing);
      send_bytes(tb, me, peer, kTagPong, bytes);
    }
  }
  if (!initiator) return 0;
  return timer.elapsed() / (2.0 * iters);
}

/// Disjoint same-stride pairing: ranks fold into blocks of 2*stride and
/// rank b+i talks to b+i+stride. Returns the peer, or -1 when this rank
/// sits in a partial trailing block and idles.
rank_t pair_peer(rank_t r, int stride, int nranks, bool* initiator) {
  const rank_t block = r / (2 * stride) * (2 * stride);
  if (block + 2 * stride > nranks) return -1;
  const rank_t off = r - block;
  *initiator = off < stride;
  return *initiator ? r + stride : r - stride;
}

struct TierMeasurement {
  double latency_s = 0;
  double bandwidth_Bps = 0;
  int rails = 1;
  int stride = 1;
  int pairs = 1;
};

/// Runs the three sweeps of one tier. Every rank must call this
/// (collective: barriers fence each sweep); the result is meaningful on
/// rank 0 only.
TierMeasurement measure_tier(TransportBackend& tb, rank_t me, int stride,
                             const Config& cfg) {
  const int nranks = tb.size();
  TierMeasurement out;
  out.stride = stride;

  // Latency + single-pair bandwidth: only the (0, stride) pair talks.
  tb.barrier();
  const int lat_iters = cfg.iters * 25;
  if (me == 0)
    out.latency_s =
        ping_pong(tb, me, stride, 8, lat_iters, /*initiator=*/true);
  else if (me == stride)
    ping_pong(tb, me, 0, 8, lat_iters, /*initiator=*/false);

  tb.barrier();
  double single_s = 0;
  if (me == 0)
    single_s =
        ping_pong(tb, me, stride, cfg.bytes, cfg.iters, /*initiator=*/true);
  else if (me == stride)
    ping_pong(tb, me, 0, cfg.bytes, cfg.iters, /*initiator=*/false);
  if (me == 0)
    out.bandwidth_Bps = static_cast<double>(cfg.bytes) / single_s;

  // Concurrent pairs at the same stride: each initiator measures its
  // pair's bandwidth and reports to rank 0, which sums the aggregate.
  tb.barrier();
  bool initiator = false;
  const rank_t peer = pair_peer(me, stride, nranks, &initiator);
  double mine = 0;
  if (peer >= 0) {
    const double one_way =
        ping_pong(tb, me, peer, cfg.bytes, cfg.iters, initiator);
    if (initiator) mine = static_cast<double>(cfg.bytes) / one_way;
  }
  if (me == 0) {
    double aggregate = 0;
    int pairs = 0;
    if (peer >= 0 && initiator) {
      aggregate += mine;
      ++pairs;
    }
    for (rank_t r = 1; r < nranks; ++r) {
      bool r_init = false;
      if (pair_peer(r, stride, nranks, &r_init) >= 0 && r_init) {
        aggregate += recv_double(tb, 0, r, kTagResult);
        ++pairs;
      }
    }
    out.pairs = pairs;
    const double ratio = aggregate / out.bandwidth_Bps;
    out.rails = static_cast<int>(
        std::clamp(std::lround(ratio), long{1}, long{kMaxRails}));
  } else if (peer >= 0 && initiator) {
    send_double(tb, me, 0, kTagResult, mine);
  }
  tb.barrier();
  return out;
}

struct CalibrationRun {
  TierMeasurement tiers[kNumTiers];
};

/// The per-rank SPMD body. Fills `out` on rank 0.
void rank_body(TransportBackend& tb, rank_t me, const Config& cfg,
               CalibrationRun* out) {
  const int nranks = tb.size();
  const int strides[kNumTiers] = {
      1, std::min(cfg.rpnuma, nranks - 1), std::min(cfg.rpnode, nranks - 1)};
  for (int t = 0; t < kNumTiers; ++t) {
    const TierMeasurement m =
        measure_tier(tb, me, std::max(strides[t], 1), cfg);
    if (me == 0) out->tiers[t] = m;
  }
  if (me != 0) return;
  // The loader (and the CI schema gate) require bandwidth monotone
  // non-increasing and latency monotone non-decreasing up the hierarchy.
  // On an in-process fabric all tiers share the same physical path, so
  // jitter can invert the order — clamp before emission.
  for (int t = 1; t < kNumTiers; ++t) {
    out->tiers[t].bandwidth_Bps =
        std::min(out->tiers[t].bandwidth_Bps, out->tiers[t - 1].bandwidth_Bps);
    out->tiers[t].latency_s =
        std::max(out->tiers[t].latency_s, out->tiers[t - 1].latency_s);
  }
}

void write_json(const Config& cfg, const CalibrationRun& run,
                const std::string& backend_label) {
  std::ofstream os(cfg.out);
  OP2CA_REQUIRE(os.good(), "calibrate: cannot write " + cfg.out);
  os << "{\n";
  os << "  \"backend\": \"" << backend_label << "\",\n";
  os << "  \"nranks\": " << cfg.nranks << ",\n";
  os << "  \"iters\": " << cfg.iters << ",\n";
  os << "  \"bytes\": " << cfg.bytes << ",\n";
  os << "  \"tiers\": {\n";
  for (int t = 0; t < kNumTiers; ++t) {
    const TierMeasurement& m = run.tiers[t];
    os << "    \"" << tier_name(static_cast<Tier>(t)) << "\": "
       << "{\"latency_s\": " << m.latency_s
       << ", \"bandwidth_Bps\": " << m.bandwidth_Bps
       << ", \"rails\": " << m.rails << ", \"stride\": " << m.stride
       << ", \"pairs\": " << m.pairs << "}" << (t + 1 < kNumTiers ? "," : "")
       << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    const Options opt(argc, argv,
                      {"backend", "nranks", "bytes", "iters", "rpnuma",
                       "rpnode", "out"});
    cfg.backend = opt.get_string("backend", cfg.backend);
    cfg.nranks = static_cast<int>(opt.get_int("nranks", cfg.nranks));
    cfg.bytes = static_cast<std::size_t>(
        opt.get_int("bytes", static_cast<std::int64_t>(cfg.bytes)));
    cfg.iters = static_cast<int>(opt.get_int("iters", cfg.iters));
    cfg.rpnuma = static_cast<int>(opt.get_int("rpnuma", cfg.rpnuma));
    cfg.rpnode = static_cast<int>(opt.get_int("rpnode", cfg.rpnode));
    cfg.out = opt.get_string("out", cfg.out);

    TransportConfig tc;
    tc.backend = backend_by_name(cfg.backend);
    if (tc.backend == BackendKind::Mpi && MpiBackend::compiled_with_mpi() &&
        MpiBackend::launched_under_mpirun()) {
      // Real launch: the communicator decides the width, not --nranks.
      cfg.nranks = MpiBackend::mpi_world_size();
    }
    OP2CA_REQUIRE(cfg.nranks >= 2,
                  "calibrate: need nranks >= 2 (launch more ranks or pass "
                  "--nranks)");
    OP2CA_REQUIRE(cfg.iters >= 1, "--iters must be >= 1");
    OP2CA_REQUIRE(cfg.bytes >= 8, "--bytes must be >= 8");

    std::unique_ptr<TransportBackend> tb = make_backend(tc, cfg.nranks);
    rank_t local = -1;
    if (auto* mpi = dynamic_cast<MpiBackend*>(tb.get()))
      local = mpi->local_rank();

    CalibrationRun run;
    if (local >= 0) {
      rank_body(*tb, local, cfg, &run);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(cfg.nranks));
      for (rank_t r = 0; r < cfg.nranks; ++r)
        threads.emplace_back(
            [&, r] { rank_body(*tb, r, cfg, &run); });
      for (auto& t : threads) t.join();
    }

    if (local <= 0) {
      // Rank 0 of an mpirun launch, or the whole in-process run.
      std::string label = cfg.backend;
      if (tc.backend == BackendKind::Mpi && !MpiBackend::compiled_with_mpi())
        label = "mpi-stub";
      write_json(cfg, run, label);

      Table table("wire calibration (" + label + ", " +
                  std::to_string(cfg.nranks) + " ranks)");
      table.set_header({"tier", "stride", "pairs", "latency_us",
                        "bandwidth_GBps", "rails"});
      table.set_precision(3);
      for (int t = 0; t < kNumTiers; ++t) {
        const TierMeasurement& m = run.tiers[t];
        table.add_row({std::string(tier_name(static_cast<Tier>(t))),
                       static_cast<std::int64_t>(m.stride),
                       static_cast<std::int64_t>(m.pairs),
                       m.latency_s * 1e6, m.bandwidth_Bps / 1e9,
                       static_cast<std::int64_t>(m.rails)});
      }
      table.print(std::cout);
      std::cout << "wrote " << cfg.out << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_calibrate: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
