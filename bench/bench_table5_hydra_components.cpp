// Table 5 — Hydra loop-chains on ARCHER2, 8M mesh: model components,
// communication reduction %, computation increase % and the predicted
// chain gain %, for node counts {4, 16, 64}.
#include "bench_hydra_common.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = model::archer2();

  bench::HydraBench b(cfg, "8M");
  Table t("Table 5 — Hydra loop-chains, 8M mesh (scale 1/" +
          std::to_string(cfg.scale) + "), ARCHER2 model components");
  t.set_header({"LC(#Loops)", "#Nodes", "OP2 sum(2dpm1)", "OP2 sum(Sc)",
                "OP2 sum(S1)", "CA pm_r", "CA sum(Sc)", "CA sum(Sh)",
                "LC Gain%", "CommReduc%", "CompInc%"});
  t.set_precision(2);

  for (int nodes : {4, 16, 64}) {
    for (const std::string& chain : apps::hydra::chain_names()) {
      const std::size_t nloops = b.specs().at(chain).loops.size();
      const bench::ChainPrediction p = b.predict(mach, nodes, chain);
      const model::ChainComponents& c = p.components;
      t.add_row({chain + "(" + std::to_string(nloops) + ")",
                 static_cast<std::int64_t>(nodes), c.op2_comm_bytes,
                 c.op2_core, c.op2_halo, c.ca_comm_bytes, c.ca_core,
                 c.ca_halo, p.gain_pct, c.comm_reduction_pct(),
                 c.comp_increase_pct()});
    }
  }
  bench::emit(cfg, t);
  return 0;
}
