// Table 2 — MG-CFD on ARCHER2: model components of the synthetic
// loop-chain and the CA-vs-OP2 performance gain.
//
// For meshes {8M, 24M} (scaled), node counts {4, 16, 64} and loop counts
// {2, 8, 32} (nchains = loops/2), prints:
//   OP2:  sum(2dpm^1) | sum(S^c) | sum(S^1)
//   CA:   p m^r       | sum(S^c) | sum(S^h)
//   Gain% from Eqs (2) vs (3) with calibrated kernel costs.
#include "bench_mgcfd_common.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = model::archer2();

  for (const std::string mesh : {"8M", "24M"}) {
    bench::MgcfdBench b(cfg, mesh);
    Table t("Table 2 — MG-CFD model components, " + mesh +
            " mesh (scale 1/" + std::to_string(cfg.scale) + "), ARCHER2");
    t.set_header({"#Nodes", "#Loops", "OP2 sum(2dpm1)", "OP2 sum(Sc)",
                  "OP2 sum(S1)", "CA pm_r", "CA sum(Sc)", "CA sum(Sh)",
                  "Gain%"});
    t.set_precision(2);
    for (int nodes : {4, 16, 64}) {
      for (int loops : {2, 8, 32}) {
        const bench::ChainPrediction p =
            b.predict(mach, nodes, loops / 2);
        const model::ChainComponents& c = p.components;
        t.add_row({static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(loops), c.op2_comm_bytes,
                   c.op2_core, c.op2_halo, c.ca_comm_bytes, c.ca_core,
                   c.ca_halo, p.gain_pct});
      }
    }
    bench::emit(cfg, t);
  }
  return 0;
}
