// Ablation — partitioner choice. The paper uses ParMETIS k-way for
// MG-CFD ("to obtain the best partitions per process, i.e. smallest MPI
// halos and least number of neighbours") and Hydra's default recursive
// inertial bisection. This bench quantifies why: partition quality
// (imbalance, edge cut, neighbour counts p) and its effect on the
// predicted OP2/CA chain times.
#include "bench_hydra_common.hpp"
#include "op2ca/partition/quality.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = model::archer2();

  apps::hydra::Problem prob = apps::hydra::build_problem(
      bench::scaled_mesh("8M", cfg.scale * 4));
  const auto specs = apps::hydra::chain_specs(prob);
  const std::set<mesh::dat_id> rk{
      prob.qo,  prob.qp, prob.ql,   prob.qrg,  prob.qmu,
      prob.vol, prob.xp, prob.jacp, prob.jaca, prob.jacb};
  std::map<std::string, double> host_g;
  for (const auto& [cname, spec] : specs)
    for (const auto& loop : spec.loops)
      host_g[loop.name] = model::default_host_g();

  Table t("Ablation — partitioner effect on halos and chain times (8M/" +
          std::to_string(cfg.scale * 4) + ", 64 ranks)");
  t.set_header({"partitioner", "imbalance", "edge cut", "max neighbours",
                "period OP2 [ms]", "period CA [ms]", "gain%"});
  t.set_precision(3);

  const int nranks = 64;
  for (partition::Kind kind :
       {partition::Kind::Block, partition::Kind::RIB,
        partition::Kind::KWay}) {
    const partition::Partition part =
        partition::partition_mesh(prob.an.mesh, nranks, kind,
                                  prob.an.nodes);
    const partition::Quality q =
        partition::evaluate_partition(prob.an.mesh, part, prob.an.nodes);
    const halo::HaloPlan plan = bench::plan_for(prob.an.mesh, part, 2);
    const bench::ChainPrediction p = bench::predict_chain(
        mach, prob.an.mesh, plan, specs.at("period"),
        model::steady_state_stale(specs.at("period"), rk), host_g);
    t.add_row({std::string(partition::kind_name(kind)), q.imbalance,
               q.edge_cut, static_cast<std::int64_t>(q.max_neighbors),
               p.t_op2 * 1e3, p.t_ca * 1e3, p.gain_pct});
  }
  bench::emit(cfg, t);
  return 0;
}
