// Table 3 — OP2-Hydra loop-chains with multiple halo layers: weight,
// period and gradl. Prints, per constituent loop, the iteration set, the
// access modes of the halo-relevant dats, the per-dat halo extensions
// HE_D (Alg 3) and the effective per-loop extension HE_l.
//
// Reproduction notes: all rows match the paper except weight's
// centreline, where the printed Alg 3 yields 1 vs the paper's 2 (see
// EXPERIMENTS.md).
#include "bench_hydra_common.hpp"

using namespace op2ca;

namespace {

std::string mode_of(const core::LoopSpec& loop, mesh::dat_id d) {
  const auto merged = core::merge_loop_accesses(loop);
  const auto it = merged.find(d);
  if (it == merged.end()) return "-";
  return core::access_name(it->second.mode);
}

void print_chain(const bench::BenchConfig& cfg, const mesh::MeshDef& m,
                 const core::ChainSpec& spec,
                 const std::vector<std::pair<std::string, mesh::dat_id>>&
                     tracked) {
  const core::ChainAnalysis an = core::inspect_chain(m, spec);
  Table t("Table 3 — loop-chain: " + spec.name +
          " (loop count = " + std::to_string(spec.loops.size()) + ")");
  std::vector<std::string> header{"Parallel loop", "Iter. set"};
  for (const auto& [name, d] : tracked) {
    header.push_back("mode_" + name);
    header.push_back("HE_" + name);
  }
  header.push_back("HE_l");
  t.set_header(header);

  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const core::LoopSpec& loop = spec.loops[l];
    std::vector<Cell> row{loop.name, m.set(loop.set).name};
    for (const auto& [name, d] : tracked) {
      row.emplace_back(mode_of(loop, d));
      const auto it = an.he_per_dat[l].find(d);
      row.emplace_back(static_cast<std::int64_t>(
          it == an.he_per_dat[l].end() ? 1 : it->second));
    }
    row.emplace_back(static_cast<std::int64_t>(an.he_alg3[l]));
    t.add_row(std::move(row));
  }
  bench::emit(cfg, t);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);

  // The inspection is mesh-size independent; a small problem suffices.
  apps::hydra::Problem prob = apps::hydra::build_problem(20000);
  const auto specs = apps::hydra::chain_specs(prob);
  const mesh::MeshDef& m = prob.an.mesh;

  print_chain(cfg, m, specs.at("weight"), {{"qo", prob.qo}});
  print_chain(cfg, m, specs.at("period"),
              {{"qo", prob.qo}, {"vol", prob.vol}});
  print_chain(cfg, m, specs.at("gradl"),
              {{"qp", prob.qp}, {"ql", prob.ql}});
  return 0;
}
