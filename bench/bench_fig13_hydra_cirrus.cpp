// Figure 13 — Hydra loop-chain runtimes on the Cirrus GPU cluster (8M
// and 24M meshes): cumulative chain time over 20 iterations, OP2 vs CA,
// on 1-16 nodes x 4 V100 ranks. GPU ranks are not scaled down (they are
// already few); only the mesh is.
//
// Pass --device to replace the preset's hand-tuned extra-latency lump
// with the derived Machine::DeviceTier Lambda (pipelined transfers by
// default; --device-mode=staged models the fully-exposed PCIe regime).
#include "bench_hydra_common.hpp"

using namespace op2ca;

namespace {

model::Machine unscaled_cirrus(std::int64_t scale) {
  model::Machine m = model::cirrus_gpu();
  m.ranks_per_node = static_cast<int>(m.ranks_per_node * scale);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, bench::standard_option_names());
  const bench::BenchConfig cfg = bench::BenchConfig::from_options(opt);
  const model::Machine mach = cfg.apply_threads(unscaled_cirrus(cfg.scale));
  constexpr int kIterations = 20;

  for (const std::string mesh : {"8M", "24M"}) {
    bench::HydraBench b(cfg, mesh);
    Table t("Fig 13 — Hydra chain runtimes [ms] over 20 iterations, " +
            mesh + " mesh (scale 1/" + std::to_string(cfg.scale) +
            "), Cirrus GPU cluster" +
            (cfg.tile > 1 ? ", CA tiled x" + std::to_string(cfg.tile)
                          : ""));
    t.set_header({"chain", "#Nodes", "GPU ranks", "OP2 [ms]", "CA [ms]",
                  "Gain%"});
    t.set_precision(4);
    for (int nodes : {1, 2, 4, 8, 16}) {
      for (const std::string& chain : apps::hydra::chain_names()) {
        const bench::ChainPrediction p = b.predict(mach, nodes, chain);
        t.add_row({chain, static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(b.ranks_for(mach, nodes)),
                   p.t_op2 * kIterations * 1e3,
                   p.t_ca * kIterations * 1e3, p.gain_pct});
      }
    }
    bench::emit(cfg, t);
  }
  return 0;
}
