// Global guard linked into every sim-only test binary (all suites except
// test_mpirun — see tests/CMakeLists.txt).
//
// Under `mpirun -np N ctest`, every test binary would otherwise run N
// duplicated copies, and any test that builds a multi-rank World on the
// real MPI backend would fail (one process drives one rank there, and
// nranks != communicator size errors loudly). The sim fabric and the MPI
// stub need no launcher, so those suites simply skip when the binary was
// (a) built against real MPI and (b) started by an MPI launcher; ctest
// still reports them, as skipped, and the mpirun-labelled tests carry
// the under-launcher coverage.
#include <gtest/gtest.h>

#include "op2ca/comm/mpi_backend.hpp"

namespace {

class SimOnlyGuard : public ::testing::Environment {
public:
  void SetUp() override {
    if (op2ca::sim::MpiBackend::compiled_with_mpi() &&
        op2ca::sim::MpiBackend::launched_under_mpirun())
      GTEST_SKIP() << "sim-only suite: skipped under an MPI launcher "
                      "(run the mpirun-labelled tests instead)";
  }
};

const auto* const g_sim_only_guard =
    ::testing::AddGlobalTestEnvironment(new SimOnlyGuard);

}  // namespace
