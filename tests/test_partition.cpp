// Unit tests for the partitioners and ownership propagation.
#include <gtest/gtest.h>

#include <set>

#include "op2ca/mesh/annulus.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/partition/quality.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca::partition {
namespace {

TEST(Block, BalancedSizes) {
  const auto a = partition_block(10, 3);
  std::vector<int> count(3, 0);
  for (rank_t r : a) ++count[static_cast<size_t>(r)];
  EXPECT_EQ(count[0], 4);
  EXPECT_EQ(count[1], 3);
  EXPECT_EQ(count[2], 3);
  // Contiguity.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
}

TEST(Rib, BalancedAndDeterministic) {
  mesh::Quad2D q = mesh::make_quad2d(16, 16);
  const std::vector<double> coords =
      mesh::derive_coords(q.mesh, q.nodes);
  const gidx_t n = q.mesh.set(q.nodes).size;
  const auto a = partition_rib(coords, 2, n, 4);
  const auto b = partition_rib(coords, 2, n, 4);
  EXPECT_EQ(a, b);
  std::vector<gidx_t> count(4, 0);
  for (rank_t r : a) ++count[static_cast<size_t>(r)];
  for (gidx_t c : count) {
    EXPECT_GE(c, n / 4 - 2);
    EXPECT_LE(c, n / 4 + 2);
  }
}

TEST(Rib, NonPowerOfTwoRanks) {
  mesh::Quad2D q = mesh::make_quad2d(15, 11);
  const auto coords = mesh::derive_coords(q.mesh, q.nodes);
  const gidx_t n = q.mesh.set(q.nodes).size;
  const auto a = partition_rib(coords, 2, n, 5);
  std::set<rank_t> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), 5u);
  std::vector<gidx_t> count(5, 0);
  for (rank_t r : a) ++count[static_cast<size_t>(r)];
  for (gidx_t c : count) EXPECT_GT(c, 0);
}

TEST(KWay, BalancedAndConnectedish) {
  mesh::Quad2D q = mesh::make_quad2d(20, 20);
  const mesh::Csr g = mesh::set_graph(q.mesh, q.nodes);
  const auto a = partition_kway(g, 7);
  std::vector<gidx_t> count(7, 0);
  for (rank_t r : a) ++count[static_cast<size_t>(r)];
  const gidx_t n = g.num_rows();
  for (gidx_t c : count) {
    EXPECT_GT(c, n / 14);       // no empty/starved part
    EXPECT_LT(c, n * 2 / 7);    // no bloated part
  }
}

TEST(KWay, SingleRank) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  const mesh::Csr g = mesh::set_graph(q.mesh, q.nodes);
  const auto a = partition_kway(g, 1);
  for (rank_t r : a) EXPECT_EQ(r, 0);
}

TEST(PartitionMesh, AllSetsAssigned) {
  mesh::Annulus an = mesh::make_annulus(4, 6, 8);
  for (Kind kind : {Kind::Block, Kind::RIB, Kind::KWay}) {
    const Partition p = partition_mesh(an.mesh, 5, kind, an.nodes);
    ASSERT_EQ(static_cast<int>(p.assignment.size()), an.mesh.num_sets());
    for (mesh::set_id s = 0; s < an.mesh.num_sets(); ++s) {
      ASSERT_EQ(static_cast<gidx_t>(
                    p.assignment[static_cast<size_t>(s)].size()),
                an.mesh.set(s).size)
          << "set " << an.mesh.set(s).name << " kind " << kind_name(kind);
      for (rank_t r : p.assignment[static_cast<size_t>(s)]) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 5);
      }
    }
  }
}

TEST(PartitionMesh, DerivedSetsFollowSeed) {
  // An edge's owner must own one of its nodes (locality of propagation).
  mesh::Quad2D q = mesh::make_quad2d(12, 12);
  const Partition p = partition_mesh(q.mesh, 4, Kind::RIB, q.nodes);
  const mesh::MapDef& e2n = q.mesh.map(q.e2n);
  for (gidx_t e = 0; e < q.mesh.set(q.edges).size; ++e) {
    const rank_t re = p.owner(q.edges, e);
    const rank_t r0 =
        p.owner(q.nodes, e2n.targets[static_cast<size_t>(2 * e)]);
    EXPECT_EQ(re, r0);  // owner-of-first-target rule
  }
}

TEST(Quality, MetricsSane) {
  mesh::Quad2D q = mesh::make_quad2d(24, 24);
  const Partition rib = partition_mesh(q.mesh, 8, Kind::RIB, q.nodes);
  const Quality quality = evaluate_partition(q.mesh, rib, q.nodes);
  EXPECT_GT(quality.edge_cut, 0);
  EXPECT_GE(quality.max_neighbors, 1);
  EXPECT_LT(quality.imbalance, 1.3);
  EXPECT_GT(quality.min_part, 0);
}

TEST(Quality, KWayCutBeatsRandomByFar) {
  // Graph-aware partitioning must cut far fewer edges than a random
  // assignment of the same balance. (Index blocks on a row-major grid
  // are already near-optimal strips, so random is the honest baseline.)
  mesh::Quad2D q = mesh::make_quad2d(32, 32);
  const Partition kw = partition_mesh(q.mesh, 8, Kind::KWay, q.nodes);
  const Quality qk = evaluate_partition(q.mesh, kw, q.nodes);

  Partition rnd = kw;
  Rng rng(3);
  for (auto& r : rnd.assignment[static_cast<size_t>(q.nodes)])
    r = static_cast<rank_t>(rng.next_int(0, 7));
  const Quality qr = evaluate_partition(q.mesh, rnd, q.nodes);
  EXPECT_LT(qk.edge_cut, qr.edge_cut / 3);
}

TEST(Quality, KWayCutComparableToBlockStrips) {
  // Row-major block strips are near-optimal on a square grid; kway
  // should stay within a small factor of them.
  mesh::Quad2D q = mesh::make_quad2d(32, 32);
  const Partition blk = partition_mesh(q.mesh, 8, Kind::Block, q.nodes);
  const Partition kw = partition_mesh(q.mesh, 8, Kind::KWay, q.nodes);
  const Quality qb = evaluate_partition(q.mesh, blk, q.nodes);
  const Quality qk = evaluate_partition(q.mesh, kw, q.nodes);
  EXPECT_LE(qk.edge_cut, 2 * qb.edge_cut);
}

TEST(PartitionMesh, MoreRanksThanElementsRejected) {
  mesh::Quad2D q = mesh::make_quad2d(2, 2);  // 9 nodes
  EXPECT_THROW(partition_mesh(q.mesh, 100, Kind::KWay, q.nodes),
               op2ca::Error);
}

}  // namespace
}  // namespace op2ca::partition
