// Property tests for the locality layer (mesh/reorder + halo/reorder):
// permutation plumbing, the ordering algorithms themselves, block-aware
// colouring, and the World-level invariants — every per-(rank, set)
// permutation is a bijection that maps each layer block onto itself, dat
// contents round-trip through the permuted gather/scatter, and the
// orderings measurably improve the reuse proxies on a scrambled mesh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "op2ca/core/runtime.hpp"
#include "op2ca/halo/reorder.hpp"
#include "op2ca/mesh/colouring.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/reorder.hpp"
#include "op2ca/util/rng.hpp"
#include "test_common.hpp"

namespace op2ca::mesh {
namespace {

// -- Permutation plumbing. ----------------------------------------------

LIdxVec shuffled_identity(lidx_t n, std::uint64_t seed) {
  LIdxVec v(static_cast<std::size_t>(n));
  for (lidx_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  Rng rng(seed);
  for (lidx_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_int(0, i));
    std::swap(v[static_cast<std::size_t>(i)], v[j]);
  }
  return v;
}

TEST(Permutation, MakeValidatesBijection) {
  const Permutation p = make_permutation(shuffled_identity(100, 7));
  EXPECT_TRUE(permutation_valid(p));
  EXPECT_EQ(p.size(), 100);
  for (lidx_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.old_of_new[static_cast<std::size_t>(
                  p.new_of_old[static_cast<std::size_t>(i)])],
              i);
  }

  EXPECT_THROW(make_permutation(LIdxVec{0, 0, 1}), Error);  // duplicate
  EXPECT_THROW(make_permutation(LIdxVec{0, 3, 1}), Error);  // out of range
  EXPECT_THROW(make_permutation(LIdxVec{0, -1, 1}), Error);

  Permutation broken = make_permutation(LIdxVec{1, 2, 0});
  std::swap(broken.old_of_new[0], broken.old_of_new[1]);
  EXPECT_FALSE(permutation_valid(broken));
}

TEST(Permutation, IdentityDetection) {
  EXPECT_TRUE(make_permutation(LIdxVec{0, 1, 2}).is_identity());
  EXPECT_FALSE(make_permutation(LIdxVec{0, 2, 1}).is_identity());
  EXPECT_TRUE(Permutation{}.empty());
}

TEST(Permutation, RowsRoundTrip) {
  const Permutation p = make_permutation(shuffled_identity(64, 11));
  std::vector<double> data(64 * 3);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i) * 0.5;
  const std::vector<double> permuted = permute_rows(p, 3, data);
  EXPECT_NE(permuted, data);
  EXPECT_EQ(unpermute_rows(p, 3, permuted), data);
  // Row i of the input lands at row new_of_old[i].
  for (lidx_t i = 0; i < p.size(); ++i) {
    const auto dst = static_cast<std::size_t>(
        p.new_of_old[static_cast<std::size_t>(i)]);
    EXPECT_EQ(permuted[dst * 3], data[static_cast<std::size_t>(i) * 3]);
  }
}

TEST(Permutation, BlockPreservationPredicate) {
  const BlockVec blocks{{0, 3}, {3, 5}, {5, 8}};
  EXPECT_TRUE(permutation_preserves_blocks(
      make_permutation(LIdxVec{2, 0, 1, 4, 3, 7, 5, 6}), blocks));
  // 0 <-> 7 crosses the first and last blocks.
  EXPECT_FALSE(permutation_preserves_blocks(
      make_permutation(LIdxVec{7, 1, 2, 3, 4, 5, 6, 0}), blocks));
  EXPECT_TRUE(permutation_preserves_blocks(Permutation{}, blocks));
}

// -- Ordering algorithms. -----------------------------------------------

TEST(Rcm, RecoversPathBandwidth) {
  // A path graph under a scrambled labelling: lbl(i) = i * 37 mod 64
  // (37 coprime to 64, so lbl is a bijection). RCM from the min-degree
  // (endpoint) seed must recover bandwidth 1 — consecutive path nodes at
  // consecutive indices.
  const lidx_t n = 64;
  const auto lbl = [](lidx_t i) { return (i * 37) % 64; };
  std::vector<std::pair<lidx_t, lidx_t>> edges;
  for (lidx_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(lbl(i), lbl(i + 1));
    edges.emplace_back(lbl(i + 1), lbl(i));
  }
  const LocalCsr csr = csr_from_edges(n, edges);
  const Permutation p = rcm_order(csr, {{0, n}});
  ASSERT_TRUE(permutation_valid(p));
  lidx_t bandwidth = 0;
  for (lidx_t i = 0; i + 1 < n; ++i) {
    const lidx_t a = p.new_of_old[static_cast<std::size_t>(lbl(i))];
    const lidx_t b = p.new_of_old[static_cast<std::size_t>(lbl(i + 1))];
    bandwidth = std::max(bandwidth, std::abs(a - b));
  }
  EXPECT_EQ(bandwidth, 1);
}

TEST(Rcm, RespectsBlockBoundaries) {
  // One path spanning two blocks: the cross-block edge must be ignored
  // and each block permuted independently.
  const lidx_t n = 16;
  std::vector<std::pair<lidx_t, lidx_t>> edges;
  for (lidx_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(i, i + 1);
    edges.emplace_back(i + 1, i);
  }
  const BlockVec blocks{{0, 10}, {10, 16}};
  const Permutation p = rcm_order(csr_from_edges(n, edges), blocks);
  ASSERT_TRUE(permutation_valid(p));
  EXPECT_TRUE(permutation_preserves_blocks(p, blocks));
}

TEST(Sfc, ClustersGridNeighbours) {
  // 32x32 grid stored in a fully scrambled index order (true grid
  // coordinates attached to each element): Morton order must bring
  // geometric neighbours far closer in index space than the scrambled
  // layout leaves them.
  const lidx_t side = 32;
  const lidx_t n = side * side;
  const LIdxVec sl = shuffled_identity(n, 5);  // storage index per cell
  std::vector<double> coords(static_cast<std::size_t>(n) * 2);
  for (lidx_t y = 0; y < side; ++y) {
    for (lidx_t x = 0; x < side; ++x) {
      const auto e = static_cast<std::size_t>(
          sl[static_cast<std::size_t>(y * side + x)]);
      coords[e * 2 + 0] = static_cast<double>(x);
      coords[e * 2 + 1] = static_cast<double>(y);
    }
  }
  const Permutation p = sfc_order(coords, 2, n, {{0, n}});
  ASSERT_TRUE(permutation_valid(p));
  // Mean |index difference| over geometric neighbour pairs, scrambled
  // storage vs after the SFC permutation.
  const auto score = [&](bool reordered) {
    double sum = 0.0;
    std::size_t count = 0;
    const auto at = [&](lidx_t x, lidx_t y) {
      const lidx_t e = sl[static_cast<std::size_t>(y * side + x)];
      return reordered ? p.new_of_old[static_cast<std::size_t>(e)] : e;
    };
    for (lidx_t y = 0; y < side; ++y) {
      for (lidx_t x = 0; x < side; ++x) {
        if (x + 1 < side) {
          sum += std::abs(at(x, y) - at(x + 1, y));
          ++count;
        }
        if (y + 1 < side) {
          sum += std::abs(at(x, y) - at(x, y + 1));
          ++count;
        }
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(score(true), 0.25 * score(false));
}

TEST(OrderingQuality, DetectsLocalOrder) {
  // Path-edge map e -> (e, e+1): in order, every gather hops by one
  // element and each target is re-touched on the very next iteration.
  const lidx_t n = 100;
  LIdxVec ordered(static_cast<std::size_t>(n) * 2);
  for (lidx_t e = 0; e < n; ++e) {
    ordered[static_cast<std::size_t>(e) * 2 + 0] = e;
    ordered[static_cast<std::size_t>(e) * 2 + 1] = e + 1;
  }
  const OrderingQuality good =
      ordering_quality(ordered.data(), 2, n, n + 1);
  EXPECT_NEAR(good.gather_span, 1.0, 1e-12);
  EXPECT_NEAR(good.reuse_gap, 1.0, 1e-12);

  // The same edges visited in scrambled order: both proxies blow up.
  const Permutation p = make_permutation(shuffled_identity(n, 3));
  const std::vector<lidx_t> scrambled = permute_rows(p, 2, ordered);
  const OrderingQuality bad =
      ordering_quality(scrambled.data(), 2, n, n + 1);
  EXPECT_GT(bad.gather_span, 4.0 * good.gather_span);
  EXPECT_GT(bad.reuse_gap, 4.0 * good.reuse_gap);
}

// -- scramble_mesh. ------------------------------------------------------

TEST(ScrambleMesh, RelabelsConsistently) {
  const Hex3D h = make_hex3d(4, 4, 4);
  std::vector<GIdxVec> perms;
  const MeshDef out = scramble_mesh(h.mesh, 42, &perms);
  ASSERT_EQ(static_cast<int>(perms.size()), h.mesh.num_sets());
  ASSERT_EQ(out.num_sets(), h.mesh.num_sets());

  // Each per-set perm is a bijection and at least one is non-trivial.
  bool moved = false;
  for (int s = 0; s < h.mesh.num_sets(); ++s) {
    const auto& p = perms[static_cast<std::size_t>(s)];
    ASSERT_EQ(static_cast<gidx_t>(p.size()), h.mesh.set(s).size);
    std::vector<bool> seen(p.size(), false);
    for (const gidx_t g : p) {
      ASSERT_GE(g, 0);
      ASSERT_LT(g, static_cast<gidx_t>(p.size()));
      ASSERT_FALSE(seen[static_cast<std::size_t>(g)]);
      seen[static_cast<std::size_t>(g)] = true;
    }
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] != static_cast<gidx_t>(i)) moved = true;
  }
  EXPECT_TRUE(moved);

  // Maps commute with the relabelling: row e of the old map appears as
  // row perm_from[e] of the new map with perm_to applied to each target.
  for (int m = 0; m < h.mesh.num_maps(); ++m) {
    const MapDef& om = h.mesh.map(m);
    const MapDef& nm = out.map(m);
    const auto& pf = perms[static_cast<std::size_t>(om.from)];
    const auto& pt = perms[static_cast<std::size_t>(om.to)];
    for (gidx_t e = 0; e < h.mesh.set(om.from).size; ++e) {
      const auto ne = static_cast<std::size_t>(pf[static_cast<std::size_t>(e)]);
      for (int k = 0; k < om.arity; ++k) {
        const gidx_t old_t =
            om.targets[static_cast<std::size_t>(e) * om.arity + k];
        EXPECT_EQ(nm.targets[ne * static_cast<std::size_t>(nm.arity) + k],
                  pt[static_cast<std::size_t>(old_t)]);
      }
    }
  }

  // Dats move with their rows (coords stay attached to the right node).
  const DatDef& oc = h.mesh.dat(h.coords);
  const DatDef& nc = out.dat(h.coords);
  const auto& pn = perms[static_cast<std::size_t>(oc.set)];
  for (std::size_t i = 0; i < pn.size(); ++i) {
    const auto ni = static_cast<std::size_t>(pn[i]);
    for (int c = 0; c < oc.dim; ++c)
      EXPECT_EQ(nc.data[ni * oc.dim + c], oc.data[i * oc.dim + c]);
  }
  EXPECT_EQ(out.coords_dat(), h.mesh.coords_dat());
}

// -- Block colouring. ----------------------------------------------------

TEST(BlockColouring, ValidAndBlockAligned) {
  // Edge->node path map with heavy target sharing: every consecutive
  // edge pair conflicts, so per-element colouring needs 2 colours while
  // the blocked variant colours 8-element runs as units.
  const lidx_t n = 200;
  LIdxVec targets(static_cast<std::size_t>(n) * 2);
  for (lidx_t e = 0; e < n; ++e) {
    targets[static_cast<std::size_t>(e) * 2 + 0] = e;
    targets[static_cast<std::size_t>(e) * 2 + 1] = e + 1;
  }
  const ColourMapView view{targets.data(), 2, n, n + 1};
  const std::vector<ColourMapView> views{view};

  const Colouring blocked = block_colouring(n, views, 8);
  EXPECT_EQ(blocked.block_elems, 8);
  EXPECT_TRUE(colouring_valid(blocked, n, views));
  // Blocks share one colour.
  for (lidx_t e = 0; e < n; ++e)
    EXPECT_EQ(blocked.colour[static_cast<std::size_t>(e)],
              blocked.colour[static_cast<std::size_t>((e / 8) * 8)]);
  // Classes partition [0, n).
  std::size_t covered = 0;
  for (const auto& cls : blocked.classes) covered += cls.size();
  EXPECT_EQ(covered, static_cast<std::size_t>(n));

  // Per-element colouring of the same map must reject the blocked
  // assignment (adjacent edges share a node), proving colouring_valid
  // actually honours block_elems rather than ignoring conflicts.
  Colouring cheat = blocked;
  cheat.block_elems = 1;
  EXPECT_FALSE(colouring_valid(cheat, n, views));

  EXPECT_TRUE(
      colouring_valid(block_colouring(n, views, 1), n, views));
}

}  // namespace
}  // namespace op2ca::mesh

// -- World-level invariants. --------------------------------------------

namespace op2ca::core {
namespace {

mesh::MeshDef scrambled_hex(gidx_t nx, gidx_t ny, gidx_t nz) {
  const mesh::Hex3D h = mesh::make_hex3d(nx, ny, nz);
  return mesh::scramble_mesh(h.mesh, 1234);
}

WorldConfig reorder_config(int nranks, mesh::ReorderKind kind) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.reorder.kind = kind;
  return cfg;
}

TEST(WorldReorder, PermutationsValidAndBlockPreserving) {
  const World ref(scrambled_hex(6, 5, 4),
                  reorder_config(3, mesh::ReorderKind::None));
  for (const auto kind :
       {mesh::ReorderKind::RCM, mesh::ReorderKind::SFC,
        mesh::ReorderKind::Auto}) {
    const World w(scrambled_hex(6, 5, 4), reorder_config(3, kind));
    const halo::ReorderResult& res = w.reorder_result();
    ASSERT_TRUE(res.any());
    const int depth = w.plan().depth;
    for (int r = 0; r < 3; ++r) {
      for (int s = 0; s < w.mesh().num_sets(); ++s) {
        const auto& p = res.perms[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(s)];
        if (p.empty()) continue;
        EXPECT_TRUE(mesh::permutation_valid(p));
        const halo::SetLayout& rl = ref.plan().layout(r, s);
        const halo::SetLayout& wl = w.plan().layout(r, s);
        ASSERT_EQ(p.size(), rl.total);
        // Layer blocks (with din shells clamped at depth + 1) map onto
        // themselves.
        EXPECT_TRUE(mesh::permutation_preserves_blocks(
            p, halo::reorder_blocks(rl, depth)));
        // local_to_global is exactly the reference, permuted.
        for (lidx_t i = 0; i < p.size(); ++i) {
          EXPECT_EQ(wl.local_to_global[static_cast<std::size_t>(
                        p.new_of_old[static_cast<std::size_t>(i)])],
                    rl.local_to_global[static_cast<std::size_t>(i)]);
        }
        // owned_din: reference values clamped to depth + 1, permuted,
        // and still non-increasing in local order.
        for (lidx_t i = 0; i < rl.num_owned; ++i) {
          const int expect = std::min(
              rl.owned_din[static_cast<std::size_t>(i)], depth + 1);
          EXPECT_EQ(wl.owned_din[static_cast<std::size_t>(
                        p.new_of_old[static_cast<std::size_t>(i)])],
                    expect);
        }
        for (lidx_t i = 1; i < wl.num_owned; ++i) {
          EXPECT_GE(wl.owned_din[static_cast<std::size_t>(i - 1)],
                    wl.owned_din[static_cast<std::size_t>(i)]);
        }
        // core_count agrees with the un-reordered plan for every shrink
        // the executors can request.
        for (int shrink = 0; shrink <= depth; ++shrink)
          EXPECT_EQ(wl.core_count(shrink), rl.core_count(shrink));
      }
    }
  }
}

TEST(WorldReorder, DatContentsRoundTripThroughPermutedPlan) {
  // reset_dat scatters global rows through the permuted local_to_global;
  // fetch_dat gathers them back. No loops run, so the round trip must be
  // exact — this is the dat permute/inverse-permute property end to end.
  mesh::MeshDef m = scrambled_hex(5, 4, 3);
  const auto nodes = *m.find_set("nodes");
  const auto d = m.add_dat("probe", nodes, 2);
  const auto n = static_cast<std::size_t>(m.set(nodes).size);
  std::vector<double> global(n * 2);
  for (std::size_t i = 0; i < global.size(); ++i)
    global[i] = std::sin(static_cast<double>(i));

  World w(std::move(m), reorder_config(4, mesh::ReorderKind::RCM));
  ASSERT_TRUE(w.reorder_result().any());
  w.reset_dat(d, global);
  EXPECT_EQ(w.fetch_dat(d), global);
}

TEST(WorldReorder, OrderingImprovesReuseProxiesOnScrambledMesh) {
  // The end-to-end point of the layer: on a scrambled mesh, RCM and SFC
  // must improve both locality proxies of the edge->node gather stream
  // over partition order (single rank, so the full map is one stream).
  const auto quality = [](mesh::ReorderKind kind) {
    const World w(scrambled_hex(12, 12, 12), reorder_config(1, kind));
    const auto e2n = *w.mesh().find_map("e2n");
    const auto edges = *w.mesh().find_set("edges");
    const auto nodes = *w.mesh().find_set("nodes");
    const halo::RankPlan& rp = w.plan().ranks[0];
    const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(e2n)];
    return mesh::ordering_quality(
        lm.targets.data(), lm.arity,
        rp.sets[static_cast<std::size_t>(edges)].num_owned,
        rp.sets[static_cast<std::size_t>(nodes)].total);
  };
  const mesh::OrderingQuality none = quality(mesh::ReorderKind::None);
  const mesh::OrderingQuality rcm = quality(mesh::ReorderKind::RCM);
  const mesh::OrderingQuality sfc = quality(mesh::ReorderKind::SFC);
  EXPECT_LT(rcm.gather_span, 0.5 * none.gather_span);
  EXPECT_LT(rcm.reuse_gap, 0.5 * none.reuse_gap);
  EXPECT_LT(sfc.gather_span, 0.5 * none.gather_span);
  EXPECT_LT(sfc.reuse_gap, 0.5 * none.reuse_gap);
}

TEST(WorldReorder, PerSetOverrideAndDisabledConfig) {
  // A per-set override can switch one set off; a fully disabled config
  // leaves no trace.
  WorldConfig cfg = reorder_config(2, mesh::ReorderKind::RCM);
  cfg.reorder.per_set["nodes"] = mesh::ReorderKind::None;
  const World w(scrambled_hex(4, 4, 4), cfg);
  const auto nodes = *w.mesh().find_set("nodes");
  ASSERT_TRUE(w.reorder_result().any());
  EXPECT_EQ(w.reorder_result().set_kind[static_cast<std::size_t>(nodes)],
            mesh::ReorderKind::None);
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(w.reorder_result()
                    .perms[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(nodes)]
                    .empty());
  }

  const World off(scrambled_hex(4, 4, 4),
                  reorder_config(2, mesh::ReorderKind::None));
  EXPECT_FALSE(off.reorder_result().any());
}

}  // namespace
}  // namespace op2ca::core
