// End-to-end tests of the baseline (Alg 1) runtime: SPMD execution over
// rank threads, halo exchanges driven by dirty bits, owner-compute
// redundant execution, global reductions, and agreement with single-rank
// sequential execution.
#include <gtest/gtest.h>

#include <sstream>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/error.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

using testutil::expect_allclose;

/// Small 2D problem with the Fig-3 style dats.
struct QuadProblem {
  mesh::Quad2D q;
  mesh::dat_id res = -1, pres = -1, flux = -1, cw = -1;
};

QuadProblem make_quad_problem(gidx_t nx, gidx_t ny) {
  QuadProblem p{mesh::make_quad2d(nx, ny), -1, -1, -1, -1};
  mesh::MeshDef& m = p.q.mesh;
  const auto nn = static_cast<std::size_t>(m.set(p.q.nodes).size);
  const auto nc = static_cast<std::size_t>(m.set(p.q.cells).size);
  std::vector<double> pres(nn * 2), cw(nc * 4);
  for (std::size_t i = 0; i < pres.size(); ++i)
    pres[i] = 0.5 + 0.001 * static_cast<double>(i % 97);
  for (std::size_t i = 0; i < cw.size(); ++i)
    cw[i] = -0.25 + 0.002 * static_cast<double>(i % 53);
  p.res = m.add_dat("res", p.q.nodes, 2);
  p.pres = m.add_dat("pres", p.q.nodes, 2, std::move(pres));
  p.flux = m.add_dat("flux", p.q.nodes, 2);
  p.cw = m.add_dat("cw", p.q.cells, 4, std::move(cw));
  return p;
}

/// The two loops of Fig 3 (update over edges INCs res from pres reads;
/// edge_flux INCs flux from res and cell-weight reads).
void fig3_kernel_update(double* r1, double* r2, const double* p1,
                        const double* p2) {
  r1[0] += p1[0] - p1[1];
  r1[1] += p2[0] - p2[1];
  r2[0] += p2[1] - p2[0];
  r2[1] += p1[1] - p1[0];
}

void fig3_kernel_flux(double* f1, double* f2, const double* r1,
                      const double* r2, const double* c1,
                      const double* c2) {
  f1[0] += r1[0] * c1[0] - r1[1] * c1[1];
  f1[1] += r2[1] * c1[2] - r2[0] * c1[3];
  f2[0] += r2[1] * c2[2] - r1[1] * c2[3];
  f2[1] += r1[0] * c2[0] - r1[1] * c2[1];
}

void run_fig3_loops(Runtime& rt, int timesteps) {
  const Set edges = rt.set("edges");
  const Dat res = rt.dat("res"), pres = rt.dat("pres"),
            flux = rt.dat("flux"), cw = rt.dat("cw");
  const Map e2n = rt.map("e2n"), e2c = rt.map("e2c");
  for (int t = 0; t < timesteps; ++t) {
    rt.par_loop("update", edges, fig3_kernel_update,
                arg_dat(res, 0, e2n, Access::INC),
                arg_dat(res, 1, e2n, Access::INC),
                arg_dat(pres, 0, e2n, Access::READ),
                arg_dat(pres, 1, e2n, Access::READ));
    rt.par_loop("edge_flux", edges, fig3_kernel_flux,
                arg_dat(flux, 0, e2n, Access::INC),
                arg_dat(flux, 1, e2n, Access::INC),
                arg_dat(res, 0, e2n, Access::READ),
                arg_dat(res, 1, e2n, Access::READ),
                arg_dat(cw, 0, e2c, Access::READ),
                arg_dat(cw, 1, e2c, Access::READ));
  }
}

WorldConfig config_for(int nranks, partition::Kind kind, int depth = 2) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = kind;
  cfg.halo_depth = depth;
  cfg.validate = true;
  return cfg;
}

TEST(RuntimeOp2, MatchesSerialOnFig3Loops) {
  QuadProblem serial_p = make_quad_problem(14, 11);
  QuadProblem par_p = make_quad_problem(14, 11);

  World serial(std::move(serial_p.q.mesh),
               config_for(1, partition::Kind::Block));
  serial.run([](Runtime& rt) { run_fig3_loops(rt, 3); });

  World par(std::move(par_p.q.mesh), config_for(5, partition::Kind::KWay));
  par.run([](Runtime& rt) { run_fig3_loops(rt, 3); });

  expect_allclose(serial.fetch_dat(serial_p.res),
                  par.fetch_dat(par_p.res));
  expect_allclose(serial.fetch_dat(serial_p.flux),
                  par.fetch_dat(par_p.flux));
}

TEST(RuntimeOp2, AllPartitionersAgree) {
  std::vector<double> reference;
  for (partition::Kind kind :
       {partition::Kind::Block, partition::Kind::RIB,
        partition::Kind::KWay}) {
    QuadProblem p = make_quad_problem(10, 10);
    World w(std::move(p.q.mesh), config_for(4, kind));
    w.run([](Runtime& rt) { run_fig3_loops(rt, 2); });
    const auto flux = w.fetch_dat(p.flux);
    if (reference.empty())
      reference = flux;
    else
      expect_allclose(reference, flux);
  }
}

TEST(RuntimeOp2, DirtyBitsSkipCleanExchanges) {
  QuadProblem p = make_quad_problem(12, 12);
  const mesh::dat_id pres_id = p.pres;
  World w(std::move(p.q.mesh), config_for(4, partition::Kind::KWay));
  w.run([&](Runtime& rt) {
    const Set edges = rt.set("edges");
    const Dat res = rt.dat("res"), pres = rt.dat("pres");
    const Map e2n = rt.map("e2n");
    // Two identical read-only-pres loops: pres halo is fresh at start
    // (gathered at setup), so NO exchange should ever happen for it.
    for (int i = 0; i < 2; ++i)
      rt.par_loop("readonly", edges, fig3_kernel_update,
                  arg_dat(res, 0, e2n, Access::INC),
                  arg_dat(res, 1, e2n, Access::INC),
                  arg_dat(pres, 0, e2n, Access::READ),
                  arg_dat(pres, 1, e2n, Access::READ));
  });
  (void)pres_id;
  const auto metrics = w.loop_metrics();
  EXPECT_EQ(metrics.at("readonly").msgs, 0);
  EXPECT_EQ(metrics.at("readonly").bytes, 0);
}

TEST(RuntimeOp2, WriteDirtiesHaloAndTriggersExchange) {
  QuadProblem p = make_quad_problem(12, 12);
  World w(std::move(p.q.mesh), config_for(4, partition::Kind::KWay));
  w.run([&](Runtime& rt) { run_fig3_loops(rt, 2); });
  const auto metrics = w.loop_metrics();
  // res is written by update and read by edge_flux -> every edge_flux
  // call exchanges res (2 messages per neighbour pair direction).
  EXPECT_GT(metrics.at("edge_flux").msgs, 0);
  // pres is never written: update never exchanges.
  EXPECT_EQ(metrics.at("update").msgs, 0);
}

TEST(RuntimeOp2, GblReductionSumsOwnedOnly) {
  QuadProblem p = make_quad_problem(9, 7);
  const gidx_t nnodes = p.q.mesh.set(p.q.nodes).size;
  for (int nranks : {1, 3, 6}) {
    QuadProblem pp = make_quad_problem(9, 7);
    World w(std::move(pp.q.mesh),
            config_for(nranks, partition::Kind::RIB));
    double total = 0.0;
    w.run([&](Runtime& rt) {
      const Set nodes = rt.set("nodes");
      const Dat pres = rt.dat("pres");
      double local = 0.0;
      rt.par_loop(
          "count", nodes,
          [](const double* pr, double* acc) { acc[0] += 1.0 + 0.0 * pr[0]; },
          arg_dat(pres, Access::READ), arg_gbl(&local, 1, Access::INC));
      if (rt.rank() == 0) total = local;
    });
    EXPECT_DOUBLE_EQ(total, static_cast<double>(nnodes)) << nranks;
  }
}

TEST(RuntimeOp2, GblReadBroadcastsConstant) {
  QuadProblem p = make_quad_problem(6, 6);
  World w(std::move(p.q.mesh), config_for(2, partition::Kind::Block));
  w.run([&](Runtime& rt) {
    const Set nodes = rt.set("nodes");
    const Dat res = rt.dat("res");
    double alpha = 2.5;
    rt.par_loop(
        "scale", nodes,
        [](double* r, const double* a) {
          r[0] = a[0];
          r[1] = a[0];
        },
        arg_dat(res, Access::WRITE), arg_gbl(&alpha, 1, Access::READ));
  });
  const auto res = w.fetch_dat(p.res);
  for (double v : res) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(RuntimeOp2, FetchAndResetDat) {
  QuadProblem p = make_quad_problem(5, 5);
  World w(std::move(p.q.mesh), config_for(3, partition::Kind::KWay));
  const gidx_t n = w.mesh().set(p.q.nodes).size;
  std::vector<double> fresh(static_cast<std::size_t>(2 * n), 7.0);
  w.reset_dat(p.res, fresh);
  EXPECT_EQ(w.fetch_dat(p.res), fresh);
  EXPECT_THROW(w.reset_dat(p.res, std::vector<double>(3)), Error);
}

TEST(RuntimeOp2, MetricsCountIterations) {
  QuadProblem p = make_quad_problem(8, 8);
  const gidx_t nedges = p.q.mesh.set(p.q.edges).size;
  World w(std::move(p.q.mesh), config_for(3, partition::Kind::KWay));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  const auto metrics = w.loop_metrics();
  const LoopMetrics& up = metrics.at("update");
  // Owned iterations = nedges; import-exec layer-1 edges add redundancy.
  EXPECT_GE(up.core_iters + up.halo_iters, nedges);
  EXPECT_GT(up.core_iters, 0);
  EXPECT_GT(up.halo_iters, 0);
}

TEST(RuntimeOp2, ErrorsPropagateAndDontDeadlock) {
  QuadProblem p = make_quad_problem(8, 8);
  World w(std::move(p.q.mesh), config_for(4, partition::Kind::KWay));
  EXPECT_THROW(w.run([](Runtime& rt) {
                 if (rt.rank() == 2) raise("rank 2 exploded");
                 rt.barrier();  // others block here until poisoned
               }),
               Error);
}

TEST(RuntimeOp2, RejectsApiMisuse) {
  QuadProblem p = make_quad_problem(6, 6);
  World w(std::move(p.q.mesh), config_for(2, partition::Kind::Block));
  w.run([](Runtime& rt) {
    EXPECT_THROW(rt.set("nope"), Error);
    EXPECT_THROW(rt.map("nope"), Error);
    EXPECT_THROW(rt.dat("nope"), Error);

    const Set nodes = rt.set("nodes");
    const Set edges = rt.set("edges");
    const Dat res = rt.dat("res");
    const Map e2n = rt.map("e2n");
    // Direct arg on the wrong set.
    EXPECT_THROW(rt.par_loop("bad", edges, [](double*) {},
                             arg_dat(res, Access::WRITE)),
                 Error);
    // Map that does not start at the iteration set.
    EXPECT_THROW(rt.par_loop("bad2", nodes, [](double*) {},
                             arg_dat(res, 0, e2n, Access::READ)),
                 Error);
    // Map index out of arity.
    EXPECT_THROW(rt.par_loop("bad3", edges, [](double*) {},
                             arg_dat(res, 5, e2n, Access::READ)),
                 Error);
    // Gbl INC combined with indirect write.
    double acc = 0.0;
    EXPECT_THROW(
        rt.par_loop(
            "bad4", edges, [](double*, double*) {},
            arg_dat(res, 0, e2n, Access::INC),
            arg_gbl(&acc, 1, Access::INC)),
        Error);
  });
}

TEST(RuntimeOp2, MultigridSolverRunsAndReducesResidual) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(3000, 3);
  World w(std::move(prob.mg.mesh), config_for(4, partition::Kind::RIB));
  std::vector<double> history;
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    const auto local = apps::mgcfd::run_solver(rt, h, 5);
    if (rt.rank() == 0) history = local;
  });
  ASSERT_EQ(history.size(), 5u);
  for (double r : history) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(RuntimeOp2, MgcfdSolverMatchesSerial) {
  apps::mgcfd::Problem sp = apps::mgcfd::build_problem(2000, 2);
  apps::mgcfd::Problem pp = apps::mgcfd::build_problem(2000, 2);
  const mesh::dat_id q0 = sp.levels[0].q;

  World serial(std::move(sp.mg.mesh), config_for(1, partition::Kind::Block));
  serial.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, sp);
    apps::mgcfd::run_solver(rt, h, 3);
  });
  World par(std::move(pp.mg.mesh), config_for(5, partition::Kind::KWay));
  par.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, pp);
    apps::mgcfd::run_solver(rt, h, 3);
  });
  expect_allclose(serial.fetch_dat(q0), par.fetch_dat(pp.levels[0].q));
}

TEST(RuntimeOp2, StatePersistsAcrossRuns) {
  // World::run may be called repeatedly (setup phase, then time loop);
  // dat values and dirty bits must carry over.
  QuadProblem p = make_quad_problem(10, 10);
  World w(std::move(p.q.mesh), config_for(4, partition::Kind::KWay));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  const auto after_one = w.fetch_dat(p.flux);
  w.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  const auto after_two = w.fetch_dat(p.flux);
  // Second run accumulated further increments on top of the first.
  double diff = 0.0;
  for (size_t i = 0; i < after_one.size(); ++i)
    diff = std::max(diff, std::abs(after_two[i] - after_one[i]));
  EXPECT_GT(diff, 0.0);

  // And matches a single two-step run from the same initial state.
  QuadProblem p2 = make_quad_problem(10, 10);
  World w2(std::move(p2.q.mesh), config_for(4, partition::Kind::KWay));
  w2.run([](Runtime& rt) { run_fig3_loops(rt, 2); });
  expect_allclose(after_two, w2.fetch_dat(p2.flux));
}

TEST(RuntimeOp2, ResetDatClearsStateMidStream) {
  QuadProblem p = make_quad_problem(8, 8);
  World w(std::move(p.q.mesh), config_for(3, partition::Kind::RIB));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 2); });
  const gidx_t n = w.mesh().set(p.q.nodes).size;
  w.reset_dat(p.res, std::vector<double>(static_cast<size_t>(2 * n), 0.0));
  w.reset_dat(p.flux, std::vector<double>(static_cast<size_t>(2 * n), 0.0));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  const auto flux_restarted = w.fetch_dat(p.flux);

  QuadProblem p2 = make_quad_problem(8, 8);
  World w2(std::move(p2.q.mesh), config_for(3, partition::Kind::RIB));
  // One fresh step... but pres evolved? pres is never written by the
  // fig3 loops, so a single step from zeroed res/flux is equivalent.
  w2.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  expect_allclose(flux_restarted, w2.fetch_dat(p2.flux));
}

TEST(RuntimeOp2, SchedulingIndependentDeterminism) {
  // Rank threads interleave arbitrarily on the host, but results (and
  // even the FP summation order within each rank) are functions of the
  // plan alone: two runs of the same program must agree bit-for-bit.
  auto run_once = [] {
    QuadProblem p = make_quad_problem(12, 9);
    World w(std::move(p.q.mesh), config_for(6, partition::Kind::KWay));
    w.run([](Runtime& rt) { run_fig3_loops(rt, 3); });
    return w.fetch_dat(p.flux);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bitwise
}

TEST(RuntimeOp2, MetricsCsvExport) {
  QuadProblem p = make_quad_problem(8, 8);
  World w(std::move(p.q.mesh), config_for(3, partition::Kind::KWay));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 1); });
  std::ostringstream os;
  w.write_metrics_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,calls"), std::string::npos);
  EXPECT_NE(csv.find("loop,update"), std::string::npos);
  EXPECT_NE(csv.find("loop,edge_flux"), std::string::npos);
  // Temporal-tiling ledger columns ride at the end of every row.
  EXPECT_NE(csv.find("tile,redundant_elems,msgs_saved"),
            std::string::npos);
}

TEST(RuntimeOp2, MetricsMergeTilingFields) {
  // Allgather-merge semantics of the tiling ledger: tile is a max over
  // ranks (they all ran the same epochs), the redundant-compute and
  // saved-message counters are per-rank work and sum.
  LoopMetrics a, b;
  a.tile = 4;
  a.redundant_elems = 100;
  a.msgs_saved = 9;
  b.tile = 2;
  b.redundant_elems = 50;
  b.msgs_saved = 3;
  a.merge_from(b);
  EXPECT_EQ(a.tile, 4);
  EXPECT_EQ(a.redundant_elems, 150);
  EXPECT_EQ(a.msgs_saved, 12);
  b.merge_from(a);
  EXPECT_EQ(b.tile, 4);
}

TEST(RuntimeOp2, PhaseTimingsSumToWall) {
  QuadProblem p = make_quad_problem(12, 12);
  World w(std::move(p.q.mesh), config_for(4, partition::Kind::KWay));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 2); });
  for (const auto& [name, m] : w.loop_metrics()) {
    const double parts = m.pack_seconds + m.core_seconds + m.wait_seconds +
                         m.unpack_seconds + m.halo_seconds;
    EXPECT_NEAR(parts, m.wall_seconds, 1e-3) << name;
    EXPECT_GE(m.pack_seconds, 0.0);
    EXPECT_GE(m.core_seconds, 0.0);
    EXPECT_GE(m.wait_seconds, 0.0);
    EXPECT_GE(m.unpack_seconds, 0.0);
    EXPECT_GE(m.halo_seconds, 0.0);
  }
}

}  // namespace
}  // namespace op2ca::core
