// Threaded-execution suite for WorldConfig::threads_per_rank.
//
// Guarantees under test:
//  * width-independence: colour-ordered sweeps are a pure function of
//    the colouring, so any pool width > 1 produces BIT-IDENTICAL
//    results (threads=2 vs threads=4, EXPECT_EQ on raw vectors);
//  * threads=1 keeps the legacy single-region path and threads>1 only
//    reassociates increment sums — allclose against the serial run;
//  * serial_dispatch takes precedence over the pool;
//  * gbl-INC loops reduce exactly at any width (they run serially);
//  * the new LoopMetrics fields (chunks, colours, busy time) report.
//
// Covered across per-loop OP2, explicit CA chains and lazy auto-chains,
// on the MG-CFD synthetic chain and a Hydra chain.
#include <gtest/gtest.h>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

enum class Mode { kOp2, kCa, kLazy };

WorldConfig threaded_config(int nranks, Mode mode, int threads) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.threads_per_rank = threads;
  if (mode == Mode::kCa) cfg.chains.enable("synthetic");
  if (mode == Mode::kLazy) cfg.lazy = true;
  return cfg;
}

void plain_loops(Runtime& rt, const apps::mgcfd::Handles& h, int pairs) {
  namespace k = apps::mgcfd::kernels;
  rt.par_loop("perturb", h.nodes0, k::synth_perturb,
              arg_dat(rt.dat("spres"), Access::RW));
  for (int c = 0; c < pairs; ++c) {
    rt.par_loop("u", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.par_loop("f", h.edges0, k::synth_edge_flux,
                arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                arg_dat(h.sres, 0, h.e2n0, Access::READ),
                arg_dat(h.sres, 1, h.e2n0, Access::READ),
                arg_dat(h.sewt, Access::READ));
  }
}

struct SynthResult {
  std::vector<double> sres, sflux, spres;
};

SynthResult run_synth(int nranks, Mode mode, int threads,
                      World** out_world = nullptr) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  auto w = std::make_unique<World>(std::move(prob.mg.mesh),
                                   threaded_config(nranks, mode, threads));
  w->run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t) {
      if (mode == Mode::kLazy) {
        plain_loops(rt, h, 3);
        rt.barrier();
      } else {
        apps::mgcfd::run_synthetic_chain(rt, h, 3);
      }
    }
  });
  SynthResult res{w->fetch_dat(sres), w->fetch_dat(sflux),
                  w->fetch_dat(spres)};
  if (out_world != nullptr) *out_world = w.release();
  return res;
}

void expect_bitwise(const SynthResult& a, const SynthResult& b) {
  EXPECT_EQ(a.sres, b.sres);
  EXPECT_EQ(a.sflux, b.sflux);
  EXPECT_EQ(a.spres, b.spres);
}

void expect_close(const SynthResult& a, const SynthResult& b) {
  testutil::expect_allclose(a.sres, b.sres);
  testutil::expect_allclose(a.sflux, b.sflux);
  testutil::expect_allclose(a.spres, b.spres);
}

TEST(ThreadedExec, WidthIndependentOp2) {
  expect_bitwise(run_synth(4, Mode::kOp2, 2),
                 run_synth(4, Mode::kOp2, 4));
}

TEST(ThreadedExec, WidthIndependentCa) {
  expect_bitwise(run_synth(4, Mode::kCa, 2),
                 run_synth(4, Mode::kCa, 4));
}

TEST(ThreadedExec, WidthIndependentLazy) {
  expect_bitwise(run_synth(4, Mode::kLazy, 2),
                 run_synth(4, Mode::kLazy, 4));
}

TEST(ThreadedExec, ThreadedMatchesSerialToTolerance) {
  for (Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy})
    expect_close(run_synth(4, mode, 1), run_synth(4, mode, 3));
}

TEST(ThreadedExec, SerialDispatchOverridesPool) {
  // serial_dispatch forces the per-element path even with threads set:
  // results (and the no-pool metrics) must match serial_dispatch alone.
  auto run = [](int threads) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
    const mesh::dat_id sres = prob.sres;
    WorldConfig cfg = threaded_config(3, Mode::kOp2, threads);
    cfg.serial_dispatch = true;
    World w(std::move(prob.mg.mesh), cfg);
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      apps::mgcfd::run_synthetic_chain(rt, h, 2);
    });
    auto out = w.fetch_dat(sres);
    for (const auto& [name, m] : w.loop_metrics()) {
      EXPECT_EQ(m.chunks, 0) << name;
      EXPECT_EQ(m.max_colours, 0) << name;
      EXPECT_EQ(m.busy_seconds, 0.0) << name;
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadedExec, MetricsReportChunksAndColours) {
  World* w = nullptr;
  run_synth(3, Mode::kOp2, 4, &w);
  std::unique_ptr<World> owned(w);
  const auto metrics = owned->loop_metrics();
  // Direct RW loop: contiguous chunks, no colouring.
  EXPECT_GT(metrics.at("synth_perturb").chunks, 0);
  EXPECT_EQ(metrics.at("synth_perturb").max_colours, 0);
  // Indirect-INC loops: colour-ordered sweeps over >= 2 colours (every
  // interior node is shared by two edges), counted as chunked regions.
  for (const char* name : {"synth_update", "synth_edge_flux"}) {
    EXPECT_GT(metrics.at(name).chunks, 0) << name;
    EXPECT_GE(metrics.at(name).max_colours, 2) << name;
    EXPECT_GT(metrics.at(name).busy_seconds, 0.0) << name;
  }
}

TEST(ThreadedExec, ChainMetricsReportColours) {
  World* w = nullptr;
  run_synth(3, Mode::kCa, 4, &w);
  std::unique_ptr<World> owned(w);
  const auto metrics = owned->chain_metrics();
  ASSERT_TRUE(metrics.count("synthetic"));
  EXPECT_GT(metrics.at("synthetic").chunks, 0);
  EXPECT_GE(metrics.at("synthetic").max_colours, 2);
}

TEST(ThreadedExec, GblReductionExactAtAnyWidth) {
  // arg_gbl INC loops run the serial region path under the pool; the
  // owned-only sum must stay exact at every width.
  for (int threads : {1, 4}) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
    const gidx_t nnodes =
        prob.mg.mesh.set(prob.mg.levels[0].nodes).size;
    World w(std::move(prob.mg.mesh),
            threaded_config(3, Mode::kOp2, threads));
    double total = 0.0;
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      double local = 0.0;
      rt.par_loop(
          "count", h.nodes0,
          [](const double* pr, double* acc) { acc[0] += 1.0 + 0.0 * pr[0]; },
          arg_dat(rt.dat("spres"), Access::READ),
          arg_gbl(&local, 1, Access::INC));
      if (rt.rank() == 0) total = local;
    });
    EXPECT_DOUBLE_EQ(total, static_cast<double>(nnodes)) << threads;
  }
}

// -- Hydra chain (vflux preceded by its gradl producer). ----------------

struct HydraResult {
  std::vector<double> ql, res, visres;
};

HydraResult run_hydra(int nranks, bool enable_ca, int threads) {
  namespace hy = apps::hydra;
  hy::Problem prob = hy::build_problem(1500);
  const hy::Problem ids = prob;
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::RIB;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.threads_per_rank = threads;
  if (enable_ca) {
    cfg.chains.enable("gradl");
    cfg.chains.enable("vflux");
  }
  World w(std::move(prob.an.mesh), cfg);
  w.run([&](Runtime& rt) {
    const hy::Handles h = hy::resolve_handles(rt, ids);
    hy::run_setup(rt, h);
    hy::run_chain_gradl(rt, h);
    hy::run_chain_vflux(rt, h);
  });
  return HydraResult{w.fetch_dat(ids.ql), w.fetch_dat(ids.res),
                     w.fetch_dat(ids.visres)};
}

TEST(ThreadedExec, HydraWidthIndependentCa) {
  const HydraResult a = run_hydra(4, true, 2);
  const HydraResult b = run_hydra(4, true, 4);
  EXPECT_EQ(a.ql, b.ql);
  EXPECT_EQ(a.res, b.res);
  EXPECT_EQ(a.visres, b.visres);
}

TEST(ThreadedExec, HydraThreadedMatchesSerialToTolerance) {
  for (bool ca : {false, true}) {
    const HydraResult serial = run_hydra(4, ca, 1);
    const HydraResult threaded = run_hydra(4, ca, 3);
    testutil::expect_allclose(serial.ql, threaded.ql);
    testutil::expect_allclose(serial.res, threaded.res);
    testutil::expect_allclose(serial.visres, threaded.visres);
  }
}

}  // namespace
}  // namespace op2ca::core
