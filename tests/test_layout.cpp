// Property suite for the SIMD data plane (mesh/layout + the layout-aware
// halo pack): descriptor invariants, transpose round-trips, AoSoA tail
// blocks, aligned storage, wire-format equality between the reference and
// plan-driven grouped packs, and the rank<->global boundary transposes.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "op2ca/core/runtime.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/layout.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/util/aligned.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca {
namespace {

using mesh::DatLayout;
using mesh::LayoutKind;

std::vector<double> random_rows(lidx_t elems, int dim, std::uint64_t seed) {
  std::vector<double> rows(static_cast<std::size_t>(elems) *
                           static_cast<std::size_t>(dim));
  Rng rng(seed);
  for (auto& v : rows) v = rng.next_range(-2.0, 2.0);
  return rows;
}

TEST(DatLayout, AosIsLegacyRowMajor) {
  const DatLayout lay = DatLayout::make(LayoutKind::AoS, 5, 37, 8);
  EXPECT_EQ(lay.padded, 37);
  EXPECT_EQ(lay.cstride, 1);
  EXPECT_EQ(lay.alloc_doubles(), 37u * 5u);
  for (lidx_t i = 0; i < 37; ++i)
    for (int c = 0; c < 5; ++c)
      EXPECT_EQ(lay.offset(i, c),
                static_cast<std::size_t>(i) * 5 + static_cast<std::size_t>(c));
}

TEST(DatLayout, SoaComponentPlanesAreUnitStride) {
  const DatLayout lay = DatLayout::make(LayoutKind::SoA, 3, 37, 8);
  EXPECT_GE(lay.padded, 37);
  EXPECT_EQ(lay.padded % 8, 0) << "planes must start cache-aligned";
  EXPECT_EQ(lay.cstride, lay.padded);
  for (lidx_t i = 0; i + 1 < 37; ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(lay.offset(i + 1, c), lay.offset(i, c) + 1)
          << "component " << c << " not unit-stride at " << i;
}

TEST(DatLayout, AosoaTailBlocks) {
  // 13 elements in blocks of 4: three full blocks + one tail block,
  // padded to 16 slots.
  const DatLayout lay = DatLayout::make(LayoutKind::AoSoA, 2, 13, 4);
  EXPECT_EQ(lay.block, 4);
  EXPECT_EQ(lay.padded, 16);
  EXPECT_EQ(lay.cstride, 4);
  EXPECT_EQ(lay.alloc_doubles(), 32u);
  // Within a block, components are SoA; across blocks, rows of B*dim.
  EXPECT_EQ(lay.offset(0, 0), 0u);
  EXPECT_EQ(lay.offset(1, 0), 1u);
  EXPECT_EQ(lay.offset(0, 1), 4u);
  EXPECT_EQ(lay.offset(4, 0), 8u);   // second block
  EXPECT_EQ(lay.offset(12, 1), 28u); // tail block
}

TEST(DatLayout, OffsetsAreABijectionIntoAllocation) {
  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    const DatLayout lay = DatLayout::make(kind, 3, 29, 8);
    std::set<std::size_t> seen;
    for (lidx_t i = 0; i < 29; ++i) {
      for (int c = 0; c < 3; ++c) {
        const std::size_t off = lay.offset(i, c);
        EXPECT_LT(off, lay.alloc_doubles());
        EXPECT_TRUE(seen.insert(off).second)
            << "collision at (" << i << "," << c << ") under "
            << mesh::layout_name(kind);
      }
    }
  }
}

TEST(DatLayout, RoundTripTranspose) {
  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    for (const lidx_t elems : {0, 1, 7, 8, 64, 129}) {
      const DatLayout lay = DatLayout::make(kind, 4, elems, 8);
      const std::vector<double> rows = random_rows(elems, 4, 11);
      std::vector<double> store(lay.alloc_doubles(), -1.0);
      mesh::to_layout(rows.data(), lay, store.data());
      std::vector<double> back(rows.size(), 0.0);
      mesh::from_layout(store.data(), lay, back.data());
      EXPECT_EQ(rows, back) << mesh::layout_name(kind) << " " << elems;
    }
  }
}

TEST(DatLayout, PaddingIsZeroFilled) {
  const DatLayout lay = DatLayout::make(LayoutKind::AoSoA, 2, 13, 8);
  const std::vector<double> rows = random_rows(13, 2, 12);
  std::vector<double> store(lay.alloc_doubles(), -7.0);
  mesh::to_layout(rows.data(), lay, store.data());
  // Everything not addressed by a valid (i, c) must be exactly zero.
  std::set<std::size_t> valid;
  for (lidx_t i = 0; i < 13; ++i)
    for (int c = 0; c < 2; ++c) valid.insert(lay.offset(i, c));
  for (std::size_t off = 0; off < store.size(); ++off)
    if (valid.count(off) == 0) EXPECT_EQ(store[off], 0.0) << off;
}

TEST(DatLayout, NonPowerOfTwoBlockRaises) {
  EXPECT_THROW(DatLayout::make(LayoutKind::AoSoA, 2, 16, 6), Error);
  EXPECT_THROW(DatLayout::make(LayoutKind::AoSoA, 2, 16, 0), Error);
}

TEST(DatLayout, NamesRoundTrip) {
  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA})
    EXPECT_EQ(mesh::layout_by_name(mesh::layout_name(kind)), kind);
  EXPECT_THROW(mesh::layout_by_name("rows"), Error);
}

TEST(LayoutConfig, ResolvePrecedence) {
  mesh::LayoutConfig cfg;
  EXPECT_FALSE(cfg.enabled());  // default config is pure AoS
  cfg.kind = LayoutKind::SoA;
  cfg.per_set["nodes"] = LayoutKind::AoSoA;
  cfg.per_dat["d3"] = LayoutKind::AoS;
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.resolve("nodes", "d3"), LayoutKind::AoS);   // per-dat wins
  EXPECT_EQ(cfg.resolve("nodes", "q"), LayoutKind::AoSoA);  // per-set next
  EXPECT_EQ(cfg.resolve("cells", "q"), LayoutKind::SoA);    // then default
}

// -- Layout-aware halo pack. --------------------------------------------

TEST(GatherRegion, NullAndAosDescriptorsMatchLegacyRows) {
  const lidx_t elems = 40;
  const int dim = 3;
  const DatLayout aos = DatLayout::make(LayoutKind::AoS, dim, elems, 8);
  const std::vector<double> rows = random_rows(elems, dim, 21);
  const LIdxVec idx = {3, 17, 0, 39, 8, 8};

  ByteBuf legacy;
  halo::pack_rows(rows.data(), dim, idx, &legacy);
  ByteBuf with_null(legacy.size()), with_aos(legacy.size());
  halo::gather_region(rows.data(), nullptr, dim, idx, with_null.data());
  halo::gather_region(rows.data(), &aos, dim, idx, with_aos.data());
  EXPECT_EQ(legacy, with_null);
  EXPECT_EQ(legacy, with_aos);
}

TEST(GatherRegion, UnpackInvertsGatherUnderEveryLayout) {
  const lidx_t elems = 53;
  const int dim = 4;
  const LIdxVec idx = {0, 52, 13, 27, 5, 40, 41};
  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    const DatLayout lay = DatLayout::make(kind, dim, elems, 8);
    const std::vector<double> rows = random_rows(elems, dim, 31);
    std::vector<double> store(lay.alloc_doubles());
    mesh::to_layout(rows.data(), lay, store.data());

    ByteBuf wire(idx.size() * static_cast<std::size_t>(dim) *
                 sizeof(double));
    halo::gather_region(store.data(), &lay, dim, idx, wire.data());

    std::vector<double> dest(lay.alloc_doubles(), 0.0);
    const std::size_t used =
        halo::unpack_region(dest.data(), &lay, dim, idx, wire, 0);
    EXPECT_EQ(used, wire.size());
    for (const lidx_t i : idx)
      for (int c = 0; c < dim; ++c)
        EXPECT_EQ(dest[lay.offset(i, c)], store[lay.offset(i, c)])
            << mesh::layout_name(kind) << " (" << i << "," << c << ")";
  }
}

TEST(GroupedPack, ReferenceMatchesPlanUnderEveryLayout) {
  // The CA executor packs through the flattened GroupedPlan while the
  // reference walk drives the same wire format from the neighbour
  // lists; both must agree byte-for-byte under every layout (under AoS
  // this is also the legacy wire, proven by the null-descriptor case of
  // the gather test above).
  mesh::Quad2D q = mesh::make_quad2d(32, 32);
  const partition::Partition part =
      partition::partition_mesh(q.mesh, 4, partition::Kind::RIB, q.nodes);
  halo::HaloPlanOptions opts;
  opts.depth = 2;
  const halo::HaloPlan plan = build_halo_plan(q.mesh, part, opts);
  const halo::RankPlan& rp = plan.ranks[0];
  const halo::SetLayout& nl = plan.layout(0, q.nodes);
  const halo::SetLayout& cl = plan.layout(0, q.cells);

  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    const DatLayout nlay = DatLayout::make(kind, 5, nl.total, 8);
    const DatLayout clay = DatLayout::make(kind, 2, cl.total, 8);
    const std::vector<double> nrows = random_rows(nl.total, 5, 41);
    const std::vector<double> crows = random_rows(cl.total, 2, 42);
    std::vector<double> nstore(nlay.alloc_doubles());
    std::vector<double> cstore(clay.alloc_doubles());
    mesh::to_layout(nrows.data(), nlay, nstore.data());
    mesh::to_layout(crows.data(), clay, cstore.data());
    std::vector<halo::DatSyncSpec> specs = {
        {q.nodes, 5, 2, nstore.data(), &nlay},
        {q.cells, 2, 1, cstore.data(), &clay}};
    const halo::GroupedPlan gp = halo::build_grouped_plan(rp, specs);
    for (const halo::GroupedPlan::Side& side : gp.sides) {
      if (side.send_bytes == 0) continue;
      const ByteBuf reference = halo::pack_grouped(rp, side.q, specs);
      ByteBuf planned(side.send_bytes);
      halo::pack_grouped(side, specs, planned.data());
      EXPECT_EQ(reference, planned)
          << mesh::layout_name(kind) << " -> rank " << side.q;
    }
  }
}

// -- Rank<->global boundary. --------------------------------------------

core::WorldConfig layout_world_cfg(LayoutKind kind, int block = 8) {
  core::WorldConfig cfg;
  cfg.nranks = 3;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.layout.kind = kind;
  cfg.layout.aosoa_block = block;
  return cfg;
}

TEST(WorldLayout, FetchDatRoundTripsAcrossLayouts) {
  // Build a world, run nothing: fetch_dat must reproduce the global
  // arrays exactly through gather_local -> scatter_owned, whatever the
  // rank storage layout (17^3 nodes: rank-local counts are not block
  // multiples, so tail blocks are exercised).
  mesh::Hex3D h = mesh::make_hex3d(17, 17, 17);
  const gidx_t n = h.mesh.set(h.nodes).size;
  std::vector<double> init(static_cast<std::size_t>(n) * 3);
  Rng rng(51);
  for (auto& v : init) v = rng.next_range(-1.0, 1.0);
  const mesh::dat_id d3 = h.mesh.add_dat("d3", h.nodes, 3, init);

  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    core::World w(h.mesh, layout_world_cfg(kind));
    w.run([](core::Runtime&) {});
    EXPECT_EQ(w.fetch_dat(d3), init) << mesh::layout_name(kind);
  }
}

TEST(WorldLayout, RankStorageAlignedAndDescribed) {
  mesh::Hex3D h = mesh::make_hex3d(9, 9, 9);
  const mesh::dat_id d2 =
      h.mesh.add_dat("d2", h.nodes, 2);

  for (const LayoutKind kind :
       {LayoutKind::AoS, LayoutKind::SoA, LayoutKind::AoSoA}) {
    core::World w(h.mesh, layout_world_cfg(kind, 4));
    w.run([&](core::Runtime& rt) {
      const core::Dat d = rt.dat("d2");
      const mesh::DatLayout& lay = rt.dat_layout(d);
      EXPECT_EQ(lay.kind, kind);
      EXPECT_EQ(lay.dim, 2);
      EXPECT_EQ(lay.elems, rt.layout(rt.set("nodes")).total);
      EXPECT_TRUE(util::cache_aligned(rt.dat_data(d)));
    });
  }
}

}  // namespace
}  // namespace op2ca
