// Unit tests for MeshDef, adjacency and the three mesh generators.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "op2ca/mesh/adjacency.hpp"
#include "op2ca/mesh/annulus.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/multigrid.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/mesh/mesh_io.hpp"
#include "op2ca/mesh/vtk.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::mesh {
namespace {

TEST(MeshDef, DeclareAndLookup) {
  MeshDef m;
  const set_id nodes = m.add_set("nodes", 4);
  const set_id edges = m.add_set("edges", 3);
  const map_id e2n = m.add_map("e2n", edges, nodes, 2, {0, 1, 1, 2, 2, 3});
  const dat_id x = m.add_dat("x", nodes, 2);
  EXPECT_EQ(m.set(nodes).size, 4);
  EXPECT_EQ(m.map(e2n).arity, 2);
  EXPECT_EQ(m.dat(x).dim, 2);
  EXPECT_EQ(m.find_set("edges"), edges);
  EXPECT_FALSE(m.find_set("nope").has_value());
  EXPECT_EQ(m.total_elements(), 7);
}

TEST(MeshDef, Validation) {
  MeshDef m;
  const set_id nodes = m.add_set("nodes", 2);
  const set_id edges = m.add_set("edges", 1);
  EXPECT_THROW(m.add_set("nodes", 3), Error);  // duplicate name
  EXPECT_THROW(m.add_map("bad", edges, nodes, 2, {0, 5}), Error);  // range
  EXPECT_THROW(m.add_map("bad", edges, nodes, 2, {0}), Error);  // size
  EXPECT_THROW(m.add_dat("d", nodes, 1, {1.0}), Error);  // size mismatch
  EXPECT_THROW(m.add_dat("d", 9, 1), Error);             // bad set
}

TEST(MeshDef, CoordsValidation) {
  MeshDef m;
  const set_id nodes = m.add_set("nodes", 2);
  const dat_id xy = m.add_dat("xy", nodes, 2, {0, 0, 1, 1});
  const dat_id bad = m.add_dat("bad", nodes, 5);
  m.set_coords(nodes, xy);
  EXPECT_TRUE(m.has_coords());
  EXPECT_THROW(m.set_coords(nodes, bad), Error);
}

TEST(Adjacency, ReverseMap) {
  MeshDef m;
  const set_id nodes = m.add_set("nodes", 3);
  const set_id edges = m.add_set("edges", 2);
  const map_id e2n = m.add_map("e2n", edges, nodes, 2, {0, 1, 1, 2});
  const Csr rev = reverse_map(m, e2n);
  EXPECT_EQ(rev.num_rows(), 3);
  EXPECT_EQ(rev.row(0).size(), 1u);
  EXPECT_EQ(rev.row(1).size(), 2u);
  EXPECT_EQ(rev.row(2).size(), 1u);
  EXPECT_EQ(rev.row(0)[0], 0);
}

TEST(Adjacency, SetGraphViaSharedSource) {
  MeshDef m;
  const set_id nodes = m.add_set("nodes", 4);
  const set_id edges = m.add_set("edges", 3);
  m.add_map("e2n", edges, nodes, 2, {0, 1, 1, 2, 2, 3});
  const Csr g = set_graph(m, nodes);
  // Path graph: 0-1-2-3.
  EXPECT_EQ(g.row(0).size(), 1u);
  EXPECT_EQ(g.row(1).size(), 2u);
  EXPECT_EQ(g.row(2).size(), 2u);
  EXPECT_EQ(g.row(3).size(), 1u);
}

TEST(Quad2D, SizesAndMaps) {
  const Quad2D q = make_quad2d(3, 2);
  const MeshDef& m = q.mesh;
  EXPECT_EQ(m.set(q.nodes).size, 12);
  EXPECT_EQ(m.set(q.cells).size, 6);
  // 3*(2+1) horizontal + (3+1)*2 vertical = 9 + 8.
  EXPECT_EQ(m.set(q.edges).size, 17);
  EXPECT_EQ(m.set(q.bedges).size, 10);

  // Every interior edge has two distinct cells; boundary edges repeat.
  const MapDef& e2c = m.map(q.e2c);
  int boundary = 0;
  for (gidx_t e = 0; e < m.set(q.edges).size; ++e) {
    const gidx_t a = e2c.targets[static_cast<size_t>(2 * e)];
    const gidx_t b = e2c.targets[static_cast<size_t>(2 * e + 1)];
    EXPECT_GE(a, 0);
    EXPECT_LT(a, m.set(q.cells).size);
    if (a == b) ++boundary;
  }
  EXPECT_EQ(boundary, 10);
}

TEST(Quad2D, EachCellHasFourDistinctNodes) {
  const Quad2D q = make_quad2d(4, 4);
  const MapDef& c2n = q.mesh.map(q.c2n);
  for (gidx_t c = 0; c < q.mesh.set(q.cells).size; ++c) {
    std::set<gidx_t> uniq(c2n.targets.begin() + 4 * c,
                          c2n.targets.begin() + 4 * (c + 1));
    EXPECT_EQ(uniq.size(), 4u);
  }
}

TEST(Hex3D, SizesAndDegrees) {
  const Hex3D h = make_hex3d(2, 2, 2);
  const MeshDef& m = h.mesh;
  EXPECT_EQ(m.set(h.nodes).size, 27);
  EXPECT_EQ(m.set(h.cells).size, 8);
  // 3 * nx*(ny+1)*(nz+1) with nx=ny=nz=2: 3 * 2*3*3 = 54.
  EXPECT_EQ(m.set(h.edges).size, 54);
  // All 27 nodes of a 2x2x2 hex grid lie on the boundary except center.
  EXPECT_EQ(m.set(h.bnodes).size, 26);

  // The centre node (index 13 = (1*3+1)*3+1) shares an edge with 6 nodes
  // and a cell with all 26 others; the set graph unions both relations,
  // so its degree is 26.
  const Csr g = set_graph(m, h.nodes);
  EXPECT_EQ(g.row(13).size(), 26u);
}

TEST(Hex3D, EdgeGraphDegreeWithoutCells) {
  // Using only e2n incidence (reverse + forward composition through
  // edges), the centre node of the grid has 6 edge-neighbours.
  const Hex3D h = make_hex3d(2, 2, 2);
  const Csr rev = reverse_map(h.mesh, h.e2n);
  EXPECT_EQ(rev.row(13).size(), 6u);  // 6 incident edges
}

TEST(Hex3D, PickDims) {
  gidx_t nx = 0, ny = 0, nz = 0;
  pick_dims_for_nodes(1000, &nx, &ny, &nz);
  const gidx_t nodes = (nx + 1) * (ny + 1) * (nz + 1);
  EXPECT_GT(nodes, 500);
  EXPECT_LT(nodes, 2000);
}

TEST(Annulus, SetsAndPeriodicity) {
  const Annulus a = make_annulus(2, 3, 4);
  const MeshDef& m = a.mesh;
  EXPECT_EQ(m.set(a.nodes).size, 3 * 4 * 5);
  EXPECT_EQ(m.set(a.cells).size, 2 * 3 * 4);
  // Periodic pairs: (nr+1)*(nz+1).
  EXPECT_EQ(m.set(a.pedges).size, 3 * 5);

  // Each periodic pair links two distinct nodes with equal radius and z.
  const MapDef& pe2n = m.map(a.pe2n);
  const DatDef& xyz = m.dat(a.coords);
  for (gidx_t p = 0; p < m.set(a.pedges).size; ++p) {
    const gidx_t u = pe2n.targets[static_cast<size_t>(2 * p)];
    const gidx_t v = pe2n.targets[static_cast<size_t>(2 * p + 1)];
    EXPECT_NE(u, v);
    auto radius = [&](gidx_t n) {
      const double x = xyz.data[static_cast<size_t>(3 * n)];
      const double y = xyz.data[static_cast<size_t>(3 * n + 1)];
      return std::sqrt(x * x + y * y);
    };
    EXPECT_NEAR(radius(u), radius(v), 1e-12);
    EXPECT_NEAR(xyz.data[static_cast<size_t>(3 * u + 2)],
                xyz.data[static_cast<size_t>(3 * v + 2)], 1e-12);
  }
}

TEST(Annulus, BoundarySetsNonEmpty) {
  const Annulus a = make_annulus(3, 4, 5);
  EXPECT_GT(a.mesh.set(a.bnd).size, 0);
  EXPECT_EQ(a.mesh.set(a.cbnd).size, 5);  // nt+1 hub-inlet nodes
  // e2c targets valid.
  const MapDef& e2c = a.mesh.map(a.e2c);
  for (gidx_t t : e2c.targets) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, a.mesh.set(a.cells).size);
  }
}

TEST(Multigrid, HierarchyAndInterGridMaps) {
  const MultigridHex mg = make_multigrid_hex(4, 4, 4, 3);
  ASSERT_EQ(mg.levels.size(), 3u);
  EXPECT_EQ(mg.mesh.set(mg.levels[0].nodes).size, 125);
  EXPECT_EQ(mg.mesh.set(mg.levels[1].nodes).size, 27);
  EXPECT_EQ(mg.mesh.set(mg.levels[2].nodes).size, 8);
  ASSERT_EQ(mg.restrict_maps.size(), 2u);
  ASSERT_EQ(mg.prolong_maps.size(), 2u);

  // Restriction covers every coarse node (surjective).
  const MapDef& r01 = mg.mesh.map(mg.restrict_maps[0]);
  std::set<gidx_t> covered(r01.targets.begin(), r01.targets.end());
  EXPECT_EQ(static_cast<gidx_t>(covered.size()),
            mg.mesh.set(mg.levels[1].nodes).size);

  // Prolongation is injective (distinct coarse -> distinct fine).
  const MapDef& p01 = mg.mesh.map(mg.prolong_maps[0]);
  std::set<gidx_t> targets(p01.targets.begin(), p01.targets.end());
  EXPECT_EQ(targets.size(), p01.targets.size());
}

TEST(DeriveCoords, EdgesAverageNodeCoords) {
  const Quad2D q = make_quad2d(2, 2);
  const std::vector<double> ec = derive_coords(q.mesh, q.edges);
  EXPECT_EQ(ec.size(),
            static_cast<size_t>(q.mesh.set(q.edges).size * 2));
  // First horizontal edge spans nodes (0,0)-(0.5,0): midpoint x=0.25.
  EXPECT_NEAR(ec[0], 0.25, 1e-12);
  EXPECT_NEAR(ec[1], 0.0, 1e-12);
}

TEST(DeriveCoords, CellsViaC2N) {
  const Quad2D q = make_quad2d(2, 2);
  const std::vector<double> cc = derive_coords(q.mesh, q.cells);
  // Cell 0 center is (0.25, 0.25).
  EXPECT_NEAR(cc[0], 0.25, 1e-12);
  EXPECT_NEAR(cc[1], 0.25, 1e-12);
}

TEST(MeshIo, RoundTripsQuadMesh) {
  const Quad2D q = make_quad2d(4, 3);
  std::ostringstream os;
  write_meshdef(os, q.mesh);
  std::istringstream in(os.str());
  const MeshDef back = read_meshdef(in);

  ASSERT_EQ(back.num_sets(), q.mesh.num_sets());
  ASSERT_EQ(back.num_maps(), q.mesh.num_maps());
  ASSERT_EQ(back.num_dats(), q.mesh.num_dats());
  for (set_id s = 0; s < back.num_sets(); ++s) {
    EXPECT_EQ(back.set(s).name, q.mesh.set(s).name);
    EXPECT_EQ(back.set(s).size, q.mesh.set(s).size);
  }
  for (map_id m = 0; m < back.num_maps(); ++m)
    EXPECT_EQ(back.map(m).targets, q.mesh.map(m).targets);
  for (dat_id d = 0; d < back.num_dats(); ++d)
    EXPECT_EQ(back.dat(d).data, q.mesh.dat(d).data);
  EXPECT_TRUE(back.has_coords());
  EXPECT_EQ(back.coords_set(), q.mesh.coords_set());
}

TEST(MeshIo, RoundTripsAnnulusThroughFile) {
  const Annulus a = make_annulus(2, 3, 4);
  const std::string path = "/tmp/op2ca_mesh_io_test.txt";
  write_meshdef_file(path, a.mesh);
  const MeshDef back = read_meshdef_file(path);
  EXPECT_EQ(back.num_sets(), a.mesh.num_sets());
  EXPECT_EQ(back.map(a.pe2n).targets, a.mesh.map(a.pe2n).targets);
  EXPECT_EQ(back.dat(a.coords).data, a.mesh.dat(a.coords).data);
}

TEST(MeshIo, RejectsMalformedInput) {
  {
    std::istringstream in("not-a-mesh 1\n");
    EXPECT_THROW(read_meshdef(in), Error);
  }
  {
    std::istringstream in("op2ca-mesh 99\n");
    EXPECT_THROW(read_meshdef(in), Error);
  }
  {
    std::istringstream in("op2ca-mesh 1\nmap m missing other 2\n");
    EXPECT_THROW(read_meshdef(in), Error);
  }
  {
    std::istringstream in("op2ca-mesh 1\nset s 2\ndat d s 1\n1.0\n");
    EXPECT_THROW(read_meshdef(in), Error);  // truncated values
  }
  {
    std::istringstream in("op2ca-mesh 1\nset s 2\nfrobnicate\n");
    EXPECT_THROW(read_meshdef(in), Error);
  }
  EXPECT_THROW(read_meshdef_file("/nonexistent/mesh.txt"), Error);
}

TEST(MeshIo, CommentsAndWhitespaceIgnored) {
  std::istringstream in(R"(
# a mesh with comments
op2ca-mesh 1
set nodes 3   # three nodes
set edges 2
map e2n edges nodes 2
  0 1   # edge 0
  1 2
dat x nodes 1
  0.5 1.5 2.5
)");
  const MeshDef m = read_meshdef(in);
  EXPECT_EQ(m.set(*m.find_set("nodes")).size, 3);
  EXPECT_EQ(m.map(*m.find_map("e2n")).targets, (GIdxVec{0, 1, 1, 2}));
  EXPECT_DOUBLE_EQ(m.dat(*m.find_dat("x")).data[2], 2.5);
}

TEST(Vtk, WritesParseableSnapshot) {
  const Quad2D q = make_quad2d(3, 3);
  std::vector<double> field(static_cast<size_t>(q.mesh.set(q.nodes).size));
  for (size_t i = 0; i < field.size(); ++i)
    field[i] = static_cast<double>(i);
  const std::string path = "/tmp/op2ca_vtk_test.vtk";
  write_vtk(path, q.mesh, q.c2n, {{"height", field}});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("POINTS 16 double"), std::string::npos);
  EXPECT_NE(text.find("CELLS 9 45"), std::string::npos);
  EXPECT_NE(text.find("SCALARS height double 1"), std::string::npos);
}

TEST(Vtk, RejectsBadInput) {
  const Quad2D q = make_quad2d(2, 2);
  EXPECT_THROW(write_vtk("/nonexistent_dir/x.vtk", q.mesh, q.c2n, {}),
               Error);
  // Field size not a multiple of the point count.
  EXPECT_THROW(
      write_vtk("/tmp/op2ca_vtk_bad.vtk", q.mesh, q.c2n,
                {{"bad", std::vector<double>(5)}}),
      Error);
}

}  // namespace
}  // namespace op2ca::mesh
