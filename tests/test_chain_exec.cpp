// CA executor (Alg 2) tests: chained execution must produce the same
// owned results as per-loop OP2 execution and as single-rank sequential
// execution, while exchanging a single grouped message per neighbour.
#include <gtest/gtest.h>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/util/error.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

using testutil::expect_allclose;

WorldConfig base_config(int nranks, int depth) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = depth;
  cfg.validate = true;
  return cfg;
}

/// Runs the MG-CFD synthetic chain for `timesteps` outer iterations and
/// returns the final sres/sflux global values.
struct SynthResult {
  std::vector<double> sres, sflux, spres;
};

SynthResult run_synth(int nranks, int nchains, int timesteps, bool enable_ca,
                      int depth = 2, gidx_t target_nodes = 1200) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(target_nodes, 1);
  WorldConfig cfg = base_config(nranks, depth);
  if (enable_ca) cfg.chains.enable("synthetic", 2 * nchains, depth);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < timesteps; ++t)
      apps::mgcfd::run_synthetic_chain(rt, h, nchains);
  });
  return SynthResult{w.fetch_dat(sres), w.fetch_dat(sflux),
                     w.fetch_dat(spres)};
}

TEST(ChainExec, CaMatchesSerial) {
  const SynthResult serial = run_synth(1, 3, 2, false);
  const SynthResult ca = run_synth(6, 3, 2, true);
  expect_allclose(serial.sres, ca.sres);
  expect_allclose(serial.sflux, ca.sflux);
  expect_allclose(serial.spres, ca.spres);
}

TEST(ChainExec, CaMatchesBaselineOp2) {
  const SynthResult op2 = run_synth(5, 4, 2, false);
  const SynthResult ca = run_synth(5, 4, 2, true);
  expect_allclose(op2.sres, ca.sres);
  expect_allclose(op2.sflux, ca.sflux);
}

TEST(ChainExec, LongChainManyRanks) {
  const SynthResult serial = run_synth(1, 8, 1, false);
  const SynthResult ca = run_synth(8, 8, 1, true);
  expect_allclose(serial.sres, ca.sres);
  expect_allclose(serial.sflux, ca.sflux);
}

TEST(ChainExec, SingleMessagePerNeighborPerChain) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  WorldConfig cfg = base_config(6, 2);
  cfg.chains.enable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 4);
  });
  const auto chains = w.chain_metrics();
  const LoopMetrics& m = chains.at("synthetic");
  // One grouped message per neighbour per rank: total messages equal the
  // number of directed neighbour pairs, regardless of the 8 loops and
  // multiple dats involved.
  std::int64_t directed_pairs = 0;
  for (const auto& rp : w.plan().ranks)
    directed_pairs += static_cast<std::int64_t>(rp.neighbors.size());
  EXPECT_LE(m.msgs, directed_pairs);
  EXPECT_GT(m.msgs, 0);
}

TEST(ChainExec, BaselineSendsManyMoreMessages) {
  auto count_msgs = [](bool enable_ca) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
    WorldConfig cfg = base_config(6, 2);
    if (enable_ca) cfg.chains.enable("synthetic");
    World w(std::move(prob.mg.mesh), cfg);
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      apps::mgcfd::run_synthetic_chain(rt, h, 8);
    });
    return w.chain_metrics().at("synthetic").msgs;
  };
  const std::int64_t op2 = count_msgs(false);
  const std::int64_t ca = count_msgs(true);
  // 8 chained pairs: baseline re-exchanges sres for every edge_flux
  // (plus spres once); CA sends one grouped message per neighbour.
  EXPECT_GE(op2, 4 * ca);
}

TEST(ChainExec, DisabledChainFallsBackToOp2) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  WorldConfig cfg = base_config(4, 2);
  cfg.chains.disable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 2);
  });
  // Loops were metered individually (OP2 path) and under the chain name.
  const auto loops = w.loop_metrics();
  EXPECT_GT(loops.at("synth_update").calls, 0);
  const auto chains = w.chain_metrics();
  EXPECT_GT(chains.at("synthetic").calls, 0);
}

TEST(ChainExec, InsufficientHaloDepthRaises) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  WorldConfig cfg = base_config(4, /*depth=*/1);  // chain needs 2
  cfg.chains.enable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  EXPECT_THROW(
      w.run([&](Runtime& rt) {
        const auto h = apps::mgcfd::resolve_handles(rt, prob);
        apps::mgcfd::run_synthetic_chain(rt, h, 2);
      }),
      Error);
}

TEST(ChainExec, ConfiguredDepthCapRaises) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  WorldConfig cfg = base_config(4, 3);
  cfg.chains.enable("synthetic", 0, /*max_depth=*/1);
  World w(std::move(prob.mg.mesh), cfg);
  EXPECT_THROW(
      w.run([&](Runtime& rt) {
        const auto h = apps::mgcfd::resolve_handles(rt, prob);
        apps::mgcfd::run_synthetic_chain(rt, h, 2);
      }),
      Error);
}

TEST(ChainExec, NestedChainBeginRaises) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  World w(std::move(prob.mg.mesh), base_config(2, 2));
  EXPECT_THROW(w.run([](Runtime& rt) {
                 rt.chain_begin("a");
                 rt.chain_begin("b");
               }),
               Error);
  // chain_end without begin is also rejected (fresh world: the previous
  // failure poisoned the first one).
  apps::mgcfd::Problem prob2 = apps::mgcfd::build_problem(1000, 1);
  World w2(std::move(prob2.mg.mesh), base_config(2, 2));
  EXPECT_THROW(w2.run([](Runtime& rt) { rt.chain_end(); }), Error);
}

TEST(ChainExec, GblReductionInsideChainRaises) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  WorldConfig cfg = base_config(2, 2);
  cfg.chains.enable("bad");
  World w(std::move(prob.mg.mesh), cfg);
  EXPECT_THROW(
      w.run([&](Runtime& rt) {
        const Set nodes = rt.set("nodes_l0");
        const Dat sres = rt.dat("sres");
        double acc = 0.0;
        rt.chain_begin("bad");
        rt.par_loop(
            "reduce", nodes,
            [](const double* r, double* a) { a[0] += r[0]; },
            arg_dat(sres, Access::READ), arg_gbl(&acc, 1, Access::INC));
        rt.chain_end();
      }),
      Error);
}

TEST(ChainExec, ChainCoresSmallerThanBaselineCores) {
  // The shrinking cores of Alg 2 must show up in the metrics: CA core
  // iterations < baseline core iterations for the same chain.
  auto core_iters = [](bool enable_ca) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1500, 1);
    WorldConfig cfg = base_config(6, 2);
    if (enable_ca) cfg.chains.enable("synthetic");
    World w(std::move(prob.mg.mesh), cfg);
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      apps::mgcfd::run_synthetic_chain(rt, h, 6);
    });
    return w.chain_metrics().at("synthetic").core_iters;
  };
  EXPECT_LT(core_iters(true), core_iters(false));
}

TEST(ChainExec, RepeatedChainsUseCachedAnalysis) {
  // Functional check: repeated executions stay correct (the analysis
  // cache returns the same plan) and dirty bits keep the halos synced.
  const SynthResult once = run_synth(1, 2, 6, false);
  const SynthResult many = run_synth(4, 2, 6, true);
  expect_allclose(once.sres, many.sres);
  expect_allclose(once.sflux, many.sflux);
}

TEST(ChainExec, DepthOneSyncDoesNotSatisfyDepthTwoChain) {
  // fresh_depth is layered: a depth-1 sync (vflux-style chain) must not
  // suppress the deeper exchange a depth-2 chain needs afterwards.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  WorldConfig cfg = base_config(5, 2);
  cfg.chains.enable("shallow");
  cfg.chains.enable("synthetic");
  const mesh::dat_id sres_id = prob.sres, sflux_id = prob.sflux;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    namespace k = apps::mgcfd::kernels;
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    // Dirty spres, then a single-loop depth-1 chain reading it.
    rt.par_loop("perturb", h.nodes0, k::synth_perturb,
                arg_dat(h.spres, Access::RW));
    rt.chain_begin("shallow");
    rt.par_loop("shallow_update", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.chain_end();
    // Now the depth-2 synthetic chain: spres level-1 halo is fresh but
    // level 2 is not; the chain must exchange it again (deeper).
    apps::mgcfd::run_synthetic_chain(rt, h, 2);
  });
  const auto chains = w.chain_metrics();
  EXPECT_GT(chains.at("synthetic").msgs, 0);

  // Equivalence against a serial run of the same program.
  apps::mgcfd::Problem sp = apps::mgcfd::build_problem(1200, 1);
  World ws(std::move(sp.mg.mesh), base_config(1, 2));
  ws.run([&](Runtime& rt) {
    namespace k = apps::mgcfd::kernels;
    const auto h = apps::mgcfd::resolve_handles(rt, sp);
    rt.par_loop("perturb", h.nodes0, k::synth_perturb,
                arg_dat(h.spres, Access::RW));
    rt.par_loop("shallow_update", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    apps::mgcfd::run_synthetic_chain(rt, h, 2);
  });
  expect_allclose(ws.fetch_dat(sp.sres), w.fetch_dat(sres_id));
  expect_allclose(ws.fetch_dat(sp.sflux), w.fetch_dat(sflux_id));
}

}  // namespace
}  // namespace op2ca::core
