// GPU simulation tests: device buffers, metered staging copies and the
// pipeline-overlap model of Section 3.3.
#include <gtest/gtest.h>

#include "op2ca/gpu/device.hpp"
#include "op2ca/gpu/pipeline.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::gpu {
namespace {

TEST(DeviceBuffer, UploadDownloadRoundTrip) {
  DeviceBuffer buf(8);
  const std::vector<double> host{1, 2, 3, 4};
  buf.upload(host.data(), 2, 4);
  std::vector<double> back(4, 0.0);
  buf.download(back.data(), 2, 4);
  EXPECT_EQ(back, host);
  EXPECT_EQ(buf.uploads(), 1);
  EXPECT_EQ(buf.downloads(), 1);
  EXPECT_EQ(buf.bytes_moved(),
            static_cast<std::int64_t>(8 * sizeof(double)));
}

TEST(DeviceBuffer, OutOfRangeRejected) {
  DeviceBuffer buf(4);
  std::vector<double> host(8, 0.0);
  EXPECT_THROW(buf.upload(host.data(), 2, 4), Error);
  EXPECT_THROW(buf.download(host.data(), 4, 1), Error);
}

TEST(Device, ClockAdvancesPerTransfer) {
  Device dev;
  DeviceBuffer& buf = dev.allocate(1024);
  std::vector<double> host(1024, 1.0);
  const double before = dev.clock().now();
  dev.upload(buf, host.data(), 0, 1024);
  const double one = dev.clock().now() - before;
  EXPECT_GT(one, dev.pcie().latency_s);
  dev.download(buf, host.data(), 0, 1024);
  EXPECT_NEAR(dev.clock().now(), before + 2 * one, 1e-12);
}

TEST(Device, AllocationsKeepStableReferences) {
  Device dev;
  DeviceBuffer& a = dev.allocate(16);
  double* pa = a.device_data();
  for (int i = 0; i < 100; ++i) dev.allocate(64);
  EXPECT_EQ(a.device_data(), pa);  // deque storage: no invalidation
}

TEST(Pipeline, StagedOverlapsComputeGpudirectDoesNot) {
  // The paper's observation: staged copies pipeline with kernels, while
  // the observed GPUDirect behaviour serializes with compute. With ample
  // compute to hide behind, staged wins.
  PipelineConfig cfg;
  cfg.compute_s = 1e-3;  // plenty of kernel work
  std::vector<Transfer> transfers(8, Transfer{64 * 1024});
  const double staged = staged_pipeline_makespan(cfg, transfers);
  const double direct = gpudirect_makespan(cfg, transfers);
  EXPECT_LT(staged, direct);
  // Fully hidden: staged equals the compute time.
  EXPECT_DOUBLE_EQ(staged, cfg.compute_s);
}

TEST(Pipeline, GpudirectWinsWithoutComputeOverlap) {
  // With no compute to hide behind, skipping the PCIe staging is faster.
  PipelineConfig cfg;
  cfg.compute_s = 0.0;
  std::vector<Transfer> transfers(4, Transfer{1 << 20});
  const double staged = staged_pipeline_makespan(cfg, transfers);
  const double direct = gpudirect_makespan(cfg, transfers);
  EXPECT_GT(staged, direct);
}

TEST(Pipeline, MakespanMonotoneInTransferCount) {
  PipelineConfig cfg;
  cfg.compute_s = 0.0;
  std::vector<Transfer> few(2, Transfer{4096});
  std::vector<Transfer> many(9, Transfer{4096});
  EXPECT_LT(staged_pipeline_makespan(cfg, few),
            staged_pipeline_makespan(cfg, many));
}

TEST(Pipeline, EmptyTransfersIsComputeOnly) {
  PipelineConfig cfg;
  cfg.compute_s = 5e-4;
  EXPECT_DOUBLE_EQ(staged_pipeline_makespan(cfg, {}), 5e-4);
  EXPECT_DOUBLE_EQ(gpudirect_makespan(cfg, {}), 5e-4);
}

}  // namespace
}  // namespace op2ca::gpu
