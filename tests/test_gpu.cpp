// GPU simulation tests: device buffers, metered staging copies, the
// pipeline-overlap model of Section 3.3, the DeviceSpace mirror/validity
// substrate and the hierarchical two-level colouring of the device
// executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "op2ca/gpu/device.hpp"
#include "op2ca/gpu/device_space.hpp"
#include "op2ca/gpu/hierarchy.hpp"
#include "op2ca/gpu/pipeline.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::gpu {
namespace {

TEST(DeviceBuffer, UploadDownloadRoundTrip) {
  DeviceBuffer buf(8);
  const std::vector<double> host{1, 2, 3, 4};
  buf.upload(host.data(), 2, 4);
  std::vector<double> back(4, 0.0);
  buf.download(back.data(), 2, 4);
  EXPECT_EQ(back, host);
  EXPECT_EQ(buf.uploads(), 1);
  EXPECT_EQ(buf.downloads(), 1);
  EXPECT_EQ(buf.bytes_moved(),
            static_cast<std::int64_t>(8 * sizeof(double)));
}

TEST(DeviceBuffer, OutOfRangeRejected) {
  DeviceBuffer buf(4);
  std::vector<double> host(8, 0.0);
  EXPECT_THROW(buf.upload(host.data(), 2, 4), Error);
  EXPECT_THROW(buf.download(host.data(), 4, 1), Error);
}

TEST(Device, ClockAdvancesPerTransfer) {
  Device dev;
  DeviceBuffer& buf = dev.allocate(1024);
  std::vector<double> host(1024, 1.0);
  const double before = dev.clock().now();
  dev.upload(buf, host.data(), 0, 1024);
  const double one = dev.clock().now() - before;
  EXPECT_GT(one, dev.pcie().latency_s);
  dev.download(buf, host.data(), 0, 1024);
  EXPECT_NEAR(dev.clock().now(), before + 2 * one, 1e-12);
}

TEST(Device, AllocationsKeepStableReferences) {
  Device dev;
  DeviceBuffer& a = dev.allocate(16);
  double* pa = a.device_data();
  for (int i = 0; i < 100; ++i) dev.allocate(64);
  EXPECT_EQ(a.device_data(), pa);  // deque storage: no invalidation
}

TEST(Pipeline, StagedOverlapsComputeGpudirectDoesNot) {
  // The paper's observation: staged copies pipeline with kernels, while
  // the observed GPUDirect behaviour serializes with compute. With ample
  // compute to hide behind, staged wins.
  PipelineConfig cfg;
  cfg.compute_s = 1e-3;  // plenty of kernel work
  std::vector<Transfer> transfers(8, Transfer{64 * 1024});
  const double staged = staged_pipeline_makespan(cfg, transfers);
  const double direct = gpudirect_makespan(cfg, transfers);
  EXPECT_LT(staged, direct);
  // Fully hidden: staged equals the compute time.
  EXPECT_DOUBLE_EQ(staged, cfg.compute_s);
}

TEST(Pipeline, GpudirectWinsWithoutComputeOverlap) {
  // With no compute to hide behind, skipping the PCIe staging is faster.
  PipelineConfig cfg;
  cfg.compute_s = 0.0;
  std::vector<Transfer> transfers(4, Transfer{1 << 20});
  const double staged = staged_pipeline_makespan(cfg, transfers);
  const double direct = gpudirect_makespan(cfg, transfers);
  EXPECT_GT(staged, direct);
}

TEST(Pipeline, MakespanMonotoneInTransferCount) {
  PipelineConfig cfg;
  cfg.compute_s = 0.0;
  std::vector<Transfer> few(2, Transfer{4096});
  std::vector<Transfer> many(9, Transfer{4096});
  EXPECT_LT(staged_pipeline_makespan(cfg, few),
            staged_pipeline_makespan(cfg, many));
}

TEST(Pipeline, EmptyTransfersIsComputeOnly) {
  PipelineConfig cfg;
  cfg.compute_s = 5e-4;
  EXPECT_DOUBLE_EQ(staged_pipeline_makespan(cfg, {}), 5e-4);
  EXPECT_DOUBLE_EQ(gpudirect_makespan(cfg, {}), 5e-4);
}

// -- DeviceSpace: mirror validity, transfer minimality, staging arena. --

DeviceConfig space_cfg(DeviceConfig::Mode mode,
                       std::size_t staging = 1 << 20) {
  DeviceConfig dc;
  dc.enabled = true;
  dc.mode = mode;
  dc.staging_bytes = staging;
  return dc;
}

TEST(DeviceSpace, ValidityTrackingRoundTrip) {
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::Pipelined), &pool);
  std::vector<double> dev(100, 0.0);
  ds.bind(0, dev.data(), dev.size());
  EXPECT_TRUE(ds.device_valid(0));
  EXPECT_TRUE(ds.host_valid(0));

  // Host producer rewrites the array in place: device side stale.
  std::iota(dev.begin(), dev.end(), 1.0);
  ds.host_wrote(0);
  EXPECT_FALSE(ds.device_valid(0));
  EXPECT_TRUE(ds.host_valid(0));

  ds.to_device(0);
  EXPECT_TRUE(ds.device_valid(0));
  EXPECT_EQ(ds.stats().h2d_transfers, 1);
  EXPECT_EQ(ds.stats().h2d_bytes,
            static_cast<std::int64_t>(100 * sizeof(double)));

  // Device kernel writes: shadow stale until to_host.
  dev[7] = -3.5;
  ds.device_wrote(0);
  EXPECT_FALSE(ds.host_valid(0));
  EXPECT_TRUE(ds.device_valid(0));
  const double* shadow = ds.to_host(0);
  EXPECT_TRUE(ds.host_valid(0));
  EXPECT_EQ(ds.stats().d2h_transfers, 1);
  EXPECT_EQ(std::vector<double>(shadow, shadow + 100), dev);
}

TEST(DeviceSpace, DirtyMaskIsMinimal) {
  // The pipelined policy moves a mirror ONLY across a validity edge:
  // repeated to_device / to_host on a clean mirror are free.
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::Pipelined), &pool);
  std::vector<double> dev(64, 1.0);
  ds.bind(0, dev.data(), dev.size());
  ds.host_wrote(0);
  ds.to_device(0);
  for (int i = 0; i < 5; ++i) {
    ds.to_device(0);
    ds.to_host(0);
  }
  EXPECT_EQ(ds.stats().h2d_transfers, 1);
  EXPECT_EQ(ds.stats().d2h_transfers, 0);  // never DeviceFresh
  EXPECT_EQ(ds.stats().redundant_bytes, 0);
}

TEST(DeviceSpace, FullyStagedCountsRedundantBytes) {
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::FullyStaged), &pool);
  std::vector<double> dev(64, 1.0);
  ds.bind(0, dev.data(), dev.size());
  ds.host_wrote(0);
  ds.to_device(0);  // genuine upload
  ds.to_device(0);  // re-staged although valid
  EXPECT_EQ(ds.stats().h2d_transfers, 2);
  EXPECT_EQ(ds.stats().redundant_bytes,
            static_cast<std::int64_t>(64 * sizeof(double)));
}

TEST(DeviceSpace, SteadyStateEpochsMoveZeroBytesAndAllocateNothing) {
  // After the first epoch uploads the initial contents, a pipelined
  // epoch loop moves no mirror bytes at all — and the bounce copies that
  // DO happen recycle BufferPool storage, so the allocation count goes
  // flat (the satellite-2 regression: no separate staging allocator).
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::Pipelined,
                           /*staging=*/4096),
                 &pool);
  std::vector<double> a(4000, 1.0), b(2000, 2.0);
  ds.bind(0, a.data(), a.size());
  ds.bind(1, b.data(), b.size());
  ds.host_wrote(0);
  ds.host_wrote(1);

  std::int64_t h2d_after_first = 0;
  std::int64_t allocs_after_first = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    ds.begin_epoch();
    ds.to_device(0);
    ds.to_device(1);
    a[epoch] += 1.0;  // the "kernel"
    ds.device_wrote(0);
    ds.end_epoch(1e-4);
    if (epoch == 0) {
      h2d_after_first = ds.stats().h2d_bytes;
      allocs_after_first = pool.allocations();
      EXPECT_GT(h2d_after_first, 0);
    }
  }
  EXPECT_EQ(ds.stats().h2d_bytes, h2d_after_first);
  EXPECT_EQ(ds.stats().redundant_bytes, 0);
  EXPECT_EQ(pool.allocations(), allocs_after_first);
}

TEST(DeviceSpace, StagedEpochDownloadsRecycleStagingArena) {
  // FullyStaged re-moves every mirror each epoch: plenty of bounce
  // traffic, yet after warm-up the pool satisfies all of it without a
  // single new allocation.
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::FullyStaged,
                           /*staging=*/4096),
                 &pool);
  std::vector<double> a(5000, 1.0);
  ds.bind(0, a.data(), a.size());
  ds.host_wrote(0);
  std::int64_t allocs_after_first = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    ds.begin_epoch();
    ds.to_device(0);
    ds.device_wrote(0);
    ds.end_epoch(1e-4);  // staged: physically downloads dat 0
    if (epoch == 0) allocs_after_first = pool.allocations();
  }
  EXPECT_GT(ds.stats().d2h_transfers, 1);
  EXPECT_EQ(pool.allocations(), allocs_after_first);
}

TEST(DeviceSpace, PipelinedMakespanOverlapsStages) {
  const PcieModel pcie;
  const std::int64_t bytes = 64 << 20;
  const double compute =
      static_cast<double>(bytes) / pcie.bandwidth_Bps;  // balanced
  const double staged =
      DeviceSpace::staged_makespan(pcie, bytes, compute, bytes);
  const double pipe1 =
      DeviceSpace::pipelined_makespan(pcie, bytes, compute, bytes, 1);
  const double pipe3 =
      DeviceSpace::pipelined_makespan(pcie, bytes, compute, bytes, 3);
  const double pipe8 =
      DeviceSpace::pipelined_makespan(pcie, bytes, compute, bytes, 8);
  EXPECT_DOUBLE_EQ(pipe1, staged);  // one partition = no overlap
  EXPECT_LT(pipe3, staged);
  EXPECT_LE(pipe8, pipe3);
  EXPECT_GE(pipe8, compute);  // compute is the floor
}

TEST(DeviceSpace, RebindPreservesLedgerAndResizesShadow) {
  BufferPool pool;
  DeviceSpace ds(space_cfg(DeviceConfig::Mode::Pipelined), &pool);
  std::vector<double> dev(10, 1.0);
  ds.bind(0, dev.data(), dev.size());
  ds.host_wrote(0);
  ds.to_device(0);
  const std::int64_t before = ds.stats().h2d_bytes;
  std::vector<double> bigger(20, 2.0);
  ds.rebind(0, bigger.data(), bigger.size());
  ds.host_wrote(0);
  ds.to_device(0);
  EXPECT_EQ(ds.stats().h2d_bytes,
            before + static_cast<std::int64_t>(20 * sizeof(double)));
}

// -- Hierarchical two-level colouring (arXiv:1802.03749). ---------------

/// Ring map: element e touches nodes {e, (e+1) % n} — every neighbour
/// pair conflicts, the classic worst case for flat colouring.
std::vector<lidx_t> ring_targets(lidx_t n) {
  std::vector<lidx_t> t(static_cast<std::size_t>(n) * 2);
  for (lidx_t e = 0; e < n; ++e) {
    t[static_cast<std::size_t>(e) * 2] = e;
    t[static_cast<std::size_t>(e) * 2 + 1] = (e + 1) % n;
  }
  return t;
}

/// A long-range second map (e -> (7e+3) mod m) so conflicts are not
/// purely local.
std::vector<lidx_t> stride_targets(lidx_t n, lidx_t m) {
  std::vector<lidx_t> t(static_cast<std::size_t>(n));
  for (lidx_t e = 0; e < n; ++e) t[static_cast<std::size_t>(e)] = (7 * e + 3) % m;
  return t;
}

TEST(Hierarchy, TwoLevelColouringIsValid) {
  const lidx_t n = 257;
  const std::vector<lidx_t> ring = ring_targets(n);
  const std::vector<lidx_t> stride = stride_targets(n, n);
  const std::vector<mesh::ColourMapView> views{
      {ring.data(), 2, n, n}, {stride.data(), 1, n, n}};
  const HierColouring h = hierarchical_colouring(n, views, 32);
  EXPECT_TRUE(hierarchical_valid(h, n, views));
  EXPECT_GT(h.blocks.num_colours, 1);
  EXPECT_GT(h.max_inner_colours, 1);
}

TEST(Hierarchy, ScheduleIsDeterministicAndCoversEveryElement) {
  const lidx_t n = 300;
  const std::vector<lidx_t> ring = ring_targets(n);
  const std::vector<mesh::ColourMapView> views{{ring.data(), 2, n, n}};
  const HierColouring a = hierarchical_colouring(n, views, 32);
  const HierColouring b = hierarchical_colouring(n, views, 32);
  EXPECT_EQ(a.block_order, b.block_order);
  EXPECT_EQ(a.elem_colour, b.elem_colour);
  EXPECT_EQ(a.blocks.colour, b.blocks.colour);

  // block_order is a permutation of [0, n).
  LIdxVec sorted = a.block_order;
  std::sort(sorted.begin(), sorted.end());
  for (lidx_t e = 0; e < n; ++e) EXPECT_EQ(sorted[e], e);

  // colour_blocks covers each block exactly once.
  lidx_t blocks_listed = 0;
  for (const LIdxVec& c : a.colour_blocks)
    blocks_listed += static_cast<lidx_t>(c.size());
  EXPECT_EQ(blocks_listed, a.num_blocks());
}

TEST(Hierarchy, SharedMemoryClampBoundsBlockFootprint) {
  // 512 B of "shared memory" with dim-4 doubles = 16 staged targets per
  // block; the requested 64-element blocks must be clamped until every
  // block's unique targets fit.
  const lidx_t n = 512;
  const std::vector<lidx_t> ring = ring_targets(n);
  const std::vector<mesh::ColourMapView> views{{ring.data(), 2, n, n}};
  const HierColouring h =
      hierarchical_colouring(n, views, 64, /*shared_bytes=*/512,
                             /*max_dim=*/4);
  EXPECT_LT(h.blocks.block_elems, 64);
  for (lidx_t b = 0; b < h.num_blocks(); ++b)
    EXPECT_LE(static_cast<std::size_t>(h.block_unique_targets[b]) * 4 *
                  sizeof(double),
              std::size_t{512});
  EXPECT_TRUE(hierarchical_valid(h, n, views));
}

TEST(Hierarchy, SharedStagingRoundTrip) {
  const lidx_t n = 96, m = 64;
  const std::vector<lidx_t> stride = stride_targets(n, m);
  const mesh::ColourMapView view{stride.data(), 1, n, m};
  const std::vector<mesh::ColourMapView> views{view};
  const HierColouring h = hierarchical_colouring(n, views, 16);
  constexpr int dim = 3;

  for (const mesh::LayoutKind kind :
       {mesh::LayoutKind::AoS, mesh::LayoutKind::SoA}) {
    const mesh::DatLayout lay = mesh::DatLayout::make(kind, dim, m, 8);
    std::vector<double> data(lay.alloc_doubles(), 0.0);
    for (lidx_t t = 0; t < m; ++t)
      for (int c = 0; c < dim; ++c)
        data[lay.offset(t, c)] = t * 10.0 + c;
    const std::vector<double> orig = data;
    const mesh::DatLayout* lp =
        kind == mesh::LayoutKind::AoS ? nullptr : &lay;

    const SharedStaging s = build_shared_staging(h, 0, view);
    std::vector<double> buf(s.targets.size() * dim, 0.0);
    staging_gather(s, data.data(), lp, dim, buf.data());
    for (std::size_t r = 0; r < s.targets.size(); ++r)
      for (int c = 0; c < dim; ++c)
        EXPECT_EQ(buf[r * dim + c], s.targets[r] * 10.0 + c);

    // Scatter-back of the unmodified staging is the identity...
    staging_scatter(s, buf.data(), lp, dim, data.data());
    EXPECT_EQ(data, orig);
    // ...and block-local updates land on exactly the staged targets.
    for (double& v : buf) v += 1.0;
    staging_scatter(s, buf.data(), lp, dim, data.data());
    std::vector<bool> staged(static_cast<std::size_t>(m), false);
    for (const lidx_t t : s.targets) staged[static_cast<std::size_t>(t)] = true;
    for (lidx_t t = 0; t < m; ++t)
      for (int c = 0; c < dim; ++c)
        EXPECT_EQ(data[lay.offset(t, c)],
                  orig[lay.offset(t, c)] + (staged[t] ? 1.0 : 0.0));
  }
}

TEST(Hierarchy, StagingSlotsResolveEveryMapEntry) {
  const lidx_t n = 80;
  const std::vector<lidx_t> ring = ring_targets(n);
  const mesh::ColourMapView view{ring.data(), 2, n, n};
  const std::vector<mesh::ColourMapView> views{view};
  const HierColouring h = hierarchical_colouring(n, views, 16);
  for (lidx_t b = 0; b < h.num_blocks(); ++b) {
    const SharedStaging s = build_shared_staging(h, b, view);
    const std::size_t lo = h.block_off[static_cast<std::size_t>(b)];
    const std::size_t hi = h.block_off[static_cast<std::size_t>(b) + 1];
    ASSERT_EQ(s.slot.size(), (hi - lo) * 2);
    for (std::size_t i = lo; i < hi; ++i) {
      const lidx_t e = h.block_order[i];
      for (int k = 0; k < 2; ++k) {
        const lidx_t row = s.slot[(i - lo) * 2 + static_cast<std::size_t>(k)];
        ASSERT_GE(row, 0);
        EXPECT_EQ(s.targets[static_cast<std::size_t>(row)],
                  ring[static_cast<std::size_t>(e) * 2 +
                       static_cast<std::size_t>(k)]);
      }
    }
  }
}

}  // namespace
}  // namespace op2ca::gpu
