// MG-CFD application tests: problem construction, kernel sanity, solver
// convergence behaviour and the synthetic chain's structural properties.
#include <gtest/gtest.h>

#include <cmath>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "test_common.hpp"

namespace op2ca::apps::mgcfd {
namespace {

using core::Runtime;
using core::World;
using core::WorldConfig;
using testutil::expect_allclose;

TEST(MgcfdProblem, BuildsRequestedShape) {
  Problem p = build_problem(5000, 3);
  ASSERT_EQ(p.levels.size(), 3u);
  const mesh::MeshDef& m = p.mg.mesh;
  const gidx_t n0 = m.set(p.mg.levels[0].nodes).size;
  EXPECT_GT(n0, 2500);
  EXPECT_LT(n0, 10000);
  // Coarser levels shrink roughly 8x.
  const gidx_t n1 = m.set(p.mg.levels[1].nodes).size;
  EXPECT_LT(n1, n0 / 4);
  // Synthetic dats exist on level-0 sets.
  EXPECT_EQ(m.dat(p.sres).set, p.mg.levels[0].nodes);
  EXPECT_EQ(m.dat(p.sewt).set, p.mg.levels[0].edges);
}

TEST(MgcfdProblem, DeterministicInitialization) {
  Problem a = build_problem(2000, 2, 42);
  Problem b = build_problem(2000, 2, 42);
  EXPECT_EQ(a.mg.mesh.dat(a.levels[0].q).data,
            b.mg.mesh.dat(b.levels[0].q).data);
  Problem c = build_problem(2000, 2, 43);
  EXPECT_NE(a.mg.mesh.dat(a.levels[0].q).data,
            c.mg.mesh.dat(c.levels[0].q).data);
}

TEST(MgcfdKernels, StepFactorPositiveAndFinite) {
  double q[5] = {1.0, 0.3, 0.0, 0.0, 2.5};
  double adt = 0.0;
  kernels::step_factor(q, &adt);
  EXPECT_GT(adt, 0.0);
  EXPECT_TRUE(std::isfinite(adt));
  // Degenerate state must not produce NaN.
  double bad[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
  kernels::step_factor(bad, &adt);
  EXPECT_TRUE(std::isfinite(adt));
}

TEST(MgcfdKernels, FluxIsConservative) {
  // The symmetric flux contribution cancels between the two end nodes:
  // res1 + res2 == 0 for a single edge application.
  double q1[5] = {1.0, 0.3, 0.05, 0.0, 2.5};
  double q2[5] = {1.1, 0.25, 0.0, 0.02, 2.6};
  double ewt[3] = {0.4, -0.2, 0.1};
  double r1[5] = {0, 0, 0, 0, 0}, r2[5] = {0, 0, 0, 0, 0};
  kernels::compute_flux_edge(q1, q2, ewt, r1, r2);
  for (int k = 0; k < 5; ++k) EXPECT_NEAR(r1[k] + r2[k], 0.0, 1e-14);
}

TEST(MgcfdKernels, TimeStepConsumesResidual) {
  double q[5] = {1, 1, 1, 1, 1};
  double adt = 0.5;
  double res[5] = {2, 2, 2, 2, 2};
  kernels::time_step(q, &adt, res);
  for (int k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(res[k], 0.0);
    EXPECT_LT(q[k], 1.0);
  }
}

TEST(MgcfdSolver, ResidualStaysBoundedOverManyIterations) {
  Problem prob = build_problem(2500, 2);
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  World w(std::move(prob.mg.mesh), cfg);
  std::vector<double> history;
  w.run([&](Runtime& rt) {
    const Handles h = resolve_handles(rt, prob);
    const auto local = run_solver(rt, h, 10);
    if (rt.rank() == 0) history = local;
  });
  ASSERT_EQ(history.size(), 10u);
  for (double r : history) EXPECT_TRUE(std::isfinite(r));
  // The damped explicit scheme must not blow up.
  EXPECT_LT(history.back(), history.front() * 10.0);
}

TEST(MgcfdSolver, RmsIdenticalAcrossRankCounts) {
  // The residual RMS is a global reduction: its value (not just the
  // state) must agree between 1 and many ranks.
  auto rms_for = [](int nranks) {
    Problem prob = build_problem(2000, 2);
    WorldConfig cfg;
    cfg.nranks = nranks;
    cfg.partitioner = partition::Kind::RIB;
    cfg.halo_depth = 2;
    World w(std::move(prob.mg.mesh), cfg);
    std::vector<double> h;
    w.run([&](Runtime& rt) {
      const Handles hh = resolve_handles(rt, prob);
      const auto local = run_solver(rt, hh, 3);
      if (rt.rank() == 0) h = local;
    });
    return h;
  };
  const auto serial = rms_for(1);
  const auto par = rms_for(6);
  ASSERT_EQ(serial.size(), par.size());
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(par[i] / serial[i], 1.0, 1e-9) << "iteration " << i;
}

TEST(SyntheticChainApp, SpecMatchesConfiguredLength) {
  Problem prob = build_problem(1500, 1);
  for (int nchains : {1, 4, 16}) {
    const core::ChainSpec spec = synthetic_chain_spec(prob, nchains);
    EXPECT_EQ(spec.loops.size(), static_cast<size_t>(2 * nchains));
    EXPECT_EQ(spec.name, "synthetic");
  }
}

TEST(SyntheticChainApp, PerturbKeepsSpresDirtyEachTimestep) {
  // Baseline must re-exchange spres every timestep because the perturb
  // loop re-dirties it outside the chain.
  Problem prob = build_problem(1500, 1);
  const mesh::dat_id spres = prob.spres;
  (void)spres;
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const Handles h = resolve_handles(rt, prob);
    for (int t = 0; t < 3; ++t) run_synthetic_chain(rt, h, 1);
  });
  const auto loops = w.loop_metrics();
  // synth_update reads spres: 3 timesteps => 3 exchanges of spres.
  const auto& up = loops.at("synth_update");
  EXPECT_GT(up.msgs, 0);
  EXPECT_EQ(up.calls, 3);
}

}  // namespace
}  // namespace op2ca::apps::mgcfd
