// Failure-injection and misuse tests: the library must fail loudly and
// legibly, never deadlock, and leave errors attributable.
#include <gtest/gtest.h>

#include <sstream>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/chain_config.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

TEST(ChainConfigParse, FullGrammar) {
  std::istringstream in(R"(
# comment line
default off
chain period loops=6 depth=2
chain vflux depth=1
chain gradl enabled=0  # trailing comment
)");
  const ChainConfig cfg = ChainConfig::parse(in);
  EXPECT_TRUE(cfg.enabled("period"));
  EXPECT_EQ(cfg.expected_loops("period"), 6);
  EXPECT_EQ(cfg.max_depth("period"), 2);
  EXPECT_TRUE(cfg.enabled("vflux"));
  EXPECT_FALSE(cfg.enabled("gradl"));
  EXPECT_FALSE(cfg.enabled("unlisted"));
}

TEST(ChainConfigParse, DefaultOn) {
  std::istringstream in("default on\nchain x enabled=0\n");
  const ChainConfig cfg = ChainConfig::parse(in);
  EXPECT_TRUE(cfg.enabled("anything"));
  EXPECT_FALSE(cfg.enabled("x"));
}

TEST(ChainConfigParse, RejectsGarbage) {
  {
    std::istringstream in("frobnicate period\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x depth=abc\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x bogus=1\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("default maybe\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  EXPECT_THROW(ChainConfig::load("/nonexistent/path/chains.cfg"), Error);
}

TEST(WorldFailures, BadSeedSetName) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.seed_set = "nonexistent";
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, ZeroRanksRejected) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.nranks = 0;
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, BadHaloDepthRejected) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.halo_depth = 0;
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, RankExceptionCarriesMessage) {
  mesh::Quad2D q = mesh::make_quad2d(8, 8);
  WorldConfig cfg;
  cfg.nranks = 3;
  World w(std::move(q.mesh), cfg);
  try {
    w.run([](Runtime& rt) {
      if (rt.rank() == 1) raise("deliberate failure on rank 1");
      rt.barrier();
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    // Either the original error or a poison notification surfaces; both
    // must be self-describing.
    EXPECT_TRUE(what.find("deliberate failure") != std::string::npos ||
                what.find("poisoned") != std::string::npos)
        << what;
  }
}

TEST(WorldFailures, MismatchedChainNamesAreIndependent) {
  // Enabling a chain name that the app never opens is harmless; opening
  // a chain that is not configured runs as plain OP2.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.halo_depth = 2;
  cfg.chains.enable("never_used");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 2);  // chain "synthetic"
  });
  // "synthetic" fell back to per-loop execution and was still metered.
  EXPECT_GT(w.chain_metrics().at("synthetic").calls, 0);
}

TEST(WorldFailures, EmptyChainIsNoOp) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.chains.enable("empty");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([](Runtime& rt) {
    rt.chain_begin("empty");
    rt.chain_end();
  });
  SUCCEED();
}

TEST(WorldFailures, ValidationCatchesOutOfRegionAccess) {
  // A loop iterating the NONEXEC fringe would touch absent targets; the
  // runtime's per-iteration validation must catch indirect access through
  // unresolved (kInvalidLocal) map slots. We provoke it by running a loop
  // over cells (which land in fringe regions of neighbouring ranks)
  // through a map whose deep targets are absent at depth 1.
  // Constructed directly on the detail API is intrusive; instead verify
  // the guard exists by checking the documented error path: a chain that
  // requires depth 2 on a depth-1 world raises before any execution.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.halo_depth = 1;
  cfg.validate = true;
  cfg.chains.enable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  EXPECT_THROW(w.run([&](Runtime& rt) {
                 const auto h = apps::mgcfd::resolve_handles(rt, prob);
                 apps::mgcfd::run_synthetic_chain(rt, h, 1);
               }),
               Error);
}

TEST(WorldFailures, InfeasibleChainRejectedWithGuidance) {
  // A chain where a direct write to a non-executable set (nodes) is read
  // by a later loop cannot run communication-avoiding: the halo node
  // values cannot be recomputed. The inspector must reject it with a
  // message naming the loop and suggesting a split.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.halo_depth = 2;
  cfg.chains.enable("bad_direct");
  World w(std::move(prob.mg.mesh), cfg);
  try {
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      rt.chain_begin("bad_direct");
      // perturb writes spres directly on nodes...
      rt.par_loop("p", h.nodes0,
                  [](double* pres) { pres[0] += 1.0; },
                  arg_dat(rt.dat("spres"), Access::RW));
      // ...and update reads spres indirectly afterwards.
      rt.par_loop("u", h.edges0,
                  [](double* r1, double* r2, const double* p1,
                     const double* p2) {
                    r1[0] += p1[0];
                    r2[0] += p2[0];
                  },
                  arg_dat(rt.dat("sres"), 0, h.e2n0, Access::INC),
                  arg_dat(rt.dat("sres"), 1, h.e2n0, Access::INC),
                  arg_dat(rt.dat("spres"), 0, h.e2n0, Access::READ),
                  arg_dat(rt.dat("spres"), 1, h.e2n0, Access::READ));
      rt.chain_end();
    });
    FAIL() << "expected the inspector to reject the chain";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("cannot execute communication-avoiding") !=
                    std::string::npos ||
                what.find("poisoned") != std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace op2ca::core
