// Failure-injection and misuse tests: the library must fail loudly and
// legibly, never deadlock, and leave errors attributable.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>
#include <thread>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/comm/comm.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/core/chain_config.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

TEST(ChainConfigParse, FullGrammar) {
  std::istringstream in(R"(
# comment line
default off
chain period loops=6 depth=2
chain vflux depth=1
chain gradl enabled=0  # trailing comment
)");
  const ChainConfig cfg = ChainConfig::parse(in);
  EXPECT_TRUE(cfg.enabled("period"));
  EXPECT_EQ(cfg.expected_loops("period"), 6);
  EXPECT_EQ(cfg.max_depth("period"), 2);
  EXPECT_TRUE(cfg.enabled("vflux"));
  EXPECT_FALSE(cfg.enabled("gradl"));
  EXPECT_FALSE(cfg.enabled("unlisted"));
}

TEST(ChainConfigParse, TileKeyRoundTrips) {
  std::istringstream in(R"(
chain period loops=6 depth=2 tile=4
chain vflux tile=1
chain gradl depth=1
)");
  const ChainConfig cfg = ChainConfig::parse(in);
  EXPECT_EQ(cfg.tile("period"), 4);
  EXPECT_EQ(cfg.expected_loops("period"), 6);
  EXPECT_EQ(cfg.max_depth("period"), 2);
  EXPECT_EQ(cfg.tile("vflux"), 1);
  // tile unset -> 0: the chain inherits WorldConfig::tile.
  EXPECT_EQ(cfg.tile("gradl"), 0);
  EXPECT_EQ(cfg.tile("unlisted"), 0);

  // Programmatic enable() carries the same field.
  ChainConfig prog;
  prog.enable("jacob", /*loops=*/3, /*max_depth=*/2, /*tile=*/8);
  EXPECT_EQ(prog.tile("jacob"), 8);
}

TEST(ChainConfigParse, RejectsBadTile) {
  {
    std::istringstream in("chain x tile=0\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x tile=-2\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x tile=abc\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
}

TEST(ChainConfigParse, DefaultOn) {
  std::istringstream in("default on\nchain x enabled=0\n");
  const ChainConfig cfg = ChainConfig::parse(in);
  EXPECT_TRUE(cfg.enabled("anything"));
  EXPECT_FALSE(cfg.enabled("x"));
}

TEST(ChainConfigParse, RejectsGarbage) {
  {
    std::istringstream in("frobnicate period\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x depth=abc\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain x bogus=1\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("default maybe\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  {
    std::istringstream in("chain\n");
    EXPECT_THROW(ChainConfig::parse(in), Error);
  }
  EXPECT_THROW(ChainConfig::load("/nonexistent/path/chains.cfg"), Error);
}

TEST(WorldFailures, BadSeedSetName) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.seed_set = "nonexistent";
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, ZeroRanksRejected) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.nranks = 0;
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, BadHaloDepthRejected) {
  mesh::Quad2D q = mesh::make_quad2d(4, 4);
  WorldConfig cfg;
  cfg.halo_depth = 0;
  EXPECT_THROW(World(std::move(q.mesh), cfg), Error);
}

TEST(WorldFailures, RankExceptionCarriesMessage) {
  mesh::Quad2D q = mesh::make_quad2d(8, 8);
  WorldConfig cfg;
  cfg.nranks = 3;
  World w(std::move(q.mesh), cfg);
  try {
    w.run([](Runtime& rt) {
      if (rt.rank() == 1) raise("deliberate failure on rank 1");
      rt.barrier();
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    // Either the original error or a poison notification surfaces; both
    // must be self-describing.
    EXPECT_TRUE(what.find("deliberate failure") != std::string::npos ||
                what.find("poisoned") != std::string::npos)
        << what;
  }
}

TEST(WorldFailures, MismatchedChainNamesAreIndependent) {
  // Enabling a chain name that the app never opens is harmless; opening
  // a chain that is not configured runs as plain OP2.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.halo_depth = 2;
  cfg.chains.enable("never_used");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 2);  // chain "synthetic"
  });
  // "synthetic" fell back to per-loop execution and was still metered.
  EXPECT_GT(w.chain_metrics().at("synthetic").calls, 0);
}

TEST(WorldFailures, EmptyChainIsNoOp) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.chains.enable("empty");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([](Runtime& rt) {
    rt.chain_begin("empty");
    rt.chain_end();
  });
  SUCCEED();
}

TEST(WorldFailures, ValidationCatchesOutOfRegionAccess) {
  // A loop iterating the NONEXEC fringe would touch absent targets; the
  // runtime's per-iteration validation must catch indirect access through
  // unresolved (kInvalidLocal) map slots. We provoke it by running a loop
  // over cells (which land in fringe regions of neighbouring ranks)
  // through a map whose deep targets are absent at depth 1.
  // Constructed directly on the detail API is intrusive; instead verify
  // the guard exists by checking the documented error path: a chain that
  // requires depth 2 on a depth-1 world raises before any execution.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.halo_depth = 1;
  cfg.validate = true;
  cfg.chains.enable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  EXPECT_THROW(w.run([&](Runtime& rt) {
                 const auto h = apps::mgcfd::resolve_handles(rt, prob);
                 apps::mgcfd::run_synthetic_chain(rt, h, 1);
               }),
               Error);
}

TEST(WorldFailures, InfeasibleChainRejectedWithGuidance) {
  // A chain where a direct write to a non-executable set (nodes) is read
  // by a later loop cannot run communication-avoiding: the halo node
  // values cannot be recomputed. The inspector must reject it with a
  // message naming the loop and suggesting a split.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.halo_depth = 2;
  cfg.chains.enable("bad_direct");
  World w(std::move(prob.mg.mesh), cfg);
  try {
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      rt.chain_begin("bad_direct");
      // perturb writes spres directly on nodes...
      rt.par_loop("p", h.nodes0,
                  [](double* pres) { pres[0] += 1.0; },
                  arg_dat(rt.dat("spres"), Access::RW));
      // ...and update reads spres indirectly afterwards.
      rt.par_loop("u", h.edges0,
                  [](double* r1, double* r2, const double* p1,
                     const double* p2) {
                    r1[0] += p1[0];
                    r2[0] += p2[0];
                  },
                  arg_dat(rt.dat("sres"), 0, h.e2n0, Access::INC),
                  arg_dat(rt.dat("sres"), 1, h.e2n0, Access::INC),
                  arg_dat(rt.dat("spres"), 0, h.e2n0, Access::READ),
                  arg_dat(rt.dat("spres"), 1, h.e2n0, Access::READ));
      rt.chain_end();
    });
    FAIL() << "expected the inspector to reject the chain";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("cannot execute communication-avoiding") !=
                    std::string::npos ||
                what.find("poisoned") != std::string::npos)
        << what;
  }
}

// ---- Transport faults: a striped exchange must fail loudly or fall
// back; delivering a torn message silently is never an option. ------------

TEST(TransportFailures, DroppedRailTimesOutLoudly) {
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 64;
  tc.stripe_timeout_s = 0.2;  // fail fast in the test.
  // Rail 0's stripe never arrives: a dead NIC / lost sub-message.
  t.inject_drop(/*src=*/0, /*dst=*/1, /*tag=*/9, /*count=*/1);
  sim::Comm sender(t, 0, nullptr, &tc);
  auto sreq = sender.stripe_isend(1, 9, ByteBuf(2048));
  sender.wait(sreq);
  sim::Comm recv(t, 1, nullptr, &tc);
  ByteBuf out;
  auto rreq = recv.stripe_irecv(0, 9, &out, 2048);
  try {
    recv.wait(rreq);
    FAIL() << "reassembly must not complete with a dropped rail";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("dropped rail"), std::string::npos) << what;
  }
}

TEST(TransportFailures, TruncatedStripeRejectedAsTorn) {
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 64;
  // Keep the 32-byte header plus 8 payload bytes: the header promises a
  // full stripe, the body cannot honour it.
  t.inject_truncate(/*src=*/0, /*dst=*/1, /*tag=*/9, /*keep_bytes=*/40);
  sim::Comm sender(t, 0, nullptr, &tc);
  auto sreq = sender.stripe_isend(1, 9, ByteBuf(2048));
  sender.wait(sreq);
  sim::Comm recv(t, 1, nullptr, &tc);
  ByteBuf out;
  auto rreq = recv.stripe_irecv(0, 9, &out, 2048);
  try {
    recv.wait(rreq);
    FAIL() << "a truncated stripe must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos)
        << e.what();
  }
}

TEST(TransportFailures, StripeShorterThanHeaderRejected) {
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 64;
  // Not even a whole header survives.
  t.inject_truncate(/*src=*/0, /*dst=*/1, /*tag=*/9, /*keep_bytes=*/16);
  sim::Comm sender(t, 0, nullptr, &tc);
  auto sreq = sender.stripe_isend(1, 9, ByteBuf(2048));
  sender.wait(sreq);
  sim::Comm recv(t, 1, nullptr, &tc);
  ByteBuf out;
  auto rreq = recv.stripe_irecv(0, 9, &out, 2048);
  try {
    recv.wait(rreq);
    FAIL() << "a headerless fragment must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(TransportFailures, BelowThresholdFallsBackUnstriped) {
  // Small messages never stripe, so a multi-rail config cannot tear
  // them: the same injection that kills a stripe above has nothing to
  // bite on when the message takes the legacy single-send path.
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 1 << 20;
  sim::Comm sender(t, 0, nullptr, &tc);
  ByteBuf payload(2048);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i & 0xff);
  ByteBuf copy = payload;
  auto sreq = sender.stripe_isend(1, 9, std::move(copy));
  sender.wait(sreq);
  EXPECT_EQ(sender.stats().stripes_sent, 0);
  sim::Comm recv(t, 1, nullptr, &tc);
  ByteBuf out;
  auto rreq = recv.stripe_irecv(0, 9, &out, 2048);
  recv.wait(rreq);
  EXPECT_EQ(out, payload);
}

TEST(TransportFailures, StaleChannelGeometryRejected) {
  // The two ends of a persistent channel disagree on the slot size — one
  // side's exchange plan changed without renegotiation. The handshake
  // must refuse on both ends rather than truncate or pad traffic.
  sim::Transport t(2);
  sim::TransportConfig tc;
  tc.rails = 1;
  tc.persistent = true;
  std::vector<std::string> errors(2);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        sim::Comm c(t, r, nullptr, &tc);
        sim::ChannelSpec spec;
        spec.peer = 1 - r;
        spec.sender = (r == 0);
        spec.bytes = (r == 0) ? 256 : 512;  // stale: sizes diverged.
        spec.plan_hash = 42;
        c.open_channels(std::span<const sim::ChannelSpec>(&spec, 1));
      } catch (const Error& e) {
        errors[r] = e.what();
        t.poison();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(errors[0].empty());
  EXPECT_FALSE(errors[1].empty());
  EXPECT_TRUE(
      errors[0].find("geometry mismatch") != std::string::npos ||
      errors[1].find("geometry mismatch") != std::string::npos)
      << errors[0] << " / " << errors[1];
}

}  // namespace
}  // namespace op2ca::core
