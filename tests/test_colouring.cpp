// Greedy-colouring properties: validity (no two same-colour elements
// share a target through any view — checked both by colouring_valid and
// by a brute-force pairwise scan), determinism, class structure, and the
// colouring of a real quad mesh's edge->node map.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "op2ca/mesh/colouring.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca::mesh {
namespace {

/// A random from-set -> target map, row-major, with occasional
/// kInvalidLocal holes (the halo builder leaves those for targets only
/// reachable from never-executed rows).
LIdxVec random_targets(Rng* rng, lidx_t n, int arity, lidx_t num_targets,
                       double hole_p = 0.0) {
  LIdxVec t(static_cast<std::size_t>(n) * static_cast<std::size_t>(arity));
  for (auto& v : t)
    v = rng->next_bool(hole_p)
            ? kInvalidLocal
            : static_cast<lidx_t>(rng->next_int(0, num_targets - 1));
  return t;
}

/// O(n^2) ground truth: do elements a and b conflict through any view?
bool conflicts(lidx_t a, lidx_t b, std::span<const ColourMapView> views) {
  for (const ColourMapView& v : views) {
    for (int i = 0; i < v.arity; ++i) {
      const lidx_t ta = v.targets[a * v.arity + i];
      if (ta == kInvalidLocal) continue;
      for (int j = 0; j < v.arity; ++j)
        if (ta == v.targets[b * v.arity + j]) return true;
    }
  }
  return false;
}

void expect_valid_brute_force(const Colouring& c, lidx_t n,
                              std::span<const ColourMapView> views) {
  ASSERT_TRUE(colouring_valid(c, n, views));
  for (lidx_t a = 0; a < n; ++a)
    for (lidx_t b = a + 1; b < n; ++b)
      if (c.colour[static_cast<std::size_t>(a)] ==
          c.colour[static_cast<std::size_t>(b)])
        EXPECT_FALSE(conflicts(a, b, views))
            << "elements " << a << " and " << b << " share colour "
            << c.colour[static_cast<std::size_t>(a)] << " but conflict";
}

void expect_classes_partition(const Colouring& c, lidx_t n) {
  ASSERT_EQ(static_cast<int>(c.classes.size()), c.num_colours);
  std::set<lidx_t> seen;
  for (int k = 0; k < c.num_colours; ++k) {
    const LIdxVec& cls = c.classes[static_cast<std::size_t>(k)];
    EXPECT_FALSE(cls.empty()) << "empty colour class " << k;
    EXPECT_TRUE(std::is_sorted(cls.begin(), cls.end()));
    for (lidx_t e : cls) {
      EXPECT_EQ(c.colour[static_cast<std::size_t>(e)], k);
      EXPECT_TRUE(seen.insert(e).second) << "element " << e << " repeated";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

TEST(Colouring, RandomMapsValidBruteForce) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const lidx_t n = static_cast<lidx_t>(rng.next_int(1, 120));
    const lidx_t targets = static_cast<lidx_t>(rng.next_int(1, 60));
    const int arity = static_cast<int>(rng.next_int(1, 4));
    const LIdxVec t =
        random_targets(&rng, n, arity, targets, trial % 3 == 0 ? 0.1 : 0.0);
    const ColourMapView v{t.data(), arity, n, targets};
    const Colouring c = greedy_colouring(n, {&v, 1});
    expect_valid_brute_force(c, n, {&v, 1});
    expect_classes_partition(c, n);
  }
}

TEST(Colouring, MultipleViewsValid) {
  Rng rng(7);
  const lidx_t n = 80;
  const LIdxVec t1 = random_targets(&rng, n, 2, 30);
  const LIdxVec t2 = random_targets(&rng, n, 3, 15);
  // Identity view: a dat written directly while also map-accessed.
  LIdxVec ident(static_cast<std::size_t>(n));
  for (lidx_t e = 0; e < n; ++e) ident[static_cast<std::size_t>(e)] = e;
  const ColourMapView views[] = {{t1.data(), 2, n, 30},
                                 {t2.data(), 3, n, 15},
                                 {ident.data(), 1, n, n}};
  const Colouring c = greedy_colouring(n, views);
  expect_valid_brute_force(c, n, views);
  expect_classes_partition(c, n);
}

TEST(Colouring, Deterministic) {
  Rng rng(99);
  const lidx_t n = 200;
  const LIdxVec t = random_targets(&rng, n, 2, 50);
  const ColourMapView v{t.data(), 2, n, 50};
  const Colouring a = greedy_colouring(n, {&v, 1});
  const Colouring b = greedy_colouring(n, {&v, 1});
  EXPECT_EQ(a.num_colours, b.num_colours);
  EXPECT_EQ(a.colour, b.colour);
  EXPECT_EQ(a.classes, b.classes);
}

TEST(Colouring, NoViewsIsOneColour) {
  const Colouring c = greedy_colouring(10, {});
  EXPECT_EQ(c.num_colours, 1);
  expect_classes_partition(c, 10);
}

TEST(Colouring, EmptySet) {
  const Colouring c = greedy_colouring(0, {});
  EXPECT_EQ(c.num_colours, 0);
  EXPECT_TRUE(c.classes.empty());
}

TEST(Colouring, HighDegreeTargetForcesManyColours) {
  // Every element maps onto target 0: all conflict pairwise, so each
  // needs its own colour — exercises the >64-colour mask widening.
  const lidx_t n = 100;
  LIdxVec t(static_cast<std::size_t>(n), 0);
  const ColourMapView v{t.data(), 1, n, 1};
  const Colouring c = greedy_colouring(n, {&v, 1});
  EXPECT_EQ(c.num_colours, n);
  expect_valid_brute_force(c, n, {&v, 1});
  expect_classes_partition(c, n);
}

TEST(Colouring, Quad2dEdgeToNode) {
  // Real mesh: colour edges by shared nodes. A structured quad mesh has
  // node degree <= 4, so greedy needs few colours, and validity means no
  // two same-colour edges touch the same node.
  const Quad2D q = make_quad2d(12, 9);
  const MapDef& e2n = q.mesh.map(q.e2n);
  const lidx_t n = static_cast<lidx_t>(e2n.targets.size() / 2);
  LIdxVec local(e2n.targets.begin(), e2n.targets.end());
  const ColourMapView v{local.data(), 2, n,
                        static_cast<lidx_t>(q.mesh.set(q.nodes).size)};
  const Colouring c = greedy_colouring(n, {&v, 1});
  EXPECT_TRUE(colouring_valid(c, n, {&v, 1}));
  expect_classes_partition(c, n);
  EXPECT_LE(c.num_colours, 8);  // greedy <= 2*max_degree for edge maps
  EXPECT_GE(c.num_colours, 2);
}

TEST(Colouring, ValidityPredicateCatchesBadColouring) {
  // Two elements sharing a target but given the same colour must fail.
  const LIdxVec t = {0, 0};
  const ColourMapView v{t.data(), 1, 2, 1};
  Colouring bad;
  bad.num_colours = 1;
  bad.colour = {0, 0};
  bad.classes = {{0, 1}};
  EXPECT_FALSE(colouring_valid(bad, 2, {&v, 1}));
}

}  // namespace
}  // namespace op2ca::mesh
