// Loop-chain inspection tests: Alg 3 halo extensions pinned against the
// paper's Tables 3-4, semantic execution depths, core shrinks and
// pre-chain sync sets.
#include <gtest/gtest.h>

#include <set>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/chain.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

class HydraChains : public ::testing::Test {
protected:
  void SetUp() override {
    prob_ = apps::hydra::build_problem(2000);
    specs_ = apps::hydra::chain_specs(prob_);
  }
  ChainAnalysis analyze(const std::string& name) {
    return inspect_chain(prob_.an.mesh, specs_.at(name));
  }
  apps::hydra::Problem prob_;
  std::map<std::string, ChainSpec> specs_;
};

TEST_F(HydraChains, WeightExtensionsMatchTable3) {
  const ChainAnalysis an = analyze("weight");
  // Paper Table 3: sumbwts 2, periodsym 1, centreline 2, edgelength 2,
  // periodicity 1. The printed Alg 3 yields 1 for centreline's
  // write-after-closure (documented deviation in EXPERIMENTS.md); all
  // other rows match.
  EXPECT_EQ(an.he_alg3, (std::vector<int>{2, 1, 1, 2, 1}));
}

TEST_F(HydraChains, PeriodExtensionsMatchTable3) {
  const ChainAnalysis an = analyze("period");
  // Paper Table 3: negflag 2, limxp 2, periodicity 1, limxp 2,
  // periodicity 1, negflag 1 — reproduced exactly.
  EXPECT_EQ(an.he_alg3, (std::vector<int>{2, 2, 1, 2, 1, 1}));
  EXPECT_EQ(an.he, (std::vector<int>{2, 2, 1, 2, 1, 1}));
  EXPECT_EQ(an.required_depth, 2);

  // Per-dat columns of Table 3.
  const mesh::dat_id qo = prob_.qo, vol = prob_.vol;
  EXPECT_EQ(an.he_per_dat[0].at(vol), 2);  // negflag, HE_vol = 2
  EXPECT_EQ(an.he_per_dat[1].at(qo), 2);   // limxp, HE_qo = 2
  EXPECT_EQ(an.he_per_dat[1].at(vol), 1);  // limxp, HE_vol = 1
  EXPECT_EQ(an.he_per_dat[2].at(qo), 1);   // periodicity, HE_qo = 1
  EXPECT_EQ(an.he_per_dat[3].at(qo), 2);   // limxp (2nd), HE_qo = 2
  EXPECT_EQ(an.he_per_dat[5].at(vol), 1);  // negflag (2nd), HE_vol = 1
}

TEST_F(HydraChains, GradlExtensionsMatchTable3) {
  const ChainAnalysis an = analyze("gradl");
  // Paper Table 3: edgecon 2, period 1.
  EXPECT_EQ(an.he_alg3, (std::vector<int>{2, 1}));
  EXPECT_EQ(an.he, (std::vector<int>{2, 1}));
  const mesh::dat_id qp = prob_.qp, ql = prob_.ql;
  EXPECT_EQ(an.he_per_dat[0].at(qp), 2);
  EXPECT_EQ(an.he_per_dat[0].at(ql), 2);
  EXPECT_EQ(an.he_per_dat[1].at(qp), 1);
  EXPECT_EQ(an.he_per_dat[1].at(ql), 1);
}

TEST_F(HydraChains, SingleLayerChainsMatchTable4) {
  for (const char* name : {"vflux", "iflux", "jacob"}) {
    const ChainAnalysis an = analyze(name);
    for (int he : an.he) EXPECT_EQ(he, 1) << name;
    for (int he : an.he_alg3) EXPECT_EQ(he, 1) << name;
    EXPECT_EQ(an.required_depth, 1) << name;
  }
}

TEST_F(HydraChains, VfluxSyncsExactlyTheFiveReadDats) {
  const ChainAnalysis an = analyze("vflux");
  std::set<mesh::dat_id> synced;
  for (const DatSync& s : an.syncs) {
    synced.insert(s.dat);
    EXPECT_EQ(s.depth, 1);
  }
  // Table 4: vflux_edge exchanges qp, xp, ql, qmu, qrg — and nothing
  // else (res is INC'd but never read, so no pre-chain values needed).
  const std::set<mesh::dat_id> expected{prob_.qp, prob_.xp, prob_.ql,
                                        prob_.qmu, prob_.qrg};
  EXPECT_EQ(synced, expected);
}

TEST_F(HydraChains, JacobSyncsJacobians) {
  const ChainAnalysis an = analyze("jacob");
  std::set<mesh::dat_id> synced;
  for (const DatSync& s : an.syncs) synced.insert(s.dat);
  EXPECT_TRUE(synced.count(prob_.jacp));
  EXPECT_TRUE(synced.count(prob_.jaca));
  EXPECT_TRUE(synced.count(prob_.jacb));
  EXPECT_FALSE(synced.count(prob_.pwk));  // written only
  EXPECT_FALSE(synced.count(prob_.bwk));
}

TEST_F(HydraChains, ShrinksStaySmallForSingleLayerChains) {
  const ChainAnalysis vflux = analyze("vflux");
  for (int s : vflux.shrink) EXPECT_LE(s, 3);
  const ChainAnalysis period = analyze("period");
  EXPECT_GE(period.shrink.back(), period.shrink.front());
}

TEST(SyntheticChain, AlternatingExtensions) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 2);
  const ChainSpec spec = apps::mgcfd::synthetic_chain_spec(prob, 4);
  ASSERT_EQ(spec.loops.size(), 8u);
  const ChainAnalysis an = inspect_chain(prob.mg.mesh, spec);
  // Section 4.1.2: "r is set to 2" — update loops need 2 layers (their
  // increments are read by the following edge_flux), edge_flux needs 1.
  for (size_t l = 0; l < an.he.size(); ++l)
    EXPECT_EQ(an.he[l], l % 2 == 0 ? 2 : 1) << "loop " << l;
  EXPECT_EQ(an.required_depth, 2);

  // Syncs follow the paper's Eq-4 packing: a synced dat ships layers up
  // to the max extension of any loop accessing it. sres and spres are
  // both accessed by the depth-2 update loops -> depth 2; sflux is
  // INC-only and never read, so it needs no pre-chain values.
  std::map<mesh::dat_id, int> sync;
  for (const DatSync& s : an.syncs) sync[s.dat] = s.depth;
  EXPECT_EQ(sync.at(prob.sres), 2);
  EXPECT_EQ(sync.at(prob.spres), 2);
  EXPECT_EQ(sync.count(prob.sflux), 0u);
}

TEST(SyntheticChain, CoresShrinkWithChainPosition) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 2);
  const ChainSpec spec = apps::mgcfd::synthetic_chain_spec(prob, 8);
  const ChainAnalysis an = inspect_chain(prob.mg.mesh, spec);
  // The sres flow forces cores to move inward as the chain progresses
  // (this is what makes CA core counts shrink in Table 2).
  EXPECT_LT(an.shrink.front(), an.shrink.back());
  for (size_t l = 1; l < an.shrink.size(); ++l)
    EXPECT_GE(an.shrink[l], an.shrink[l - 1]);
}

TEST(MergeAccesses, CombinesModes) {
  LoopSpec loop;
  loop.name = "l";
  loop.set = 0;
  ArgSpec rd{0, Access::READ, true, 0, 0, false};
  ArgSpec inc{0, Access::INC, true, 0, 0, false};
  loop.args = {rd, inc};
  const auto merged = merge_loop_accesses(loop);
  EXPECT_EQ(merged.at(0).mode, Access::RW);
  EXPECT_TRUE(merged.at(0).indirect);
  EXPECT_FALSE(merged.at(0).self_combine);  // the READ is cross-element
}

TEST(MergeAccesses, SelfCombineOnlyIfAllReadsAre) {
  LoopSpec loop;
  loop.name = "l";
  loop.set = 0;
  ArgSpec rw_sc{0, Access::RW, true, 0, 0, true};
  loop.args = {rw_sc, rw_sc};
  EXPECT_TRUE(merge_loop_accesses(loop).at(0).self_combine);
  ArgSpec rd{0, Access::READ, true, 0, 0, false};
  loop.args = {rw_sc, rd};
  EXPECT_FALSE(merge_loop_accesses(loop).at(0).self_combine);
}

TEST(Inspector, RejectsBadChains) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 1);
  ChainSpec empty;
  empty.name = "empty";
  EXPECT_THROW(inspect_chain(prob.mg.mesh, empty), Error);

  ChainSpec bad_set;
  LoopSpec l;
  l.name = "x";
  l.set = 999;
  bad_set.loops = {l};
  EXPECT_THROW(inspect_chain(prob.mg.mesh, bad_set), Error);

  // Indirect arg whose map does not start at the iteration set.
  ChainSpec bad_map = apps::mgcfd::synthetic_chain_spec(prob, 1);
  bad_map.loops[0].set = *prob.mg.mesh.find_set("nodes_l0");
  EXPECT_THROW(inspect_chain(prob.mg.mesh, bad_map), Error);
}

TEST(Inspector, ReadOnlyChainIsDepthOne) {
  // Two loops only reading a dat: no write closure, everything depth 1.
  apps::hydra::Problem prob = apps::hydra::build_problem(1500);
  ChainSpec spec;
  spec.name = "ro";
  LoopSpec l;
  l.name = "reader";
  l.set = prob.an.edges;
  ArgSpec a;
  a.dat = prob.qp;
  a.mode = Access::READ;
  a.indirect = true;
  a.map = prob.an.e2n;
  ArgSpec w;
  w.dat = prob.ewk;
  w.mode = Access::WRITE;
  l.args = {a, w};
  spec.loops = {l, l};
  const ChainAnalysis an = inspect_chain(prob.an.mesh, spec);
  EXPECT_EQ(an.he, (std::vector<int>{1, 1}));
  ASSERT_EQ(an.syncs.size(), 1u);
  EXPECT_EQ(an.syncs[0].dat, prob.qp);
  EXPECT_EQ(an.syncs[0].depth, 1);
}

}  // namespace
}  // namespace op2ca::core
