// Real-launcher smoke suite: runs ONLY under `mpirun` on a real-MPI
// build (ctest label "mpirun"; every test skips otherwise, so the binary
// is safe to execute standalone).
//
// Each MPI process drives one rank of the MPI-backend World (SPMD mode)
// and, in the same process, an in-process sim-fabric World at the same
// width as the reference. The partition, halo plan and per-rank
// arithmetic are identical by construction, and fetch_dat reassembles
// owned slots disjointly, so results must match BITWISE — any drift
// means the MPI data path (tag encoding, framing, collectives) corrupted
// or reordered something the sim fabric did not.
#include <gtest/gtest.h>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

bool under_real_mpirun() {
  return sim::MpiBackend::compiled_with_mpi() &&
         sim::MpiBackend::launched_under_mpirun();
}

#define SKIP_UNLESS_MPIRUN()                                             \
  do {                                                                   \
    if (!under_real_mpirun())                                            \
      GTEST_SKIP() << "needs a real-MPI build launched under mpirun";    \
  } while (0)

WorldConfig config_with(sim::BackendKind backend, int nranks) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.transport.backend = backend;
  return cfg;
}

void expect_bitwise(const std::vector<double>& a,
                    const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << "first divergence at element " << i;
}

// ---- quad2d, per-loop OP2 execution --------------------------------

struct QuadProblem {
  mesh::Quad2D q;
  mesh::dat_id res = -1, pres = -1, flux = -1, cw = -1;
};

QuadProblem make_quad_problem(gidx_t nx, gidx_t ny) {
  QuadProblem p{mesh::make_quad2d(nx, ny), -1, -1, -1, -1};
  mesh::MeshDef& m = p.q.mesh;
  const auto nn = static_cast<std::size_t>(m.set(p.q.nodes).size);
  const auto nc = static_cast<std::size_t>(m.set(p.q.cells).size);
  std::vector<double> pres(nn * 2), cw(nc * 4);
  for (std::size_t i = 0; i < pres.size(); ++i)
    pres[i] = 0.5 + 0.001 * static_cast<double>(i % 97);
  for (std::size_t i = 0; i < cw.size(); ++i)
    cw[i] = -0.25 + 0.002 * static_cast<double>(i % 53);
  p.res = m.add_dat("res", p.q.nodes, 2);
  p.pres = m.add_dat("pres", p.q.nodes, 2, std::move(pres));
  p.flux = m.add_dat("flux", p.q.nodes, 2);
  p.cw = m.add_dat("cw", p.q.cells, 4, std::move(cw));
  return p;
}

void fig3_kernel_update(double* r1, double* r2, const double* p1,
                        const double* p2) {
  r1[0] += p1[0] - p1[1];
  r1[1] += p2[0] - p2[1];
  r2[0] += p2[1] - p2[0];
  r2[1] += p1[1] - p1[0];
}

void fig3_kernel_flux(double* f1, double* f2, const double* r1,
                      const double* r2, const double* c1,
                      const double* c2) {
  f1[0] += r1[0] * c1[0] - r1[1] * c1[1];
  f1[1] += r2[1] * c1[2] - r2[0] * c1[3];
  f2[0] += r2[1] * c2[2] - r1[1] * c2[3];
  f2[1] += r1[0] * c2[0] - r1[1] * c2[1];
}

void run_fig3_loops(Runtime& rt, int timesteps) {
  const Set edges = rt.set("edges");
  const Dat res = rt.dat("res"), pres = rt.dat("pres"),
            flux = rt.dat("flux"), cw = rt.dat("cw");
  const Map e2n = rt.map("e2n"), e2c = rt.map("e2c");
  for (int t = 0; t < timesteps; ++t) {
    rt.par_loop("update", edges, fig3_kernel_update,
                arg_dat(res, 0, e2n, Access::INC),
                arg_dat(res, 1, e2n, Access::INC),
                arg_dat(pres, 0, e2n, Access::READ),
                arg_dat(pres, 1, e2n, Access::READ));
    rt.par_loop("edge_flux", edges, fig3_kernel_flux,
                arg_dat(flux, 0, e2n, Access::INC),
                arg_dat(flux, 1, e2n, Access::INC),
                arg_dat(res, 0, e2n, Access::READ),
                arg_dat(res, 1, e2n, Access::READ),
                arg_dat(cw, 0, e2c, Access::READ),
                arg_dat(cw, 1, e2c, Access::READ));
  }
}

struct QuadResult {
  std::vector<double> res, flux;
};

QuadResult run_quad(sim::BackendKind backend, int nranks) {
  QuadProblem p = make_quad_problem(14, 11);
  const mesh::dat_id res = p.res, flux = p.flux;
  World w(std::move(p.q.mesh), config_with(backend, nranks));
  w.run([](Runtime& rt) { run_fig3_loops(rt, 3); });
  return QuadResult{w.fetch_dat(res), w.fetch_dat(flux)};
}

TEST(Mpirun, Quad2dOp2MatchesSimBitwise) {
  SKIP_UNLESS_MPIRUN();
  const int nranks = sim::MpiBackend::mpi_world_size();
  const QuadResult mpi = run_quad(sim::BackendKind::Mpi, nranks);
  const QuadResult ref = run_quad(sim::BackendKind::Sim, nranks);
  expect_bitwise(ref.res, mpi.res);
  expect_bitwise(ref.flux, mpi.flux);
}

// ---- hex multigrid mesh, synthetic chain (OP2 and CA paths) ---------

struct SynthResult {
  std::vector<double> sres, sflux;
};

SynthResult run_synth(sim::BackendKind backend, int nranks, bool ca) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1500, 1);
  WorldConfig cfg = config_with(backend, nranks);
  if (ca) cfg.chains.enable("synthetic");
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t)
      apps::mgcfd::run_synthetic_chain(rt, h, 4);
  });
  return SynthResult{w.fetch_dat(sres), w.fetch_dat(sflux)};
}

TEST(Mpirun, HexChainOp2MatchesSimBitwise) {
  SKIP_UNLESS_MPIRUN();
  const int nranks = sim::MpiBackend::mpi_world_size();
  const SynthResult mpi = run_synth(sim::BackendKind::Mpi, nranks, false);
  const SynthResult ref = run_synth(sim::BackendKind::Sim, nranks, false);
  expect_bitwise(ref.sres, mpi.sres);
  expect_bitwise(ref.sflux, mpi.sflux);
}

TEST(Mpirun, HexChainCaMatchesSimBitwise) {
  SKIP_UNLESS_MPIRUN();
  const int nranks = sim::MpiBackend::mpi_world_size();
  const SynthResult mpi = run_synth(sim::BackendKind::Mpi, nranks, true);
  const SynthResult ref = run_synth(sim::BackendKind::Sim, nranks, true);
  expect_bitwise(ref.sres, mpi.sres);
  expect_bitwise(ref.sflux, mpi.sflux);
}

// ---- cross-process metrics reduction --------------------------------

TEST(Mpirun, MetricsMergeAcrossProcesses) {
  SKIP_UNLESS_MPIRUN();
  const int nranks = sim::MpiBackend::mpi_world_size();
  auto run_metrics = [&](sim::BackendKind backend) {
    QuadProblem p = make_quad_problem(12, 12);
    World w(std::move(p.q.mesh), config_with(backend, nranks));
    w.run([](Runtime& rt) { run_fig3_loops(rt, 2); });
    return w.loop_metrics();
  };
  const auto mpi = run_metrics(sim::BackendKind::Mpi);
  const auto ref = run_metrics(sim::BackendKind::Sim);
  ASSERT_EQ(ref.size(), mpi.size());
  for (const auto& [name, m] : ref) {
    ASSERT_TRUE(mpi.count(name)) << name;
    const LoopMetrics& o = mpi.at(name);
    // The merged totals must cover every rank of every process, exactly
    // as the threaded sim World reports them.
    EXPECT_EQ(m.calls, o.calls) << name;
    EXPECT_EQ(m.core_iters, o.core_iters) << name;
    EXPECT_EQ(m.halo_iters, o.halo_iters) << name;
    EXPECT_EQ(m.msgs, o.msgs) << name;
    EXPECT_EQ(m.bytes, o.bytes) << name;
  }
}

// ---- launch-shape validation ----------------------------------------

TEST(Mpirun, RankCountMismatchErrorsLoudly) {
  SKIP_UNLESS_MPIRUN();
  const int nranks = sim::MpiBackend::mpi_world_size();
  QuadProblem p = make_quad_problem(8, 8);
  EXPECT_THROW(
      World(std::move(p.q.mesh),
            config_with(sim::BackendKind::Mpi, nranks + 1)),
      Error);
}

}  // namespace
}  // namespace op2ca::core
