// Executor-equivalence suite: the batched region dispatch (one type-erased
// call per contiguous range / gathered list) must be BIT-IDENTICAL to the
// per-element dispatch order it replaced. WorldConfig::serial_dispatch
// re-creates the per-element path by invoking every region one element at
// a time; since both paths visit elements in the same order, every double
// must match exactly — EXPECT_EQ on the raw vectors, no tolerance.
//
// Covered modes: per-loop OP2, explicit CA chains, and lazy auto-chaining,
// each multi-rank, on the MG-CFD synthetic chain and a Hydra chain.
#include <gtest/gtest.h>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/core/runtime.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

enum class Mode { kOp2, kCa, kLazy };

WorldConfig equiv_config(int nranks, Mode mode, bool serial_dispatch,
                         mesh::ReorderKind reorder = mesh::ReorderKind::None,
                         int threads = 1,
                         mesh::LayoutConfig layout = {},
                         bool taskgraph = false,
                         gpu::DeviceConfig device = {}) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.serial_dispatch = serial_dispatch;
  cfg.reorder.kind = reorder;
  cfg.threads_per_rank = threads;
  cfg.layout = layout;
  cfg.taskgraph = taskgraph;
  cfg.taskgraph_block = 32;
  cfg.device = device;
  if (mode == Mode::kCa) cfg.chains.enable("synthetic");
  if (mode == Mode::kLazy) cfg.lazy = true;
  return cfg;
}

mesh::LayoutConfig layout_cfg(mesh::LayoutKind kind, int block = 8) {
  mesh::LayoutConfig lc;
  lc.kind = kind;
  lc.aosoa_block = block;
  return lc;
}

gpu::DeviceConfig device_cfg(
    gpu::DeviceConfig::Mode mode = gpu::DeviceConfig::Mode::Pipelined,
    bool hierarchical = true, lidx_t block_elems = 32) {
  gpu::DeviceConfig dc;
  dc.enabled = true;
  dc.mode = mode;
  dc.hierarchical = hierarchical;
  dc.block_elems = block_elems;
  return dc;
}

/// The synthetic loop pair without chain brackets, so lazy mode can form
/// its own chains (explicit brackets would bypass the lazy queue).
void plain_loops(Runtime& rt, const apps::mgcfd::Handles& h, int pairs) {
  namespace k = apps::mgcfd::kernels;
  rt.par_loop("perturb", h.nodes0, k::synth_perturb,
              arg_dat(rt.dat("spres"), Access::RW));
  for (int c = 0; c < pairs; ++c) {
    rt.par_loop("u", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.par_loop("f", h.edges0, k::synth_edge_flux,
                arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                arg_dat(h.sres, 0, h.e2n0, Access::READ),
                arg_dat(h.sres, 1, h.e2n0, Access::READ),
                arg_dat(h.sewt, Access::READ));
  }
}

struct SynthResult {
  std::vector<double> sres, sflux, spres;
};

SynthResult run_synth(int nranks, Mode mode, bool serial_dispatch,
                      mesh::ReorderKind reorder = mesh::ReorderKind::None,
                      int threads = 1,
                      mesh::LayoutConfig layout = {},
                      bool taskgraph = false,
                      gpu::DeviceConfig device = {}) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  World w(std::move(prob.mg.mesh),
          equiv_config(nranks, mode, serial_dispatch, reorder, threads,
                       layout, taskgraph, device));
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t) {
      if (mode == Mode::kLazy) {
        plain_loops(rt, h, 3);
        rt.barrier();
      } else {
        apps::mgcfd::run_synthetic_chain(rt, h, 3);
      }
    }
  });
  return SynthResult{w.fetch_dat(sres), w.fetch_dat(sflux),
                     w.fetch_dat(spres)};
}

/// run_synth under a non-default transport layer (striping, persistent
/// channels, alternate backend). The transport moves the same bytes to
/// the same buffers — in a different number of wire messages — so every
/// configuration must be BIT-IDENTICAL to the legacy single-isend path.
SynthResult run_synth_transport(int nranks, Mode mode,
                                const sim::TransportConfig& tc) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  WorldConfig cfg = equiv_config(nranks, mode, false);
  cfg.transport = tc;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t) {
      if (mode == Mode::kLazy) {
        plain_loops(rt, h, 3);
        rt.barrier();
      } else {
        apps::mgcfd::run_synthetic_chain(rt, h, 3);
      }
    }
  });
  return SynthResult{w.fetch_dat(sres), w.fetch_dat(sflux),
                     w.fetch_dat(spres)};
}

/// Striping config aggressive enough that every halo message stripes.
sim::TransportConfig striped_tc(bool persistent,
                                sim::BackendKind backend =
                                    sim::BackendKind::Sim) {
  sim::TransportConfig tc;
  tc.backend = backend;
  tc.rails = 4;
  tc.stripe_min_bytes = 64;
  tc.persistent = persistent;
  return tc;
}

void expect_bitwise(const SynthResult& a, const SynthResult& b) {
  EXPECT_EQ(a.sres, b.sres);
  EXPECT_EQ(a.sflux, b.sflux);
  EXPECT_EQ(a.spres, b.spres);
}

TEST(Equivalence, BatchedMatchesPerElementOp2) {
  expect_bitwise(run_synth(5, Mode::kOp2, false),
                 run_synth(5, Mode::kOp2, true));
}

TEST(Equivalence, BatchedMatchesPerElementCa) {
  expect_bitwise(run_synth(6, Mode::kCa, false),
                 run_synth(6, Mode::kCa, true));
}

TEST(Equivalence, BatchedMatchesPerElementLazy) {
  expect_bitwise(run_synth(5, Mode::kLazy, false),
                 run_synth(5, Mode::kLazy, true));
}

TEST(Equivalence, ModesAgreeToTolerance) {
  // Cross-mode results differ only by FP summation order; sanity-check
  // the three batched modes stay within the usual tolerance of each
  // other (bitwise identity across modes is NOT expected).
  const SynthResult op2 = run_synth(5, Mode::kOp2, false);
  const SynthResult ca = run_synth(5, Mode::kCa, false);
  const SynthResult lazy = run_synth(5, Mode::kLazy, false);
  testutil::expect_allclose(op2.sres, ca.sres);
  testutil::expect_allclose(op2.sres, lazy.sres);
  testutil::expect_allclose(op2.sflux, ca.sflux);
  testutil::expect_allclose(op2.sflux, lazy.sflux);
}

// -- Transport layer (WorldConfig::transport). --------------------------
//
// Striping, persistent channels and the backend choice only change HOW
// bytes cross the fabric (how many wire messages, which tags), never
// which bytes land where. Every row below is therefore held to bitwise
// identity against the legacy default-transport run of the same mode.

TEST(Equivalence, TransportStripingIsBitwise) {
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    expect_bitwise(base, run_synth_transport(5, mode, striped_tc(false)));
  }
}

TEST(Equivalence, TransportPersistentChannelsAreBitwise) {
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    // Persistent channels alone (1 rail)...
    sim::TransportConfig tc;
    tc.persistent = true;
    expect_bitwise(base, run_synth_transport(5, mode, tc));
    // ...and combined with striping.
    expect_bitwise(base, run_synth_transport(5, mode, striped_tc(true)));
  }
}

TEST(Equivalence, TransportMultiRailBelowThresholdIsLegacyPath) {
  // rails > 1 with an unreachable threshold must leave every message on
  // the single-isend path: nothing stripes, nothing changes.
  sim::TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = std::size_t{1} << 30;
  expect_bitwise(run_synth(5, Mode::kCa, false),
                 run_synth_transport(5, Mode::kCa, tc));
}

TEST(Equivalence, TransportMpiStubMatchesSim) {
  if (sim::MpiBackend::compiled_with_mpi())
    GTEST_SKIP() << "real MPI runs one process per rank; the multi-rank "
                    "thread harness only drives the stub";
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    // Stub backend, striping off...
    sim::TransportConfig tc;
    tc.backend = sim::BackendKind::Mpi;
    expect_bitwise(base, run_synth_transport(5, mode, tc));
    // ...and on, with persistent channels.
    expect_bitwise(
        base,
        run_synth_transport(5, mode,
                            striped_tc(true, sim::BackendKind::Mpi)));
  }
}

// -- Locality layer (WorldConfig::reorder). -----------------------------
//
// With reorder OFF every path above already proves bitwise identity to
// the legacy numbering. With it ON, per-element arithmetic is unchanged
// (direct loops exact — spres is written by the direct perturb loop) but
// element order inside each layer is permuted, so indirect-INC sums
// reassociate: cross-configuration comparisons use the usual tolerance.

TEST(Equivalence, ReorderedMatchesBaselineToTolerance) {
  const SynthResult base = run_synth(5, Mode::kOp2, false);
  for (const auto kind :
       {mesh::ReorderKind::RCM, mesh::ReorderKind::SFC}) {
    const SynthResult re = run_synth(5, Mode::kOp2, false, kind);
    EXPECT_EQ(base.spres, re.spres);  // direct loop: exact
    testutil::expect_allclose(base.sres, re.sres);
    testutil::expect_allclose(base.sflux, re.sflux);
  }
}

TEST(Equivalence, ReorderedBatchedMatchesPerElement) {
  // Same (permuted) iteration order with and without region batching:
  // bitwise, exactly like the un-reordered equivalence above.
  expect_bitwise(
      run_synth(5, Mode::kOp2, false, mesh::ReorderKind::RCM),
      run_synth(5, Mode::kOp2, true, mesh::ReorderKind::RCM));
}

TEST(Equivalence, ReorderedModesAgreeSingleThread) {
  const SynthResult op2 = run_synth(5, Mode::kOp2, false,
                                    mesh::ReorderKind::RCM);
  const SynthResult ca = run_synth(5, Mode::kCa, false,
                                   mesh::ReorderKind::RCM);
  const SynthResult lazy = run_synth(5, Mode::kLazy, false,
                                     mesh::ReorderKind::RCM);
  testutil::expect_allclose(op2.sres, ca.sres);
  testutil::expect_allclose(op2.sres, lazy.sres);
  testutil::expect_allclose(op2.sflux, ca.sflux);
  testutil::expect_allclose(op2.sflux, lazy.sflux);
}

TEST(Equivalence, ReorderedModesAgreeFourThreads) {
  const SynthResult base = run_synth(4, Mode::kOp2, false);
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult re =
        run_synth(4, mode, false, mesh::ReorderKind::RCM, 4);
    EXPECT_EQ(base.spres, re.spres);  // direct loop: exact
    testutil::expect_allclose(base.sres, re.sres);
    testutil::expect_allclose(base.sflux, re.sflux);
  }
}

TEST(Equivalence, ReorderedWidthIndependentSweeps) {
  // Blocked colour sweeps are a pure function of the colouring and the
  // block structure — chunk boundaries move with pool width, but blocks
  // never straddle threads, so any width > 1 is bitwise-identical.
  expect_bitwise(
      run_synth(4, Mode::kOp2, false, mesh::ReorderKind::RCM, 2),
      run_synth(4, Mode::kOp2, false, mesh::ReorderKind::RCM, 4));
  expect_bitwise(
      run_synth(4, Mode::kCa, false, mesh::ReorderKind::SFC, 2),
      run_synth(4, Mode::kCa, false, mesh::ReorderKind::SFC, 4));
}

// -- SIMD data plane (WorldConfig::layout). -----------------------------
//
// Changing the storage layout moves no iteration and reassociates no
// sum: the same per-element arithmetic runs in the same order over the
// same logical cells, only their addresses change, and the transposing
// halo wire carries the same values. Direct dats are therefore compared
// bitwise against the AoS baseline at the same configuration; indirectly
// accumulated dats are held to the 1e-9 tolerance (expected to be exact
// too, but the contract we commit to is the tolerance).

TEST(Equivalence, LayoutMatchesBaselineAllModes) {
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    for (const auto kind :
         {mesh::LayoutKind::SoA, mesh::LayoutKind::AoSoA}) {
      const SynthResult re = run_synth(5, mode, false,
                                       mesh::ReorderKind::None, 1,
                                       layout_cfg(kind));
      EXPECT_EQ(base.spres, re.spres);  // direct loop: exact
      testutil::expect_allclose(base.sres, re.sres);
      testutil::expect_allclose(base.sflux, re.sflux);
    }
  }
}

TEST(Equivalence, LayoutFourThreadsWithReorder) {
  // Layout composes with the locality layer and threaded sweeps: compare
  // each layout against AoS at the SAME (reorder, width) configuration,
  // where iteration order is identical.
  for (const auto kind :
       {mesh::LayoutKind::SoA, mesh::LayoutKind::AoSoA}) {
    for (const auto reorder :
         {mesh::ReorderKind::None, mesh::ReorderKind::RCM}) {
      const SynthResult base =
          run_synth(4, Mode::kOp2, false, reorder, 4);
      const SynthResult re = run_synth(4, Mode::kOp2, false, reorder, 4,
                                       layout_cfg(kind));
      EXPECT_EQ(base.spres, re.spres);
      testutil::expect_allclose(base.sres, re.sres);
      testutil::expect_allclose(base.sflux, re.sflux);
    }
  }
}

TEST(Equivalence, LayoutBatchedMatchesPerElement) {
  // Region batching stays bitwise under a non-AoS layout, like it is
  // under AoS.
  expect_bitwise(
      run_synth(5, Mode::kOp2, false, mesh::ReorderKind::None, 1,
                layout_cfg(mesh::LayoutKind::SoA)),
      run_synth(5, Mode::kOp2, true, mesh::ReorderKind::None, 1,
                layout_cfg(mesh::LayoutKind::SoA)));
  expect_bitwise(
      run_synth(5, Mode::kCa, false, mesh::ReorderKind::None, 1,
                layout_cfg(mesh::LayoutKind::AoSoA, 4)),
      run_synth(5, Mode::kCa, true, mesh::ReorderKind::None, 1,
                layout_cfg(mesh::LayoutKind::AoSoA, 4)));
}

TEST(Equivalence, LayoutAosoaBlockInvariance) {
  // The block size changes addressing only — every block width must
  // produce the same result bitwise (tail blocks included: rank-local
  // element counts here are not multiples of any block).
  const SynthResult b8 = run_synth(5, Mode::kOp2, false,
                                   mesh::ReorderKind::None, 1,
                                   layout_cfg(mesh::LayoutKind::AoSoA, 8));
  for (const int block : {2, 16}) {
    const SynthResult other =
        run_synth(5, Mode::kOp2, false, mesh::ReorderKind::None, 1,
                  layout_cfg(mesh::LayoutKind::AoSoA, block));
    expect_bitwise(b8, other);
  }
}

// -- Task-graph executor (WorldConfig::taskgraph). ----------------------
//
// The dependency-driven block sweep replaces colour barriers with a DAG
// over blocks; per written cell the accumulation order is still the
// static colour order. Direct loops are untouched (bitwise vs serial);
// indirect-INC loops reassociate against the per-element baseline
// (tolerance); and within the graph path any pool width is bitwise —
// the DAG, not the schedule, orders every conflicting pair.

TEST(Equivalence, TaskgraphMatchesSerialAllModes) {
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    const SynthResult tg =
        run_synth(5, mode, false, mesh::ReorderKind::None, 4, {}, true);
    EXPECT_EQ(base.spres, tg.spres);  // direct loop: exact
    testutil::expect_allclose(base.sres, tg.sres);
    testutil::expect_allclose(base.sflux, tg.sflux);
  }
}

TEST(Equivalence, TaskgraphWidthIndependentAllModes) {
  // Widths 1/2/4 over the graph path are bitwise: width 1 is the serial
  // FIFO drain of the same DAG, not the legacy colour sweep.
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult w1 =
        run_synth(4, mode, false, mesh::ReorderKind::None, 1, {}, true);
    for (const int width : {2, 4})
      expect_bitwise(w1, run_synth(4, mode, false,
                                   mesh::ReorderKind::None, width, {},
                                   true));
  }
}

TEST(Equivalence, TaskgraphComposesWithReorderAndLayout) {
  // The graph path stacks on the locality layer and the SIMD data plane:
  // compare against the colour-barrier sweep at the SAME (reorder,
  // layout, width) configuration. Different blocking (taskgraph_block vs
  // reorder.colour_block) reassociates the INC sums — tolerance; the
  // direct loop stays exact.
  const SynthResult barrier =
      run_synth(4, Mode::kOp2, false, mesh::ReorderKind::RCM, 4,
                layout_cfg(mesh::LayoutKind::SoA));
  const SynthResult graph =
      run_synth(4, Mode::kOp2, false, mesh::ReorderKind::RCM, 4,
                layout_cfg(mesh::LayoutKind::SoA), true);
  EXPECT_EQ(barrier.spres, graph.spres);
  testutil::expect_allclose(barrier.sres, graph.sres);
  testutil::expect_allclose(barrier.sflux, graph.sflux);
}

// -- Device executor (WorldConfig::device). -----------------------------
//
// Device-resident execution changes WHERE arrays live (behind mirrored
// transfers that move the same values) and, with hierarchical colouring,
// the ORDER indirect-INC sums accumulate in (block/inner-colour order
// instead of the flat sweep). Direct dats are therefore bitwise against
// the device-off baseline; indirectly accumulated dats are held to the
// 1e-9 tolerance. Within the device path, pool width, transfer mode
// (staged vs pipelined) and storage layout change no iteration order, so
// those comparisons are bitwise.

TEST(Equivalence, DeviceMatchesBaselineAllModes) {
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult base = run_synth(5, mode, false);
    const SynthResult dev =
        run_synth(5, mode, false, mesh::ReorderKind::None, 1, {}, false,
                  device_cfg());
    EXPECT_EQ(base.spres, dev.spres);  // direct loop: exact
    testutil::expect_allclose(base.sres, dev.sres);
    testutil::expect_allclose(base.sflux, dev.sflux);
  }
}

TEST(Equivalence, DeviceWidthIndependent) {
  // The hierarchical schedule is a pure function of (set, maps, block
  // size): blocks of one outer colour never conflict and each block runs
  // serially, so any pool width is bitwise-identical.
  for (const Mode mode : {Mode::kOp2, Mode::kCa, Mode::kLazy}) {
    const SynthResult w1 =
        run_synth(4, mode, false, mesh::ReorderKind::None, 1, {}, false,
                  device_cfg());
    for (const int width : {2, 4})
      expect_bitwise(w1,
                     run_synth(4, mode, false, mesh::ReorderKind::None,
                               width, {}, false, device_cfg()));
  }
}

TEST(Equivalence, DeviceModesAreBitwise) {
  // FullyStaged vs Pipelined differ only in the modelled clock and in
  // WHEN value-preserving transfers happen — never in results.
  for (const Mode mode : {Mode::kOp2, Mode::kCa}) {
    expect_bitwise(
        run_synth(5, mode, false, mesh::ReorderKind::None, 1, {}, false,
                  device_cfg(gpu::DeviceConfig::Mode::Pipelined)),
        run_synth(5, mode, false, mesh::ReorderKind::None, 1, {}, false,
                  device_cfg(gpu::DeviceConfig::Mode::FullyStaged)));
  }
}

TEST(Equivalence, DeviceLayoutsMatch) {
  // The device path composes with the SIMD data plane: shared-memory
  // staging and transfers are layout-aware, so each layout matches the
  // device-on AoS run (same iteration order → direct bitwise, indirect
  // within tolerance of the same sums).
  for (const Mode mode : {Mode::kOp2, Mode::kCa}) {
    const SynthResult base =
        run_synth(5, mode, false, mesh::ReorderKind::None, 1, {}, false,
                  device_cfg());
    for (const auto kind :
         {mesh::LayoutKind::SoA, mesh::LayoutKind::AoSoA}) {
      const SynthResult re =
          run_synth(5, mode, false, mesh::ReorderKind::None, 1,
                    layout_cfg(kind), false, device_cfg());
      EXPECT_EQ(base.spres, re.spres);
      testutil::expect_allclose(base.sres, re.sres);
      testutil::expect_allclose(base.sflux, re.sflux);
    }
  }
}

TEST(Equivalence, DeviceFlatColouringMatchesHierarchical) {
  // Flat (hierarchical = false) and two-level schedules order the same
  // conflict-free work differently: direct bitwise, indirect tolerance.
  const SynthResult flat =
      run_synth(5, Mode::kOp2, false, mesh::ReorderKind::None, 1, {},
                false, device_cfg(gpu::DeviceConfig::Mode::Pipelined,
                                  /*hierarchical=*/false));
  const SynthResult hier =
      run_synth(5, Mode::kOp2, false, mesh::ReorderKind::None, 1, {},
                false, device_cfg());
  EXPECT_EQ(flat.spres, hier.spres);
  testutil::expect_allclose(flat.sres, hier.sres);
  testutil::expect_allclose(flat.sflux, hier.sflux);
}

TEST(Equivalence, DeviceSerialDispatchBitwiseLegacy) {
  // serial_dispatch outranks the device sweep in dispatch precedence:
  // per-element order, identical to the device-off serial path — the
  // transfers in between are value-preserving, so bitwise.
  expect_bitwise(run_synth(5, Mode::kOp2, true),
                 run_synth(5, Mode::kOp2, true, mesh::ReorderKind::None,
                           1, {}, false, device_cfg()));
}

// -- Temporal tiling (WorldConfig::tile). -------------------------------
//
// Fusing k back-to-back chain invocations into one exchange epoch moves
// the core/boundary split (deeper shrink levels) and regenerates halo
// values by redundant computation instead of exchange — per owned
// element the arithmetic is unchanged, so direct dats stay bitwise
// against the untiled baseline and indirect-INC dats reassociate within
// the usual 1e-9. tile=1 must be the legacy executor exactly.

/// GENUINELY back-to-back chain invocations: run_synthetic_chain puts
/// the direct perturb loop before each bracket, which is intervening
/// work that (correctly) flushes every tile window at size 1. Here
/// perturb runs once up front and the bracketed pairs repeat, so full
/// windows actually form and fuse.
void tiled_program(Runtime& rt, const apps::mgcfd::Handles& h,
                   int timesteps) {
  namespace k = apps::mgcfd::kernels;
  rt.par_loop("perturb", h.nodes0, k::synth_perturb,
              arg_dat(rt.dat("spres"), Access::RW));
  for (int t = 0; t < timesteps; ++t) {
    rt.chain_begin("synthetic");
    for (int c = 0; c < 3; ++c) {
      rt.par_loop("u", h.edges0, k::synth_update,
                  arg_dat(h.sres, 0, h.e2n0, Access::INC),
                  arg_dat(h.sres, 1, h.e2n0, Access::INC),
                  arg_dat(h.spres, 0, h.e2n0, Access::READ),
                  arg_dat(h.spres, 1, h.e2n0, Access::READ));
      rt.par_loop("f", h.edges0, k::synth_edge_flux,
                  arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                  arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                  arg_dat(h.sres, 0, h.e2n0, Access::READ),
                  arg_dat(h.sres, 1, h.e2n0, Access::READ),
                  arg_dat(h.sewt, Access::READ));
    }
    rt.chain_end();
  }
}

SynthResult run_synth_tiled(int nranks, int tile, Mode mode,
                            int threads = 1,
                            mesh::LayoutConfig layout = {},
                            bool taskgraph = false) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  WorldConfig cfg = equiv_config(nranks, mode, false,
                                 mesh::ReorderKind::None, threads, layout,
                                 taskgraph);
  cfg.tile = tile;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    tiled_program(rt, h, 4);
  });
  return SynthResult{w.fetch_dat(sres), w.fetch_dat(sflux),
                     w.fetch_dat(spres)};
}

TEST(Equivalence, TiledMatchesOp2Baseline) {
  const SynthResult base = run_synth_tiled(5, 1, Mode::kOp2);
  for (const int tile : {1, 2, 4}) {
    const SynthResult ca = run_synth_tiled(5, tile, Mode::kCa);
    EXPECT_EQ(base.spres, ca.spres);  // direct loop: exact
    testutil::expect_allclose(base.sres, ca.sres);
    testutil::expect_allclose(base.sflux, ca.sflux);
  }
}

TEST(Equivalence, TileOneIsBitwiseLegacy) {
  // An explicit tile=1 run must take the identical code path as a run
  // that never touches WorldConfig::tile: bitwise, not just tolerant.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  World w(std::move(prob.mg.mesh), equiv_config(5, Mode::kCa, false));
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    tiled_program(rt, h, 4);
  });
  const SynthResult legacy{w.fetch_dat(sres), w.fetch_dat(sflux),
                           w.fetch_dat(spres)};
  expect_bitwise(legacy, run_synth_tiled(5, 1, Mode::kCa));
}

TEST(Equivalence, TiledLayoutsAndThreads) {
  // Tiling composes with the SIMD data plane and threaded sweeps: at
  // each (layout, width) configuration the tiled run matches the OP2
  // baseline of the same configuration.
  for (const auto kind :
       {mesh::LayoutKind::AoS, mesh::LayoutKind::SoA,
        mesh::LayoutKind::AoSoA}) {
    for (const int threads : {1, 4}) {
      const SynthResult base =
          run_synth_tiled(4, 1, Mode::kOp2, threads, layout_cfg(kind));
      for (const int tile : {2, 4}) {
        const SynthResult ca =
            run_synth_tiled(4, tile, Mode::kCa, threads,
                            layout_cfg(kind));
        EXPECT_EQ(base.spres, ca.spres);
        testutil::expect_allclose(base.sres, ca.sres);
        testutil::expect_allclose(base.sflux, ca.sflux);
      }
    }
  }
}

TEST(Equivalence, TiledTaskgraph) {
  // ...and with the dependency-driven block sweep on top.
  for (const int threads : {1, 4}) {
    const SynthResult base =
        run_synth_tiled(4, 1, Mode::kOp2, threads, {}, true);
    for (const int tile : {2, 4}) {
      const SynthResult ca =
          run_synth_tiled(4, tile, Mode::kCa, threads, {}, true);
      EXPECT_EQ(base.spres, ca.spres);
      testutil::expect_allclose(base.sres, ca.sres);
      testutil::expect_allclose(base.sflux, ca.sflux);
    }
  }
}

// -- Hydra chain (vflux preceded by its gradl producer). ----------------

struct HydraResult {
  std::vector<double> ql, res, visres;
};

HydraResult run_hydra_chain(int nranks, bool enable_ca,
                            bool serial_dispatch) {
  namespace hy = apps::hydra;
  hy::Problem prob = hy::build_problem(1500);
  const hy::Problem ids = prob;
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::RIB;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.serial_dispatch = serial_dispatch;
  if (enable_ca) {
    cfg.chains.enable("gradl");
    cfg.chains.enable("vflux");
  }
  World w(std::move(prob.an.mesh), cfg);
  w.run([&](Runtime& rt) {
    const hy::Handles h = hy::resolve_handles(rt, ids);
    hy::run_setup(rt, h);
    hy::run_chain_gradl(rt, h);
    hy::run_chain_vflux(rt, h);
  });
  return HydraResult{w.fetch_dat(ids.ql), w.fetch_dat(ids.res),
                     w.fetch_dat(ids.visres)};
}

TEST(Equivalence, HydraVfluxBatchedMatchesPerElementCa) {
  const HydraResult batched = run_hydra_chain(5, true, false);
  const HydraResult serial = run_hydra_chain(5, true, true);
  EXPECT_EQ(batched.ql, serial.ql);
  EXPECT_EQ(batched.res, serial.res);
  EXPECT_EQ(batched.visres, serial.visres);
}

TEST(Equivalence, HydraVfluxBatchedMatchesPerElementOp2) {
  const HydraResult batched = run_hydra_chain(5, false, false);
  const HydraResult serial = run_hydra_chain(5, false, true);
  EXPECT_EQ(batched.ql, serial.ql);
  EXPECT_EQ(batched.res, serial.res);
  EXPECT_EQ(batched.visres, serial.visres);
}

}  // namespace
}  // namespace op2ca::core
