// Shared helpers for runtime-level tests.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace op2ca::testutil {

/// Element-wise near-equality with mixed absolute/relative tolerance
/// (iteration reorder across partitions perturbs increment sums at the
/// machine-precision level).
inline void expect_allclose(const std::vector<double>& a,
                            const std::vector<double>& b,
                            double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  double worst = 0.0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    const double err = std::abs(a[i] - b[i]) / scale;
    if (err > worst) {
      worst = err;
      worst_i = i;
    }
  }
  EXPECT_LE(worst, tol) << "worst mismatch at index " << worst_i << ": "
                        << a[worst_i] << " vs " << b[worst_i];
}

}  // namespace op2ca::testutil
