// Halo-plan construction invariants: layouts, layer nesting,
// import/export symmetry, local map completeness, dat gather/scatter and
// grouped message packing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "op2ca/halo/grouped.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/mesh/annulus.hpp"
#include "op2ca/mesh/multigrid.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/partition/partition.hpp"

namespace op2ca::halo {
namespace {

struct Built {
  mesh::Quad2D q;
  partition::Partition part;
  HaloPlan plan;
};

Built build_quad(gidx_t nx, gidx_t ny, int nranks, int depth) {
  Built b{mesh::make_quad2d(nx, ny), {}, {}};
  b.part = partition::partition_mesh(b.q.mesh, nranks,
                                     partition::Kind::RIB, b.q.nodes);
  HaloPlanOptions opts;
  opts.depth = depth;
  b.plan = build_halo_plan(b.q.mesh, b.part, opts);
  return b;
}

TEST(HaloPlan, SingleRankHasNoHalos) {
  Built b = build_quad(6, 6, 1, 2);
  for (mesh::set_id s = 0; s < b.q.mesh.num_sets(); ++s) {
    const SetLayout& lay = b.plan.layout(0, s);
    EXPECT_EQ(lay.num_owned, b.q.mesh.set(s).size);
    EXPECT_EQ(lay.total, lay.num_owned);
    EXPECT_EQ(lay.core_count(1), lay.num_owned);  // everything is core
    for (int din : lay.owned_din) EXPECT_EQ(din, SetLayout::kDinCap);
  }
  EXPECT_TRUE(b.plan.ranks[0].neighbors.empty());
}

TEST(HaloPlan, LayoutInvariants) {
  Built b = build_quad(12, 12, 4, 2);
  for (rank_t r = 0; r < 4; ++r) {
    for (mesh::set_id s = 0; s < b.q.mesh.num_sets(); ++s) {
      const SetLayout& lay = b.plan.layout(r, s);
      // Segment bounds are monotone and consistent.
      EXPECT_EQ(lay.exec_end[0], lay.num_owned);
      for (size_t k = 1; k < lay.exec_end.size(); ++k)
        EXPECT_GE(lay.exec_end[k], lay.exec_end[k - 1]);
      EXPECT_EQ(lay.nonexec_end[0], lay.exec_end.back());
      for (size_t k = 1; k < lay.nonexec_end.size(); ++k)
        EXPECT_GE(lay.nonexec_end[k], lay.nonexec_end[k - 1]);
      EXPECT_EQ(lay.nonexec_end.back(), lay.total);
      EXPECT_EQ(static_cast<lidx_t>(lay.local_to_global.size()), lay.total);

      // Local ids map to distinct globals; owned ones are really owned.
      std::set<gidx_t> seen;
      for (lidx_t i = 0; i < lay.total; ++i) {
        const gidx_t g = lay.local_to_global[static_cast<size_t>(i)];
        EXPECT_TRUE(seen.insert(g).second);
        if (i < lay.num_owned)
          EXPECT_EQ(b.part.owner(s, g), r);
        else
          EXPECT_NE(b.part.owner(s, g), r);
      }

      // Owned ordering: din non-increasing; core_count consistent.
      for (size_t i = 1; i < lay.owned_din.size(); ++i)
        EXPECT_LE(lay.owned_din[i], lay.owned_din[i - 1]);
      for (int shrink = 0; shrink <= 3; ++shrink) {
        const lidx_t c = lay.core_count(shrink);
        for (lidx_t i = 0; i < c; ++i)
          EXPECT_GT(lay.owned_din[static_cast<size_t>(i)], shrink);
        if (c < lay.num_owned)
          EXPECT_LE(lay.owned_din[static_cast<size_t>(c)], shrink);
      }
    }
  }
}

TEST(HaloPlan, OwnedPartitionCoverage) {
  Built b = build_quad(10, 8, 3, 2);
  for (mesh::set_id s = 0; s < b.q.mesh.num_sets(); ++s) {
    std::set<gidx_t> covered;
    for (rank_t r = 0; r < 3; ++r) {
      const SetLayout& lay = b.plan.layout(r, s);
      for (lidx_t i = 0; i < lay.num_owned; ++i)
        EXPECT_TRUE(
            covered.insert(lay.local_to_global[static_cast<size_t>(i)])
                .second);
    }
    EXPECT_EQ(static_cast<gidx_t>(covered.size()), b.q.mesh.set(s).size);
  }
}

TEST(HaloPlan, ImportExportSymmetry) {
  Built b = build_quad(14, 10, 5, 2);
  for (rank_t r = 0; r < 5; ++r) {
    const RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    for (mesh::set_id s = 0; s < b.q.mesh.num_sets(); ++s) {
      const NeighborLists& nl = rp.lists[static_cast<size_t>(s)];
      auto check = [&](const std::map<rank_t, std::vector<LIdxVec>>& imp,
                       bool exec) {
        for (const auto& [q, layers] : imp) {
          const NeighborLists& qnl =
              b.plan.ranks[static_cast<size_t>(q)]
                  .lists[static_cast<size_t>(s)];
          const auto& exp_tab = exec ? qnl.exp_exec : qnl.exp_nonexec;
          const auto it = exp_tab.find(r);
          ASSERT_NE(it, exp_tab.end());
          for (size_t k = 0; k < layers.size(); ++k) {
            ASSERT_EQ(layers[k].size(), it->second[k].size());
            // Element-wise: same global ids in the same order.
            const SetLayout& mine = b.plan.layout(r, s);
            const SetLayout& theirs = b.plan.layout(q, s);
            for (size_t i = 0; i < layers[k].size(); ++i) {
              const gidx_t g_imp =
                  mine.local_to_global[static_cast<size_t>(layers[k][i])];
              const gidx_t g_exp = theirs.local_to_global[
                  static_cast<size_t>(it->second[k][i])];
              EXPECT_EQ(g_imp, g_exp);
              EXPECT_EQ(b.part.owner(s, g_imp), q);
            }
          }
        }
      };
      check(nl.imp_exec, true);
      check(nl.imp_nonexec, false);
    }
  }
}

TEST(HaloPlan, ExecLayerTargetsPresentLocally) {
  // Every map row of an owned or import-exec element must resolve to a
  // local element (nonexec fringe guarantees closure).
  Built b = build_quad(9, 9, 4, 2);
  const mesh::MeshDef& m = b.q.mesh;
  for (rank_t r = 0; r < 4; ++r) {
    const RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    for (mesh::map_id mid = 0; mid < m.num_maps(); ++mid) {
      const mesh::MapDef& mp = m.map(mid);
      const SetLayout& from = rp.sets[static_cast<size_t>(mp.from)];
      const LocalMap& lm = rp.maps[static_cast<size_t>(mid)];
      const lidx_t exec_total = from.exec_end.back();
      for (lidx_t f = 0; f < exec_total; ++f)
        for (int k = 0; k < mp.arity; ++k)
          EXPECT_NE(lm.targets[static_cast<size_t>(f) *
                                   static_cast<size_t>(mp.arity) +
                               static_cast<size_t>(k)],
                    kInvalidLocal)
              << "map " << mp.name << " rank " << r << " row " << f;
    }
  }
}

TEST(HaloPlan, LocalMapsAgreeWithGlobal) {
  Built b = build_quad(8, 8, 3, 2);
  const mesh::MeshDef& m = b.q.mesh;
  for (rank_t r = 0; r < 3; ++r) {
    const RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    const mesh::MapDef& e2n = m.map(b.q.e2n);
    const SetLayout& edges = rp.sets[static_cast<size_t>(b.q.edges)];
    const SetLayout& nodes = rp.sets[static_cast<size_t>(b.q.nodes)];
    const LocalMap& lm = rp.maps[static_cast<size_t>(b.q.e2n)];
    for (lidx_t e = 0; e < edges.exec_end.back(); ++e) {
      const gidx_t ge = edges.local_to_global[static_cast<size_t>(e)];
      for (int k = 0; k < 2; ++k) {
        const lidx_t ln =
            lm.targets[static_cast<size_t>(2 * e + k)];
        ASSERT_NE(ln, kInvalidLocal);
        EXPECT_EQ(nodes.local_to_global[static_cast<size_t>(ln)],
                  e2n.targets[static_cast<size_t>(2 * ge + k)]);
      }
    }
  }
}

TEST(HaloPlan, DeeperPlanExtendsShallowerOne) {
  Built b1 = build_quad(12, 12, 4, 1);
  Built b2 = build_quad(12, 12, 4, 3);
  for (rank_t r = 0; r < 4; ++r) {
    for (mesh::set_id s = 0; s < b1.q.mesh.num_sets(); ++s) {
      const SetLayout& l1 = b1.plan.layout(r, s);
      const SetLayout& l2 = b2.plan.layout(r, s);
      EXPECT_EQ(l1.num_owned, l2.num_owned);
      // Exec layer 1 is identical.
      const auto [b1b, b1e] = l1.exec_layer(1);
      const auto [b2b, b2e] = l2.exec_layer(1);
      ASSERT_EQ(b1e - b1b, b2e - b2b);
      for (lidx_t i = 0; i < b1e - b1b; ++i)
        EXPECT_EQ(l1.local_to_global[static_cast<size_t>(b1b + i)],
                  l2.local_to_global[static_cast<size_t>(b2b + i)]);
    }
  }
}

TEST(HaloPlan, AnnulusPeriodicHalosExist) {
  mesh::Annulus an = mesh::make_annulus(4, 6, 10);
  const partition::Partition part = partition::partition_mesh(
      an.mesh, 6, partition::Kind::RIB, an.nodes);
  HaloPlanOptions opts;
  opts.depth = 2;
  const HaloPlan plan = build_halo_plan(an.mesh, part, opts);
  // At least one rank must import pedges (the periodic seam crosses
  // partition boundaries under RIB on an annular wedge).
  std::int64_t pedge_imports = 0;
  for (rank_t r = 0; r < 6; ++r) {
    const SetLayout& lay = plan.layout(r, an.pedges);
    pedge_imports += lay.exec_end.back() - lay.num_owned;
  }
  EXPECT_GT(pedge_imports, 0);
}

TEST(Renumber, GatherScatterRoundTrip) {
  Built b = build_quad(7, 5, 3, 2);
  const mesh::MeshDef& m = b.q.mesh;
  const gidx_t n = m.set(b.q.nodes).size;
  std::vector<double> global(static_cast<size_t>(2 * n));
  for (size_t i = 0; i < global.size(); ++i)
    global[i] = static_cast<double>(i) * 0.5;

  std::vector<double> out(global.size(), -1.0);
  for (rank_t r = 0; r < 3; ++r) {
    const SetLayout& lay = b.plan.layout(r, b.q.nodes);
    const std::vector<double> local = gather_local(global, 2, lay);
    scatter_owned(local, 2, lay, &out);
  }
  EXPECT_EQ(out, global);
}

TEST(Grouped, PackUnpackRows) {
  std::vector<double> src{0, 1, 2, 3, 4, 5, 6, 7};
  const LIdxVec idx{3, 1};
  op2ca::ByteBuf buf;
  pack_rows(src.data(), 2, idx, &buf);
  EXPECT_EQ(buf.size(), 2 * 2 * sizeof(double));

  std::vector<double> dst(8, 0.0);
  const size_t off = unpack_rows(dst.data(), 2, idx, buf, 0);
  EXPECT_EQ(off, buf.size());
  EXPECT_DOUBLE_EQ(dst[6], 6.0);
  EXPECT_DOUBLE_EQ(dst[7], 7.0);
  EXPECT_DOUBLE_EQ(dst[2], 2.0);
  EXPECT_DOUBLE_EQ(dst[3], 3.0);
  EXPECT_DOUBLE_EQ(dst[0], 0.0);
}

TEST(Grouped, MessageBytesMatchPackedSize) {
  Built b = build_quad(10, 10, 4, 2);
  const RankPlan& rp = b.plan.ranks[0];
  // One dat on nodes (dim 3) synced to depth 2.
  const SetLayout& lay = b.plan.layout(0, b.q.nodes);
  std::vector<double> data(static_cast<size_t>(lay.total) * 3, 1.0);
  DatSyncSpec spec;
  spec.set = b.q.nodes;
  spec.dim = 3;
  spec.depth = 2;
  spec.data = data.data();
  const auto bytes = grouped_message_bytes(rp, {&spec, 1});
  for (const auto& [q, n] : bytes) {
    const auto buf = pack_grouped(rp, q, {&spec, 1});
    EXPECT_EQ(static_cast<std::int64_t>(buf.size()), n);
  }
}

TEST(HaloPlan, PromotedElementsStayInLevelOneSyncLists) {
  // Regression test: on meshes where a set is both map source and target
  // (multigrid nodes), a nonexec-layer-1 element can be promoted to a
  // deeper exec layer. Every element READ by a layer-1 exec iteration
  // must still be covered by a level-1 exchange: it must be owned, in
  // exec layer 1, or listed in some level-1 import list (possibly as a
  // promotion alias pointing into the exec segment).
  mesh::MultigridHex mg = mesh::make_multigrid_hex(8, 8, 8, 2);
  const partition::Partition part = partition::partition_mesh(
      mg.mesh, 5, partition::Kind::KWay, mg.levels[0].nodes);
  HaloPlanOptions opts;
  opts.depth = 2;
  const HaloPlan plan = build_halo_plan(mg.mesh, part, opts);

  for (rank_t r = 0; r < 5; ++r) {
    const RankPlan& rp = plan.ranks[static_cast<size_t>(r)];
    // Collect all local indices deliverable by a level-1 exchange.
    std::vector<std::set<lidx_t>> level1(
        static_cast<size_t>(mg.mesh.num_sets()));
    for (mesh::set_id s = 0; s < mg.mesh.num_sets(); ++s) {
      const NeighborLists& nl = rp.lists[static_cast<size_t>(s)];
      for (const auto* tab : {&nl.imp_exec, &nl.imp_nonexec})
        for (const auto& [q, layers] : *tab)
          for (lidx_t i : layers[0])
            level1[static_cast<size_t>(s)].insert(i);
    }
    for (mesh::map_id m = 0; m < mg.mesh.num_maps(); ++m) {
      const mesh::MapDef& mp = mg.mesh.map(m);
      const SetLayout& flay = rp.sets[static_cast<size_t>(mp.from)];
      const SetLayout& tlay = rp.sets[static_cast<size_t>(mp.to)];
      const LocalMap& lm = rp.maps[static_cast<size_t>(m)];
      const auto [b, e] = flay.exec_layer(1);
      for (lidx_t f = b; f < e; ++f) {
        for (int k = 0; k < mp.arity; ++k) {
          const lidx_t t = lm.targets[static_cast<size_t>(f) *
                                          static_cast<size_t>(mp.arity) +
                                      static_cast<size_t>(k)];
          ASSERT_NE(t, kInvalidLocal);
          const bool covered =
              t < tlay.num_owned ||
              (t >= tlay.exec_end[0] && t < tlay.exec_end[1]) ||
              level1[static_cast<size_t>(mp.to)].count(t) != 0;
          EXPECT_TRUE(covered)
              << "rank " << r << " map " << mp.name << " layer-1 source "
              << f << " reads uncovered target " << t;
        }
      }
    }
  }
}

TEST(Grouped, UnpackRejectsWrongSize) {
  Built b = build_quad(6, 6, 2, 1);
  const RankPlan& rp = b.plan.ranks[0];
  const SetLayout& lay = b.plan.layout(0, b.q.nodes);
  std::vector<double> data(static_cast<size_t>(lay.total), 0.0);
  DatSyncSpec spec{b.q.nodes, 1, 1, data.data()};
  ASSERT_FALSE(rp.neighbors.empty());
  const rank_t q = *rp.neighbors.begin();
  op2ca::ByteBuf bogus(3);  // not a multiple of a row
  EXPECT_THROW(unpack_grouped(rp, q, {&spec, 1}, bogus), Error);
}

}  // namespace
}  // namespace op2ca::halo
