// Temporal chain tiling (WorldConfig::tile / ChainConfig tile=<k>): k
// back-to-back invocations of an enabled chain fuse into ONE
// communication epoch over the unrolled k*L loop window. This suite
// covers the window machinery itself — inspector analysis across the
// unrolled sequence, the depth clamp with its loud per-invocation
// fallback, slice-shrink validity of the fused execution (validate=true
// everywhere), window breaks at sync points and intervening work, and
// the tile-geometry-keyed plan cache.
//
// The chain under test is a Jacobi-style relaxation pair (fwd: b += f(a),
// bwd: a += f(b), both through e2n): every invocation re-dirties what
// the next one reads, so the fused window's required depth grows by the
// per-invocation requirement (2 layers) for every extra invocation —
// the regime temporal tiling exists for. Contrast the MG-CFD synthetic
// chain, whose INC-only coupling keeps the requirement constant.
#include <gtest/gtest.h>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/reorder.hpp"
#include "op2ca/util/error.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

using testutil::expect_allclose;

/// Antisymmetric weighted relaxation along an edge.
struct JacobiRelax {
  template <typename O1, typename O2, typename I1, typename I2,
            typename W>
  void operator()(O1&& o1, O2&& o2, I1&& i1, I2&& i2, W&& w) const {
    const double f = 1e-3 * (1.0 + 0.1 * w[0]);
    o1[0] += f * (i2[0] - i1[0]);
    o2[0] += f * (i1[0] - i2[0]);
  }
};
inline constexpr JacobiRelax jacobi_relax{};

/// Direct node update, used as intervening work between invocations.
struct NodeScale {
  template <typename A>
  void operator()(A&& a) const {
    a[0] = a[0] * 1.000001 + 1e-9;
  }
};
inline constexpr NodeScale node_scale{};

mesh::MeshDef build_jacobi_mesh() {
  mesh::Hex3D h = mesh::make_hex3d(8, 8, 8);
  const gidx_t n = h.mesh.set(h.nodes).size;
  const gidx_t e = h.mesh.set(h.edges).size;
  std::vector<double> a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n)), wt(static_cast<std::size_t>(e));
  for (gidx_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = 0.5 + 1e-3 * static_cast<double>(i % 97);
    b[static_cast<std::size_t>(i)] = 1.5 - 1e-3 * static_cast<double>(i % 89);
  }
  for (gidx_t i = 0; i < e; ++i)
    wt[static_cast<std::size_t>(i)] =
        -0.5 + 1e-3 * static_cast<double>(i % 1009);
  h.mesh.add_dat("ja", h.nodes, 1, std::move(a));
  h.mesh.add_dat("jb", h.nodes, 1, std::move(b));
  h.mesh.add_dat("jwt", h.edges, 1, std::move(wt));
  return mesh::scramble_mesh(h.mesh, 7);
}

/// One timestep: the fwd/bwd pair bracketed as chain "jacobi".
void jacobi_step(Runtime& rt) {
  const Set edges = rt.set("edges");
  const Map map = rt.map("e2n");
  rt.chain_begin("jacobi");
  rt.par_loop("jacobi_fwd", edges, jacobi_relax,
              arg_dat(rt.dat("jb"), 0, map, Access::INC),
              arg_dat(rt.dat("jb"), 1, map, Access::INC),
              arg_dat(rt.dat("ja"), 0, map, Access::READ),
              arg_dat(rt.dat("ja"), 1, map, Access::READ),
              arg_dat(rt.dat("jwt"), Access::READ));
  rt.par_loop("jacobi_bwd", edges, jacobi_relax,
              arg_dat(rt.dat("ja"), 0, map, Access::INC),
              arg_dat(rt.dat("ja"), 1, map, Access::INC),
              arg_dat(rt.dat("jb"), 0, map, Access::READ),
              arg_dat(rt.dat("jb"), 1, map, Access::READ),
              arg_dat(rt.dat("jwt"), Access::READ));
  rt.chain_end();
}

struct TiledRun {
  std::vector<double> a, b;
  LoopMetrics chain;  ///< merged metrics of chain "jacobi".
};

TiledRun run_jacobi(int world_tile, int timesteps, int chain_tile = 0,
                    int max_depth = 0) {
  const mesh::MeshDef m = build_jacobi_mesh();
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;  // slice-shrink validity checked on every epoch
  cfg.tile = world_tile;
  cfg.chains.enable("jacobi", /*loops=*/0, max_depth, chain_tile);
  World w(m, cfg);
  w.run([&](Runtime& rt) {
    for (int t = 0; t < timesteps; ++t) jacobi_step(rt);
  });
  const mesh::dat_id ja = *m.find_dat("ja");
  const mesh::dat_id jb = *m.find_dat("jb");
  return TiledRun{w.fetch_dat(ja), w.fetch_dat(jb),
                  w.chain_metrics().at("jacobi")};
}

TEST(Tiling, WindowFusesAcrossUnrolledSequence) {
  // 8 invocations at tile=4: two fused epochs instead of eight, each
  // analysed across the unrolled 4*2-loop sequence (required depth 8 =
  // 4x the single-invocation requirement, inside the derived plan).
  const TiledRun untiled = run_jacobi(1, 8);
  const TiledRun tiled = run_jacobi(4, 8);
  EXPECT_EQ(untiled.chain.calls, 8);
  EXPECT_EQ(untiled.chain.tile, 1);
  EXPECT_EQ(untiled.chain.msgs_saved, 0);
  EXPECT_EQ(tiled.chain.calls, 2);
  EXPECT_EQ(tiled.chain.tile, 4);  // the fused path actually engaged
  // One grouped pre-exchange per fused epoch: fewer messages, and the
  // redundant-compute / saved-message ledger is populated.
  EXPECT_LT(tiled.chain.msgs, untiled.chain.msgs);
  EXPECT_GT(tiled.chain.msgs_saved, 0);
  EXPECT_GT(tiled.chain.redundant_elems, untiled.chain.redundant_elems);
}

TEST(Tiling, TiledMatchesUntiledResults) {
  // Fused execution regenerates halo values by redundant compute instead
  // of exchanging them; per owned element the arithmetic reassociates
  // across the moved core/boundary split — usual 1e-9 contract.
  const TiledRun untiled = run_jacobi(1, 8);
  for (const int tile : {2, 4}) {
    const TiledRun tiled = run_jacobi(tile, 8);
    expect_allclose(untiled.a, tiled.a);
    expect_allclose(untiled.b, tiled.b);
  }
}

TEST(Tiling, PartialTileFlushesAtSyncPoint) {
  // 6 invocations at tile=4: one full 4-tile plus a trailing partial
  // 2-tile drained by the end-of-program flush. The partial window
  // fuses too (>= 2 invocations), under its own #tile2 plan key.
  const TiledRun untiled = run_jacobi(1, 6);
  const TiledRun tiled = run_jacobi(4, 6);
  EXPECT_EQ(tiled.chain.calls, 2);
  EXPECT_EQ(tiled.chain.tile, 4);  // merge keeps the largest tile seen
  expect_allclose(untiled.a, tiled.a);
  expect_allclose(untiled.b, tiled.b);
}

TEST(Tiling, InterveningLooseLoopBreaksWindow) {
  // A loose par_loop between invocations 2 and 3 must observe exactly
  // two timesteps, so the window flushes as a 2-tile and a fresh window
  // accumulates afterwards — never a 4-tile spanning the loose loop.
  auto run_broken = [](int world_tile) {
    const mesh::MeshDef m = build_jacobi_mesh();
    WorldConfig cfg;
    cfg.nranks = 4;
    cfg.partitioner = partition::Kind::KWay;
    cfg.halo_depth = 2;
    cfg.validate = true;
    cfg.tile = world_tile;
    cfg.chains.enable("jacobi");
    World w(m, cfg);
    w.run([&](Runtime& rt) {
      for (int t = 0; t < 2; ++t) jacobi_step(rt);
      rt.par_loop("scale", rt.set("nodes"), node_scale,
                  arg_dat(rt.dat("ja"), Access::RW));
      for (int t = 0; t < 2; ++t) jacobi_step(rt);
    });
    const mesh::dat_id ja = *m.find_dat("ja");
    const mesh::dat_id jb = *m.find_dat("jb");
    return TiledRun{w.fetch_dat(ja), w.fetch_dat(jb),
                    w.chain_metrics().at("jacobi")};
  };
  const TiledRun untiled = run_broken(1);
  const TiledRun tiled = run_broken(4);
  EXPECT_EQ(untiled.chain.calls, 4);
  EXPECT_EQ(tiled.chain.calls, 2);  // two fused 2-tiles
  EXPECT_EQ(tiled.chain.tile, 2);   // never reached 4
  expect_allclose(untiled.a, tiled.a);
  expect_allclose(untiled.b, tiled.b);
}

TEST(Tiling, DepthCapFallsBackPerInvocation) {
  // max_depth=2 admits the single-invocation requirement exactly; the
  // fused 4-window needs 8 layers, so the clamp rejects it and the loud
  // fallback runs each invocation as an ordinary CA epoch. Results are
  // identical to the untiled run and the metrics show no fusion.
  const TiledRun untiled = run_jacobi(1, 4, 0, /*max_depth=*/2);
  const TiledRun capped = run_jacobi(4, 4, 0, /*max_depth=*/2);
  EXPECT_EQ(capped.chain.calls, 4);
  EXPECT_EQ(capped.chain.tile, 1);  // every epoch ran untiled
  EXPECT_EQ(capped.chain.msgs_saved, 0);
  EXPECT_EQ(untiled.a, capped.a);  // same executor, same epochs: bitwise
  EXPECT_EQ(untiled.b, capped.b);
}

TEST(Tiling, ChainTileOverridesWorldDefault) {
  // Per-chain tile= beats WorldConfig::tile in both directions.
  const TiledRun fused = run_jacobi(/*world_tile=*/1, 8, /*chain_tile=*/4);
  EXPECT_EQ(fused.chain.calls, 2);
  EXPECT_EQ(fused.chain.tile, 4);
  const TiledRun pinned = run_jacobi(/*world_tile=*/4, 8, /*chain_tile=*/1);
  EXPECT_EQ(pinned.chain.calls, 8);
  EXPECT_EQ(pinned.chain.tile, 1);
}

TEST(Tiling, PlanCacheHitsOnRepeatedTiles) {
  // The first fused epoch pays the inspector + exchange-plan build under
  // the #tile4 key; every repeat of the same tile geometry must reuse it
  // wholesale (plan_builds == 0 — the same steady-state contract the
  // untiled plan-reuse tests assert).
  const mesh::MeshDef m = build_jacobi_mesh();
  WorldConfig cfg;
  cfg.nranks = 4;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.tile = 4;
  cfg.chains.enable("jacobi");
  World w(m, cfg);
  w.run([](Runtime& rt) {
    // Warm-up: the first fused epoch runs with everything fresh (clean
    // stale-mask), the second builds the steady-state mask's grouped
    // exchange, and the remaining epochs let staging capacities
    // circulate between neighbour pools (zero-copy sends hand buffers
    // away, so pool coverage converges over a few epochs, not
    // instantly — same warmup shape as the untiled plan-reuse tests).
    for (int t = 0; t < 32; ++t) jacobi_step(rt);
  });
  EXPECT_GT(w.chain_metrics().at("jacobi").plan_builds, 0);
  w.clear_metrics();
  w.run([](Runtime& rt) {
    for (int t = 0; t < 8; ++t) jacobi_step(rt);  // two more fused epochs
  });
  // chain_metrics() merges across ranks into a fresh map — copy, don't
  // bind a reference into the temporary.
  const LoopMetrics mm = w.chain_metrics().at("jacobi");
  EXPECT_EQ(mm.calls, 2);
  EXPECT_EQ(mm.tile, 4);
  EXPECT_EQ(mm.plan_builds, 0);
  EXPECT_EQ(mm.staging_allocs, 0);
}

TEST(Tiling, WorldRejectsTileBelowOne) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(600, 1);
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.tile = 0;
  EXPECT_THROW(World w(std::move(prob.mg.mesh), cfg), Error);
}

}  // namespace
}  // namespace op2ca::core
