// Lazy-evaluation tests: with WorldConfig::lazy, par_loops queue up and
// flush at synchronisation points as automatically-formed CA chains.
// Results must match eager execution; infeasible fragments must fall
// back to per-loop execution transparently.
#include <gtest/gtest.h>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

using testutil::expect_allclose;

WorldConfig lazy_config(int nranks, bool lazy) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 3;
  cfg.validate = true;
  cfg.lazy = lazy;
  return cfg;
}

/// The synthetic loops issued WITHOUT chain_begin/chain_end: in lazy
/// mode the runtime must chain them automatically.
void plain_loops(Runtime& rt, const apps::mgcfd::Handles& h, int pairs) {
  namespace k = apps::mgcfd::kernels;
  rt.par_loop("perturb", h.nodes0, k::synth_perturb,
              arg_dat(rt.dat("spres"), Access::RW));
  for (int c = 0; c < pairs; ++c) {
    rt.par_loop("u", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.par_loop("f", h.edges0, k::synth_edge_flux,
                arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                arg_dat(h.sres, 0, h.e2n0, Access::READ),
                arg_dat(h.sres, 1, h.e2n0, Access::READ),
                arg_dat(h.sewt, Access::READ));
  }
}

struct Result {
  std::vector<double> sres, sflux;
  std::map<std::string, LoopMetrics> loops, chains;
};

Result run(int nranks, bool lazy, int pairs, int steps) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux;
  World w(std::move(prob.mg.mesh), lazy_config(nranks, lazy));
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < steps; ++t) {
      plain_loops(rt, h, pairs);
      rt.barrier();  // sync point: forces a flush per timestep
    }
  });
  return Result{w.fetch_dat(sres), w.fetch_dat(sflux), w.loop_metrics(),
                w.chain_metrics()};
}

TEST(Lazy, MatchesEagerExecution) {
  const Result eager = run(5, false, 3, 2);
  const Result lazy = run(5, true, 3, 2);
  expect_allclose(eager.sres, lazy.sres);
  expect_allclose(eager.sflux, lazy.sflux);
}

TEST(Lazy, MatchesSerial) {
  const Result serial = run(1, false, 4, 2);
  const Result lazy = run(6, true, 4, 2);
  expect_allclose(serial.sres, lazy.sres);
  expect_allclose(serial.sflux, lazy.sflux);
}

TEST(Lazy, FormsChainsAutomatically) {
  const Result lazy = run(5, true, 4, 2);
  // Some lazy:<signature> chain must exist and carry the grouped
  // messages; the constituent loops must NOT have sent per-loop
  // exchanges of their own.
  std::int64_t lazy_msgs = 0;
  bool found = false;
  for (const auto& [name, m] : lazy.chains) {
    if (name.rfind("lazy:", 0) == 0) {
      found = true;
      lazy_msgs += m.msgs;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(lazy_msgs, 0);
  // The "u"/"f" loops only appear in loop metrics if they ran eagerly.
  EXPECT_EQ(lazy.loops.count("u"), 0u);
  EXPECT_EQ(lazy.loops.count("f"), 0u);
}

TEST(Lazy, FewerMessagesThanEager) {
  const Result eager = run(6, false, 8, 2);
  const Result lazy = run(6, true, 8, 2);
  auto total_msgs = [](const Result& r) {
    std::int64_t n = 0;
    for (const auto& [name, m] : r.loops) n += m.msgs;
    for (const auto& [name, m] : r.chains) n += m.msgs;
    return n;
  };
  EXPECT_LT(total_msgs(lazy), total_msgs(eager) / 2);
}

TEST(Lazy, GblReductionFlushesAndReduces) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  const gidx_t nnodes = prob.mg.mesh.set(prob.mg.levels[0].nodes).size;
  World w(std::move(prob.mg.mesh), lazy_config(4, true));
  double total = 0.0;
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    plain_loops(rt, h, 2);  // queued
    double count = 0.0;
    rt.par_loop(
        "count", h.nodes0,
        [](const double* p, double* acc) { acc[0] += 1.0 + 0.0 * p[0]; },
        arg_dat(rt.dat("spres"), Access::READ),
        arg_gbl(&count, 1, Access::INC));
    if (rt.rank() == 0) total = count;
  });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(nnodes));
}

TEST(Lazy, InfeasibleFragmentFallsBack) {
  // perturb (direct node write) followed by a dependent indirect read in
  // ONE flush unit is not CA-executable; the lazy runtime must fall back
  // to per-loop execution and still produce correct results.
  auto run_mixed = [](int nranks, bool lazy) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
    const mesh::dat_id sres = prob.sres;
    World w(std::move(prob.mg.mesh), lazy_config(nranks, lazy));
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      namespace k = apps::mgcfd::kernels;
      // No barrier between perturb and the update: they land in the
      // same lazy fragment, which the inspector rejects.
      rt.par_loop("perturb", h.nodes0, k::synth_perturb,
                  arg_dat(rt.dat("spres"), Access::RW));
      rt.par_loop("u", h.edges0, k::synth_update,
                  arg_dat(h.sres, 0, h.e2n0, Access::INC),
                  arg_dat(h.sres, 1, h.e2n0, Access::INC),
                  arg_dat(h.spres, 0, h.e2n0, Access::READ),
                  arg_dat(h.spres, 1, h.e2n0, Access::READ));
    });
    return w.fetch_dat(sres);
  };
  expect_allclose(run_mixed(1, false), run_mixed(5, true));
}

TEST(Lazy, ExplicitChainsStillWork) {
  // chain_begin inside a lazy program flushes the queue and runs the
  // explicit chain as usual.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1000, 1);
  const mesh::dat_id sflux = prob.sflux;
  WorldConfig cfg = lazy_config(4, true);
  cfg.chains.enable("synthetic");
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 2);  // explicit chain
  });
  EXPECT_GT(w.chain_metrics().at("synthetic").calls, 0);
  for (double v : w.fetch_dat(sflux)) ASSERT_TRUE(std::isfinite(v));
}

TEST(Lazy, BitwiseDeterministicAcrossRuns) {
  auto once = [] {
    return run(5, true, 4, 2);
  };
  const Result a = once();
  const Result b = once();
  EXPECT_EQ(a.sres, b.sres);    // bitwise
  EXPECT_EQ(a.sflux, b.sflux);
}

}  // namespace
}  // namespace op2ca::core
