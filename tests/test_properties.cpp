// Property-based sweeps (parameterised gtest): across rank counts,
// partitioners, chain lengths and halo depths, CA execution must equal
// sequential execution; random loop sequences with random chain
// bracketing must keep dirty-bit bookkeeping coherent.
#include <gtest/gtest.h>

#include <tuple>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/util/rng.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

using testutil::expect_allclose;

// ---------------------------------------------------------------------
// Sweep 1: synthetic chain equivalence over the configuration space.
// ---------------------------------------------------------------------

using SynthParam = std::tuple<int, partition::Kind, int, int>;
//                           ranks, partitioner, nchains, depth

class SynthSweep : public ::testing::TestWithParam<SynthParam> {};

TEST_P(SynthSweep, CaEqualsSerial) {
  const auto [nranks, kind, nchains, depth] = GetParam();

  auto run = [&](int ranks, bool ca) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(900, 1);
    WorldConfig cfg;
    cfg.nranks = ranks;
    cfg.partitioner = kind;
    cfg.halo_depth = depth;
    cfg.validate = true;
    if (ca) cfg.chains.enable("synthetic");
    const mesh::dat_id sres = prob.sres, sflux = prob.sflux;
    World w(std::move(prob.mg.mesh), cfg);
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      apps::mgcfd::run_synthetic_chain(rt, h, nchains);
    });
    return std::make_pair(w.fetch_dat(sres), w.fetch_dat(sflux));
  };

  const auto [sres_ref, sflux_ref] = run(1, false);
  const auto [sres_ca, sflux_ca] = run(nranks, true);
  expect_allclose(sres_ref, sres_ca);
  expect_allclose(sflux_ref, sflux_ca);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SynthSweep,
    ::testing::Combine(
        ::testing::Values(2, 3, 7),
        ::testing::Values(partition::Kind::Block, partition::Kind::RIB,
                          partition::Kind::KWay),
        ::testing::Values(1, 3), ::testing::Values(2, 3)),
    [](const ::testing::TestParamInfo<SynthParam>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) +
             std::string(partition::kind_name(std::get<1>(info.param))) +
             "c" + std::to_string(std::get<2>(info.param)) + "d" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: halo-plan invariants over meshes, rank counts and depths.
// ---------------------------------------------------------------------

using HaloParam = std::tuple<int, int>;  // ranks, depth

class HaloSweep : public ::testing::TestWithParam<HaloParam> {};

TEST_P(HaloSweep, InvariantsHoldOnMultigridMesh) {
  const auto [nranks, depth] = GetParam();
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1500, 2);
  const mesh::MeshDef& m = prob.mg.mesh;
  const partition::Partition part = partition::partition_mesh(
      m, nranks, partition::Kind::KWay, prob.mg.levels[0].nodes);
  halo::HaloPlanOptions opts;
  opts.depth = depth;
  const halo::HaloPlan plan = halo::build_halo_plan(m, part, opts);

  for (rank_t r = 0; r < nranks; ++r) {
    const halo::RankPlan& rp = plan.ranks[static_cast<size_t>(r)];
    for (mesh::set_id s = 0; s < m.num_sets(); ++s) {
      const halo::SetLayout& lay = rp.sets[static_cast<size_t>(s)];
      // Monotone segment bounds.
      for (size_t k = 1; k < lay.exec_end.size(); ++k)
        ASSERT_GE(lay.exec_end[k], lay.exec_end[k - 1]);
      ASSERT_EQ(lay.nonexec_end.back(), lay.total);

      // Every executed element's map rows resolve locally.
      for (mesh::map_id mid = 0; mid < m.num_maps(); ++mid) {
        const mesh::MapDef& mp = m.map(mid);
        if (mp.from != s) continue;
        const halo::LocalMap& lm = rp.maps[static_cast<size_t>(mid)];
        for (lidx_t f = 0; f < lay.exec_end.back(); ++f)
          for (int k = 0; k < mp.arity; ++k)
            ASSERT_NE(lm.targets[static_cast<size_t>(f) *
                                     static_cast<size_t>(mp.arity) +
                                 static_cast<size_t>(k)],
                      kInvalidLocal);
      }

      // Import lists match export lists element-wise.
      const halo::NeighborLists& nl = rp.lists[static_cast<size_t>(s)];
      for (const auto& [q, layers] : nl.imp_exec) {
        const auto& exp =
            plan.ranks[static_cast<size_t>(q)].lists[static_cast<size_t>(s)]
                .exp_exec.at(r);
        for (size_t k = 0; k < layers.size(); ++k)
          ASSERT_EQ(layers[k].size(), exp[k].size());
      }
      for (const auto& [q, layers] : nl.imp_nonexec) {
        const auto& exp =
            plan.ranks[static_cast<size_t>(q)].lists[static_cast<size_t>(s)]
                .exp_nonexec.at(r);
        for (size_t k = 0; k < layers.size(); ++k)
          ASSERT_EQ(layers[k].size(), exp[k].size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HaloSweep,
                         ::testing::Combine(::testing::Values(2, 5, 9),
                                            ::testing::Values(1, 2, 3)),
                         [](const ::testing::TestParamInfo<HaloParam>& i) {
                           return "r" + std::to_string(std::get<0>(i.param)) +
                                  "d" + std::to_string(std::get<1>(i.param));
                         });

// ---------------------------------------------------------------------
// Sweep 3: random loop sequences with random chain bracketing.
// ---------------------------------------------------------------------

/// Issues a pseudo-random program of loops over the synthetic dats,
/// optionally wrapping random contiguous groups into CA chains. The
/// program is a function of `seed` only, so serial and parallel runs
/// execute identical sequences.
void run_random_program(Runtime& rt, const apps::mgcfd::Handles& h,
                        std::uint64_t seed, bool use_chains) {
  namespace k = apps::mgcfd::kernels;
  Rng rng(seed);
  int chain_counter = 0;
  const int groups = 4;
  for (int grp = 0; grp < groups; ++grp) {
    const int len = static_cast<int>(rng.next_int(1, 4));
    // Consume the RNG unconditionally so the chained and unchained
    // variants issue identical loop sequences.
    const bool coin = rng.next_bool(0.7);
    const bool chain = use_chains && coin;
    if (chain)
      rt.chain_begin("rand" + std::to_string(chain_counter++));
    for (int i = 0; i < len; ++i) {
      // Groups that MAY be chained (coin == true) avoid the direct node
      // write: a chain cannot regenerate directly-written node values on
      // the halo (nodes have no exec layers), and the inspector rejects
      // such chains by design.
      switch (rng.next_int(0, coin ? 1 : 2)) {
        case 0:
          rt.par_loop("p_update", h.edges0, k::synth_update,
                      arg_dat(h.sres, 0, h.e2n0, Access::INC),
                      arg_dat(h.sres, 1, h.e2n0, Access::INC),
                      arg_dat(h.spres, 0, h.e2n0, Access::READ),
                      arg_dat(h.spres, 1, h.e2n0, Access::READ));
          break;
        case 1:
          rt.par_loop("p_flux", h.edges0, k::synth_edge_flux,
                      arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                      arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                      arg_dat(h.sres, 0, h.e2n0, Access::READ),
                      arg_dat(h.sres, 1, h.e2n0, Access::READ),
                      arg_dat(h.sewt, Access::READ));
          break;
        case 2:
          rt.par_loop("p_perturb", h.nodes0, k::synth_perturb,
                      arg_dat(h.spres, Access::RW));
          break;
      }
    }
    if (chain) rt.chain_end();
  }
}

class RandomProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgram, ChainedEqualsSequential) {
  const std::uint64_t seed = GetParam();
  auto run = [&](int nranks, bool chains) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 1);
    WorldConfig cfg;
    cfg.nranks = nranks;
    cfg.partitioner = partition::Kind::KWay;
    cfg.halo_depth = 4;  // generous: random chains can stack extensions
    cfg.validate = true;
    cfg.chains.set_default(chains);
    const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                       spres = prob.spres;
    World w(std::move(prob.mg.mesh), cfg);
    w.run([&](Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      run_random_program(rt, h, seed, chains);
    });
    return std::make_tuple(w.fetch_dat(sres), w.fetch_dat(sflux),
                           w.fetch_dat(spres));
  };
  const auto ref = run(1, false);
  const auto ca = run(5, true);
  expect_allclose(std::get<0>(ref), std::get<0>(ca));
  expect_allclose(std::get<1>(ref), std::get<1>(ca));
  expect_allclose(std::get<2>(ref), std::get<2>(ca));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace op2ca::core
