// Hot-path infrastructure tests: BufferPool recycling, GroupedPlan
// pack/unpack against the reference (map-walking) implementation,
// zero-copy transport semantics, and the steady-state zero-allocation /
// zero-rebuild guarantee of the cached exchange plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/comm/comm.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca {
namespace {

// -- BufferPool. --------------------------------------------------------

TEST(BufferPool, FreshTakeAllocates) {
  BufferPool pool;
  const auto buf = pool.take(128);
  EXPECT_EQ(buf.size(), 128u);
  EXPECT_EQ(pool.allocations(), 1);
}

TEST(BufferPool, ReleaseThenTakeReusesStorage) {
  BufferPool pool;
  op2ca::ByteBuf buf = pool.take(256);
  const std::byte* storage = buf.data();
  pool.release(std::move(buf));
  ASSERT_EQ(pool.pooled(), 1u);
  op2ca::ByteBuf again = pool.take(256);
  EXPECT_EQ(again.data(), storage);  // same heap block, no allocation
  EXPECT_EQ(pool.allocations(), 1);
}

TEST(BufferPool, SmallerTakeReusesWithoutGrowth) {
  BufferPool pool;
  pool.release(pool.take(512));
  const auto buf = pool.take(64);
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(pool.allocations(), 1);
}

TEST(BufferPool, GrowthCountsAsAllocation) {
  BufferPool pool;
  pool.release(pool.take(64));
  const auto buf = pool.take(4096);
  EXPECT_EQ(buf.size(), 4096u);
  EXPECT_EQ(pool.allocations(), 2);
}

TEST(BufferPool, BestFitKeepsLargeBuffersForLargeRequests) {
  BufferPool pool;
  op2ca::ByteBuf small = pool.take(16);
  op2ca::ByteBuf big = pool.take(1024);
  pool.release(std::move(small));
  pool.release(std::move(big));
  // The small request must NOT consume the 1024-capacity buffer: the
  // 1000-byte request that follows would otherwise re-grow the 16-byte
  // one — every epoch, in a mixed-message-size exchange.
  pool.release(pool.take(8));
  pool.take(1000);
  EXPECT_EQ(pool.allocations(), 2);
}

// -- GroupedPlan vs the reference implementation. -----------------------

struct GroupedFixture {
  mesh::Quad2D q;
  partition::Partition part;
  halo::HaloPlan plan;
  /// Per rank: two dats (dim 3 depth 2 on nodes, dim 1 depth 1 on cells)
  /// with rank-dependent deterministic contents.
  std::vector<std::vector<double>> node_data, cell_data;

  explicit GroupedFixture(int nranks) : q(mesh::make_quad2d(12, 12)) {
    part = partition::partition_mesh(q.mesh, nranks, partition::Kind::RIB,
                                     q.nodes);
    halo::HaloPlanOptions opts;
    opts.depth = 2;
    plan = build_halo_plan(q.mesh, part, opts);
    for (rank_t r = 0; r < nranks; ++r) {
      const auto& nl = plan.layout(r, q.nodes);
      const auto& cl = plan.layout(r, q.cells);
      node_data.emplace_back(static_cast<std::size_t>(nl.total) * 3);
      cell_data.emplace_back(static_cast<std::size_t>(cl.total));
      for (std::size_t i = 0; i < node_data.back().size(); ++i)
        node_data.back()[i] = 1000.0 * r + static_cast<double>(i);
      for (std::size_t i = 0; i < cell_data.back().size(); ++i)
        cell_data.back()[i] = -2000.0 * r - static_cast<double>(i);
    }
  }

  std::vector<halo::DatSyncSpec> specs(rank_t r) {
    return {halo::DatSyncSpec{q.nodes, 3, 2, node_data[r].data()},
            halo::DatSyncSpec{q.cells, 1, 1, cell_data[r].data()}};
  }
};

TEST(GroupedPlan, PackMatchesReference) {
  GroupedFixture f(4);
  for (rank_t r = 0; r < 4; ++r) {
    const halo::RankPlan& rp = f.plan.ranks[static_cast<std::size_t>(r)];
    auto specs = f.specs(r);
    const halo::GroupedPlan gp = halo::build_grouped_plan(rp, specs);
    for (const halo::GroupedPlan::Side& side : gp.sides) {
      const op2ca::ByteBuf ref =
          halo::pack_grouped(rp, side.q, specs);
      ASSERT_EQ(ref.size(), side.send_bytes);
      op2ca::ByteBuf out(side.send_bytes);
      halo::pack_grouped(side, specs, out.data());
      EXPECT_EQ(out, ref) << "rank " << r << " -> " << side.q;
    }
    // Every neighbour with traffic must be covered by a side.
    const auto bytes = halo::grouped_message_bytes(rp, specs);
    for (const auto& [q2, n] : bytes) {
      const bool found =
          std::any_of(gp.sides.begin(), gp.sides.end(),
                      [q2 = q2](const auto& s) { return s.q == q2; });
      EXPECT_TRUE(found) << "missing side for neighbour " << q2;
    }
  }
}

TEST(GroupedPlan, UnpackMatchesReference) {
  GroupedFixture f(4);
  // Rank 0 receives from each neighbour the buffer that neighbour packs;
  // unpacking through the plan must scatter exactly what the reference
  // unpack scatters.
  const halo::RankPlan& rp0 = f.plan.ranks[0];
  auto specs_plan = f.specs(0);
  const halo::GroupedPlan gp = halo::build_grouped_plan(rp0, specs_plan);

  // Two independent copies of rank 0's arrays, one per unpack path.
  GroupedFixture ref_copy(4);
  auto specs_ref = ref_copy.specs(0);

  for (const halo::GroupedPlan::Side& side : gp.sides) {
    if (side.recv_bytes == 0) continue;
    const rank_t q = side.q;
    auto sender_specs = f.specs(q);
    const op2ca::ByteBuf payload = halo::pack_grouped(
        f.plan.ranks[static_cast<std::size_t>(q)], 0, sender_specs);
    ASSERT_EQ(payload.size(), side.recv_bytes);
    halo::unpack_grouped(side, specs_plan, payload);
    halo::unpack_grouped(rp0, q, specs_ref, payload);
  }
  EXPECT_EQ(f.node_data[0], ref_copy.node_data[0]);
  EXPECT_EQ(f.cell_data[0], ref_copy.cell_data[0]);
}

TEST(GroupedPlan, PlanPackRejectsNothingButWrongSizeUnpackThrows) {
  GroupedFixture f(2);
  const halo::RankPlan& rp = f.plan.ranks[0];
  auto specs = f.specs(0);
  const halo::GroupedPlan gp = halo::build_grouped_plan(rp, specs);
  ASSERT_FALSE(gp.sides.empty());
  const auto& side = gp.sides[0];
  ASSERT_GT(side.recv_bytes, 0u);
  op2ca::ByteBuf bogus(side.recv_bytes + 8);
  EXPECT_THROW(halo::unpack_grouped(side, specs, bogus), Error);
}

// -- Zero-copy transport. -----------------------------------------------

TEST(ZeroCopy, MovedSendPreservesStorageIdentity) {
  sim::Transport t(2);
  sim::Comm c0(t, 0), c1(t, 1);

  op2ca::ByteBuf buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>(i);
  const std::byte* storage = buf.data();

  sim::Request s = c0.isend(1, 7, std::move(buf));
  EXPECT_TRUE(buf.empty());  // ownership gone: no payload copy was made

  op2ca::ByteBuf recv;
  sim::Request r = c1.irecv(0, 7, &recv);
  c1.wait(r);
  c0.wait(s);

  ASSERT_EQ(recv.size(), 64u);
  // The receiver holds the very heap block the sender packed into.
  EXPECT_EQ(recv.data(), storage);
  for (std::size_t i = 0; i < recv.size(); ++i)
    EXPECT_EQ(recv[i], static_cast<std::byte>(i));

  EXPECT_EQ(c0.stats().sends_moved, 1);
  EXPECT_EQ(c0.stats().sends_copied, 0);
}

TEST(ZeroCopy, SpanSendStillCopies) {
  sim::Transport t(2);
  sim::Comm c0(t, 0), c1(t, 1);
  op2ca::ByteBuf buf(16, std::byte{42});
  sim::Request s = c0.isend(1, 1, std::span<const std::byte>(buf));
  EXPECT_EQ(buf.size(), 16u);  // caller keeps its buffer
  op2ca::ByteBuf recv;
  sim::Request r = c1.irecv(0, 1, &recv);
  c1.wait(r);
  c0.wait(s);
  EXPECT_NE(recv.data(), buf.data());
  EXPECT_EQ(recv, buf);
  EXPECT_EQ(c0.stats().sends_copied, 1);
  EXPECT_EQ(c0.stats().sends_moved, 0);
}

// -- Steady-state plan reuse: zero rebuilds, zero staging allocations. --

core::WorldConfig hotpath_config(int nranks, bool enable_ca) {
  core::WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  if (enable_ca) cfg.chains.enable("synthetic");
  return cfg;
}

TEST(PlanReuse, ChainEpochsAreAllocationFreeAfterWarmup) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  core::World w(std::move(prob.mg.mesh), hotpath_config(6, true));
  auto epochs = [&](int n) {
    w.run([&](core::Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      for (int t = 0; t < n; ++t)
        apps::mgcfd::run_synthetic_chain(rt, h, 3);
    });
  };
  epochs(16);  // warm-up: builds the analysis and both stale-mask
               // exchanges, then lets staging capacities circulate
               // between neighbour pools until every rank's pool covers
               // its send sizes (zero-copy sends hand buffers away, so
               // capacities converge over a few epochs, not instantly)
  w.clear_metrics();
  epochs(4);  // steady state
  const core::LoopMetrics m = w.chain_metrics().at("synthetic");
  EXPECT_EQ(m.calls, 4);  // cross-rank merge keeps per-rank call count
  EXPECT_EQ(m.plan_builds, 0) << "steady-state chain rebuilt its plan";
  EXPECT_EQ(m.staging_allocs, 0)
      << "steady-state chain pack/unpack allocated";
  EXPECT_GT(m.msgs, 0);  // the exchange still actually happens
}

TEST(PlanReuse, Op2LoopsAreAllocationFreeAfterWarmup) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  core::World w(std::move(prob.mg.mesh), hotpath_config(5, false));
  auto epochs = [&](int n) {
    w.run([&](core::Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      for (int t = 0; t < n; ++t)
        apps::mgcfd::run_synthetic_chain(rt, h, 3);
    });
  };
  epochs(2);
  w.clear_metrics();
  epochs(3);
  for (const auto& [name, m] : w.loop_metrics()) {
    EXPECT_EQ(m.plan_builds, 0) << name;
    EXPECT_EQ(m.staging_allocs, 0) << name;
  }
}

TEST(PlanReuse, BatchedDispatchUsesOneRegionPerPhase) {
  // With batching on, a direct loop over N owned elements must issue O(1)
  // region calls, not O(N).
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(1200, 1);
  core::World w(std::move(prob.mg.mesh), hotpath_config(4, false));
  w.run([&](core::Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, 1);
  });
  for (const auto& [name, m] : w.loop_metrics()) {
    // core + boundary (+ exec halo for indirect-write loops) per rank:
    // at most 3 regions per call per rank. dispatch_regions sums over
    // the 4 ranks; calls is the per-rank count (cross-rank max).
    EXPECT_LE(m.dispatch_regions, 3 * 4 * m.calls) << name;
    EXPECT_GE(m.dispatch_regions, m.calls) << name;
  }
}

}  // namespace
}  // namespace op2ca
