// Analytic model tests: Eqs (1)-(3) arithmetic, machine presets,
// component extraction consistency with the executors, and the model's
// qualitative predictions (CA wins grow with scale and loop count).
#include <gtest/gtest.h>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/model/calibrate.hpp"
#include "op2ca/model/components.hpp"
#include <set>

#include "op2ca/model/machine.hpp"
#include "op2ca/model/perf_model.hpp"

namespace op2ca::model {
namespace {

TEST(Machines, PresetsAreSane) {
  const Machine a = archer2();
  EXPECT_EQ(a.ranks_per_node, 128);
  EXPECT_FALSE(a.is_gpu);
  EXPECT_GT(a.net.bandwidth_Bps, 1e9);

  const Machine c = cirrus_gpu();
  EXPECT_EQ(c.ranks_per_node, 4);
  EXPECT_TRUE(c.is_gpu);
  // Staged copies inflate the GPU effective latency (Lambda > L).
  EXPECT_GT(c.effective_latency(), a.effective_latency());
  // One GPU rank outruns one CPU core.
  EXPECT_LT(c.compute_scale, a.compute_scale);

  EXPECT_EQ(machine_by_name("archer2").name, "archer2");
  EXPECT_EQ(machine_by_name("cirrus").name, "cirrus");
  EXPECT_THROW(machine_by_name("summit"), Error);
}

TEST(PerfModel, Equation1Arithmetic) {
  Machine m = archer2();
  m.net.latency_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;

  LoopTerms t;
  t.g = 1e-8;
  t.core_iters = 1000;  // compute = 1e-5 s
  t.halo_iters = 100;   // post-wait compute = 1e-6 s
  t.d = 2;
  t.p = 3;
  t.m1 = 1000;  // per-message time = 1e-6 + 1e-6 = 2e-6 s
  t.msgs_per_neighbor = 2 * t.d;  // both halo classes populated
  // comm = 2*2*3*2e-6 = 2.4e-5 > compute 1e-5 => comm-bound.
  EXPECT_NEAR(t_op2_loop(m, t), 2.4e-5 + 1e-6, 1e-12);

  t.core_iters = 10000;  // compute = 1e-4 > comm => compute-bound.
  EXPECT_NEAR(t_op2_loop(m, t), 1e-4 + 1e-6, 1e-12);
}

TEST(PerfModel, LocalityFactorScalesComputeOnly) {
  Machine m = archer2();
  m.net.latency_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;

  LoopTerms t;
  t.g = 1e-8;
  t.core_iters = 10000;  // compute = 1e-4 s, compute-bound
  t.halo_iters = 100;
  t.d = 2;
  t.p = 3;
  t.m1 = 1000;
  t.msgs_per_neighbor = 2 * t.d;
  const double base = t_op2_loop(m, t);

  // Reordering halves the effective memory-bound iteration cost; the
  // communication term moves no fewer bytes and must not change.
  m.locality_factor = 0.5;
  EXPECT_NEAR(t_op2_loop(m, t), 0.5e-4 + 0.5e-6, 1e-12);
  EXPECT_LT(t_op2_loop(m, t), base);

  // Comm-bound loops clamp at the unchanged communication time.
  t.core_iters = 100;  // compute = 5e-7 even at factor 1
  m.locality_factor = 1.0;
  const double comm_bound = t_op2_loop(m, t);
  m.locality_factor = 0.5;
  EXPECT_NEAR(t_op2_loop(m, t), comm_bound - 0.5e-6, 1e-12);
}

TEST(PerfModel, Equation3UsesGroupedMessage) {
  Machine m = archer2();
  m.net.latency_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;
  m.net.pack_bandwidth_Bps = 1e10;

  ChainTerms c;
  LoopTerms l;
  l.g = 1e-8;
  l.core_iters = 100;
  l.halo_iters = 50;
  c.loops = {l, l};
  c.p = 4;
  c.m_r = 5000;
  // c is the receiver-side unpack of the grouped buffer (the only
  // staging cost the baseline does not also pay).
  const double pack = 5000 / 1e10;
  const double comm = 4 * (1e-6 + 5000 / 1e9 + pack);
  const double core = 2 * 1e-8 * 100;
  const double halo = 2 * 1e-8 * 50;
  EXPECT_NEAR(t_ca_chain(m, c), std::max(core, comm) + halo, 1e-12);
}

TEST(PerfModel, GainPercent) {
  EXPECT_DOUBLE_EQ(gain_percent(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(gain_percent(1.0, 2.0), -100.0);
  EXPECT_DOUBLE_EQ(gain_percent(0.0, 1.0), 0.0);
}

class SyntheticComponents : public ::testing::Test {
protected:
  ChainComponents extract(int nranks, int nchains, int depth = 2) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(4000, 1);
    const core::ChainSpec spec =
        apps::mgcfd::synthetic_chain_spec(prob, nchains);
    const core::ChainAnalysis an = inspect_chain(prob.mg.mesh, spec);
    const partition::Partition part = partition::partition_mesh(
        prob.mg.mesh, nranks, partition::Kind::KWay,
        *prob.mg.mesh.find_set("nodes_l0"));
    halo::HaloPlanOptions opts;
    opts.depth = depth;
    opts.build_local_maps = true;  // the extractor runs the sparse-tiling slice
    const halo::HaloPlan plan =
        halo::build_halo_plan(prob.mg.mesh, part, opts);
    // Steady state: spres is perturbed outside the chain each timestep.
    const std::set<mesh::dat_id> stale =
        steady_state_stale(spec, {prob.spres});
    return extract_components(prob.mg.mesh, plan, spec, an, &stale);
  }
};

TEST_F(SyntheticComponents, Op2CommGrowsWithLoopCountCaDoesNot) {
  // Table 2's central observation: baseline bytes scale with the loop
  // count, the grouped message stays constant.
  const ChainComponents c2 = extract(8, 1);
  const ChainComponents c8 = extract(8, 4);
  EXPECT_GT(c8.op2_comm_bytes, 2 * c2.op2_comm_bytes);
  EXPECT_EQ(c8.ca_comm_bytes, c2.ca_comm_bytes);
}

TEST_F(SyntheticComponents, CaCoreSmallerHaloBigger) {
  const ChainComponents c = extract(8, 4);
  EXPECT_LT(c.ca_core, c.op2_core);
  EXPECT_GT(c.ca_halo, c.op2_halo);
  EXPECT_GT(c.comp_increase_pct(), 0.0);
  EXPECT_GT(c.comm_reduction_pct(), 0.0);
}

TEST_F(SyntheticComponents, ModelPredictsCaWinAtScaleForLongChains) {
  // With many small partitions and a long chain, the model must favour
  // CA (the Fig 10 trend); at tiny rank counts with short chains it
  // favours the baseline.
  const Machine mach = archer2();
  auto predict = [&](int nranks, int nchains) {
    ChainComponents c = extract(nranks, nchains);
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(4000, 1);
    const core::ChainSpec spec =
        apps::mgcfd::synthetic_chain_spec(prob, nchains);
    std::map<std::string, double> g{{"synth_update", 2e-8},
                                    {"synth_edge_flux", 4e-8}};
    apply_kernel_costs(spec, g, mach.compute_scale, &c);
    return std::make_pair(t_op2_chain(mach, c.op2_terms),
                          t_ca_chain(mach, c.ca_terms));
  };
  const auto [op2_big, ca_big] = predict(48, 16);
  EXPECT_LT(ca_big, op2_big);
}

TEST_F(SyntheticComponents, ComponentsMatchExecutorMetrics) {
  // The extractor's iteration counts must equal what the real executors
  // report (same plan, same analysis, steady-state staleness).
  const int nranks = 6, nchains = 3;
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(4000, 1);
  const core::ChainSpec spec =
      apps::mgcfd::synthetic_chain_spec(prob, nchains);
  const core::ChainAnalysis an = inspect_chain(prob.mg.mesh, spec);
  const std::set<mesh::dat_id> stale =
      steady_state_stale(spec, {prob.spres});

  core::WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.chains.enable("synthetic");
  core::World w(std::move(prob.mg.mesh), cfg);
  const ChainComponents comps =
      extract_components(w.mesh(), w.plan(), spec, an, &stale);

  // Two timesteps: the second chain execution runs at steady state
  // (sres dirty from the first), matching the extractor's assumption.
  w.run([&](core::Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    apps::mgcfd::run_synthetic_chain(rt, h, nchains);
    apps::mgcfd::run_synthetic_chain(rt, h, nchains);
  });
  const auto metrics = w.chain_metrics().at("synthetic");
  // Executor sums over ranks and the two calls; extractor takes
  // per-rank per-call maxima — totals must bracket.
  EXPECT_LE(comps.ca_core, metrics.core_iters);
  EXPECT_GE(comps.ca_core * nranks * 2, metrics.core_iters);
  EXPECT_LE(comps.ca_halo, metrics.halo_iters);
  EXPECT_GE(comps.ca_halo * nranks * 2, metrics.halo_iters);
  // Grouped message: the largest single message the executor sent must
  // equal the extractor's m^r.
  EXPECT_EQ(comps.ca_terms.m_r, metrics.max_msg_bytes);
}

TEST(HydraComponents, Table5Signs) {
  // Qualitative Table 5 reproduction: jacob groups messages with zero
  // computation increase; vflux has ~zero byte reduction; gradl
  // increases communication (negative reduction, the deeper qp/ql
  // packing of Eq 4) and computation.
  apps::hydra::Problem prob = apps::hydra::build_problem(6000);
  const auto specs = apps::hydra::chain_specs(prob);
  const partition::Partition part = partition::partition_mesh(
      prob.an.mesh, 16, partition::Kind::RIB, prob.an.nodes);
  halo::HaloPlanOptions opts;
  opts.depth = 2;
  opts.build_local_maps = true;
  const halo::HaloPlan plan =
      halo::build_halo_plan(prob.an.mesh, part, opts);

  // Steady state: the rk_update loop re-dirties the state dats between
  // iterations.
  const std::set<mesh::dat_id> rk_written{
      prob.qo, prob.qp, prob.ql, prob.qrg, prob.qmu,
      prob.vol, prob.xp, prob.jacp, prob.jaca, prob.jacb};
  auto extract = [&](const char* name) {
    const core::ChainSpec& spec = specs.at(name);
    const auto stale = steady_state_stale(spec, rk_written);
    return extract_components(prob.an.mesh, plan, spec,
                              inspect_chain(prob.an.mesh, spec), &stale);
  };

  // "No computation increase" rows: the CA side may come out slightly
  // BELOW the baseline because the chain-filtered sparse-tiling slice
  // skips exec-halo iterations the app-global OP2 halo executes
  // needlessly (elements reachable only via maps the chain never uses).
  const ChainComponents jacob = extract("jacob");
  EXPECT_NEAR(jacob.comm_reduction_pct(), 0.0, 10.0);
  EXPECT_LE(jacob.comp_increase_pct(), 0.5);
  EXPECT_GE(jacob.comp_increase_pct(), -30.0);

  const ChainComponents vflux = extract("vflux");
  EXPECT_NEAR(vflux.comm_reduction_pct(), 0.0, 10.0);
  EXPECT_LE(vflux.comp_increase_pct(), 0.5);
  EXPECT_GE(vflux.comp_increase_pct(), -30.0);

  const ChainComponents gradl = extract("gradl");
  EXPECT_LT(gradl.comm_reduction_pct(), 0.0);
  EXPECT_GT(gradl.comp_increase_pct(), 0.0);

  // The multi-layer chains shrink CA cores and grow halo work.
  const ChainComponents period = extract("period");
  EXPECT_LE(period.ca_core, period.op2_core);
  EXPECT_GT(period.ca_halo, period.op2_halo);
}

TEST_F(SyntheticComponents, GpuGainsExceedCpuGains) {
  // Section 4.1.3 / 4.2.2: CA gains on the GPU cluster exceed the CPU
  // cluster's at the same configuration (per-rank compute is ~60x
  // faster, so every configuration is communication-bound and the
  // message-count reduction dominates).
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(4000, 1);
  const core::ChainSpec spec =
      apps::mgcfd::synthetic_chain_spec(prob, 8);
  std::map<std::string, double> g{{"synth_update", 2e-8},
                                  {"synth_edge_flux", 4e-8}};
  auto gain_on = [&](const Machine& mach) {
    ChainComponents c = extract(16, 8);
    apply_kernel_costs(spec, g, mach.compute_scale, &c);
    return gain_percent(t_op2_chain(mach, c.op2_terms),
                        t_ca_chain(mach, c.ca_terms));
  };
  const double cpu = gain_on(archer2());
  const double gpu = gain_on(cirrus_gpu());
  EXPECT_GT(gpu, cpu);
  EXPECT_GT(gpu, 0.0);  // GPU gains appear even at modest scale
}

TEST(Calibration, MeasuresPositiveCosts) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(2000, 1);
  const auto g = calibrate_loop_costs(
      std::move(prob.mg.mesh), [&](core::Runtime& rt) {
        const auto h = apps::mgcfd::resolve_handles(rt, prob);
        apps::mgcfd::run_synthetic_chain(rt, h, 2);
      });
  ASSERT_TRUE(g.count("synth_update"));
  ASSERT_TRUE(g.count("synth_edge_flux"));
  EXPECT_GT(g.at("synth_update"), 0.0);
  EXPECT_LT(g.at("synth_update"), 1e-3);  // sub-millisecond per iteration
}

}  // namespace
}  // namespace op2ca::model
