// Unit tests for the simulated message-passing substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "op2ca/util/rng.hpp"

#include "op2ca/comm/comm.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::sim {
namespace {

op2ca::ByteBuf bytes_of(const std::string& s) {
  op2ca::ByteBuf v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(const op2ca::ByteBuf& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Runs fn(rank) on nranks threads.
void spmd(Transport& t, int nranks, const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  for (rank_t r = 0; r < nranks; ++r)
    threads.emplace_back([&t, r, &fn] {
      Comm c(t, r);
      fn(c);
    });
  for (auto& th : threads) th.join();
}

TEST(Transport, PingPong) {
  Transport t(2);
  spmd(t, 2, [](Comm& c) {
    if (c.rank() == 0) {
      const auto payload = bytes_of("hello");
      Request s = c.isend(1, 7, payload);
      c.wait(s);
      op2ca::ByteBuf buf;
      Request r = c.irecv(1, 8, &buf);
      c.wait(r);
      EXPECT_EQ(string_of(buf), "world");
    } else {
      op2ca::ByteBuf buf;
      Request r = c.irecv(0, 7, &buf);
      c.wait(r);
      EXPECT_EQ(string_of(buf), "hello");
      const auto payload = bytes_of("world");
      Request s = c.isend(0, 8, payload);
      c.wait(s);
    }
  });
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(Transport, FifoPerSourceAndTag) {
  Transport t(2);
  spmd(t, 2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const auto payload = bytes_of("msg" + std::to_string(i));
        Request s = c.isend(1, 3, payload);
        c.wait(s);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        op2ca::ByteBuf buf;
        Request r = c.irecv(0, 3, &buf);
        c.wait(r);
        EXPECT_EQ(string_of(buf), "msg" + std::to_string(i));
      }
    }
  });
}

TEST(Transport, TagsMatchIndependently) {
  Transport t(2);
  spmd(t, 2, [](Comm& c) {
    if (c.rank() == 0) {
      Request a = c.isend(1, 1, bytes_of("tag1"));
      Request b = c.isend(1, 2, bytes_of("tag2"));
      c.wait(a);
      c.wait(b);
    } else {
      // Receive in the opposite order to the sends.
      op2ca::ByteBuf buf2, buf1;
      Request r2 = c.irecv(0, 2, &buf2);
      c.wait(r2);
      Request r1 = c.irecv(0, 1, &buf1);
      c.wait(r1);
      EXPECT_EQ(string_of(buf1), "tag1");
      EXPECT_EQ(string_of(buf2), "tag2");
    }
  });
}

TEST(Transport, SenderMayReuseBufferAfterIsend) {
  Transport t(2);
  spmd(t, 2, [](Comm& c) {
    if (c.rank() == 0) {
      auto payload = bytes_of("first");
      Request s = c.isend(1, 0, payload);
      std::memcpy(payload.data(), "XXXXX", 5);  // mutate after isend
      c.wait(s);
    } else {
      op2ca::ByteBuf buf;
      Request r = c.irecv(0, 0, &buf);
      c.wait(r);
      EXPECT_EQ(string_of(buf), "first");
    }
  });
}

TEST(Transport, BarrierSynchronizes) {
  constexpr int kRanks = 8;
  Transport t(kRanks);
  std::atomic<int> before{0}, after{0};
  spmd(t, kRanks, [&](Comm& c) {
    ++before;
    c.barrier();
    EXPECT_EQ(before.load(), kRanks);
    ++after;
    c.barrier();
    EXPECT_EQ(after.load(), kRanks);
  });
}

TEST(Collectives, AllreduceSumAndMax) {
  constexpr int kRanks = 5;
  Transport t(kRanks);
  spmd(t, kRanks, [](Comm& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 15.0);
    const std::int64_t mx =
        c.allreduce_max(static_cast<std::int64_t>(c.rank() * 10));
    EXPECT_EQ(mx, 40);
  });
}

TEST(Collectives, Allgather) {
  constexpr int kRanks = 4;
  Transport t(kRanks);
  spmd(t, kRanks, [](Comm& c) {
    const auto all = c.allgather(static_cast<std::int64_t>(c.rank() * 2));
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], 2 * i);
  });
}

TEST(Collectives, SingleRankIsIdentity) {
  Transport t(1);
  Comm c(t, 0);
  EXPECT_DOUBLE_EQ(c.allreduce_sum(3.5), 3.5);
  EXPECT_EQ(c.allgather(std::int64_t{9}).at(0), 9);
}

TEST(CommStats, CountsMessagesAndNeighbors) {
  Transport t(3);
  spmd(t, 3, [](Comm& c) {
    if (c.rank() == 0) {
      Request a = c.isend(1, 0, bytes_of("x"));
      Request b = c.isend(2, 0, bytes_of("yy"));
      c.wait(a);
      c.wait(b);
      EXPECT_EQ(c.stats().msgs_sent, 2);
      EXPECT_EQ(c.stats().bytes_sent, 3);
      EXPECT_EQ(c.stats().send_neighbors.size(), 2u);
      EXPECT_EQ(c.stats().epoch_max_msg_bytes, 2);
      c.stats().reset_epoch();
      EXPECT_EQ(c.stats().epoch_msgs_sent, 0);
      EXPECT_EQ(c.stats().msgs_sent, 2);  // lifetime counters survive
    } else {
      op2ca::ByteBuf buf;
      Request r = c.irecv(0, 0, &buf);
      c.wait(r);
    }
  });
}

TEST(CostModel, MessageTime) {
  CostModel m;
  m.latency_s = 1e-6;
  m.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(m.message_time(1000), 1e-6 + 1e-6);
  EXPECT_GT(m.pack_time(1 << 20), 0.0);
}

TEST(Transport, PoisonUnblocksWaiters) {
  Transport t(2);
  std::thread waiter([&t] {
    Comm c(t, 0);
    op2ca::ByteBuf buf;
    Request r = c.irecv(1, 5, &buf);
    EXPECT_THROW(c.wait(r), Error);
  });
  // Give the waiter time to block, then poison.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.poison();
  waiter.join();
}

TEST(Transport, SelfSendRejected) {
  Transport t(2);
  Comm c(t, 0);
  EXPECT_THROW(c.isend(0, 0, std::span<const std::byte>{}), Error);
  op2ca::ByteBuf buf;
  EXPECT_THROW(c.irecv(0, 0, &buf), Error);
}

TEST(Transport, RandomTrafficStress) {
  // 8 ranks exchange randomized tagged messages in a deterministic
  // pattern; every payload must arrive intact and in per-(src,tag) order.
  constexpr int kRanks = 8;
  constexpr int kRounds = 200;
  Transport t(kRanks);
  std::atomic<int> errors{0};
  spmd(t, kRanks, [&](Comm& c) {
    Rng rng(1000 + static_cast<std::uint64_t>(c.rank()));
    // Each round: send to (rank+1+round)%n a message whose content is a
    // function of (sender, round); receive the matching message from the
    // rank for which WE are that destination.
    for (int round = 0; round < kRounds; ++round) {
      const rank_t dst =
          static_cast<rank_t>((c.rank() + 1 + round) % kRanks);
      const rank_t src = static_cast<rank_t>(
          (c.rank() - 1 - round % kRanks + 2 * kRanks) % kRanks);
      // Rounds where everyone would self-send are skipped symmetrically.
      if (dst == c.rank()) {
        EXPECT_EQ(src, c.rank());
        continue;
      }
      const std::uint64_t value =
          (static_cast<std::uint64_t>(c.rank()) << 32) |
          static_cast<std::uint64_t>(round);
      op2ca::ByteBuf payload(sizeof value);
      std::memcpy(payload.data(), &value, sizeof value);
      Request s = c.isend(dst, round % 5, payload);
      c.wait(s);
      op2ca::ByteBuf buf;
      Request r = c.irecv(src, round % 5, &buf);
      c.wait(r);
      std::uint64_t got = 0;
      std::memcpy(&got, buf.data(), sizeof got);
      const std::uint64_t expect =
          (static_cast<std::uint64_t>(src) << 32) |
          static_cast<std::uint64_t>(round);
      if (got != expect) ++errors;
      (void)rng;
    }
  });
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(Collectives, ManySequentialReductionsStayConsistent) {
  constexpr int kRanks = 6;
  Transport t(kRanks);
  spmd(t, kRanks, [](Comm& c) {
    double acc = 0.0;
    for (int i = 1; i <= 50; ++i) {
      acc = c.allreduce_sum(static_cast<double>(c.rank()) + acc / 100.0);
      const auto all = c.allgather(static_cast<std::int64_t>(i));
      for (std::int64_t v : all) EXPECT_EQ(v, i);
    }
    EXPECT_TRUE(std::isfinite(acc));
  });
}

}  // namespace
}  // namespace op2ca::sim
