// Transport-layer tests: stripe geometry and wire format, out-of-order
// reassembly, persistent-channel negotiation, tier accounting, the
// hierarchical cost model, and backend selection (sim / mpi-stub).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "op2ca/comm/channel.hpp"
#include "op2ca/comm/comm.hpp"
#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::sim {
namespace {

ByteBuf pattern_bytes(std::size_t n, unsigned seed = 1) {
  ByteBuf b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
  return b;
}

/// Runs fn(comm, rank) on one thread per rank, all sharing `t`. Rethrows
/// the first rank failure after poisoning the fabric so peers unwind.
template <typename Fn>
void spmd(TransportBackend& t, int nranks, const CostModel* cost,
          const TransportConfig* tcfg, Fn fn) {
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex err_mu;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm c(t, r, cost, tcfg);
        fn(c, r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        t.poison();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

// ---- Stripe geometry. -----------------------------------------------------

TEST(StripeBounds, CoversEveryByteContiguously) {
  for (std::size_t bytes : {1u, 7u, 8u, 63u, 64u, 1000u, 4096u, 100000u}) {
    for (int rails : {1, 2, 3, 4, 8}) {
      auto slots = stripe_bounds(bytes, rails);
      ASSERT_FALSE(slots.empty());
      std::size_t expect_off = 0;
      for (const StripeSlot& s : slots) {
        EXPECT_EQ(s.offset, expect_off);
        EXPECT_GT(s.bytes, 0u);
        expect_off += s.bytes;
      }
      EXPECT_EQ(expect_off, bytes);
    }
  }
}

TEST(StripeBounds, BoundariesAreWordAligned) {
  // Dat payloads are doubles: every interior boundary must sit on an
  // 8-byte multiple so no stripe splits a value.
  auto slots = stripe_bounds(1000, 4);
  ASSERT_EQ(slots.size(), 4u);
  for (std::size_t i = 1; i < slots.size(); ++i)
    EXPECT_EQ(slots[i].offset % 8, 0u);
}

TEST(StripeBounds, UnevenSplitDistributesRemainder) {
  // 100 words over 3 rails: 34/33/33 words.
  auto slots = stripe_bounds(800, 3);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].bytes, 34u * 8);
  EXPECT_EQ(slots[1].bytes, 33u * 8);
  EXPECT_EQ(slots[2].bytes, 33u * 8);
}

TEST(StripeBounds, MoreRailsThanWordsYieldsFewerStripes) {
  // 3 words cannot feed 8 rails; every stripe stays non-empty.
  auto slots = stripe_bounds(24, 8);
  EXPECT_EQ(slots.size(), 3u);
  // A sub-word message cannot split at all.
  slots = stripe_bounds(5, 4);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].bytes, 5u);
}

TEST(StripeBounds, DegenerateCases) {
  auto one = stripe_bounds(4096, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].offset, 0u);
  EXPECT_EQ(one[0].bytes, 4096u);

  auto empty = stripe_bounds(0, 4);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].bytes, 0u);
}

// ---- Wire format. ---------------------------------------------------------

TEST(StripeWire, HeaderRoundtrip) {
  StripeHeader h;
  h.magic = kStripeMagic;
  h.rail = 2;
  h.rails = 4;
  h.total = 123456789;
  h.offset = 987654;
  h.plan_hash = 0xdeadbeefcafef00dULL;
  std::byte wire[kStripeHeaderBytes + 16] = {};
  encode_stripe_header(h, wire);
  StripeHeader back = decode_stripe_header(wire, sizeof(wire));
  EXPECT_EQ(back.magic, kStripeMagic);
  EXPECT_EQ(back.rail, 2);
  EXPECT_EQ(back.rails, 4);
  EXPECT_EQ(back.total, h.total);
  EXPECT_EQ(back.offset, h.offset);
  EXPECT_EQ(back.plan_hash, h.plan_hash);
}

TEST(StripeWire, HeaderRejectsShortOrForeignPayload) {
  std::byte wire[kStripeHeaderBytes] = {};
  StripeHeader h;
  h.magic = kStripeMagic;
  encode_stripe_header(h, wire);
  // Shorter than the header: truncated on the wire.
  EXPECT_THROW(decode_stripe_header(wire, kStripeHeaderBytes - 1), Error);
  // Wrong magic: a foreign message landed on a stripe tag.
  wire[0] = static_cast<std::byte>(0x00);
  wire[1] = static_cast<std::byte>(0x00);
  EXPECT_THROW(decode_stripe_header(wire, kStripeHeaderBytes), Error);
}

TEST(StripeWire, HelloRoundtrip) {
  ChannelHello h;
  h.magic = kHelloMagic;
  h.id = 17;
  h.bytes = 65536;
  h.rails = 4;
  h.plan_hash = 0x0123456789abcdefULL;
  std::byte wire[kHelloBytes] = {};
  encode_hello(h, wire);
  ChannelHello back = decode_hello(wire, sizeof(wire));
  EXPECT_EQ(back.id, 17);
  EXPECT_EQ(back.bytes, 65536u);
  EXPECT_EQ(back.rails, 4);
  EXPECT_EQ(back.plan_hash, h.plan_hash);
  EXPECT_THROW(decode_hello(wire, kHelloBytes - 1), Error);
}

// ---- Striped exchange end-to-end. -----------------------------------------

TEST(Striping, LargeMessageStripesAndReassembles) {
  Transport t(2);
  TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 256;
  const std::size_t kBytes = 10000;
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    if (r == 0) {
      auto req = c.stripe_isend(1, 42, pattern_bytes(kBytes));
      c.wait(req);
      EXPECT_EQ(c.stats().stripes_sent, 4);
      EXPECT_EQ(c.stats().msgs_sent, 4);
      // The logical payload moved (into the stripe pool), not copied.
      EXPECT_EQ(c.stats().sends_moved, 1);
    } else {
      ByteBuf out;
      auto req = c.stripe_irecv(0, 42, &out, kBytes);
      c.wait(req);
      ByteBuf expect = pattern_bytes(kBytes);
      ASSERT_EQ(out.size(), expect.size());
      EXPECT_EQ(out, expect);
    }
  });
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(Striping, ReassemblesRailsArrivingOutOfOrder) {
  // Hand-craft the stripes and post them in REVERSE rail order; the
  // receiver must place each by its header offset, not arrival order.
  Transport t(2);
  TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 64;
  const std::size_t kBytes = 1000;
  ByteBuf payload = pattern_bytes(kBytes, 9);
  auto slots = stripe_bounds(kBytes, tc.rails);
  ASSERT_EQ(slots.size(), 4u);
  for (int r = static_cast<int>(slots.size()) - 1; r >= 0; --r) {
    StripeHeader h;
    h.magic = kStripeMagic;
    h.rail = static_cast<std::uint16_t>(r);
    h.rails = static_cast<std::uint16_t>(slots.size());
    h.total = kBytes;
    h.offset = slots[r].offset;
    h.plan_hash = 0;
    ByteBuf wire(kStripeHeaderBytes + slots[r].bytes);
    encode_stripe_header(h, wire.data());
    std::memcpy(wire.data() + kStripeHeaderBytes,
                payload.data() + slots[r].offset, slots[r].bytes);
    t.post(Message{0, 1, 7, std::move(wire)});
  }
  Comm c(t, 1, nullptr, &tc);
  ByteBuf out;
  auto req = c.stripe_irecv(0, 7, &out, kBytes);
  c.wait(req);
  EXPECT_EQ(out, payload);
}

TEST(Striping, BelowThresholdIsOnePlainMessage) {
  Transport t(2);
  TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 1 << 16;
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    if (r == 0) {
      auto req = c.stripe_isend(1, 3, pattern_bytes(512));
      c.wait(req);
      EXPECT_EQ(c.stats().msgs_sent, 1);
      EXPECT_EQ(c.stats().stripes_sent, 0);
    } else {
      ByteBuf out;
      auto req = c.stripe_irecv(0, 3, &out, 512);
      c.wait(req);
      EXPECT_EQ(out, pattern_bytes(512));
    }
  });
}

TEST(Striping, OneRailIsBitwiseLegacyPath) {
  // rails == 1: stripe_isend must BE isend — one unframed wire message a
  // plain irecv can match.
  Transport t(2);
  TransportConfig tc;
  tc.rails = 1;
  tc.stripe_min_bytes = 1;  // every size "qualifies"; rails gates it off.
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    if (r == 0) {
      auto req = c.stripe_isend(1, 5, pattern_bytes(4096));
      c.wait(req);
      EXPECT_EQ(c.stats().stripes_sent, 0);
    } else {
      ByteBuf out;
      auto req = c.irecv(0, 5, &out);  // legacy receive matches it.
      c.wait(req);
      EXPECT_EQ(out, pattern_bytes(4096));
    }
  });
}

// ---- Persistent channels. -------------------------------------------------

TEST(Channels, NegotiateThenTransferSingleRail) {
  Transport t(2);
  TransportConfig tc;
  tc.rails = 1;
  tc.persistent = true;
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    ChannelSpec spec;
    spec.peer = 1 - r;
    spec.sender = (r == 0);
    spec.bytes = 640;
    spec.plan_hash = 0x5eedULL;
    auto chans = c.open_channels(std::span<const ChannelSpec>(&spec, 1));
    ASSERT_EQ(chans.size(), 1u);
    ASSERT_TRUE(chans[0].valid());
    EXPECT_EQ(chans[0].rails(), 1);
    EXPECT_EQ(c.stats().channels_opened, 1);
    // Reuse the channel across epochs, as the executors do.
    for (int epoch = 0; epoch < 3; ++epoch) {
      if (r == 0) {
        auto req = c.channel_isend(chans[0], pattern_bytes(640, epoch));
        c.wait(req);
      } else {
        ByteBuf out;
        auto req = c.channel_irecv(chans[0], &out);
        c.wait(req);
        EXPECT_EQ(out, pattern_bytes(640, epoch));
      }
    }
    if (r == 0) {
      EXPECT_EQ(c.stats().channel_sends, 3);
    }
  });
}

TEST(Channels, StripedChannelTransfer) {
  Transport t(2);
  TransportConfig tc;
  tc.rails = 4;
  tc.stripe_min_bytes = 256;
  tc.persistent = true;
  const std::size_t kBytes = 8192;
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    ChannelSpec spec;
    spec.peer = 1 - r;
    spec.sender = (r == 0);
    spec.bytes = kBytes;
    spec.plan_hash = 77;
    auto chans = c.open_channels(std::span<const ChannelSpec>(&spec, 1));
    ASSERT_EQ(chans.size(), 1u);
    EXPECT_EQ(chans[0].rails(), 4);
    if (r == 0) {
      auto req = c.channel_isend(chans[0], pattern_bytes(kBytes, 3));
      c.wait(req);
      EXPECT_EQ(c.stats().stripes_sent, 4);
    } else {
      ByteBuf out;
      auto req = c.channel_irecv(chans[0], &out);
      c.wait(req);
      EXPECT_EQ(out, pattern_bytes(kBytes, 3));
    }
  });
}

TEST(Channels, BidirectionalPairsKeepIndependentIds) {
  // Each ordered (src -> dst) pair numbers its own channels: a symmetric
  // exchange (both ranks send AND receive) must pair k-th with k-th.
  Transport t(2);
  TransportConfig tc;
  tc.rails = 1;
  tc.persistent = true;
  spmd(t, 2, nullptr, &tc, [&](Comm& c, int r) {
    // Rank r sends 256 + 128r bytes and receives the peer's size back.
    const std::size_t send_bytes = 256 + 128 * static_cast<std::size_t>(r);
    const std::size_t recv_bytes =
        256 + 128 * static_cast<std::size_t>(1 - r);
    std::vector<ChannelSpec> specs(2);
    specs[0] = {1 - r, /*sender=*/true, send_bytes, 11};
    specs[1] = {1 - r, /*sender=*/false, recv_bytes, 11};
    auto chans = c.open_channels(specs);
    ASSERT_EQ(chans.size(), 2u);
    auto sreq = c.channel_isend(chans[0], pattern_bytes(send_bytes, r));
    ByteBuf out;
    auto rreq = c.channel_irecv(chans[1], &out);
    c.wait(rreq);
    c.wait(sreq);
    EXPECT_EQ(out, pattern_bytes(recv_bytes, 1 - r));
  });
}

TEST(Channels, StaleHashFailsLoudly) {
  // The two ends negotiated against different plan hashes: one side
  // rebuilt its exchange plan without renegotiating. Both must refuse.
  Transport t(2);
  TransportConfig tc;
  tc.rails = 1;
  tc.persistent = true;
  std::vector<std::string> errors(2);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm c(t, r, nullptr, &tc);
        ChannelSpec spec;
        spec.peer = 1 - r;
        spec.sender = (r == 0);
        spec.bytes = 256;
        spec.plan_hash = (r == 0) ? 0xAAAAULL : 0xBBBBULL;
        c.open_channels(std::span<const ChannelSpec>(&spec, 1));
      } catch (const std::exception& e) {
        errors[r] = e.what();
        t.poison();
      }
    });
  }
  for (auto& th : threads) th.join();
  // Both hellos were posted before either side validated, so at least
  // one rank (typically both) diagnoses the stale channel by name; no
  // rank may silently succeed.
  EXPECT_FALSE(errors[0].empty());
  EXPECT_FALSE(errors[1].empty());
  EXPECT_TRUE(errors[0].find("stale") != std::string::npos ||
              errors[1].find("stale") != std::string::npos)
      << errors[0] << " / " << errors[1];
}

// ---- Tier accounting. -----------------------------------------------------

TEST(Tiers, SendStatsSplitByMachineTier) {
  CostModel cm;
  cm.ranks_per_numa = 2;
  cm.ranks_per_node = 4;
  Transport t(8);
  Comm c(t, 0, &cm, nullptr);
  ByteBuf b = pattern_bytes(100);
  auto r1 = c.isend(1, 0, std::span<const std::byte>(b));  // same NUMA.
  auto r2 = c.isend(2, 0, std::span<const std::byte>(b));  // same node.
  auto r3 = c.isend(4, 0, std::span<const std::byte>(b));  // across nodes.
  c.wait(r1);
  c.wait(r2);
  c.wait(r3);
  const CommStats& s = c.stats();
  EXPECT_EQ(s.msgs_by_tier[static_cast<int>(Tier::Numa)], 1);
  EXPECT_EQ(s.msgs_by_tier[static_cast<int>(Tier::Node)], 1);
  EXPECT_EQ(s.msgs_by_tier[static_cast<int>(Tier::Net)], 1);
  EXPECT_EQ(s.bytes_by_tier[static_cast<int>(Tier::Numa)], 100);
  EXPECT_EQ(s.epoch_msgs_by_tier[static_cast<int>(Tier::Net)], 1);
}

// ---- Hierarchical cost model. ---------------------------------------------

TEST(CostModelTiers, TierOfUsesCheapestContainingTier) {
  CostModel cm;
  // Flat default: everything crosses the network.
  EXPECT_EQ(cm.tier_of(0, 1), Tier::Net);
  cm.ranks_per_numa = 2;
  cm.ranks_per_node = 4;
  EXPECT_EQ(cm.tier_of(0, 1), Tier::Numa);
  EXPECT_EQ(cm.tier_of(0, 2), Tier::Node);
  EXPECT_EQ(cm.tier_of(0, 4), Tier::Net);
  EXPECT_EQ(cm.tier_of(5, 6), Tier::Node);  // same node, NUMA domains 2/3.
  EXPECT_EQ(cm.tier_of(6, 7), Tier::Numa);
}

TEST(CostModelTiers, StripedTimeRoundsOverRails) {
  CostModel cm;
  cm.latency_s = 1e-6;
  cm.bandwidth_Bps = 1e9;
  cm.per_message_overhead_s = 2e-6;
  cm.net_rails = 4;
  const double kFixed = 1e-6 + 2e-6;
  // One stripe degenerates to message_time.
  EXPECT_DOUBLE_EQ(cm.striped_time(4000, 1, Tier::Net),
                   cm.message_time(4000, Tier::Net));
  // 4 stripes on 4 rails move concurrently: serialisation / 4.
  EXPECT_DOUBLE_EQ(cm.striped_time(4000, 4, Tier::Net),
                   kFixed + 1000.0 / 1e9);
  // 8 stripes on 4 rails: two rounds per rail, no gain over 4.
  EXPECT_DOUBLE_EQ(cm.striped_time(4000, 8, Tier::Net),
                   kFixed + 2.0 * 500.0 / 1e9);
  // Striping onto a single-rail tier buys nothing on the wire.
  cm.net_rails = 1;
  EXPECT_DOUBLE_EQ(cm.striped_time(4000, 4, Tier::Net),
                   kFixed + 4000.0 / 1e9);
}

TEST(CostModelTiers, ChannelTimeSwapsHostOverhead) {
  CostModel cm;
  cm.latency_s = 1e-6;
  cm.bandwidth_Bps = 1e9;
  cm.per_message_overhead_s = 4e-6;
  cm.channel_overhead_s = 5e-7;
  cm.net_rails = 2;
  EXPECT_DOUBLE_EQ(cm.channel_time(8000, 2, Tier::Net),
                   cm.striped_time(8000, 2, Tier::Net) - 4e-6 + 5e-7);
  // The pre-negotiated slot must beat the ad-hoc send.
  EXPECT_LT(cm.channel_time(8000, 2, Tier::Net),
            cm.striped_time(8000, 2, Tier::Net));
}

TEST(CostModelTiers, IntraNodeTiersAreCheaper) {
  CostModel cm;
  cm.ranks_per_numa = 2;
  cm.ranks_per_node = 4;
  EXPECT_LT(cm.message_time(4096, Tier::Numa),
            cm.message_time(4096, Tier::Node));
  EXPECT_LT(cm.message_time(4096, Tier::Node),
            cm.message_time(4096, Tier::Net));
}

// ---- Backend selection. ---------------------------------------------------

TEST(Backends, NamesRoundtrip) {
  EXPECT_STREQ(backend_name(BackendKind::Sim), "sim");
  EXPECT_STREQ(backend_name(BackendKind::Mpi), "mpi");
  EXPECT_EQ(backend_by_name("sim"), BackendKind::Sim);
  EXPECT_EQ(backend_by_name("mpi"), BackendKind::Mpi);
  EXPECT_THROW(backend_by_name("smoke-signals"), Error);
}

TEST(Backends, MakeBackendValidatesConfig) {
  TransportConfig tc;
  tc.rails = 0;
  EXPECT_THROW(make_backend(tc, 2), Error);
  tc.rails = kMaxRails + 1;
  EXPECT_THROW(make_backend(tc, 2), Error);
  tc.rails = 1;
  tc.stripe_timeout_s = 0.0;
  EXPECT_THROW(make_backend(tc, 2), Error);
  tc.stripe_timeout_s = 1.0;
  auto be = make_backend(tc, 2);
  EXPECT_STREQ(be->name(), "sim");
  EXPECT_EQ(be->size(), 2);
}

TEST(Backends, MpiStubCarriesFullProtocol) {
  if (MpiBackend::compiled_with_mpi())
    GTEST_SKIP() << "real MPI runs one process per rank; the multi-rank "
                    "thread harness only drives the stub";
  TransportConfig tc;
  tc.backend = BackendKind::Mpi;
  tc.rails = 4;
  tc.stripe_min_bytes = 256;
  auto be = make_backend(tc, 2);
  EXPECT_STREQ(be->name(), "mpi-stub");
  const std::size_t kBytes = 5000;
  spmd(*be, 2, nullptr, &tc, [&](Comm& c, int r) {
    // Collectives exercise the negative internal tags through the stub's
    // tag shift; the striped exchange exercises the header path.
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
    if (r == 0) {
      auto req = c.stripe_isend(1, 8, pattern_bytes(kBytes, 4));
      c.wait(req);
      EXPECT_EQ(c.stats().stripes_sent, 4);
    } else {
      ByteBuf out;
      auto req = c.stripe_irecv(0, 8, &out, kBytes);
      c.wait(req);
      EXPECT_EQ(out, pattern_bytes(kBytes, 4));
    }
    c.barrier();
  });
}

// ---- calibration-file loader (BENCH_calibration.json round-trip) ----

std::string calibration_json(const std::string& net_lat = "5e-6",
                             const std::string& net_bw = "10e9",
                             const std::string& net_rails = "2") {
  return std::string("{\n"
                     "  \"backend\": \"sim\", \"nranks\": 4, \"iters\": 16,\n"
                     "  \"tiers\": {\n"
                     "    \"numa\": {\"latency_s\": 5e-7, "
                     "\"bandwidth_Bps\": 4e10, \"rails\": 1},\n"
                     "    \"node\": {\"latency_s\": 1e-6, "
                     "\"bandwidth_Bps\": 2e10, \"rails\": 1},\n"
                     "    \"net\": {\"latency_s\": ") +
         net_lat + ", \"bandwidth_Bps\": " + net_bw +
         ", \"rails\": " + net_rails + "}\n  }\n}\n";
}

TEST(Calibration, ParsesBenchCalibrateSchema) {
  const Calibration cal = parse_calibration(calibration_json());
  EXPECT_EQ(cal.backend, "sim");
  EXPECT_EQ(cal.nranks, 4);
  EXPECT_DOUBLE_EQ(cal.tier(Tier::Numa).latency_s, 5e-7);
  EXPECT_DOUBLE_EQ(cal.tier(Tier::Node).bandwidth_Bps, 2e10);
  EXPECT_DOUBLE_EQ(cal.tier(Tier::Net).latency_s, 5e-6);
  EXPECT_EQ(cal.tier(Tier::Net).rails, 2);
  const TierParams node = TierParams::from_calibration(cal, Tier::Node);
  EXPECT_DOUBLE_EQ(node.latency_s, 1e-6);
}

TEST(Calibration, AppliedModelUsesMeasuredTiers) {
  const Calibration cal = parse_calibration(calibration_json());
  CostModel cm;
  cm.per_message_overhead_s = 4e-6;
  cm.channel_overhead_s = 1e-6;
  cm.pack_bandwidth_Bps = 21e9;
  apply_calibration(cal, &cm);
  // Net tier lands in the legacy flat fields every Eq (1)-(3) term reads.
  EXPECT_DOUBLE_EQ(cm.latency_s, 5e-6);
  EXPECT_DOUBLE_EQ(cm.bandwidth_Bps, 10e9);
  EXPECT_EQ(cm.net_rails, 2);
  EXPECT_DOUBLE_EQ(cm.numa.bandwidth_Bps, 4e10);
  EXPECT_DOUBLE_EQ(cm.node.latency_s, 1e-6);
  // Host-side overheads are not wire-measured and must survive.
  EXPECT_DOUBLE_EQ(cm.per_message_overhead_s, 4e-6);
  EXPECT_DOUBLE_EQ(cm.channel_overhead_s, 1e-6);
  EXPECT_DOUBLE_EQ(cm.pack_bandwidth_Bps, 21e9);
  EXPECT_NE(cm.name.find("calibrated(sim)"), std::string::npos);
}

TEST(Calibration, RejectsMissingTierOrField) {
  EXPECT_THROW(parse_calibration("{\"backend\": \"sim\", \"nranks\": 2}"),
               Error);
  // Drop the node tier.
  std::string text = calibration_json();
  text.replace(text.find("\"node\""), 6, "\"nope\"");
  EXPECT_THROW(parse_calibration(text), Error);
  // Drop a field inside one tier.
  text = calibration_json();
  text.replace(text.find("\"bandwidth_Bps\""), 15, "\"bandwidth_xxx\"");
  EXPECT_THROW(parse_calibration(text), Error);
}

TEST(Calibration, RejectsNonPositiveAndNonMonotoneTiers) {
  // Net bandwidth above the node tier: monotonicity violation.
  EXPECT_THROW(parse_calibration(calibration_json("5e-6", "3e10")), Error);
  // Net latency below the node tier.
  EXPECT_THROW(parse_calibration(calibration_json("5e-7", "10e9")), Error);
  // Zero rails.
  EXPECT_THROW(parse_calibration(calibration_json("5e-6", "10e9", "0")),
               Error);
  // Too-small world.
  std::string text = calibration_json();
  text.replace(text.find("\"nranks\": 4"), 11, "\"nranks\": 1");
  EXPECT_THROW(parse_calibration(text), Error);
}

TEST(Calibration, LoadReportsUnreadablePath) {
  EXPECT_THROW(load_calibration("/nonexistent/BENCH_calibration.json"),
               Error);
}

}  // namespace
}  // namespace op2ca::sim
