// Task-graph executor suite (WorldConfig::taskgraph).
//
// Part 1 — graph properties, brute-forced on random meshes: every pair of
// conflicting blocks (sharing a written target) is adjacent in the
// BlockGraph and therefore ordered by the colour orientation; adjacency
// is symmetric with no self edges; adjacent blocks never share a colour;
// the low->high colour orientation is acyclic (a Kahn drain covers every
// block); and every block carries a colour in [0, num_colours).
//
// Part 2 — schedule stress: the indirect-INC synthetic sweep runs 50+
// times across pool widths 1/2/4/8 with randomized per-task sleep jitter
// injected through ThreadPool::set_task_jitter. Because the DAG (not the
// schedule) orders every conflicting pair and INC order is fixed by the
// static colour order, every run must produce BIT-IDENTICAL dats — the
// determinism claim of the dependency-driven executor.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/colouring.hpp"
#include "op2ca/util/rng.hpp"
#include "op2ca/util/thread_pool.hpp"
#include "test_common.hpp"

namespace op2ca::core {
namespace {

// -- Part 1: block-graph properties. ------------------------------------

struct RandomIncidence {
  LIdxVec targets;
  mesh::ColourMapView view;
};

/// `n` elements with `arity` random targets each over `ntgt` nodes.
RandomIncidence random_incidence(lidx_t n, lidx_t ntgt, int arity,
                                 std::uint64_t seed) {
  RandomIncidence out;
  Rng rng(seed);
  out.targets.resize(static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(arity));
  for (auto& t : out.targets)
    t = static_cast<lidx_t>(rng.next_int(0, ntgt - 1));
  out.view.targets = out.targets.data();
  out.view.arity = arity;
  out.view.num_elements = n;
  out.view.num_targets = ntgt;
  return out;
}

/// Brute-force conflict relation: blocks b1 != b2 share a target.
std::set<std::pair<lidx_t, lidx_t>> brute_force_conflicts(
    const RandomIncidence& inc, lidx_t n, lidx_t block) {
  std::vector<std::vector<lidx_t>> by_target(
      static_cast<std::size_t>(inc.view.num_targets));
  for (lidx_t e = 0; e < n; ++e)
    for (int k = 0; k < inc.view.arity; ++k)
      by_target[static_cast<std::size_t>(
                    inc.targets[static_cast<std::size_t>(e) *
                                    static_cast<std::size_t>(inc.view.arity) +
                                static_cast<std::size_t>(k)])]
          .push_back(e / block);
  std::set<std::pair<lidx_t, lidx_t>> conflicts;
  for (const auto& blocks : by_target)
    for (lidx_t a : blocks)
      for (lidx_t b : blocks)
        if (a != b) conflicts.insert({a, b});
  return conflicts;
}

TEST(TaskGraphProperties, ConflictingPairsAreAdjacentAndOnlyThose) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const lidx_t n = 600, ntgt = 180, block = 16;
    const RandomIncidence inc = random_incidence(n, ntgt, 3, seed);
    const std::vector<mesh::ColourMapView> views{inc.view};
    const mesh::Colouring col = mesh::block_colouring(n, views, block);
    const mesh::BlockGraph g = mesh::block_conflict_graph(n, views, col);

    const auto conflicts = brute_force_conflicts(inc, n, block);
    std::set<std::pair<lidx_t, lidx_t>> adjacency;
    for (lidx_t b = 0; b < g.num_blocks; ++b)
      for (std::size_t r = g.adj_off[static_cast<std::size_t>(b)];
           r < g.adj_off[static_cast<std::size_t>(b) + 1]; ++r) {
        EXPECT_NE(g.adj[r], b) << "self edge at block " << b;
        adjacency.insert({b, g.adj[r]});
      }
    EXPECT_EQ(adjacency, conflicts) << "seed " << seed;
    // Symmetry is implied by equality with the (symmetric) brute force,
    // but assert it independently for a sharper failure message.
    for (const auto& [a, b] : adjacency)
      EXPECT_TRUE(adjacency.count({b, a})) << a << " <-> " << b;
  }
}

TEST(TaskGraphProperties, AdjacentBlocksNeverShareAColour) {
  const lidx_t n = 800, block = 32;
  const RandomIncidence inc = random_incidence(n, 200, 2, 5);
  const std::vector<mesh::ColourMapView> views{inc.view};
  const mesh::Colouring col = mesh::block_colouring(n, views, block);
  const mesh::BlockGraph g = mesh::block_conflict_graph(n, views, col);
  for (lidx_t b = 0; b < g.num_blocks; ++b) {
    const int c = g.colour[static_cast<std::size_t>(b)];
    EXPECT_GE(c, 0);
    EXPECT_LT(c, g.num_colours);
    for (std::size_t r = g.adj_off[static_cast<std::size_t>(b)];
         r < g.adj_off[static_cast<std::size_t>(b) + 1]; ++r)
      EXPECT_NE(c, g.colour[static_cast<std::size_t>(g.adj[r])])
          << "blocks " << b << " and " << g.adj[r];
  }
}

TEST(TaskGraphProperties, ColourOrientationIsAcyclicAndCoversAllBlocks) {
  // Orient every conflict edge low colour -> high colour (the executor's
  // dependency direction) and Kahn-drain: every block must be processed
  // exactly once — the graph the work-stealing pool runs has no cycle and
  // no unreachable (block, colour) chunk.
  for (const lidx_t block : {8, 64}) {
    const lidx_t n = 1000;
    const RandomIncidence inc = random_incidence(n, 240, 4, 11);
    const std::vector<mesh::ColourMapView> views{inc.view};
    const mesh::Colouring col = mesh::block_colouring(n, views, block);
    const mesh::BlockGraph g = mesh::block_conflict_graph(n, views, col);

    std::vector<int> indeg(static_cast<std::size_t>(g.num_blocks), 0);
    for (lidx_t b = 0; b < g.num_blocks; ++b)
      for (std::size_t r = g.adj_off[static_cast<std::size_t>(b)];
           r < g.adj_off[static_cast<std::size_t>(b) + 1]; ++r)
        if (g.colour[static_cast<std::size_t>(b)] <
            g.colour[static_cast<std::size_t>(g.adj[r])])
          ++indeg[static_cast<std::size_t>(g.adj[r])];
    std::vector<lidx_t> ready;
    for (lidx_t b = 0; b < g.num_blocks; ++b)
      if (indeg[static_cast<std::size_t>(b)] == 0) ready.push_back(b);
    lidx_t drained = 0;
    while (!ready.empty()) {
      const lidx_t b = ready.back();
      ready.pop_back();
      ++drained;
      for (std::size_t r = g.adj_off[static_cast<std::size_t>(b)];
           r < g.adj_off[static_cast<std::size_t>(b) + 1]; ++r)
        if (g.colour[static_cast<std::size_t>(b)] <
                g.colour[static_cast<std::size_t>(g.adj[r])] &&
            --indeg[static_cast<std::size_t>(g.adj[r])] == 0)
          ready.push_back(g.adj[r]);
    }
    EXPECT_EQ(drained, g.num_blocks) << "block " << block;
    EXPECT_EQ(static_cast<lidx_t>(g.colour.size()), g.num_blocks);
  }
}

// -- Part 2: schedule stress. -------------------------------------------

/// Installs randomized per-task sleep jitter for one scope. Sparse and
/// short (a few tens of microseconds) so 50+ runs stay fast while still
/// desynchronising the workers' deques every run differently.
struct JitterGuard {
  explicit JitterGuard(unsigned seed) {
    util::ThreadPool::set_task_jitter([seed](int task) {
      const unsigned h =
          (static_cast<unsigned>(task) * 2654435761u) ^ (seed * 40503u);
      if (h % 11 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(h % 60));
    });
  }
  ~JitterGuard() { util::ThreadPool::set_task_jitter(nullptr); }
};

struct SynthResult {
  std::vector<double> sres, sflux, spres;
};

void synth_loops(Runtime& rt, const apps::mgcfd::Handles& h, int pairs) {
  namespace k = apps::mgcfd::kernels;
  rt.par_loop("perturb", h.nodes0, k::synth_perturb,
              arg_dat(rt.dat("spres"), Access::RW));
  for (int c = 0; c < pairs; ++c) {
    rt.par_loop("u", h.edges0, k::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.par_loop("f", h.edges0, k::synth_edge_flux,
                arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                arg_dat(h.sres, 0, h.e2n0, Access::READ),
                arg_dat(h.sres, 1, h.e2n0, Access::READ),
                arg_dat(h.sewt, Access::READ));
  }
}

/// One full indirect-INC sweep under the task graph at `width` threads,
/// optionally returning the World for metrics inspection.
SynthResult run_taskgraph_sweep(int width, World** out_world = nullptr) {
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;
  cfg.threads_per_rank = width;
  cfg.taskgraph = true;
  cfg.taskgraph_block = 16;  // small blocks -> many tasks per epoch
  auto w = std::make_unique<World>(std::move(prob.mg.mesh), cfg);
  w->run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t) synth_loops(rt, h, 2);
  });
  SynthResult res{w->fetch_dat(sres), w->fetch_dat(sflux),
                  w->fetch_dat(spres)};
  if (out_world != nullptr) *out_world = w.release();
  return res;
}

void expect_bitwise(const SynthResult& a, const SynthResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.sres, b.sres) << what;
  EXPECT_EQ(a.sflux, b.sflux) << what;
  EXPECT_EQ(a.spres, b.spres) << what;
}

TEST(TaskGraphStress, BitwiseIdenticalUnderScheduleJitterAtEveryWidth) {
  // Reference: width 1, no jitter — the serial FIFO drain of the DAG.
  const SynthResult ref = run_taskgraph_sweep(1);
  // 13 jittered runs at each width (52 total, on top of the reference):
  // every schedule perturbation must reproduce the reference bitwise,
  // including width 1 (jitter also shifts the serial drain's timing).
  for (const int width : {1, 2, 4, 8}) {
    for (unsigned run = 0; run < 13; ++run) {
      JitterGuard jitter(width * 100 + run);
      expect_bitwise(ref, run_taskgraph_sweep(width),
                     "width " + std::to_string(width) + " run " +
                         std::to_string(run));
    }
  }
}

TEST(TaskGraphStress, GraphMetricsReportTasks) {
  World* w = nullptr;
  run_taskgraph_sweep(4, &w);
  std::unique_ptr<World> owned(w);
  const auto metrics = owned->loop_metrics();
  // The indirect-INC loops must have executed as graph tasks, one region
  // body per (block, region) task.
  for (const char* name : {"u", "f"}) {
    EXPECT_GT(metrics.at(name).tasks, 0) << name;
    EXPECT_GE(metrics.at(name).steals, 0) << name;
    EXPECT_GE(metrics.at(name).dep_wait_seconds, 0.0) << name;
    EXPECT_GE(metrics.at(name).max_colours, 2) << name;
  }
  // The direct RW loop bypasses the graph (contiguous chunks are already
  // race-free) — no tasks attributed.
  EXPECT_EQ(metrics.at("perturb").tasks, 0);
}

TEST(TaskGraphStress, TaskgraphMatchesLegacyExecutorToTolerance) {
  // Against the default colour-barrier executor (taskgraph off, width 1,
  // per-element colouring): same maths, INC sums reassociated by the
  // blocked colour order — allclose, not bitwise.
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(800, 1);
  const mesh::dat_id sres = prob.sres, sflux = prob.sflux,
                     spres = prob.spres;
  WorldConfig cfg;
  cfg.nranks = 2;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.validate = true;
  World w(std::move(prob.mg.mesh), cfg);
  w.run([&](Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < 2; ++t) synth_loops(rt, h, 2);
  });
  const SynthResult legacy{w.fetch_dat(sres), w.fetch_dat(sflux),
                           w.fetch_dat(spres)};
  const SynthResult graph = run_taskgraph_sweep(4);
  testutil::expect_allclose(legacy.sres, graph.sres);
  testutil::expect_allclose(legacy.sflux, graph.sflux);
  testutil::expect_allclose(legacy.spres, graph.spres);
}

}  // namespace
}  // namespace op2ca::core
