// Sparse-tiling slice tests: the per-chain needed-iteration lists must
// be subsets of the structural exec layers, supersets of what
// owner-compute requires, exclude iterations only reachable through maps
// the chain never uses, and respect the exec_halo gating.
#include <gtest/gtest.h>

#include <set>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/chain.hpp"
#include "op2ca/core/slice.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/partition/partition.hpp"

namespace op2ca::core {
namespace {

struct Built {
  apps::mgcfd::Problem prob;
  halo::HaloPlan plan;
  ChainSpec spec;
  ChainAnalysis analysis;
};

Built build_synth(int nranks, int nchains, int depth, int levels) {
  Built b{apps::mgcfd::build_problem(3000, levels), {}, {}, {}};
  const partition::Partition part = partition::partition_mesh(
      b.prob.mg.mesh, nranks, partition::Kind::KWay,
      b.prob.mg.levels[0].nodes);
  halo::HaloPlanOptions opts;
  opts.depth = depth;
  b.plan = halo::build_halo_plan(b.prob.mg.mesh, part, opts);
  b.spec = apps::mgcfd::synthetic_chain_spec(b.prob, nchains);
  b.analysis = inspect_chain(b.prob.mg.mesh, b.spec);
  return b;
}

TEST(Slice, ListsAreSubsetsOfStructuralLayers) {
  Built b = build_synth(6, 2, 2, 2);
  for (rank_t r = 0; r < 6; ++r) {
    const halo::RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    const auto lists = needed_exec_lists(b.prob.mg.mesh, rp, b.plan.depth,
                                         b.spec, b.analysis);
    ASSERT_EQ(lists.size(), b.spec.loops.size());
    for (size_t l = 0; l < lists.size(); ++l) {
      const halo::SetLayout& lay =
          rp.sets[static_cast<size_t>(b.spec.loops[l].set)];
      const int he = std::min(b.analysis.he[l], b.plan.depth);
      const lidx_t lo = lay.exec_end[0];
      const lidx_t hi = lay.exec_end[static_cast<size_t>(he)];
      // Sorted, unique, within the structural exec region of depth he...
      // (chain layering can defer an element to a deeper chain layer,
      // but never execute beyond the structural region).
      for (size_t i = 0; i < lists[l].size(); ++i) {
        EXPECT_GE(lists[l][i], lo);
        EXPECT_LT(lists[l][i], hi);
        if (i > 0) EXPECT_LT(lists[l][i - 1], lists[l][i]);
      }
    }
  }
}

TEST(Slice, CoversOwnerComputeRequirement) {
  // Every import-exec edge whose e2n target is owned must be executed by
  // every indirect-write loop over edges (owner-compute), so it must be
  // in the slice of the update loop.
  Built b = build_synth(5, 1, 2, 1);
  const mesh::MeshDef& m = b.prob.mg.mesh;
  const mesh::map_id e2n = *m.find_map("e2n_l0");
  const mesh::MapDef& mp = m.map(e2n);
  for (rank_t r = 0; r < 5; ++r) {
    const halo::RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    const auto lists = needed_exec_lists(m, rp, b.plan.depth, b.spec,
                                         b.analysis);
    const halo::SetLayout& elay =
        rp.sets[static_cast<size_t>(b.spec.loops[0].set)];
    const halo::SetLayout& nlay = rp.sets[static_cast<size_t>(mp.to)];
    const halo::LocalMap& lm = rp.maps[static_cast<size_t>(e2n)];
    const std::set<lidx_t> in_list(lists[0].begin(), lists[0].end());
    const auto [lo, hi] = elay.exec_layer(1);
    for (lidx_t e = lo; e < hi; ++e) {
      bool touches_owned = false;
      for (int c = 0; c < 2; ++c) {
        const lidx_t t = lm.targets[static_cast<size_t>(2 * e + c)];
        if (t != kInvalidLocal && t < nlay.num_owned) touches_owned = true;
      }
      if (touches_owned)
        EXPECT_TRUE(in_list.count(e)) << "rank " << r << " edge " << e;
    }
  }
}

TEST(Slice, ExcludesMultigridOnlyReachableIterations) {
  // On a multi-level mesh, the structural exec layers of level-0 edges
  // are inflated by inter-grid connectivity. The synthetic chain uses
  // only e2n_l0, so its slice must be strictly smaller than the
  // structural region at some rank (the inflation is real), never larger.
  Built b = build_synth(6, 4, 2, 3);
  std::int64_t structural = 0, sliced = 0;
  for (rank_t r = 0; r < 6; ++r) {
    const halo::RankPlan& rp = b.plan.ranks[static_cast<size_t>(r)];
    const auto lists = needed_exec_lists(b.prob.mg.mesh, rp, b.plan.depth,
                                         b.spec, b.analysis);
    const halo::SetLayout& lay =
        rp.sets[static_cast<size_t>(b.spec.loops[0].set)];
    const int he = std::min(b.analysis.he[0], b.plan.depth);
    structural += lay.exec_end[static_cast<size_t>(he)] - lay.exec_end[0];
    sliced += static_cast<std::int64_t>(lists[0].size());
  }
  EXPECT_LT(sliced, structural);
  EXPECT_GT(sliced, 0);
}

TEST(Slice, ExecHaloGatingYieldsEmptyLists) {
  // jac_centreline (direct RW only, outputs unread downstream) must get
  // an empty slice on every rank.
  apps::hydra::Problem prob = apps::hydra::build_problem(3000);
  const auto specs = apps::hydra::chain_specs(prob);
  const ChainSpec& jacob = specs.at("jacob");
  const ChainAnalysis an = inspect_chain(prob.an.mesh, jacob);
  ASSERT_EQ(an.exec_halo.size(), 3u);
  EXPECT_FALSE(an.exec_halo[1]);  // jac_centreline
  EXPECT_FALSE(an.exec_halo[0]);  // jac_period: pure reads + direct write
  EXPECT_FALSE(an.exec_halo[2]);  // jac_corrections: same

  const partition::Partition part = partition::partition_mesh(
      prob.an.mesh, 4, partition::Kind::RIB, prob.an.nodes);
  halo::HaloPlanOptions opts;
  opts.depth = 2;
  const halo::HaloPlan plan = halo::build_halo_plan(prob.an.mesh, part, opts);
  for (rank_t r = 0; r < 4; ++r) {
    const auto lists = needed_exec_lists(
        prob.an.mesh, plan.ranks[static_cast<size_t>(r)], plan.depth,
        jacob, an);
    for (const auto& l : lists) EXPECT_TRUE(l.empty());
  }
}

TEST(Slice, VfluxExecutesOwnerComputeOnly) {
  // vflux_edge INCs res into owned nodes: exec_halo true, depth 1; the
  // slice holds exactly the chain-layer-1 edges.
  apps::hydra::Problem prob = apps::hydra::build_problem(3000);
  const auto specs = apps::hydra::chain_specs(prob);
  const ChainSpec& vflux = specs.at("vflux");
  const ChainAnalysis an = inspect_chain(prob.an.mesh, vflux);
  EXPECT_FALSE(an.exec_halo[0]);  // initres: nobody reads res downstream
  EXPECT_TRUE(an.exec_halo[1]);   // vflux_edge: indirect INC

  const partition::Partition part = partition::partition_mesh(
      prob.an.mesh, 6, partition::Kind::RIB, prob.an.nodes);
  halo::HaloPlanOptions opts;
  opts.depth = 2;
  const halo::HaloPlan plan = halo::build_halo_plan(prob.an.mesh, part, opts);
  std::int64_t total = 0;
  for (rank_t r = 0; r < 6; ++r) {
    const auto lists = needed_exec_lists(
        prob.an.mesh, plan.ranks[static_cast<size_t>(r)], plan.depth,
        vflux, an);
    EXPECT_TRUE(lists[0].empty());
    total += static_cast<std::int64_t>(lists[1].size());
  }
  EXPECT_GT(total, 0);
}

TEST(Slice, RequiresLocalMaps) {
  Built b = build_synth(2, 1, 1, 1);
  halo::RankPlan empty_maps = b.plan.ranks[0];
  empty_maps.maps.clear();
  EXPECT_THROW(needed_exec_lists(b.prob.mg.mesh, empty_maps, b.plan.depth,
                                 b.spec, b.analysis),
               Error);
}

}  // namespace
}  // namespace op2ca::core
