// Unit tests for the util module: stats, RNG, tables, options, errors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "op2ca/comm/comm.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/util/aligned.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/rng.hpp"
#include "op2ca/util/stats.hpp"
#include "op2ca/util/table.hpp"
#include "op2ca/util/thread_pool.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyRaises) {
  Accumulator acc;
  EXPECT_THROW(acc.mean(), Error);
  EXPECT_THROW(acc.min(), Error);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.cov(), 0.0);
}

TEST(Summary, FromSpan) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitIndependence) {
  Rng a(42);
  Rng s1 = a.split(1), s2 = a.split(2);
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const std::int64_t n = rng.next_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, IntDistributionCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Table, PrintAndCsv) {
  Table t("demo");
  t.set_header({"name", "count", "ratio"});
  t.add_row({std::string("a"), std::int64_t{42}, 0.5});
  t.add_row({std::string("b,c"), std::int64_t{7}, 1.25});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("42"), std::string::npos);

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("\"b,c\""), std::string::npos);
}

TEST(Table, RowWidthMismatchRaises) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-1000), "-1,000");
  EXPECT_EQ(format_count(12), "12");
}

TEST(Options, ParsesForms) {
  // Note: a known option followed by a bare token consumes it as a
  // value, so boolean flags must use --flag=true or come last.
  const char* argv[] = {"prog",        "--nodes=4", "--mesh", "8M",
                        "positional",  "--ratio=0.5", "--flag"};
  Options opt(7, argv, {"nodes", "mesh", "flag", "ratio"});
  EXPECT_EQ(opt.get_int("nodes", 0), 4);
  EXPECT_EQ(opt.get_string("mesh", ""), "8M");
  EXPECT_TRUE(opt.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(opt.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "positional");
}

TEST(Options, UnknownOptionRaises) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(Options(2, argv, {"nodes"}), Error);
}

TEST(Options, BadIntRaises) {
  const char* argv[] = {"prog", "--nodes=abc"};
  Options opt(2, argv, {"nodes"});
  EXPECT_THROW(opt.get_int("nodes", 0), Error);
}

TEST(VirtualClock, AdvanceSemantics) {
  VirtualClock c;
  c.advance(1.5);
  c.advance_to(1.0);  // earlier: no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Error, MessageCarriesLocation) {
  try {
    OP2CA_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
              std::string::npos);
  }
}

TEST(BufferPool, SteadyStateStaysAllocationFree) {
  BufferPool pool;
  for (int i = 0; i < 4; ++i) pool.release(pool.take(1024));
  const std::int64_t allocs = pool.allocations();
  // Many decay windows of identical demand: the mark tracks the size
  // exactly, so no buffer is ever dropped or re-grown.
  for (int i = 0; i < 500; ++i) pool.release(pool.take(1024));
  EXPECT_EQ(pool.allocations(), allocs);
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPool, HighWaterDecaysAfterSpike) {
  BufferPool pool;
  for (int i = 0; i < 10; ++i) pool.release(pool.take(1 << 10));
  // One-off large chain.
  pool.release(pool.take(8 << 20));
  EXPECT_GE(pool.high_water(), std::size_t{8} << 20);
  EXPECT_GE(pool.pooled_bytes(), std::size_t{8} << 20);
  // Steady small traffic: after a window rollover the mark follows
  // demand down and the spike's storage leaves the pool.
  for (int i = 0; i < 200; ++i) pool.release(pool.take(1 << 10));
  EXPECT_LT(pool.high_water(), std::size_t{8} << 20);
  EXPECT_LT(pool.pooled_bytes(), std::size_t{1} << 20);
}

TEST(BufferPool, ReleaseDropsSpikeLeftoverAfterDecay) {
  BufferPool pool;
  // A large buffer still in flight while demand decays (e.g. a chain's
  // recv slot) must not re-enter the pool on release.
  op2ca::ByteBuf big = pool.take(4 << 20);
  for (int i = 0; i < 200; ++i) pool.release(pool.take(512));
  const std::size_t before = pool.pooled_bytes();
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled_bytes(), before);
}

TEST(BufferPool, MixedSizesKeepLargeBuffersWithinWindow) {
  BufferPool pool;
  // Alternating small/large demand inside every window: the window max
  // stays large, so the large buffer survives every decay.
  for (int i = 0; i < 300; ++i) {
    pool.release(pool.take(256));
    pool.release(pool.take(1 << 16));
  }
  EXPECT_GE(pool.high_water(), std::size_t{1} << 16);
  EXPECT_GE(pool.pooled_bytes(), std::size_t{1} << 16);
}

// -- Cache alignment (the SIMD data plane packs via SIMD-width loads, so
// staging buffers carry the allocator's 64-byte guarantee). -------------

TEST(BufferPool, BuffersAreCacheAligned) {
  BufferPool pool;
  for (const std::size_t bytes : {1u, 63u, 64u, 65u, 4096u, 100001u}) {
    op2ca::ByteBuf buf = pool.take(bytes);
    EXPECT_EQ(buf.size(), bytes);
    EXPECT_TRUE(util::cache_aligned(buf.data())) << bytes;
    pool.release(std::move(buf));
  }
}

TEST(BufferPool, AlignmentSurvivesRecycling) {
  BufferPool pool;
  // Shrinking reuse: a recycled buffer is resized down, never
  // reallocated, so the original allocation's alignment must carry over.
  pool.release(pool.take(8192));
  const std::int64_t allocs = pool.allocations();
  for (const std::size_t bytes : {8192u, 100u, 8000u, 1u}) {
    op2ca::ByteBuf buf = pool.take(bytes);
    EXPECT_TRUE(util::cache_aligned(buf.data())) << bytes;
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.allocations(), allocs);  // all served from the pool
}

TEST(BufferPool, AlignmentSurvivesHighWaterDecay) {
  BufferPool pool;
  // Spike, then decay back to small traffic: post-decay allocations are
  // fresh and must come out aligned like the originals.
  pool.release(pool.take(8 << 20));
  for (int i = 0; i < 200; ++i) {
    op2ca::ByteBuf buf = pool.take(512);
    EXPECT_TRUE(util::cache_aligned(buf.data()));
    pool.release(std::move(buf));
  }
  EXPECT_LT(pool.pooled_bytes(), std::size_t{1} << 20);
  op2ca::ByteBuf buf = pool.take(640);
  EXPECT_TRUE(util::cache_aligned(buf.data()));
}

TEST(BufferPool, HighWaterRoundsUpToCacheLines) {
  BufferPool pool;
  pool.release(pool.take(65));  // rounds to 128
  EXPECT_EQ(pool.high_water() % util::kCacheLine, 0u);
  EXPECT_GE(pool.high_water(), std::size_t{128});
}

TEST(AlignedAlloc, VectorStorageIsCacheAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    util::AlignedDVec v(n, 1.0);
    EXPECT_TRUE(util::cache_aligned(v.data())) << n;
    util::AlignedDVec moved = std::move(v);  // moves keep the allocation
    EXPECT_TRUE(util::cache_aligned(moved.data())) << n;
  }
}

// -- Work-stealing dependency-graph epochs (ThreadPool::run_graph). ------

/// Dense successor CSR + indegrees from an explicit edge list.
struct TestDag {
  std::vector<std::int32_t> off, succ, indeg;
  TestDag(int n, const std::vector<std::pair<int, int>>& edges) {
    off.assign(static_cast<std::size_t>(n) + 1, 0);
    indeg.assign(static_cast<std::size_t>(n), 0);
    for (const auto& [a, b] : edges) {
      ++off[static_cast<std::size_t>(a) + 1];
      ++indeg[static_cast<std::size_t>(b)];
    }
    for (int i = 0; i < n; ++i)
      off[static_cast<std::size_t>(i) + 1] += off[static_cast<std::size_t>(i)];
    succ.resize(edges.size());
    std::vector<std::int32_t> at(off.begin(), off.end() - 1);
    for (const auto& [a, b] : edges)
      succ[static_cast<std::size_t>(at[static_cast<std::size_t>(a)]++)] =
          static_cast<std::int32_t>(b);
  }
};

TEST(ThreadPoolGraph, IndependentTasksRunExactlyOnceAtEveryWidth) {
  constexpr int kTasks = 257;
  const TestDag dag(kTasks, {});
  for (int width : {1, 2, 4, 8}) {
    util::ThreadPool pool(width);
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    util::GraphStats stats;
    pool.run_graph(kTasks, dag.off.data(), dag.succ.data(),
                   dag.indeg.data(),
                   [&](int t) { hits[static_cast<std::size_t>(t)]++; },
                   &stats);
    for (int t = 0; t < kTasks; ++t)
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "width " << width << " task " << t;
    EXPECT_EQ(stats.tasks, kTasks);
  }
}

TEST(ThreadPoolGraph, ChainExecutesInExactDependencyOrder) {
  // A pure chain 0 -> 1 -> ... -> n-1 has exactly one legal schedule
  // at any width; stealing must never reorder it.
  constexpr int kTasks = 64;
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < kTasks; ++i) edges.push_back({i, i + 1});
  const TestDag dag(kTasks, edges);
  for (int width : {1, 4}) {
    util::ThreadPool pool(width);
    std::mutex mu;
    std::vector<int> order;
    pool.run_graph(kTasks, dag.off.data(), dag.succ.data(),
                   dag.indeg.data(), [&](int t) {
                     std::lock_guard<std::mutex> lock(mu);
                     order.push_back(t);
                   });
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolGraph, DependencyCountersGateSuccessorRelease) {
  // Diamond: 0 -> {1, 2} -> 3. Task 3's counter starts at 2, so it must
  // observe BOTH middle tasks' effects; 0 must precede everything.
  const TestDag dag(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  util::ThreadPool pool(4);
  std::atomic<int> done0{0}, done_mid{0};
  std::atomic<bool> ok{true};
  pool.run_graph(4, dag.off.data(), dag.succ.data(), dag.indeg.data(),
                 [&](int t) {
                   if (t == 0) {
                     done0.store(1, std::memory_order_release);
                   } else if (t == 3) {
                     if (done_mid.load(std::memory_order_acquire) != 2)
                       ok.store(false);
                   } else {
                     if (done0.load(std::memory_order_acquire) != 1)
                       ok.store(false);
                     done_mid.fetch_add(1, std::memory_order_acq_rel);
                   }
                 });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolGraph, StealCorrectnessUnderContention) {
  // All roots seed round-robin, then per-task sleep jitter desynchronises
  // the workers so deques drain unevenly and thieves kick in. Every task
  // must still run exactly once and the final wide-join task last —
  // including when its last release comes from a stealing worker.
  constexpr int kTasks = 128;
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < kTasks - 1; ++i) edges.push_back({i, kTasks - 1});
  const TestDag dag(kTasks, edges);
  util::ThreadPool::set_task_jitter([](int t) {
    if (t % 7 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  std::atomic<int> before_join{0};
  util::GraphStats stats;
  pool.run_graph(kTasks, dag.off.data(), dag.succ.data(), dag.indeg.data(),
                 [&](int t) {
                   hits[static_cast<std::size_t>(t)]++;
                   if (t == kTasks - 1)
                     EXPECT_EQ(before_join.load(std::memory_order_acquire),
                               kTasks - 1);
                   else
                     before_join.fetch_add(1, std::memory_order_acq_rel);
                 },
                 &stats);
  util::ThreadPool::set_task_jitter(nullptr);
  for (int t = 0; t < kTasks; ++t)
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1) << t;
  EXPECT_EQ(stats.tasks, kTasks);
  EXPECT_GE(stats.steals, 0);
  EXPECT_LE(stats.steals, kTasks);
}

TEST(ThreadPoolGraph, ExceptionPropagatesAndPoolStaysUsable) {
  const TestDag dag(16, {});
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_graph(16, dag.off.data(), dag.succ.data(), dag.indeg.data(),
                     [&](int t) {
                       if (t == 5) throw std::runtime_error("task 5 boom");
                     }),
      std::runtime_error);
  // The abort drained the deques; the next epoch and a plain run() must
  // behave as if nothing happened.
  std::vector<std::atomic<int>> hits(16);
  for (auto& h : hits) h.store(0);
  pool.run_graph(16, dag.off.data(), dag.succ.data(), dag.indeg.data(),
                 [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (int t = 0; t < 16; ++t)
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1) << t;
  std::atomic<int> participants{0};
  pool.run([&](int) { participants++; });
  EXPECT_EQ(participants.load(), 4);
}

TEST(ThreadPoolGraph, EpochsDrainAndInterleaveWithFlatRuns) {
  // Repeated graph epochs on one pool, interleaved with flat run() jobs:
  // per-epoch counters reset, nothing leaks across epochs.
  constexpr int kTasks = 40;
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 2 < kTasks; ++i) edges.push_back({i, i + 2});
  const TestDag dag(kTasks, edges);
  util::ThreadPool pool(4);
  for (int epoch = 0; epoch < 5; ++epoch) {
    std::atomic<int> count{0};
    util::GraphStats stats;
    pool.run_graph(kTasks, dag.off.data(), dag.succ.data(),
                   dag.indeg.data(), [&](int) { count++; }, &stats);
    EXPECT_EQ(count.load(), kTasks) << "epoch " << epoch;
    EXPECT_EQ(stats.tasks, kTasks);
    std::atomic<int> flat{0};
    pool.run([&](int) { flat++; });
    EXPECT_EQ(flat.load(), 4);
  }
}

TEST(ThreadPoolGraph, CycleIsDetectedNotDeadlocked) {
  // 0 -> 1 -> 0 never becomes runnable; run_graph must raise, not hang.
  const TestDag dag(2, {{0, 1}, {1, 0}});
  util::ThreadPool pool(1);
  EXPECT_THROW(pool.run_graph(2, dag.off.data(), dag.succ.data(),
                              dag.indeg.data(), [](int) {}),
               std::exception);
}

TEST(ThreadPoolContention, SendsToDistinctDestinationsDoNotSerialise) {
  // Regression for the comm layer's send locking: taskgraph mode posts
  // pack isends from pool workers, and a single send mutex would queue a
  // fast send to one neighbour behind a slow send to another. Sends
  // serialise per DESTINATION, so a worker posting to rank 2 must return
  // promptly while a post to rank 1 sits in an injected 250 ms delay.
  sim::Transport t(3);
  t.set_post_delay(1, 0.25);
  sim::Comm c(t, 0);
  util::ThreadPool pool(2);
  double elapsed[2] = {0.0, 0.0};
  pool.run([&](int w) {
    const auto start = std::chrono::steady_clock::now();
    auto req = c.isend(w == 0 ? 1 : 2, 0, ByteBuf(64));
    c.wait(req);
    elapsed[w] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  });
  EXPECT_GE(elapsed[0], 0.2);   // the delayed destination pays its delay
  EXPECT_LT(elapsed[1], 0.15);  // the other destination must not queue
  EXPECT_EQ(c.stats().msgs_sent, 2);
}

}  // namespace
}  // namespace op2ca
