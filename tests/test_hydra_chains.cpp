// Integration tests of the Hydra analogue: each of the six paper chains
// must produce identical owned results under (a) single-rank sequential
// execution, (b) multi-rank per-loop OP2 execution and (c) multi-rank CA
// execution, and the per-chain communication metrics must show the
// paper's qualitative behaviour.
#include <gtest/gtest.h>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/core/runtime.hpp"
#include "test_common.hpp"

namespace op2ca::apps::hydra {
namespace {

using core::Runtime;
using core::World;
using core::WorldConfig;
using testutil::expect_allclose;

WorldConfig hydra_config(int nranks, bool enable_ca) {
  WorldConfig cfg;
  cfg.nranks = nranks;
  cfg.partitioner = partition::Kind::RIB;  // Hydra's default partitioner
  cfg.halo_depth = 2;
  cfg.validate = true;
  if (enable_ca)
    for (const std::string& name : chain_names()) cfg.chains.enable(name);
  return cfg;
}

/// Runs setup + `iters` main iterations; returns final state dats.
struct HydraState {
  std::vector<double> qo, qp, ql, vol, res, visres, pwk, bwk, cbv;
};

HydraState run_hydra(int nranks, bool enable_ca, int iters,
                     gidx_t nodes = 2500) {
  Problem prob = build_problem(nodes);
  const Problem ids = prob;  // copy of the handle ids (mesh moved below)
  World w(std::move(prob.an.mesh), hydra_config(nranks, enable_ca));
  w.run([&](Runtime& rt) {
    const Handles h = resolve_handles(rt, ids);
    run_setup(rt, h);
    for (int i = 0; i < iters; ++i) run_iteration(rt, h);
  });
  return HydraState{
      w.fetch_dat(ids.qo),  w.fetch_dat(ids.qp),     w.fetch_dat(ids.ql),
      w.fetch_dat(ids.vol), w.fetch_dat(ids.res),    w.fetch_dat(ids.visres),
      w.fetch_dat(ids.pwk), w.fetch_dat(ids.bwk),    w.fetch_dat(ids.cbv)};
}

void expect_state_close(const HydraState& a, const HydraState& b) {
  expect_allclose(a.qo, b.qo);
  expect_allclose(a.qp, b.qp);
  expect_allclose(a.ql, b.ql);
  expect_allclose(a.vol, b.vol);
  expect_allclose(a.res, b.res);
  expect_allclose(a.visres, b.visres);
  expect_allclose(a.pwk, b.pwk);
  expect_allclose(a.bwk, b.bwk);
  expect_allclose(a.cbv, b.cbv);
}

TEST(HydraExec, CaMatchesSerialOverFullRun) {
  const HydraState serial = run_hydra(1, false, 2);
  const HydraState ca = run_hydra(6, true, 2);
  expect_state_close(serial, ca);
}

TEST(HydraExec, CaMatchesBaselineSameRanks) {
  const HydraState op2 = run_hydra(5, false, 2);
  const HydraState ca = run_hydra(5, true, 2);
  expect_state_close(op2, ca);
}

TEST(HydraExec, BaselineMatchesSerial) {
  const HydraState serial = run_hydra(1, false, 2);
  const HydraState op2 = run_hydra(7, false, 2);
  expect_state_close(serial, op2);
}

/// Collects per-chain metrics for one execution mode.
std::map<std::string, core::LoopMetrics> chain_metrics_for(int nranks,
                                                           bool enable_ca,
                                                           int iters) {
  Problem prob = build_problem(2500);
  const Problem ids = prob;
  World w(std::move(prob.an.mesh), hydra_config(nranks, enable_ca));
  w.run([&](Runtime& rt) {
    const Handles h = resolve_handles(rt, ids);
    run_setup(rt, h);
    for (int i = 0; i < iters; ++i) run_iteration(rt, h);
  });
  return w.chain_metrics();
}

TEST(HydraMetrics, CaReducesMessageCountForEveryChain) {
  const auto op2 = chain_metrics_for(6, false, 2);
  const auto ca = chain_metrics_for(6, true, 2);
  for (const std::string& name : chain_names()) {
    ASSERT_TRUE(op2.count(name)) << name;
    ASSERT_TRUE(ca.count(name)) << name;
    if (op2.at(name).msgs > 0)
      EXPECT_LT(ca.at(name).msgs, op2.at(name).msgs) << name;
  }
}

TEST(HydraMetrics, GroupingOnlyChainsKeepBytesCutMessages) {
  // Table 5 structure: vflux and jacob group the same bytes into far
  // fewer messages (the paper's 0%-comm-reduction rows; see
  // EXPERIMENTS.md for the jacob byte-reduction caveat).
  const auto op2 = chain_metrics_for(6, false, 3);
  const auto ca = chain_metrics_for(6, true, 3);
  for (const char* name : {"vflux", "jacob"}) {
    const double ratio = static_cast<double>(ca.at(name).bytes) /
                         static_cast<double>(op2.at(name).bytes);
    EXPECT_NEAR(ratio, 1.0, 0.05) << name;
    EXPECT_LT(ca.at(name).msgs * 2, op2.at(name).msgs) << name;
  }
}

TEST(HydraMetrics, GradlIncreasesRedundantComputation) {
  // gradl needs two halo layers: its CA halo-iteration count must exceed
  // the baseline's (this is what degrades gradl in Fig 12).
  const auto op2 = chain_metrics_for(6, false, 2);
  const auto ca = chain_metrics_for(6, true, 2);
  EXPECT_GT(ca.at("gradl").halo_iters, op2.at("gradl").halo_iters);
}

TEST(HydraMetrics, JacobAddsNoRedundantComputation) {
  // Table 5: jacob's computation increase is 0.00% — all three loops
  // stay at one halo layer, so CA executes the same iterations.
  const auto op2 = chain_metrics_for(6, false, 2);
  const auto ca = chain_metrics_for(6, true, 2);
  EXPECT_EQ(ca.at("jacob").core_iters + ca.at("jacob").halo_iters,
            op2.at("jacob").core_iters + op2.at("jacob").halo_iters);
}

TEST(HydraExec, SelectiveChainEnabling) {
  // Only vflux CA-enabled; everything else runs as plain loops — the
  // "standard loops interspersed with selected loop-chains" mode.
  Problem prob = build_problem(2000);
  const Problem ids = prob;
  WorldConfig cfg = hydra_config(4, false);
  cfg.chains.enable("vflux");
  World w(std::move(prob.an.mesh), cfg);
  w.run([&](Runtime& rt) {
    const Handles h = resolve_handles(rt, ids);
    run_setup(rt, h);
    run_iteration(rt, h);
  });
  // Compare against full serial.
  const HydraState serial = run_hydra(1, false, 1, 2000);
  expect_allclose(serial.qo, w.fetch_dat(ids.qo));
  expect_allclose(serial.res, w.fetch_dat(ids.res));
}

TEST(HydraExec, RungeKuttaIterationMatchesSerial) {
  // The full 5-stage RK time step (every chain executed five times per
  // iteration) must agree between serial and CA-parallel execution.
  auto run_rk = [](int nranks, bool ca) {
    Problem prob = build_problem(2000);
    const Problem ids = prob;
    World w(std::move(prob.an.mesh), hydra_config(nranks, ca));
    w.run([&](Runtime& rt) {
      const Handles h = resolve_handles(rt, ids);
      run_setup(rt, h);
      for (int i = 0; i < 2; ++i) run_rk_iteration(rt, h);
    });
    return std::make_pair(w.fetch_dat(ids.qo), w.fetch_dat(ids.qp));
  };
  const auto serial = run_rk(1, false);
  const auto ca = run_rk(5, true);
  expect_allclose(serial.first, ca.first);
  expect_allclose(serial.second, ca.second);
}

TEST(HydraExec, TwentyIterationsStayFinite) {
  // The paper's benchmark horizon (20 main iterations): no NaN/inf.
  const HydraState st = run_hydra(4, true, 20, 1500);
  for (double v : st.qo) EXPECT_TRUE(std::isfinite(v));
  for (double v : st.res) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace op2ca::apps::hydra
