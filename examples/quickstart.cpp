// Quickstart — the paper's Fig 3 program, end to end.
//
// Declares the nodes/edges/cells mesh of Fig 1 (as a quad grid), the
// res/pres/cw/flux dats, and runs the update + edge_flux loop-chain over
// a simulated 4-rank machine twice: once with classic per-loop OP2
// execution and once with the communication-avoiding back-end. Verifies
// the results agree and prints the communication metrics side by side.
//
//   ./quickstart [--nx=64] [--ny=64] [--ranks=4] [--steps=3]
#include <cmath>
#include <iostream>

#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/util/options.hpp"

using namespace op2ca;
using core::Access;
using core::arg_dat;

namespace {

// The two kernels of the paper's Fig 3.
void update(double* res1, double* res2, const double* pres1,
            const double* pres2) {
  res1[0] += pres1[0] - pres1[1];
  res1[1] += pres2[0] - pres2[1];
  res2[0] += pres2[1] - pres2[0];
  res2[1] += pres1[1] - pres1[0];
}

void edge_flux(double* flux1, double* flux2, const double* res1,
               const double* res2, const double* cw1, const double* cw2) {
  flux1[0] += res1[0] * cw1[0] - res1[1] * cw1[1];
  flux1[1] += res2[1] * cw1[2] - res2[0] * cw1[3];
  flux2[0] += res2[1] * cw2[2] - res1[1] * cw2[3];
  flux2[1] += res1[0] * cw2[0] - res1[1] * cw2[1];
}

struct Problem {
  mesh::Quad2D q;
  mesh::dat_id res, pres, flux, cw;
};

Problem build(gidx_t nx, gidx_t ny) {
  Problem p{mesh::make_quad2d(nx, ny), -1, -1, -1, -1};
  mesh::MeshDef& m = p.q.mesh;
  const auto nn = static_cast<std::size_t>(m.set(p.q.nodes).size);
  const auto nc = static_cast<std::size_t>(m.set(p.q.cells).size);
  std::vector<double> pres(nn * 2), cw(nc * 4);
  for (std::size_t i = 0; i < pres.size(); ++i)
    pres[i] = std::sin(0.01 * static_cast<double>(i));
  for (std::size_t i = 0; i < cw.size(); ++i)
    cw[i] = 0.25 * std::cos(0.02 * static_cast<double>(i));
  p.res = m.add_dat("res", p.q.nodes, 2);
  p.pres = m.add_dat("pres", p.q.nodes, 2, std::move(pres));
  p.flux = m.add_dat("flux", p.q.nodes, 2);
  p.cw = m.add_dat("cw", p.q.cells, 4, std::move(cw));
  return p;
}

void time_march(core::Runtime& rt, int steps) {
  const core::Set edges = rt.set("edges");
  const core::Dat res = rt.dat("res"), pres = rt.dat("pres"),
                  flux = rt.dat("flux"), cw = rt.dat("cw");
  const core::Map e2n = rt.map("e2n"), e2c = rt.map("e2c");
  for (int t = 0; t < steps; ++t) {
    rt.chain_begin("fig3");  // no-op when the chain is not CA-enabled
    rt.par_loop("update", edges, update,
                arg_dat(res, 0, e2n, Access::INC),
                arg_dat(res, 1, e2n, Access::INC),
                arg_dat(pres, 0, e2n, Access::READ),
                arg_dat(pres, 1, e2n, Access::READ));
    rt.par_loop("edge_flux", edges, edge_flux,
                arg_dat(flux, 0, e2n, Access::INC),
                arg_dat(flux, 1, e2n, Access::INC),
                arg_dat(res, 0, e2n, Access::READ),
                arg_dat(res, 1, e2n, Access::READ),
                arg_dat(cw, 0, e2c, Access::READ),
                arg_dat(cw, 1, e2c, Access::READ));
    rt.chain_end();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, {"nx", "ny", "ranks", "steps"});
  const gidx_t nx = opt.get_int("nx", 64), ny = opt.get_int("ny", 64);
  const int ranks = static_cast<int>(opt.get_int("ranks", 4));
  const int steps = static_cast<int>(opt.get_int("steps", 3));

  auto run = [&](bool enable_ca) {
    Problem p = build(nx, ny);
    core::WorldConfig cfg;
    cfg.nranks = ranks;
    cfg.partitioner = partition::Kind::KWay;
    cfg.halo_depth = 2;
    if (enable_ca) cfg.chains.enable("fig3");
    core::World w(std::move(p.q.mesh), cfg);
    w.run([&](core::Runtime& rt) { time_march(rt, steps); });
    const auto metrics = w.chain_metrics().at("fig3");
    std::cout << (enable_ca ? "CA  " : "OP2 ") << " messages=" << metrics.msgs
              << "  bytes=" << metrics.bytes
              << "  core iters=" << metrics.core_iters
              << "  halo iters=" << metrics.halo_iters << '\n';
    return w.fetch_dat(p.flux);
  };

  std::cout << "Fig-3 loop-chain on a " << nx << "x" << ny << " mesh, "
            << ranks << " simulated ranks, " << steps << " steps\n";
  const std::vector<double> flux_op2 = run(false);
  const std::vector<double> flux_ca = run(true);

  double worst = 0.0;
  for (std::size_t i = 0; i < flux_op2.size(); ++i)
    worst = std::max(worst, std::abs(flux_op2[i] - flux_ca[i]));
  std::cout << "max |flux_OP2 - flux_CA| = " << worst << '\n';
  if (worst > 1e-9) {
    std::cout << "MISMATCH\n";
    return 1;
  }
  std::cout << "results match: the CA back-end exchanged one grouped "
               "message per neighbour per chain\n";
  return 0;
}
