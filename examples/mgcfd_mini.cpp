// mgcfd_mini — runs the MG-CFD analogue end to end: a 3-level multigrid
// Euler solve plus the paper's synthetic update/edge_flux loop-chain,
// comparing OP2 and CA execution of the chain on the same simulated
// machine and reporting residuals and communication metrics.
//
//   ./mgcfd_mini [--nodes=20000] [--ranks=8] [--steps=5] [--nchains=8]
#include <iostream>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/timer.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, {"nodes", "ranks", "steps", "nchains"});
  const gidx_t nodes = opt.get_int("nodes", 20000);
  const int ranks = static_cast<int>(opt.get_int("ranks", 8));
  const int steps = static_cast<int>(opt.get_int("steps", 5));
  const int nchains = static_cast<int>(opt.get_int("nchains", 8));

  std::cout << "MG-CFD mini: ~" << nodes << " nodes, 3 levels, " << ranks
            << " ranks, " << steps << " timesteps, synthetic chain of "
            << 2 * nchains << " loops\n";

  for (const bool ca : {false, true}) {
    apps::mgcfd::Problem prob = apps::mgcfd::build_problem(nodes, 3);
    core::WorldConfig cfg;
    cfg.nranks = ranks;
    cfg.partitioner = partition::Kind::KWay;
    cfg.halo_depth = 2;
    if (ca) cfg.chains.enable("synthetic", 2 * nchains, 2);
    core::World w(std::move(prob.mg.mesh), cfg);

    WallTimer timer;
    std::vector<double> rms;
    w.run([&](core::Runtime& rt) {
      const auto h = apps::mgcfd::resolve_handles(rt, prob);
      for (int t = 0; t < steps; ++t) {
        const double r = apps::mgcfd::solver_iteration(rt, h);
        apps::mgcfd::run_synthetic_chain(rt, h, nchains);
        if (rt.rank() == 0) rms.push_back(r);
      }
    });
    const double wall = timer.elapsed();

    const auto chain = w.chain_metrics().at("synthetic");
    std::cout << "\n[" << (ca ? "CA" : "OP2") << "]\n"
              << "  residual RMS: first=" << rms.front()
              << " last=" << rms.back() << '\n'
              << "  synthetic chain: messages=" << chain.msgs
              << " bytes=" << chain.bytes
              << " max message=" << chain.max_msg_bytes << " B\n"
              << "  core iters=" << chain.core_iters
              << " halo iters=" << chain.halo_iters << '\n'
              << "  wall time " << wall << " s\n";
  }
  std::cout << "\nThe CA run exchanged one grouped message per neighbour "
               "per chain; the baseline re-exchanged sres for every "
               "edge_flux loop.\n";
  return 0;
}
