// hydra_chains — the Hydra analogue with the six loop-chains of the
// paper's Tables 3-4, driven from a chain configuration file exactly as
// Section 3.4 describes: the file selects which chains run with the CA
// back-end; everything else executes as standard OP2 loops.
//
//   ./hydra_chains [--nodes=30000] [--ranks=8] [--iters=5]
//                  [--config=chains.cfg]
//
// Without --config, a built-in configuration enabling period, vflux,
// iflux and jacob (the profitable chains of Fig 12/13) is used.
#include <iostream>
#include <sstream>

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/timer.hpp"

using namespace op2ca;

int main(int argc, char** argv) {
  const Options opt(argc, argv, {"nodes", "ranks", "iters", "config"});
  const gidx_t nodes = opt.get_int("nodes", 30000);
  const int ranks = static_cast<int>(opt.get_int("ranks", 8));
  const int iters = static_cast<int>(opt.get_int("iters", 5));
  const std::string config_path = opt.get_string("config", "");

  core::ChainConfig chains;
  if (!config_path.empty()) {
    chains = core::ChainConfig::load(config_path);
    std::cout << "chain config: " << config_path << '\n';
  } else {
    // The paper's profitable selection (Section 4.2): CA for the chains
    // that win, plain OP2 for weight and gradl.
    std::istringstream builtin(R"(
chain weight  loops=5 enabled=0
chain period  loops=6 depth=2
chain gradl   loops=2 enabled=0
chain vflux   loops=2 depth=1
chain iflux   loops=2 depth=1
chain jacob   loops=3 depth=1
)");
    chains = core::ChainConfig::parse(builtin);
    std::cout << "chain config: built-in (period/vflux/iflux/jacob CA)\n";
  }

  apps::hydra::Problem prob = apps::hydra::build_problem(nodes);
  core::WorldConfig cfg;
  cfg.nranks = ranks;
  cfg.partitioner = partition::Kind::RIB;  // Hydra's default
  cfg.halo_depth = 2;
  cfg.chains = chains;
  core::World w(std::move(prob.an.mesh), cfg);

  WallTimer timer;
  w.run([&](core::Runtime& rt) {
    const apps::hydra::Handles h = apps::hydra::resolve_handles(rt, prob);
    apps::hydra::run_setup(rt, h);
    for (int i = 0; i < iters; ++i) apps::hydra::run_iteration(rt, h);
  });

  std::cout << "Hydra analogue: ~" << nodes << " nodes, " << ranks
            << " ranks, " << iters << " main iterations ("
            << timer.elapsed() << " s wall)\n\n";
  std::cout << "per-chain metrics (CA chains send one grouped message "
               "per neighbour per execution):\n";
  for (const auto& [name, m] : w.chain_metrics()) {
    std::cout << "  " << name << (chains.enabled(name) ? " [CA] " : " [OP2]")
              << " calls=" << m.calls << " msgs=" << m.msgs
              << " bytes=" << m.bytes << " core=" << m.core_iters
              << " halo=" << m.halo_iters << '\n';
  }
  return 0;
}
