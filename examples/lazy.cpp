// lazy — automatic communication avoidance without annotations.
//
// The paper's future work proposes automating chain selection through
// lazy evaluation. This example runs the same loop sequence three ways:
//   1. eager per-loop OP2 execution,
//   2. explicit chain_begin/chain_end bracketing,
//   3. WorldConfig::lazy — no annotations at all: loops queue and flush
//      at synchronisation points as automatically-formed chains,
// and shows all three produce identical results while (2) and (3) send
// the same reduced message counts.
//
//   ./lazy [--nodes=15000] [--ranks=6] [--steps=4] [--pairs=6]
#include <cmath>
#include <iostream>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/util/options.hpp"

using namespace op2ca;
using core::Access;
using core::arg_dat;

namespace {

enum class Mode { Eager, Explicit, Lazy };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Eager: return "eager OP2";
    case Mode::Explicit: return "explicit chain";
    case Mode::Lazy: return "lazy (automatic)";
  }
  return "?";
}

struct Outcome {
  std::vector<double> sflux;
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;
};

Outcome run(Mode mode, gidx_t nodes, int ranks, int steps, int pairs) {
  namespace k = apps::mgcfd::kernels;
  apps::mgcfd::Problem prob = apps::mgcfd::build_problem(nodes, 1);
  const mesh::dat_id sflux = prob.sflux;

  core::WorldConfig cfg;
  cfg.nranks = ranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  cfg.lazy = mode == Mode::Lazy;
  if (mode == Mode::Explicit) cfg.chains.enable("synthetic");
  core::World w(std::move(prob.mg.mesh), cfg);

  w.run([&](core::Runtime& rt) {
    const auto h = apps::mgcfd::resolve_handles(rt, prob);
    for (int t = 0; t < steps; ++t) {
      if (mode == Mode::Explicit) {
        apps::mgcfd::run_synthetic_chain(rt, h, pairs);
        continue;
      }
      // Plain loop sequence, no chain annotations.
      rt.par_loop("perturb", h.nodes0, k::synth_perturb,
                  arg_dat(h.spres, Access::RW));
      for (int c = 0; c < pairs; ++c) {
        rt.par_loop("update", h.edges0, k::synth_update,
                    arg_dat(h.sres, 0, h.e2n0, Access::INC),
                    arg_dat(h.sres, 1, h.e2n0, Access::INC),
                    arg_dat(h.spres, 0, h.e2n0, Access::READ),
                    arg_dat(h.spres, 1, h.e2n0, Access::READ));
        rt.par_loop("edge_flux", h.edges0, k::synth_edge_flux,
                    arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                    arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                    arg_dat(h.sres, 0, h.e2n0, Access::READ),
                    arg_dat(h.sres, 1, h.e2n0, Access::READ),
                    arg_dat(h.sewt, Access::READ));
      }
      rt.barrier();  // lazy mode flushes here
    }
  });

  Outcome out;
  out.sflux = w.fetch_dat(sflux);
  for (const auto& [name, m] : w.loop_metrics()) {
    out.msgs += m.msgs;
    out.bytes += m.bytes;
  }
  for (const auto& [name, m] : w.chain_metrics()) {
    out.msgs += m.msgs;
    out.bytes += m.bytes;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv, {"nodes", "ranks", "steps", "pairs"});
  const gidx_t nodes = opt.get_int("nodes", 15000);
  const int ranks = static_cast<int>(opt.get_int("ranks", 6));
  const int steps = static_cast<int>(opt.get_int("steps", 4));
  const int pairs = static_cast<int>(opt.get_int("pairs", 6));

  std::cout << "lazy-evaluation demo: " << 2 * pairs
            << "-loop sequence x " << steps << " steps on " << ranks
            << " ranks\n\n";

  Outcome ref;
  for (const Mode mode : {Mode::Eager, Mode::Explicit, Mode::Lazy}) {
    const Outcome out = run(mode, nodes, ranks, steps, pairs);
    std::cout << "  " << mode_name(mode) << ": messages=" << out.msgs
              << " bytes=" << out.bytes << '\n';
    if (mode == Mode::Eager) {
      ref = out;
      continue;
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.sflux.size(); ++i)
      worst = std::max(worst, std::abs(ref.sflux[i] - out.sflux[i]));
    std::cout << "    max deviation from eager result: " << worst << '\n';
    if (worst > 1e-9) {
      std::cout << "MISMATCH\n";
      return 1;
    }
  }
  std::cout << "\nall three modes agree; lazy mode discovered the chains "
               "without any annotation\n";
  return 0;
}
