// airfoil — a 2D cell-centred finite-volume time-marching example in the
// style of OP2's classic airfoil demo: save -> flux -> update loops over
// a quad mesh, with the flux/update pair executed as a CA loop-chain.
// Demonstrates mixing standard loops (save_soln, with a global residual
// reduction) with a CA-enabled chain in the same time loop.
//
//   ./airfoil [--nx=128] [--ny=96] [--ranks=6] [--steps=20] [--ca=1]
#include <cmath>
#include <iostream>

#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/mesh/vtk.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/timer.hpp"

using namespace op2ca;
using core::Access;
using core::arg_dat;
using core::arg_gbl;

namespace {

constexpr int kQ = 4;  // rho, rho*u, rho*v, rho*E

/// save_soln: qold = q (cells, direct).
void save_soln(const double* q, double* qold) {
  for (int k = 0; k < kQ; ++k) qold[k] = q[k];
}

/// flux: edge flux between the two adjacent cells (edges; q READ
/// indirect via e2c, res INC indirect via e2c).
void flux(const double* q1, const double* q2, double* res1, double* res2) {
  for (int k = 0; k < kQ; ++k) {
    const double f = 0.5 * (q1[k] - q2[k]) +
                     0.01 * (q1[(k + 1) % kQ] + q2[(k + 1) % kQ]);
    res1[k] += f;
    res2[k] -= f;
  }
}

/// update: explicit step consuming res (cells, direct) + residual norm.
void update(const double* qold, double* q, double* res, double* rms) {
  for (int k = 0; k < kQ; ++k) {
    q[k] = qold[k] - 1e-3 * res[k];
    rms[0] += res[k] * res[k];
    res[k] = 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv,
                    {"nx", "ny", "ranks", "steps", "ca", "vtk"});
  const gidx_t nx = opt.get_int("nx", 128), ny = opt.get_int("ny", 96);
  const int ranks = static_cast<int>(opt.get_int("ranks", 6));
  const int steps = static_cast<int>(opt.get_int("steps", 20));
  const bool ca = opt.get_bool("ca", true);

  mesh::Quad2D grid = mesh::make_quad2d(nx, ny);
  mesh::MeshDef& m = grid.mesh;
  const auto nc = static_cast<std::size_t>(m.set(grid.cells).size);
  std::vector<double> q0(nc * kQ);
  for (std::size_t i = 0; i < q0.size(); ++i)
    q0[i] = 1.0 + 0.1 * std::sin(0.005 * static_cast<double>(i));
  const mesh::dat_id q_id = m.add_dat("q", grid.cells, kQ, std::move(q0));
  m.add_dat("qold", grid.cells, kQ);
  m.add_dat("res", grid.cells, kQ);

  core::WorldConfig cfg;
  cfg.nranks = ranks;
  cfg.partitioner = partition::Kind::KWay;
  cfg.halo_depth = 2;
  if (ca) cfg.chains.enable("flux_update", 0, 2);
  core::World w(std::move(m), cfg);

  WallTimer timer;
  std::vector<double> rms_history;
  w.run([&](core::Runtime& rt) {
    const core::Set cells = rt.set("cells"), edges = rt.set("edges");
    const core::Map e2c = rt.map("e2c");
    const core::Dat q = rt.dat("q"), qold = rt.dat("qold"),
                    res = rt.dat("res");
    for (int t = 0; t < steps; ++t) {
      rt.par_loop("save_soln", cells, save_soln,
                  arg_dat(q, Access::READ), arg_dat(qold, Access::WRITE));
      // The flux loop runs as a CA chain (one grouped exchange of q).
      rt.chain_begin("flux_update");
      rt.par_loop("flux", edges, flux, arg_dat(q, 0, e2c, Access::READ),
                  arg_dat(q, 1, e2c, Access::READ),
                  arg_dat(res, 0, e2c, Access::INC),
                  arg_dat(res, 1, e2c, Access::INC));
      rt.chain_end();
      // update carries a global reduction, so it stays outside the chain.
      double rms = 0.0;
      rt.par_loop("update", cells, update, arg_dat(qold, Access::READ),
                  arg_dat(q, Access::RW), arg_dat(res, Access::RW),
                  arg_gbl(&rms, 1, Access::INC));
      if (rt.rank() == 0) rms_history.push_back(std::sqrt(rms));
    }
  });

  std::cout << "airfoil: " << nx << "x" << ny << " cells, " << ranks
            << " ranks, " << steps << " steps, CA="
            << (ca ? "on" : "off") << '\n';
  for (int t = 0; t < steps; t += std::max(1, steps / 5))
    std::cout << "  step " << t
              << "  rms=" << rms_history[static_cast<std::size_t>(t)]
              << '\n';
  const auto chains = w.chain_metrics();
  if (chains.count("flux_update")) {
    const auto& mm = chains.at("flux_update");
    std::cout << "flux_update chain: messages=" << mm.msgs
              << " bytes=" << mm.bytes << '\n';
  }
  std::cout << "wall time " << timer.elapsed() << " s\n";

  // Sanity: the solution stays finite.
  const auto qfinal = w.fetch_dat(q_id);
  for (double v : qfinal)
    if (!std::isfinite(v)) {
      std::cout << "solution diverged\n";
      return 1;
    }
  std::cout << "solution finite after " << steps << " steps\n";

  const std::string vtk_path = opt.get_string("vtk", "");
  if (!vtk_path.empty()) {
    // Cell-centred q mapped onto nodes for visualisation: write the
    // density component averaged per node via c2n incidence.
    const mesh::MeshDef& mm = w.mesh();
    const gidx_t nn = mm.set(grid.nodes).size;
    std::vector<double> rho(static_cast<std::size_t>(nn), 0.0);
    std::vector<int> counts(static_cast<std::size_t>(nn), 0);
    const mesh::MapDef& c2n = mm.map(grid.c2n);
    for (gidx_t c = 0; c < mm.set(grid.cells).size; ++c)
      for (int k = 0; k < 4; ++k) {
        const gidx_t n = c2n.targets[static_cast<std::size_t>(4 * c + k)];
        rho[static_cast<std::size_t>(n)] +=
            qfinal[static_cast<std::size_t>(c * kQ)];
        ++counts[static_cast<std::size_t>(n)];
      }
    for (gidx_t n = 0; n < nn; ++n)
      if (counts[static_cast<std::size_t>(n)] > 0)
        rho[static_cast<std::size_t>(n)] /=
            counts[static_cast<std::size_t>(n)];
    mesh::write_vtk(vtk_path, mm, grid.c2n, {{"rho", rho}});
    std::cout << "wrote " << vtk_path << '\n';
  }
  return 0;
}
