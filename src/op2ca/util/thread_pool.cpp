#include "op2ca/util/thread_pool.hpp"

#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::util {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  OP2CA_REQUIRE(threads >= 1, "ThreadPool needs threads >= 1");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t)
    workers_.emplace_back(&ThreadPool::worker_main, this, t);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    WallTimer t;
    fn(0);
    busy_seconds_ += t.elapsed();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = threads_;
    ++generation_;
  }
  start_cv_.notify_all();

  // Participant 0: the rank thread works alongside the workers.
  WallTimer t;
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  const double elapsed = t.elapsed();

  std::unique_lock<std::mutex> lock(mu_);
  busy_seconds_ += elapsed;
  if (caller_error && !first_error_) first_error_ = caller_error;
  if (--remaining_ > 0)
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_main(int index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    start_cv_.wait(lock,
                   [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    const std::function<void(int)>* job = job_;
    lock.unlock();

    WallTimer t;
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    const double elapsed = t.elapsed();

    lock.lock();
    busy_seconds_ += elapsed;
    if (error && !first_error_) first_error_ = error;
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

}  // namespace op2ca::util
