#include "op2ca/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::util {
namespace {

// Schedule-stress test hook (see set_task_jitter). Guarded by its own
// mutex for installation; workers take a cheap atomic fast path while it
// is absent, and copy the callable under the lock while it is installed
// (test-only cost).
std::mutex jitter_mu;
std::function<void(int)> jitter_hook;
std::atomic<bool> jitter_present{false};

void apply_jitter(int task) {
  if (!jitter_present.load(std::memory_order_acquire)) return;
  std::function<void(int)> hook;
  {
    std::lock_guard<std::mutex> lock(jitter_mu);
    hook = jitter_hook;
  }
  if (hook) hook(task);
}

}  // namespace

void ThreadPool::set_task_jitter(std::function<void(int)> hook) {
  std::lock_guard<std::mutex> lock(jitter_mu);
  jitter_hook = std::move(hook);
  jitter_present.store(static_cast<bool>(jitter_hook),
                       std::memory_order_release);
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  OP2CA_REQUIRE(threads >= 1, "ThreadPool needs threads >= 1");
  deques_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    deques_.push_back(std::make_unique<WorkDeque>());
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t)
    workers_.emplace_back(&ThreadPool::worker_main, this, t);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    WallTimer t;
    fn(0);
    busy_seconds_ += t.elapsed();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = threads_;
    ++generation_;
  }
  start_cv_.notify_all();

  // Participant 0: the rank thread works alongside the workers.
  WallTimer t;
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  const double elapsed = t.elapsed();

  std::unique_lock<std::mutex> lock(mu_);
  busy_seconds_ += elapsed;
  if (caller_error && !first_error_) first_error_ = caller_error;
  if (--remaining_ > 0)
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_main(int index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    start_cv_.wait(lock,
                   [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    const std::function<void(int)>* job = job_;
    lock.unlock();

    WallTimer t;
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    const double elapsed = t.elapsed();

    lock.lock();
    busy_seconds_ += elapsed;
    if (error && !first_error_) first_error_ = error;
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

// -- Dependency-graph epochs. -------------------------------------------

void ThreadPool::run_graph_serial(int num_tasks,
                                  const std::int32_t* succ_off,
                                  const std::int32_t* succ,
                                  const std::int32_t* indegree,
                                  const std::function<void(int)>& body) {
  // Width-1 path: a FIFO ready queue seeded with the roots in ascending
  // id order. Release order is deterministic, and because the DAG orders
  // every conflicting pair, the per-cell effects match any wider
  // schedule bitwise.
  std::vector<std::int32_t> deps(indegree,
                                 indegree + static_cast<std::size_t>(
                                                num_tasks));
  std::deque<std::int32_t> ready;
  for (std::int32_t i = 0; i < num_tasks; ++i)
    if (deps[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  int done = 0;
  WallTimer t;
  while (!ready.empty()) {
    const std::int32_t task = ready.front();
    ready.pop_front();
    apply_jitter(task);
    body(task);
    ++done;
    for (std::int32_t s = succ_off[task]; s < succ_off[task + 1]; ++s)
      if (--deps[static_cast<std::size_t>(succ[s])] == 0)
        ready.push_back(succ[s]);
  }
  busy_seconds_ += t.elapsed();
  OP2CA_REQUIRE(done == num_tasks,
                "run_graph: dependency graph has a cycle");
}

bool ThreadPool::execute_graph_task(std::int32_t task, WorkDeque& mine) {
  apply_jitter(task);
  try {
    (*graph_body_)(task);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(graph_mu_);
      if (!graph_error_) graph_error_ = std::current_exception();
    }
    graph_abort_.store(true, std::memory_order_release);
    return false;
  }
  for (std::int32_t s = graph_succ_off_[task];
       s < graph_succ_off_[task + 1]; ++s) {
    const std::int32_t next = graph_succ_[s];
    // acq_rel: the release half publishes this task's writes to whoever
    // decrements last; the acquire half makes every predecessor's writes
    // visible to the participant that runs `next`.
    if (deps_[static_cast<std::size_t>(next)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mine.mu);
      mine.q.push_back(next);
    }
  }
  graph_done_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void ThreadPool::graph_participant(int self) {
  // Oversubscription clamp: deques beyond graph_active_ were never
  // seeded and never receive released successors, so excess
  // participants have nothing to do — returning immediately keeps them
  // off the scheduler instead of yield-spinning against the workers
  // that carry the epoch.
  if (self >= graph_active_) return;
  WorkDeque& mine = *deques_[static_cast<std::size_t>(self)];
  double idle = 0;
  WallTimer idle_timer;
  bool idling = false;
  while (!graph_abort_.load(std::memory_order_acquire)) {
    std::int32_t task = -1;
    {
      std::lock_guard<std::mutex> lock(mine.mu);
      if (!mine.q.empty()) {
        task = mine.q.back();
        mine.q.pop_back();
      }
    }
    if (task < 0) {
      for (int i = 1; i < graph_active_ && task < 0; ++i) {
        WorkDeque& victim = *deques_[static_cast<std::size_t>(
            (self + i) % graph_active_)];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.q.empty()) {
          task = victim.q.front();
          victim.q.pop_front();
        }
      }
      if (task >= 0)
        graph_steals_.fetch_add(1, std::memory_order_relaxed);
    }
    if (task < 0) {
      if (graph_done_.load(std::memory_order_acquire) >= graph_total_)
        break;
      if (!idling) {
        idling = true;
        idle_timer.reset();
      }
      // Dependency-starved: some task is still running and nothing is
      // runnable anywhere. Yield rather than spin — with more software
      // threads than cores (common in tests) a hot spin would stall the
      // very task everyone waits on.
      std::this_thread::yield();
      continue;
    }
    if (idling) {
      idle += idle_timer.elapsed();
      idling = false;
    }
    if (!execute_graph_task(task, mine)) break;
  }
  if (idling) idle += idle_timer.elapsed();
  if (idle > 0) {
    std::lock_guard<std::mutex> lock(graph_mu_);
    graph_dep_wait_ += idle;
  }
}

void ThreadPool::run_graph(int num_tasks, const std::int32_t* succ_off,
                           const std::int32_t* succ,
                           const std::int32_t* indegree,
                           const std::function<void(int)>& body,
                           GraphStats* stats) {
  if (stats != nullptr) {
    stats->tasks = num_tasks;
    stats->steals = 0;
    stats->dep_wait_seconds = 0;
  }
  if (num_tasks <= 0) return;
  // More participants than cores is pure overhead for CPU-bound graph
  // tasks — they time-slice against each other and the yield loop — and
  // the DAG makes the worker count bitwise-irrelevant, so clamp to the
  // hardware. The schedule-stress hook disables the clamp: those tests
  // exist precisely to drive oversubscribed interleavings.
  const unsigned hw = std::thread::hardware_concurrency();
  int active = threads_;
  if (hw > 0 && !jitter_present.load(std::memory_order_acquire))
    active = std::min(threads_, static_cast<int>(hw));
  if (active == 1) {
    run_graph_serial(num_tasks, succ_off, succ, indegree, body);
    return;
  }

  if (deps_capacity_ < static_cast<std::size_t>(num_tasks)) {
    deps_capacity_ = static_cast<std::size_t>(num_tasks);
    deps_ = std::make_unique<std::atomic<std::int32_t>[]>(deps_capacity_);
  }
  for (std::int32_t i = 0; i < num_tasks; ++i)
    deps_[static_cast<std::size_t>(i)].store(
        indegree[static_cast<std::size_t>(i)], std::memory_order_relaxed);

  // Seed the roots round-robin in ascending id order (deques are empty
  // between epochs): every participant starts with local work.
  int seeded = 0;
  for (std::int32_t i = 0; i < num_tasks; ++i)
    if (indegree[static_cast<std::size_t>(i)] == 0)
      deques_[static_cast<std::size_t>(seeded++ % active)]->q.push_back(i);
  OP2CA_REQUIRE(seeded > 0, "run_graph: graph has no root tasks");
  graph_active_ = active;

  graph_succ_off_ = succ_off;
  graph_succ_ = succ;
  graph_body_ = &body;
  graph_total_ = num_tasks;
  graph_done_.store(0, std::memory_order_relaxed);
  graph_abort_.store(false, std::memory_order_relaxed);
  graph_steals_.store(0, std::memory_order_relaxed);
  graph_dep_wait_ = 0;

  run([this](int t) { graph_participant(t); });

  graph_body_ = nullptr;
  if (graph_abort_.load(std::memory_order_acquire)) {
    // Abandoned tasks may still sit in the deques; drain them so the
    // next epoch starts clean.
    for (auto& d : deques_) d->q.clear();
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(graph_mu_);
      err = graph_error_;
      graph_error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
    raise("run_graph: epoch aborted without an error");
  }
  OP2CA_REQUIRE(graph_done_.load(std::memory_order_acquire) == num_tasks,
                "run_graph: dependency graph has a cycle");
  if (stats != nullptr) {
    stats->steals = graph_steals_.load(std::memory_order_relaxed);
    stats->dep_wait_seconds = graph_dep_wait_;
  }
}

}  // namespace op2ca::util
