// Error handling for op2ca.
//
// The library throws op2ca::Error for all recoverable misuse (bad arity,
// unknown set, insufficient halo depth, ...). OP2CA_REQUIRE is used at API
// boundaries; OP2CA_ASSERT guards internal invariants and compiles to a
// cheap check that is kept in release builds because every call site is
// outside inner loops.
#pragma once

#include <stdexcept>
#include <string>

namespace op2ca {

/// Exception type thrown by every op2ca component on API misuse or
/// violated invariants. Carries a human-readable message with context.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

namespace detail {
[[noreturn]] void raise_with_location(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace op2ca

/// Precondition check at public API boundaries. Always enabled.
#define OP2CA_REQUIRE(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::op2ca::detail::raise_with_location(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Internal invariant check. Always enabled (call sites are cold paths).
#define OP2CA_ASSERT(cond, msg) OP2CA_REQUIRE(cond, msg)
