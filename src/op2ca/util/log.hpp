// Minimal leveled logger. Thread-safe (one global mutex around emission),
// printf-free, stream-style. Level is process-wide and settable from the
// OP2CA_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace op2ca::log {

enum class Level : int { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/// Current global log level. Defaults to Warn; overridable via OP2CA_LOG.
Level level();
void set_level(Level lvl);
Level parse_level(const std::string& name);

/// Emits one formatted line; used by the LOG_* macros below.
void emit(Level lvl, const std::string& msg);

namespace detail {
class LineSink {
public:
  explicit LineSink(Level lvl) : lvl_(lvl) {}
  ~LineSink() { emit(lvl_, os_.str()); }
  LineSink(const LineSink&) = delete;
  LineSink& operator=(const LineSink&) = delete;
  template <typename T>
  LineSink& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace op2ca::log

#define OP2CA_LOG(lvl)                                  \
  if (::op2ca::log::level() < ::op2ca::log::Level::lvl) \
    ;                                                   \
  else                                                  \
    ::op2ca::log::detail::LineSink(::op2ca::log::Level::lvl)

#define OP2CA_LOG_ERROR OP2CA_LOG(Error)
#define OP2CA_LOG_WARN OP2CA_LOG(Warn)
#define OP2CA_LOG_INFO OP2CA_LOG(Info)
#define OP2CA_LOG_DEBUG OP2CA_LOG(Debug)
#define OP2CA_LOG_TRACE OP2CA_LOG(Trace)
