#include "op2ca/util/rng.hpp"

#include "op2ca/util/error.hpp"

namespace op2ca {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  OP2CA_REQUIRE(lo <= hi, "Rng::next_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::next_range(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t mix = s_[0] ^ (stream_id * 0xd1342543de82ef95ull);
  return Rng(mix + 0x2545f4914f6cdd1dull);
}

}  // namespace op2ca
