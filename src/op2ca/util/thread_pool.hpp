// Per-rank worker pool for shared-memory parallel region execution.
//
// One pool belongs to one simulated rank: the rank thread is participant
// 0 and `threads - 1` persistent workers join it inside run(). run() is a
// fork-join barrier — it returns only after every participant finished —
// so the caller may freely read/write rank-local state between calls
// without extra synchronisation (the completion handshake goes through
// the pool mutex, which publishes all worker writes to the caller).
//
// Exceptions thrown by any participant (e.g. the validation raise in
// resolve_arg) are captured and the first one is rethrown from run() on
// the rank thread, preserving the World::run error-collection contract.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace op2ca::util {

class ThreadPool {
public:
  /// Total participant count including the caller; spawns threads - 1
  /// workers. threads must be >= 1 (1 = no workers, run() degenerates to
  /// a plain call of fn(0)).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Invokes fn(t) for every t in [0, threads) — t = 0 on the calling
  /// thread — and blocks until all participants returned. Rethrows the
  /// first captured exception. Not reentrant.
  void run(const std::function<void(int)>& fn);

  /// Total seconds participants spent inside fn across all run() calls
  /// (per-thread busy time, summed). Stable between run() calls.
  double busy_seconds() const { return busy_seconds_; }

private:
  void worker_main(int index);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes workers.
  int remaining_ = 0;             ///< participants still inside the job.
  bool stopping_ = false;
  std::exception_ptr first_error_;
  double busy_seconds_ = 0;
};

}  // namespace op2ca::util
