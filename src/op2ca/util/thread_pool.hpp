// Per-rank worker pool for shared-memory parallel region execution.
//
// One pool belongs to one simulated rank: the rank thread is participant
// 0 and `threads - 1` persistent workers join it inside run(). run() is a
// fork-join barrier — it returns only after every participant finished —
// so the caller may freely read/write rank-local state between calls
// without extra synchronisation (the completion handshake goes through
// the pool mutex, which publishes all worker writes to the caller).
//
// run_graph() executes a task DAG instead of a flat job: tasks carry
// atomic dependency counters and completed tasks release their
// successors into per-worker deques, which idle participants steal from
// (LIFO for the owner, FIFO for thieves). One graph execution is one
// epoch of the same fork-join handshake, so the completion guarantees of
// run() carry over unchanged.
//
// Exceptions thrown by any participant (e.g. the validation raise in
// resolve_arg) are captured and the first one is rethrown from run() /
// run_graph() on the rank thread, preserving the World::run
// error-collection contract. A throwing graph task additionally aborts
// the epoch: remaining tasks are abandoned, every participant drains,
// and the pool stays reusable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace op2ca::util {

/// Per-epoch counters of one run_graph() call.
struct GraphStats {
  std::int64_t tasks = 0;   ///< task bodies executed.
  std::int64_t steals = 0;  ///< tasks taken from another worker's deque.
  double dep_wait_seconds = 0;  ///< summed idle time spent dependency-
                                ///< starved (no runnable task anywhere).
};

class ThreadPool {
public:
  /// Total participant count including the caller; spawns threads - 1
  /// workers. threads must be >= 1 (1 = no workers, run() degenerates to
  /// a plain call of fn(0)).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Invokes fn(t) for every t in [0, threads) — t = 0 on the calling
  /// thread — and blocks until all participants returned. Rethrows the
  /// first captured exception. Not reentrant.
  void run(const std::function<void(int)>& fn);

  /// Executes a dependency DAG of `num_tasks` tasks: body(i) runs exactly
  /// once per task, never before all of i's predecessors finished.
  /// succ_off/succ is the successor CSR (succ_off has num_tasks + 1
  /// entries); indegree[i] is task i's predecessor count (read-only —
  /// the pool keeps its own atomic counters). Roots are seeded
  /// round-robin across the participants' deques in ascending task
  /// order; a completed task pushes each successor whose counter reaches
  /// zero onto the finishing worker's deque. With threads() == 1 the
  /// ready set degenerates to a FIFO processed on the caller — the same
  /// per-cell execution order as any wider schedule, since the DAG, not
  /// the schedule, orders every pair of conflicting tasks. Blocks until
  /// the whole graph drained; rethrows the first task exception (the
  /// epoch aborts, remaining tasks are skipped, and the pool remains
  /// usable). Not reentrant: a task body must not call back into the
  /// pool. `stats`, when given, receives this epoch's counters.
  /// Participants are clamped to hardware_concurrency() per epoch —
  /// oversubscribed workers only time-slice against each other, and the
  /// DAG makes the worker count bitwise-irrelevant — except while a
  /// task-jitter hook is installed (the stress suites drive
  /// oversubscribed schedules on purpose).
  void run_graph(int num_tasks, const std::int32_t* succ_off,
                 const std::int32_t* succ, const std::int32_t* indegree,
                 const std::function<void(int)>& body,
                 GraphStats* stats = nullptr);

  /// Test hook (schedule-stress suites): `hook(task)` runs at the start
  /// of every graph task on the executing thread — e.g. a randomized
  /// sleep that perturbs the schedule. Global across pools; pass nullptr
  /// to clear. Must only be (un)installed while no graph is running.
  static void set_task_jitter(std::function<void(int)> hook);

  /// Total seconds participants spent inside fn across all run() calls
  /// (per-thread busy time, summed). Stable between run() calls.
  double busy_seconds() const { return busy_seconds_; }

private:
  /// One participant's ready-task deque. The owner pushes and pops at
  /// the back (LIFO keeps released successors cache-warm); thieves take
  /// from the front (FIFO steals the oldest, largest-subtree work).
  struct WorkDeque {
    std::mutex mu;
    std::deque<std::int32_t> q;
  };

  void worker_main(int index);
  void graph_participant(int self);
  /// Runs one task body and releases its successors. Returns false when
  /// the epoch aborted (task threw).
  bool execute_graph_task(std::int32_t task, WorkDeque& mine);
  void run_graph_serial(int num_tasks, const std::int32_t* succ_off,
                        const std::int32_t* succ,
                        const std::int32_t* indegree,
                        const std::function<void(int)>& body);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes workers.
  int remaining_ = 0;             ///< participants still inside the job.
  bool stopping_ = false;
  std::exception_ptr first_error_;
  double busy_seconds_ = 0;

  // Graph-epoch state, valid only while run_graph() is inside run().
  std::vector<std::unique_ptr<WorkDeque>> deques_;  ///< one per thread.
  std::unique_ptr<std::atomic<std::int32_t>[]> deps_;
  std::size_t deps_capacity_ = 0;
  const std::int32_t* graph_succ_off_ = nullptr;
  const std::int32_t* graph_succ_ = nullptr;
  const std::function<void(int)>* graph_body_ = nullptr;
  int graph_total_ = 0;
  int graph_active_ = 1;  ///< participants this epoch (oversubscription
                          ///< clamp; excess participants return at once).
  std::atomic<int> graph_done_{0};
  std::atomic<bool> graph_abort_{false};
  std::atomic<std::int64_t> graph_steals_{0};
  std::mutex graph_mu_;  ///< guards graph_error_ and graph_dep_wait_.
  std::exception_ptr graph_error_;
  double graph_dep_wait_ = 0;
};

}  // namespace op2ca::util
