// Wall-clock and virtual timers.
//
// WallTimer measures real host time (used for kernel-cost calibration and
// small-scale execution benches). VirtualClock accumulates modeled time in
// seconds as charged by the communication cost model; every simulated rank
// owns one, so experiments at paper scale report machine-parameterised
// times rather than this host's.
#pragma once

#include <chrono>
#include <cstdint>

namespace op2ca {

/// Monotonic wall-clock stopwatch.
class WallTimer {
public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulator for modeled (simulated-machine) time.
class VirtualClock {
public:
  void advance(double seconds) { t_ += seconds; }
  /// Fast-forwards to `seconds` if it is later than the current time;
  /// models waiting on an event that completes at an absolute time.
  void advance_to(double seconds) {
    if (seconds > t_) t_ = seconds;
  }
  double now() const { return t_; }
  void reset() { t_ = 0.0; }

private:
  double t_ = 0.0;
};

/// Scoped accumulation of wall time into a double.
class ScopedWallTimer {
public:
  explicit ScopedWallTimer(double& sink) : sink_(sink) {}
  ~ScopedWallTimer() { sink_ += timer_.elapsed(); }
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace op2ca
