#include "op2ca/util/options.hpp"

#include <cstdlib>

#include "op2ca/util/error.hpp"

namespace op2ca {

Options::Options(int argc, const char* const* argv,
                 std::set<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // `--name value` form when the next token is not an option and the
      // option is known to take a value; otherwise treat as boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
          known.count(name) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    OP2CA_REQUIRE(known.count(name) != 0, "Unknown option --" + name);
    values_[name] = value;
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  OP2CA_REQUIRE(end && *end == '\0', "Option --" + name + " is not an int");
  return v;
}

double Options::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  OP2CA_REQUIRE(end && *end == '\0', "Option --" + name + " is not a double");
  return v;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  raise("Option --" + name + " is not a boolean: " + v);
}

}  // namespace op2ca
