// timer.hpp is header-only; this TU exists so the build exposes a stable
// object for the target and future non-inline additions.
#include "op2ca/util/timer.hpp"
