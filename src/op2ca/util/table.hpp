// ASCII table and CSV emission for bench harnesses. Every table/figure
// bench prints a paper-style table through this module so output formats
// stay consistent and machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace op2ca {

/// One cell: string, integer or floating value (fixed formatting applied).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned ASCII table with an optional title, printable to any
/// stream and exportable to CSV.
class Table {
public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> names);
  void add_row(std::vector<Cell> cells);
  /// Number of fractional digits used when rendering doubles (default 3).
  void set_precision(int digits);

  std::size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// Convenience: print to stdout.
  void print() const;

private:
  std::string render_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

/// Formats a double with `digits` fractional digits into a string.
std::string format_double(double v, int digits);
/// Formats bytes with thousands separators for readability.
std::string format_count(std::int64_t v);

}  // namespace op2ca
