// Cache-line-aligned storage for the data plane.
//
// Dat arrays and message staging buffers start on 64-byte boundaries so
// unit-stride component loops and the chunked memcpy pack paths never
// split their first vector across cache lines. std::vector's default
// allocator only guarantees alignof(std::max_align_t) (16 on x86-64);
// AlignedAlloc upgrades that without changing any vector semantics —
// moves still transfer the pointer, so buffers recycled through the
// BufferPool and the zero-copy transport keep their alignment for life.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace op2ca::util {

inline constexpr std::size_t kCacheLine = 64;

template <typename T, std::size_t Align = kCacheLine>
struct AlignedAlloc {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) {
    return true;
  }
};

/// 64-byte-aligned double storage for dat arrays.
using AlignedDVec = std::vector<double, AlignedAlloc<double>>;

/// True when `p` starts on a cache-line boundary.
inline bool cache_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & (kCacheLine - 1)) == 0;
}

}  // namespace op2ca::util

namespace op2ca {

/// Message staging / payload buffer: 64-byte-aligned byte storage, moved
/// end-to-end through the transport's mailboxes and the BufferPool.
using ByteBuf = std::vector<std::byte, util::AlignedAlloc<std::byte>>;

}  // namespace op2ca
