// Fundamental index and size types shared across op2ca.
#pragma once

#include <cstdint>
#include <vector>

namespace op2ca {

/// Global element index within a set (mesh-wide numbering).
using gidx_t = std::int64_t;
/// Local element index within a rank's renumbered set.
using lidx_t = std::int32_t;
/// Rank id in the simulated communicator.
using rank_t = std::int32_t;

inline constexpr lidx_t kInvalidLocal = -1;
inline constexpr gidx_t kInvalidGlobal = -1;

using GIdxVec = std::vector<gidx_t>;
using LIdxVec = std::vector<lidx_t>;

}  // namespace op2ca
