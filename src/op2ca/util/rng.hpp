// Deterministic pseudo-random number generation (SplitMix64 seeding an
// xoshiro256** core). Used by mesh perturbation, synthetic data init and
// the property-test sweeps; the library never uses std::random_device so
// every run is reproducible.
#pragma once

#include <cstdint>

namespace op2ca {

/// xoshiro256** generator with SplitMix64-based seeding.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);
  /// True with probability p.
  bool next_bool(double p = 0.5);

  /// Derives an independent stream for a sub-component (e.g. per rank).
  Rng split(std::uint64_t stream_id) const;

private:
  std::uint64_t s_[4];
};

}  // namespace op2ca
