// Tiny command-line option parser used by benches and examples.
// Supports `--name=value`, `--name value`, boolean `--flag`, with typed
// accessors and defaults. Unknown options raise so typos do not silently
// change an experiment.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace op2ca {

class Options {
public:
  /// Parses argv. `known` lists accepted option names (without leading --).
  Options(int argc, const char* const* argv, std::set<std::string> known);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Non-option positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace op2ca
