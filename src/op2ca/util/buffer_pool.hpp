// Recycling pool of byte buffers for message staging.
//
// The zero-copy transport moves send payloads into the destination
// mailbox, so a sender cannot keep reusing one staging buffer: every
// isend gives its storage away. The pool closes the loop instead: after a
// rank unpacks a received message it releases the (moved-in) payload
// here, and the next pack acquires it. In a symmetric exchange every rank
// receives as many buffers per epoch as it sends, so after a warm-up
// epoch or two (while capacities converge to the largest message) the
// steady state performs zero heap allocations.
//
// Not thread-safe: one pool belongs to one rank thread. Buffers crossing
// ranks are handed over through the transport's mutex-protected mailbox.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace op2ca {

class BufferPool {
public:
  /// Returns a buffer resized to `bytes`. Best fit: the smallest pooled
  /// buffer that already holds `bytes` (keeping larger ones for larger
  /// requests — mixed message sizes would otherwise re-grow a small
  /// buffer every epoch); with no fit, the largest one grows. Counts an
  /// allocation when storage is created or grown.
  std::vector<std::byte> take(std::size_t bytes) {
    high_water_ = std::max(high_water_, bytes);
    if (free_.empty()) {
      ++allocations_;
      std::vector<std::byte> buf;
      buf.reserve(high_water_);  // one growth covers all future requests
      buf.resize(bytes);
      return buf;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_.size(); ++i) {
      const std::size_t c = free_[i].capacity();
      const std::size_t b = free_[best].capacity();
      const bool better = b < bytes ? c > b : (c >= bytes && c < b);
      if (better) best = i;
    }
    std::vector<std::byte> buf = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() < bytes) {
      ++allocations_;
      buf.reserve(high_water_);
    }
    buf.resize(bytes);
    return buf;
  }

  /// Returns a buffer to the pool. Empty buffers are dropped.
  void release(std::vector<std::byte> buf) {
    if (buf.capacity() == 0) return;
    if (free_.size() >= kMaxPooled) return;  // let it free
    free_.push_back(std::move(buf));
  }

  /// Times take() had to allocate or grow storage (steady state: flat).
  std::int64_t allocations() const { return allocations_; }
  std::size_t pooled() const { return free_.size(); }

private:
  static constexpr std::size_t kMaxPooled = 64;
  std::vector<std::vector<std::byte>> free_;
  std::int64_t allocations_ = 0;
  std::size_t high_water_ = 0;  ///< largest request seen.
};

}  // namespace op2ca
