// Recycling pool of byte buffers for message staging.
//
// The zero-copy transport moves send payloads into the destination
// mailbox, so a sender cannot keep reusing one staging buffer: every
// isend gives its storage away. The pool closes the loop instead: after a
// rank unpacks a received message it releases the (moved-in) payload
// here, and the next pack acquires it. In a symmetric exchange every rank
// receives as many buffers per epoch as it sends, so after a warm-up
// epoch or two (while capacities converge to the largest message) the
// steady state performs zero heap allocations.
//
// The high-water mark DECAYS: demand is tracked per window of
// kDecayWindow takes, and when a window closes the mark drops to that
// window's maximum and pooled buffers an old spike left behind (capacity
// beyond twice the new mark) are freed. A one-off large chain therefore
// stops pinning peak memory once steady-state traffic shrinks, while a
// steady workload — whose window maximum equals its message size — keeps
// its buffers and its zero-allocation property.
//
// Not thread-safe: one pool belongs to one rank thread. Buffers crossing
// ranks are handed over through the transport's mutex-protected mailbox.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "op2ca/util/aligned.hpp"

namespace op2ca {

class BufferPool {
public:
  /// Returns a buffer resized to `bytes`. Best fit: the smallest pooled
  /// buffer that already holds `bytes` (keeping larger ones for larger
  /// requests — mixed message sizes would otherwise re-grow a small
  /// buffer every epoch); with no fit, the largest one grows. Counts an
  /// allocation when storage is created or grown. Every reserve is
  /// rounded up to a whole number of cache lines so recycled storage
  /// stays line-granular (ByteBuf's allocator provides the 64-byte
  /// block starts themselves).
  ByteBuf take(std::size_t bytes) {
    high_water_ = std::max(high_water_, round_line(bytes));
    window_max_ = std::max(window_max_, round_line(bytes));
    if (++window_takes_ >= kDecayWindow) decay();
    if (free_.empty()) {
      ++allocations_;
      ByteBuf buf;
      buf.reserve(high_water_);  // one growth covers all future requests
      buf.resize(bytes);
      return buf;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_.size(); ++i) {
      const std::size_t c = free_[i].capacity();
      const std::size_t b = free_[best].capacity();
      const bool better = b < bytes ? c > b : (c >= bytes && c < b);
      if (better) best = i;
    }
    ByteBuf buf = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() < bytes) {
      ++allocations_;
      buf.reserve(high_water_);
    }
    buf.resize(bytes);
    return buf;
  }

  /// Returns a buffer to the pool. Empty buffers are dropped, as are
  /// buffers an old demand spike oversized relative to the decayed
  /// high-water mark (letting their memory actually return to the heap).
  void release(ByteBuf buf) {
    if (buf.capacity() == 0) return;
    if (buf.capacity() > retain_cap()) return;  // spike leftover
    if (free_.size() >= kMaxPooled) return;     // let it free
    free_.push_back(std::move(buf));
  }

  /// Times take() had to allocate or grow storage (steady state: flat).
  std::int64_t allocations() const { return allocations_; }
  std::size_t pooled() const { return free_.size(); }
  /// Total capacity currently parked in the pool.
  std::size_t pooled_bytes() const {
    std::size_t total = 0;
    for (const auto& b : free_) total += b.capacity();
    return total;
  }
  /// Current (decaying) demand estimate new allocations reserve for.
  std::size_t high_water() const { return high_water_; }

private:
  static constexpr std::size_t kMaxPooled = 64;
  /// take() calls per demand window; one window of smaller requests is
  /// enough for the mark to follow demand down.
  static constexpr std::size_t kDecayWindow = 64;

  /// Reserve granularity: whole cache lines, matching the aligned block
  /// starts the ByteBuf allocator guarantees.
  static std::size_t round_line(std::size_t bytes) {
    return (bytes + util::kCacheLine - 1) & ~(util::kCacheLine - 1);
  }

  /// Retention threshold: 2x the mark tolerates allocator rounding and
  /// mild jitter without churning buffers at the boundary.
  std::size_t retain_cap() const { return 2 * high_water_; }

  /// Window rollover: the mark drops to the closing window's maximum and
  /// pooled capacities beyond the new retention threshold are freed.
  void decay() {
    high_water_ = window_max_;
    window_max_ = 0;
    window_takes_ = 0;
    free_.erase(std::remove_if(free_.begin(), free_.end(),
                               [this](const ByteBuf& b) {
                                 return b.capacity() > retain_cap();
                               }),
                free_.end());
  }

  std::vector<ByteBuf> free_;
  std::int64_t allocations_ = 0;
  std::size_t high_water_ = 0;   ///< decaying demand estimate.
  std::size_t window_max_ = 0;   ///< largest request this window.
  std::size_t window_takes_ = 0;
};

}  // namespace op2ca
