#include "op2ca/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "op2ca/util/error.hpp"

namespace op2ca {

void Table::set_header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void Table::add_row(std::vector<Cell> cells) {
  OP2CA_REQUIRE(header_.empty() || cells.size() == header_.size(),
                "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::set_precision(int digits) { precision_ = digits; }

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  return format_double(std::get<double>(c), precision_);
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size() + 1);
  if (!header_.empty()) cells.push_back(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(render_cell(c));
    cells.push_back(std::move(r));
  }

  std::vector<std::size_t> width;
  for (const auto& row : cells) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  bool first = true;
  for (const auto& row : cells) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::setw(static_cast<int>(width[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
    if (first && !header_.empty()) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        os << std::string(width[i], '-');
        if (i + 1 < width.size()) os << "  ";
      }
      os << '\n';
      first = false;
    }
  }
}

void Table::write_csv(std::ostream& os) const {
  auto emit_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::string& cell = row[i];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(render_cell(c));
    emit_row(r);
  }
}

void Table::print() const { print(std::cout); }

std::string format_double(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string format_count(std::int64_t v) {
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  int cnt = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (cnt && cnt % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++cnt;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace op2ca
