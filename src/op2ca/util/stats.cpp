#include "op2ca/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "op2ca/util/error.hpp"

namespace op2ca {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::min() const {
  OP2CA_REQUIRE(n_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  OP2CA_REQUIRE(n_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

double Accumulator::mean() const {
  OP2CA_REQUIRE(n_ > 0, "Accumulator::mean on empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::cov() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return summarize(acc);
}

Summary summarize(const Accumulator& acc) {
  Summary s;
  s.count = acc.count();
  if (s.count > 0) {
    s.min = acc.min();
    s.max = acc.max();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
  }
  s.sum = acc.sum();
  return s;
}

double vec_max(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, x);
  return m;
}

std::int64_t vec_max(std::span<const std::int64_t> xs) {
  std::int64_t m = 0;
  for (std::int64_t x : xs) m = std::max(m, x);
  return m;
}

double vec_sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

std::int64_t vec_sum(std::span<const std::int64_t> xs) {
  std::int64_t s = 0;
  for (std::int64_t x : xs) s += x;
  return s;
}

}  // namespace op2ca
