// Small statistics helpers: running accumulator (min/max/mean/stddev) and
// reductions over vectors. Used for per-rank communication statistics and
// for reporting run-to-run variation in benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace op2ca {

/// Streaming accumulator using Welford's algorithm.
class Accumulator {
public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double sum() const { return sum_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cov() const;

private:
  std::size_t n_ = 0;
  double min_ = 0.0, max_ = 0.0;
  double mean_ = 0.0, m2_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a finished accumulation, convenient for struct returns.
struct Summary {
  std::size_t count = 0;
  double min = 0.0, max = 0.0, mean = 0.0, stddev = 0.0, sum = 0.0;
};

Summary summarize(std::span<const double> xs);
Summary summarize(const Accumulator& acc);

/// Maximum over a vector of per-rank values (the analytic model uses
/// critical-path maxima throughout).
double vec_max(std::span<const double> xs);
std::int64_t vec_max(std::span<const std::int64_t> xs);
double vec_sum(std::span<const double> xs);
std::int64_t vec_sum(std::span<const std::int64_t> xs);

}  // namespace op2ca
