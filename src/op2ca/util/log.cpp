#include "op2ca/util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "op2ca/util/error.hpp"

namespace op2ca {

namespace detail {
[[noreturn]] void raise_with_location(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [failed: " << expr << " at " << file << ":" << line << "]";
  throw Error(os.str());
}
}  // namespace detail

namespace log {
namespace {

Level initial_level() {
  if (const char* env = std::getenv("OP2CA_LOG")) return parse_level(env);
  return Level::Warn;
}

std::atomic<Level>& level_ref() {
  static std::atomic<Level> lvl{initial_level()};
  return lvl;
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Error: return "ERROR";
    case Level::Warn: return "WARN ";
    case Level::Info: return "INFO ";
    case Level::Debug: return "DEBUG";
    case Level::Trace: return "TRACE";
  }
  return "?????";
}

}  // namespace

Level level() { return level_ref().load(std::memory_order_relaxed); }

void set_level(Level lvl) {
  level_ref().store(lvl, std::memory_order_relaxed);
}

Level parse_level(const std::string& name) {
  if (name == "error") return Level::Error;
  if (name == "warn") return Level::Warn;
  if (name == "info") return Level::Info;
  if (name == "debug") return Level::Debug;
  if (name == "trace") return Level::Trace;
  return Level::Warn;
}

void emit(Level lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::cerr << "[op2ca:" << level_name(lvl) << "] " << msg << '\n';
}

}  // namespace log
}  // namespace op2ca
