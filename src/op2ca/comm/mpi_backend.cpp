#include "op2ca/comm/mpi_backend.hpp"

#include <cstdlib>

#include "op2ca/util/error.hpp"

namespace op2ca::sim {

// Launcher detection is a pure environment probe shared by the real and
// stub builds: OpenMPI (OMPI_*), MPICH/hydra and derivatives (PMI_*),
// PMIx-based launchers, and srun's PMI2 all export a world-size variable
// to every spawned process.
bool MpiBackend::launched_under_mpirun() {
  static const char* const kVars[] = {
      "OMPI_COMM_WORLD_SIZE", "PMI_SIZE", "PMIX_SIZE", "PMIX_RANK",
      "MV2_COMM_WORLD_SIZE",  "MPI_LOCALNRANKS",
  };
  for (const char* v : kVars)
    if (std::getenv(v) != nullptr) return true;
  return false;
}

}  // namespace op2ca::sim

#ifdef OP2CA_HAVE_MPI

#include <mpi.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

namespace op2ca::sim {

// Real-MPI implementation. One MPI process per rank; worker threads of
// the local rank may post concurrently (taskgraph pack isends), so every
// MPI call runs under one mutex — MPI_THREAD_SERIALIZED is sufficient —
// and blocking matches poll with the mutex released between probes so
// concurrent posts make progress.
struct MpiBackend::Impl {
  std::mutex mu;
  std::deque<std::pair<MPI_Request, ByteBuf>> pending;
  std::atomic<bool> poisoned{false};

  void drain_completed() {
    while (!pending.empty()) {
      int done = 0;
      MPI_Test(&pending.front().first, &done, MPI_STATUS_IGNORE);
      if (!done) break;
      pending.pop_front();
    }
  }
};

namespace {

int mpi_tag(tag_t tag) { return static_cast<int>(tag + kMpiTagShift); }

// Process-wide MPI lifecycle guard. Exactly one MPI_Init_thread happens
// no matter how many MpiBackends a process constructs (the test binaries
// build Worlds in sequence), and the matching MPI_Finalize runs once at
// process exit — never from a backend destructor, where it would kill
// MPI under a sibling World constructed later. An externally initialized
// MPI (embedding application) is respected: we query its thread level
// instead of re-initializing, and never finalize what we did not start.
struct MpiEnv {
  bool we_initialized = false;

  MpiEnv() {
    int initialized = 0;
    MPI_Initialized(&initialized);
    int provided = 0;
    if (!initialized) {
      MPI_Init_thread(nullptr, nullptr, MPI_THREAD_SERIALIZED, &provided);
      we_initialized = true;
    } else {
      MPI_Query_thread(&provided);
    }
    OP2CA_REQUIRE(
        provided >= MPI_THREAD_SERIALIZED,
        "MpiBackend: the MPI library provides thread level " +
            std::to_string(provided) + " but MPI_THREAD_SERIALIZED (" +
            std::to_string(MPI_THREAD_SERIALIZED) +
            ") is required — taskgraph pack workers post sends "
            "concurrently under one mutex");
  }

  ~MpiEnv() {
    if (!we_initialized) return;
    int finalized = 0;
    MPI_Finalized(&finalized);
    if (!finalized) MPI_Finalize();
  }
};

/// First call initializes MPI (idempotent from then on); the static's
/// destructor finalizes at process exit.
MpiEnv& mpi_env() {
  static MpiEnv env;
  return env;
}

}  // namespace

bool MpiBackend::compiled_with_mpi() { return true; }

int MpiBackend::mpi_world_size() {
  mpi_env();
  int size = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  return size;
}

MpiBackend::MpiBackend(int nranks)
    : nranks_(nranks), impl_(std::make_unique<Impl>()) {
  OP2CA_REQUIRE(nranks > 0, "MpiBackend requires at least one rank");
  mpi_env();
  int size = 0, rank = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  OP2CA_REQUIRE(size == nranks,
                "MpiBackend: World has " + std::to_string(nranks) +
                    " ranks but MPI_COMM_WORLD has " +
                    std::to_string(size) +
                    " processes; launch one process per rank (e.g. "
                    "mpirun -np " + std::to_string(nranks) + ")");
  local_rank_ = static_cast<rank_t>(rank);
}

MpiBackend::~MpiBackend() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [req, buf] : impl_->pending)
    MPI_Wait(&req, MPI_STATUS_IGNORE);
  impl_->pending.clear();
}

const char* MpiBackend::name() const { return "mpi"; }

void MpiBackend::post(Message msg) {
  OP2CA_REQUIRE(msg.src == local_rank_,
                "MpiBackend::post: rank " + std::to_string(msg.src) +
                    " is not local to this process");
  OP2CA_REQUIRE(msg.dst >= 0 && msg.dst < nranks_,
                "MpiBackend::post destination out of range");
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drain_completed();
  MPI_Request req;
  MPI_Isend(msg.payload.data(), static_cast<int>(msg.payload.size()),
            MPI_BYTE, msg.dst, mpi_tag(msg.tag), MPI_COMM_WORLD, &req);
  // The buffer stays alive in the pending list until the send completes.
  impl_->pending.emplace_back(req, std::move(msg.payload));
}

bool MpiBackend::try_match(rank_t dst, rank_t src, tag_t tag,
                           Message* out) {
  OP2CA_REQUIRE(dst == local_rank_,
                "MpiBackend::match: rank " + std::to_string(dst) +
                    " is not local to this process");
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drain_completed();
  int flag = 0;
  MPI_Message mmsg;
  MPI_Status status;
  MPI_Improbe(src, mpi_tag(tag), MPI_COMM_WORLD, &flag, &mmsg, &status);
  if (!flag) return false;
  int count = 0;
  MPI_Get_count(&status, MPI_BYTE, &count);
  out->src = src;
  out->dst = dst;
  out->tag = tag;
  out->payload.resize(static_cast<std::size_t>(count));
  MPI_Mrecv(out->payload.data(), count, MPI_BYTE, &mmsg,
            MPI_STATUS_IGNORE);
  return true;
}

bool MpiBackend::match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                           double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (true) {
    if (impl_->poisoned.load())
      raise("Transport poisoned: a peer rank failed while this rank was "
            "waiting for a message");
    if (try_match(dst, src, tag, out)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
}

Message MpiBackend::match(rank_t dst, rank_t src, tag_t tag) {
  Message out;
  while (!match_for(dst, src, tag, &out, 1.0)) {
  }
  return out;
}

void MpiBackend::barrier() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  MPI_Barrier(MPI_COMM_WORLD);
}

std::size_t MpiBackend::in_flight() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->pending.size();
}

void MpiBackend::poison() {
  // Unblock local waiters; a distributed failure cannot wake remote
  // ranks without aborting the job, which is the caller's decision.
  impl_->poisoned.store(true);
}

bool MpiBackend::poisoned() const { return impl_->poisoned.load(); }

}  // namespace op2ca::sim

#else  // !OP2CA_HAVE_MPI

namespace op2ca::sim {

// Compile-only stub: the MPI protocol layer (shifted tags, identical
// framing) over an in-process fabric. Keeps MPI-less builds and the
// -DOP2CA_MPI=ON CI leg green, and gives the equivalence suite a second
// backend to hold against the sim fabric.
struct MpiBackend::Impl {
  explicit Impl(int nranks) : fabric(nranks) {}
  Transport fabric;
};

namespace {
tag_t mpi_tag(tag_t tag) { return tag + kMpiTagShift; }
}  // namespace

bool MpiBackend::compiled_with_mpi() { return false; }

int MpiBackend::mpi_world_size() { return 1; }

MpiBackend::MpiBackend(int nranks)
    : nranks_(nranks), impl_(std::make_unique<Impl>(nranks)) {}

MpiBackend::~MpiBackend() = default;

const char* MpiBackend::name() const { return "mpi-stub"; }

void MpiBackend::post(Message msg) {
  msg.tag = mpi_tag(msg.tag);
  impl_->fabric.post(std::move(msg));
}

Message MpiBackend::match(rank_t dst, rank_t src, tag_t tag) {
  Message out = impl_->fabric.match(dst, src, mpi_tag(tag));
  out.tag = tag;
  return out;
}

bool MpiBackend::try_match(rank_t dst, rank_t src, tag_t tag,
                           Message* out) {
  if (!impl_->fabric.try_match(dst, src, mpi_tag(tag), out)) return false;
  out->tag = tag;
  return true;
}

bool MpiBackend::match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                           double timeout_s) {
  if (!impl_->fabric.match_for(dst, src, mpi_tag(tag), out, timeout_s))
    return false;
  out->tag = tag;
  return true;
}

void MpiBackend::barrier() { impl_->fabric.barrier(); }

std::size_t MpiBackend::in_flight() const {
  return impl_->fabric.in_flight();
}

void MpiBackend::poison() { impl_->fabric.poison(); }

bool MpiBackend::poisoned() const { return impl_->fabric.poisoned(); }

}  // namespace op2ca::sim

#endif  // OP2CA_HAVE_MPI
