// cost_model.hpp is header-only; TU kept for target symmetry.
#include "op2ca/comm/cost_model.hpp"
