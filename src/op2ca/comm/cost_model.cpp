// Calibration-file loading for the hierarchical cost model.
//
// BENCH_calibration.json is emitted by bench/bench_calibrate.cpp and
// read back here so the analytic model (and the fig10-13 drivers, via
// --calibration) can run on measured per-tier numbers instead of the
// presets' guesses. The parser handles exactly the flat schema the
// bench emits — a hand-rolled scanner, deliberately strict: a missing
// tier or field raises instead of silently keeping a guess.
#include "op2ca/comm/cost_model.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "op2ca/util/error.hpp"

namespace op2ca::sim {
namespace {

/// Position just past `"key":` at or after `from`; npos when absent.
std::size_t find_key(const std::string& text, const std::string& key,
                     std::size_t from) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = text.find(quoted, from);
  if (pos == std::string::npos) return std::string::npos;
  pos = text.find(':', pos + quoted.size());
  if (pos == std::string::npos) return std::string::npos;
  return pos + 1;
}

double number_field(const std::string& text, const std::string& key,
                    std::size_t from, std::size_t until,
                    const std::string& context) {
  const std::size_t pos = find_key(text, key, from);
  OP2CA_REQUIRE(pos != std::string::npos && pos < until,
                "calibration: missing \"" + key + "\" in " + context);
  std::size_t p = pos;
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
    ++p;
  std::size_t end = p;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '+' || text[end] == '-' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E'))
    ++end;
  OP2CA_REQUIRE(end > p, "calibration: \"" + key + "\" in " + context +
                             " is not a number");
  try {
    return std::stod(text.substr(p, end - p));
  } catch (const std::exception&) {
    raise("calibration: cannot parse \"" + key + "\" in " + context);
  }
}

std::string string_field(const std::string& text, const std::string& key,
                         const std::string& context) {
  const std::size_t pos = find_key(text, key, 0);
  OP2CA_REQUIRE(pos != std::string::npos,
                "calibration: missing \"" + key + "\" in " + context);
  const std::size_t open = text.find('"', pos);
  OP2CA_REQUIRE(open != std::string::npos,
                "calibration: \"" + key + "\" is not a string");
  const std::size_t close = text.find('"', open + 1);
  OP2CA_REQUIRE(close != std::string::npos,
                "calibration: unterminated \"" + key + "\" string");
  return text.substr(open + 1, close - open - 1);
}

TierParams tier_object(const std::string& text, Tier t,
                       std::size_t tiers_at) {
  const std::string name = tier_name(t);
  const std::size_t at = find_key(text, name, tiers_at);
  OP2CA_REQUIRE(at != std::string::npos,
                "calibration: missing tier \"" + name + "\"");
  const std::size_t open = text.find('{', at);
  const std::size_t close = text.find('}', open);
  OP2CA_REQUIRE(open != std::string::npos && close != std::string::npos,
                "calibration: malformed tier \"" + name + "\" object");
  const std::string ctx = "tier \"" + name + "\"";
  TierParams p;
  p.latency_s = number_field(text, "latency_s", open, close, ctx);
  p.bandwidth_Bps = number_field(text, "bandwidth_Bps", open, close, ctx);
  p.rails = static_cast<int>(number_field(text, "rails", open, close, ctx));
  OP2CA_REQUIRE(p.latency_s > 0,
                "calibration: " + ctx + " latency must be > 0");
  OP2CA_REQUIRE(p.bandwidth_Bps > 0,
                "calibration: " + ctx + " bandwidth must be > 0");
  OP2CA_REQUIRE(p.rails >= 1, "calibration: " + ctx + " rails must be >= 1");
  return p;
}

}  // namespace

TierParams TierParams::from_calibration(const Calibration& cal, Tier t) {
  return cal.tier(t);
}

Calibration parse_calibration(const std::string& json_text) {
  Calibration cal;
  cal.backend = string_field(json_text, "backend", "calibration file");
  cal.nranks = static_cast<int>(number_field(
      json_text, "nranks", 0, json_text.size(), "calibration file"));
  OP2CA_REQUIRE(cal.nranks >= 2,
                "calibration: nranks must be >= 2 (point-to-point sweeps "
                "need a peer)");
  const std::size_t tiers_at = find_key(json_text, "tiers", 0);
  OP2CA_REQUIRE(tiers_at != std::string::npos,
                "calibration: missing \"tiers\" object");
  for (int t = 0; t < kNumTiers; ++t)
    cal.tiers[t] = tier_object(json_text, static_cast<Tier>(t), tiers_at);

  // The hierarchy sanity the CI gate also enforces: going up the machine
  // (numa -> node -> net) bandwidth cannot grow and latency cannot
  // shrink. bench_calibrate clamps its measurements to this before
  // emitting, so a violation here means a hand-edited or foreign file.
  for (int t = 1; t < kNumTiers; ++t) {
    const TierParams& lo = cal.tiers[t - 1];
    const TierParams& hi = cal.tiers[t];
    OP2CA_REQUIRE(hi.bandwidth_Bps <= lo.bandwidth_Bps,
                  std::string("calibration: bandwidth must be monotone "
                              "non-increasing up the hierarchy (") +
                      tier_name(static_cast<Tier>(t)) + " > " +
                      tier_name(static_cast<Tier>(t - 1)) + ")");
    OP2CA_REQUIRE(hi.latency_s >= lo.latency_s,
                  std::string("calibration: latency must be monotone "
                              "non-decreasing up the hierarchy (") +
                      tier_name(static_cast<Tier>(t)) + " < " +
                      tier_name(static_cast<Tier>(t - 1)) + ")");
  }
  return cal;
}

Calibration load_calibration(const std::string& path) {
  std::ifstream is(path);
  OP2CA_REQUIRE(is.good(), "calibration: cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_calibration(ss.str());
}

void apply_calibration(const Calibration& cal, CostModel* cm) {
  OP2CA_REQUIRE(cm != nullptr, "apply_calibration: null cost model");
  cm->name += "+calibrated(" + cal.backend + ")";
  cm->numa = cal.tier(Tier::Numa);
  cm->node = cal.tier(Tier::Node);
  const TierParams& net = cal.tier(Tier::Net);
  cm->latency_s = net.latency_s;
  cm->bandwidth_Bps = net.bandwidth_Bps;
  cm->net_rails = net.rails;
}

}  // namespace op2ca::sim
