// Collectives implemented over the point-to-point transport with reserved
// negative tags. SPMD call discipline (all ranks call in the same order)
// plus per-(src,tag) FIFO matching make a fixed tag per collective safe.
#include <algorithm>
#include <cstring>

#include "op2ca/comm/comm.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::sim {
namespace {

constexpr tag_t kTagReduceUp = -1;
constexpr tag_t kTagBcastDown = -2;
constexpr tag_t kTagGather = -3;

template <typename T>
std::span<const std::byte> as_bytes_of(const T& v) {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

template <typename T>
T from_bytes(const ByteBuf& buf) {
  OP2CA_ASSERT(buf.size() == sizeof(T), "collective payload size mismatch");
  T v;
  std::memcpy(&v, buf.data(), sizeof(T));
  return v;
}

/// Reduce-to-root then broadcast. Op is a binary callable.
template <typename T, typename Op>
T allreduce_impl(Comm& comm, T value, Op op) {
  const int nranks = comm.size();
  if (nranks == 1) return value;
  if (comm.rank() == 0) {
    T acc = value;
    // Fixed rank order keeps floating-point reductions deterministic.
    for (rank_t src = 1; src < nranks; ++src) {
      ByteBuf buf;
      Request r = comm.irecv(src, kTagReduceUp, &buf);
      comm.wait(r);
      acc = op(acc, from_bytes<T>(buf));
    }
    for (rank_t dst = 1; dst < nranks; ++dst) {
      Request r = comm.isend(dst, kTagBcastDown, as_bytes_of(acc));
      comm.wait(r);
    }
    return acc;
  }
  Request s = comm.isend(0, kTagReduceUp, as_bytes_of(value));
  comm.wait(s);
  ByteBuf buf;
  Request r = comm.irecv(0, kTagBcastDown, &buf);
  comm.wait(r);
  return from_bytes<T>(buf);
}

template <typename T>
std::vector<T> allgather_impl(Comm& comm, T value) {
  const int nranks = comm.size();
  std::vector<T> all(static_cast<std::size_t>(nranks));
  all[static_cast<std::size_t>(comm.rank())] = value;
  if (nranks == 1) return all;
  if (comm.rank() == 0) {
    for (rank_t src = 1; src < nranks; ++src) {
      ByteBuf buf;
      Request r = comm.irecv(src, kTagGather, &buf);
      comm.wait(r);
      all[static_cast<std::size_t>(src)] = from_bytes<T>(buf);
    }
    std::span<const std::byte> blob{
        reinterpret_cast<const std::byte*>(all.data()),
        all.size() * sizeof(T)};
    for (rank_t dst = 1; dst < nranks; ++dst) {
      Request r = comm.isend(dst, kTagBcastDown, blob);
      comm.wait(r);
    }
    return all;
  }
  Request s = comm.isend(0, kTagGather, as_bytes_of(value));
  comm.wait(s);
  ByteBuf buf;
  Request r = comm.irecv(0, kTagBcastDown, &buf);
  comm.wait(r);
  OP2CA_ASSERT(buf.size() == all.size() * sizeof(T),
               "allgather payload size mismatch");
  std::memcpy(all.data(), buf.data(), buf.size());
  return all;
}

}  // namespace

double Comm::allreduce_sum(double value) {
  return allreduce_impl(*this, value, [](double a, double b) { return a + b; });
}

double Comm::allreduce_max(double value) {
  return allreduce_impl(*this, value,
                        [](double a, double b) { return std::max(a, b); });
}

std::int64_t Comm::allreduce_sum(std::int64_t value) {
  return allreduce_impl(*this, value,
                        [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t value) {
  return allreduce_impl(
      *this, value,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

std::vector<double> Comm::allgather(double value) {
  return allgather_impl(*this, value);
}

std::vector<std::int64_t> Comm::allgather(std::int64_t value) {
  return allgather_impl(*this, value);
}

std::vector<double> Comm::allreduce_sum(std::vector<double> values) {
  const int nranks = size();
  if (nranks == 1) return values;
  if (rank() == 0) {
    // Fixed rank order keeps the element-wise sums deterministic.
    for (rank_t src = 1; src < nranks; ++src) {
      ByteBuf buf;
      Request r = irecv(src, kTagReduceUp, &buf);
      wait(r);
      OP2CA_REQUIRE(buf.size() == values.size() * sizeof(double),
                    "allreduce_sum(vector): rank " + std::to_string(src) +
                        " contributed a different element count");
      const double* theirs = reinterpret_cast<const double*>(buf.data());
      for (std::size_t i = 0; i < values.size(); ++i) values[i] += theirs[i];
    }
    std::span<const std::byte> blob{
        reinterpret_cast<const std::byte*>(values.data()),
        values.size() * sizeof(double)};
    for (rank_t dst = 1; dst < nranks; ++dst) {
      Request r = isend(dst, kTagBcastDown, blob);
      wait(r);
    }
    return values;
  }
  Request s = isend(0, kTagReduceUp,
                    std::span<const std::byte>{
                        reinterpret_cast<const std::byte*>(values.data()),
                        values.size() * sizeof(double)});
  wait(s);
  ByteBuf buf;
  Request r = irecv(0, kTagBcastDown, &buf);
  wait(r);
  OP2CA_ASSERT(buf.size() == values.size() * sizeof(double),
               "allreduce_sum(vector) payload size mismatch");
  std::memcpy(values.data(), buf.data(), buf.size());
  return values;
}

std::vector<ByteBuf> Comm::allgather_bytes(const ByteBuf& blob) {
  const int nranks = size();
  std::vector<ByteBuf> all(static_cast<std::size_t>(nranks));
  all[static_cast<std::size_t>(rank())] = blob;
  if (nranks == 1) return all;
  if (rank() == 0) {
    for (rank_t src = 1; src < nranks; ++src) {
      ByteBuf buf;
      Request r = irecv(src, kTagGather, &buf);
      wait(r);
      all[static_cast<std::size_t>(src)] = std::move(buf);
    }
    // Length-prefixed concatenation, broadcast to everyone: blobs are
    // variable-size, so the framing travels with the payload.
    std::size_t total = sizeof(std::uint64_t) * static_cast<std::size_t>(nranks);
    for (const ByteBuf& b : all) total += b.size();
    ByteBuf packed(total);
    std::size_t off = 0;
    for (const ByteBuf& b : all) {
      const std::uint64_t len = b.size();
      std::memcpy(packed.data() + off, &len, sizeof(len));
      off += sizeof(len);
      std::memcpy(packed.data() + off, b.data(), b.size());
      off += b.size();
    }
    for (rank_t dst = 1; dst < nranks; ++dst) {
      Request r = isend(dst, kTagBcastDown,
                        std::span<const std::byte>{packed.data(),
                                                   packed.size()});
      wait(r);
    }
    return all;
  }
  Request s = isend(0, kTagGather,
                    std::span<const std::byte>{blob.data(), blob.size()});
  wait(s);
  ByteBuf packed;
  Request r = irecv(0, kTagBcastDown, &packed);
  wait(r);
  std::size_t off = 0;
  for (rank_t src = 0; src < nranks; ++src) {
    OP2CA_ASSERT(off + sizeof(std::uint64_t) <= packed.size(),
                 "allgather_bytes framing truncated");
    std::uint64_t len = 0;
    std::memcpy(&len, packed.data() + off, sizeof(len));
    off += sizeof(len);
    OP2CA_ASSERT(off + len <= packed.size(),
                 "allgather_bytes blob truncated");
    ByteBuf& out = all[static_cast<std::size_t>(src)];
    out.resize(static_cast<std::size_t>(len));
    std::memcpy(out.data(), packed.data() + off, out.size());
    off += len;
  }
  return all;
}

}  // namespace op2ca::sim
