#include "op2ca/comm/channel.hpp"

#include <algorithm>
#include <cstring>

#include "op2ca/util/error.hpp"

namespace op2ca::sim {
namespace {

template <typename T>
void put(std::byte** p, T v) {
  std::memcpy(*p, &v, sizeof(T));
  *p += sizeof(T);
}

template <typename T>
T get(const std::byte** p) {
  T v;
  std::memcpy(&v, *p, sizeof(T));
  *p += sizeof(T);
  return v;
}

}  // namespace

std::vector<StripeSlot> stripe_bounds(std::size_t bytes, int rails) {
  std::vector<StripeSlot> slots;
  if (rails <= 1 || bytes == 0) {
    slots.push_back({0, bytes});
    return slots;
  }
  // 8-byte aligned boundaries: dat payloads are doubles, and aligned
  // stripe starts keep receiver-side memcpy on word boundaries.
  const std::size_t words = (bytes + 7) / 8;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(rails), words);
  const std::size_t per = words / n;
  const std::size_t extra = words % n;
  std::size_t off = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t w = per + (r < extra ? 1 : 0);
    const std::size_t len = std::min(bytes - off, w * 8);
    slots.push_back({off, len});
    off += len;
  }
  OP2CA_ASSERT(off == bytes, "stripe_bounds did not cover the message");
  return slots;
}

void encode_stripe_header(const StripeHeader& h, std::byte* out) {
  std::byte* p = out;
  put(&p, h.magic);
  put(&p, h.rail);
  put(&p, h.rails);
  put(&p, h.total);
  put(&p, h.offset);
  put(&p, h.plan_hash);
  OP2CA_ASSERT(static_cast<std::size_t>(p - out) == kStripeHeaderBytes,
               "stripe header encode size mismatch");
}

StripeHeader decode_stripe_header(const std::byte* in,
                                  std::size_t payload_bytes) {
  OP2CA_REQUIRE(payload_bytes >= kStripeHeaderBytes,
                "striped message shorter than its header — truncated "
                "stripe on the wire");
  const std::byte* p = in;
  StripeHeader h;
  h.magic = get<std::uint32_t>(&p);
  h.rail = get<std::uint16_t>(&p);
  h.rails = get<std::uint16_t>(&p);
  h.total = get<std::uint64_t>(&p);
  h.offset = get<std::uint64_t>(&p);
  h.plan_hash = get<std::uint64_t>(&p);
  OP2CA_REQUIRE(h.magic == kStripeMagic,
                "striped message carries a corrupt header (bad magic)");
  return h;
}

void encode_hello(const ChannelHello& h, std::byte* out) {
  std::byte* p = out;
  put(&p, h.magic);
  put(&p, h.id);
  put(&p, h.bytes);
  put(&p, h.rails);
  // Pad to keep the hello a fixed 32-byte block.
  put(&p, std::uint16_t{0});
  put(&p, std::uint32_t{0});
  put(&p, h.plan_hash);
  OP2CA_ASSERT(static_cast<std::size_t>(p - out) == kHelloBytes,
               "channel hello encode size mismatch");
}

ChannelHello decode_hello(const std::byte* in, std::size_t payload_bytes) {
  OP2CA_REQUIRE(payload_bytes == kHelloBytes,
                "channel negotiation message has the wrong size");
  const std::byte* p = in;
  ChannelHello h;
  h.magic = get<std::uint32_t>(&p);
  h.id = get<std::int32_t>(&p);
  h.bytes = get<std::uint64_t>(&p);
  h.rails = get<std::uint16_t>(&p);
  get<std::uint16_t>(&p);
  get<std::uint32_t>(&p);
  h.plan_hash = get<std::uint64_t>(&p);
  OP2CA_REQUIRE(h.magic == kHelloMagic,
                "channel negotiation message is corrupt (bad magic)");
  return h;
}

}  // namespace op2ca::sim
