// Striping and persistent-channel protocol shared by every backend.
//
// Striping (CommBench's rail pattern): a message larger than the
// configured threshold splits into up to `rails` sub-messages so the
// hierarchy's parallel links (NICs) move it concurrently. Ad-hoc striped
// sends prefix each stripe with a 32-byte StripeHeader carrying
// (total, offset, rail, plan-hash), so the receiver reassembles rails
// arriving in any order into one pooled staging buffer and rejects torn
// or foreign stripes loudly.
//
// Persistent channels (a la MPI_Send_init): an exchange that is built
// once per cached plan (GroupedPlan / LoopExchange, both keyed by the
// structural hash that already invalidates them) pre-negotiates a
// (peer, tag, size, rails, hash) slot with a ChannelHello handshake.
// Steady-state epochs then post headerless stripes on the channel's
// pre-assigned rail tags — no per-message envelope, no boundary math, no
// receiver-side validation beyond the fixed slot sizes. A structural
// mismatch between the two ends (stale channel) fails the handshake.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "op2ca/comm/transport.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Upper bound on the stripe fan-out; bounds the per-channel tag block.
inline constexpr int kMaxRails = 8;

/// Tag space: each ordered (src -> dst) pair numbers its channels 0, 1,
/// ... and channel k owns tags [base + k*kMaxRails, base + (k+1)*kMaxRails).
/// The base sits far above the executor tag ranges (chain tag 512, loop
/// tags 1024 + dat*2 + class).
inline constexpr tag_t kChannelTagBase = 1 << 20;
/// Control tags for the ChannelHello handshake: the sender side of a
/// channel announces on kChannelHelloSend, the receiver side on
/// kChannelHelloRecv, so the two opens pair up FIFO per (src, tag).
inline constexpr tag_t kChannelHelloSend = kChannelTagBase - 2;
inline constexpr tag_t kChannelHelloRecv = kChannelTagBase - 1;

/// One stripe's (offset, length) within the logical message.
struct StripeSlot {
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

/// Splits `bytes` into at most `rails` contiguous stripes with 8-byte
/// aligned boundaries (dat payloads are doubles). Every stripe is
/// non-empty; small messages yield fewer stripes than rails, and
/// rails <= 1 (or bytes == 0) yields the single degenerate stripe.
std::vector<StripeSlot> stripe_bounds(std::size_t bytes, int rails);

/// Wire header of one ad-hoc stripe (kStripeHeaderBytes on the wire).
struct StripeHeader {
  std::uint32_t magic = 0;     ///< kStripeMagic.
  std::uint16_t rail = 0;      ///< stripe index.
  std::uint16_t rails = 0;     ///< total stripes of this message.
  std::uint64_t total = 0;     ///< logical message bytes.
  std::uint64_t offset = 0;    ///< this stripe's offset.
  std::uint64_t plan_hash = 0; ///< 0 for ad-hoc sends.
};

inline constexpr std::uint32_t kStripeMagic = 0x4f503253;  // "OP2S"
inline constexpr std::size_t kStripeHeaderBytes = 32;

void encode_stripe_header(const StripeHeader& h, std::byte* out);
StripeHeader decode_stripe_header(const std::byte* in,
                                  std::size_t payload_bytes);

/// A negotiated persistent channel: one direction of one peer's slot.
/// Invalid (id < 0) until Comm::open_channels fills it in.
struct Channel {
  rank_t peer = -1;
  bool sender = false;
  std::int32_t id = -1;        ///< per ordered (src -> dst) pair.
  std::size_t bytes = 0;       ///< fixed slot size.
  std::uint64_t plan_hash = 0;
  std::vector<StripeSlot> slots;  ///< precomputed stripe boundaries.

  bool valid() const { return id >= 0; }
  int rails() const { return static_cast<int>(slots.size()); }
  tag_t rail_tag(int r) const {
    return kChannelTagBase + id * kMaxRails + r;
  }
};

/// What one side requests from open_channels.
struct ChannelSpec {
  rank_t peer = -1;
  bool sender = false;
  std::size_t bytes = 0;
  std::uint64_t plan_hash = 0;
};

/// Handshake payload: both ends must announce identical geometry.
struct ChannelHello {
  std::uint32_t magic = 0;
  std::int32_t id = -1;
  std::uint64_t bytes = 0;
  std::uint16_t rails = 0;
  std::uint64_t plan_hash = 0;
};

inline constexpr std::uint32_t kHelloMagic = 0x4f503248;  // "OP2H"
inline constexpr std::size_t kHelloBytes = 32;

void encode_hello(const ChannelHello& h, std::byte* out);
ChannelHello decode_hello(const std::byte* in, std::size_t payload_bytes);

}  // namespace op2ca::sim
