#include "op2ca/comm/transport.hpp"

#include "op2ca/util/error.hpp"

namespace op2ca::sim {

Transport::Transport(int nranks) : nranks_(nranks), boxes_(nranks) {
  OP2CA_REQUIRE(nranks > 0, "Transport requires at least one rank");
}

void Transport::post(Message msg) {
  OP2CA_REQUIRE(msg.dst >= 0 && msg.dst < nranks_,
                "Transport::post destination out of range");
  OP2CA_REQUIRE(msg.src >= 0 && msg.src < nranks_,
                "Transport::post source out of range");
  Mailbox& box = boxes_[static_cast<std::size_t>(msg.dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

bool Transport::take_locked(Mailbox& box, rank_t src, tag_t tag,
                            Message* out) {
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      *out = std::move(*it);
      box.queue.erase(it);
      return true;
    }
  }
  return false;
}

Message Transport::match(rank_t dst, rank_t src, tag_t tag) {
  OP2CA_REQUIRE(dst >= 0 && dst < nranks_, "Transport::match bad dst");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  Message out;
  bool found = false;
  box.cv.wait(lock, [&] {
    found = take_locked(box, src, tag, &out);
    return found || poisoned_.load();
  });
  if (!found)
    raise("Transport poisoned: a peer rank failed while this rank was "
          "waiting for a message");
  return out;
}

bool Transport::try_match(rank_t dst, rank_t src, tag_t tag, Message* out) {
  OP2CA_REQUIRE(dst >= 0 && dst < nranks_, "Transport::try_match bad dst");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return take_locked(box, src, tag, out);
}

void Transport::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] {
      return barrier_generation_ != my_generation || poisoned_.load();
    });
    if (barrier_generation_ == my_generation)
      raise("Transport poisoned: a peer rank failed during a barrier");
  }
}

void Transport::poison() {
  poisoned_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

std::size_t Transport::in_flight() const {
  std::size_t total = 0;
  for (const auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    total += box.queue.size();
  }
  return total;
}

}  // namespace op2ca::sim
