#include "op2ca/comm/transport.hpp"

#include <chrono>
#include <thread>

#include "op2ca/comm/channel.hpp"
#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::sim {

const char* backend_name(BackendKind k) {
  return k == BackendKind::Mpi ? "mpi" : "sim";
}

BackendKind backend_by_name(const std::string& name) {
  if (name == "sim") return BackendKind::Sim;
  if (name == "mpi") return BackendKind::Mpi;
  raise("unknown transport backend: " + name + " (expected sim|mpi)");
}

std::unique_ptr<TransportBackend> make_backend(const TransportConfig& cfg,
                                               int nranks) {
  OP2CA_REQUIRE(cfg.rails >= 1 && cfg.rails <= kMaxRails,
                "TransportConfig::rails must be in [1, " +
                    std::to_string(kMaxRails) + "]");
  OP2CA_REQUIRE(cfg.stripe_timeout_s > 0,
                "TransportConfig::stripe_timeout_s must be positive");
  if (cfg.backend == BackendKind::Mpi)
    return std::make_unique<MpiBackend>(nranks);
  return std::make_unique<Transport>(nranks);
}

Transport::Transport(int nranks) : nranks_(nranks), boxes_(nranks) {
  OP2CA_REQUIRE(nranks > 0, "Transport requires at least one rank");
}

bool Transport::apply_injections(Message* msg) {
  double delay = 0;
  bool keep = true;
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!post_delay_s_.empty())
      delay = post_delay_s_[static_cast<std::size_t>(msg->dst)];
    for (auto& inj : injections_) {
      if (inj.count <= 0) continue;
      if (inj.src != msg->src || inj.dst != msg->dst ||
          inj.tag != msg->tag)
        continue;
      inj.count -= 1;
      if (inj.drop) {
        keep = false;
      } else if (msg->payload.size() > inj.keep_bytes) {
        msg->payload.resize(inj.keep_bytes);
      }
      break;
    }
  }
  // Sleeping outside inject_mu_ keeps the delay per-destination: posts to
  // other mailboxes (other Comm dest mutexes) proceed concurrently.
  if (delay > 0)
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  return keep;
}

void Transport::post(Message msg) {
  OP2CA_REQUIRE(msg.dst >= 0 && msg.dst < nranks_,
                "Transport::post destination out of range");
  OP2CA_REQUIRE(msg.src >= 0 && msg.src < nranks_,
                "Transport::post source out of range");
  if (!apply_injections(&msg)) return;  // dropped rail
  Mailbox& box = boxes_[static_cast<std::size_t>(msg.dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

bool Transport::take_locked(Mailbox& box, rank_t src, tag_t tag,
                            Message* out) {
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      *out = std::move(*it);
      box.queue.erase(it);
      return true;
    }
  }
  return false;
}

Message Transport::match(rank_t dst, rank_t src, tag_t tag) {
  OP2CA_REQUIRE(dst >= 0 && dst < nranks_, "Transport::match bad dst");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  Message out;
  bool found = false;
  box.cv.wait(lock, [&] {
    found = take_locked(box, src, tag, &out);
    return found || poisoned_.load();
  });
  if (!found)
    raise("Transport poisoned: a peer rank failed while this rank was "
          "waiting for a message");
  return out;
}

bool Transport::try_match(rank_t dst, rank_t src, tag_t tag, Message* out) {
  OP2CA_REQUIRE(dst >= 0 && dst < nranks_, "Transport::try_match bad dst");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  return take_locked(box, src, tag, out);
}

bool Transport::match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                          double timeout_s) {
  OP2CA_REQUIRE(dst >= 0 && dst < nranks_, "Transport::match_for bad dst");
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  bool found = false;
  box.cv.wait_for(lock, std::chrono::duration<double>(timeout_s), [&] {
    found = take_locked(box, src, tag, out);
    return found || poisoned_.load();
  });
  if (!found && poisoned_.load())
    raise("Transport poisoned: a peer rank failed while this rank was "
          "waiting for a message");
  return found;
}

void Transport::barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] {
      return barrier_generation_ != my_generation || poisoned_.load();
    });
    if (barrier_generation_ == my_generation)
      raise("Transport poisoned: a peer rank failed during a barrier");
  }
}

void Transport::poison() {
  poisoned_.store(true);
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

std::size_t Transport::in_flight() const {
  std::size_t total = 0;
  for (const auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    total += box.queue.size();
  }
  return total;
}

void Transport::inject_drop(rank_t src, rank_t dst, tag_t tag, int count) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  injections_.push_back({src, dst, tag, /*drop=*/true, 0, count});
}

void Transport::inject_truncate(rank_t src, rank_t dst, tag_t tag,
                                std::size_t keep_bytes, int count) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  injections_.push_back({src, dst, tag, /*drop=*/false, keep_bytes, count});
}

void Transport::set_post_delay(rank_t dst, double seconds) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (post_delay_s_.empty())
    post_delay_s_.assign(static_cast<std::size_t>(nranks_), 0.0);
  post_delay_s_[static_cast<std::size_t>(dst)] = seconds;
}

}  // namespace op2ca::sim
