// The MPI implementation of TransportBackend.
//
// Built with -DOP2CA_MPI=ON and an MPI toolchain (OP2CA_HAVE_MPI), this
// maps the backend contract onto MPI point-to-point: post -> MPI_Isend
// (pending requests drained opportunistically), match -> MPI_Improbe /
// MPI_Mrecv polling, barrier -> MPI_Barrier, poison -> local unblock +
// eventual MPI_Abort on unrecoverable failure. Each MPI process drives
// exactly ONE rank (nranks must equal the communicator size); World
// detects this through local_rank() and runs only that rank's thread, so
// the same SPMD binaries launch under mpirun on a real cluster. Internal
// tags (negative collectives, channel tag block) shift by kMpiTagShift
// into MPI's non-negative tag space.
//
// Without MPI this is a compile-only stub: the identical protocol layer
// (tag encoding, channel negotiation, striping, reassembly) runs over an
// in-process mailbox fabric, so the MPI code path's framing is exercised
// by the regular test suite — the equivalence suite runs sim-vs-MPI-stub
// rows — and the build stays green on MPI-less hosts and CI legs.
//
// Lifecycle: MPI_Init_thread / MPI_Finalize are owned by one process-wide
// guard (first MpiBackend or mpi_world_size() call initializes, a single
// finalize runs at process exit), so test binaries that build several
// Worlds in sequence neither double-init nor finalize under a live
// sibling. A thread level below MPI_THREAD_SERIALIZED fails loudly:
// taskgraph pack workers post sends concurrently under one mutex, which
// SERIALIZED permits but SINGLE/FUNNELED do not.
#pragma once

#include "op2ca/comm/transport.hpp"

namespace op2ca::sim {

class MpiBackend : public TransportBackend {
public:
  explicit MpiBackend(int nranks);
  ~MpiBackend() override;

  /// True when compiled against a real MPI (OP2CA_HAVE_MPI).
  static bool compiled_with_mpi();

  /// True when this process was started by an MPI launcher (mpirun /
  /// mpiexec / srun), detected from the launcher's environment without
  /// touching MPI itself — usable from stub builds and before any
  /// backend exists. Sim-only test suites use this to GTEST_SKIP under a
  /// real MPI launch instead of running duplicated on every process.
  static bool launched_under_mpirun();

  /// MPI_COMM_WORLD size of this process. Initializes MPI on first call
  /// (idempotent; see the lifecycle notes below). Returns 1 in the stub.
  /// Callers size their World's nranks with this so the partitioning
  /// matches the launch width.
  static int mpi_world_size();

  const char* name() const override;
  int size() const override { return nranks_; }

  /// The single rank this process drives under real MPI; -1 in the stub
  /// (every rank is local, as in the sim backend). World switches into
  /// process-per-rank SPMD mode when this is >= 0.
  rank_t local_rank() const { return local_rank_; }

  void post(Message msg) override;
  Message match(rank_t dst, rank_t src, tag_t tag) override;
  bool try_match(rank_t dst, rank_t src, tag_t tag, Message* out) override;
  bool match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                 double timeout_s) override;
  void barrier() override;
  std::size_t in_flight() const override;
  void poison() override;
  bool poisoned() const override;

private:
  struct Impl;
  int nranks_ = 0;
  rank_t local_rank_ = -1;
  std::unique_ptr<Impl> impl_;
};

/// Offset added to internal tags so collectives' negative tags land in
/// MPI's non-negative tag space.
inline constexpr tag_t kMpiTagShift = 8;

}  // namespace op2ca::sim
