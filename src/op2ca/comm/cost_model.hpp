// Latency/bandwidth communication cost model (LogGP-flavoured).
//
// The analytic model of the paper (Eqs 1-3) charges a halo exchange
// p * (L + m/B [+ c]) where L is network latency, B bandwidth, p the
// neighbour count and c a pack/unpack cost. This struct carries those
// machine parameters; model/machine.cpp provides ARCHER2-like and
// Cirrus-like presets. The same parameters drive the per-rank virtual
// clocks in real execution mode so small runs report machine-scaled times.
#pragma once

#include <cstdint>
#include <string>

namespace op2ca::sim {

struct CostModel {
  std::string name = "default";

  double latency_s = 2.0e-6;          ///< L: per-message network latency.
  double bandwidth_Bps = 12.5e9;      ///< B: network bandwidth, bytes/s.
  double pack_bandwidth_Bps = 20e9;   ///< memcpy bandwidth for (un)packing.
  double per_message_overhead_s = 0;  ///< extra host overhead per message.

  /// Time to move one `bytes`-sized message to a neighbour.
  double message_time(std::int64_t bytes) const {
    return latency_s + per_message_overhead_s +
           static_cast<double>(bytes) / bandwidth_Bps;
  }

  /// Pack or unpack cost for `bytes` of staged halo data (the `c` term of
  /// Eq (3) is pack_time + unpack_time of the grouped message).
  double pack_time(std::int64_t bytes) const {
    return static_cast<double>(bytes) / pack_bandwidth_Bps;
  }
};

}  // namespace op2ca::sim
