// Latency/bandwidth communication cost model (LogGP-flavoured), extended
// with a machine hierarchy.
//
// The analytic model of the paper (Eqs 1-3) charges a halo exchange
// p * (L + m/B [+ c]) where L is network latency, B bandwidth, p the
// neighbour count and c a pack/unpack cost. This struct carries those
// machine parameters; model/machine.cpp provides ARCHER2-like and
// Cirrus-like presets. The same parameters drive the per-rank virtual
// clocks in real execution mode so small runs report machine-scaled times.
//
// Hierarchy: ranks fold onto a thread < NUMA < node < network machine.
// A message between two ranks crosses the cheapest tier containing both
// (Tier::Numa inside one NUMA domain, Tier::Node across domains of one
// node, Tier::Net across nodes), each tier with its own (latency,
// bandwidth, rail-count) parameters. The legacy flat fields (latency_s /
// bandwidth_Bps) ARE the network tier, so existing presets and tests see
// identical numbers; the topology stays flat (every pair is Tier::Net)
// until ranks_per_node is set. Rails model parallel physical links
// (NICs, memory channels): a message striped into r sub-messages uses
// min(r, rails) links concurrently — CommBench's rail pattern.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Machine tier a message crosses, cheapest first. (The thread tier —
/// workers of one rank — moves no messages and has no wire parameters.)
enum class Tier { Numa = 0, Node = 1, Net = 2 };
inline constexpr int kNumTiers = 3;

inline const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Numa: return "numa";
    case Tier::Node: return "node";
    default: return "net";
  }
}

struct Calibration;
struct CostModel;

/// Per-tier wire parameters: latency, per-rail bandwidth, rail count.
struct TierParams {
  double latency_s = 0;
  double bandwidth_Bps = 0;
  int rails = 1;

  /// The measured parameters of tier `t` from a bench_calibrate run
  /// (BENCH_calibration.json) — the measured-machine-model discipline:
  /// cost-model predictions driven by what the wire actually did rather
  /// than the presets' guesses.
  static TierParams from_calibration(const Calibration& cal, Tier t);
};

/// A parsed BENCH_calibration.json: per-tier (latency, bandwidth,
/// effective rails) measured by bench_calibrate's ping-pong and
/// multi-pair streaming sweeps over one backend (sim fabric, mpi-stub,
/// or real MPI under mpirun).
struct Calibration {
  std::string backend;  ///< "sim" | "mpi" | "mpi-stub".
  int nranks = 0;
  TierParams tiers[kNumTiers];  ///< indexed by Tier.

  const TierParams& tier(Tier t) const {
    return tiers[static_cast<int>(t)];
  }
};

/// Parses the BENCH_calibration.json text. Validates the schema the CI
/// gate also enforces: all three tiers present with latency > 0,
/// bandwidth > 0, rails >= 1, and bandwidth monotone non-increasing /
/// latency monotone non-decreasing up the hierarchy (numa -> node ->
/// net). Raises with context on any violation.
Calibration parse_calibration(const std::string& json_text);

/// parse_calibration over a file's contents; raises if unreadable.
Calibration load_calibration(const std::string& path);

/// Folds measured tiers into a cost model: numa/node tiers are replaced
/// wholesale, and the net tier lands in the legacy flat fields
/// (latency_s / bandwidth_Bps / net_rails) that every preset and Eq
/// (1)-(3) term reads. Host-side overheads (per_message_overhead_s,
/// channel_overhead_s, pack_bandwidth_Bps) are not measured by the wire
/// sweeps and keep the model's values.
void apply_calibration(const Calibration& cal, CostModel* cm);

struct CostModel {
  std::string name = "default";

  double latency_s = 2.0e-6;          ///< L: per-message network latency.
  double bandwidth_Bps = 12.5e9;      ///< B: per-rail network bandwidth.
  double pack_bandwidth_Bps = 20e9;   ///< memcpy bandwidth for (un)packing.
  double per_message_overhead_s = 0;  ///< extra host overhead per message.
  /// Residual host overhead of a message sent through a persistent
  /// channel: the dst/tag/size slot is pre-negotiated, so matching and
  /// envelope setup (per_message_overhead_s) collapse to this.
  double channel_overhead_s = 0;
  /// Parallel network rails (NICs) one rank may stripe a message across.
  int net_rails = 1;

  // Topology: ranks [k*ranks_per_numa, ...) share a NUMA domain, ranks
  // [k*ranks_per_node, ...) share a node. 0 = flat (every rank pair
  // crosses the network), which keeps legacy configs bit-identical.
  int ranks_per_numa = 0;
  int ranks_per_node = 0;
  /// Intra-node tiers; meaningful once the topology above is set.
  TierParams numa{5.0e-7, 40e9, 1};
  TierParams node{1.0e-6, 20e9, 1};

  /// Cheapest tier containing both ranks.
  Tier tier_of(rank_t a, rank_t b) const {
    if (ranks_per_node > 0 && a / ranks_per_node == b / ranks_per_node) {
      if (ranks_per_numa > 0 && a / ranks_per_numa == b / ranks_per_numa)
        return Tier::Numa;
      return Tier::Node;
    }
    return Tier::Net;
  }

  double tier_latency(Tier t) const {
    switch (t) {
      case Tier::Numa: return numa.latency_s;
      case Tier::Node: return node.latency_s;
      default: return latency_s;
    }
  }
  double tier_bandwidth(Tier t) const {
    switch (t) {
      case Tier::Numa: return numa.bandwidth_Bps;
      case Tier::Node: return node.bandwidth_Bps;
      default: return bandwidth_Bps;
    }
  }
  int tier_rails(Tier t) const {
    switch (t) {
      case Tier::Numa: return numa.rails;
      case Tier::Node: return node.rails;
      default: return net_rails;
    }
  }

  /// Time to move one `bytes`-sized message to a neighbour (flat legacy
  /// form: the network tier).
  double message_time(std::int64_t bytes) const {
    return latency_s + per_message_overhead_s +
           static_cast<double>(bytes) / bandwidth_Bps;
  }

  /// Tier-aware single-message time.
  double message_time(std::int64_t bytes, Tier t) const {
    return tier_latency(t) + per_message_overhead_s +
           static_cast<double>(bytes) / tier_bandwidth(t);
  }

  /// A `bytes`-sized message striped into `stripes` sub-messages over
  /// the tier's rails. min(stripes, rails) sub-messages travel
  /// concurrently, each on its own link; extra stripes serialise their
  /// bytes behind them (striping onto one rail buys nothing).
  double striped_time(std::int64_t bytes, int stripes, Tier t) const {
    if (stripes <= 1) return message_time(bytes, t);
    const int conc = std::min(std::max(stripes, 1), tier_rails(t));
    const double rounds =
        static_cast<double>(stripes) / static_cast<double>(conc);
    const double per_stripe =
        static_cast<double>(bytes) / static_cast<double>(stripes);
    return tier_latency(t) + per_message_overhead_s +
           rounds * per_stripe / tier_bandwidth(t);
  }

  /// striped_time through a persistent channel: the pre-negotiated slot
  /// replaces the per-message host setup with channel_overhead_s.
  double channel_time(std::int64_t bytes, int stripes, Tier t) const {
    return striped_time(bytes, stripes, t) - per_message_overhead_s +
           channel_overhead_s;
  }

  /// Pack or unpack cost for `bytes` of staged halo data (the `c` term of
  /// Eq (3) is pack_time + unpack_time of the grouped message).
  double pack_time(std::int64_t bytes) const {
    return static_cast<double>(bytes) / pack_bandwidth_Bps;
  }

  /// Wire time of one temporally-tiled exchange epoch, amortised per
  /// chain invocation: `tile` invocations share one grouped message of
  /// tile * `bytes` (each skipped epoch's halo layers ride along), so the
  /// per-invocation latency shrinks k-fold while the per-invocation byte
  /// cost stays flat. tile <= 1 is exactly message_time(bytes, t).
  double tiled_epoch_time(std::int64_t bytes, int tile, Tier t) const {
    const int k = std::max(1, tile);
    return message_time(bytes * static_cast<std::int64_t>(k), t) /
           static_cast<double>(k);
  }
};

}  // namespace op2ca::sim
