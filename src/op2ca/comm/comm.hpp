// Per-rank communicator over the shared Transport, with non-blocking
// send/recv requests, communication statistics, and a virtual clock fed by
// a pluggable cost model. Mirrors the MPI calls used in Alg 1 / Alg 2 of
// the paper (MPI_Isend, MPI_Irecv, MPI_Wait).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/util/timer.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Per-rank communication counters. `epoch_*` fields reset via
/// `reset_epoch()` so a bench can meter one loop or one chain at a time.
struct CommStats {
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t msgs_received = 0;
  std::int64_t bytes_received = 0;
  /// Sends whose payload was moved into the mailbox (zero-copy path) vs
  /// copied from a caller-owned span.
  std::int64_t sends_moved = 0;
  std::int64_t sends_copied = 0;
  std::set<rank_t> send_neighbors;
  std::set<rank_t> recv_neighbors;

  std::int64_t epoch_msgs_sent = 0;
  std::int64_t epoch_bytes_sent = 0;
  std::int64_t epoch_msgs_received = 0;
  std::int64_t epoch_bytes_received = 0;
  std::int64_t epoch_max_msg_bytes = 0;
  std::set<rank_t> epoch_neighbors;

  void reset_epoch();
};

/// Handle for a pending non-blocking operation.
class Request {
public:
  Request() = default;

  bool valid() const { return kind_ != Kind::None; }

private:
  friend class Comm;
  enum class Kind { None, Send, Recv };
  Kind kind_ = Kind::None;
  rank_t peer = -1;
  tag_t tag = 0;
  ByteBuf* recv_buffer = nullptr;  // Recv only.
  std::size_t sent_bytes = 0;                     // Send only.
};

/// One simulated process's communication endpoint.
///
/// A Comm belongs to exactly one rank thread, with one exception: isend
/// is safe to call concurrently from that rank's pool workers (taskgraph
/// mode posts pack isends from whichever worker runs the pack task) — a
/// send mutex serialises the statistics update and the mailbox post.
/// Receives, waits and collectives remain rank-thread-only.
class Comm {
public:
  Comm(Transport& transport, rank_t rank, const CostModel* cost = nullptr);

  rank_t rank() const { return rank_; }
  int size() const { return transport_->size(); }

  /// Begins a non-blocking send; the payload is copied before returning.
  /// Prefer the by-value overload on hot paths.
  Request isend(rank_t dst, tag_t tag, std::span<const std::byte> payload);
  /// Zero-copy send: takes ownership of the buffer and moves it into the
  /// destination mailbox — no payload copy. The caller's vector is left
  /// empty; staging buffers come back through a BufferPool on the
  /// receiving side (see util/buffer_pool.hpp).
  Request isend(rank_t dst, tag_t tag, ByteBuf payload);
  /// Begins a non-blocking receive into `*out` (resized on completion).
  Request irecv(rank_t src, tag_t tag, ByteBuf* out);

  void wait(Request& req);
  void wait_all(std::span<Request> reqs);

  void barrier();

  /// Collectives (implemented over point-to-point; see collectives.cpp).
  double allreduce_sum(double value);
  double allreduce_max(double value);
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);
  /// Gathers one value from each rank, in rank order, on every rank.
  std::vector<double> allgather(double value);
  std::vector<std::int64_t> allgather(std::int64_t value);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Virtual (modeled) time accumulated by the cost model, if one is set.
  VirtualClock& clock() { return clock_; }
  const CostModel* cost_model() const { return cost_; }

private:
  friend class Collectives;
  Request post_send(rank_t dst, tag_t tag, Message msg);

  Transport* transport_;
  rank_t rank_;
  const CostModel* cost_;
  CommStats stats_;
  VirtualClock clock_;
  std::mutex send_mu_;  ///< serialises concurrent isends (see class doc).
};

}  // namespace op2ca::sim
