// Per-rank communicator over a pluggable TransportBackend, with
// non-blocking send/recv requests, communication statistics, and a
// virtual clock fed by a pluggable cost model. Mirrors the MPI calls used
// in Alg 1 / Alg 2 of the paper (MPI_Isend, MPI_Irecv, MPI_Wait,
// MPI_Send_init-style persistent channels).
//
// On top of the plain point-to-point API, Comm implements the
// topology-aware transport layer:
//  - stripe_isend/stripe_irecv split messages >= stripe_min_bytes into up
//    to `rails` sub-messages (channel.hpp wire format) and reassemble
//    them out-of-order into one pooled buffer on the receiver;
//  - open_channels pre-negotiates fixed (peer, tag, size) slots once per
//    cached exchange plan; channel_isend/channel_irecv then move
//    headerless stripes through those slots each epoch.
// With rails == 1 and persistent channels off, every call degenerates to
// the legacy single-message path, bitwise-identical to earlier builds.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <vector>

#include "op2ca/comm/channel.hpp"
#include "op2ca/comm/cost_model.hpp"
#include "op2ca/comm/transport.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/timer.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Per-rank communication counters. `epoch_*` fields reset via
/// `reset_epoch()` so a bench can meter one loop or one chain at a time.
struct CommStats {
  std::int64_t msgs_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t msgs_received = 0;
  std::int64_t bytes_received = 0;
  /// Sends whose payload was moved into the mailbox (zero-copy path) vs
  /// copied from a caller-owned span.
  std::int64_t sends_moved = 0;
  std::int64_t sends_copied = 0;
  /// Wire messages sent per machine tier (indexed by Tier).
  std::int64_t msgs_by_tier[kNumTiers] = {0, 0, 0};
  std::int64_t bytes_by_tier[kNumTiers] = {0, 0, 0};
  /// Stripe sub-messages sent (each also counts in msgs_sent).
  std::int64_t stripes_sent = 0;
  /// Persistent channels negotiated / messages sent through them.
  std::int64_t channels_opened = 0;
  std::int64_t channel_sends = 0;
  std::set<rank_t> send_neighbors;
  std::set<rank_t> recv_neighbors;

  std::int64_t epoch_msgs_sent = 0;
  std::int64_t epoch_bytes_sent = 0;
  std::int64_t epoch_msgs_received = 0;
  std::int64_t epoch_bytes_received = 0;
  std::int64_t epoch_max_msg_bytes = 0;
  std::int64_t epoch_msgs_by_tier[kNumTiers] = {0, 0, 0};
  std::int64_t epoch_bytes_by_tier[kNumTiers] = {0, 0, 0};
  std::int64_t epoch_stripes = 0;
  std::set<rank_t> epoch_neighbors;

  void reset_epoch();
};

/// Handle for a pending non-blocking operation.
class Request {
public:
  Request() = default;

  bool valid() const { return kind_ != Kind::None; }

private:
  friend class Comm;
  enum class Kind { None, Send, Recv, StripedRecv, ChannelRecv };
  Kind kind_ = Kind::None;
  rank_t peer = -1;
  tag_t tag = 0;
  ByteBuf* recv_buffer = nullptr;      // receive kinds only.
  std::size_t sent_bytes = 0;          // Send only.
  std::size_t expect_bytes = 0;        // StripedRecv only.
  const Channel* channel = nullptr;    // ChannelRecv only.
};

/// One simulated process's communication endpoint.
///
/// A Comm belongs to exactly one rank thread, with one exception: isend /
/// stripe_isend / channel_isend are safe to call concurrently from that
/// rank's pool workers (taskgraph mode posts pack isends from whichever
/// worker runs the pack task). Sends serialise per DESTINATION — one
/// mutex per peer — so concurrent pack tasks aimed at different
/// neighbours post without contending, while per-(src,dst,tag) FIFO
/// order is preserved; a separate mutex guards the statistics. Receives,
/// waits, channel negotiation and collectives remain rank-thread-only.
class Comm {
public:
  Comm(TransportBackend& transport, rank_t rank,
       const CostModel* cost = nullptr,
       const TransportConfig* tcfg = nullptr);

  rank_t rank() const { return rank_; }
  int size() const { return transport_->size(); }

  /// Begins a non-blocking send; the payload is copied before returning.
  /// Prefer the by-value overload on hot paths.
  Request isend(rank_t dst, tag_t tag, std::span<const std::byte> payload);
  /// Zero-copy send: takes ownership of the buffer and moves it into the
  /// destination mailbox — no payload copy. The caller's vector is left
  /// empty; staging buffers come back through a BufferPool on the
  /// receiving side (see util/buffer_pool.hpp).
  Request isend(rank_t dst, tag_t tag, ByteBuf payload);
  /// Begins a non-blocking receive into `*out` (resized on completion).
  Request irecv(rank_t src, tag_t tag, ByteBuf* out);

  /// isend that stripes payloads >= stripe_min_bytes across the
  /// configured rails (header-framed sub-messages on the caller's tag).
  /// Below the threshold, or with rails == 1, this IS isend.
  Request stripe_isend(rank_t dst, tag_t tag, ByteBuf payload);
  /// Matching receive: `expect_bytes` must equal the sender's payload
  /// size (halo plans know both sides), so both ends derive the same
  /// stripe/no-stripe decision and stripe boundaries.
  Request stripe_irecv(rank_t src, tag_t tag, ByteBuf* out,
                       std::size_t expect_bytes);

  /// Negotiates persistent channels for all `specs` with the peers
  /// (two-phase: announce everything, then confirm everything — safe for
  /// any SPMD-symmetric open order, no cross-rank deadlock). A geometry
  /// or plan-hash mismatch between the two ends raises (stale channel).
  /// Rank-thread-only; called once per cached exchange plan.
  std::vector<Channel> open_channels(std::span<const ChannelSpec> specs);
  /// Posts `payload` (exactly ch.bytes) through a negotiated channel:
  /// headerless stripes on the channel's pre-assigned rail tags.
  Request channel_isend(const Channel& ch, ByteBuf payload);
  /// Matching receive through the peer's slot.
  Request channel_irecv(const Channel& ch, ByteBuf* out);

  void wait(Request& req);
  void wait_all(std::span<Request> reqs);

  void barrier();

  /// Collectives (implemented over point-to-point; see collectives.cpp).
  double allreduce_sum(double value);
  double allreduce_max(double value);
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);
  /// Gathers one value from each rank, in rank order, on every rank.
  std::vector<double> allgather(double value);
  std::vector<std::int64_t> allgather(std::int64_t value);
  /// Element-wise vector sum across ranks (deterministic rank-order
  /// accumulation on the root). All ranks must pass the same size.
  /// World::fetch_dat uses this in SPMD mode to combine per-rank owned
  /// scatters into the full global array on every process.
  std::vector<double> allreduce_sum(std::vector<double> values);
  /// Gathers one variable-size byte blob per rank onto every rank, in
  /// rank order. SPMD-mode metrics reduction serialises each process's
  /// LoopMetrics maps through this so rank 0 (and everyone else) can
  /// merge them exactly as the threaded World does.
  std::vector<ByteBuf> allgather_bytes(const ByteBuf& blob);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Virtual (modeled) time accumulated by the cost model, if one is set.
  VirtualClock& clock() { return clock_; }
  const CostModel* cost_model() const { return cost_; }
  const TransportConfig& transport_config() const { return tcfg_; }

  /// True when `bytes` would stripe under the current config. Receivers
  /// and senders must agree, so the rule is a pure function of size.
  bool should_stripe(std::size_t bytes) const {
    return tcfg_.rails > 1 && bytes >= tcfg_.stripe_min_bytes;
  }

private:
  friend class Collectives;
  Request post_send(rank_t dst, tag_t tag, Message msg);
  /// Stats + tier accounting for one wire message to `dst`.
  void record_send(rank_t dst, std::size_t bytes);
  void record_recv(rank_t src, std::size_t bytes);
  Tier tier_to(rank_t peer) const {
    return cost_ != nullptr ? cost_->tier_of(rank_, peer) : Tier::Net;
  }
  void charge(double seconds) {
    if (cost_ != nullptr) clock_.advance(seconds);
  }
  ByteBuf take_stripe_buf(std::size_t bytes);
  void release_stripe_buf(ByteBuf buf);
  /// match_for with the configured reassembly deadline; raises `what`
  /// context on timeout instead of returning false.
  Message match_or_raise(rank_t src, tag_t tag, const char* what);

  void complete_recv(Request& req);
  void complete_striped_recv(Request& req);
  void complete_channel_recv(Request& req);

  TransportBackend* transport_;
  rank_t rank_;
  const CostModel* cost_;
  TransportConfig tcfg_;  ///< copied; defaults when none supplied.
  CommStats stats_;
  VirtualClock clock_;

  /// Per-destination send serialisation (see class doc).
  std::unique_ptr<std::mutex[]> dest_mu_;
  std::mutex stats_mu_;

  /// Staging for stripe assembly/disassembly, recycled across epochs.
  /// Guarded: pack workers striping concurrently share it.
  std::mutex stripe_mu_;
  BufferPool stripe_pool_;

  /// Next channel id per ordered pair: index by peer, split by direction.
  std::vector<std::int32_t> next_send_channel_;
  std::vector<std::int32_t> next_recv_channel_;
};

}  // namespace op2ca::sim
