// In-process message transport shared by all simulated ranks.
//
// This is the distributed-memory substrate standing in for MPI (none is
// installed in this environment). Semantics mirror the subset of MPI the
// OP2 runtime needs: point-to-point tagged messages with non-overtaking
// order per (src, dst, tag), non-blocking send/recv with wait, and a
// barrier. Each rank runs on its own thread; mailboxes are mutex+condvar
// protected queues. Payloads are moved into the destination mailbox on
// post: the zero-copy isend overload transfers ownership of the sender's
// staging buffer (the span overload still copies for small collectives).
// Ownership handover happens under the mailbox mutex, so the receiver may
// recycle the buffer freely after wait() — see util/buffer_pool.hpp for
// the staging-buffer lifecycle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "op2ca/util/aligned.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Message tag. User tags are >= 0; negative tags are reserved for
/// internal collectives.
using tag_t = std::int32_t;

/// A delivered message (payload ownership transferred from the sender).
struct Message {
  rank_t src = -1;
  rank_t dst = -1;
  tag_t tag = 0;
  ByteBuf payload;
};

/// Shared mailbox fabric for `nranks` simulated processes.
class Transport {
public:
  explicit Transport(int nranks);

  int size() const { return nranks_; }

  /// Enqueues a message at the destination mailbox (non-blocking).
  void post(Message msg);

  /// Blocks until a message from `src` with `tag` is available for `dst`
  /// and removes it from the mailbox. FIFO per (src, tag).
  Message match(rank_t dst, rank_t src, tag_t tag);

  /// Non-blocking probe-and-take; returns false if nothing matches yet.
  bool try_match(rank_t dst, rank_t src, tag_t tag, Message* out);

  /// Dissemination-free centralised barrier over all ranks.
  void barrier();

  /// Number of messages currently queued across all mailboxes (test aid).
  std::size_t in_flight() const;

  /// Marks the fabric as failed: every blocked or future match/barrier
  /// throws instead of waiting forever. Called when a rank errors so the
  /// remaining SPMD threads unwind instead of deadlocking.
  void poison();
  bool poisoned() const { return poisoned_.load(); }

private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  bool take_locked(Mailbox& box, rank_t src, tag_t tag, Message* out);

  int nranks_;
  std::atomic<bool> poisoned_{false};
  std::vector<Mailbox> boxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace op2ca::sim
