// Pluggable message transport behind the per-rank Comm endpoints.
//
// TransportBackend is the contract every exchange path (per-loop, grouped
// chain, collectives, striped and persistent-channel sends) talks to:
// point-to-point tagged messages with non-overtaking order per (src, dst,
// tag), blocking/timed/non-blocking matching, a barrier, and poison for
// failure unwinding. Two implementations exist:
//
//  - sim::Transport (this file): the in-process fabric standing in for
//    MPI. Ranks are threads; mailboxes are mutex+condvar protected
//    queues. Payloads are moved into the destination mailbox on post:
//    the zero-copy isend overload transfers ownership of the sender's
//    staging buffer (the span overload still copies for small
//    collectives). Ownership handover happens under the mailbox mutex,
//    so the receiver may recycle the buffer freely after wait() — see
//    util/buffer_pool.hpp for the staging-buffer lifecycle. Carries the
//    fault-injection hooks the failure suite drives.
//
//  - sim::MpiBackend (mpi_backend.hpp): the same contract over real MPI
//    when built with -DOP2CA_MPI=ON and an MPI toolchain; a compile-only
//    stub that routes the identical protocol layer (tag encoding,
//    channel negotiation, striping) over an in-process fabric when MPI
//    is absent.
//
// make_backend() picks the implementation from a TransportConfig, which
// also carries the striping/persistent-channel knobs consumed by Comm.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "op2ca/util/aligned.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::sim {

/// Message tag. User tags are >= 0; negative tags are reserved for
/// internal collectives.
using tag_t = std::int32_t;

/// A delivered message (payload ownership transferred from the sender).
struct Message {
  rank_t src = -1;
  rank_t dst = -1;
  tag_t tag = 0;
  ByteBuf payload;
};

/// Which TransportBackend implementation a World runs on.
enum class BackendKind { Sim, Mpi };

const char* backend_name(BackendKind k);
BackendKind backend_by_name(const std::string& name);

/// Transport configuration carried by WorldConfig: backend selection plus
/// the striping / persistent-channel knobs Comm consumes. The defaults
/// (sim backend, 1 rail, non-persistent) keep every exchange on the
/// legacy single-isend path, bitwise-identical to earlier builds.
struct TransportConfig {
  BackendKind backend = BackendKind::Sim;
  /// Stripe fan-out: messages >= stripe_min_bytes split into up to this
  /// many rail sub-messages, reassembled out-of-order on the receiver.
  /// 1 disables striping.
  int rails = 1;
  /// Messages below this never stripe (latency-bound traffic gains
  /// nothing from extra envelopes).
  std::size_t stripe_min_bytes = std::size_t{64} * 1024;
  /// Persistent channels: grouped/loop exchanges pre-negotiate
  /// (dst, tag, size) slots once per cached plan — a la MPI_Send_init —
  /// and steady-state epochs post headerless stripes into them.
  bool persistent = false;
  /// Reassembly deadline: a striped or channel receive that cannot
  /// complete within this raises instead of deadlocking (dropped rail,
  /// peer failure). Seconds.
  double stripe_timeout_s = 120.0;
};

/// Abstract transport fabric shared by `nranks` SPMD endpoints.
class TransportBackend {
public:
  virtual ~TransportBackend() = default;

  virtual const char* name() const = 0;
  virtual int size() const = 0;

  /// Enqueues a message for the destination (non-blocking).
  virtual void post(Message msg) = 0;

  /// Blocks until a message from `src` with `tag` is available for `dst`
  /// and removes it. FIFO per (src, tag). Throws when poisoned.
  virtual Message match(rank_t dst, rank_t src, tag_t tag) = 0;

  /// Non-blocking probe-and-take; returns false if nothing matches yet.
  virtual bool try_match(rank_t dst, rank_t src, tag_t tag,
                         Message* out) = 0;

  /// Blocking match with a deadline: false on timeout, throws when
  /// poisoned. Striped reassembly uses this to fail loudly on a lost
  /// rail instead of waiting forever.
  virtual bool match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                         double timeout_s) = 0;

  /// Synchronises all ranks.
  virtual void barrier() = 0;

  /// Number of messages currently queued (test aid).
  virtual std::size_t in_flight() const = 0;

  /// Marks the fabric as failed: every blocked or future match/barrier
  /// throws instead of waiting forever. Called when a rank errors so the
  /// remaining SPMD threads unwind instead of deadlocking.
  virtual void poison() = 0;
  virtual bool poisoned() const = 0;
};

/// Constructs the backend `cfg` selects (validating rails etc.). The Mpi
/// kind returns the real MPI backend when compiled in, the in-process
/// stub otherwise.
std::unique_ptr<TransportBackend> make_backend(const TransportConfig& cfg,
                                               int nranks);

/// In-process mailbox fabric for `nranks` simulated processes.
class Transport : public TransportBackend {
public:
  explicit Transport(int nranks);

  const char* name() const override { return "sim"; }
  int size() const override { return nranks_; }

  void post(Message msg) override;
  Message match(rank_t dst, rank_t src, tag_t tag) override;
  bool try_match(rank_t dst, rank_t src, tag_t tag, Message* out) override;
  bool match_for(rank_t dst, rank_t src, tag_t tag, Message* out,
                 double timeout_s) override;

  /// Dissemination-free centralised barrier over all ranks.
  void barrier() override;

  std::size_t in_flight() const override;

  void poison() override;
  bool poisoned() const override { return poisoned_.load(); }

  // ---- Fault / contention injection (test hooks). ---------------------
  /// Drops the next `count` posts matching (src, dst, tag) on the floor —
  /// a dead rail. Reassembly must then fail loudly, never deliver torn.
  void inject_drop(rank_t src, rank_t dst, tag_t tag, int count = 1);
  /// Truncates the next `count` matching posts to `keep_bytes` of
  /// payload — a torn stripe the receiver must reject.
  void inject_truncate(rank_t src, rank_t dst, tag_t tag,
                       std::size_t keep_bytes, int count = 1);
  /// Delays every post TO `dst` by `seconds` inside the destination's
  /// serialisation scope. Lets the contention regression test observe
  /// that sends to other destinations do not queue behind it.
  void set_post_delay(rank_t dst, double seconds);

private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  struct Injection {
    rank_t src = -1;
    rank_t dst = -1;
    tag_t tag = 0;
    bool drop = false;          // else truncate
    std::size_t keep_bytes = 0;
    int count = 0;
  };

  bool take_locked(Mailbox& box, rank_t src, tag_t tag, Message* out);
  /// Applies injections; returns false when the message must be dropped.
  bool apply_injections(Message* msg);

  int nranks_;
  std::atomic<bool> poisoned_{false};
  std::vector<Mailbox> boxes_;

  std::mutex inject_mu_;
  std::vector<Injection> injections_;
  std::vector<double> post_delay_s_;  ///< per-destination, empty = none.

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace op2ca::sim
