#include "op2ca/comm/comm.hpp"

#include <algorithm>

#include "op2ca/util/error.hpp"

namespace op2ca::sim {

void CommStats::reset_epoch() {
  epoch_msgs_sent = 0;
  epoch_bytes_sent = 0;
  epoch_msgs_received = 0;
  epoch_bytes_received = 0;
  epoch_max_msg_bytes = 0;
  epoch_neighbors.clear();
}

Comm::Comm(Transport& transport, rank_t rank, const CostModel* cost)
    : transport_(&transport), rank_(rank), cost_(cost) {
  OP2CA_REQUIRE(rank >= 0 && rank < transport.size(),
                "Comm rank out of range");
}

Request Comm::isend(rank_t dst, tag_t tag,
                    std::span<const std::byte> payload) {
  Message msg;
  msg.payload.assign(payload.begin(), payload.end());
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    stats_.sends_copied += 1;
  }
  return post_send(dst, tag, std::move(msg));
}

Request Comm::isend(rank_t dst, tag_t tag, ByteBuf payload) {
  Message msg;
  msg.payload = std::move(payload);
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    stats_.sends_moved += 1;
  }
  return post_send(dst, tag, std::move(msg));
}

Request Comm::post_send(rank_t dst, tag_t tag, Message msg) {
  OP2CA_REQUIRE(dst != rank_, "isend to self is not supported");
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  const std::size_t n = msg.payload.size();

  // Concurrent pack tasks of one rank may isend simultaneously; the lock
  // keeps stats consistent and message posting ordered per sender.
  std::lock_guard<std::mutex> lock(send_mu_);
  transport_->post(std::move(msg));

  stats_.msgs_sent += 1;
  stats_.bytes_sent += static_cast<std::int64_t>(n);
  stats_.send_neighbors.insert(dst);
  stats_.epoch_msgs_sent += 1;
  stats_.epoch_bytes_sent += static_cast<std::int64_t>(n);
  stats_.epoch_max_msg_bytes =
      std::max(stats_.epoch_max_msg_bytes, static_cast<std::int64_t>(n));
  stats_.epoch_neighbors.insert(dst);

  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer = dst;
  req.tag = tag;
  req.sent_bytes = n;
  return req;
}

Request Comm::irecv(rank_t src, tag_t tag, ByteBuf* out) {
  OP2CA_REQUIRE(out != nullptr, "irecv requires an output buffer");
  OP2CA_REQUIRE(src != rank_, "irecv from self is not supported");
  Request req;
  req.kind_ = Request::Kind::Recv;
  req.peer = src;
  req.tag = tag;
  req.recv_buffer = out;
  return req;
}

void Comm::wait(Request& req) {
  OP2CA_REQUIRE(req.valid(), "wait on an empty request");
  if (req.kind_ == Request::Kind::Recv) {
    Message msg = transport_->match(rank_, req.peer, req.tag);
    *req.recv_buffer = std::move(msg.payload);
    stats_.msgs_received += 1;
    stats_.bytes_received +=
        static_cast<std::int64_t>(req.recv_buffer->size());
    stats_.epoch_msgs_received += 1;
    stats_.epoch_bytes_received +=
        static_cast<std::int64_t>(req.recv_buffer->size());
    stats_.recv_neighbors.insert(req.peer);
    if (cost_ != nullptr) {
      clock_.advance(cost_->message_time(
          static_cast<std::int64_t>(req.recv_buffer->size())));
    }
  }
  // Sends complete eagerly at isend time (payload copied).
  req.kind_ = Request::Kind::None;
}

void Comm::wait_all(std::span<Request> reqs) {
  for (auto& req : reqs)
    if (req.valid()) wait(req);
}

void Comm::barrier() { transport_->barrier(); }

}  // namespace op2ca::sim
