#include "op2ca/comm/comm.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "op2ca/util/error.hpp"

namespace op2ca::sim {

void CommStats::reset_epoch() {
  epoch_msgs_sent = 0;
  epoch_bytes_sent = 0;
  epoch_msgs_received = 0;
  epoch_bytes_received = 0;
  epoch_max_msg_bytes = 0;
  for (int t = 0; t < kNumTiers; ++t) {
    epoch_msgs_by_tier[t] = 0;
    epoch_bytes_by_tier[t] = 0;
  }
  epoch_stripes = 0;
  epoch_neighbors.clear();
}

Comm::Comm(TransportBackend& transport, rank_t rank, const CostModel* cost,
           const TransportConfig* tcfg)
    : transport_(&transport), rank_(rank), cost_(cost) {
  OP2CA_REQUIRE(rank >= 0 && rank < transport.size(),
                "Comm rank out of range");
  if (tcfg != nullptr) tcfg_ = *tcfg;
  OP2CA_REQUIRE(tcfg_.rails >= 1 && tcfg_.rails <= kMaxRails,
                "Comm: rails out of [1, " + std::to_string(kMaxRails) + "]");
  dest_mu_ = std::make_unique<std::mutex[]>(
      static_cast<std::size_t>(transport.size()));
  next_send_channel_.assign(static_cast<std::size_t>(transport.size()), 0);
  next_recv_channel_.assign(static_cast<std::size_t>(transport.size()), 0);
}

Request Comm::isend(rank_t dst, tag_t tag,
                    std::span<const std::byte> payload) {
  Message msg;
  msg.payload.assign(payload.begin(), payload.end());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.sends_copied += 1;
  }
  return post_send(dst, tag, std::move(msg));
}

Request Comm::isend(rank_t dst, tag_t tag, ByteBuf payload) {
  Message msg;
  msg.payload = std::move(payload);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.sends_moved += 1;
  }
  return post_send(dst, tag, std::move(msg));
}

Request Comm::post_send(rank_t dst, tag_t tag, Message msg) {
  OP2CA_REQUIRE(dst != rank_, "isend to self is not supported");
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  const std::size_t n = msg.payload.size();

  // Concurrent pack tasks of one rank may isend simultaneously. Sends
  // serialise per destination — posts to the same peer keep their
  // (src, dst, tag) FIFO order, posts to different peers proceed in
  // parallel instead of queueing behind one global lock.
  {
    std::lock_guard<std::mutex> lock(dest_mu_[static_cast<std::size_t>(dst)]);
    transport_->post(std::move(msg));
  }
  record_send(dst, n);

  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer = dst;
  req.tag = tag;
  req.sent_bytes = n;
  return req;
}

void Comm::record_send(rank_t dst, std::size_t bytes) {
  const auto n = static_cast<std::int64_t>(bytes);
  const int tier = static_cast<int>(tier_to(dst));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.msgs_sent += 1;
  stats_.bytes_sent += n;
  stats_.msgs_by_tier[tier] += 1;
  stats_.bytes_by_tier[tier] += n;
  stats_.send_neighbors.insert(dst);
  stats_.epoch_msgs_sent += 1;
  stats_.epoch_bytes_sent += n;
  stats_.epoch_max_msg_bytes = std::max(stats_.epoch_max_msg_bytes, n);
  stats_.epoch_msgs_by_tier[tier] += 1;
  stats_.epoch_bytes_by_tier[tier] += n;
  stats_.epoch_neighbors.insert(dst);
}

void Comm::record_recv(rank_t src, std::size_t bytes) {
  const auto n = static_cast<std::int64_t>(bytes);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.msgs_received += 1;
  stats_.bytes_received += n;
  stats_.epoch_msgs_received += 1;
  stats_.epoch_bytes_received += n;
  stats_.recv_neighbors.insert(src);
}

ByteBuf Comm::take_stripe_buf(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(stripe_mu_);
  return stripe_pool_.take(bytes);
}

void Comm::release_stripe_buf(ByteBuf buf) {
  std::lock_guard<std::mutex> lock(stripe_mu_);
  stripe_pool_.release(std::move(buf));
}

Request Comm::irecv(rank_t src, tag_t tag, ByteBuf* out) {
  OP2CA_REQUIRE(out != nullptr, "irecv requires an output buffer");
  OP2CA_REQUIRE(src != rank_, "irecv from self is not supported");
  Request req;
  req.kind_ = Request::Kind::Recv;
  req.peer = src;
  req.tag = tag;
  req.recv_buffer = out;
  return req;
}

// ---- Striping. ------------------------------------------------------------

Request Comm::stripe_isend(rank_t dst, tag_t tag, ByteBuf payload) {
  const std::size_t total = payload.size();
  if (!should_stripe(total)) return isend(dst, tag, std::move(payload));

  const auto slots = stripe_bounds(total, tcfg_.rails);
  for (std::size_t r = 0; r < slots.size(); ++r) {
    ByteBuf wire = take_stripe_buf(kStripeHeaderBytes + slots[r].bytes);
    StripeHeader h;
    h.magic = kStripeMagic;
    h.rail = static_cast<std::uint16_t>(r);
    h.rails = static_cast<std::uint16_t>(slots.size());
    h.total = total;
    h.offset = slots[r].offset;
    h.plan_hash = 0;
    encode_stripe_header(h, wire.data());
    std::memcpy(wire.data() + kStripeHeaderBytes,
                payload.data() + slots[r].offset, slots[r].bytes);
    Message msg;
    msg.payload = std::move(wire);
    post_send(dst, tag, std::move(msg));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.stripes_sent += static_cast<std::int64_t>(slots.size());
    stats_.epoch_stripes += static_cast<std::int64_t>(slots.size());
    stats_.sends_moved += 1;
  }
  // The logical payload was copied out stripe by stripe; recycle it for
  // the next stripe_isend so steady state allocates nothing.
  release_stripe_buf(std::move(payload));

  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer = dst;
  req.tag = tag;
  req.sent_bytes = total;
  return req;
}

Request Comm::stripe_irecv(rank_t src, tag_t tag, ByteBuf* out,
                           std::size_t expect_bytes) {
  if (!should_stripe(expect_bytes)) return irecv(src, tag, out);
  OP2CA_REQUIRE(out != nullptr, "stripe_irecv requires an output buffer");
  OP2CA_REQUIRE(src != rank_, "stripe_irecv from self is not supported");
  Request req;
  req.kind_ = Request::Kind::StripedRecv;
  req.peer = src;
  req.tag = tag;
  req.recv_buffer = out;
  req.expect_bytes = expect_bytes;
  return req;
}

// ---- Persistent channels. -------------------------------------------------

std::vector<Channel> Comm::open_channels(
    std::span<const ChannelSpec> specs) {
  std::vector<Channel> out;
  out.reserve(specs.size());

  // Phase 1: build local state and announce every channel. Announcing
  // everything before confirming anything keeps the handshake
  // deadlock-free for any SPMD-symmetric open order: a peer confirming
  // its side never waits on a hello we have not yet posted.
  for (const ChannelSpec& spec : specs) {
    OP2CA_REQUIRE(spec.peer >= 0 && spec.peer < size() &&
                      spec.peer != rank_,
                  "open_channels: bad peer rank");
    OP2CA_REQUIRE(spec.bytes > 0, "open_channels: empty channel slot");
    Channel ch;
    ch.peer = spec.peer;
    ch.sender = spec.sender;
    ch.bytes = spec.bytes;
    ch.plan_hash = spec.plan_hash;
    auto& seq = spec.sender
                    ? next_send_channel_[static_cast<std::size_t>(spec.peer)]
                    : next_recv_channel_[static_cast<std::size_t>(spec.peer)];
    ch.id = seq++;
    ch.slots = should_stripe(ch.bytes)
                   ? stripe_bounds(ch.bytes, tcfg_.rails)
                   : std::vector<StripeSlot>{{0, ch.bytes}};

    ChannelHello hello;
    hello.magic = kHelloMagic;
    hello.id = ch.id;
    hello.bytes = ch.bytes;
    hello.rails = static_cast<std::uint16_t>(ch.rails());
    hello.plan_hash = ch.plan_hash;
    Message msg;
    msg.payload.resize(kHelloBytes);
    encode_hello(hello, msg.payload.data());
    post_send(ch.peer,
              ch.sender ? kChannelHelloSend : kChannelHelloRecv,
              std::move(msg));
    out.push_back(std::move(ch));
  }

  // Phase 2: confirm each channel against the peer's announcement of the
  // opposite direction. FIFO per (src, tag) pairs the k-th send-side
  // open with the k-th recv-side open.
  for (Channel& ch : out) {
    Message m = match_or_raise(
        ch.peer, ch.sender ? kChannelHelloRecv : kChannelHelloSend,
        "persistent-channel negotiation");
    record_recv(ch.peer, m.payload.size());
    const ChannelHello peer_hello =
        decode_hello(m.payload.data(), m.payload.size());
    OP2CA_REQUIRE(
        peer_hello.id == ch.id,
        "persistent channel out of sync with rank " +
            std::to_string(ch.peer) + ": local id " +
            std::to_string(ch.id) + " vs peer id " +
            std::to_string(peer_hello.id) +
            " (channels opened in different orders)");
    OP2CA_REQUIRE(
        peer_hello.plan_hash == ch.plan_hash,
        "stale persistent channel to rank " + std::to_string(ch.peer) +
            ": structural plan hash mismatch (one side rebuilt its "
            "exchange plan without renegotiating the channel)");
    OP2CA_REQUIRE(
        peer_hello.bytes == ch.bytes &&
            peer_hello.rails == static_cast<std::uint16_t>(ch.rails()),
        "persistent channel geometry mismatch with rank " +
            std::to_string(ch.peer) + ": local " +
            std::to_string(ch.bytes) + "B x " +
            std::to_string(ch.rails()) + " rails vs peer " +
            std::to_string(peer_hello.bytes) + "B x " +
            std::to_string(peer_hello.rails) + " rails");
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.channels_opened += 1;
  }
  return out;
}

Request Comm::channel_isend(const Channel& ch, ByteBuf payload) {
  OP2CA_REQUIRE(ch.valid(), "channel_isend on an unopened channel");
  OP2CA_REQUIRE(ch.sender, "channel_isend on a receive-side channel");
  OP2CA_REQUIRE(payload.size() == ch.bytes,
                "channel_isend payload does not fit the negotiated slot "
                "(" + std::to_string(payload.size()) + "B into " +
                    std::to_string(ch.bytes) + "B)");

  if (ch.rails() == 1) {
    // Degenerate slot: the negotiated geometry already pins
    // (peer, tag, size), so the payload moves zero-copy, headerless.
    Message msg;
    msg.payload = std::move(payload);
    post_send(ch.peer, ch.rail_tag(0), std::move(msg));
  } else {
    for (int r = 0; r < ch.rails(); ++r) {
      const StripeSlot& slot = ch.slots[static_cast<std::size_t>(r)];
      ByteBuf wire = take_stripe_buf(slot.bytes);
      std::memcpy(wire.data(), payload.data() + slot.offset, slot.bytes);
      Message msg;
      msg.payload = std::move(wire);
      post_send(ch.peer, ch.rail_tag(r), std::move(msg));
    }
    release_stripe_buf(std::move(payload));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.channel_sends += 1;
    stats_.sends_moved += 1;
    if (ch.rails() > 1) {
      stats_.stripes_sent += ch.rails();
      stats_.epoch_stripes += ch.rails();
    }
  }

  Request req;
  req.kind_ = Request::Kind::Send;
  req.peer = ch.peer;
  req.tag = ch.rail_tag(0);
  req.sent_bytes = ch.bytes;
  return req;
}

Request Comm::channel_irecv(const Channel& ch, ByteBuf* out) {
  OP2CA_REQUIRE(ch.valid(), "channel_irecv on an unopened channel");
  OP2CA_REQUIRE(!ch.sender, "channel_irecv on a send-side channel");
  OP2CA_REQUIRE(out != nullptr, "channel_irecv requires an output buffer");
  Request req;
  req.kind_ = Request::Kind::ChannelRecv;
  req.peer = ch.peer;
  req.tag = ch.rail_tag(0);
  req.recv_buffer = out;
  req.channel = &ch;
  return req;
}

// ---- Completion. ----------------------------------------------------------

Message Comm::match_or_raise(rank_t src, tag_t tag, const char* what) {
  Message m;
  if (!transport_->match_for(rank_, src, tag, &m, tcfg_.stripe_timeout_s))
    raise(std::string(what) + " from rank " + std::to_string(src) +
          " timed out after " + std::to_string(tcfg_.stripe_timeout_s) +
          "s (dropped rail or failed peer) — failing loudly rather than "
          "delivering a torn message");
  return m;
}

void Comm::complete_recv(Request& req) {
  Message msg = transport_->match(rank_, req.peer, req.tag);
  *req.recv_buffer = std::move(msg.payload);
  record_recv(req.peer, req.recv_buffer->size());
  charge(cost_ != nullptr
             ? cost_->message_time(
                   static_cast<std::int64_t>(req.recv_buffer->size()),
                   tier_to(req.peer))
             : 0.0);
}

void Comm::complete_striped_recv(Request& req) {
  const std::size_t total = req.expect_bytes;
  const auto slots = stripe_bounds(total, tcfg_.rails);
  ByteBuf assembled = take_stripe_buf(total);

  // Stripes arrive on one (src, tag) stream but rails may complete in
  // any order; the header's offset places each one. Every stripe is
  // validated against the slot geometry both ends derive from
  // (total, rails) — a short payload here is a torn message, not a
  // smaller transfer.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Message m = match_or_raise(req.peer, req.tag, "striped message");
    record_recv(req.peer, m.payload.size());
    const StripeHeader h =
        decode_stripe_header(m.payload.data(), m.payload.size());
    const std::size_t body = m.payload.size() - kStripeHeaderBytes;
    OP2CA_REQUIRE(h.total == total,
                  "striped message total mismatch: header says " +
                      std::to_string(h.total) + "B, receiver expected " +
                      std::to_string(total) + "B");
    OP2CA_REQUIRE(h.rails == slots.size(),
                  "striped message rail-count mismatch");
    OP2CA_REQUIRE(h.rail < slots.size(),
                  "striped message rail index out of range");
    const StripeSlot& slot = slots[h.rail];
    OP2CA_REQUIRE(h.offset == slot.offset && body == slot.bytes,
                  "torn stripe from rank " + std::to_string(req.peer) +
                      ": rail " + std::to_string(h.rail) + " carries " +
                      std::to_string(body) + "B at offset " +
                      std::to_string(h.offset) + ", expected " +
                      std::to_string(slot.bytes) + "B at offset " +
                      std::to_string(slot.offset));
    std::memcpy(assembled.data() + slot.offset,
                m.payload.data() + kStripeHeaderBytes, slot.bytes);
    release_stripe_buf(std::move(m.payload));
  }
  *req.recv_buffer = std::move(assembled);
  charge(cost_ != nullptr
             ? cost_->striped_time(static_cast<std::int64_t>(total),
                                   static_cast<int>(slots.size()),
                                   tier_to(req.peer))
             : 0.0);
}

void Comm::complete_channel_recv(Request& req) {
  const Channel& ch = *req.channel;
  if (ch.rails() == 1) {
    Message m = match_or_raise(ch.peer, ch.rail_tag(0),
                               "persistent-channel message");
    record_recv(ch.peer, m.payload.size());
    OP2CA_REQUIRE(m.payload.size() == ch.bytes,
                  "persistent channel from rank " +
                      std::to_string(ch.peer) + " delivered " +
                      std::to_string(m.payload.size()) +
                      "B into a " + std::to_string(ch.bytes) + "B slot");
    *req.recv_buffer = std::move(m.payload);
  } else {
    ByteBuf assembled = take_stripe_buf(ch.bytes);
    for (int r = 0; r < ch.rails(); ++r) {
      const StripeSlot& slot = ch.slots[static_cast<std::size_t>(r)];
      Message m = match_or_raise(ch.peer, ch.rail_tag(r),
                                 "persistent-channel stripe");
      record_recv(ch.peer, m.payload.size());
      OP2CA_REQUIRE(m.payload.size() == slot.bytes,
                    "persistent channel from rank " +
                        std::to_string(ch.peer) + ", rail " +
                        std::to_string(r) + ": got " +
                        std::to_string(m.payload.size()) +
                        "B for a " + std::to_string(slot.bytes) +
                        "B stripe slot");
      std::memcpy(assembled.data() + slot.offset, m.payload.data(),
                  slot.bytes);
      release_stripe_buf(std::move(m.payload));
    }
    *req.recv_buffer = std::move(assembled);
  }
  charge(cost_ != nullptr
             ? cost_->channel_time(static_cast<std::int64_t>(ch.bytes),
                                   ch.rails(), tier_to(ch.peer))
             : 0.0);
}

void Comm::wait(Request& req) {
  OP2CA_REQUIRE(req.valid(), "wait on an empty request");
  switch (req.kind_) {
    case Request::Kind::Recv: complete_recv(req); break;
    case Request::Kind::StripedRecv: complete_striped_recv(req); break;
    case Request::Kind::ChannelRecv: complete_channel_recv(req); break;
    default: break;  // Sends complete eagerly at isend time.
  }
  req.kind_ = Request::Kind::None;
}

void Comm::wait_all(std::span<Request> reqs) {
  for (auto& req : reqs)
    if (req.valid()) wait(req);
}

void Comm::barrier() { transport_->barrier(); }

}  // namespace op2ca::sim
