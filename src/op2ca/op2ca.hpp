// Umbrella header: the full public surface of op2ca.
//
// Typical applications only need core/runtime.hpp (which pulls in the
// mesh, partition, halo and comm types it exposes); this header adds the
// generators, model, GPU simulation and application analogues for
// convenience.
#pragma once

#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/core/chain.hpp"
#include "op2ca/core/chain_config.hpp"
#include "op2ca/core/runtime.hpp"
#include "op2ca/core/slice.hpp"
#include "op2ca/gpu/device.hpp"
#include "op2ca/gpu/pipeline.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/mesh/adjacency.hpp"
#include "op2ca/mesh/annulus.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/mesh/mesh_io.hpp"
#include "op2ca/mesh/multigrid.hpp"
#include "op2ca/mesh/quad2d.hpp"
#include "op2ca/mesh/vtk.hpp"
#include "op2ca/model/calibrate.hpp"
#include "op2ca/model/components.hpp"
#include "op2ca/model/machine.hpp"
#include "op2ca/model/perf_model.hpp"
#include "op2ca/partition/partition.hpp"
#include "op2ca/partition/quality.hpp"
#include "op2ca/util/options.hpp"
#include "op2ca/util/rng.hpp"
#include "op2ca/util/stats.hpp"
#include "op2ca/util/table.hpp"
#include "op2ca/util/timer.hpp"
