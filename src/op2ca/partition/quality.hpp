// Partition quality metrics: load imbalance, edge cut and neighbour
// statistics. The analytic model's p (max neighbours per rank) comes from
// here before any halo structure is built.
#pragma once

#include "op2ca/partition/partition.hpp"

namespace op2ca::partition {

struct Quality {
  double imbalance = 0.0;      ///< max part size / mean part size.
  gidx_t edge_cut = 0;         ///< graph edges crossing parts (seed set).
  double avg_neighbors = 0.0;  ///< mean #neighbour parts per part.
  int max_neighbors = 0;       ///< max #neighbour parts of any part (p).
  gidx_t min_part = 0;
  gidx_t max_part = 0;
};

/// Evaluates the partition of `s` using the symmetric set graph of `s`.
Quality evaluate_partition(const mesh::MeshDef& mesh, const Partition& part,
                           mesh::set_id s);

}  // namespace op2ca::partition
