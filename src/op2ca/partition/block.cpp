#include "op2ca/partition/partition.hpp"

namespace op2ca::partition {

std::vector<rank_t> partition_block(gidx_t n, int nranks) {
  OP2CA_REQUIRE(nranks >= 1, "partition_block needs nranks >= 1");
  std::vector<rank_t> assign(static_cast<std::size_t>(n));
  // Distribute the remainder one element at a time so sizes differ by at
  // most one.
  const gidx_t base = n / nranks;
  const gidx_t rem = n % nranks;
  gidx_t e = 0;
  for (rank_t r = 0; r < nranks; ++r) {
    const gidx_t count = base + (r < rem ? 1 : 0);
    for (gidx_t i = 0; i < count; ++i)
      assign[static_cast<std::size_t>(e++)] = r;
  }
  return assign;
}

}  // namespace op2ca::partition
