// Greedy graph-growing k-way partitioner with boundary refinement — the
// ParMETIS k-way stand-in. Parts are grown one at a time by a
// most-connected-first BFS to their target size, then a few passes of
// KL-style boundary moves reduce the edge cut under a balance constraint.
#include <algorithm>
#include <queue>
#include <vector>

#include "op2ca/partition/partition.hpp"

namespace op2ca::partition {
namespace {

struct HeapEntry {
  gidx_t vertex;
  int connectivity;  // edges into the growing part
  bool operator<(const HeapEntry& other) const {
    if (connectivity != other.connectivity)
      return connectivity < other.connectivity;
    return vertex > other.vertex;  // deterministic: prefer lower id
  }
};

/// One refinement sweep; returns number of vertices moved.
gidx_t refine_pass(const mesh::Csr& graph, int nranks,
                   std::vector<rank_t>& assign,
                   std::vector<gidx_t>& part_size, gidx_t max_size) {
  const gidx_t n = graph.num_rows();
  gidx_t moved = 0;
  std::vector<int> conn(static_cast<std::size_t>(nranks), 0);
  for (gidx_t v = 0; v < n; ++v) {
    const rank_t cur = assign[static_cast<std::size_t>(v)];
    bool boundary = false;
    for (gidx_t u : graph.row(v))
      if (assign[static_cast<std::size_t>(u)] != cur) {
        boundary = true;
        break;
      }
    if (!boundary) continue;

    // Connectivity of v to each neighbouring part.
    std::vector<rank_t> touched;
    for (gidx_t u : graph.row(v)) {
      const rank_t p = assign[static_cast<std::size_t>(u)];
      if (conn[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
      ++conn[static_cast<std::size_t>(p)];
    }
    rank_t best = cur;
    int best_gain = 0;
    for (rank_t p : touched) {
      if (p == cur) continue;
      if (part_size[static_cast<std::size_t>(p)] + 1 > max_size) continue;
      const int gain = conn[static_cast<std::size_t>(p)] -
                       conn[static_cast<std::size_t>(cur)];
      if (gain > best_gain ||
          (gain == best_gain && best != cur && p < best)) {
        best_gain = gain;
        best = p;
      }
    }
    for (rank_t p : touched) conn[static_cast<std::size_t>(p)] = 0;

    if (best != cur && part_size[static_cast<std::size_t>(cur)] > 1) {
      assign[static_cast<std::size_t>(v)] = best;
      --part_size[static_cast<std::size_t>(cur)];
      ++part_size[static_cast<std::size_t>(best)];
      ++moved;
    }
  }
  return moved;
}

}  // namespace

std::vector<rank_t> partition_kway(const mesh::Csr& graph, int nranks) {
  OP2CA_REQUIRE(nranks >= 1, "partition_kway needs nranks >= 1");
  const gidx_t n = graph.num_rows();
  std::vector<rank_t> assign(static_cast<std::size_t>(n), -1);
  if (nranks == 1) {
    std::fill(assign.begin(), assign.end(), 0);
    return assign;
  }
  OP2CA_REQUIRE(n >= nranks, "partition_kway: fewer vertices than parts");

  std::vector<gidx_t> part_size(static_cast<std::size_t>(nranks), 0);
  gidx_t next_unassigned = 0;
  gidx_t assigned_count = 0;

  for (rank_t part = 0; part < nranks; ++part) {
    // Remaining elements are spread evenly over remaining parts, so later
    // parts absorb any rounding.
    const gidx_t target =
        (n - assigned_count) / static_cast<gidx_t>(nranks - part);

    while (next_unassigned < n &&
           assign[static_cast<std::size_t>(next_unassigned)] >= 0)
      ++next_unassigned;
    OP2CA_ASSERT(next_unassigned < n, "kway ran out of seed vertices");

    std::priority_queue<HeapEntry> heap;
    heap.push(HeapEntry{next_unassigned, 0});
    gidx_t grown = 0;
    while (grown < target && !heap.empty()) {
      const gidx_t v = heap.top().vertex;
      heap.pop();
      if (assign[static_cast<std::size_t>(v)] >= 0) continue;  // stale entry
      assign[static_cast<std::size_t>(v)] = part;
      ++grown;
      ++assigned_count;
      for (gidx_t u : graph.row(v)) {
        if (assign[static_cast<std::size_t>(u)] >= 0) continue;
        int c = 0;
        for (gidx_t w : graph.row(u))
          if (assign[static_cast<std::size_t>(w)] == part) ++c;
        heap.push(HeapEntry{u, c});
      }
      // If the frontier dries up (disconnected region), restart from the
      // lowest unassigned vertex.
      if (heap.empty() && grown < target) {
        while (next_unassigned < n &&
               assign[static_cast<std::size_t>(next_unassigned)] >= 0)
          ++next_unassigned;
        if (next_unassigned < n) heap.push(HeapEntry{next_unassigned, 0});
      }
    }
    part_size[static_cast<std::size_t>(part)] = grown;
  }

  // Anything left (possible only through rounding) goes to the last part.
  for (gidx_t v = 0; v < n; ++v)
    if (assign[static_cast<std::size_t>(v)] < 0) {
      assign[static_cast<std::size_t>(v)] = nranks - 1;
      ++part_size[static_cast<std::size_t>(nranks - 1)];
    }

  // Boundary refinement: keep sizes within 3% of perfect balance.
  const gidx_t max_size =
      (n + nranks - 1) / nranks + std::max<gidx_t>(1, n / nranks / 32);
  for (int pass = 0; pass < 4; ++pass)
    if (refine_pass(graph, nranks, assign, part_size, max_size) == 0) break;

  return assign;
}

}  // namespace op2ca::partition
