#include "op2ca/partition/partition.hpp"

#include <deque>

#include "op2ca/util/log.hpp"

namespace op2ca::partition {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Block: return "block";
    case Kind::RIB: return "rib";
    case Kind::KWay: return "kway";
  }
  return "?";
}

Partition partition_mesh(const mesh::MeshDef& mesh, int nranks, Kind kind,
                         mesh::set_id seed_set) {
  OP2CA_REQUIRE(nranks >= 1, "partition_mesh needs nranks >= 1");
  OP2CA_REQUIRE(seed_set >= 0 && seed_set < mesh.num_sets(),
                "partition_mesh: seed set out of range");

  Partition part;
  part.nranks = nranks;
  part.assignment.resize(static_cast<std::size_t>(mesh.num_sets()));

  const gidx_t nseed = mesh.set(seed_set).size;
  std::vector<rank_t>& seed_assign =
      part.assignment[static_cast<std::size_t>(seed_set)];
  switch (kind) {
    case Kind::Block:
      seed_assign = partition_block(nseed, nranks);
      break;
    case Kind::RIB: {
      const std::vector<double> coords = mesh::derive_coords(mesh, seed_set);
      const int dim = mesh.dat(mesh.coords_dat()).dim;
      seed_assign = partition_rib(coords, dim, nseed, nranks);
      break;
    }
    case Kind::KWay: {
      const mesh::Csr graph = mesh::set_graph(mesh, seed_set);
      seed_assign = partition_kway(graph, nranks);
      break;
    }
  }

  propagate_ownership(mesh, seed_set, &part);
  return part;
}

void propagate_ownership(const mesh::MeshDef& mesh, mesh::set_id seed,
                         Partition* part) {
  const int nsets = mesh.num_sets();
  std::vector<bool> assigned(static_cast<std::size_t>(nsets), false);
  assigned[static_cast<std::size_t>(seed)] = true;

  // Breadth-first over sets: a set becomes assignable once it shares a map
  // with an assigned set (in either direction).
  std::deque<mesh::set_id> frontier{seed};
  while (!frontier.empty()) {
    const mesh::set_id cur = frontier.front();
    frontier.pop_front();

    for (mesh::map_id m = 0; m < mesh.num_maps(); ++m) {
      const mesh::MapDef& mp = mesh.map(m);

      // Forward: from-set unassigned, to-set = cur. Owner of an element is
      // the owner of its first map target.
      if (mp.to == cur && !assigned[static_cast<std::size_t>(mp.from)]) {
        const gidx_t nfrom = mesh.set(mp.from).size;
        auto& out = part->assignment[static_cast<std::size_t>(mp.from)];
        out.resize(static_cast<std::size_t>(nfrom));
        const auto& src = part->assignment[static_cast<std::size_t>(mp.to)];
        for (gidx_t e = 0; e < nfrom; ++e)
          out[static_cast<std::size_t>(e)] =
              src[static_cast<std::size_t>(
                  mp.targets[static_cast<std::size_t>(e * mp.arity)])];
        assigned[static_cast<std::size_t>(mp.from)] = true;
        frontier.push_back(mp.from);
      }

      // Reverse: to-set unassigned, from-set = cur. Owner of a target is
      // the owner of the lowest-numbered incident source element.
      if (mp.from == cur && !assigned[static_cast<std::size_t>(mp.to)]) {
        const gidx_t nto = mesh.set(mp.to).size;
        auto& out = part->assignment[static_cast<std::size_t>(mp.to)];
        out.assign(static_cast<std::size_t>(nto), -1);
        const auto& src = part->assignment[static_cast<std::size_t>(mp.from)];
        const gidx_t nfrom = mesh.set(mp.from).size;
        for (gidx_t e = 0; e < nfrom; ++e)
          for (int k = 0; k < mp.arity; ++k) {
            const gidx_t t =
                mp.targets[static_cast<std::size_t>(e * mp.arity + k)];
            if (out[static_cast<std::size_t>(t)] < 0)
              out[static_cast<std::size_t>(t)] =
                  src[static_cast<std::size_t>(e)];
          }
        // Targets never referenced by the map fall back to block layout.
        const std::vector<rank_t> blocks =
            partition_block(nto, part->nranks);
        for (gidx_t t = 0; t < nto; ++t)
          if (out[static_cast<std::size_t>(t)] < 0)
            out[static_cast<std::size_t>(t)] =
                blocks[static_cast<std::size_t>(t)];
        assigned[static_cast<std::size_t>(mp.to)] = true;
        frontier.push_back(mp.to);
      }
    }
  }

  // Fully disconnected sets: block partition, with a warning since this
  // usually indicates a mesh construction mistake.
  for (mesh::set_id s = 0; s < nsets; ++s) {
    if (assigned[static_cast<std::size_t>(s)]) continue;
    OP2CA_LOG_WARN << "set '" << mesh.set(s).name
                   << "' is disconnected from the seed set; using block "
                      "partition";
    part->assignment[static_cast<std::size_t>(s)] =
        partition_block(mesh.set(s).size, part->nranks);
  }
}

}  // namespace op2ca::partition
