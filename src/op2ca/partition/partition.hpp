// Mesh partitioning: assigns every element of every set to an owning rank
// (OP2's owner-compute model). A seed set is partitioned directly —
// geometrically (RIB), by graph growing (k-way) or trivially (block) —
// and ownership propagates to all other sets through the maps, so
// connected entities land on nearby ranks.
#pragma once

#include <vector>

#include "op2ca/mesh/adjacency.hpp"
#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::partition {

enum class Kind {
  Block,  ///< contiguous index blocks (fast, poor locality).
  RIB,    ///< recursive inertial bisection (Hydra's default partitioner).
  KWay,   ///< greedy graph-growing k-way + refinement (ParMETIS stand-in).
};

const char* kind_name(Kind k);

/// Ownership of every element of every set.
struct Partition {
  int nranks = 0;
  /// assignment[set][element] = owning rank.
  std::vector<std::vector<rank_t>> assignment;

  rank_t owner(mesh::set_id s, gidx_t e) const {
    return assignment[static_cast<std::size_t>(s)][static_cast<std::size_t>(e)];
  }
};

/// Partitions `seed_set` with the chosen method and propagates ownership
/// to every other set through the mesh maps (breadth-first over the
/// set-connectivity graph; disconnected sets fall back to block).
Partition partition_mesh(const mesh::MeshDef& mesh, int nranks, Kind kind,
                         mesh::set_id seed_set);

/// Seed-set partitioners (exposed for tests).
std::vector<rank_t> partition_block(gidx_t n, int nranks);
std::vector<rank_t> partition_rib(const std::vector<double>& coords, int dim,
                                  gidx_t n, int nranks);
std::vector<rank_t> partition_kway(const mesh::Csr& graph, int nranks);

/// Propagates seed-set ownership to all remaining sets (exposed for tests).
void propagate_ownership(const mesh::MeshDef& mesh, mesh::set_id seed,
                         Partition* part);

}  // namespace op2ca::partition
