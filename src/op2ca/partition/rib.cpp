// Recursive inertial bisection: at each level, project elements onto the
// principal axis of their coordinate distribution (dominant eigenvector of
// the covariance matrix, found by power iteration) and split at the
// weighted median so each side receives a rank count proportional share.
// This is the scheme Hydra's default partitioner uses.
#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "op2ca/partition/partition.hpp"

namespace op2ca::partition {
namespace {

struct Split {
  std::vector<gidx_t> left, right;
};

/// Principal axis of the points listed in `idx` (up to 3D).
std::array<double, 3> principal_axis(const std::vector<double>& coords,
                                     int dim,
                                     const std::vector<gidx_t>& idx) {
  std::array<double, 3> mean{0, 0, 0};
  for (gidx_t e : idx)
    for (int d = 0; d < dim; ++d)
      mean[static_cast<std::size_t>(d)] +=
          coords[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim) +
                 static_cast<std::size_t>(d)];
  for (int d = 0; d < dim; ++d)
    mean[static_cast<std::size_t>(d)] /= static_cast<double>(idx.size());

  // Covariance (upper triangle).
  double cov[3][3] = {{0}};
  for (gidx_t e : idx) {
    double v[3] = {0, 0, 0};
    for (int d = 0; d < dim; ++d)
      v[d] = coords[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim) +
                    static_cast<std::size_t>(d)] -
             mean[static_cast<std::size_t>(d)];
    for (int a = 0; a < dim; ++a)
      for (int b = 0; b < dim; ++b) cov[a][b] += v[a] * v[b];
  }

  // Power iteration from a fixed direction; a handful of iterations is
  // plenty for a bisection axis.
  std::array<double, 3> axis{1.0, 0.577, 0.317};
  for (int it = 0; it < 24; ++it) {
    std::array<double, 3> next{0, 0, 0};
    for (int a = 0; a < dim; ++a)
      for (int b = 0; b < dim; ++b)
        next[static_cast<std::size_t>(a)] +=
            cov[a][b] * axis[static_cast<std::size_t>(b)];
    double norm = 0;
    for (int d = 0; d < dim; ++d)
      norm += next[static_cast<std::size_t>(d)] *
              next[static_cast<std::size_t>(d)];
    norm = std::sqrt(norm);
    if (norm < 1e-30) break;  // degenerate (all points coincide)
    for (int d = 0; d < dim; ++d)
      axis[static_cast<std::size_t>(d)] =
          next[static_cast<std::size_t>(d)] / norm;
  }
  return axis;
}

/// Splits `idx` into two groups of sizes proportional to nleft : nright.
Split bisect(const std::vector<double>& coords, int dim,
             std::vector<gidx_t> idx, int nleft, int nright) {
  const std::array<double, 3> axis = principal_axis(coords, dim, idx);
  auto proj = [&](gidx_t e) {
    double p = 0;
    for (int d = 0; d < dim; ++d)
      p += axis[static_cast<std::size_t>(d)] *
           coords[static_cast<std::size_t>(e) * static_cast<std::size_t>(dim) +
                  static_cast<std::size_t>(d)];
    return p;
  };
  const std::size_t k = idx.size() * static_cast<std::size_t>(nleft) /
                        static_cast<std::size_t>(nleft + nright);
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), [&](gidx_t a, gidx_t b) {
                     const double pa = proj(a), pb = proj(b);
                     if (pa != pb) return pa < pb;
                     return a < b;  // deterministic tie-break
                   });
  Split s;
  s.left.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  s.right.assign(idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end());
  return s;
}

void rib_recurse(const std::vector<double>& coords, int dim,
                 std::vector<gidx_t> idx, rank_t first_rank, int nranks,
                 std::vector<rank_t>* out) {
  if (nranks == 1) {
    for (gidx_t e : idx) (*out)[static_cast<std::size_t>(e)] = first_rank;
    return;
  }
  const int nleft = nranks / 2;
  const int nright = nranks - nleft;
  Split s = bisect(coords, dim, std::move(idx), nleft, nright);
  rib_recurse(coords, dim, std::move(s.left), first_rank, nleft, out);
  rib_recurse(coords, dim, std::move(s.right), first_rank + nleft, nright,
              out);
}

}  // namespace

std::vector<rank_t> partition_rib(const std::vector<double>& coords, int dim,
                                  gidx_t n, int nranks) {
  OP2CA_REQUIRE(dim >= 1 && dim <= 3, "partition_rib: dim must be 1..3");
  OP2CA_REQUIRE(static_cast<gidx_t>(coords.size()) == n * dim,
                "partition_rib: coords size mismatch");
  OP2CA_REQUIRE(nranks >= 1, "partition_rib needs nranks >= 1");
  std::vector<rank_t> assign(static_cast<std::size_t>(n), 0);
  std::vector<gidx_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), gidx_t{0});
  rib_recurse(coords, dim, std::move(idx), 0, nranks, &assign);
  return assign;
}

}  // namespace op2ca::partition
