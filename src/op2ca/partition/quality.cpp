#include "op2ca/partition/quality.hpp"

#include <algorithm>
#include <set>

namespace op2ca::partition {

Quality evaluate_partition(const mesh::MeshDef& mesh, const Partition& part,
                           mesh::set_id s) {
  const mesh::Csr graph = mesh::set_graph(mesh, s);
  const gidx_t n = graph.num_rows();
  const auto& assign = part.assignment[static_cast<std::size_t>(s)];
  OP2CA_REQUIRE(static_cast<gidx_t>(assign.size()) == n,
                "evaluate_partition: assignment size mismatch");

  Quality q;
  std::vector<gidx_t> sizes(static_cast<std::size_t>(part.nranks), 0);
  for (rank_t r : assign) ++sizes[static_cast<std::size_t>(r)];

  std::vector<std::set<rank_t>> neighbors(
      static_cast<std::size_t>(part.nranks));
  for (gidx_t v = 0; v < n; ++v) {
    const rank_t rv = assign[static_cast<std::size_t>(v)];
    for (gidx_t u : graph.row(v)) {
      if (u <= v) continue;  // count each undirected edge once
      const rank_t ru = assign[static_cast<std::size_t>(u)];
      if (ru != rv) {
        ++q.edge_cut;
        neighbors[static_cast<std::size_t>(rv)].insert(ru);
        neighbors[static_cast<std::size_t>(ru)].insert(rv);
      }
    }
  }

  q.min_part = *std::min_element(sizes.begin(), sizes.end());
  q.max_part = *std::max_element(sizes.begin(), sizes.end());
  const double mean =
      static_cast<double>(n) / static_cast<double>(part.nranks);
  q.imbalance = mean > 0 ? static_cast<double>(q.max_part) / mean : 0.0;

  double total_neighbors = 0;
  for (const auto& nb : neighbors) {
    total_neighbors += static_cast<double>(nb.size());
    q.max_neighbors = std::max(q.max_neighbors, static_cast<int>(nb.size()));
  }
  q.avg_neighbors = total_neighbors / static_cast<double>(part.nranks);
  return q;
}

}  // namespace op2ca::partition
