#include "op2ca/gpu/hierarchy.hpp"

#include <algorithm>
#include <numeric>

#include "op2ca/util/error.hpp"

namespace op2ca::gpu {

namespace {

/// Unique valid targets of the FIRST view within element range [b, e) —
/// the block's shared-staging footprint. The primary view is the widest
/// indirect access of the loop (the caller orders views that way), which
/// is what the occupancy clamp has to fit.
lidx_t unique_targets_in(std::span<const mesh::ColourMapView> views,
                         lidx_t b, lidx_t e, LIdxVec* scratch) {
  scratch->clear();
  if (views.empty()) return 0;
  const mesh::ColourMapView& v = views.front();
  for (lidx_t i = b; i < e && i < v.num_elements; ++i)
    for (int k = 0; k < v.arity; ++k) {
      const lidx_t t = v.targets[static_cast<std::size_t>(i) * v.arity + k];
      if (t != kInvalidLocal) scratch->push_back(t);
    }
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
  return static_cast<lidx_t>(scratch->size());
}

}  // namespace

HierColouring hierarchical_colouring(
    lidx_t n, std::span<const mesh::ColourMapView> views, lidx_t block_elems,
    std::size_t shared_bytes, int max_dim) {
  OP2CA_REQUIRE(n >= 0, "hierarchical_colouring: negative element count");
  lidx_t be = std::max<lidx_t>(block_elems, 1);

  LIdxVec scratch;
  if (shared_bytes > 0 && max_dim > 0 && n > 0) {
    // Occupancy clamp: halve the block size until every block's unique
    // targets (times the widest dat row) fit the simulated shared
    // memory. Worst block governs — all blocks launch with one size.
    while (be > 1) {
      lidx_t worst = 0;
      for (lidx_t b = 0; b < n; b += be)
        worst = std::max(worst, unique_targets_in(
                                    views, b, std::min<lidx_t>(b + be, n),
                                    &scratch));
      const std::size_t need = static_cast<std::size_t>(worst) *
                               static_cast<std::size_t>(max_dim) *
                               sizeof(double);
      if (need <= shared_bytes) break;
      be /= 2;
    }
  }

  HierColouring h;
  h.blocks = mesh::block_colouring(n, views, std::max<lidx_t>(be, 2));
  // block_colouring degenerates to per-element colouring below 2; the
  // device schedule needs genuine blocks, so be >= 2 above and the
  // recorded block size is authoritative from here on.
  be = h.blocks.block_elems;
  const lidx_t nblocks = n > 0 ? (n + be - 1) / be : 0;

  // Outer phase lists: blocks of each outer colour, ascending.
  h.colour_blocks.assign(static_cast<std::size_t>(h.blocks.num_colours), {});
  for (lidx_t b = 0; b < nblocks; ++b)
    h.colour_blocks[static_cast<std::size_t>(
                        h.blocks.colour[static_cast<std::size_t>(b * be)])]
        .push_back(b);

  // Inner level: first-fit colouring of each block's elements against
  // the block's own conflicts. Global stamp arrays with a per-(block,
  // round) tick avoid clearing between blocks and never overflow a
  // fixed-width colour mask.
  h.elem_colour.assign(static_cast<std::size_t>(n), 0);
  h.block_rounds.assign(static_cast<std::size_t>(nblocks), 0);
  h.block_unique_targets.assign(static_cast<std::size_t>(nblocks), 0);
  std::vector<std::vector<int>> stamp(views.size());
  std::vector<std::vector<int>> stamp_colour(views.size());
  for (std::size_t v = 0; v < views.size(); ++v) {
    stamp[v].assign(static_cast<std::size_t>(views[v].num_targets), -1);
    stamp_colour[v].assign(static_cast<std::size_t>(views[v].num_targets), 0);
  }
  int tick = 0;
  for (lidx_t b = 0; b < nblocks; ++b) {
    const lidx_t lo = b * be;
    const lidx_t hi = std::min<lidx_t>(lo + be, n);
    h.block_unique_targets[static_cast<std::size_t>(b)] =
        unique_targets_in(views, lo, hi, &scratch);
    int rounds = 0;
    for (lidx_t i = lo; i < hi; ++i) {
      // Smallest colour not stamped by an earlier same-block element
      // sharing a target with i, scanning colours upward.
      int c = 0;
      for (bool clash = true; clash; ++c) {
        clash = false;
        for (std::size_t v = 0; v < views.size() && !clash; ++v) {
          const mesh::ColourMapView& mv = views[v];
          if (i >= mv.num_elements) continue;
          for (int k = 0; k < mv.arity; ++k) {
            const lidx_t t =
                mv.targets[static_cast<std::size_t>(i) * mv.arity + k];
            if (t == kInvalidLocal) continue;
            if (stamp[v][static_cast<std::size_t>(t)] == tick &&
                stamp_colour[v][static_cast<std::size_t>(t)] >= c) {
              clash = true;
              break;
            }
          }
        }
        if (clash && c > n) raise("inner colouring failed to converge");
      }
      --c;  // the for-update ran once past the accepted colour
      h.elem_colour[static_cast<std::size_t>(i)] = c;
      rounds = std::max(rounds, c + 1);
      for (std::size_t v = 0; v < views.size(); ++v) {
        const mesh::ColourMapView& mv = views[v];
        if (i >= mv.num_elements) continue;
        for (int k = 0; k < mv.arity; ++k) {
          const lidx_t t =
              mv.targets[static_cast<std::size_t>(i) * mv.arity + k];
          if (t == kInvalidLocal) continue;
          // Record the highest colour seen on this target this block.
          if (stamp[v][static_cast<std::size_t>(t)] != tick ||
              stamp_colour[v][static_cast<std::size_t>(t)] < c) {
            stamp[v][static_cast<std::size_t>(t)] = tick;
            stamp_colour[v][static_cast<std::size_t>(t)] = c;
          }
        }
      }
    }
    h.block_rounds[static_cast<std::size_t>(b)] = rounds;
    h.max_inner_colours = std::max(h.max_inner_colours, rounds);
    ++tick;
  }

  // Execution order: per block, elements stably sorted by (inner
  // colour, id) — round r of a block is a contiguous slice.
  h.block_order.resize(static_cast<std::size_t>(n));
  std::iota(h.block_order.begin(), h.block_order.end(), lidx_t{0});
  h.block_off.assign(static_cast<std::size_t>(nblocks) + 1, 0);
  for (lidx_t b = 0; b < nblocks; ++b) {
    const lidx_t lo = b * be;
    const lidx_t hi = std::min<lidx_t>(lo + be, n);
    std::stable_sort(h.block_order.begin() + lo, h.block_order.begin() + hi,
                     [&](lidx_t a, lidx_t c) {
                       return h.elem_colour[static_cast<std::size_t>(a)] <
                              h.elem_colour[static_cast<std::size_t>(c)];
                     });
    h.block_off[static_cast<std::size_t>(b)] = static_cast<std::size_t>(lo);
  }
  h.block_off[static_cast<std::size_t>(nblocks)] = static_cast<std::size_t>(n);
  return h;
}

bool hierarchical_valid(const HierColouring& h, lidx_t n,
                        std::span<const mesh::ColourMapView> views) {
  if (!mesh::colouring_valid(h.blocks, n, views)) return false;
  const lidx_t be = h.blocks.block_elems;
  if (static_cast<lidx_t>(h.elem_colour.size()) != n) return false;
  // Within a block, two same-inner-colour elements must not share a
  // target through any view.
  for (std::size_t v = 0; v < views.size(); ++v) {
    const mesh::ColourMapView& mv = views[v];
    // owner[t] = (block, colour) of the last element touching t.
    std::vector<std::pair<lidx_t, int>> owner(
        static_cast<std::size_t>(mv.num_targets), {kInvalidLocal, -1});
    for (lidx_t i = 0; i < std::min<lidx_t>(n, mv.num_elements); ++i) {
      const lidx_t b = i / be;
      const int c = h.elem_colour[static_cast<std::size_t>(i)];
      for (int k = 0; k < mv.arity; ++k) {
        const lidx_t t =
            mv.targets[static_cast<std::size_t>(i) * mv.arity + k];
        if (t == kInvalidLocal) continue;
        auto& o = owner[static_cast<std::size_t>(t)];
        if (o.first == b && o.second == c) return false;
        o = {b, c};
      }
    }
  }
  // block_order must be a per-block permutation sorted by inner colour.
  for (lidx_t b = 0; b < h.num_blocks(); ++b) {
    const std::size_t lo = h.block_off[static_cast<std::size_t>(b)];
    const std::size_t hi = h.block_off[static_cast<std::size_t>(b) + 1];
    int last = -1;
    LIdxVec ids(h.block_order.begin() + static_cast<std::ptrdiff_t>(lo),
                h.block_order.begin() + static_cast<std::ptrdiff_t>(hi));
    for (lidx_t e : ids) {
      if (e / be != b) return false;
      const int c = h.elem_colour[static_cast<std::size_t>(e)];
      if (c < last) return false;
      last = c;
    }
    std::sort(ids.begin(), ids.end());
    for (std::size_t j = 1; j < ids.size(); ++j)
      if (ids[j] == ids[j - 1]) return false;
  }
  return true;
}

SharedStaging build_shared_staging(const HierColouring& h, lidx_t b,
                                   const mesh::ColourMapView& view) {
  OP2CA_REQUIRE(b >= 0 && b < h.num_blocks(),
                "build_shared_staging: block out of range");
  const std::size_t lo = h.block_off[static_cast<std::size_t>(b)];
  const std::size_t hi = h.block_off[static_cast<std::size_t>(b) + 1];
  SharedStaging s;
  s.arity = view.arity;
  for (std::size_t j = lo; j < hi; ++j) {
    const lidx_t e = h.block_order[j];
    if (e >= view.num_elements) continue;
    for (int k = 0; k < view.arity; ++k) {
      const lidx_t t = view.targets[static_cast<std::size_t>(e) * view.arity + k];
      if (t != kInvalidLocal) s.targets.push_back(t);
    }
  }
  std::sort(s.targets.begin(), s.targets.end());
  s.targets.erase(std::unique(s.targets.begin(), s.targets.end()),
                  s.targets.end());
  s.slot.assign((hi - lo) * static_cast<std::size_t>(view.arity),
                kInvalidLocal);
  for (std::size_t j = lo; j < hi; ++j) {
    const lidx_t e = h.block_order[j];
    if (e >= view.num_elements) continue;
    for (int k = 0; k < view.arity; ++k) {
      const lidx_t t = view.targets[static_cast<std::size_t>(e) * view.arity + k];
      if (t == kInvalidLocal) continue;
      const auto it = std::lower_bound(s.targets.begin(), s.targets.end(), t);
      s.slot[(j - lo) * static_cast<std::size_t>(view.arity) +
             static_cast<std::size_t>(k)] =
          static_cast<lidx_t>(it - s.targets.begin());
    }
  }
  return s;
}

void staging_gather(const SharedStaging& s, const double* data,
                    const mesh::DatLayout* lay, int dim, double* out) {
  for (std::size_t r = 0; r < s.targets.size(); ++r) {
    const lidx_t t = s.targets[r];
    for (int c = 0; c < dim; ++c) {
      const std::size_t src =
          lay ? lay->offset(t, c)
              : static_cast<std::size_t>(t) * static_cast<std::size_t>(dim) +
                    static_cast<std::size_t>(c);
      out[r * static_cast<std::size_t>(dim) + static_cast<std::size_t>(c)] =
          data[src];
    }
  }
}

void staging_scatter(const SharedStaging& s, const double* in,
                     const mesh::DatLayout* lay, int dim, double* data) {
  for (std::size_t r = 0; r < s.targets.size(); ++r) {
    const lidx_t t = s.targets[r];
    for (int c = 0; c < dim; ++c) {
      const std::size_t dst =
          lay ? lay->offset(t, c)
              : static_cast<std::size_t>(t) * static_cast<std::size_t>(dim) +
                    static_cast<std::size_t>(c);
      data[dst] =
          in[r * static_cast<std::size_t>(dim) + static_cast<std::size_t>(c)];
    }
  }
}

}  // namespace op2ca::gpu
