#include "op2ca/gpu/pipeline.hpp"

#include <algorithm>

namespace op2ca::gpu {

double staged_pipeline_makespan(const PipelineConfig& cfg,
                                const std::vector<Transfer>& transfers) {
  // Three-stage pipeline (D2H -> MPI -> H2D), one transfer per
  // neighbour. Stage i of transfer t starts when both stage i-1 of t and
  // stage i of t-1 have finished; compute runs on its own stream, so the
  // makespan is max(compute, pipeline drain).
  double d2h_free = 0.0, net_free = 0.0, h2d_free = 0.0;
  for (const Transfer& t : transfers) {
    const double d2h = cfg.pcie.transfer_time(t.bytes);
    const double net = cfg.net.message_time(t.bytes);
    const double h2d = cfg.pcie.transfer_time(t.bytes);
    d2h_free = d2h_free + d2h;
    net_free = std::max(net_free, d2h_free) + net;
    h2d_free = std::max(h2d_free, net_free) + h2d;
  }
  return std::max(cfg.compute_s, h2d_free);
}

double gpudirect_makespan(const PipelineConfig& cfg,
                          const std::vector<Transfer>& transfers) {
  // Direct GPU-GPU transfers skip the PCIe staging, but do not overlap
  // with compute: total = compute + serialized transfers.
  double net_total = 0.0;
  for (const Transfer& t : transfers)
    net_total += cfg.net.message_time(t.bytes);
  return cfg.compute_s + net_total;
}

}  // namespace op2ca::gpu
