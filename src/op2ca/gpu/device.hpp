// GPU device simulation (Section 3.3 substrate).
//
// No CUDA exists in this environment, so the GPU path is modeled: each
// rank owning "a V100" holds DeviceBuffer mirrors of its host arrays.
// Halo exchanges on the GPU cluster stage through the host — D2H copy,
// MPI, H2D copy — and every copy is metered against a PCIe cost model
// and accumulated into a per-device virtual clock. The net effect on the
// analytic model is the inflated effective latency Lambda used by
// model::cirrus_gpu(); this module provides the mechanism those numbers
// come from and the substrate for the pipeline-overlap ablation.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "op2ca/util/timer.hpp"

namespace op2ca::gpu {

/// PCIe-generation-3 x16 class transfer parameters.
struct PcieModel {
  double latency_s = 8.0e-6;       ///< per-transfer launch + DMA setup.
  double bandwidth_Bps = 12.0e9;   ///< sustained H2D/D2H.
  double transfer_time(std::int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// A device-resident mirror of a host double array.
class DeviceBuffer {
public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n) : device_(n, 0.0) {}

  std::size_t size() const { return device_.size(); }
  /// Device-side storage (the "GPU memory"); kernels in the simulation
  /// read/write this directly.
  double* device_data() { return device_.data(); }
  const double* device_data() const { return device_.data(); }

  /// Host -> device copy of [offset, offset+count).
  void upload(const double* host, std::size_t offset, std::size_t count);
  /// Device -> host copy of [offset, offset+count).
  void download(double* host, std::size_t offset, std::size_t count) const;

  std::int64_t uploads() const { return uploads_; }
  std::int64_t downloads() const { return downloads_; }
  std::int64_t bytes_moved() const { return bytes_moved_; }

private:
  std::vector<double> device_;
  std::int64_t uploads_ = 0;
  mutable std::int64_t downloads_ = 0;
  mutable std::int64_t bytes_moved_ = 0;
};

/// One simulated GPU: buffers plus a virtual clock charged per copy.
class Device {
public:
  explicit Device(PcieModel pcie = {}) : pcie_(pcie) {}

  DeviceBuffer& allocate(std::size_t n);

  /// Metered staging copies (advance the device clock).
  void upload(DeviceBuffer& buf, const double* host, std::size_t offset,
              std::size_t count);
  void download(const DeviceBuffer& buf, double* host, std::size_t offset,
                std::size_t count);

  const PcieModel& pcie() const { return pcie_; }
  VirtualClock& clock() { return clock_; }

private:
  PcieModel pcie_;
  VirtualClock clock_;
  std::deque<DeviceBuffer> buffers_;  // deque: stable references.
};

}  // namespace op2ca::gpu
