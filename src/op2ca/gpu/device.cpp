#include "op2ca/gpu/device.hpp"

#include <cstring>

#include "op2ca/util/error.hpp"

namespace op2ca::gpu {

void DeviceBuffer::upload(const double* host, std::size_t offset,
                          std::size_t count) {
  OP2CA_REQUIRE(offset + count <= device_.size(),
                "DeviceBuffer::upload out of range");
  std::memcpy(device_.data() + offset, host, count * sizeof(double));
  ++uploads_;
  bytes_moved_ += static_cast<std::int64_t>(count * sizeof(double));
}

void DeviceBuffer::download(double* host, std::size_t offset,
                            std::size_t count) const {
  OP2CA_REQUIRE(offset + count <= device_.size(),
                "DeviceBuffer::download out of range");
  std::memcpy(host, device_.data() + offset, count * sizeof(double));
  ++downloads_;
  bytes_moved_ += static_cast<std::int64_t>(count * sizeof(double));
}

DeviceBuffer& Device::allocate(std::size_t n) {
  buffers_.emplace_back(n);
  return buffers_.back();
}

void Device::upload(DeviceBuffer& buf, const double* host,
                    std::size_t offset, std::size_t count) {
  buf.upload(host, offset, count);
  clock_.advance(pcie_.transfer_time(
      static_cast<std::int64_t>(count * sizeof(double))));
}

void Device::download(const DeviceBuffer& buf, double* host,
                      std::size_t offset, std::size_t count) {
  buf.download(host, offset, count);
  clock_.advance(pcie_.transfer_time(
      static_cast<std::int64_t>(count * sizeof(double))));
}

}  // namespace op2ca::gpu
