// Device-resident execution substrate (the paper's GPU-cluster pillar).
//
// The runtime's CPU-emulated "device" keeps the RankDat arrays themselves
// as device memory — kernels, colour sweeps and the grouped pack path all
// already execute over rd.data, so making rd.data the device side costs
// the hot paths nothing. What this module adds is everything around that
// array that a real GPU port needs and the cost model charges for:
//
//   * a host SHADOW mirror per dat with explicit validity tracking
//     (InSync / HostFresh / DeviceFresh). Host-side producers
//     (gather_local, reset_dat) mark the mirror HostFresh; the next epoch
//     uploads it once and steady-state epochs move zero redundant bytes —
//     the multi-layer dirty-bit discipline of RankDat::fresh_depth,
//     applied to the PCIe link instead of the wire.
//   * metered H2D/D2H transfers: every copy routes through bounce buffers
//     of `staging_bytes` drawn from the rank's BufferPool (the pinned
//     staging arena of a real CUDA build — reusing the pool keeps
//     steady-state transfers allocation-free) and charges a per-epoch
//     byte ledger.
//   * per-epoch makespan accounting under two transfer policies. A
//     FullyStaged epoch re-uploads every accessed mirror, downloads every
//     written one, and serialises H2D | compute | D2H — the naive port.
//     A Pipelined epoch moves only invalid mirrors plus the halo staging
//     bytes and overlaps the three stages over `pipeline_stages`
//     colour-block partitions (classic 3-stage software pipeline). The
//     modelled seconds accumulate on a VirtualClock and surface as
//     LoopMetrics::device_seconds; the staged-vs-pipelined A/B in
//     bench_micro_kernels gates their ratio.
//
// Off by default (DeviceConfig::enabled = false): no DeviceSpace is
// constructed and every executor path is bitwise-identical to the
// pre-device runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "op2ca/gpu/device.hpp"
#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/util/aligned.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/timer.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::gpu {

/// WorldConfig::device — the device-execution knobs.
struct DeviceConfig {
  /// Master switch. Off = no mirrors, no metering, no hierarchical
  /// sweeps; the runtime is bitwise-identical to earlier builds.
  bool enabled = false;
  /// Transfer policy the epoch accounting charges (and physically
  /// mirrors): FullyStaged re-moves every accessed array each epoch,
  /// Pipelined respects validity and overlaps H2D | compute | D2H.
  enum class Mode { FullyStaged, Pipelined };
  Mode mode = Mode::Pipelined;
  /// Colour-block partitions the pipelined policy overlaps across
  /// (H2D of partition k runs under compute of k-1 and D2H of k-2).
  int pipeline_stages = 3;
  /// Hierarchical two-level colouring of indirect-write sweeps (blocks
  /// coloured for inter-block conflicts, elements coloured within each
  /// block; arXiv:1802.03749). Off = the flat colour-sweep paths.
  bool hierarchical = true;
  /// Elements per device block for the hierarchical sweep. Clamped down
  /// until a block's unique indirect targets fit `shared_bytes`.
  lidx_t block_elems = 128;
  /// Simulated per-block shared memory (the staging buffer a block's
  /// unique targets are gathered into; V100-class default).
  std::size_t shared_bytes = std::size_t{48} * 1024;
  /// Bounce-buffer size for host<->device copies (the pinned staging
  /// arena, drawn from the rank's BufferPool).
  std::size_t staging_bytes = std::size_t{1} << 20;
  /// PCIe transfer cost parameters for the epoch makespans.
  PcieModel pcie{};
  /// Modelled device compute throughput relative to the emulating host
  /// thread: the epoch makespan charges measured-kernel-wall / scale as
  /// device compute time. 1 (default) = the host IS the device; a
  /// V100-class accelerator runs these gather-bound sweeps an order of
  /// magnitude faster than one CPU core while PCIe does not speed up —
  /// the imbalance the staged-vs-pipelined A/B exists to expose.
  double compute_scale = 1.0;
};

const char* device_mode_name(DeviceConfig::Mode m);
/// Parses "staged" | "pipelined"; raises on anything else.
DeviceConfig::Mode device_mode_by_name(const std::string& name);

/// Lifetime counters of one rank's device space.
struct DeviceStats {
  std::int64_t h2d_transfers = 0;
  std::int64_t d2h_transfers = 0;
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  /// Bytes FullyStaged re-moved although the mirror was already valid —
  /// exactly what the validity tracking saves the pipelined policy.
  std::int64_t redundant_bytes = 0;
  /// Mirror allocations (one per bind; flat in steady state).
  std::int64_t allocations = 0;
  /// Modelled device-side seconds under the configured policy (the sum
  /// of every epoch makespan charged to the virtual clock).
  double modelled_seconds = 0;
};

/// One rank's device-resident dat mirrors plus the transfer ledger.
class DeviceSpace {
public:
  /// `staging` is the rank's BufferPool; every host<->device copy
  /// bounces through it in `staging_bytes` chunks.
  DeviceSpace(DeviceConfig cfg, BufferPool* staging);

  const DeviceConfig& config() const { return cfg_; }

  /// Registers dat `d`: `device` is the RankDat array kernels execute
  /// over (the device side of the mirror); a same-size host shadow is
  /// allocated. Call host_wrote(d) after the initial gather so the
  /// first epoch uploads the contents.
  void bind(mesh::dat_id d, double* device, std::size_t doubles);
  /// Re-points the device side after the RankDat storage was re-gathered
  /// (World::reset_dat). Resizes the shadow if the extent changed.
  void rebind(mesh::dat_id d, double* device, std::size_t doubles);

  /// A host-side producer rewrote the device array in place (initial
  /// gather_local / refresh_dat_from_global): capture the new contents
  /// into the shadow and mark the device copy stale, so the next epoch's
  /// to_device meters the upload a real port would issue.
  void host_wrote(mesh::dat_id d);
  /// A device kernel epoch wrote the dat: shadow is stale until to_host.
  void device_wrote(mesh::dat_id d);

  /// H2D: make the device copy current. Pipelined: no-op when the
  /// mirror is valid (the zero-redundant-bytes steady state). Fully
  /// staged: re-moves the whole mirror every call, counting the
  /// redundant bytes.
  void to_device(mesh::dat_id d);
  /// D2H: make the host shadow current and return it. The shadow of a
  /// DeviceFresh mirror is genuinely stale — fetch_dat must come through
  /// here, which is what the validity property tests pin down.
  const double* to_host(mesh::dat_id d);

  bool device_valid(mesh::dat_id d) const;
  bool host_valid(mesh::dat_id d) const;
  /// The host shadow array (test access; contents only current after
  /// to_host).
  const double* shadow(mesh::dat_id d) const;

  /// Device-side pack/unpack metering: export rows staged out of device
  /// memory into transport staging (D2H) and received rows scattered
  /// back (H2D). Counted into the current epoch's ledger.
  void stage_out(std::size_t bytes);
  void stage_in(std::size_t bytes);

  /// Epoch bracket: begin resets the per-epoch ledger; end charges the
  /// configured policy's makespan for (this epoch's transfers, the
  /// executor-measured compute seconds) to the virtual clock and, under
  /// FullyStaged, physically downloads every mirror the epoch wrote.
  void begin_epoch();
  /// Returns the epoch's modelled makespan in seconds.
  double end_epoch(double compute_s);

  const DeviceStats& stats() const { return stats_; }
  double clock_seconds() const { return clock_.now(); }

  /// The 3-stage overlapped makespan of one epoch: h2d/compute/d2h split
  /// into `stages` partitions, stage k's upload under k-1's compute and
  /// k-2's download. Exposed for the model tests.
  static double pipelined_makespan(const PcieModel& pcie,
                                   std::int64_t h2d_bytes, double compute_s,
                                   std::int64_t d2h_bytes, int stages);
  /// The serialised makespan: T(h2d) + compute + T(d2h).
  static double staged_makespan(const PcieModel& pcie,
                                std::int64_t h2d_bytes, double compute_s,
                                std::int64_t d2h_bytes);

private:
  enum class State { InSync, HostFresh, DeviceFresh };
  struct Mirror {
    double* device = nullptr;
    std::size_t doubles = 0;
    util::AlignedDVec shadow;
    State state = State::InSync;
    bool bound = false;
  };

  Mirror& mirror(mesh::dat_id d);
  const Mirror& mirror(mesh::dat_id d) const;
  /// memcpy through BufferPool bounce buffers of cfg_.staging_bytes.
  void bounce_copy(double* dst, const double* src, std::size_t doubles);
  void count_h2d(std::size_t bytes);
  void count_d2h(std::size_t bytes);

  DeviceConfig cfg_;
  BufferPool* staging_ = nullptr;
  std::vector<Mirror> mirrors_;
  std::vector<mesh::dat_id> epoch_written_;
  std::int64_t epoch_h2d_bytes_ = 0;
  std::int64_t epoch_d2h_bytes_ = 0;
  std::int64_t epoch_h2d_transfers_ = 0;
  std::int64_t epoch_d2h_transfers_ = 0;
  bool in_epoch_ = false;
  DeviceStats stats_;
  VirtualClock clock_;
};

}  // namespace op2ca::gpu
