// Communication pipeline model for the GPU cluster path (Section 3.3).
//
// The paper's implementation stages halo data through the host and
// overlaps four streams: compute kernels, D2H copies, MPI transfers and
// H2D copies. It reports that this pipeline beats GPUDirect because
// GPUDirect transfers often failed to run concurrently with compute
// kernels. This module computes makespans for both policies over a batch
// of per-neighbour transfers, which the ablation bench compares.
#pragma once

#include <cstdint>
#include <vector>

#include "op2ca/comm/cost_model.hpp"
#include "op2ca/gpu/device.hpp"

namespace op2ca::gpu {

/// One neighbour's halo exchange inside a chain/loop execution.
struct Transfer {
  std::int64_t bytes = 0;
};

struct PipelineConfig {
  PcieModel pcie{};
  sim::CostModel net{};
  /// Compute time available to overlap with (core iterations).
  double compute_s = 0.0;
};

/// Staged pipeline: D2H, MPI and H2D of distinct transfers proceed
/// concurrently with compute and with each other (classic 3-stage
/// software pipeline). Returns total makespan.
double staged_pipeline_makespan(const PipelineConfig& cfg,
                                const std::vector<Transfer>& transfers);

/// GPUDirect-style: no staging copies, but transfers serialize with
/// compute (the observed behaviour the paper reports: RDMA transfers did
/// not run concurrently with kernels).
double gpudirect_makespan(const PipelineConfig& cfg,
                          const std::vector<Transfer>& transfers);

}  // namespace op2ca::gpu
