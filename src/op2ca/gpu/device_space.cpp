#include "op2ca/gpu/device_space.hpp"

#include <algorithm>
#include <cstring>

#include "op2ca/util/error.hpp"

namespace op2ca::gpu {

const char* device_mode_name(DeviceConfig::Mode m) {
  switch (m) {
    case DeviceConfig::Mode::FullyStaged: return "staged";
    case DeviceConfig::Mode::Pipelined: return "pipelined";
  }
  return "?";
}

DeviceConfig::Mode device_mode_by_name(const std::string& name) {
  if (name == "staged") return DeviceConfig::Mode::FullyStaged;
  if (name == "pipelined") return DeviceConfig::Mode::Pipelined;
  raise("unknown device mode: " + name + " (want staged|pipelined)");
}

DeviceSpace::DeviceSpace(DeviceConfig cfg, BufferPool* staging)
    : cfg_(cfg), staging_(staging) {
  OP2CA_REQUIRE(cfg_.enabled, "DeviceSpace built with device disabled");
  OP2CA_REQUIRE(staging_ != nullptr, "DeviceSpace needs a BufferPool");
  OP2CA_REQUIRE(cfg_.pipeline_stages >= 1,
                "device.pipeline_stages must be >= 1");
  OP2CA_REQUIRE(cfg_.staging_bytes >= sizeof(double),
                "device.staging_bytes must hold at least one double");
}

DeviceSpace::Mirror& DeviceSpace::mirror(mesh::dat_id d) {
  OP2CA_REQUIRE(d >= 0 && static_cast<std::size_t>(d) < mirrors_.size() &&
                    mirrors_[d].bound,
                "DeviceSpace: dat not bound");
  return mirrors_[d];
}

const DeviceSpace::Mirror& DeviceSpace::mirror(mesh::dat_id d) const {
  OP2CA_REQUIRE(d >= 0 && static_cast<std::size_t>(d) < mirrors_.size() &&
                    mirrors_[d].bound,
                "DeviceSpace: dat not bound");
  return mirrors_[d];
}

void DeviceSpace::bind(mesh::dat_id d, double* device, std::size_t doubles) {
  OP2CA_REQUIRE(d >= 0, "DeviceSpace::bind: bad dat id");
  if (static_cast<std::size_t>(d) >= mirrors_.size())
    mirrors_.resize(static_cast<std::size_t>(d) + 1);
  Mirror& m = mirrors_[d];
  OP2CA_REQUIRE(!m.bound, "DeviceSpace::bind: dat already bound");
  m.device = device;
  m.doubles = doubles;
  m.shadow.assign(doubles, 0.0);
  m.state = State::InSync;
  m.bound = true;
  ++stats_.allocations;
}

void DeviceSpace::rebind(mesh::dat_id d, double* device,
                         std::size_t doubles) {
  Mirror& m = mirror(d);
  m.device = device;
  if (m.doubles != doubles) {
    m.shadow.assign(doubles, 0.0);
    m.doubles = doubles;
    ++stats_.allocations;
  }
  m.state = State::InSync;
}

void DeviceSpace::host_wrote(mesh::dat_id d) {
  Mirror& m = mirror(d);
  // The producer wrote the (physically shared) device array in place;
  // capture it as the host image and mark the device side stale so the
  // next epoch's to_device meters the upload a discrete-memory port
  // would issue.
  bounce_copy(m.shadow.data(), m.device, m.doubles);
  m.state = State::HostFresh;
}

void DeviceSpace::device_wrote(mesh::dat_id d) {
  Mirror& m = mirror(d);
  m.state = State::DeviceFresh;
  if (in_epoch_) epoch_written_.push_back(d);
}

void DeviceSpace::to_device(mesh::dat_id d) {
  Mirror& m = mirror(d);
  const std::size_t bytes = m.doubles * sizeof(double);
  if (m.state == State::HostFresh) {
    bounce_copy(m.device, m.shadow.data(), m.doubles);
    m.state = State::InSync;
    count_h2d(bytes);
    return;
  }
  // Device copy already current. The fully-staged policy re-moves it
  // anyway — that redundancy is the A/B headroom the pipelined policy's
  // validity tracking reclaims.
  if (cfg_.mode == DeviceConfig::Mode::FullyStaged) {
    count_h2d(bytes);
    stats_.redundant_bytes += static_cast<std::int64_t>(bytes);
  }
}

const double* DeviceSpace::to_host(mesh::dat_id d) {
  Mirror& m = mirror(d);
  if (m.state == State::DeviceFresh) {
    bounce_copy(m.shadow.data(), m.device, m.doubles);
    m.state = State::InSync;
    count_d2h(m.doubles * sizeof(double));
  }
  return m.shadow.data();
}

bool DeviceSpace::device_valid(mesh::dat_id d) const {
  return mirror(d).state != State::HostFresh;
}

bool DeviceSpace::host_valid(mesh::dat_id d) const {
  return mirror(d).state != State::DeviceFresh;
}

const double* DeviceSpace::shadow(mesh::dat_id d) const {
  return mirror(d).shadow.data();
}

void DeviceSpace::stage_out(std::size_t bytes) { count_d2h(bytes); }
void DeviceSpace::stage_in(std::size_t bytes) { count_h2d(bytes); }

void DeviceSpace::begin_epoch() {
  epoch_h2d_bytes_ = 0;
  epoch_d2h_bytes_ = 0;
  epoch_h2d_transfers_ = 0;
  epoch_d2h_transfers_ = 0;
  epoch_written_.clear();
  in_epoch_ = true;
}

double DeviceSpace::end_epoch(double compute_s) {
  in_epoch_ = false;
  // The host thread emulates the device; the model charges the kernel
  // wall time scaled to the modelled device's compute throughput.
  compute_s /= std::max(cfg_.compute_scale, 1e-12);
  if (cfg_.mode == DeviceConfig::Mode::FullyStaged) {
    // The naive port downloads every array the epoch wrote before the
    // host touches anything — physically materialise that (keeping the
    // shadows current) and meter it.
    std::sort(epoch_written_.begin(), epoch_written_.end());
    epoch_written_.erase(
        std::unique(epoch_written_.begin(), epoch_written_.end()),
        epoch_written_.end());
    for (mesh::dat_id d : epoch_written_) to_host(d);
  }
  epoch_written_.clear();
  // Per-transfer launch cost enters through the byte-independent latency
  // term: charge it once per metered transfer on top of the byte time.
  const double lat_h2d = cfg_.pcie.latency_s *
                         static_cast<double>(epoch_h2d_transfers_);
  const double lat_d2h = cfg_.pcie.latency_s *
                         static_cast<double>(epoch_d2h_transfers_);
  double span = 0;
  if (cfg_.mode == DeviceConfig::Mode::FullyStaged) {
    span = lat_h2d + lat_d2h +
           staged_makespan(cfg_.pcie, epoch_h2d_bytes_, compute_s,
                           epoch_d2h_bytes_);
  } else {
    // Overlap hides transfer latency behind compute, but each physical
    // transfer's launch still serialises on its own stage's stream.
    span = std::max(lat_h2d, lat_d2h) +
           pipelined_makespan(cfg_.pcie, epoch_h2d_bytes_, compute_s,
                              epoch_d2h_bytes_, cfg_.pipeline_stages);
  }
  clock_.advance(span);
  stats_.modelled_seconds += span;
  return span;
}

double DeviceSpace::staged_makespan(const PcieModel& pcie,
                                    std::int64_t h2d_bytes, double compute_s,
                                    std::int64_t d2h_bytes) {
  return pcie.transfer_time(h2d_bytes) + compute_s +
         pcie.transfer_time(d2h_bytes);
}

double DeviceSpace::pipelined_makespan(const PcieModel& pcie,
                                       std::int64_t h2d_bytes,
                                       double compute_s,
                                       std::int64_t d2h_bytes, int stages) {
  const int s = std::max(stages, 1);
  // Software-pipeline the epoch over `s` colour-block partitions: the
  // H2D of partition k overlaps the compute of k-1 and the D2H of k-2.
  // Each stage's free time advances chunk by chunk; the makespan is the
  // last download's completion.
  const double h2d_chunk =
      pcie.latency_s + static_cast<double>(h2d_bytes) / s / pcie.bandwidth_Bps;
  const double comp_chunk = compute_s / s;
  const double d2h_chunk =
      pcie.latency_s + static_cast<double>(d2h_bytes) / s / pcie.bandwidth_Bps;
  double h2d_free = 0, comp_free = 0, d2h_free = 0;
  for (int k = 0; k < s; ++k) {
    h2d_free += h2d_chunk;
    comp_free = std::max(comp_free, h2d_free) + comp_chunk;
    d2h_free = std::max(d2h_free, comp_free) + d2h_chunk;
  }
  return d2h_free;
}

void DeviceSpace::bounce_copy(double* dst, const double* src,
                              std::size_t doubles) {
  if (doubles == 0 || dst == src) return;
  // Chunk the copy through the pinned-staging bounce arena: a real
  // discrete device cannot DMA pageable memory, so every transfer moves
  // host <-> pinned <-> device in staging_bytes pieces. The arena comes
  // from the rank's BufferPool, so steady-state transfers recycle the
  // same storage and allocate nothing.
  const std::size_t chunk_doubles =
      std::max<std::size_t>(cfg_.staging_bytes / sizeof(double), 1);
  std::size_t off = 0;
  while (off < doubles) {
    const std::size_t n = std::min(chunk_doubles, doubles - off);
    ByteBuf bounce = staging_->take(n * sizeof(double));
    std::memcpy(bounce.data(), src + off, n * sizeof(double));
    std::memcpy(dst + off, bounce.data(), n * sizeof(double));
    staging_->release(std::move(bounce));
    off += n;
  }
}

void DeviceSpace::count_h2d(std::size_t bytes) {
  ++stats_.h2d_transfers;
  stats_.h2d_bytes += static_cast<std::int64_t>(bytes);
  if (in_epoch_) {
    ++epoch_h2d_transfers_;
    epoch_h2d_bytes_ += static_cast<std::int64_t>(bytes);
  }
}

void DeviceSpace::count_d2h(std::size_t bytes) {
  ++stats_.d2h_transfers;
  stats_.d2h_bytes += static_cast<std::int64_t>(bytes);
  if (in_epoch_) {
    ++epoch_d2h_transfers_;
    epoch_d2h_bytes_ += static_cast<std::int64_t>(bytes);
  }
}

}  // namespace op2ca::gpu
