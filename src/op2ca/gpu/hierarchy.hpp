// Hierarchical two-level colouring and shared-memory staging for the
// device executor (the GPU locality scheme of Sulyok et al.,
// arXiv:1802.03749).
//
// A flat colour sweep serialises the whole from-set into num_colours
// global phases — on a device that means one kernel launch per colour
// and no data reuse between elements of different colours. The
// hierarchical scheme instead colours at two levels:
//
//   outer: contiguous blocks of `block_elems` elements are coloured for
//          INTER-block conflicts (mesh::block_colouring — two blocks
//          conflict when any of their elements share an indirect
//          target). All blocks of one outer colour run concurrently,
//          one block per "thread block".
//   inner: within a block, elements are coloured for INTRA-block
//          conflicts. A block gathers its unique indirect targets into
//          a simulated shared-memory staging buffer once, then executes
//          its elements inner-colour by inner-colour (a __syncthreads
//          between rounds), and scatters the staging back — so a
//          target updated by five elements is read and written through
//          global memory once, not five times.
//
// Block size is clamped (halved) until a block's unique targets fit the
// configured shared memory, mirroring the occupancy constraint of the
// real kernels. Everything here is a pure function of (n, views,
// block_elems), so the schedule is deterministic at any thread width.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "op2ca/mesh/colouring.hpp"
#include "op2ca/mesh/layout.hpp"
#include "op2ca/util/types.hpp"

namespace op2ca::gpu {

/// The two-level schedule for one (set, map-signature) pair.
struct HierColouring {
  /// Outer level: blocks coloured for inter-block conflicts (the
  /// existing blocked colouring; block_elems recorded there).
  mesh::Colouring blocks;
  /// Blocks of each outer colour, ascending block ids:
  /// colour_blocks[c] lists the blocks launched concurrently in phase c.
  std::vector<LIdxVec> colour_blocks;
  /// Inner level: per element, its colour within its block (0-based,
  /// dense per block).
  std::vector<int> elem_colour;
  /// Per block, the number of inner colours (rounds) it executes.
  std::vector<int> block_rounds;
  /// Per block, its elements stably sorted by (inner colour, id) — the
  /// execution order within the block; one contiguous span per block in
  /// block_order via block_off.
  LIdxVec block_order;
  std::vector<std::size_t> block_off;  ///< CSR offsets, num_blocks + 1.
  /// Per block, unique indirect targets of the primary view (the
  /// shared-staging footprint); used by the block-size clamp and the
  /// staging gather/scatter.
  std::vector<lidx_t> block_unique_targets;
  int max_inner_colours = 0;

  lidx_t num_blocks() const {
    return block_off.empty() ? 0 : static_cast<lidx_t>(block_off.size()) - 1;
  }
};

/// Builds the two-level schedule. `block_elems` is the requested block
/// size before the shared-memory clamp: if `shared_bytes` > 0 and
/// `max_dim` > 0 the block size halves until every block's unique
/// targets fit (`unique_targets * max_dim * sizeof(double) <=
/// shared_bytes`), flooring at 1.
HierColouring hierarchical_colouring(lidx_t n,
                                     std::span<const mesh::ColourMapView> views,
                                     lidx_t block_elems,
                                     std::size_t shared_bytes = 0,
                                     int max_dim = 0);

/// Validity predicate (property tests): outer colouring valid at block
/// granularity AND, within every block, no two elements of the same
/// inner colour share a target through any view.
bool hierarchical_valid(const HierColouring& h, lidx_t n,
                        std::span<const mesh::ColourMapView> views);

/// Simulated shared-memory staging of one block: the block's unique
/// targets of one view, with a per-(element, slot) index translating
/// the map's global target ids into staging rows.
struct SharedStaging {
  LIdxVec targets;  ///< unique target rows, ascending.
  /// Per (element-in-block-order, k): row in `targets` holding
  /// map[e * arity + k]; kInvalidLocal where the map entry is invalid.
  LIdxVec slot;
  int arity = 0;
};

/// Builds the staging index of block `b` of `h` for `view`.
SharedStaging build_shared_staging(const HierColouring& h, lidx_t b,
                                   const mesh::ColourMapView& view);

/// Gathers the staged rows out of a (layout-aware) dat array into the
/// dense staging buffer `out` (targets.size() * dim doubles, row-major).
void staging_gather(const SharedStaging& s, const double* data,
                    const mesh::DatLayout* lay, int dim, double* out);
/// Scatters the dense staging buffer back into the dat array.
void staging_scatter(const SharedStaging& s, const double* in,
                     const mesh::DatLayout* lay, int dim, double* data);

}  // namespace op2ca::gpu
