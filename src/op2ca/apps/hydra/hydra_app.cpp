// Hydra driver glue: setup phase, main-loop iteration, and the
// structural ChainSpecs used by planned-mode analysis and the Table 3/4
// benches. The specs mirror run_chain_* exactly (same sets, dats, modes,
// self-combine flags) — tests pin the inspector output against the
// paper's tables through these.
#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/hydra/hydra_kernels.hpp"

namespace op2ca::apps::hydra {

using core::Access;
using core::arg_dat;

void run_setup(core::Runtime& rt, const Handles& h) {
  run_chain_weight(rt, h);
  run_chain_period(rt, h);
}

void run_iteration(core::Runtime& rt, const Handles& h) {
  run_chain_gradl(rt, h);
  run_chain_vflux(rt, h);
  run_chain_iflux(rt, h);
  run_chain_jacob(rt, h);
  run_chain_period(rt, h);
  // RK-style state update: consumes the residuals and re-dirties every
  // dat the chains read, so each iteration re-exercises the exchanges.
  rt.par_loop("rk_update", h.nodes, kernels::rk_update,
              arg_dat(h.qo, Access::RW), arg_dat(h.qp, Access::RW),
              arg_dat(h.ql, Access::RW), arg_dat(h.qrg, Access::RW),
              arg_dat(h.qmu, Access::RW), arg_dat(h.vol, Access::RW),
              arg_dat(h.xp, Access::RW), arg_dat(h.jacp, Access::RW),
              arg_dat(h.jaca, Access::RW), arg_dat(h.jacb, Access::RW),
              arg_dat(h.res, Access::READ),
              arg_dat(h.visres, Access::READ));
}

void run_rk_iteration(core::Runtime& rt, const Handles& h) {
  // Classic 5-stage RK coefficients (Jameson-style).
  static const double kAlpha[5] = {0.25, 1.0 / 6.0, 0.375, 0.5, 1.0};
  for (int stage = 0; stage < 5; ++stage) {
    run_chain_gradl(rt, h);
    run_chain_vflux(rt, h);
    run_chain_iflux(rt, h);
    double alpha = kAlpha[stage];
    rt.par_loop("rk_stage", h.nodes, kernels::rk_stage,
                arg_dat(h.qo, Access::RW), arg_dat(h.qp, Access::RW),
                arg_dat(h.ql, Access::RW), arg_dat(h.res, Access::READ),
                arg_dat(h.visres, Access::READ),
                core::arg_gbl(&alpha, 1, Access::READ));
  }
  run_chain_jacob(rt, h);
  run_chain_period(rt, h);
  // Refresh the remaining per-iteration state (viscosity, volumes,
  // jacobians, metric terms) once per step.
  rt.par_loop("rk_update", h.nodes, kernels::rk_update,
              arg_dat(h.qo, Access::RW), arg_dat(h.qp, Access::RW),
              arg_dat(h.ql, Access::RW), arg_dat(h.qrg, Access::RW),
              arg_dat(h.qmu, Access::RW), arg_dat(h.vol, Access::RW),
              arg_dat(h.xp, Access::RW), arg_dat(h.jacp, Access::RW),
              arg_dat(h.jaca, Access::RW), arg_dat(h.jacb, Access::RW),
              arg_dat(h.res, Access::READ),
              arg_dat(h.visres, Access::READ));
}

namespace {

core::ArgSpec ind(mesh::dat_id d, core::Access mode, mesh::map_id m,
                  int col, bool self_combine = false) {
  core::ArgSpec a;
  a.dat = d;
  a.mode = mode;
  a.indirect = true;
  a.map = m;
  a.map_idx = col;
  a.self_combine = self_combine;
  return a;
}

core::ArgSpec dir(mesh::dat_id d, core::Access mode) {
  core::ArgSpec a;
  a.dat = d;
  a.mode = mode;
  a.indirect = false;
  return a;
}

core::LoopSpec loop(const std::string& name, mesh::set_id set,
                    std::vector<core::ArgSpec> args) {
  core::LoopSpec l;
  l.name = name;
  l.set = set;
  l.args = std::move(args);
  return l;
}

}  // namespace

std::map<std::string, core::ChainSpec> chain_specs(const Problem& p) {
  const mesh::Annulus& an = p.an;
  const mesh::map_id e2n = an.e2n, pe2n = an.pe2n, b2n = an.b2n,
                     cb2n = an.cb2n;
  constexpr bool kSelf = true;

  std::map<std::string, core::ChainSpec> specs;

  {
    core::ChainSpec c;
    c.name = "weight";
    c.loops = {
        loop("sumbwts", an.bnd,
             {ind(p.qo, Access::INC, b2n, 0), dir(p.bwts, Access::READ)}),
        loop("periodsym", an.pedges,
             {ind(p.qo, Access::RW, pe2n, 0, kSelf),
              ind(p.qo, Access::RW, pe2n, 1, kSelf)}),
        loop("centreline", an.cbnd,
             {ind(p.qo, Access::WRITE, cb2n, 0), dir(p.cbv, Access::READ)}),
        loop("edgelength", an.edges,
             {ind(p.qo, Access::RW, e2n, 0, kSelf),
              ind(p.qo, Access::RW, e2n, 1, kSelf),
              dir(p.ewk, Access::READ)}),
        loop("periodicity", an.pedges,
             {ind(p.qo, Access::RW, pe2n, 0, kSelf),
              ind(p.qo, Access::RW, pe2n, 1, kSelf)}),
    };
    specs["weight"] = std::move(c);
  }

  {
    core::ChainSpec c;
    c.name = "period";
    const core::LoopSpec negflag =
        loop("negflag", an.pedges,
             {ind(p.vol, Access::RW, pe2n, 0, kSelf),
              ind(p.vol, Access::RW, pe2n, 1, kSelf),
              dir(p.pwk, Access::WRITE)});
    const core::LoopSpec limxp =
        loop("limxp", an.edges,
             {ind(p.qo, Access::RW, e2n, 0, kSelf),
              ind(p.qo, Access::RW, e2n, 1, kSelf),
              ind(p.vol, Access::READ, e2n, 0),
              ind(p.vol, Access::READ, e2n, 1)});
    const core::LoopSpec periodicity =
        loop("periodicity", an.pedges,
             {ind(p.qo, Access::RW, pe2n, 0, kSelf),
              ind(p.qo, Access::RW, pe2n, 1, kSelf)});
    c.loops = {negflag, limxp, periodicity, limxp, periodicity, negflag};
    specs["period"] = std::move(c);
  }

  {
    core::ChainSpec c;
    c.name = "gradl";
    c.loops = {
        loop("edgecon", an.edges,
             {ind(p.qp, Access::INC, e2n, 0), ind(p.qp, Access::INC, e2n, 1),
              ind(p.ql, Access::INC, e2n, 0), ind(p.ql, Access::INC, e2n, 1),
              dir(p.ewk, Access::READ)}),
        loop("period", an.pedges,
             {ind(p.qp, Access::RW, pe2n, 0, kSelf),
              ind(p.qp, Access::RW, pe2n, 1, kSelf),
              ind(p.ql, Access::RW, pe2n, 0, kSelf),
              ind(p.ql, Access::RW, pe2n, 1, kSelf)}),
    };
    specs["gradl"] = std::move(c);
  }

  {
    core::ChainSpec c;
    c.name = "vflux";
    c.loops = {
        loop("initres", an.nodes, {dir(p.res, Access::WRITE)}),
        loop("vflux_edge", an.edges,
             {ind(p.qp, Access::READ, e2n, 0), ind(p.qp, Access::READ, e2n, 1),
              ind(p.xp, Access::READ, e2n, 0), ind(p.xp, Access::READ, e2n, 1),
              ind(p.ql, Access::READ, e2n, 0), ind(p.ql, Access::READ, e2n, 1),
              ind(p.qmu, Access::READ, e2n, 0), ind(p.qmu, Access::READ, e2n, 1),
              ind(p.qrg, Access::READ, e2n, 0), ind(p.qrg, Access::READ, e2n, 1),
              ind(p.res, Access::INC, e2n, 0), ind(p.res, Access::INC, e2n, 1)}),
    };
    specs["vflux"] = std::move(c);
  }

  {
    core::ChainSpec c;
    c.name = "iflux";
    c.loops = {
        loop("initviscres", an.nodes, {dir(p.visres, Access::WRITE)}),
        loop("iflux_edge", an.edges,
             {ind(p.qrg, Access::READ, e2n, 0), ind(p.qrg, Access::READ, e2n, 1),
              ind(p.visres, Access::INC, e2n, 0),
              ind(p.visres, Access::INC, e2n, 1)}),
    };
    specs["iflux"] = std::move(c);
  }

  {
    core::ChainSpec c;
    c.name = "jacob";
    c.loops = {
        loop("jac_period", an.pedges,
             {ind(p.jacp, Access::READ, pe2n, 0),
              ind(p.jacp, Access::READ, pe2n, 1),
              ind(p.jaca, Access::READ, pe2n, 0),
              ind(p.jaca, Access::READ, pe2n, 1),
              dir(p.pwk, Access::WRITE)}),
        loop("jac_centreline", an.cbnd, {dir(p.cbv, Access::RW)}),
        loop("jac_corrections", an.bnd,
             {ind(p.jacb, Access::READ, b2n, 0), dir(p.bwk, Access::WRITE)}),
    };
    specs["jacob"] = std::move(c);
  }

  return specs;
}

std::vector<std::string> chain_names() {
  return {"weight", "period", "gradl", "vflux", "iflux", "jacob"};
}

}  // namespace op2ca::apps::hydra
