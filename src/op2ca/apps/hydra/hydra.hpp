// OP2-Hydra analogue (paper Section 4.2): a RANS-flavoured solver
// skeleton on a rotor-passage (annular wedge) mesh whose six selected
// loop-chains — weight, period, gradl (multi-layer, Table 3) and vflux,
// iflux, jacob (single-layer, Table 4) — reproduce the iteration sets,
// access descriptors and halo extensions of the paper.
//
// Naming notes vs the paper's tables: the paper labels the jacobian dats
// of both jac_period and jac_corrections "jac"; in real Hydra these are
// distinct arrays, and keeping them distinct (jacp/jaca/jacb here) is
// what yields the single-layer extensions of Table 4.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/annulus.hpp"

namespace op2ca::apps::hydra {

struct Problem {
  mesh::Annulus an;  ///< the mesh lives in an.mesh.

  // Node dats.
  mesh::dat_id qo = -1;    ///< old flow state, dim 6.
  mesh::dat_id qp = -1;    ///< gradient/primary state, dim 6.
  mesh::dat_id ql = -1;    ///< limited state, dim 6.
  mesh::dat_id xp = -1;    ///< node coordinates copy, dim 3.
  mesh::dat_id qmu = -1;   ///< viscosity, dim 1.
  mesh::dat_id qrg = -1;   ///< gas constant field, dim 1.
  mesh::dat_id vol = -1;   ///< control volume, dim 1.
  mesh::dat_id res = -1;   ///< inviscid residual, dim 6.
  mesh::dat_id visres = -1;  ///< viscous residual, dim 6.
  mesh::dat_id jacp = -1;  ///< periodic jacobian, dim 9.
  mesh::dat_id jaca = -1;  ///< auxiliary jacobian, dim 9.
  mesh::dat_id jacb = -1;  ///< boundary jacobian, dim 9.
  // Set-local work dats.
  mesh::dat_id bwts = -1;  ///< bnd, dim 1.
  mesh::dat_id pwk = -1;   ///< pedges, dim 2.
  mesh::dat_id cbv = -1;   ///< cbnd, dim 6.
  mesh::dat_id bwk = -1;   ///< bnd, dim 1.
  mesh::dat_id ewk = -1;   ///< edges, dim 1.
};

Problem build_problem(gidx_t target_nodes, std::uint64_t seed = 11);

struct Handles {
  core::Set nodes, edges, pedges, bnd, cbnd;
  core::Map e2n, pe2n, b2n, cb2n;
  core::Dat qo, qp, ql, xp, qmu, qrg, vol, res, visres;
  core::Dat jacp, jaca, jacb;
  core::Dat bwts, pwk, cbv, bwk, ewk;
};
Handles resolve_handles(core::Runtime& rt, const Problem& prob);

/// The six chains. Each function issues the chain's loops between
/// chain_begin/chain_end under the paper's chain name; whether they run
/// with CA is decided by the World's ChainConfig.
void run_chain_weight(core::Runtime& rt, const Handles& h);
void run_chain_period(core::Runtime& rt, const Handles& h);
void run_chain_gradl(core::Runtime& rt, const Handles& h);
void run_chain_vflux(core::Runtime& rt, const Handles& h);
void run_chain_iflux(core::Runtime& rt, const Handles& h);
void run_chain_jacob(core::Runtime& rt, const Handles& h);

/// Setup phase (weight + period once), mirroring the paper's placement
/// of weight/period outside the main time-marching loop.
void run_setup(core::Runtime& rt, const Handles& h);

/// One main-loop iteration: gradl, vflux, iflux, jacob, period, then the
/// RK-style state update that re-dirties the read dats.
void run_iteration(core::Runtime& rt, const Handles& h);

/// One full 5-step Runge-Kutta iteration, Hydra's actual time-marching
/// scheme: each stage recomputes gradients and fluxes (gradl, vflux,
/// iflux) and applies a stage-weighted update; jacob and period run once
/// per iteration. Exercises every chain 5x per time step.
void run_rk_iteration(core::Runtime& rt, const Handles& h);

/// Structural specs of the six chains (planned-mode analysis and the
/// Table 3/4 benches). Keys: weight, period, gradl, vflux, iflux, jacob.
std::map<std::string, core::ChainSpec> chain_specs(const Problem& prob);

/// Chain names in table order.
std::vector<std::string> chain_names();

}  // namespace op2ca::apps::hydra
