#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca::apps::hydra {
namespace {

std::vector<double> random_field(std::size_t n, Rng* rng, double lo,
                                 double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->next_range(lo, hi);
  return v;
}

}  // namespace

Problem build_problem(gidx_t target_nodes, std::uint64_t seed) {
  gidx_t nr = 0, nt = 0, nz = 0;
  mesh::pick_annulus_dims(target_nodes, &nr, &nt, &nz);

  Problem p;
  p.an = mesh::make_annulus(nr, nt, nz);
  mesh::MeshDef& m = p.an.mesh;
  Rng rng(seed);

  const auto nn = static_cast<std::size_t>(m.set(p.an.nodes).size);
  const auto ne = static_cast<std::size_t>(m.set(p.an.edges).size);
  const auto np = static_cast<std::size_t>(m.set(p.an.pedges).size);
  const auto nb = static_cast<std::size_t>(m.set(p.an.bnd).size);
  const auto nc = static_cast<std::size_t>(m.set(p.an.cbnd).size);

  p.qo = m.add_dat("qo", p.an.nodes, 6, random_field(nn * 6, &rng, 0.5, 1.5));
  p.qp = m.add_dat("qp", p.an.nodes, 6, random_field(nn * 6, &rng, 0.5, 1.5));
  p.ql = m.add_dat("ql", p.an.nodes, 6, random_field(nn * 6, &rng, 0.0, 1.0));
  // The five vflux dats are equal-sized (dim 6) so the Table-5 vflux row
  // reproduces exactly (baseline bytes == grouped bytes, 0% reduction):
  // xp carries coordinates in components 0..2, metric terms in 3..5;
  // qmu/qrg are 6-component coefficient fields.
  {
    const std::vector<double> xyz = mesh::derive_coords(m, p.an.nodes);
    std::vector<double> xp6(nn * 6, 0.0);
    for (std::size_t i = 0; i < nn; ++i)
      for (int dcomp = 0; dcomp < 3; ++dcomp)
        xp6[i * 6 + static_cast<std::size_t>(dcomp)] =
            xyz[i * 3 + static_cast<std::size_t>(dcomp)];
    p.xp = m.add_dat("xp", p.an.nodes, 6, std::move(xp6));
  }
  p.qmu = m.add_dat("qmu", p.an.nodes, 6,
                    random_field(nn * 6, &rng, 1e-3, 2e-3));
  p.qrg = m.add_dat("qrg", p.an.nodes, 6,
                    random_field(nn * 6, &rng, 0.9, 1.1));
  p.vol = m.add_dat("vol", p.an.nodes, 1,
                    random_field(nn, &rng, 0.5, 1.5));
  p.res = m.add_dat("res", p.an.nodes, 6);
  p.visres = m.add_dat("visres", p.an.nodes, 6);
  p.jacp = m.add_dat("jacp", p.an.nodes, 9,
                     random_field(nn * 9, &rng, -1.0, 1.0));
  p.jaca = m.add_dat("jaca", p.an.nodes, 9,
                     random_field(nn * 9, &rng, -1.0, 1.0));
  p.jacb = m.add_dat("jacb", p.an.nodes, 9,
                     random_field(nn * 9, &rng, -1.0, 1.0));

  p.bwts = m.add_dat("bwts", p.an.bnd, 1, random_field(nb, &rng, 0.0, 1.0));
  p.pwk = m.add_dat("pwk", p.an.pedges, 2);
  p.cbv = m.add_dat("cbv", p.an.cbnd, 6,
                    random_field(nc * 6, &rng, 0.5, 1.5));
  p.bwk = m.add_dat("bwk", p.an.bnd, 1);
  p.ewk = m.add_dat("ewk", p.an.edges, 1,
                    random_field(ne, &rng, -1.0, 1.0));
  return p;
}

Handles resolve_handles(core::Runtime& rt, const Problem& prob) {
  (void)prob;
  Handles h;
  h.nodes = rt.set("nodes");
  h.edges = rt.set("edges");
  h.pedges = rt.set("pedges");
  h.bnd = rt.set("bnd");
  h.cbnd = rt.set("cbnd");
  h.e2n = rt.map("e2n");
  h.pe2n = rt.map("pe2n");
  h.b2n = rt.map("b2n");
  h.cb2n = rt.map("cb2n");
  h.qo = rt.dat("qo");
  h.qp = rt.dat("qp");
  h.ql = rt.dat("ql");
  h.xp = rt.dat("xp");
  h.qmu = rt.dat("qmu");
  h.qrg = rt.dat("qrg");
  h.vol = rt.dat("vol");
  h.res = rt.dat("res");
  h.visres = rt.dat("visres");
  h.jacp = rt.dat("jacp");
  h.jaca = rt.dat("jaca");
  h.jacb = rt.dat("jacb");
  h.bwts = rt.dat("bwts");
  h.pwk = rt.dat("pwk");
  h.cbv = rt.dat("cbv");
  h.bwk = rt.dat("bwk");
  h.ewk = rt.dat("ewk");
  return h;
}

}  // namespace op2ca::apps::hydra
