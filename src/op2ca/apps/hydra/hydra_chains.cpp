// The six Hydra loop-chains (Tables 3-4), issued through the runtime.
#include "op2ca/apps/hydra/hydra.hpp"
#include "op2ca/apps/hydra/hydra_kernels.hpp"

namespace op2ca::apps::hydra {

using core::Access;
using core::arg_dat;

void run_chain_weight(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("weight");
  rt.par_loop("sumbwts", h.bnd, kernels::sumbwts,
              arg_dat(h.qo, 0, h.b2n, Access::INC),
              arg_dat(h.bwts, Access::READ));
  rt.par_loop("periodsym", h.pedges, kernels::periodsym,
              arg_dat(h.qo, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.qo, 1, h.pe2n, Access::RW, /*self_combine=*/true));
  rt.par_loop("centreline", h.cbnd, kernels::centreline,
              arg_dat(h.qo, 0, h.cb2n, Access::WRITE),
              arg_dat(h.cbv, Access::READ));
  rt.par_loop("edgelength", h.edges, kernels::edgelength,
              arg_dat(h.qo, 0, h.e2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.qo, 1, h.e2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.ewk, Access::READ));
  rt.par_loop("periodicity", h.pedges, kernels::periodicity,
              arg_dat(h.qo, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.qo, 1, h.pe2n, Access::RW, /*self_combine=*/true));
  rt.chain_end();
}

void run_chain_period(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("period");
  rt.par_loop("negflag", h.pedges, kernels::negflag,
              arg_dat(h.vol, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.vol, 1, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.pwk, Access::WRITE));
  for (int rep = 0; rep < 2; ++rep) {
    rt.par_loop("limxp", h.edges, kernels::limxp,
                arg_dat(h.qo, 0, h.e2n, Access::RW, /*self_combine=*/true),
                arg_dat(h.qo, 1, h.e2n, Access::RW, /*self_combine=*/true),
                arg_dat(h.vol, 0, h.e2n, Access::READ),
                arg_dat(h.vol, 1, h.e2n, Access::READ));
    rt.par_loop("periodicity", h.pedges, kernels::periodicity,
                arg_dat(h.qo, 0, h.pe2n, Access::RW, /*self_combine=*/true),
                arg_dat(h.qo, 1, h.pe2n, Access::RW, /*self_combine=*/true));
  }
  rt.par_loop("negflag", h.pedges, kernels::negflag,
              arg_dat(h.vol, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.vol, 1, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.pwk, Access::WRITE));
  rt.chain_end();
}

void run_chain_gradl(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("gradl");
  rt.par_loop("edgecon", h.edges, kernels::edgecon,
              arg_dat(h.qp, 0, h.e2n, Access::INC),
              arg_dat(h.qp, 1, h.e2n, Access::INC),
              arg_dat(h.ql, 0, h.e2n, Access::INC),
              arg_dat(h.ql, 1, h.e2n, Access::INC),
              arg_dat(h.ewk, Access::READ));
  rt.par_loop("period", h.pedges, kernels::period_gradl,
              arg_dat(h.qp, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.qp, 1, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.ql, 0, h.pe2n, Access::RW, /*self_combine=*/true),
              arg_dat(h.ql, 1, h.pe2n, Access::RW, /*self_combine=*/true));
  rt.chain_end();
}

void run_chain_vflux(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("vflux");
  rt.par_loop("initres", h.nodes, kernels::initres,
              arg_dat(h.res, Access::WRITE));
  rt.par_loop("vflux_edge", h.edges, kernels::vflux_edge,
              arg_dat(h.qp, 0, h.e2n, Access::READ),
              arg_dat(h.qp, 1, h.e2n, Access::READ),
              arg_dat(h.xp, 0, h.e2n, Access::READ),
              arg_dat(h.xp, 1, h.e2n, Access::READ),
              arg_dat(h.ql, 0, h.e2n, Access::READ),
              arg_dat(h.ql, 1, h.e2n, Access::READ),
              arg_dat(h.qmu, 0, h.e2n, Access::READ),
              arg_dat(h.qmu, 1, h.e2n, Access::READ),
              arg_dat(h.qrg, 0, h.e2n, Access::READ),
              arg_dat(h.qrg, 1, h.e2n, Access::READ),
              arg_dat(h.res, 0, h.e2n, Access::INC),
              arg_dat(h.res, 1, h.e2n, Access::INC));
  rt.chain_end();
}

void run_chain_iflux(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("iflux");
  rt.par_loop("initviscres", h.nodes, kernels::initviscres,
              arg_dat(h.visres, Access::WRITE));
  rt.par_loop("iflux_edge", h.edges, kernels::iflux_edge,
              arg_dat(h.qrg, 0, h.e2n, Access::READ),
              arg_dat(h.qrg, 1, h.e2n, Access::READ),
              arg_dat(h.visres, 0, h.e2n, Access::INC),
              arg_dat(h.visres, 1, h.e2n, Access::INC));
  rt.chain_end();
}

void run_chain_jacob(core::Runtime& rt, const Handles& h) {
  rt.chain_begin("jacob");
  rt.par_loop("jac_period", h.pedges, kernels::jac_period,
              arg_dat(h.jacp, 0, h.pe2n, Access::READ),
              arg_dat(h.jacp, 1, h.pe2n, Access::READ),
              arg_dat(h.jaca, 0, h.pe2n, Access::READ),
              arg_dat(h.jaca, 1, h.pe2n, Access::READ),
              arg_dat(h.pwk, Access::WRITE));
  rt.par_loop("jac_centreline", h.cbnd, kernels::jac_centreline,
              arg_dat(h.cbv, Access::RW));
  rt.par_loop("jac_corrections", h.bnd, kernels::jac_corrections,
              arg_dat(h.jacb, 0, h.b2n, Access::READ),
              arg_dat(h.bwk, Access::WRITE));
  rt.chain_end();
}

}  // namespace op2ca::apps::hydra
