// Hydra-analogue kernel bodies. Access shapes match Tables 3-4 exactly;
// arithmetic is plausible RANS-solver work with per-loop cost weights
// mirroring the paper's relative chain costs (vflux 18%, gradl 8%,
// iflux 5%, jacob 2% of runtime). Kernels executed redundantly are
// order-independent: increments commute, RW-combines use max/avg forms
// whose targets are touched once per loop (pedges/cbnd) or combined
// monotonically (edges).
//
// Every kernel is a function object with a templated call operator: the
// runtime passes core::detail::ElemRef views whose component stride
// depends on the dat's storage layout (WorldConfig::layout), while
// plain `double*` still binds for direct calls in tests and benches.
// Bodies index components with arg[k] only, so the same arithmetic runs
// unchanged over AoS rows, SoA planes and AoSoA blocks.
#pragma once

#include <algorithm>
#include <cmath>

namespace op2ca::apps::hydra::kernels {

inline constexpr int kQ = 6;
inline constexpr int kJ = 9;

// ---- weight chain ------------------------------------------------------

/// sumbwts (bnd): qo INC indirect, bwts READ direct.
struct Sumbwts {
  template <typename Q, typename B>
  void operator()(Q&& qo, B&& bwts) const {
    for (int k = 0; k < kQ; ++k) qo[k] += 0.01 * bwts[0] * (k + 1);
  }
};
inline constexpr Sumbwts sumbwts{};

/// periodsym (pedges): qo RW indirect on both periodic partners. Damped
/// relaxation toward the periodic reference state; self-combine form
/// (each node's new value depends only on its own old value), keeping
/// the loop order-independent and its upstream halo needs local.
struct Periodsym {
  template <typename A, typename B>
  void operator()(A&& qo_a, B&& qo_b) const {
    for (int k = 0; k < kQ; ++k) {
      qo_a[k] = 0.995 * qo_a[k] + 5e-3 * (k + 1);
      qo_b[k] = 0.995 * qo_b[k] + 5e-3 * (k + 1);
    }
  }
};
inline constexpr Periodsym periodsym{};

/// centreline (cbnd): qo WRITE indirect, cbv READ direct.
struct Centreline {
  template <typename Q, typename C>
  void operator()(Q&& qo, C&& cbv) const {
    for (int k = 0; k < kQ; ++k) qo[k] = cbv[k];
  }
};
inline constexpr Centreline centreline{};

/// edgelength (edges): qo RW indirect both ends, ewk READ direct. The
/// combine is a max against an edge-local value only — never against the
/// partner's qo — so the result is independent of edge execution order
/// (sparse tiling's order-independence requirement).
struct Edgelength {
  template <typename A, typename B, typename E>
  void operator()(A&& qo_a, B&& qo_b, E&& ewk) const {
    for (int k = 0; k < kQ; ++k) {
      const double w = std::abs(ewk[0]) * 1e-3 * (k + 1);
      qo_a[k] = std::max<double>(qo_a[k], w);
      qo_b[k] = std::max<double>(qo_b[k], w);
    }
  }
};
inline constexpr Edgelength edgelength{};

/// periodicity (pedges): qo RW indirect; clamps each periodic node's
/// state to a floor (self-combine form).
struct Periodicity {
  template <typename A, typename B>
  void operator()(A&& qo_a, B&& qo_b) const {
    for (int k = 0; k < kQ; ++k) {
      const double floor_k = 1e-3 * (k + 1);
      qo_a[k] = std::max<double>(qo_a[k], floor_k);
      qo_b[k] = std::max<double>(qo_b[k], floor_k);
    }
  }
};
inline constexpr Periodicity periodicity{};

// ---- period chain ------------------------------------------------------

/// negflag (pedges): vol RW indirect both partners (self-combine: flip
/// negative volumes), pwk WRITE direct (pedge-local flag reset; does not
/// consume vol, keeping the self-combine contract).
struct Negflag {
  template <typename A, typename B, typename P>
  void operator()(A&& vol_a, B&& vol_b, P&& pwk) const {
    vol_a[0] = std::abs(vol_a[0]) + 1e-9;
    vol_b[0] = std::abs(vol_b[0]) + 1e-9;
    pwk[0] = 1.0;
    pwk[1] = -1.0;
  }
};
inline constexpr Negflag negflag{};

/// limxp (edges): qo RW indirect both ends, vol READ indirect both ends.
/// Monotone max against an edge-local limiter value (order-independent:
/// vol is not written by this loop and qo is only max-combined).
struct Limxp {
  template <typename A, typename B, typename VA, typename VB>
  void operator()(A&& qo_a, B&& qo_b, VA&& vol_a, VB&& vol_b) const {
    const double w =
        1.0 / (std::abs(vol_a[0]) + std::abs(vol_b[0]) + 1e-9);
    for (int k = 0; k < kQ; ++k) {
      const double lim = w * 1e-4 * (k + 1);
      qo_a[k] = std::max<double>(qo_a[k], lim);
      qo_b[k] = std::max<double>(qo_b[k], lim);
    }
  }
};
inline constexpr Limxp limxp{};

// ---- gradl chain -------------------------------------------------------

/// edgecon (edges): qp INC indirect both ends, ql INC indirect both
/// ends, ewk READ direct. Gradient contribution accumulation.
struct Edgecon {
  template <typename PA, typename PB, typename LA, typename LB, typename E>
  void operator()(PA&& qp_a, PB&& qp_b, LA&& ql_a, LB&& ql_b,
                  E&& ewk) const {
    for (int k = 0; k < kQ; ++k) {
      const double g = ewk[0] * 1e-3 * (k + 1);
      qp_a[k] += g;
      qp_b[k] -= g;
      ql_a[k] += 0.5 * g;
      ql_b[k] -= 0.5 * g;
    }
  }
};
inline constexpr Edgecon edgecon{};

/// period (pedges): qp RW indirect, ql RW indirect (self-combine damped
/// periodic correction).
struct PeriodGradl {
  template <typename PA, typename PB, typename LA, typename LB>
  void operator()(PA&& qp_a, PB&& qp_b, LA&& ql_a, LB&& ql_b) const {
    for (int k = 0; k < kQ; ++k) {
      qp_a[k] = 0.99 * qp_a[k] + 1e-3;
      qp_b[k] = 0.99 * qp_b[k] + 1e-3;
      ql_a[k] = 0.99 * ql_a[k] - 1e-3;
      ql_b[k] = 0.99 * ql_b[k] - 1e-3;
    }
  }
};
inline constexpr PeriodGradl period_gradl{};

// ---- vflux chain (the most expensive in Hydra) --------------------------

/// initres (nodes): res WRITE direct.
struct Initres {
  template <typename R>
  void operator()(R&& res) const {
    for (int k = 0; k < kQ; ++k) res[k] = 0.0;
  }
};
inline constexpr Initres initres{};

/// vflux_edge (edges): qp/xp/ql/qmu/qrg READ indirect both ends, res INC
/// indirect both ends. Viscous-flux-like arithmetic (heavy).
struct VfluxEdge {
  template <typename PA, typename PB, typename XA, typename XB,
            typename LA, typename LB, typename MA, typename MB,
            typename GA, typename GB, typename RA, typename RB>
  void operator()(PA&& qp_a, PB&& qp_b, XA&& xp_a, XB&& xp_b, LA&& ql_a,
                  LB&& ql_b, MA&& qmu_a, MB&& qmu_b, GA&& qrg_a,
                  GB&& qrg_b, RA&& res_a, RB&& res_b) const {
    double dx[3];
    for (int d = 0; d < 3; ++d) dx[d] = xp_b[d] - xp_a[d];
    const double len2 =
        dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 1e-12;
    const double inv_len = 1.0 / std::sqrt(len2);
    const double mu = 0.5 * (qmu_a[0] + qmu_b[0]);
    const double rg = 0.5 * (qrg_a[0] + qrg_b[0]);
    for (int k = 0; k < kQ; ++k) {
      const double grad = (qp_b[k] - qp_a[k]) * inv_len;
      const double lim = 0.5 * (ql_a[k] + ql_b[k]);
      const double stress = mu * grad * (1.0 + 0.1 * lim);
      const double heat = rg * grad * grad / (std::abs(grad) + 1.0);
      const double f = stress + 0.01 * heat;
      res_a[k] += f;
      res_b[k] -= f;
    }
  }
};
inline constexpr VfluxEdge vflux_edge{};

// ---- iflux chain ---------------------------------------------------------

/// initviscres (nodes): visres WRITE direct.
struct Initviscres {
  template <typename V>
  void operator()(V&& visres) const {
    for (int k = 0; k < kQ; ++k) visres[k] = 0.0;
  }
};
inline constexpr Initviscres initviscres{};

/// iflux_edge (edges): qrg READ indirect both ends, visres INC indirect.
struct IfluxEdge {
  template <typename GA, typename GB, typename VA, typename VB>
  void operator()(GA&& qrg_a, GB&& qrg_b, VA&& visres_a,
                  VB&& visres_b) const {
    const double f = 0.5 * (qrg_a[0] - qrg_b[0]);
    for (int k = 0; k < kQ; ++k) {
      visres_a[k] += f * (k + 1);
      visres_b[k] -= f * (k + 1);
    }
  }
};
inline constexpr IfluxEdge iflux_edge{};

// ---- jacob chain ---------------------------------------------------------

/// jac_period (pedges): jacp/jaca READ indirect both partners, pwk WRITE
/// direct.
struct JacPeriod {
  template <typename PA, typename PB, typename AA, typename AB, typename W>
  void operator()(PA&& jacp_a, PB&& jacp_b, AA&& jaca_a, AB&& jaca_b,
                  W&& pwk) const {
    double s = 0.0;
    for (int k = 0; k < kJ; ++k)
      s += jacp_a[k] * jaca_b[k] - jacp_b[k] * jaca_a[k];
    pwk[0] = s;
    pwk[1] = -s;
  }
};
inline constexpr JacPeriod jac_period{};

/// jac_centreline (cbnd): cbv RW direct.
struct JacCentreline {
  template <typename C>
  void operator()(C&& cbv) const {
    for (int k = 0; k < kQ; ++k) cbv[k] = 0.5 * cbv[k] + 1e-3;
  }
};
inline constexpr JacCentreline jac_centreline{};

/// jac_corrections (bnd): jacb READ indirect, bwk WRITE direct.
struct JacCorrections {
  template <typename J, typename B>
  void operator()(J&& jacb, B&& bwk) const {
    double s = 0.0;
    for (int k = 0; k < kJ; ++k) s += jacb[k];
    bwk[0] = s / kJ;
  }
};
inline constexpr JacCorrections jac_corrections{};

// ---- inter-iteration state update ---------------------------------------

/// rk_update (nodes, all direct): consumes the residuals and re-dirties
/// every dat the chains read, like an RK stage of the real solver
/// (including xp — the paper's vflux row lists xp among the exchanged
/// dats, i.e. the mesh metric terms are refreshed every iteration).
struct RkUpdate {
  template <typename QO, typename QP, typename QL, typename QG,
            typename QM, typename V, typename X, typename JP, typename JA,
            typename JB, typename R, typename VR>
  void operator()(QO&& qo, QP&& qp, QL&& ql, QG&& qrg, QM&& qmu, V&& vol,
                  X&& xp, JP&& jacp, JA&& jaca, JB&& jacb, R&& res,
                  VR&& visres) const {
    for (int k = 0; k < kQ; ++k) {
      qo[k] = 0.999 * qo[k] - 1e-4 * (res[k] + visres[k]);
      qp[k] = 0.999 * qp[k] + 1e-4 * res[k];
      ql[k] = 0.999 * ql[k] + 1e-4 * visres[k];
    }
    qrg[0] = 0.999 * qrg[0] + 1e-5 * res[0];
    qmu[0] = 0.999 * qmu[0] + 1e-5 * visres[0];
    vol[0] = std::abs(0.999 * vol[0]) + 1e-6;
    xp[3] = 0.999 * xp[3] + 1e-6 * res[0];  // metric terms, not coordinates
    xp[4] = 0.999 * xp[4] + 1e-6 * res[1];
    xp[5] = 0.999 * xp[5] - 1e-6 * res[2];
    for (int k = 0; k < kJ; ++k) {
      jacp[k] = 0.999 * jacp[k] + 1e-5 * res[k % kQ];
      jaca[k] = 0.999 * jaca[k] - 1e-5 * res[k % kQ];
      jacb[k] = 0.999 * jacb[k] + 1e-5 * visres[k % kQ];
    }
  }
};
inline constexpr RkUpdate rk_update{};

/// rk_stage (nodes, all direct): stage-weighted Runge-Kutta update. The
/// stage coefficient arrives as a global READ argument.
struct RkStage {
  template <typename QO, typename QP, typename QL, typename R,
            typename VR, typename A>
  void operator()(QO&& qo, QP&& qp, QL&& ql, R&& res, VR&& visres,
                  A&& alpha) const {
    for (int k = 0; k < kQ; ++k) {
      const double dq = alpha[0] * 1e-4 * (res[k] + visres[k]);
      qo[k] -= dq;
      qp[k] = 0.999 * qp[k] + dq;
      ql[k] = 0.999 * ql[k] - 0.5 * dq;
    }
  }
};
inline constexpr RkStage rk_stage{};

}  // namespace op2ca::apps::hydra::kernels
