// Hydra-analogue kernel bodies. Access shapes match Tables 3-4 exactly;
// arithmetic is plausible RANS-solver work with per-loop cost weights
// mirroring the paper's relative chain costs (vflux 18%, gradl 8%,
// iflux 5%, jacob 2% of runtime). Kernels executed redundantly are
// order-independent: increments commute, RW-combines use max/avg forms
// whose targets are touched once per loop (pedges/cbnd) or combined
// monotonically (edges).
#pragma once

#include <algorithm>
#include <cmath>

namespace op2ca::apps::hydra::kernels {

inline constexpr int kQ = 6;
inline constexpr int kJ = 9;

// ---- weight chain ------------------------------------------------------

/// sumbwts (bnd): qo INC indirect, bwts READ direct.
inline void sumbwts(double* qo, const double* bwts) {
  for (int k = 0; k < kQ; ++k) qo[k] += 0.01 * bwts[0] * (k + 1);
}

/// periodsym (pedges): qo RW indirect on both periodic partners. Damped
/// relaxation toward the periodic reference state; self-combine form
/// (each node's new value depends only on its own old value), keeping
/// the loop order-independent and its upstream halo needs local.
inline void periodsym(double* qo_a, double* qo_b) {
  for (int k = 0; k < kQ; ++k) {
    qo_a[k] = 0.995 * qo_a[k] + 5e-3 * (k + 1);
    qo_b[k] = 0.995 * qo_b[k] + 5e-3 * (k + 1);
  }
}

/// centreline (cbnd): qo WRITE indirect, cbv READ direct.
inline void centreline(double* qo, const double* cbv) {
  for (int k = 0; k < kQ; ++k) qo[k] = cbv[k];
}

/// edgelength (edges): qo RW indirect both ends, ewk READ direct. The
/// combine is a max against an edge-local value only — never against the
/// partner's qo — so the result is independent of edge execution order
/// (sparse tiling's order-independence requirement).
inline void edgelength(double* qo_a, double* qo_b, const double* ewk) {
  for (int k = 0; k < kQ; ++k) {
    const double w = std::abs(ewk[0]) * 1e-3 * (k + 1);
    qo_a[k] = std::max(qo_a[k], w);
    qo_b[k] = std::max(qo_b[k], w);
  }
}

/// periodicity (pedges): qo RW indirect; clamps each periodic node's
/// state to a floor (self-combine form).
inline void periodicity(double* qo_a, double* qo_b) {
  for (int k = 0; k < kQ; ++k) {
    const double floor_k = 1e-3 * (k + 1);
    qo_a[k] = std::max(qo_a[k], floor_k);
    qo_b[k] = std::max(qo_b[k], floor_k);
  }
}

// ---- period chain ------------------------------------------------------

/// negflag (pedges): vol RW indirect both partners (self-combine: flip
/// negative volumes), pwk WRITE direct (pedge-local flag reset; does not
/// consume vol, keeping the self-combine contract).
inline void negflag(double* vol_a, double* vol_b, double* pwk) {
  vol_a[0] = std::abs(vol_a[0]) + 1e-9;
  vol_b[0] = std::abs(vol_b[0]) + 1e-9;
  pwk[0] = 1.0;
  pwk[1] = -1.0;
}

/// limxp (edges): qo RW indirect both ends, vol READ indirect both ends.
/// Monotone max against an edge-local limiter value (order-independent:
/// vol is not written by this loop and qo is only max-combined).
inline void limxp(double* qo_a, double* qo_b, const double* vol_a,
                  const double* vol_b) {
  const double w = 1.0 / (std::abs(vol_a[0]) + std::abs(vol_b[0]) + 1e-9);
  for (int k = 0; k < kQ; ++k) {
    const double lim = w * 1e-4 * (k + 1);
    qo_a[k] = std::max(qo_a[k], lim);
    qo_b[k] = std::max(qo_b[k], lim);
  }
}

// ---- gradl chain -------------------------------------------------------

/// edgecon (edges): qp INC indirect both ends, ql INC indirect both
/// ends, ewk READ direct. Gradient contribution accumulation.
inline void edgecon(double* qp_a, double* qp_b, double* ql_a, double* ql_b,
                    const double* ewk) {
  for (int k = 0; k < kQ; ++k) {
    const double g = ewk[0] * 1e-3 * (k + 1);
    qp_a[k] += g;
    qp_b[k] -= g;
    ql_a[k] += 0.5 * g;
    ql_b[k] -= 0.5 * g;
  }
}

/// period (pedges): qp RW indirect, ql RW indirect (self-combine damped
/// periodic correction).
inline void period_gradl(double* qp_a, double* qp_b, double* ql_a,
                         double* ql_b) {
  for (int k = 0; k < kQ; ++k) {
    qp_a[k] = 0.99 * qp_a[k] + 1e-3;
    qp_b[k] = 0.99 * qp_b[k] + 1e-3;
    ql_a[k] = 0.99 * ql_a[k] - 1e-3;
    ql_b[k] = 0.99 * ql_b[k] - 1e-3;
  }
}

// ---- vflux chain (the most expensive in Hydra) --------------------------

/// initres (nodes): res WRITE direct.
inline void initres(double* res) {
  for (int k = 0; k < kQ; ++k) res[k] = 0.0;
}

/// vflux_edge (edges): qp/xp/ql/qmu/qrg READ indirect both ends, res INC
/// indirect both ends. Viscous-flux-like arithmetic (heavy).
inline void vflux_edge(const double* qp_a, const double* qp_b,
                       const double* xp_a, const double* xp_b,
                       const double* ql_a, const double* ql_b,
                       const double* qmu_a, const double* qmu_b,
                       const double* qrg_a, const double* qrg_b,
                       double* res_a, double* res_b) {
  double dx[3];
  for (int d = 0; d < 3; ++d) dx[d] = xp_b[d] - xp_a[d];
  const double len2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 1e-12;
  const double inv_len = 1.0 / std::sqrt(len2);
  const double mu = 0.5 * (qmu_a[0] + qmu_b[0]);
  const double rg = 0.5 * (qrg_a[0] + qrg_b[0]);
  for (int k = 0; k < kQ; ++k) {
    const double grad = (qp_b[k] - qp_a[k]) * inv_len;
    const double lim = 0.5 * (ql_a[k] + ql_b[k]);
    const double stress = mu * grad * (1.0 + 0.1 * lim);
    const double heat = rg * grad * grad / (std::abs(grad) + 1.0);
    const double f = stress + 0.01 * heat;
    res_a[k] += f;
    res_b[k] -= f;
  }
}

// ---- iflux chain ---------------------------------------------------------

/// initviscres (nodes): visres WRITE direct.
inline void initviscres(double* visres) {
  for (int k = 0; k < kQ; ++k) visres[k] = 0.0;
}

/// iflux_edge (edges): qrg READ indirect both ends, visres INC indirect.
inline void iflux_edge(const double* qrg_a, const double* qrg_b,
                       double* visres_a, double* visres_b) {
  const double f = 0.5 * (qrg_a[0] - qrg_b[0]);
  for (int k = 0; k < kQ; ++k) {
    visres_a[k] += f * (k + 1);
    visres_b[k] -= f * (k + 1);
  }
}

// ---- jacob chain ---------------------------------------------------------

/// jac_period (pedges): jacp/jaca READ indirect both partners, pwk WRITE
/// direct.
inline void jac_period(const double* jacp_a, const double* jacp_b,
                       const double* jaca_a, const double* jaca_b,
                       double* pwk) {
  double s = 0.0;
  for (int k = 0; k < kJ; ++k)
    s += jacp_a[k] * jaca_b[k] - jacp_b[k] * jaca_a[k];
  pwk[0] = s;
  pwk[1] = -s;
}

/// jac_centreline (cbnd): cbv RW direct.
inline void jac_centreline(double* cbv) {
  for (int k = 0; k < kQ; ++k) cbv[k] = 0.5 * cbv[k] + 1e-3;
}

/// jac_corrections (bnd): jacb READ indirect, bwk WRITE direct.
inline void jac_corrections(const double* jacb, double* bwk) {
  double s = 0.0;
  for (int k = 0; k < kJ; ++k) s += jacb[k];
  bwk[0] = s / kJ;
}

// ---- inter-iteration state update ---------------------------------------

/// rk_update (nodes, all direct): consumes the residuals and re-dirties
/// every dat the chains read, like an RK stage of the real solver
/// (including xp — the paper's vflux row lists xp among the exchanged
/// dats, i.e. the mesh metric terms are refreshed every iteration).
inline void rk_update(double* qo, double* qp, double* ql, double* qrg,
                      double* qmu, double* vol, double* xp, double* jacp,
                      double* jaca, double* jacb, const double* res,
                      const double* visres) {
  for (int k = 0; k < kQ; ++k) {
    qo[k] = 0.999 * qo[k] - 1e-4 * (res[k] + visres[k]);
    qp[k] = 0.999 * qp[k] + 1e-4 * res[k];
    ql[k] = 0.999 * ql[k] + 1e-4 * visres[k];
  }
  qrg[0] = 0.999 * qrg[0] + 1e-5 * res[0];
  qmu[0] = 0.999 * qmu[0] + 1e-5 * visres[0];
  vol[0] = std::abs(0.999 * vol[0]) + 1e-6;
  xp[3] = 0.999 * xp[3] + 1e-6 * res[0];  // metric terms, not coordinates
  xp[4] = 0.999 * xp[4] + 1e-6 * res[1];
  xp[5] = 0.999 * xp[5] - 1e-6 * res[2];
  for (int k = 0; k < kJ; ++k) {
    jacp[k] = 0.999 * jacp[k] + 1e-5 * res[k % kQ];
    jaca[k] = 0.999 * jaca[k] - 1e-5 * res[k % kQ];
    jacb[k] = 0.999 * jacb[k] + 1e-5 * visres[k % kQ];
  }
}

/// rk_stage (nodes, all direct): stage-weighted Runge-Kutta update. The
/// stage coefficient arrives as a global READ argument.
inline void rk_stage(double* qo, double* qp, double* ql,
                     const double* res, const double* visres,
                     const double* alpha) {
  for (int k = 0; k < kQ; ++k) {
    const double dq = alpha[0] * 1e-4 * (res[k] + visres[k]);
    qo[k] -= dq;
    qp[k] = 0.999 * qp[k] + dq;
    ql[k] = 0.999 * ql[k] - 0.5 * dq;
  }
}

}  // namespace op2ca::apps::hydra::kernels
