#include <string>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/mesh/hex3d.hpp"
#include "op2ca/util/rng.hpp"

namespace op2ca::apps::mgcfd {
namespace {

std::vector<double> random_field(std::size_t n, Rng* rng, double lo,
                                 double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->next_range(lo, hi);
  return v;
}

}  // namespace

Problem build_problem(gidx_t target_nodes, int num_levels,
                      std::uint64_t seed) {
  gidx_t nx = 0, ny = 0, nz = 0;
  mesh::pick_dims_for_nodes(target_nodes, &nx, &ny, &nz);

  Problem prob;
  prob.mg = mesh::make_multigrid_hex(nx, ny, nz, num_levels);
  mesh::MeshDef& m = prob.mg.mesh;
  Rng rng(seed);

  prob.levels.resize(prob.mg.levels.size());
  for (std::size_t l = 0; l < prob.mg.levels.size(); ++l) {
    const mesh::MgLevel& lv = prob.mg.levels[l];
    const auto nn = static_cast<std::size_t>(m.set(lv.nodes).size);
    const auto ne = static_cast<std::size_t>(m.set(lv.edges).size);
    const std::string sfx = "_l" + std::to_string(l);

    // Free-stream-ish state with a perturbation so fluxes are non-zero.
    std::vector<double> q(nn * kernels::kQDim);
    for (std::size_t i = 0; i < nn; ++i) {
      q[i * 5 + 0] = 1.0 + 0.01 * rng.next_double();
      q[i * 5 + 1] = 0.3 + 0.01 * rng.next_double();
      q[i * 5 + 2] = 0.02 * rng.next_double();
      q[i * 5 + 3] = 0.02 * rng.next_double();
      q[i * 5 + 4] = 2.5 + 0.05 * rng.next_double();
    }
    prob.levels[l].q = m.add_dat("q" + sfx, lv.nodes, 5, std::move(q));
    prob.levels[l].adt = m.add_dat("adt" + sfx, lv.nodes, 1);
    prob.levels[l].res = m.add_dat("res" + sfx, lv.nodes, 5);
    prob.levels[l].ewt = m.add_dat("ewt" + sfx, lv.edges, 3,
                                   random_field(ne * 3, &rng, -0.5, 0.5));
  }

  // Synthetic-chain dats on the finest level.
  const mesh::MgLevel& l0 = prob.mg.levels.front();
  const auto nn0 = static_cast<std::size_t>(m.set(l0.nodes).size);
  const auto ne0 = static_cast<std::size_t>(m.set(l0.edges).size);
  prob.sres = m.add_dat("sres", l0.nodes, 2,
                        random_field(nn0 * 2, &rng, -1.0, 1.0));
  prob.spres = m.add_dat("spres", l0.nodes, 2,
                         random_field(nn0 * 2, &rng, -1.0, 1.0));
  prob.sflux = m.add_dat("sflux", l0.nodes, 2);
  prob.sewt = m.add_dat("sewt", l0.edges, 4,
                        random_field(ne0 * 4, &rng, -0.5, 0.5));
  return prob;
}

}  // namespace op2ca::apps::mgcfd
