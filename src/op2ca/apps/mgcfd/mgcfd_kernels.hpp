// MG-CFD kernel bodies. The physics is a compact inviscid-flow
// finite-volume scheme: enough arithmetic per iteration to be
// representative of the real mini-app's flux kernels, fully
// deterministic, and order-independent where executed redundantly
// (increments commute; direct writes touch each element once).
#pragma once

#include <cmath>

namespace op2ca::apps::mgcfd::kernels {

inline constexpr int kQDim = 5;  // rho, rho*u, rho*v, rho*w, rho*E
inline constexpr double kGamma = 1.4;
inline constexpr double kCfl = 0.9;

/// adt = local pseudo-timestep scale from the flow state (nodes, direct).
inline void step_factor(const double* q, double* adt) {
  const double rho = q[0] > 1e-12 ? q[0] : 1e-12;
  const double inv_rho = 1.0 / rho;
  const double u = q[1] * inv_rho, v = q[2] * inv_rho, w = q[3] * inv_rho;
  const double ke = 0.5 * (u * u + v * v + w * w);
  double p = (kGamma - 1.0) * (q[4] - rho * ke);
  if (p < 1e-12) p = 1e-12;
  const double c = std::sqrt(kGamma * p * inv_rho);
  const double speed = std::sqrt(u * u + v * v + w * w) + c;
  adt[0] = kCfl / (speed + 1e-12);
}

/// Central flux with scalar dissipation along an edge; increments the
/// residuals of both end nodes (edges; q READ indirect, res INC indirect,
/// ewt READ direct).
inline void compute_flux_edge(const double* q1, const double* q2,
                              const double* ewt, double* res1,
                              double* res2) {
  const double inv_r1 = 1.0 / (q1[0] > 1e-12 ? q1[0] : 1e-12);
  const double inv_r2 = 1.0 / (q2[0] > 1e-12 ? q2[0] : 1e-12);
  double vel1[3] = {q1[1] * inv_r1, q1[2] * inv_r1, q1[3] * inv_r1};
  double vel2[3] = {q2[1] * inv_r2, q2[2] * inv_r2, q2[3] * inv_r2};
  const double ke1 =
      0.5 * (vel1[0] * vel1[0] + vel1[1] * vel1[1] + vel1[2] * vel1[2]);
  const double ke2 =
      0.5 * (vel2[0] * vel2[0] + vel2[1] * vel2[1] + vel2[2] * vel2[2]);
  double p1 = (kGamma - 1.0) * (q1[4] - q1[0] * ke1);
  double p2 = (kGamma - 1.0) * (q2[4] - q2[0] * ke2);
  const double vn1 =
      vel1[0] * ewt[0] + vel1[1] * ewt[1] + vel1[2] * ewt[2];
  const double vn2 =
      vel2[0] * ewt[0] + vel2[1] * ewt[1] + vel2[2] * ewt[2];

  double flux[kQDim];
  flux[0] = 0.5 * (q1[0] * vn1 + q2[0] * vn2);
  flux[1] = 0.5 * (q1[1] * vn1 + q2[1] * vn2 + (p1 + p2) * ewt[0]);
  flux[2] = 0.5 * (q1[2] * vn1 + q2[2] * vn2 + (p1 + p2) * ewt[1]);
  flux[3] = 0.5 * (q1[3] * vn1 + q2[3] * vn2 + (p1 + p2) * ewt[2]);
  flux[4] = 0.5 * ((q1[4] + p1) * vn1 + (q2[4] + p2) * vn2);

  // Scalar (Rusanov-style) dissipation.
  const double diss = 0.05 * (std::abs(vn1) + std::abs(vn2) + 1.0);
  for (int k = 0; k < kQDim; ++k) {
    const double d = diss * (q2[k] - q1[k]);
    res1[k] += flux[k] + d;
    res2[k] -= flux[k] + d;
  }
}

/// Explicit update consuming (and zeroing) the residual (nodes; q RW
/// direct, adt READ direct, res RW direct).
inline void time_step(double* q, const double* adt, double* res) {
  for (int k = 0; k < kQDim; ++k) {
    q[k] -= 1e-3 * adt[0] * res[k];
    res[k] = 0.0;
  }
}

/// Residual L2 contribution (nodes direct; gbl INC).
inline void residual_rms(const double* res, double* rms) {
  double s = 0.0;
  for (int k = 0; k < kQDim; ++k) s += res[k] * res[k];
  rms[0] += s;
}

/// Fine-to-coarse restriction: accumulate fine q onto the mapped coarse
/// node (fine nodes; coarse q INC indirect, fine q READ direct).
inline void restrict_q(const double* fine_q, double* coarse_q) {
  for (int k = 0; k < kQDim; ++k) coarse_q[k] += 0.125 * fine_q[k];
}

/// Coarse-to-fine injection (coarse nodes; fine q RW indirect arity 1 —
/// each fine node is targeted by at most one coarse node).
inline void prolong_q(const double* coarse_q, double* fine_q) {
  for (int k = 0; k < kQDim; ++k)
    fine_q[k] += 1e-3 * (coarse_q[k] - 8.0 * fine_q[k] * 0.125);
}

/// Zero a node dat (direct WRITE).
inline void zero5(double* v) {
  for (int k = 0; k < kQDim; ++k) v[k] = 0.0;
}

// ---- Synthetic chain kernels (Fig 2/3 of the paper). ------------------

/// update: indirect INC of res from indirect READs of pres. (pres must
/// stay read-only inside the chain: evolving it here would make its
/// value feed res across elements, which deepens the halo requirement
/// by one layer per loop pair — the r = n worst case of Section 3.1
/// instead of the paper's r = 2.)
inline void synth_update(double* res1, double* res2, const double* pres1,
                         const double* pres2) {
  res1[0] += pres1[0] - pres1[1];
  res1[1] += pres2[0] - pres2[1];
  res2[0] += pres2[1] - pres2[0];
  res2[1] += pres1[1] - pres1[0];
}

/// edge_flux: replica of the costly flux kernel's access pattern —
/// indirect READ of res, direct READ of edge weights, indirect INC of
/// flux. Arithmetic density mirrors compute_flux_edge.
inline void synth_edge_flux(double* flux1, double* flux2,
                            const double* res1, const double* res2,
                            const double* ewt) {
  const double a = res1[0] * ewt[0] - res1[1] * ewt[1];
  const double b = res2[1] * ewt[2] - res2[0] * ewt[3];
  const double c = std::sqrt(std::abs(a * b) + 1.0);
  flux1[0] += a + 0.5 * c;
  flux1[1] += b - 0.5 * c;
  flux2[0] += res2[1] * ewt[2] - res1[1] * ewt[3] + 0.25 * c;
  flux2[1] += res1[0] * ewt[0] - res1[1] * ewt[1] - 0.25 * c;
}

/// Outside-the-chain perturbation re-dirtying pres each timestep
/// (nodes; pres RW direct).
inline void synth_perturb(double* pres) {
  pres[0] = 0.999 * pres[0] + 1e-4;
  pres[1] = 0.999 * pres[1] - 1e-4;
}

}  // namespace op2ca::apps::mgcfd::kernels
