// MG-CFD kernel bodies. The physics is a compact inviscid-flow
// finite-volume scheme: enough arithmetic per iteration to be
// representative of the real mini-app's flux kernels, fully
// deterministic, and order-independent where executed redundantly
// (increments commute; direct writes touch each element once).
//
// Every kernel is a function object with a templated call operator: the
// runtime passes core::detail::ElemRef views whose component stride
// depends on the dat's storage layout (WorldConfig::layout), while
// plain `double*` still binds for direct calls in tests and benches.
// Bodies index components with arg[k] only, so the same arithmetic runs
// unchanged over AoS rows, SoA planes and AoSoA blocks.
#pragma once

#include <cmath>

namespace op2ca::apps::mgcfd::kernels {

inline constexpr int kQDim = 5;  // rho, rho*u, rho*v, rho*w, rho*E
inline constexpr double kGamma = 1.4;
inline constexpr double kCfl = 0.9;

/// adt = local pseudo-timestep scale from the flow state (nodes, direct).
struct StepFactor {
  template <typename Q, typename A>
  void operator()(Q&& q, A&& adt) const {
    const double rho = q[0] > 1e-12 ? q[0] : 1e-12;
    const double inv_rho = 1.0 / rho;
    const double u = q[1] * inv_rho, v = q[2] * inv_rho,
                 w = q[3] * inv_rho;
    const double ke = 0.5 * (u * u + v * v + w * w);
    double p = (kGamma - 1.0) * (q[4] - rho * ke);
    if (p < 1e-12) p = 1e-12;
    const double c = std::sqrt(kGamma * p * inv_rho);
    const double speed = std::sqrt(u * u + v * v + w * w) + c;
    adt[0] = kCfl / (speed + 1e-12);
  }
};
inline constexpr StepFactor step_factor{};

/// Central flux with scalar dissipation along an edge; increments the
/// residuals of both end nodes (edges; q READ indirect, res INC indirect,
/// ewt READ direct).
struct ComputeFluxEdge {
  template <typename Q1, typename Q2, typename E, typename R1, typename R2>
  void operator()(Q1&& q1, Q2&& q2, E&& ewt, R1&& res1, R2&& res2) const {
    const double inv_r1 = 1.0 / (q1[0] > 1e-12 ? q1[0] : 1e-12);
    const double inv_r2 = 1.0 / (q2[0] > 1e-12 ? q2[0] : 1e-12);
    double vel1[3] = {q1[1] * inv_r1, q1[2] * inv_r1, q1[3] * inv_r1};
    double vel2[3] = {q2[1] * inv_r2, q2[2] * inv_r2, q2[3] * inv_r2};
    const double ke1 =
        0.5 * (vel1[0] * vel1[0] + vel1[1] * vel1[1] + vel1[2] * vel1[2]);
    const double ke2 =
        0.5 * (vel2[0] * vel2[0] + vel2[1] * vel2[1] + vel2[2] * vel2[2]);
    double p1 = (kGamma - 1.0) * (q1[4] - q1[0] * ke1);
    double p2 = (kGamma - 1.0) * (q2[4] - q2[0] * ke2);
    const double vn1 =
        vel1[0] * ewt[0] + vel1[1] * ewt[1] + vel1[2] * ewt[2];
    const double vn2 =
        vel2[0] * ewt[0] + vel2[1] * ewt[1] + vel2[2] * ewt[2];

    double flux[kQDim];
    flux[0] = 0.5 * (q1[0] * vn1 + q2[0] * vn2);
    flux[1] = 0.5 * (q1[1] * vn1 + q2[1] * vn2 + (p1 + p2) * ewt[0]);
    flux[2] = 0.5 * (q1[2] * vn1 + q2[2] * vn2 + (p1 + p2) * ewt[1]);
    flux[3] = 0.5 * (q1[3] * vn1 + q2[3] * vn2 + (p1 + p2) * ewt[2]);
    flux[4] = 0.5 * ((q1[4] + p1) * vn1 + (q2[4] + p2) * vn2);

    // Scalar (Rusanov-style) dissipation.
    const double diss = 0.05 * (std::abs(vn1) + std::abs(vn2) + 1.0);
    for (int k = 0; k < kQDim; ++k) {
      const double d = diss * (q2[k] - q1[k]);
      res1[k] += flux[k] + d;
      res2[k] -= flux[k] + d;
    }
  }
};
inline constexpr ComputeFluxEdge compute_flux_edge{};

/// Explicit update consuming (and zeroing) the residual (nodes; q RW
/// direct, adt READ direct, res RW direct).
struct TimeStep {
  template <typename Q, typename A, typename R>
  void operator()(Q&& q, A&& adt, R&& res) const {
    for (int k = 0; k < kQDim; ++k) {
      q[k] -= 1e-3 * adt[0] * res[k];
      res[k] = 0.0;
    }
  }
};
inline constexpr TimeStep time_step{};

/// Residual L2 contribution (nodes direct; gbl INC).
struct ResidualRms {
  template <typename R, typename G>
  void operator()(R&& res, G&& rms) const {
    double s = 0.0;
    for (int k = 0; k < kQDim; ++k) s += res[k] * res[k];
    rms[0] += s;
  }
};
inline constexpr ResidualRms residual_rms{};

/// Fine-to-coarse restriction: accumulate fine q onto the mapped coarse
/// node (fine nodes; coarse q INC indirect, fine q READ direct).
struct RestrictQ {
  template <typename F, typename C>
  void operator()(F&& fine_q, C&& coarse_q) const {
    for (int k = 0; k < kQDim; ++k) coarse_q[k] += 0.125 * fine_q[k];
  }
};
inline constexpr RestrictQ restrict_q{};

/// Coarse-to-fine injection (coarse nodes; fine q RW indirect arity 1 —
/// each fine node is targeted by at most one coarse node).
struct ProlongQ {
  template <typename C, typename F>
  void operator()(C&& coarse_q, F&& fine_q) const {
    for (int k = 0; k < kQDim; ++k)
      fine_q[k] += 1e-3 * (coarse_q[k] - 8.0 * fine_q[k] * 0.125);
  }
};
inline constexpr ProlongQ prolong_q{};

/// Zero a node dat (direct WRITE).
struct Zero5 {
  template <typename V>
  void operator()(V&& v) const {
    for (int k = 0; k < kQDim; ++k) v[k] = 0.0;
  }
};
inline constexpr Zero5 zero5{};

// ---- Synthetic chain kernels (Fig 2/3 of the paper). ------------------

/// update: indirect INC of res from indirect READs of pres. (pres must
/// stay read-only inside the chain: evolving it here would make its
/// value feed res across elements, which deepens the halo requirement
/// by one layer per loop pair — the r = n worst case of Section 3.1
/// instead of the paper's r = 2.)
struct SynthUpdate {
  template <typename R1, typename R2, typename P1, typename P2>
  void operator()(R1&& res1, R2&& res2, P1&& pres1, P2&& pres2) const {
    res1[0] += pres1[0] - pres1[1];
    res1[1] += pres2[0] - pres2[1];
    res2[0] += pres2[1] - pres2[0];
    res2[1] += pres1[1] - pres1[0];
  }
};
inline constexpr SynthUpdate synth_update{};

/// edge_flux: replica of the costly flux kernel's access pattern —
/// indirect READ of res, direct READ of edge weights, indirect INC of
/// flux. Arithmetic density mirrors compute_flux_edge.
struct SynthEdgeFlux {
  template <typename F1, typename F2, typename R1, typename R2, typename E>
  void operator()(F1&& flux1, F2&& flux2, R1&& res1, R2&& res2,
                  E&& ewt) const {
    const double a = res1[0] * ewt[0] - res1[1] * ewt[1];
    const double b = res2[1] * ewt[2] - res2[0] * ewt[3];
    const double c = std::sqrt(std::abs(a * b) + 1.0);
    flux1[0] += a + 0.5 * c;
    flux1[1] += b - 0.5 * c;
    flux2[0] += res2[1] * ewt[2] - res1[1] * ewt[3] + 0.25 * c;
    flux2[1] += res1[0] * ewt[0] - res1[1] * ewt[1] - 0.25 * c;
  }
};
inline constexpr SynthEdgeFlux synth_edge_flux{};

/// Outside-the-chain perturbation re-dirtying pres each timestep
/// (nodes; pres RW direct).
struct SynthPerturb {
  template <typename P>
  void operator()(P&& pres) const {
    pres[0] = 0.999 * pres[0] + 1e-4;
    pres[1] = 0.999 * pres[1] - 1e-4;
  }
};
inline constexpr SynthPerturb synth_perturb{};

}  // namespace op2ca::apps::mgcfd::kernels
