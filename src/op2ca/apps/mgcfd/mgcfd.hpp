// MG-CFD analogue: a 3D node-centred finite-volume Euler mini-solver
// with multigrid acceleration, expressed in the op2ca API (paper
// Section 4.1). Includes the synthetic update/edge_flux loop-chain of
// Section 4.1.1 used for the Table 2 / Fig 10-11 experiments.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "op2ca/core/runtime.hpp"
#include "op2ca/mesh/multigrid.hpp"

namespace op2ca::apps::mgcfd {

/// Mesh + dat handles of one built problem.
struct Problem {
  mesh::MultigridHex mg;  ///< the mesh lives in mg.mesh.

  struct LevelDats {
    mesh::dat_id q = -1;    ///< conserved variables, dim 5.
    mesh::dat_id adt = -1;  ///< area / timestep, dim 1.
    mesh::dat_id res = -1;  ///< residual, dim 5.
    mesh::dat_id ewt = -1;  ///< edge weights (face normals), dim 3.
  };
  std::vector<LevelDats> levels;

  // Synthetic-chain dats (level-0 sets), Fig 3 structure.
  mesh::dat_id sres = -1;   ///< nodes, dim 2.
  mesh::dat_id spres = -1;  ///< nodes, dim 2.
  mesh::dat_id sflux = -1;  ///< nodes, dim 2.
  mesh::dat_id sewt = -1;   ///< edges, dim 4.
};

/// Builds a problem with ~target_nodes level-0 nodes and `num_levels`
/// multigrid levels; dats deterministically initialized from `seed`.
Problem build_problem(gidx_t target_nodes, int num_levels,
                      std::uint64_t seed = 7);

/// Handle bundle resolved inside the SPMD function.
struct Handles {
  struct Level {
    core::Set nodes, edges;
    core::Map e2n;
    core::Dat q, adt, res, ewt;
  };
  std::vector<Level> levels;
  std::vector<core::Map> restrict_maps, prolong_maps;
  core::Set nodes0, edges0;
  core::Map e2n0;
  core::Dat sres, spres, sflux, sewt;
};
Handles resolve_handles(core::Runtime& rt, const Problem& prob);

/// One multigrid V-cycle iteration of the Euler solver; returns the
/// residual RMS (global reduction).
double solver_iteration(core::Runtime& rt, const Handles& h);

/// Runs `niters` solver iterations; returns the RMS history.
std::vector<double> run_solver(core::Runtime& rt, const Handles& h,
                               int niters);

/// The synthetic loop-chain (Section 4.1.1): a perturbation loop outside
/// the chain re-dirties spres, then `nchains` update/edge_flux pairs run
/// inside chain 'synthetic' (2*nchains loops). With the chain enabled in
/// the ChainConfig this executes per Alg 2; otherwise as 2*nchains
/// standard OP2 loops.
void run_synthetic_chain(core::Runtime& rt, const Handles& h, int nchains);

/// Structural spec of the synthetic chain for planned-mode analysis.
core::ChainSpec synthetic_chain_spec(const Problem& prob, int nchains);

/// Loop names of the synthetic chain (calibration keys).
std::vector<std::string> synthetic_loop_names();

}  // namespace op2ca::apps::mgcfd
