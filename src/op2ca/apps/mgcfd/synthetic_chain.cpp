// The synthetic loop-chain of Section 4.1.1: `nchains` update/edge_flux
// pairs forming one 2*nchains-loop chain. update INCs sres from spres
// reads; edge_flux (a stand-in for the costly compute_flux_edge access
// pattern) reads sres and INCs sflux. A perturbation loop outside the
// chain re-dirties spres each timestep, so the baseline re-exchanges
// sres on every edge_flux (nchains messages per dat-class per neighbour
// per timestep) while CA sends one grouped message.
#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::apps::mgcfd {

using core::Access;
using core::arg_dat;

void run_synthetic_chain(core::Runtime& rt, const Handles& h, int nchains) {
  OP2CA_REQUIRE(nchains >= 1, "run_synthetic_chain: nchains >= 1");

  rt.par_loop("synth_perturb", h.nodes0, kernels::synth_perturb,
              arg_dat(h.spres, Access::RW));

  rt.chain_begin("synthetic");
  for (int c = 0; c < nchains; ++c) {
    rt.par_loop("synth_update", h.edges0, kernels::synth_update,
                arg_dat(h.sres, 0, h.e2n0, Access::INC),
                arg_dat(h.sres, 1, h.e2n0, Access::INC),
                arg_dat(h.spres, 0, h.e2n0, Access::READ),
                arg_dat(h.spres, 1, h.e2n0, Access::READ));
    rt.par_loop("synth_edge_flux", h.edges0, kernels::synth_edge_flux,
                arg_dat(h.sflux, 0, h.e2n0, Access::INC),
                arg_dat(h.sflux, 1, h.e2n0, Access::INC),
                arg_dat(h.sres, 0, h.e2n0, Access::READ),
                arg_dat(h.sres, 1, h.e2n0, Access::READ),
                arg_dat(h.sewt, Access::READ));
  }
  rt.chain_end();
}

core::ChainSpec synthetic_chain_spec(const Problem& prob, int nchains) {
  const mesh::MeshDef& m = prob.mg.mesh;
  const mesh::set_id edges = *m.find_set("edges_l0");
  const mesh::map_id e2n = *m.find_map("e2n_l0");

  core::ChainSpec spec;
  spec.name = "synthetic";
  for (int c = 0; c < nchains; ++c) {
    core::LoopSpec update;
    update.name = "synth_update";
    update.set = edges;
    update.args = {
        {prob.sres, core::Access::INC, true, e2n, 0},
        {prob.sres, core::Access::INC, true, e2n, 1},
        {prob.spres, core::Access::READ, true, e2n, 0},
        {prob.spres, core::Access::READ, true, e2n, 1},
    };
    spec.loops.push_back(update);

    core::LoopSpec flux;
    flux.name = "synth_edge_flux";
    flux.set = edges;
    flux.args = {
        {prob.sflux, core::Access::INC, true, e2n, 0},
        {prob.sflux, core::Access::INC, true, e2n, 1},
        {prob.sres, core::Access::READ, true, e2n, 0},
        {prob.sres, core::Access::READ, true, e2n, 1},
        {prob.sewt, core::Access::READ, false, -1, 0},
    };
    spec.loops.push_back(flux);
  }
  return spec;
}

std::vector<std::string> synthetic_loop_names() {
  return {"synth_perturb", "synth_update", "synth_edge_flux"};
}

}  // namespace op2ca::apps::mgcfd
