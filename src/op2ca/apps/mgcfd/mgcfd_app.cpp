// MG-CFD solver driver: per V-cycle, smooth every level (step factor,
// edge fluxes, explicit update), restrict the solution down the
// hierarchy, inject corrections back up, and reduce the residual RMS.
#include <string>

#include "op2ca/apps/mgcfd/mgcfd.hpp"
#include "op2ca/apps/mgcfd/mgcfd_kernels.hpp"

namespace op2ca::apps::mgcfd {

using core::Access;
using core::arg_dat;
using core::arg_gbl;

Handles resolve_handles(core::Runtime& rt, const Problem& prob) {
  Handles h;
  h.levels.resize(prob.levels.size());
  for (std::size_t l = 0; l < prob.levels.size(); ++l) {
    const std::string sfx = "_l" + std::to_string(l);
    Handles::Level& lv = h.levels[l];
    lv.nodes = rt.set("nodes" + sfx);
    lv.edges = rt.set("edges" + sfx);
    lv.e2n = rt.map("e2n" + sfx);
    lv.q = rt.dat(prob.levels[l].q);
    lv.adt = rt.dat(prob.levels[l].adt);
    lv.res = rt.dat(prob.levels[l].res);
    lv.ewt = rt.dat(prob.levels[l].ewt);
  }
  for (std::size_t l = 0; l + 1 < prob.levels.size(); ++l) {
    h.restrict_maps.push_back(
        rt.map("restrict_l" + std::to_string(l) + std::to_string(l + 1)));
    h.prolong_maps.push_back(
        rt.map("prolong_l" + std::to_string(l) + std::to_string(l + 1)));
  }
  h.nodes0 = h.levels[0].nodes;
  h.edges0 = h.levels[0].edges;
  h.e2n0 = h.levels[0].e2n;
  h.sres = rt.dat(prob.sres);
  h.spres = rt.dat(prob.spres);
  h.sflux = rt.dat(prob.sflux);
  h.sewt = rt.dat(prob.sewt);
  return h;
}

namespace {

void smooth_level(core::Runtime& rt, const Handles::Level& lv,
                  const std::string& sfx) {
  rt.par_loop("step_factor" + sfx, lv.nodes, kernels::step_factor,
              arg_dat(lv.q, Access::READ), arg_dat(lv.adt, Access::WRITE));
  rt.par_loop("compute_flux_edge" + sfx, lv.edges,
              kernels::compute_flux_edge,
              arg_dat(lv.q, 0, lv.e2n, Access::READ),
              arg_dat(lv.q, 1, lv.e2n, Access::READ),
              arg_dat(lv.ewt, Access::READ),
              arg_dat(lv.res, 0, lv.e2n, Access::INC),
              arg_dat(lv.res, 1, lv.e2n, Access::INC));
  rt.par_loop("time_step" + sfx, lv.nodes, kernels::time_step,
              arg_dat(lv.q, Access::RW), arg_dat(lv.adt, Access::READ),
              arg_dat(lv.res, Access::RW));
}

}  // namespace

double solver_iteration(core::Runtime& rt, const Handles& h) {
  const int nlev = static_cast<int>(h.levels.size());

  // Down-sweep: smooth then restrict the state to the next coarser grid.
  for (int l = 0; l < nlev; ++l) {
    const std::string sfx = "_l" + std::to_string(l);
    smooth_level(rt, h.levels[static_cast<std::size_t>(l)], sfx);
    if (l + 1 < nlev) {
      const auto& coarse = h.levels[static_cast<std::size_t>(l) + 1];
      rt.par_loop("zero_coarse" + sfx, coarse.nodes, kernels::zero5,
                  arg_dat(coarse.q, Access::WRITE));
      rt.par_loop(
          "restrict" + sfx, h.levels[static_cast<std::size_t>(l)].nodes,
          kernels::restrict_q,
          arg_dat(h.levels[static_cast<std::size_t>(l)].q, Access::READ),
          arg_dat(coarse.q, 0,
                  h.restrict_maps[static_cast<std::size_t>(l)],
                  Access::INC));
    }
  }

  // Up-sweep: inject coarse corrections into the finer grids.
  for (int l = nlev - 2; l >= 0; --l) {
    const auto& coarse = h.levels[static_cast<std::size_t>(l) + 1];
    rt.par_loop("prolong_l" + std::to_string(l), coarse.nodes,
                kernels::prolong_q, arg_dat(coarse.q, Access::READ),
                arg_dat(h.levels[static_cast<std::size_t>(l)].q, 0,
                        h.prolong_maps[static_cast<std::size_t>(l)],
                        Access::RW));
  }

  // Residual norm on the fine grid: recompute fluxes into res, reduce,
  // then clear.
  const auto& l0 = h.levels[0];
  rt.par_loop("rms_flux", l0.edges, kernels::compute_flux_edge,
              arg_dat(l0.q, 0, l0.e2n, Access::READ),
              arg_dat(l0.q, 1, l0.e2n, Access::READ),
              arg_dat(l0.ewt, Access::READ),
              arg_dat(l0.res, 0, l0.e2n, Access::INC),
              arg_dat(l0.res, 1, l0.e2n, Access::INC));
  double rms = 0.0;
  rt.par_loop("rms_reduce", l0.nodes, kernels::residual_rms,
              arg_dat(l0.res, Access::READ), arg_gbl(&rms, 1, Access::INC));
  rt.par_loop("rms_clear", l0.nodes, kernels::zero5,
              arg_dat(l0.res, Access::WRITE));
  return rms;
}

std::vector<double> run_solver(core::Runtime& rt, const Handles& h,
                               int niters) {
  std::vector<double> history;
  history.reserve(static_cast<std::size_t>(niters));
  for (int it = 0; it < niters; ++it)
    history.push_back(solver_iteration(rt, h));
  return history;
}

}  // namespace op2ca::apps::mgcfd
