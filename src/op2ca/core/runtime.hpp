// The op2ca runtime: an OP2-style API over the simulated distributed
// machine, with both the classic per-loop halo-exchange executor (Alg 1)
// and the communication-avoiding loop-chain executor (Alg 2).
//
// Usage mirrors OP2: a global mesh (sets/maps/dats) is declared once in a
// MeshDef; a World partitions it over N simulated ranks, builds the
// multi-layer halo plan, and runs an SPMD function on one thread per
// rank. Inside the SPMD function, `par_loop` executes kernels over sets
// with access descriptors; `chain_begin`/`chain_end` bracket a loop-chain
// that the CA back-end captures, inspects and executes per Alg 2 when the
// chain is enabled in the ChainConfig.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "op2ca/comm/comm.hpp"
#include "op2ca/core/access.hpp"
#include "op2ca/core/chain.hpp"
#include "op2ca/core/chain_config.hpp"
#include "op2ca/gpu/device_space.hpp"
#include "op2ca/halo/halo_plan.hpp"
#include "op2ca/halo/reorder.hpp"
#include "op2ca/mesh/layout.hpp"
#include "op2ca/mesh/mesh_def.hpp"
#include "op2ca/mesh/reorder.hpp"
#include "op2ca/partition/partition.hpp"

namespace op2ca::core {

/// Opaque handles into the World's mesh.
struct Set {
  mesh::set_id id = -1;
};
struct Map {
  mesh::map_id id = -1;
};
struct Dat {
  mesh::dat_id id = -1;
};

/// A par_loop argument (OP2's op_arg_dat / op_arg_gbl).
struct Arg {
  enum class Kind { DatDirect, DatIndirect, Gbl };
  Kind kind = Kind::DatDirect;
  mesh::dat_id dat = -1;
  int map_idx = 0;         ///< which map target column (indirect only).
  mesh::map_id map = -1;   ///< indirect only.
  Access mode = Access::READ;
  double* gbl = nullptr;   ///< Gbl only; READ or INC (sum-reduced).
  int gbl_dim = 0;
  bool self_combine = false;  ///< see ArgSpec::self_combine.
};

/// Direct access: the dat element of the current iteration.
Arg arg_dat(Dat d, Access mode);
/// Indirect access through map column `idx`. `self_combine` (RW only)
/// declares that the kernel reads this dat solely at the element it
/// writes — see ArgSpec::self_combine.
Arg arg_dat(Dat d, int idx, Map m, Access mode, bool self_combine = false);
/// Global argument: READ passes a constant, INC sum-reduces across ranks.
Arg arg_gbl(double* value, int dim, Access mode);

/// Per-loop / per-chain measurements, merged across ranks by the World.
struct LoopMetrics {
  std::int64_t calls = 0;
  std::int64_t core_iters = 0;   ///< iterations overlapped with comms.
  std::int64_t halo_iters = 0;   ///< owned-boundary + exec-halo iterations.
  std::int64_t msgs = 0;
  std::int64_t bytes = 0;
  std::int64_t max_msg_bytes = 0;    ///< largest single message (max rank).
  std::int64_t max_rank_bytes = 0;   ///< most bytes sent by one rank/call.
  int max_neighbors = 0;
  double wall_seconds = 0;           ///< summed across ranks.
  // Phase breakdown (wall, summed across ranks): staging the outgoing
  // halo data, computing cores while messages fly, waiting, unpacking
  // received payloads, and the post-wait boundary/halo compute.
  double pack_seconds = 0;
  double core_seconds = 0;
  double wait_seconds = 0;
  double unpack_seconds = 0;
  double halo_seconds = 0;
  // Hot-path observability: region-body invocations (batched dispatch
  // amortises one type-erased call over many elements), exchange-plan
  // (re)builds, and staging-buffer allocations. In steady state the last
  // two stay at zero — asserted by the plan-reuse tests.
  std::int64_t dispatch_regions = 0;
  std::int64_t plan_builds = 0;
  std::int64_t staging_allocs = 0;
  // Intra-rank threading (threads_per_rank > 1): chunks submitted to the
  // worker pool, the colour count of the widest colour-ordered sweep
  // (max over ranks/calls; 0 = no sweep needed), and the summed
  // per-thread busy time inside pool regions.
  std::int64_t chunks = 0;
  int max_colours = 0;
  double busy_seconds = 0;
  // Task-graph executor (WorldConfig::taskgraph): graph tasks executed
  // (block ranges + folded pack tasks), tasks a participant stole from
  // another worker's deque, and the summed time participants spent
  // dependency-starved (nothing runnable anywhere — the residue of what
  // the colour-barrier path spent idling at every colour boundary).
  std::int64_t tasks = 0;
  std::int64_t steals = 0;
  double dep_wait_seconds = 0;
  // Locality proxies of the loop's dominant indirection in the order it
  // is actually walked (mesh::ordering_quality, worst rank): mean jump
  // between consecutive gathers and mean iteration gap before a target
  // is touched again. 0 for direct loops. Reordering (WorldConfig::
  // reorder) should pull both down — asserted by the locality bench.
  double gather_span = 0;
  double reuse_gap = 0;
  // SIMD data plane: the widest layout any dat arg of the loop is stored
  // in (0 = AoS, 1 = SoA, 2 = AoSoA; max over args and ranks) and the
  // total halo elements exchanged, so bytes / halo_elems gives the wire
  // bytes moved per exchanged element for EXPERIMENTS.md correlations.
  int layout_code = 0;
  std::int64_t halo_elems = 0;
  // Transport hierarchy: wire bytes sent per machine tier (NUMA-local,
  // node-local, cross-network — flat topologies put everything in net)
  // and stripe sub-messages posted by the multi-rail striping layer
  // (0 unless WorldConfig::transport.rails > 1 met the size threshold).
  std::int64_t numa_bytes = 0;
  std::int64_t node_bytes = 0;
  std::int64_t net_bytes = 0;
  std::int64_t stripes = 0;
  // Device executor (WorldConfig::device): PCIe bytes the epoch moved in
  // each direction, metered transfers, and the modelled device-side
  // makespan under the configured transfer policy (FullyStaged
  // serialises H2D | compute | D2H, Pipelined overlaps them — the
  // staged-vs-pipelined A/B in BENCH_gpu.json is the ratio of these).
  // In a pipelined steady state h2d_bytes collapses to the halo staging
  // traffic: the resident mirrors stop moving.
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  std::int64_t device_transfers = 0;
  double device_seconds = 0;
  // Temporal tiling (WorldConfig::tile / ChainConfig tile=): the largest
  // tile size any epoch of this chain ran at (1 = untiled; 0 for plain
  // loops), the import-exec halo iterations CA epochs executed
  // redundantly (owner-compute recomputation — fused tiles reach deeper,
  // so the tile=1 vs tile=k delta is the redundancy the fusion buys its
  // message savings with), and the messages fusion avoided posting (the
  // tile-1 exchange epochs each fused epoch skipped).
  std::int64_t tile = 0;
  std::int64_t redundant_elems = 0;
  std::int64_t msgs_saved = 0;

  void merge_from(const LoopMetrics& other);
};

class World;

namespace detail {
struct RankState;

/// Strided view of one dat element: component c lives at p[c * stride].
/// Under AoS (and for every gbl arg) stride == 1, so the implicit
/// conversion hands legacy raw-pointer kernels the exact pointer they
/// always received; stride-aware kernels index through operator[] and
/// work under every layout.
struct ElemRef {
  double* p = nullptr;
  lidx_t stride = 1;

  double& operator[](int c) const {
    return p[static_cast<std::size_t>(c) * static_cast<std::size_t>(stride)];
  }
  /// Legacy escape hatch: only layout-correct when stride == 1.
  operator double*() const { return p; }
};

/// Per-argument iteration-time resolution data. The layout fields mirror
/// mesh::DatLayout's shift/mask addressing; bind_layout keeps them
/// coherent (the defaults describe an AoS dim-1 dat).
struct ResolvedArg {
  double* base = nullptr;
  const lidx_t* map_targets = nullptr;  ///< null for direct / gbl.
  int arity = 1;
  int idx = 0;
  int dim = 1;
  bool is_gbl = false;
  // Storage layout of the dat behind `base` (see mesh::DatLayout):
  // element i starts at (i >> bshift) * brow + (i & bmask), component c
  // adds c * cstride. AoS keeps bshift = bmask = 0 and brow = dim, so
  // the address math collapses to the legacy i * dim + c.
  int bshift = 0;
  lidx_t bmask = 0;
  lidx_t cstride = 1;
  std::size_t brow = 1;

  void bind_layout(const mesh::DatLayout& lay) {
    dim = lay.dim;
    bshift = lay.bshift;
    bmask = lay.bmask;
    cstride = lay.cstride;
    brow = lay.brow;
  }
};

/// A fully-resolved loop ready to execute (or be captured by a chain).
/// The kernel is reachable only through region bodies: one type-erased
/// call covers a whole index range (contiguous fast path) or a gathered
/// index list, so per-element dispatch cost is amortised away and arg
/// resolution is hoisted into the generated batch loop.
struct LoopRecord {
  std::string name;
  mesh::set_id set = -1;
  LoopSpec spec;                    ///< structural view for inspection.
  std::vector<Arg> args;            ///< original descriptors.
  std::vector<ResolvedArg> rargs;   ///< iteration-time pointers.
  std::function<void(lidx_t, lidx_t)> range_body;  ///< [begin, end).
  std::function<void(const lidx_t*, std::size_t)> list_body;
};

void raise_out_of_region(const char* loop_name);

/// Resolves one argument at iteration `i`. Inline so the batch loops in
/// invoke_kernel_range/_list keep it out of the per-element path. The
/// shift/mask element addressing is division-free for every layout; for
/// AoS it constant-folds to the legacy base + i * dim.
inline ElemRef resolve_arg(const ResolvedArg& a, lidx_t i, bool validate,
                           const char* loop_name = "") {
  if (a.is_gbl) return {a.base, 1};
  lidx_t t = i;
  if (a.map_targets != nullptr) {
    t = a.map_targets[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(a.arity) +
                      static_cast<std::size_t>(a.idx)];
    if (validate && t == kInvalidLocal) raise_out_of_region(loop_name);
  }
  return {a.base + static_cast<std::size_t>(t >> a.bshift) * a.brow +
              static_cast<std::size_t>(t & a.bmask),
          a.cstride};
}

/// Batched dispatch over a contiguous iteration range: argument state is
/// copied into locals once per region, then the kernel runs the whole
/// range inside one type-erased call. Direct args reduce to
/// base-pointer + stride walks the optimiser can vectorise around;
/// indirect args resolve their map row inside the batch loop.
template <typename K, std::size_t... I>
void invoke_kernel_range(const K& k, const std::vector<ResolvedArg>& rargs,
                         lidx_t begin, lidx_t end, bool validate,
                         const char* name, std::index_sequence<I...>) {
  const ResolvedArg a[sizeof...(I)] = {rargs[I]...};
  for (lidx_t i = begin; i < end; ++i)
    k(resolve_arg(a[I], i, validate, name)...);
}

/// Batched dispatch over a gathered index list (exec-halo iterations).
template <typename K, std::size_t... I>
void invoke_kernel_list(const K& k, const std::vector<ResolvedArg>& rargs,
                        const lidx_t* idx, std::size_t n, bool validate,
                        const char* name, std::index_sequence<I...>) {
  const ResolvedArg a[sizeof...(I)] = {rargs[I]...};
  for (std::size_t j = 0; j < n; ++j) {
    const lidx_t i = idx[j];
    k(resolve_arg(a[I], i, validate, name)...);
  }
}
}  // namespace detail

/// One rank's view of the World inside the SPMD function.
class Runtime {
public:
  rank_t rank() const;
  int nranks() const;
  const mesh::MeshDef& mesh() const;

  Set set(const std::string& name) const;
  Map map(const std::string& name) const;
  Dat dat(const std::string& name) const;
  Set set(mesh::set_id id) const { return Set{id}; }
  Dat dat(mesh::dat_id id) const { return Dat{id}; }

  /// Local (renumbered) data array of a dat on this rank; element order
  /// per the halo plan, storage order per dat_layout(d). Intended for
  /// initialization and inspection in tests.
  double* dat_data(Dat d);
  const halo::SetLayout& layout(Set s) const;
  /// Storage descriptor of a dat's rank-local array (AoS unless the
  /// WorldConfig::layout selects otherwise).
  const mesh::DatLayout& dat_layout(Dat d) const;

  /// Executes (or captures, inside a chain) one parallel loop.
  template <typename Kernel, typename... Args>
  void par_loop(const std::string& name, Set s, Kernel&& kernel,
                Args... args) {
    static_assert(sizeof...(Args) > 0, "par_loop needs at least one arg");
    detail::LoopRecord rec =
        make_record(name, s, std::vector<Arg>{args...});
    const std::vector<detail::ResolvedArg>& ra = record_args(rec);
    auto kf = std::forward<Kernel>(kernel);
    const bool validate = validation_enabled();
    set_bodies(
        rec,
        [kf, ra, validate, name](lidx_t begin, lidx_t end) {
          detail::invoke_kernel_range(kf, ra, begin, end, validate,
                                      name.c_str(),
                                      std::index_sequence_for<Args...>{});
        },
        [kf, ra, validate, name](const lidx_t* idx, std::size_t n) {
          detail::invoke_kernel_list(kf, ra, idx, n, validate, name.c_str(),
                                     std::index_sequence_for<Args...>{});
        });
    submit(std::move(rec));
  }

  /// Brackets a loop-chain. If the chain is enabled in the World's
  /// ChainConfig, loops between begin/end are captured and executed with
  /// the CA back-end (Alg 2); otherwise they run as standard OP2 loops.
  void chain_begin(const std::string& name);
  void chain_end();

  /// Direct access to this rank's communicator (collectives, barrier).
  sim::Comm& comm();
  void barrier();

  /// Drains deferred work now: a partially-filled temporal tile window
  /// (executed per-invocation) and, in lazy mode, any queued loose
  /// loops. No-op when nothing is queued.
  void flush();

private:
  friend class World;
  Runtime(World* world, detail::RankState* state);

  detail::LoopRecord make_record(const std::string& name, Set s,
                                 std::vector<Arg> args);
  const std::vector<detail::ResolvedArg>& record_args(
      const detail::LoopRecord& rec) const;
  void set_bodies(detail::LoopRecord& rec,
                  std::function<void(lidx_t, lidx_t)> range_body,
                  std::function<void(const lidx_t*, std::size_t)> list_body);
  void submit(detail::LoopRecord rec);
  bool validation_enabled() const;

  World* world_;
  detail::RankState* state_;
};

struct WorldConfig {
  int nranks = 4;
  partition::Kind partitioner = partition::Kind::KWay;
  /// Set partitioned directly; others derive through maps. Empty = set 0.
  std::string seed_set;
  int halo_depth = 2;
  sim::CostModel cost{};
  /// Transport layer: backend selection (sim fabric or MPI) plus the
  /// multi-rail striping and persistent-channel knobs. The defaults —
  /// sim backend, 1 rail, non-persistent — keep every exchange on the
  /// legacy single-isend path, bitwise-identical to earlier builds.
  sim::TransportConfig transport{};
  /// Per-iteration checks that every touched element is locally present.
  bool validate = false;
  /// Debug/equivalence knob: invoke the region bodies one element at a
  /// time, reproducing the per-element dispatch order of the classic
  /// executor exactly. Iteration order is identical either way (regions
  /// run their elements in sequence), so results must match bitwise —
  /// asserted by the executor-equivalence tests.
  bool serial_dispatch = false;
  /// Intra-rank shared-memory parallelism: each rank runs its regions on
  /// a worker pool of this width. 1 (default) keeps the single-threaded
  /// dispatch, bitwise-identical to previous behaviour. With > 1, direct
  /// regions split into contiguous chunks and indirect-write loops run
  /// as colour-ordered sweeps (mesh/colouring); results are deterministic
  /// for any width > 1 (colour classes are conflict-free, so intra-class
  /// order cannot affect any memory cell) but reassociate increment sums
  /// relative to width 1. Ignored when serial_dispatch is set. Loops
  /// reducing into globals execute serially regardless.
  int threads_per_rank = 1;
  /// Locality layer (mesh/reorder + halo/reorder): cache-aware
  /// renumbering of each rank's local elements within the halo-plan
  /// layers, plus locality-aware (blocked) colouring of threaded
  /// indirect sweeps. Off by default — the runtime is then
  /// bitwise-identical to the un-reordered build. With it on, direct
  /// loops stay exact (same arithmetic per element) while loops that
  /// reduce over elements (indirect INC, global INC) reassociate their
  /// sums, like any other iteration-order change.
  mesh::ReorderConfig reorder{};
  /// SIMD data plane: per-dat storage layout of the rank-local arrays
  /// (mesh/layout). The default — pure AoS — is bitwise-identical to the
  /// legacy runtime for every executor, thread width and reorder
  /// setting. SoA / AoSoA change only how elements are stored inside a
  /// rank: the global mesh arrays, fetch_dat / reset_dat and the VTK
  /// output keep the classic row layout (transposed at the boundary),
  /// and per-element arithmetic is unchanged, so direct loops stay exact
  /// under any layout. Composes with `reorder`: renumbering happens
  /// before the layout transpose, so blocked runs land in consecutive
  /// lanes of the same AoSoA block.
  mesh::LayoutConfig layout{};
  /// Task-graph executor: replaces the per-colour pool barriers of
  /// threaded indirect sweeps with a dependency-driven task graph over
  /// contiguous element blocks (one task per block; block A waits only
  /// on its conflicting lower-coloured neighbours, so fast blocks stream
  /// ahead instead of idling at colour boundaries), executed by a
  /// work-stealing pool. Halo pack/unpack staging folds into the same
  /// graph: pack tasks run as roots and only the blocks that write
  /// packed rows wait on them, so packing overlaps core compute.
  /// Determinism: each element is written by exactly one task and every
  /// conflicting block pair is ordered by its static colours, so results
  /// are bitwise-identical at every pool width (including 1) — asserted
  /// by the schedule-stress suite. Off by default; the legacy
  /// colour-barrier sweep remains the fallback. Indirect-INC sums
  /// reassociate relative to taskgraph-off runs (blocked colouring),
  /// like any other iteration-order change. Ignored under
  /// serial_dispatch.
  bool taskgraph = false;
  /// Elements per task block under `taskgraph` (the conflict and
  /// scheduling granularity). Clamped to >= 2; defaults match the
  /// locality layer's colour_block.
  lidx_t taskgraph_block = 256;
  /// Device-resident execution (gpu/device_space): each rank's dat
  /// arrays become the device side of an explicit host/device mirror,
  /// halo staging is metered as D2H/H2D traffic, indirect-write loops
  /// run the hierarchical two-level colouring of arXiv:1802.03749
  /// (blocks coloured for inter-block conflicts, elements coloured
  /// within a block through a simulated shared-memory staging buffer),
  /// and every loop/chain epoch charges a staged or 3-stage-pipelined
  /// PCIe makespan into LoopMetrics::device_seconds. Off by default —
  /// the runtime is then bitwise-identical to the device-free build.
  /// With it on, values still match the host executors: direct loops
  /// bitwise, indirect-INC loops up to sum reassociation (the
  /// hierarchical sweep is another iteration order) — asserted by the
  /// equivalence suite.
  gpu::DeviceConfig device{};
  ChainConfig chains{};
  /// Lazy evaluation (the paper's future-work automation): par_loops are
  /// queued instead of executed, and flushed as an automatically-formed
  /// CA chain at the next synchronisation point (global reduction,
  /// explicit chain_begin, barrier/collective, dat access, or the end of
  /// the SPMD function). Chains that the inspector rejects or that need
  /// more halo depth than available fall back to per-loop execution.
  /// Caveat: deferred loops hold pointers to arg_gbl READ buffers, which
  /// must stay alive until the next synchronisation point.
  bool lazy = false;
  /// Temporal chain tiling (the OPS cross-invocation tiling of
  /// arXiv:1704.00693): fuse this many *consecutive* invocations of each
  /// enabled chain into a single CA epoch — one grouped pre-exchange, the
  /// whole k·L unrolled loop sequence with per-iteration slice shrinking,
  /// one result epoch. 1 (default) keeps the per-invocation executor,
  /// bitwise-identical to previous builds. Per-chain `tile=<k>` entries in
  /// the ChainConfig override this value. Any intervening work (a loose
  /// par_loop, a collective, dat access) flushes the partial tile, so the
  /// fusion only engages on genuinely back-to-back invocations. Tiles
  /// whose fused window needs more halo depth than the plan provides (or
  /// than the chain's depth cap allows) fall back loudly to
  /// per-invocation execution. The halo plan is built with depth
  /// halo_depth * max(tile over config and chain entries) so fused
  /// windows have layers to grow into.
  int tile = 1;
};

/// The simulated distributed machine: owns the mesh, partition, halo plan
/// and per-rank state, and runs SPMD functions over rank threads.
class World {
public:
  World(mesh::MeshDef mesh, WorldConfig cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `spmd` once on every rank (one thread per rank). May be called
  /// repeatedly; dat values persist between runs. Exceptions thrown by
  /// any rank are collected and rethrown on the calling thread.
  ///
  /// Process-per-rank SPMD mode: when the transport is the real MPI
  /// backend (launched under mpirun with -DOP2CA_MPI=ON), each MPI
  /// process drives exactly one rank — run executes only the local
  /// rank's SPMD function inline on the calling thread (no rank
  /// threads), and fetch_dat / loop_metrics / chain_metrics /
  /// write_metrics_csv become collective calls that reduce over the
  /// backend so every process sees the same merged result the threaded
  /// World reports. nranks must equal MPI_COMM_WORLD's size (the
  /// MpiBackend constructor errors loudly otherwise).
  void run(const std::function<void(Runtime&)>& spmd);

  /// The one rank this process drives in process-per-rank SPMD mode;
  /// -1 when every rank is in-process (sim fabric, mpi-stub).
  rank_t spmd_rank() const { return spmd_rank_; }

  /// Gathers the owned values of a dat into global element order.
  std::vector<double> fetch_dat(mesh::dat_id d) const;
  /// Overwrites a dat's values everywhere (owned + halo copies refreshed).
  void reset_dat(mesh::dat_id d, const std::vector<double>& global_data);

  const mesh::MeshDef& mesh() const { return mesh_; }
  const WorldConfig& config() const { return cfg_; }
  const partition::Partition& partition() const { return part_; }
  const halo::HaloPlan& plan() const { return plan_; }
  /// Per-(rank, set) permutations the locality layer applied (empty
  /// permutations when reordering is off). For tests and tools.
  const halo::ReorderResult& reorder_result() const { return reorder_; }

  /// The transport backend every exchange flows over. For benches and
  /// fault-injection tests (e.g. sim::Transport::set_post_delay wire
  /// latency injection); application code reaches the transport through
  /// each rank's Comm.
  sim::TransportBackend& transport() { return *transport_; }

  /// Metrics merged over ranks, keyed by loop / chain name.
  std::map<std::string, LoopMetrics> loop_metrics() const;
  std::map<std::string, LoopMetrics> chain_metrics() const;
  void clear_metrics();
  /// Writes every loop and chain metric as CSV (one row per name).
  void write_metrics_csv(std::ostream& os) const;

private:
  friend class Runtime;
  friend struct detail::RankState;

  /// The Comm of the rank this process drives (SPMD mode) — the channel
  /// the cross-process reductions in fetch_dat / metrics run over.
  sim::Comm& spmd_comm() const;
  /// Merges this process's local metric maps, then (SPMD mode) the
  /// serialized maps of every peer process, in rank order.
  std::map<std::string, LoopMetrics> merged_metrics(
      bool chains) const;

  mesh::MeshDef mesh_;
  WorldConfig cfg_;
  partition::Partition part_;
  halo::HaloPlan plan_;
  halo::ReorderResult reorder_;
  std::unique_ptr<sim::TransportBackend> transport_;
  /// One state per rank in-process; in SPMD mode only ranks_[spmd_rank_]
  /// is non-null (this process owns exactly one rank's data).
  std::vector<std::unique_ptr<detail::RankState>> ranks_;
  rank_t spmd_rank_ = -1;
};

}  // namespace op2ca::core
