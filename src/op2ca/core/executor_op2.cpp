// Classic OP2 executor — Alg 1 of the paper.
//
// Per loop: post non-blocking exchanges of the level-1 halos of every dat
// that is read and stale (two messages per dat per neighbour: exec and
// nonexec — the 2 d p m^1 term of Eq (1)); execute the core while they
// are in flight; wait; execute the owned boundary and, for loops with
// indirect writes, the level-1 import-exec halo; reduce globals; mark
// written dats' halos stale.
//
// The per-dat message lists are flattened into a cached LoopExchange on
// first use, and staging buffers cycle through the rank's BufferPool (the
// zero-copy isend hands each send buffer to the receiver, which releases
// it back into its own pool after unpacking) — steady-state loops walk no
// maps and allocate nothing.
#include <algorithm>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::core::detail {
namespace {

/// Dats whose level-1 halo must be refreshed before this loop runs.
std::vector<mesh::dat_id> dats_needing_exchange(RankState& st,
                                                const LoopRecord& rec) {
  const bool exec_halo = loop_executes_exec_halo(rec);
  std::vector<mesh::dat_id> out;
  for (const auto& [dat, m] : merge_loop_accesses(rec.spec)) {
    if (!reads_value(m.mode)) continue;
    // Direct reads only touch halo elements when the loop executes them.
    if (!m.indirect && !exec_halo) continue;
    if (st.rank_dat(dat).fresh_depth >= 1) continue;
    out.push_back(dat);
  }
  return out;
}

/// Flattens dat `d`'s level-1 message lists (built once, cached).
LoopExchange& loop_exchange(RankState& st, mesh::dat_id d,
                            std::int64_t* plan_builds) {
  std::unique_ptr<LoopExchange>& slot =
      st.loop_exchanges[static_cast<std::size_t>(d)];
  if (slot != nullptr) return *slot;

  const mesh::DatDef& dd = st.world->mesh().dat(d);
  const int dim = dd.dim;
  const halo::NeighborLists& nl =
      st.rank_plan().lists[static_cast<std::size_t>(dd.set)];
  const sim::tag_t tag_exec = kLoopTagBase + d * 2;
  const sim::tag_t tag_nonexec = kLoopTagBase + d * 2 + 1;

  slot = std::make_unique<LoopExchange>();
  auto add = [dim](std::vector<LoopExchange::Segment>* segs,
                   const std::map<rank_t, std::vector<LIdxVec>>& tab,
                   sim::tag_t tag) {
    for (const auto& [q, layers] : tab) {
      const LIdxVec& idx = layers[0];  // level 1
      if (idx.empty()) continue;
      segs->push_back({q, tag, &idx,
                       idx.size() * static_cast<std::size_t>(dim) *
                           sizeof(double)});
    }
  };
  add(&slot->sends, nl.exp_exec, tag_exec);
  add(&slot->sends, nl.exp_nonexec, tag_nonexec);
  add(&slot->recvs, nl.imp_exec, tag_exec);
  add(&slot->recvs, nl.imp_nonexec, tag_nonexec);
  slot->recv_bufs.resize(slot->recvs.size());

  // Persistent channels: one slot per cached segment, keyed by the dat
  // (both ends derive the identical hash — the exchange is invalidated
  // with the LoopExchange cache itself). Segment order is (exec,
  // nonexec) x neighbour-sorted on both ranks, so the k-th send-side
  // open pairs with the peer's k-th recv-side open.
  if (st.comm.transport_config().persistent) {
    const std::uint64_t phash =
        0x4c4f4f50ull ^
        (static_cast<std::uint64_t>(d) * 0x9e3779b97f4a7c15ULL);
    std::vector<sim::ChannelSpec> specs;
    for (const LoopExchange::Segment& seg : slot->sends)
      specs.push_back({seg.q, /*sender=*/true, seg.bytes, phash});
    for (const LoopExchange::Segment& seg : slot->recvs)
      specs.push_back({seg.q, /*sender=*/false, seg.bytes, phash});
    std::vector<sim::Channel> chans = st.comm.open_channels(specs);
    slot->send_channels.assign(
        std::make_move_iterator(chans.begin()),
        std::make_move_iterator(chans.begin() +
                                static_cast<std::ptrdiff_t>(
                                    slot->sends.size())));
    slot->recv_channels.assign(
        std::make_move_iterator(chans.begin() +
                                static_cast<std::ptrdiff_t>(
                                    slot->sends.size())),
        std::make_move_iterator(chans.end()));
  }
  *plan_builds += 1;
  return *slot;
}

}  // namespace

LoopMetrics execute_loop_op2(RankState& st, const LoopRecord& rec) {
  WallTimer timer;
  const halo::SetLayout& lay = st.layout(rec.set);
  const mesh::MeshDef& mesh = st.world->mesh();
  st.comm.stats().reset_epoch();
  const std::int64_t allocs_before = st.staging.allocations();
  const std::int64_t regions_before = st.dispatch_regions;
  const std::int64_t chunks_before = st.dispatch_chunks;
  const double busy_before = st.pool ? st.pool->busy_seconds() : 0.0;
  const std::int64_t tasks_before = st.dispatch_tasks;
  const std::int64_t steals_before = st.dispatch_steals;
  const double dep_wait_before = st.dispatch_dep_wait;
  st.dispatch_max_colours = 0;
  std::int64_t plan_builds = 0;

  // Snapshot global-INC buffers before any iteration runs.
  GblIncState snap = snapshot_gbl_incs(rec);

  // Device epoch: upload every accessed mirror that is stale (fully-
  // staged policy re-moves valid ones too and counts the redundancy).
  // The per-epoch transfer ledger opens here and closes after the halo
  // compute, charging the staged or pipelined PCIe makespan.
  gpu::DeviceSpace* dev = st.device.get();
  gpu::DeviceStats dev_before;
  if (dev != nullptr) {
    dev->begin_epoch();
    dev_before = dev->stats();
    for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
      dev->to_device(dat);
  }

  // -- 1. Post halo exchanges (MPI_Isend / MPI_Irecv of Alg 1). --------
  const std::vector<mesh::dat_id> exch = dats_needing_exchange(st, rec);
  std::vector<sim::Request>& requests = st.loop_requests;
  requests.clear();

  std::int64_t halo_elems = 0;
  std::vector<PackTask> packs;
  const bool fold = st.taskgraph && st.pool != nullptr;
  if (fold) {
    // Taskgraph mode: packing becomes graph tasks inside the core epoch.
    // Buffers come out of the (not thread-safe) pool on the rank thread
    // and move into the closures; request slots are preallocated so each
    // pack writes its isend request without racing the vector. Receives
    // stay on the rank thread (the transport buffers sends regardless).
    std::size_t nslots = 0;
    for (mesh::dat_id d : exch) {
      LoopExchange& ex = loop_exchange(st, d, &plan_builds);
      nslots += ex.sends.size() + ex.recvs.size();
    }
    requests.assign(nslots, sim::Request{});
    std::size_t slot = 0;
    for (mesh::dat_id d : exch) {
      RankDat& rd = st.rank_dat(d);
      LoopExchange& ex = *st.loop_exchanges[static_cast<std::size_t>(d)];
      for (std::size_t si = 0; si < ex.sends.size(); ++si) {
        const LoopExchange::Segment& seg = ex.sends[si];
        halo_elems += static_cast<std::int64_t>(seg.idx->size());
        // Device-side pack: export rows leave device memory for the
        // transport staging (metered here on the rank thread; the pack
        // body itself may run on any worker).
        if (dev != nullptr) dev->stage_out(seg.bytes);
        sim::Request* out = &requests[slot++];
        PackTask p;
        p.reads.push_back({d, seg.idx});
        p.body = [&st, &rd, &ex, &seg, si, out,
                  buf = st.staging.take(seg.bytes)]() mutable {
          halo::gather_region(rd.data.data(), &rd.layout, rd.dim, *seg.idx,
                              buf.data());
          *out = !ex.send_channels.empty()
                     ? st.comm.channel_isend(ex.send_channels[si],
                                             std::move(buf))
                     : st.comm.stripe_isend(seg.q, seg.tag, std::move(buf));
        };
        packs.push_back(std::move(p));
      }
      for (std::size_t i = 0; i < ex.recvs.size(); ++i)
        requests[slot++] =
            !ex.recv_channels.empty()
                ? st.comm.channel_irecv(ex.recv_channels[i],
                                        &ex.recv_bufs[i])
                : st.comm.stripe_irecv(ex.recvs[i].q, ex.recvs[i].tag,
                                       &ex.recv_bufs[i], ex.recvs[i].bytes);
    }
  } else {
    for (mesh::dat_id d : exch) {
      RankDat& rd = st.rank_dat(d);
      LoopExchange& ex = loop_exchange(st, d, &plan_builds);
      for (std::size_t si = 0; si < ex.sends.size(); ++si) {
        const LoopExchange::Segment& seg = ex.sends[si];
        ByteBuf buf = st.staging.take(seg.bytes);
        halo::gather_region(rd.data.data(), &rd.layout, rd.dim, *seg.idx,
                            buf.data());
        halo_elems += static_cast<std::int64_t>(seg.idx->size());
        if (dev != nullptr) dev->stage_out(seg.bytes);  // device-side pack
        requests.push_back(
            !ex.send_channels.empty()
                ? st.comm.channel_isend(ex.send_channels[si],
                                        std::move(buf))
                : st.comm.stripe_isend(seg.q, seg.tag, std::move(buf)));
      }
      for (std::size_t i = 0; i < ex.recvs.size(); ++i)
        requests.push_back(
            !ex.recv_channels.empty()
                ? st.comm.channel_irecv(ex.recv_channels[i],
                                        &ex.recv_bufs[i])
                : st.comm.stripe_irecv(ex.recvs[i].q, ex.recvs[i].tag,
                                       &ex.recv_bufs[i], ex.recvs[i].bytes));
    }
  }

  const double t_pack = timer.elapsed();

  // -- 2. Core iterations overlap with the exchange (taskgraph mode also
  //       runs the pack tasks inside this epoch). -----------------------
  const lidx_t core_end = lay.core_count(1);
  std::int64_t core_iters =
      fold ? run_range_tasks(st, rec, 0, core_end, packs)
           : run_range(st, rec, 0, core_end);
  const double t_core = timer.elapsed();

  // -- 3. MPI_Wait + unpack. -------------------------------------------
  st.comm.wait_all(requests);
  const double t_wait = timer.elapsed();

  for (mesh::dat_id d : exch) {
    RankDat& rd = st.rank_dat(d);
    LoopExchange& ex = *st.loop_exchanges[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < ex.recvs.size(); ++i) {
      const LoopExchange::Segment& seg = ex.recvs[i];
      ByteBuf& buf = ex.recv_bufs[i];
      OP2CA_ASSERT(buf.size() == seg.bytes,
                   "level-1 halo payload size mismatch");
      const std::size_t used = halo::unpack_region(
          rd.data.data(), &rd.layout, rd.dim, *seg.idx, buf, 0);
      OP2CA_ASSERT(used == buf.size(), "level-1 halo unpack short");
      if (dev != nullptr) dev->stage_in(seg.bytes);  // device-side unpack
      st.staging.release(std::move(buf));
    }
    rd.fresh_depth = std::max(rd.fresh_depth, 1);
  }
  const double t_unpack = timer.elapsed();

  // -- 4. Owned boundary + level-1 import-exec halo. --------------------
  std::int64_t halo_iters = run_range(st, rec, core_end, lay.num_owned);
  if (loop_executes_exec_halo(rec)) {
    const auto [b, e] = lay.exec_layer(1);
    halo_iters += run_range(st, rec, b, e);
  }
  const double t_halo = timer.elapsed();

  // Close the device epoch: written mirrors turn DeviceFresh and the
  // ledger charges this loop's (transfers, kernel seconds) makespan.
  double device_span = 0;
  if (dev != nullptr) {
    for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
      if (writes(m.mode)) dev->device_wrote(dat);
    device_span =
        dev->end_epoch((t_core - t_pack) + (t_halo - t_unpack));
  }

  // -- 5. Global reductions (synchronisation point). --------------------
  if (!snap.snapshots.empty()) {
    // Deltas were accumulated over owned iterations only (no exec halo
    // runs for gbl-INC loops; enforced at submit).
    reduce_gbl_incs(st, rec, snap);
  }

  // -- 6. Dirty bits: written dats' halo copies are stale. --------------
  for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
    if (writes(m.mode)) st.rank_dat(dat).fresh_depth = 0;

  LoopMetrics metrics;
  metrics.calls = 1;
  metrics.core_iters = core_iters;
  metrics.halo_iters = halo_iters;
  metrics.msgs = st.comm.stats().epoch_msgs_sent;
  metrics.bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_msg_bytes = st.comm.stats().epoch_max_msg_bytes;
  metrics.max_rank_bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_neighbors =
      static_cast<int>(st.comm.stats().epoch_neighbors.size());
  metrics.wall_seconds = timer.elapsed();
  metrics.pack_seconds = t_pack;
  metrics.core_seconds = t_core - t_pack;
  metrics.wait_seconds = t_wait - t_core;
  metrics.unpack_seconds = t_unpack - t_wait;
  metrics.halo_seconds = metrics.wall_seconds - t_unpack;
  metrics.dispatch_regions = st.dispatch_regions - regions_before;
  metrics.plan_builds = plan_builds;
  metrics.staging_allocs = st.staging.allocations() - allocs_before;
  metrics.chunks = st.dispatch_chunks - chunks_before;
  metrics.max_colours = st.dispatch_max_colours;
  metrics.busy_seconds =
      st.pool ? st.pool->busy_seconds() - busy_before : 0.0;
  metrics.tasks = st.dispatch_tasks - tasks_before;
  metrics.steals = st.dispatch_steals - steals_before;
  metrics.dep_wait_seconds = st.dispatch_dep_wait - dep_wait_before;
  const mesh::OrderingQuality& oq = loop_quality(st, rec);
  metrics.gather_span = oq.gather_span;
  metrics.reuse_gap = oq.reuse_gap;
  metrics.halo_elems = halo_elems;
  metrics.numa_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Numa)];
  metrics.node_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Node)];
  metrics.net_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Net)];
  metrics.stripes = st.comm.stats().epoch_stripes;
  if (dev != nullptr) {
    const gpu::DeviceStats& ds = dev->stats();
    metrics.h2d_bytes = ds.h2d_bytes - dev_before.h2d_bytes;
    metrics.d2h_bytes = ds.d2h_bytes - dev_before.d2h_bytes;
    metrics.device_transfers =
        (ds.h2d_transfers - dev_before.h2d_transfers) +
        (ds.d2h_transfers - dev_before.d2h_transfers);
    metrics.device_seconds = device_span;
  }
  for (const Arg& a : rec.args)
    if (a.kind != Arg::Kind::Gbl)
      metrics.layout_code =
          std::max(metrics.layout_code,
                   static_cast<int>(st.rank_dat(a.dat).layout.kind));

  LoopMetrics& agg = st.loop_metrics[rec.name];
  const std::int64_t prev_calls = agg.calls;
  agg.merge_from(metrics);
  agg.calls = prev_calls + 1;
  return metrics;
}

}  // namespace op2ca::core::detail
