// Classic OP2 executor — Alg 1 of the paper.
//
// Per loop: post non-blocking exchanges of the level-1 halos of every dat
// that is read and stale (two messages per dat per neighbour: exec and
// nonexec — the 2 d p m^1 term of Eq (1)); execute the core while they
// are in flight; wait; execute the owned boundary and, for loops with
// indirect writes, the level-1 import-exec halo; reduce globals; mark
// written dats' halos stale.
#include <algorithm>
#include <deque>
#include <tuple>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::core::detail {
namespace {

/// Dats whose level-1 halo must be refreshed before this loop runs.
std::vector<mesh::dat_id> dats_needing_exchange(RankState& st,
                                                const LoopRecord& rec) {
  const bool exec_halo = loop_executes_exec_halo(rec);
  std::vector<mesh::dat_id> out;
  for (const auto& [dat, m] : merge_loop_accesses(rec.spec)) {
    if (!reads_value(m.mode)) continue;
    // Direct reads only touch halo elements when the loop executes them.
    if (!m.indirect && !exec_halo) continue;
    if (st.rank_dat(dat).fresh_depth >= 1) continue;
    out.push_back(dat);
  }
  return out;
}

}  // namespace

LoopMetrics execute_loop_op2(RankState& st, const LoopRecord& rec) {
  WallTimer timer;
  const halo::RankPlan& rp = st.rank_plan();
  const halo::SetLayout& lay = st.layout(rec.set);
  const mesh::MeshDef& mesh = st.world->mesh();
  st.comm.stats().reset_epoch();

  // Snapshot global-INC buffers before any iteration runs.
  GblIncState snap = snapshot_gbl_incs(rec);

  // -- 1. Post halo exchanges (MPI_Isend / MPI_Irecv of Alg 1). --------
  const std::vector<mesh::dat_id> exch = dats_needing_exchange(st, rec);
  std::vector<sim::Request> requests;
  // deque: irecv stores a pointer to its buffer, so no reallocation.
  std::deque<std::vector<std::byte>> recv_buffers;
  // (dat, neighbour, exec?) per recv buffer, to unpack after the wait.
  std::vector<std::tuple<mesh::dat_id, rank_t, bool>> recv_info;

  for (mesh::dat_id d : exch) {
    const mesh::DatDef& dd = mesh.dat(d);
    RankDat& rd = st.rank_dat(d);
    const halo::NeighborLists& nl =
        rp.lists[static_cast<std::size_t>(dd.set)];
    const sim::tag_t tag_exec = kLoopTagBase + d * 2;
    const sim::tag_t tag_nonexec = kLoopTagBase + d * 2 + 1;

    auto send_lists = [&](const std::map<rank_t, std::vector<LIdxVec>>& tab,
                          sim::tag_t tag) {
      for (const auto& [q, layers] : tab) {
        const LIdxVec& idx = layers[0];  // level 1
        if (idx.empty()) continue;
        std::vector<std::byte> buf;
        halo::pack_rows(rd.data.data(), rd.dim, idx, &buf);
        requests.push_back(st.comm.isend(q, tag, buf));
      }
    };
    auto recv_lists = [&](const std::map<rank_t, std::vector<LIdxVec>>& tab,
                          sim::tag_t tag, bool exec) {
      for (const auto& [q, layers] : tab) {
        if (layers[0].empty()) continue;
        recv_buffers.emplace_back();
        recv_info.emplace_back(d, q, exec);
        requests.push_back(st.comm.irecv(q, tag, &recv_buffers.back()));
      }
    };
    send_lists(nl.exp_exec, tag_exec);
    send_lists(nl.exp_nonexec, tag_nonexec);
    recv_lists(nl.imp_exec, tag_exec, true);
    recv_lists(nl.imp_nonexec, tag_nonexec, false);
  }

  const double t_pack = timer.elapsed();

  // -- 2. Core iterations overlap with the exchange. -------------------
  const lidx_t core_end = lay.core_count(1);
  std::int64_t core_iters = run_range(rec, 0, core_end);
  const double t_core = timer.elapsed();

  // -- 3. MPI_Wait + unpack. -------------------------------------------
  st.comm.wait_all(requests);
  for (std::size_t i = 0; i < recv_buffers.size(); ++i) {
    const auto [d, q, exec] = recv_info[i];
    const mesh::DatDef& dd = mesh.dat(d);
    RankDat& rd = st.rank_dat(d);
    const halo::NeighborLists& nl =
        rp.lists[static_cast<std::size_t>(dd.set)];
    const auto& tab = exec ? nl.imp_exec : nl.imp_nonexec;
    const LIdxVec& idx = tab.at(q)[0];
    const std::size_t used =
        halo::unpack_rows(rd.data.data(), rd.dim, idx, recv_buffers[i], 0);
    OP2CA_ASSERT(used == recv_buffers[i].size(),
                 "level-1 halo payload size mismatch");
  }
  for (mesh::dat_id d : exch)
    st.rank_dat(d).fresh_depth = std::max(st.rank_dat(d).fresh_depth, 1);

  const double t_wait = timer.elapsed();

  // -- 4. Owned boundary + level-1 import-exec halo. --------------------
  std::int64_t halo_iters = run_range(rec, core_end, lay.num_owned);
  if (loop_executes_exec_halo(rec)) {
    const auto [b, e] = lay.exec_layer(1);
    halo_iters += run_range(rec, b, e);
  }

  // -- 5. Global reductions (synchronisation point). --------------------
  if (!snap.snapshots.empty()) {
    // Deltas were accumulated over owned iterations only (no exec halo
    // runs for gbl-INC loops; enforced at submit).
    reduce_gbl_incs(st, rec, snap);
  }

  // -- 6. Dirty bits: written dats' halo copies are stale. --------------
  for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
    if (writes(m.mode)) st.rank_dat(dat).fresh_depth = 0;

  LoopMetrics metrics;
  metrics.calls = 1;
  metrics.core_iters = core_iters;
  metrics.halo_iters = halo_iters;
  metrics.msgs = st.comm.stats().epoch_msgs_sent;
  metrics.bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_msg_bytes = st.comm.stats().epoch_max_msg_bytes;
  metrics.max_rank_bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_neighbors =
      static_cast<int>(st.comm.stats().epoch_neighbors.size());
  metrics.wall_seconds = timer.elapsed();
  metrics.pack_seconds = t_pack;
  metrics.core_seconds = t_core - t_pack;
  metrics.wait_seconds = t_wait - t_core;
  metrics.halo_seconds = metrics.wall_seconds - t_wait;

  LoopMetrics& agg = st.loop_metrics[rec.name];
  const std::int64_t prev_calls = agg.calls;
  agg.merge_from(metrics);
  agg.calls = prev_calls + 1;
  return metrics;
}

}  // namespace op2ca::core::detail
