// CA chain configuration (paper Section 3.4): the only input the code
// generator needs beyond the application source is a configuration file
// listing the loop-chains to execute with the CA back-end — chain name,
// loop count and maximum halo extension. Chains not listed (or disabled)
// run as standard per-loop OP2 execution.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace op2ca::core {

class ChainConfig {
public:
  struct Entry {
    bool enabled = true;
    int loops = 0;      ///< expected loop count (0 = unchecked).
    int max_depth = 0;  ///< cap on halo extension (0 = uncapped).
    int tile = 0;       ///< temporal tile size (0 = inherit WorldConfig::tile).
  };

  /// Parses a config file. Format, one directive per line:
  ///   chain <name> [loops=<n>] [depth=<d>] [tile=<k>] [enabled=0|1]
  ///   default on|off            # CA for unlisted chains (default: off)
  ///   # comments and blank lines ignored
  static ChainConfig load(const std::string& path);
  static ChainConfig parse(std::istream& in);

  /// Programmatic registration (equivalent to a `chain` line).
  void enable(const std::string& name, int loops = 0, int max_depth = 0,
              int tile = 0);
  void disable(const std::string& name);
  void set_default(bool enabled) { default_enabled_ = enabled; }

  bool enabled(const std::string& name) const;
  /// 0 when the chain has no configured cap.
  int max_depth(const std::string& name) const;
  /// 0 when unchecked.
  int expected_loops(const std::string& name) const;
  /// 0 when the chain inherits WorldConfig::tile.
  int tile(const std::string& name) const;

  const std::map<std::string, Entry>& entries() const { return entries_; }
  bool default_enabled() const { return default_enabled_; }

private:
  std::map<std::string, Entry> entries_;
  bool default_enabled_ = false;
};

}  // namespace op2ca::core
