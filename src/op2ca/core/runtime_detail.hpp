// Internal runtime structures shared by the executors. Not part of the
// public API.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "op2ca/core/runtime.hpp"

namespace op2ca::core::detail {

/// Reserved message tags (user collectives use negative tags; these are
/// distinct positive ranges).
inline constexpr sim::tag_t kChainTag = 512;
inline constexpr sim::tag_t kLoopTagBase = 1024;  // + dat*2 + class.

/// One dat's per-rank storage.
struct RankDat {
  int dim = 0;
  std::vector<double> data;  ///< layout order (owned | exec | nonexec).
  /// Halo layers currently in sync with the owners; 0 = level-1 halo
  /// stale. This generalizes the paper's dirty bit to multi-layer halos.
  int fresh_depth = 0;
};

struct RankState {
  World* world = nullptr;
  rank_t rank = -1;
  sim::Comm comm;
  std::vector<RankDat> dats;

  // Chain capture.
  bool capturing = false;
  std::string chain_name;
  std::vector<LoopRecord> chain_loops;

  // Lazy-evaluation queue (WorldConfig::lazy): loops deferred until the
  // next synchronisation point, then flushed as an auto-formed chain.
  std::vector<LoopRecord> lazy_queue;
  int lazy_flushes = 0;

  // Inspection cache, keyed by chain name.
  std::map<std::string, ChainAnalysis> chain_cache;
  // Per-chain needed import-exec iteration lists (sparse-tiling slice),
  // keyed by chain name.
  std::map<std::string, std::vector<LIdxVec>> chain_exec_lists;

  // Per-rank metrics, merged by the World after each run.
  std::map<std::string, LoopMetrics> loop_metrics;
  std::map<std::string, LoopMetrics> chain_metrics;

  RankState(World* w, sim::Transport& transport, rank_t r);

  const halo::RankPlan& rank_plan() const;
  const halo::SetLayout& layout(mesh::set_id s) const;
  RankDat& rank_dat(mesh::dat_id d);

  /// Re-gathers a dat's local copy from a global array (owned + halos).
  void refresh_dat_from_global(mesh::dat_id d,
                               const std::vector<double>& global_data);
};

/// Executes one loop with the classic OP2 executor (Alg 1). Returns the
/// metrics of this single execution (also accumulated into
/// st.loop_metrics under the loop's name).
LoopMetrics execute_loop_op2(RankState& st, const LoopRecord& rec);

/// Executes a captured chain with the CA executor (Alg 2).
void execute_chain_ca(RankState& st, const std::string& name,
                      std::vector<LoopRecord>& loops);

/// Flushes the lazy queue: >= 2 queued loops become an automatically
/// formed chain executed with CA when the inspector accepts it and the
/// halo plan is deep enough; otherwise (or for a single loop) the queue
/// executes as plain OP2 loops. Chain names are "lazy:<signature>" so
/// repeated program phases reuse cached analyses.
void flush_lazy(RankState& st);

/// Shared: runs `body` over the local index range [begin, end).
inline std::int64_t run_range(const LoopRecord& rec, lidx_t begin,
                              lidx_t end) {
  for (lidx_t i = begin; i < end; ++i) rec.body(i);
  return end > begin ? end - begin : 0;
}

/// True when the loop must redundantly execute import-exec halo layers
/// under owner-compute (it writes through a map).
bool loop_executes_exec_halo(const LoopRecord& rec);

/// Snapshot/restore helpers for global INC arguments.
struct GblIncState {
  std::vector<std::pair<double*, std::vector<double>>> snapshots;
};
GblIncState snapshot_gbl_incs(const LoopRecord& rec);
void reduce_gbl_incs(RankState& st, const LoopRecord& rec,
                     const GblIncState& snap);

}  // namespace op2ca::core::detail
