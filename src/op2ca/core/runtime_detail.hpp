// Internal runtime structures shared by the executors. Not part of the
// public API.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "op2ca/core/runtime.hpp"
#include "op2ca/gpu/device_space.hpp"
#include "op2ca/gpu/hierarchy.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/mesh/colouring.hpp"
#include "op2ca/mesh/reorder.hpp"
#include "op2ca/util/buffer_pool.hpp"
#include "op2ca/util/thread_pool.hpp"

namespace op2ca::core::detail {

/// Reserved message tags (user collectives use negative tags; these are
/// distinct positive ranges).
inline constexpr sim::tag_t kChainTag = 512;
inline constexpr sim::tag_t kLoopTagBase = 1024;  // + dat*2 + class.

/// One dat's per-rank storage.
struct RankDat {
  int dim = 0;
  /// Storage descriptor: element order is always the halo-plan order
  /// (owned | exec | nonexec); `layout` says how those elements are
  /// arranged inside `data` (AoS rows by default, SoA planes / AoSoA
  /// blocks when WorldConfig::layout selects them).
  mesh::DatLayout layout;
  /// 64-byte-aligned backing store, layout.alloc_doubles() long.
  util::AlignedDVec data;
  /// Halo layers currently in sync with the owners; 0 = level-1 halo
  /// stale. This generalizes the paper's dirty bit to multi-layer halos.
  int fresh_depth = 0;
};

/// Cached level-1 exchange of one dat for the classic per-loop executor:
/// the (neighbour, class) walk over the export/import list maps flattened
/// into plain segment arrays, so steady-state loops post their messages
/// with no map lookups. Index lists point into the rank's HaloPlan
/// (stable for the World's lifetime).
struct LoopExchange {
  struct Segment {
    rank_t q = -1;
    sim::tag_t tag = 0;
    const LIdxVec* idx = nullptr;  ///< level-1 rows (exec or nonexec).
    std::size_t bytes = 0;
  };
  std::vector<Segment> sends;
  std::vector<Segment> recvs;
  std::vector<ByteBuf> recv_bufs;  ///< slots, recvs-parallel.
  /// Persistent channels (WorldConfig::transport.persistent): negotiated
  /// once when the exchange is built, parallel to sends/recvs. Empty
  /// when persistence is off.
  std::vector<sim::Channel> send_channels;
  std::vector<sim::Channel> recv_channels;
};

/// One persistent grouped exchange of a chain for a fixed set of stale
/// dats: sync specs (data pointers rebound each epoch), the flattened
/// GroupedPlan, and reusable receive slots. Built once per (chain,
/// stale-mask); steady-state epochs touch no maps and allocate nothing.
struct ChainExchange {
  std::vector<mesh::dat_id> dats;          ///< specs-parallel.
  std::vector<halo::DatSyncSpec> specs;
  halo::GroupedPlan plan;
  std::vector<ByteBuf> recv_bufs;  ///< sides-parallel.
  std::vector<sim::Request> requests;             ///< reused capacity.
  /// Persistent channels (WorldConfig::transport.persistent), negotiated
  /// once per (chain, stale-mask) exchange and keyed by the same
  /// structural hash that invalidates the plan. Sides-parallel; empty
  /// when persistence is off.
  std::vector<sim::Channel> send_channels;
  std::vector<sim::Channel> recv_channels;
};

/// Everything the CA executor caches per chain name. `structure` is a
/// hash of the loops' (set, args) shape: a name reused with different
/// loops rebuilds the plan instead of executing a stale analysis.
struct ChainPlan {
  std::uint64_t structure = 0;
  ChainAnalysis analysis;
  bool exec_lists_built = false;
  std::vector<LIdxVec> exec_lists;  ///< per-loop sparse-tiling slice.
  std::map<std::uint64_t, ChainExchange> exchanges;  ///< by stale mask.
};

/// A staging task folded into a loop's task-graph epoch (taskgraph
/// mode): `body` gathers halo rows into a send buffer and posts the
/// isend from whichever worker runs it. `reads` lists the rows the pack
/// reads per dat — the blocks that WRITE any of those rows depend on the
/// pack (it must observe pre-loop values), while every other block runs
/// concurrently with it, which is how packing overlaps core compute.
struct PackTask {
  struct Read {
    mesh::dat_id dat = -1;
    const LIdxVec* rows = nullptr;  ///< target-set row ids.
  };
  std::function<void()> body;
  std::vector<Read> reads;
};

/// The cached dependency structure of one (set, conflict maps) pair in
/// taskgraph mode, living next to the colouring it derives from: the
/// block-conflict adjacency (mesh::block_conflict_graph), lazily-built
/// per-view writer incidence (target row -> writing blocks, walked to
/// wire pack tasks ahead of the blocks that overwrite their rows), and
/// per-(begin, end) compiled subgraphs — dense task ids, successor CSR
/// oriented low colour -> high colour, and in-range indegrees — so
/// steady-state epochs reuse arrays without touching the adjacency.
struct LoopGraph {
  std::vector<mesh::map_id> maps;  ///< conflict maps (view order).
  mesh::BlockGraph graph;
  /// writer_off[v]/writer_blk[v]: CSR of view v's targets -> blocks that
  /// contain an element mapping onto the target. Empty until a pack of a
  /// dat written through view v first needs it.
  std::vector<std::vector<std::int32_t>> writer_off;
  std::vector<std::vector<std::int32_t>> writer_blk;
  struct Compiled {
    lidx_t first_block = 0;
    std::int32_t num_tasks = 0;
    std::vector<std::int32_t> succ_off, succ, indeg;
  };
  std::map<std::pair<lidx_t, lidx_t>, Compiled> ranges;
};

struct RankState {
  World* world = nullptr;
  rank_t rank = -1;
  sim::Comm comm;
  std::vector<RankDat> dats;
  bool serial_dispatch = false;  ///< copy of WorldConfig::serial_dispatch.

  // Chain capture.
  bool capturing = false;
  std::string chain_name;
  std::vector<LoopRecord> chain_loops;

  // Lazy-evaluation queue (WorldConfig::lazy): loops deferred until the
  // next synchronisation point, then flushed as an auto-formed chain.
  std::vector<LoopRecord> lazy_queue;
  int lazy_flushes = 0;

  // Temporal tile accumulator (WorldConfig::tile / ChainConfig tile=):
  // completed chain invocations awaiting fusion — one inner vector per
  // invocation, all of the chain named `tile_chain`, flushed as a single
  // fused epoch when `tile_target` invocations have accumulated or any
  // synchronisation point intervenes. `tile_fallbacks` names the
  // (chain, tile) combinations already warned about, so the loud
  // per-invocation fallback logs once, not every timestep.
  std::vector<std::vector<LoopRecord>> tile_queue;
  std::string tile_chain;
  int tile_target = 1;
  std::set<std::string> tile_fallbacks;

  // Inspector-built plans, cached by chain name (CA executor) and by dat
  // (per-loop executor), plus the staging-buffer pool shared by both.
  std::map<std::string, ChainPlan> chain_plans;
  std::vector<std::unique_ptr<LoopExchange>> loop_exchanges;  ///< per dat.
  BufferPool staging;
  std::vector<sim::Request> loop_requests;  ///< per-loop scratch, reused.
  std::int64_t dispatch_regions = 0;  ///< running region-body call count.

  // Intra-rank threading (WorldConfig::threads_per_rank > 1): the worker
  // pool, the colouring cache — one greedy colouring per (set, conflict
  // maps) combination, living next to the exchange plans — and the
  // per-colour gather scratch reused by threaded run_list calls.
  std::unique_ptr<util::ThreadPool> pool;
  std::map<std::pair<mesh::set_id, std::vector<mesh::map_id>>,
           mesh::Colouring>
      colourings;
  std::vector<LIdxVec> colour_scratch;
  std::int64_t dispatch_chunks = 0;   ///< running pool-chunk count.
  int dispatch_max_colours = 0;       ///< reset per loop by the executors.

  // Task-graph dispatch (WorldConfig::taskgraph): dependency-driven block
  // sweeps replace the per-colour barriers. One LoopGraph per (set,
  // conflict maps), cached next to the colouring it derives from, plus
  // running counters the executors snapshot into LoopMetrics.
  bool taskgraph = false;
  std::map<std::pair<mesh::set_id, std::vector<mesh::map_id>>, LoopGraph>
      loop_graphs;
  std::int64_t dispatch_tasks = 0;   ///< graph task bodies executed.
  std::int64_t dispatch_steals = 0;  ///< cross-deque steals.
  double dispatch_dep_wait = 0;      ///< dependency-starved idle seconds.
  /// Conflict-block granularity for colour-ordered sweeps: > 1 switches
  /// loop_colouring to mesh::block_colouring and run-aware dispatch
  /// (contiguous runs execute through range bodies). 1 when the locality
  /// layer is off — the legacy per-element path, bitwise-identical to
  /// earlier builds.
  lidx_t colour_block = 1;

  // Device-resident execution (WorldConfig::device): the rank's mirror
  // space (null when the device is off) and the hierarchical two-level
  // schedule cache — one HierColouring per (set, conflict maps), the
  // device analogue of `colourings`.
  std::unique_ptr<gpu::DeviceSpace> device;
  std::map<std::pair<mesh::set_id, std::vector<mesh::map_id>>,
           gpu::HierColouring>
      hier_colourings;

  /// Ordering-quality proxies per loop name (mesh::ordering_quality of
  /// the loop's widest indirection, computed once — it is O(iterations)
  /// and belongs to inspection, not the hot path).
  std::map<std::string, mesh::OrderingQuality> loop_qualities;

  // Per-rank metrics, merged by the World after each run.
  std::map<std::string, LoopMetrics> loop_metrics;
  std::map<std::string, LoopMetrics> chain_metrics;

  RankState(World* w, sim::TransportBackend& transport, rank_t r);

  const halo::RankPlan& rank_plan() const;
  const halo::SetLayout& layout(mesh::set_id s) const;
  RankDat& rank_dat(mesh::dat_id d);

  /// Re-gathers a dat's local copy from a global array (owned + halos).
  void refresh_dat_from_global(mesh::dat_id d,
                               const std::vector<double>& global_data);
};

/// Executes one loop with the classic OP2 executor (Alg 1). Returns the
/// metrics of this single execution (also accumulated into
/// st.loop_metrics under the loop's name).
LoopMetrics execute_loop_op2(RankState& st, const LoopRecord& rec);

/// Executes a captured chain with the CA executor (Alg 2).
void execute_chain_ca(RankState& st, const std::string& name,
                      std::vector<LoopRecord>& loops);

/// Executes a temporally-fused tile of `tile` chain invocations (their
/// loops concatenated in `loops`) as one CA epoch. `plan_key` keys the
/// ChainPlan / exchange / channel caches (distinct per tile geometry, so
/// a partial flush at a sync point gets its own cached plan and
/// persistent channels renegotiate only when the geometry changes);
/// metrics land under `name` with LoopMetrics::tile = `tile`.
void execute_chain_ca_tiled(RankState& st, const std::string& name,
                            const std::string& plan_key,
                            std::vector<LoopRecord>& loops, int tile);

/// Flushes the tile accumulator: a full or partial tile of >= 2 queued
/// invocations executes fused when the unrolled window is feasible
/// (inspector accepts it, required depth within the halo plan and the
/// chain's depth cap) — otherwise, and for a single queued invocation,
/// each invocation executes with the per-invocation CA path. Infeasible
/// (chain, tile) combinations warn once.
void flush_tiles(RankState& st);

/// Flushes every deferred-execution queue in program order: accumulated
/// chain tiles first (they always predate lazy entries — chain_begin
/// drains the lazy queue before capturing), then the lazy queue.
void flush_deferred(RankState& st);

/// Flushes the lazy queue: >= 2 queued loops become an automatically
/// formed chain executed with CA when the inspector accepts it and the
/// halo plan is deep enough; otherwise (or for a single loop) the queue
/// executes as plain OP2 loops. Chain names are "lazy:<signature>" so
/// repeated program phases reuse cached analyses.
void flush_lazy(RankState& st);

/// Order-insensitive-to-nothing structural hash of a window of loops:
/// covers names, sets and every access descriptor. Keys the analysis
/// caches and the lazy-chain signatures.
std::uint64_t chain_structural_hash(const LoopRecord* loops, std::size_t n);

/// Shared: runs the loop body over the local index range [begin, end).
/// Paths, in precedence order: element-at-a-time (serial_dispatch), the
/// single-region fast path (no pool — bitwise-identical to previous
/// behaviour), contiguous chunks over the pool (no indirect writes), or
/// a colour-ordered parallel sweep (indirect writes; see core/dispatch).
/// Counts region-body invocations in st.dispatch_regions and pool chunks
/// in st.dispatch_chunks.
std::int64_t run_range(RankState& st, const LoopRecord& rec, lidx_t begin,
                       lidx_t end);

/// Shared: runs the loop body over a gathered index list (same paths).
std::int64_t run_list(RankState& st, const LoopRecord& rec,
                      const LIdxVec& idx);

/// Taskgraph-mode run_range with staging folded in: executes [begin, end)
/// as one dependency-graph epoch over the loop's conflict blocks and runs
/// `packs` as extra graph tasks. Each pack is a root; the blocks that
/// write any row a pack reads depend on it (packs observe pre-loop
/// values), so packing overlaps the bulk of core compute instead of
/// serialising ahead of it. Falls back to running the packs first and
/// then the legacy path when the loop cannot use the graph (direct loop,
/// serial_dispatch, global INC, taskgraph off). Returns region-body
/// invocations, like run_range.
std::int64_t run_range_tasks(RankState& st, const LoopRecord& rec,
                             lidx_t begin, lidx_t end,
                             std::span<PackTask> packs);

/// The rank's cached dependency graph for `rec`'s conflict structure
/// (taskgraph mode): the block-conflict DAG over loop_colouring's blocks.
/// Built on first use, cached in RankState::loop_graphs next to the
/// colouring. Exposed for the schedule-stress tests.
LoopGraph& loop_graph(RankState& st, const LoopRecord& rec);

/// The rank's cached colouring for `rec`'s conflict structure (the maps
/// through which the loop writes indirectly, plus an identity view when
/// a written dat is also accessed directly). Built on first use, cached
/// in RankState::colourings. Exposed for the threaded-executor tests.
/// Blocked (st.colour_block > 1, the locality layer) or per-element.
const mesh::Colouring& loop_colouring(RankState& st, const LoopRecord& rec);

/// The rank's cached hierarchical two-level schedule for `rec`'s
/// conflict structure (device mode): outer block colouring plus
/// per-block inner element colouring under the shared-memory clamp.
/// Built on first use, cached in RankState::hier_colourings. Exposed for
/// the device property tests.
const gpu::HierColouring& loop_hier(RankState& st, const LoopRecord& rec);

/// Ordering-quality proxies of the loop's widest indirect argument over
/// the owned range (cached per loop name; zeros for direct loops).
const mesh::OrderingQuality& loop_quality(RankState& st,
                                          const LoopRecord& rec);

/// True when the loop must redundantly execute import-exec halo layers
/// under owner-compute (it writes through a map).
bool loop_executes_exec_halo(const LoopRecord& rec);

/// Snapshot/restore helpers for global INC arguments.
struct GblIncState {
  std::vector<std::pair<double*, std::vector<double>>> snapshots;
};
GblIncState snapshot_gbl_incs(const LoopRecord& rec);
void reduce_gbl_incs(RankState& st, const LoopRecord& rec,
                     const GblIncState& snap);

}  // namespace op2ca::core::detail
