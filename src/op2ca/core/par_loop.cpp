// Loop submission: dispatches to immediate OP2 execution or chain capture.
#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {

void Runtime::submit(detail::LoopRecord rec) {
  // Validate global-INC constraints: the redundant execution of exec
  // halos would double-count contributions, so loops that reduce into a
  // global may not also write through a map.
  bool has_gbl_inc = false;
  for (const Arg& a : rec.args)
    has_gbl_inc |= a.kind == Arg::Kind::Gbl && a.mode == Access::INC;
  if (has_gbl_inc) {
    OP2CA_REQUIRE(!rec.spec.has_indirect_write(),
                  "par_loop '" + rec.name +
                      "': global INC cannot be combined with indirect "
                      "writes (owner-compute would double-count)");
    OP2CA_REQUIRE(!state_->capturing,
                  "par_loop '" + rec.name +
                      "': global reductions are synchronisation points and "
                      "cannot appear inside a loop-chain");
  }

  if (state_->capturing) {
    state_->chain_loops.push_back(std::move(rec));
    return;
  }
  // A loose loop outside any chain is intervening work: it breaks the
  // temporal tile window (its reads/writes must observe the queued chain
  // invocations' results in program order).
  detail::flush_tiles(*state_);
  if (world_->config().lazy) {
    if (has_gbl_inc) {
      // Global reductions are synchronisation points: drain the queue,
      // then run the reducing loop immediately.
      detail::flush_lazy(*state_);
      detail::execute_loop_op2(*state_, rec);
      return;
    }
    state_->lazy_queue.push_back(std::move(rec));
    return;
  }
  detail::execute_loop_op2(*state_, rec);
}

}  // namespace op2ca::core
