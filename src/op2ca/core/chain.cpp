// Chain bracketing: capture between chain_begin / chain_end, then either
// CA execution (enabled chains) or plain sequential OP2 execution.
#include <algorithm>
#include <cstdio>
#include <iterator>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"

namespace op2ca::core {

void Runtime::chain_begin(const std::string& name) {
  OP2CA_REQUIRE(!state_->capturing,
                "chain_begin('" + name + "') while chain '" +
                    state_->chain_name + "' is still open");
  detail::flush_lazy(*state_);  // explicit chains take precedence
  state_->capturing = true;
  state_->chain_name = name;
  state_->chain_loops.clear();
}

void Runtime::chain_end() {
  OP2CA_REQUIRE(state_->capturing, "chain_end without chain_begin");
  state_->capturing = false;
  std::vector<detail::LoopRecord> loops = std::move(state_->chain_loops);
  state_->chain_loops.clear();
  const std::string name = state_->chain_name;

  const ChainConfig& cfg = world_->config().chains;
  if (!cfg.enabled(name)) {
    // CA disabled for this chain: run the loops as standard OP2 loops,
    // but still meter them under the chain's name so benches can compare
    // the two execution modes of the same chain.
    LoopMetrics chain_total;
    chain_total.calls = 1;
    for (const auto& rec : loops) {
      const LoopMetrics m = detail::execute_loop_op2(*state_, rec);
      chain_total.core_iters += m.core_iters;
      chain_total.halo_iters += m.halo_iters;
      chain_total.msgs += m.msgs;
      chain_total.bytes += m.bytes;
      chain_total.max_msg_bytes =
          std::max(chain_total.max_msg_bytes, m.max_msg_bytes);
      chain_total.max_rank_bytes += m.max_rank_bytes;
      chain_total.max_neighbors =
          std::max(chain_total.max_neighbors, m.max_neighbors);
      chain_total.wall_seconds += m.wall_seconds;
      chain_total.pack_seconds += m.pack_seconds;
      chain_total.core_seconds += m.core_seconds;
      chain_total.wait_seconds += m.wait_seconds;
      chain_total.unpack_seconds += m.unpack_seconds;
      chain_total.halo_seconds += m.halo_seconds;
      chain_total.dispatch_regions += m.dispatch_regions;
      chain_total.plan_builds += m.plan_builds;
      chain_total.staging_allocs += m.staging_allocs;
    }
    LoopMetrics& agg = state_->chain_metrics[name];
    const std::int64_t prev_calls = agg.calls;
    agg.merge_from(chain_total);
    agg.calls = prev_calls + 1;
    return;
  }

  const int expected = cfg.expected_loops(name);
  if (expected > 0 && expected != static_cast<int>(loops.size())) {
    OP2CA_LOG_WARN << "chain '" << name << "' configured with " << expected
                   << " loops but captured " << loops.size();
  }

  detail::execute_chain_ca(*state_, name, loops);
}

void Runtime::flush() { detail::flush_lazy(*state_); }

namespace detail {

std::uint64_t chain_structural_hash(const LoopRecord* loops, std::size_t n) {
  // FNV-1a over every structural feature of the window: loop names, sets,
  // and each access descriptor. Kernel bodies are deliberately excluded —
  // the analysis only depends on the access pattern.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t l = 0; l < n; ++l) {
    const LoopRecord& rec = loops[l];
    for (char c : rec.name) mix(static_cast<unsigned char>(c));
    mix(0x7f01);
    mix(static_cast<std::uint64_t>(rec.set));
    for (const ArgSpec& a : rec.spec.args) {
      mix(static_cast<std::uint64_t>(a.dat));
      mix(static_cast<std::uint64_t>(a.mode));
      mix(a.indirect ? 1 : 0);
      mix(static_cast<std::uint64_t>(a.map));
      mix(static_cast<std::uint64_t>(a.map_idx));
    }
    mix(0x7f02);
  }
  return h;
}

namespace {

/// Structural signature of a queued program fragment, so repeated phases
/// of a lazy application hit the analysis cache.
std::string lazy_signature(const LoopRecord* loops, std::size_t n) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    chain_structural_hash(loops, n)));
  return std::string("lazy:") + buf;
}

/// Feasibility of a window of queued loops as one CA chain: accepted by
/// the inspector AND within the halo plan's depth. Caches the analysis in
/// st.chain_plans under the window's signature, so a feasible window's
/// later execution (and every repeat of the same program phase) skips the
/// inspector entirely.
bool window_feasible(RankState& st, const LoopRecord* loops, std::size_t n,
                     std::string* name_out) {
  const std::uint64_t sig = chain_structural_hash(loops, n);
  const std::string name = lazy_signature(loops, n);
  *name_out = name;
  const auto it = st.chain_plans.find(name);
  if (it != st.chain_plans.end() && it->second.structure == sig &&
      it->second.analysis.he.size() == n)
    return it->second.analysis.required_depth <= st.world->plan().depth;
  ChainSpec spec;
  spec.name = name;
  spec.loops.reserve(n);
  for (std::size_t l = 0; l < n; ++l) spec.loops.push_back(loops[l].spec);
  try {
    ChainAnalysis an = inspect_chain(st.world->mesh(), spec);
    const bool ok = an.required_depth <= st.world->plan().depth;
    ChainPlan& cp = st.chain_plans[name];
    cp.structure = sig;
    cp.analysis = std::move(an);
    cp.exec_lists_built = false;
    cp.exec_lists.clear();
    cp.exchanges.clear();
    return ok;
  } catch (const Error&) {
    return false;  // inspector rejected (e.g. unregenerable direct write)
  }
}

}  // namespace

void flush_lazy(RankState& st) {
  if (st.lazy_queue.empty()) return;
  std::vector<LoopRecord> loops = std::move(st.lazy_queue);
  st.lazy_queue.clear();
  ++st.lazy_flushes;

  // Greedy segmentation: grow each window while it stays CA-feasible;
  // flush it as an auto-formed chain (>= 2 loops) or a plain loop.
  std::size_t i = 0;
  while (i < loops.size()) {
    std::size_t j = i + 1;
    std::string name = lazy_signature(loops.data() + i, 1);
    while (j < loops.size()) {
      std::string candidate;
      if (!window_feasible(st, loops.data() + i, j + 1 - i, &candidate))
        break;
      name = std::move(candidate);
      ++j;
    }
    if (j - i >= 2) {
      // Each record executes exactly once, so the window can steal the
      // queue's records instead of copying their type-erased bodies.
      std::vector<LoopRecord> window(
          std::make_move_iterator(loops.begin() + static_cast<long>(i)),
          std::make_move_iterator(loops.begin() + static_cast<long>(j)));
      execute_chain_ca(st, name, window);
    } else {
      execute_loop_op2(st, loops[i]);
    }
    i = j;
  }
}

}  // namespace detail

}  // namespace op2ca::core
