// Chain bracketing: capture between chain_begin / chain_end, then either
// CA execution (enabled chains) or plain sequential OP2 execution.
#include <algorithm>
#include <cstdio>
#include <iterator>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"

namespace op2ca::core {

void Runtime::chain_begin(const std::string& name) {
  OP2CA_REQUIRE(!state_->capturing,
                "chain_begin('" + name + "') while chain '" +
                    state_->chain_name + "' is still open");
  // A different chain breaks the current tile window; another invocation
  // of the accumulating chain keeps it open (the whole point of tiling).
  if (!state_->tile_queue.empty() && state_->tile_chain != name)
    detail::flush_tiles(*state_);
  detail::flush_lazy(*state_);  // explicit chains take precedence
  state_->capturing = true;
  state_->chain_name = name;
  state_->chain_loops.clear();
}

void Runtime::chain_end() {
  OP2CA_REQUIRE(state_->capturing, "chain_end without chain_begin");
  state_->capturing = false;
  std::vector<detail::LoopRecord> loops = std::move(state_->chain_loops);
  state_->chain_loops.clear();
  const std::string name = state_->chain_name;

  const ChainConfig& cfg = world_->config().chains;
  if (!cfg.enabled(name)) {
    // CA disabled for this chain: run the loops as standard OP2 loops,
    // but still meter them under the chain's name so benches can compare
    // the two execution modes of the same chain.
    LoopMetrics chain_total;
    chain_total.calls = 1;
    chain_total.tile = 1;  // untiled by definition (per-loop OP2)
    for (const auto& rec : loops) {
      const LoopMetrics m = detail::execute_loop_op2(*state_, rec);
      chain_total.core_iters += m.core_iters;
      chain_total.halo_iters += m.halo_iters;
      chain_total.msgs += m.msgs;
      chain_total.bytes += m.bytes;
      chain_total.max_msg_bytes =
          std::max(chain_total.max_msg_bytes, m.max_msg_bytes);
      chain_total.max_rank_bytes += m.max_rank_bytes;
      chain_total.max_neighbors =
          std::max(chain_total.max_neighbors, m.max_neighbors);
      chain_total.wall_seconds += m.wall_seconds;
      chain_total.pack_seconds += m.pack_seconds;
      chain_total.core_seconds += m.core_seconds;
      chain_total.wait_seconds += m.wait_seconds;
      chain_total.unpack_seconds += m.unpack_seconds;
      chain_total.halo_seconds += m.halo_seconds;
      chain_total.dispatch_regions += m.dispatch_regions;
      chain_total.plan_builds += m.plan_builds;
      chain_total.staging_allocs += m.staging_allocs;
    }
    LoopMetrics& agg = state_->chain_metrics[name];
    const std::int64_t prev_calls = agg.calls;
    agg.merge_from(chain_total);
    agg.calls = prev_calls + 1;
    return;
  }

  const int expected = cfg.expected_loops(name);
  if (expected > 0 && expected != static_cast<int>(loops.size())) {
    OP2CA_LOG_WARN << "chain '" << name << "' configured with " << expected
                   << " loops but captured " << loops.size();
  }

  // Effective tile size: a per-chain tile= entry overrides the world
  // default. tile <= 1 is the per-invocation executor, bitwise-identical
  // to previous builds.
  const int chain_tile = cfg.tile(name);
  const int tile =
      std::max(1, chain_tile > 0 ? chain_tile : world_->config().tile);
  if (tile <= 1 || loops.empty()) {
    detail::execute_chain_ca(*state_, name, loops);
    return;
  }

  // Temporal tiling: accumulate this invocation into the tile window. A
  // window already holding a different chain — or the same name reused
  // with a different loop structure — flushes first.
  detail::RankState& st = *state_;
  if (!st.tile_queue.empty() &&
      (st.tile_chain != name ||
       detail::chain_structural_hash(st.tile_queue.front().data(),
                                     st.tile_queue.front().size()) !=
           detail::chain_structural_hash(loops.data(), loops.size())))
    detail::flush_tiles(st);
  st.tile_chain = name;
  st.tile_target = tile;
  st.tile_queue.push_back(std::move(loops));
  if (static_cast<int>(st.tile_queue.size()) >= st.tile_target)
    detail::flush_tiles(st);
}

void Runtime::flush() { detail::flush_deferred(*state_); }

namespace detail {

std::uint64_t chain_structural_hash(const LoopRecord* loops, std::size_t n) {
  // FNV-1a over every structural feature of the window: loop names, sets,
  // and each access descriptor. Kernel bodies are deliberately excluded —
  // the analysis only depends on the access pattern.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t l = 0; l < n; ++l) {
    const LoopRecord& rec = loops[l];
    for (char c : rec.name) mix(static_cast<unsigned char>(c));
    mix(0x7f01);
    mix(static_cast<std::uint64_t>(rec.set));
    for (const ArgSpec& a : rec.spec.args) {
      mix(static_cast<std::uint64_t>(a.dat));
      mix(static_cast<std::uint64_t>(a.mode));
      mix(a.indirect ? 1 : 0);
      mix(static_cast<std::uint64_t>(a.map));
      mix(static_cast<std::uint64_t>(a.map_idx));
    }
    mix(0x7f02);
  }
  return h;
}

namespace {

/// Structural signature of a queued program fragment, so repeated phases
/// of a lazy application hit the analysis cache.
std::string lazy_signature(const LoopRecord* loops, std::size_t n) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    chain_structural_hash(loops, n)));
  return std::string("lazy:") + buf;
}

/// Feasibility of a window of loops as one CA chain cached under `key`:
/// accepted by the inspector AND within the halo plan's depth AND within
/// `cap` halo layers (0 = uncapped). Caches the analysis in
/// st.chain_plans under `key`, so a feasible window's later execution
/// (and every repeat of the same window) skips the inspector entirely.
bool window_feasible_as(RankState& st, const std::string& key,
                        const LoopRecord* loops, std::size_t n, int cap) {
  const std::uint64_t sig = chain_structural_hash(loops, n);
  const auto within = [&st, cap](int required) {
    return required <= st.world->plan().depth &&
           (cap == 0 || required <= cap);
  };
  const auto it = st.chain_plans.find(key);
  if (it != st.chain_plans.end() && it->second.structure == sig &&
      it->second.analysis.he.size() == n)
    return within(it->second.analysis.required_depth);
  ChainSpec spec;
  spec.name = key;
  spec.loops.reserve(n);
  for (std::size_t l = 0; l < n; ++l) spec.loops.push_back(loops[l].spec);
  try {
    ChainAnalysis an = inspect_chain(st.world->mesh(), spec);
    const bool ok = within(an.required_depth);
    ChainPlan& cp = st.chain_plans[key];
    cp.structure = sig;
    cp.analysis = std::move(an);
    cp.exec_lists_built = false;
    cp.exec_lists.clear();
    cp.exchanges.clear();
    return ok;
  } catch (const Error&) {
    return false;  // inspector rejected (e.g. unregenerable direct write)
  }
}

/// Lazy-mode wrapper: keys the cache by the window's structural signature.
bool window_feasible(RankState& st, const LoopRecord* loops, std::size_t n,
                     std::string* name_out) {
  *name_out = lazy_signature(loops, n);
  return window_feasible_as(st, *name_out, loops, n, /*cap=*/0);
}

}  // namespace

void flush_lazy(RankState& st) {
  if (st.lazy_queue.empty()) return;
  std::vector<LoopRecord> loops = std::move(st.lazy_queue);
  st.lazy_queue.clear();
  ++st.lazy_flushes;

  // Greedy segmentation: grow each window while it stays CA-feasible;
  // flush it as an auto-formed chain (>= 2 loops) or a plain loop.
  std::size_t i = 0;
  while (i < loops.size()) {
    std::size_t j = i + 1;
    std::string name = lazy_signature(loops.data() + i, 1);
    while (j < loops.size()) {
      std::string candidate;
      if (!window_feasible(st, loops.data() + i, j + 1 - i, &candidate))
        break;
      name = std::move(candidate);
      ++j;
    }
    if (j - i >= 2) {
      // Each record executes exactly once, so the window can steal the
      // queue's records instead of copying their type-erased bodies.
      std::vector<LoopRecord> window(
          std::make_move_iterator(loops.begin() + static_cast<long>(i)),
          std::make_move_iterator(loops.begin() + static_cast<long>(j)));
      execute_chain_ca(st, name, window);
    } else {
      execute_loop_op2(st, loops[i]);
    }
    i = j;
  }
}

void flush_tiles(RankState& st) {
  if (st.tile_queue.empty()) return;
  std::vector<std::vector<LoopRecord>> invs = std::move(st.tile_queue);
  st.tile_queue.clear();
  const std::string name = st.tile_chain;
  const int n_inv = static_cast<int>(invs.size());
  // chain_end only appends structure-equal invocations, so every
  // invocation in the window has the same loop count.
  const std::size_t per_inv = invs.front().size();

  std::vector<LoopRecord> fused;
  fused.reserve(per_inv * static_cast<std::size_t>(n_inv));
  for (auto& inv : invs)
    std::move(inv.begin(), inv.end(), std::back_inserter(fused));

  if (n_inv >= 2) {
    // The plan key carries the tile geometry: a full tile and a partial
    // tile flushed at a sync point cache distinct plans / exchanges /
    // persistent channels, and repeating the same geometry hits the
    // cache without renegotiation.
    const std::string key = name + "#tile" + std::to_string(n_inv);
    const int cap = st.world->config().chains.max_depth(name);
    if (window_feasible_as(st, key, fused.data(), fused.size(), cap)) {
      execute_chain_ca_tiled(st, name, key, fused, n_inv);
      return;
    }
    if (st.tile_fallbacks.insert(key).second)
      OP2CA_LOG_WARN << "chain '" << name << "': fused tile of " << n_inv
                     << " invocations is infeasible (inspector rejection, "
                        "halo plan too shallow, or over the chain's depth "
                        "cap) — falling back to per-invocation execution";
  }

  // Per-invocation execution: a single queued invocation, or the loud
  // fallback for an infeasible fused window. Runs under the chain's own
  // plan key, identical to the untiled executor.
  for (int i = 0; i < n_inv; ++i) {
    const auto b = fused.begin() + static_cast<long>(i) *
                                       static_cast<long>(per_inv);
    std::vector<LoopRecord> window(std::make_move_iterator(b),
                                   std::make_move_iterator(
                                       b + static_cast<long>(per_inv)));
    execute_chain_ca(st, name, window);
  }
}

void flush_deferred(RankState& st) {
  // Tiles always predate lazy entries: chain_begin drains the lazy queue
  // before capturing, and a lazily-queued loose loop flushes the tile
  // window first (see Runtime::submit) — so tiles-first is program order.
  flush_tiles(st);
  flush_lazy(st);
}

}  // namespace detail

}  // namespace op2ca::core
