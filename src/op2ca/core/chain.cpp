// Chain bracketing: capture between chain_begin / chain_end, then either
// CA execution (enabled chains) or plain sequential OP2 execution.
#include <cstdio>
#include <functional>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"

namespace op2ca::core {

void Runtime::chain_begin(const std::string& name) {
  OP2CA_REQUIRE(!state_->capturing,
                "chain_begin('" + name + "') while chain '" +
                    state_->chain_name + "' is still open");
  detail::flush_lazy(*state_);  // explicit chains take precedence
  state_->capturing = true;
  state_->chain_name = name;
  state_->chain_loops.clear();
}

void Runtime::chain_end() {
  OP2CA_REQUIRE(state_->capturing, "chain_end without chain_begin");
  state_->capturing = false;
  std::vector<detail::LoopRecord> loops = std::move(state_->chain_loops);
  state_->chain_loops.clear();
  const std::string name = state_->chain_name;

  const ChainConfig& cfg = world_->config().chains;
  if (!cfg.enabled(name)) {
    // CA disabled for this chain: run the loops as standard OP2 loops,
    // but still meter them under the chain's name so benches can compare
    // the two execution modes of the same chain.
    LoopMetrics chain_total;
    chain_total.calls = 1;
    for (const auto& rec : loops) {
      const LoopMetrics m = detail::execute_loop_op2(*state_, rec);
      chain_total.core_iters += m.core_iters;
      chain_total.halo_iters += m.halo_iters;
      chain_total.msgs += m.msgs;
      chain_total.bytes += m.bytes;
      chain_total.max_msg_bytes =
          std::max(chain_total.max_msg_bytes, m.max_msg_bytes);
      chain_total.max_rank_bytes += m.max_rank_bytes;
      chain_total.max_neighbors =
          std::max(chain_total.max_neighbors, m.max_neighbors);
      chain_total.wall_seconds += m.wall_seconds;
    }
    LoopMetrics& agg = state_->chain_metrics[name];
    const std::int64_t prev_calls = agg.calls;
    agg.merge_from(chain_total);
    agg.calls = prev_calls + 1;
    return;
  }

  const int expected = cfg.expected_loops(name);
  if (expected > 0 && expected != static_cast<int>(loops.size())) {
    OP2CA_LOG_WARN << "chain '" << name << "' configured with " << expected
                   << " loops but captured " << loops.size();
  }

  detail::execute_chain_ca(*state_, name, loops);
}

void Runtime::flush() { detail::flush_lazy(*state_); }

namespace detail {

namespace {

/// Structural signature of a queued program fragment, so repeated phases
/// of a lazy application hit the analysis cache.
std::string lazy_signature(const std::vector<LoopRecord>& loops) {
  std::string text;
  for (const LoopRecord& rec : loops) {
    text += rec.name;
    text += '/';
    text += std::to_string(rec.set);
    for (const ArgSpec& a : rec.spec.args) {
      text += ':';
      text += std::to_string(a.dat);
      text += access_name(a.mode);
      if (a.indirect) {
        text += 'm';
        text += std::to_string(a.map);
        text += '.';
        text += std::to_string(a.map_idx);
      }
    }
    text += ';';
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016zx", std::hash<std::string>{}(text));
  return std::string("lazy:") + buf;
}

}  // namespace

namespace {

/// Feasibility of a window of queued loops as one CA chain: accepted by
/// the inspector AND within the halo plan's depth. Caches the analysis
/// under the window's signature so the executor reuses it.
bool window_feasible(RankState& st, const std::vector<LoopRecord>& loops,
                     std::size_t begin, std::size_t end,
                     std::string* name_out) {
  std::vector<LoopRecord> window(loops.begin() + static_cast<long>(begin),
                                 loops.begin() + static_cast<long>(end));
  const std::string name = lazy_signature(window);
  *name_out = name;
  const auto it = st.chain_cache.find(name);
  if (it != st.chain_cache.end())
    return it->second.required_depth <= st.world->plan().depth;
  ChainSpec spec;
  spec.name = name;
  for (const auto& rec : window) spec.loops.push_back(rec.spec);
  try {
    ChainAnalysis an = inspect_chain(st.world->mesh(), spec);
    const bool ok = an.required_depth <= st.world->plan().depth;
    st.chain_cache.emplace(name, std::move(an));
    return ok;
  } catch (const Error&) {
    return false;  // inspector rejected (e.g. unregenerable direct write)
  }
}

}  // namespace

void flush_lazy(RankState& st) {
  if (st.lazy_queue.empty()) return;
  std::vector<LoopRecord> loops = std::move(st.lazy_queue);
  st.lazy_queue.clear();
  ++st.lazy_flushes;

  // Greedy segmentation: grow each window while it stays CA-feasible;
  // flush it as an auto-formed chain (>= 2 loops) or a plain loop.
  std::size_t i = 0;
  while (i < loops.size()) {
    std::size_t j = i + 1;
    std::string name = lazy_signature({loops[i]});
    while (j < loops.size()) {
      std::string candidate;
      if (!window_feasible(st, loops, i, j + 1, &candidate)) break;
      name = candidate;
      ++j;
    }
    if (j - i >= 2) {
      std::vector<LoopRecord> window(loops.begin() + static_cast<long>(i),
                                     loops.begin() + static_cast<long>(j));
      execute_chain_ca(st, name, window);
    } else {
      execute_loop_op2(st, loops[i]);
    }
    i = j;
  }
}

}  // namespace detail

}  // namespace op2ca::core
