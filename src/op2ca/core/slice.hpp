// Per-chain backward slicing of the exec halo — the list-building half
// of the sparse-tiling inspection (the paper's restructure_elements).
//
// The halo plan's exec layers are app-global: they cover every map in
// the mesh, so a chain that uses only e2n would, executed over raw layer
// ranges, redundantly run iterations that exist solely because of other
// maps (e.g. multigrid inter-level connectivity). This pass walks the
// chain backward over the rank's LOCAL maps and keeps exactly the
// import-exec iterations whose execution matters:
//
//   * owner-compute: an import iteration writing (through a chain map)
//     into an owned element, or
//   * regeneration: writing into a halo element some later chain loop's
//     needed iteration reads.
//
// The returned lists are subsets of the structural exec layers
// 1..HE_l, so all sync-depth guarantees of the layered analysis hold.
#pragma once

#include <vector>

#include "op2ca/core/chain.hpp"
#include "op2ca/halo/halo_plan.hpp"

namespace op2ca::core {

/// Local indices of the import-exec iterations each loop must execute on
/// this rank (empty for loops with exec_halo[l] == false). Requires a
/// plan built with local maps.
std::vector<LIdxVec> needed_exec_lists(const mesh::MeshDef& mesh,
                                       const halo::RankPlan& rp,
                                       int plan_depth,
                                       const ChainSpec& spec,
                                       const ChainAnalysis& analysis);

}  // namespace op2ca::core
