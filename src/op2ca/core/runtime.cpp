#include "op2ca/core/runtime.hpp"

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core {

const char* access_name(Access a) {
  switch (a) {
    case Access::READ: return "READ";
    case Access::WRITE: return "WRITE";
    case Access::RW: return "RW";
    case Access::INC: return "INC";
  }
  return "?";
}

Arg arg_dat(Dat d, Access mode) {
  Arg a;
  a.kind = Arg::Kind::DatDirect;
  a.dat = d.id;
  a.mode = mode;
  return a;
}

Arg arg_dat(Dat d, int idx, Map m, Access mode, bool self_combine) {
  OP2CA_REQUIRE(!self_combine || mode == Access::RW,
                "self_combine only applies to RW access");
  Arg a;
  a.kind = Arg::Kind::DatIndirect;
  a.dat = d.id;
  a.map_idx = idx;
  a.map = m.id;
  a.mode = mode;
  a.self_combine = self_combine;
  return a;
}

Arg arg_gbl(double* value, int dim, Access mode) {
  OP2CA_REQUIRE(mode == Access::READ || mode == Access::INC,
                "arg_gbl supports READ and INC only");
  OP2CA_REQUIRE(value != nullptr && dim > 0, "arg_gbl needs a buffer");
  Arg a;
  a.kind = Arg::Kind::Gbl;
  a.mode = mode;
  a.gbl = value;
  a.gbl_dim = dim;
  return a;
}

void LoopMetrics::merge_from(const LoopMetrics& other) {
  calls = std::max(calls, other.calls);  // same on every rank (SPMD)
  core_iters += other.core_iters;
  halo_iters += other.halo_iters;
  msgs += other.msgs;
  bytes += other.bytes;
  max_msg_bytes = std::max(max_msg_bytes, other.max_msg_bytes);
  max_rank_bytes = std::max(max_rank_bytes, other.max_rank_bytes);
  max_neighbors = std::max(max_neighbors, other.max_neighbors);
  wall_seconds += other.wall_seconds;
  pack_seconds += other.pack_seconds;
  core_seconds += other.core_seconds;
  wait_seconds += other.wait_seconds;
  unpack_seconds += other.unpack_seconds;
  halo_seconds += other.halo_seconds;
  dispatch_regions += other.dispatch_regions;
  plan_builds += other.plan_builds;
  staging_allocs += other.staging_allocs;
  chunks += other.chunks;
  max_colours = std::max(max_colours, other.max_colours);
  busy_seconds += other.busy_seconds;
  tasks += other.tasks;
  steals += other.steals;
  dep_wait_seconds += other.dep_wait_seconds;
  gather_span = std::max(gather_span, other.gather_span);
  reuse_gap = std::max(reuse_gap, other.reuse_gap);
  layout_code = std::max(layout_code, other.layout_code);
  halo_elems += other.halo_elems;
  numa_bytes += other.numa_bytes;
  node_bytes += other.node_bytes;
  net_bytes += other.net_bytes;
  stripes += other.stripes;
  h2d_bytes += other.h2d_bytes;
  d2h_bytes += other.d2h_bytes;
  device_transfers += other.device_transfers;
  device_seconds += other.device_seconds;
  tile = std::max(tile, other.tile);  // largest fused epoch seen
  redundant_elems += other.redundant_elems;
  msgs_saved += other.msgs_saved;
}

namespace detail {

void raise_out_of_region(const char* loop_name) {
  raise("par_loop '" + std::string(loop_name) +
        "' touched an element outside the local region (halo depth too "
        "small for this access pattern)");
}

bool loop_executes_exec_halo(const LoopRecord& rec) {
  return rec.spec.has_indirect_write();
}

GblIncState snapshot_gbl_incs(const LoopRecord& rec) {
  GblIncState snap;
  for (const Arg& a : rec.args) {
    if (a.kind == Arg::Kind::Gbl && a.mode == Access::INC) {
      std::vector<double> vals(a.gbl, a.gbl + a.gbl_dim);
      snap.snapshots.emplace_back(a.gbl, std::move(vals));
    }
  }
  return snap;
}

void reduce_gbl_incs(RankState& st, const LoopRecord& rec,
                     const GblIncState& snap) {
  (void)rec;
  for (const auto& [ptr, before] : snap.snapshots) {
    for (std::size_t k = 0; k < before.size(); ++k) {
      const double delta = ptr[k] - before[k];
      const double total = st.comm.allreduce_sum(delta);
      ptr[k] = before[k] + total;
    }
  }
}

}  // namespace detail

Runtime::Runtime(World* world, detail::RankState* state)
    : world_(world), state_(state) {}

rank_t Runtime::rank() const { return state_->rank; }
int Runtime::nranks() const { return world_->config().nranks; }
const mesh::MeshDef& Runtime::mesh() const { return world_->mesh(); }

Set Runtime::set(const std::string& name) const {
  const auto id = world_->mesh().find_set(name);
  OP2CA_REQUIRE(id.has_value(), "unknown set: " + name);
  return Set{*id};
}

Map Runtime::map(const std::string& name) const {
  const auto id = world_->mesh().find_map(name);
  OP2CA_REQUIRE(id.has_value(), "unknown map: " + name);
  return Map{*id};
}

Dat Runtime::dat(const std::string& name) const {
  const auto id = world_->mesh().find_dat(name);
  OP2CA_REQUIRE(id.has_value(), "unknown dat: " + name);
  return Dat{*id};
}

double* Runtime::dat_data(Dat d) {
  detail::flush_deferred(*state_);  // direct data access is a sync point
  // The caller gets the device-side array and may write it in place
  // (managed-pointer semantics): the host shadow is stale until the next
  // download, never the other way around — an upload here would clobber
  // the caller's writes with the old shadow.
  if (state_->device) state_->device->device_wrote(d.id);
  return state_->rank_dat(d.id).data.data();
}

const halo::SetLayout& Runtime::layout(Set s) const {
  return state_->layout(s.id);
}

const mesh::DatLayout& Runtime::dat_layout(Dat d) const {
  return state_->rank_dat(d.id).layout;
}

sim::Comm& Runtime::comm() {
  detail::flush_deferred(*state_);  // collectives are sync points
  return state_->comm;
}

void Runtime::barrier() {
  detail::flush_deferred(*state_);
  state_->comm.barrier();
}

bool Runtime::validation_enabled() const { return world_->config().validate; }

detail::LoopRecord Runtime::make_record(const std::string& name, Set s,
                                        std::vector<Arg> args) {
  const mesh::MeshDef& mesh = world_->mesh();
  OP2CA_REQUIRE(s.id >= 0 && s.id < mesh.num_sets(),
                "par_loop '" + name + "': invalid set");

  detail::LoopRecord rec;
  rec.name = name;
  rec.set = s.id;
  rec.spec.name = name;
  rec.spec.set = s.id;
  rec.args = std::move(args);
  rec.rargs.reserve(rec.args.size());
  rec.spec.args.reserve(rec.args.size());

  for (const Arg& a : rec.args) {
    detail::ResolvedArg ra;
    ArgSpec as;
    switch (a.kind) {
      case Arg::Kind::Gbl: {
        ra.base = a.gbl;
        ra.dim = a.gbl_dim;
        ra.is_gbl = true;
        as.dat = -1;
        as.mode = a.mode;
        as.indirect = false;
        break;
      }
      case Arg::Kind::DatDirect: {
        const mesh::DatDef& dd = mesh.dat(a.dat);
        OP2CA_REQUIRE(dd.set == s.id,
                      "par_loop '" + name + "': direct arg dat '" + dd.name +
                          "' does not live on the iteration set");
        detail::RankDat& rd = state_->rank_dat(a.dat);
        ra.base = rd.data.data();
        ra.bind_layout(rd.layout);
        as.dat = a.dat;
        as.mode = a.mode;
        as.indirect = false;
        break;
      }
      case Arg::Kind::DatIndirect: {
        const mesh::DatDef& dd = mesh.dat(a.dat);
        const mesh::MapDef& mp = mesh.map(a.map);
        OP2CA_REQUIRE(mp.from == s.id,
                      "par_loop '" + name + "': map '" + mp.name +
                          "' does not start at the iteration set");
        OP2CA_REQUIRE(mp.to == dd.set,
                      "par_loop '" + name + "': map '" + mp.name +
                          "' does not land on dat '" + dd.name + "' set");
        OP2CA_REQUIRE(a.map_idx >= 0 && a.map_idx < mp.arity,
                      "par_loop '" + name + "': map index out of arity");
        detail::RankDat& rd = state_->rank_dat(a.dat);
        OP2CA_REQUIRE(world_->plan().has_local_maps,
                      "par_loop '" + name +
                          "': halo plan was built without local maps");
        const halo::LocalMap& lm =
            state_->rank_plan().maps[static_cast<std::size_t>(a.map)];
        ra.base = rd.data.data();
        ra.bind_layout(rd.layout);
        ra.map_targets = lm.targets.data();
        ra.arity = lm.arity;
        ra.idx = a.map_idx;
        as.dat = a.dat;
        as.mode = a.mode;
        as.indirect = true;
        as.map = a.map;
        as.map_idx = a.map_idx;
        as.self_combine = a.self_combine;
        break;
      }
    }
    rec.rargs.push_back(ra);
    rec.spec.args.push_back(as);
  }
  return rec;
}

const std::vector<detail::ResolvedArg>& Runtime::record_args(
    const detail::LoopRecord& rec) const {
  return rec.rargs;
}

void Runtime::set_bodies(
    detail::LoopRecord& rec, std::function<void(lidx_t, lidx_t)> range_body,
    std::function<void(const lidx_t*, std::size_t)> list_body) {
  rec.range_body = std::move(range_body);
  rec.list_body = std::move(list_body);
}

}  // namespace op2ca::core
