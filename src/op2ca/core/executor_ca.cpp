// Communication-avoiding chain executor — Alg 2 of the paper.
//
// 1. Inspect the chain (cached by name + structural hash): Alg-3 halo
//    extensions HE_l, per-loop core shrinks, dats needing a pre-chain
//    sync and their depths, the sparse-tiling exec lists, and — per set
//    of stale dats — a persistent ChainExchange holding the flattened
//    GroupedPlan. Everything is built once; steady-state epochs skip
//    straight to execution.
// 2. Build and post ONE grouped message per neighbour containing every
//    stale dat's exec+nonexec halo layers up to its sync depth (Fig 8),
//    packed through the plan into pooled staging buffers and moved into
//    the mailbox (zero-copy).
// 3. While in flight: run every loop's (shrunken) core in chain order,
//    one region-body call per loop.
// 4. Wait, unpack through the plan's scatter lists, recycle the buffers.
// 5. Run every loop's halo region in chain order: the deferred owned
//    boundary (inward distance <= shrink_l) followed by the import-exec
//    layers 1..HE_l — the redundant computation that replaces the
//    per-loop halo exchanges.
#include <algorithm>

#include "op2ca/core/slice.hpp"
#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::core::detail {
namespace {

ChainSpec spec_from(const std::string& name,
                    const std::vector<LoopRecord>& loops) {
  ChainSpec spec;
  spec.name = name;
  spec.loops.reserve(loops.size());
  for (const auto& rec : loops) spec.loops.push_back(rec.spec);
  return spec;
}

/// Returns the chain's cached plan, (re)building analysis + exec lists on
/// first sight of this (name, structure). The structural hash guards
/// against a chain name reused with different loops.
ChainPlan& chain_plan(RankState& st, const std::string& name,
                      const std::vector<LoopRecord>& loops,
                      std::int64_t* plan_builds) {
  const std::uint64_t sig = chain_structural_hash(loops.data(), loops.size());
  ChainPlan& cp = st.chain_plans[name];
  if (cp.structure != sig || cp.analysis.he.size() != loops.size()) {
    cp.structure = sig;
    cp.analysis = inspect_chain(st.world->mesh(), spec_from(name, loops));
    cp.exec_lists_built = false;
    cp.exec_lists.clear();
    cp.exchanges.clear();
    *plan_builds += 1;
  }
  if (!cp.exec_lists_built) {
    cp.exec_lists = needed_exec_lists(st.world->mesh(), st.rank_plan(),
                                      st.world->plan().depth,
                                      spec_from(name, loops), cp.analysis);
    cp.exec_lists_built = true;
  }
  return cp;
}

/// Returns the persistent grouped exchange for the current stale-dat set
/// (bit i of `mask` = an.syncs[i] participates), building it on miss.
ChainExchange& chain_exchange(RankState& st, ChainPlan& cp,
                              std::uint64_t mask,
                              std::int64_t* plan_builds) {
  auto it = cp.exchanges.find(mask);
  if (it != cp.exchanges.end()) return it->second;

  ChainExchange ex;
  const mesh::MeshDef& mesh = st.world->mesh();
  for (std::size_t i = 0; i < cp.analysis.syncs.size(); ++i) {
    if ((mask & (std::uint64_t{1} << i)) == 0) continue;
    const DatSync& s = cp.analysis.syncs[i];
    RankDat& rd = st.rank_dat(s.dat);
    halo::DatSyncSpec spec;
    spec.set = mesh.dat(s.dat).set;
    spec.dim = rd.dim;
    spec.depth = s.depth;
    spec.data = rd.data.data();
    // st.dats never reallocates after construction, so the descriptor
    // pointer stays valid for the exchange's lifetime (unlike `data`,
    // which is rebound every epoch).
    spec.layout = &rd.layout;
    ex.specs.push_back(spec);
    ex.dats.push_back(s.dat);
  }
  ex.plan = halo::build_grouped_plan(st.rank_plan(), ex.specs);
  ex.recv_bufs.resize(ex.plan.sides.size());

  // Persistent channels (a la MPI_Send_init): negotiate one fixed
  // (peer, tag, size) slot per grouped side, keyed by the same structural
  // hash + stale mask that invalidates this exchange — a rank whose plan
  // went stale renegotiates or fails the handshake loudly, it can never
  // feed an old channel. Sides are walked in plan order on both ends
  // (the grouped plan is rank-symmetric), so the k-th send-side open
  // here pairs with the k-th recv-side open on the peer.
  if (st.comm.transport_config().persistent) {
    const std::uint64_t phash =
        cp.structure ^ (mask * 0x9e3779b97f4a7c15ULL);
    std::vector<sim::ChannelSpec> specs;
    for (const halo::GroupedPlan::Side& side : ex.plan.sides) {
      if (side.send_bytes > 0)
        specs.push_back({side.q, /*sender=*/true, side.send_bytes, phash});
      if (side.recv_bytes > 0)
        specs.push_back({side.q, /*sender=*/false, side.recv_bytes, phash});
    }
    std::vector<sim::Channel> chans = st.comm.open_channels(specs);
    ex.send_channels.resize(ex.plan.sides.size());
    ex.recv_channels.resize(ex.plan.sides.size());
    std::size_t k = 0;
    for (std::size_t s = 0; s < ex.plan.sides.size(); ++s) {
      if (ex.plan.sides[s].send_bytes > 0)
        ex.send_channels[s] = std::move(chans[k++]);
      if (ex.plan.sides[s].recv_bytes > 0)
        ex.recv_channels[s] = std::move(chans[k++]);
    }
  }
  *plan_builds += 1;
  return cp.exchanges.emplace(mask, std::move(ex)).first->second;
}

}  // namespace

void execute_chain_ca_tiled(RankState& st, const std::string& name,
                            const std::string& plan_key,
                            std::vector<LoopRecord>& loops, int tile) {
  if (loops.empty()) return;
  WallTimer timer;
  st.comm.stats().reset_epoch();
  const std::int64_t allocs_before = st.staging.allocations();
  const std::int64_t regions_before = st.dispatch_regions;
  const std::int64_t chunks_before = st.dispatch_chunks;
  const double busy_before = st.pool ? st.pool->busy_seconds() : 0.0;
  const std::int64_t tasks_before = st.dispatch_tasks;
  const std::int64_t steals_before = st.dispatch_steals;
  const double dep_wait_before = st.dispatch_dep_wait;
  st.dispatch_max_colours = 0;
  std::int64_t plan_builds = 0;

  // -- Inspection (cached; the analysis is rank-independent). The plan
  //    key carries the tile geometry, so a fused tile and a partial tile
  //    of the same chain cache distinct plans (and distinct persistent
  //    channels — cp.structure differs, so channels renegotiate exactly
  //    when the tile geometry changes). ----------------------------------
  ChainPlan& cp = chain_plan(st, plan_key, loops, &plan_builds);
  const ChainAnalysis& an = cp.analysis;

  OP2CA_REQUIRE(
      an.required_depth <= st.world->plan().depth,
      "chain '" + name + "' needs " + std::to_string(an.required_depth) +
          " halo layers but the World was built with halo_depth=" +
          std::to_string(st.world->plan().depth) +
          "; raise WorldConfig::halo_depth");
  const int cap = st.world->config().chains.max_depth(name);
  OP2CA_REQUIRE(cap == 0 || an.required_depth <= cap,
                "chain '" + name + "' exceeds its configured max depth");

  // -- Pre-chain grouped exchange (lines 1-7 of Alg 2). ----------------
  // Stale-dat mask (dirty-bit check): identical on every rank — dirty
  // bits evolve under the same SPMD loop sequence everywhere — so both
  // endpoints of every message agree on the grouped layout.
  OP2CA_REQUIRE(an.syncs.size() <= 64,
                "chain '" + name + "' syncs more than 64 dats");
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < an.syncs.size(); ++i)
    if (st.rank_dat(an.syncs[i].dat).fresh_depth < an.syncs[i].depth)
      mask |= std::uint64_t{1} << i;

  // Device epoch: upload every mirror any loop of the chain touches (the
  // pipelined policy skips valid ones — in steady state the chain's only
  // PCIe traffic is the grouped halo staging below).
  gpu::DeviceSpace* dev = st.device.get();
  gpu::DeviceStats dev_before;
  if (dev != nullptr) {
    dev->begin_epoch();
    dev_before = dev->stats();
    std::vector<mesh::dat_id> touched;
    for (const auto& rec : loops)
      for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
        touched.push_back(dat);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (mesh::dat_id d : touched) dev->to_device(d);
  }

  ChainExchange* ex = nullptr;
  std::int64_t halo_elems = 0;
  std::vector<PackTask> packs;
  const bool fold = st.taskgraph && st.pool != nullptr;
  if (mask != 0) {
    ex = &chain_exchange(st, cp, mask, &plan_builds);
    // Rebind data pointers: dat storage can be re-gathered between runs
    // (World::reset_dat), so the cached specs must not pin stale arrays.
    for (std::size_t i = 0; i < ex->dats.size(); ++i)
      ex->specs[i].data = st.rank_dat(ex->dats[i]).data.data();

    if (fold) {
      // Taskgraph mode: each side's grouped pack becomes a graph task in
      // the first loop's core epoch (the epoch drains before any later
      // loop runs, so only the first loop's writers need gating). Staging
      // buffers come off the rank thread; request slots are preallocated
      // so workers fill them without racing; receives post here.
      std::size_t nslots = 0;
      for (const halo::GroupedPlan::Side& side : ex->plan.sides)
        nslots += (side.send_bytes > 0) + (side.recv_bytes > 0);
      ex->requests.assign(nslots, sim::Request{});
      std::size_t slot = 0;
      for (std::size_t s = 0; s < ex->plan.sides.size(); ++s) {
        const halo::GroupedPlan::Side& side = ex->plan.sides[s];
        if (side.send_bytes > 0) {
          for (const LIdxVec& g : side.gather)
            halo_elems += static_cast<std::int64_t>(g.size());
          // Device-side grouped pack: metered on the rank thread even
          // though the pack body may run on a worker.
          if (dev != nullptr) dev->stage_out(side.send_bytes);
          sim::Request* out = &ex->requests[slot++];
          PackTask p;
          for (std::size_t i = 0; i < ex->dats.size(); ++i)
            p.reads.push_back({ex->dats[i], &side.gather[i]});
          // The pack runs inside a graph task, so it must not re-enter
          // the pool: serial pack_grouped (nullptr pool). Workers may
          // post to different neighbours concurrently — Comm serialises
          // per destination.
          p.body = [&st, ex, &side, s, out,
                    buf = st.staging.take(side.send_bytes)]() mutable {
            halo::pack_grouped(side, ex->specs, buf.data(), nullptr);
            *out = !ex->send_channels.empty()
                       ? st.comm.channel_isend(ex->send_channels[s],
                                               std::move(buf))
                       : st.comm.stripe_isend(side.q, kChainTag,
                                              std::move(buf));
          };
          packs.push_back(std::move(p));
        }
        if (side.recv_bytes > 0)
          ex->requests[slot++] =
              !ex->recv_channels.empty()
                  ? st.comm.channel_irecv(ex->recv_channels[s],
                                          &ex->recv_bufs[s])
                  : st.comm.stripe_irecv(side.q, kChainTag,
                                         &ex->recv_bufs[s],
                                         side.recv_bytes);
      }
    } else {
      ex->requests.clear();
      for (std::size_t s = 0; s < ex->plan.sides.size(); ++s) {
        const halo::GroupedPlan::Side& side = ex->plan.sides[s];
        if (side.send_bytes > 0) {
          ByteBuf buf = st.staging.take(side.send_bytes);
          halo::pack_grouped(side, ex->specs, buf.data(), st.pool.get());
          for (const LIdxVec& g : side.gather)
            halo_elems += static_cast<std::int64_t>(g.size());
          if (dev != nullptr) dev->stage_out(side.send_bytes);
          ex->requests.push_back(
              !ex->send_channels.empty()
                  ? st.comm.channel_isend(ex->send_channels[s],
                                          std::move(buf))
                  : st.comm.stripe_isend(side.q, kChainTag,
                                         std::move(buf)));
        }
        if (side.recv_bytes > 0)
          ex->requests.push_back(
              !ex->recv_channels.empty()
                  ? st.comm.channel_irecv(ex->recv_channels[s],
                                          &ex->recv_bufs[s])
                  : st.comm.stripe_irecv(side.q, kChainTag,
                                         &ex->recv_bufs[s],
                                         side.recv_bytes));
      }
    }
  }

  const double t_pack = timer.elapsed();

  // -- Core phase (lines 8-12): every loop's core in chain order. The
  //    grouped packs ride in the first loop's epoch under taskgraph. ----
  std::int64_t core_iters = 0;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const halo::SetLayout& lay = st.layout(loops[l].set);
    const lidx_t core_end = lay.core_count(an.shrink[l]);
    if (l == 0 && fold)
      core_iters += run_range_tasks(st, loops[l], 0, core_end, packs);
    else
      core_iters += run_range(st, loops[l], 0, core_end);
  }

  const double t_core = timer.elapsed();

  // -- Wait + unpack (line 13). -----------------------------------------
  double t_wait = t_core;
  double t_unpack = t_core;
  if (ex != nullptr) {
    st.comm.wait_all(ex->requests);
    t_wait = timer.elapsed();
    for (std::size_t s = 0; s < ex->plan.sides.size(); ++s) {
      if (ex->plan.sides[s].recv_bytes == 0) continue;
      halo::unpack_grouped(ex->plan.sides[s], ex->specs, ex->recv_bufs[s],
                           st.pool.get());
      if (dev != nullptr) dev->stage_in(ex->plan.sides[s].recv_bytes);
      st.staging.release(std::move(ex->recv_bufs[s]));
    }
    for (std::size_t i = 0; i < ex->dats.size(); ++i) {
      RankDat& rd = st.rank_dat(ex->dats[i]);
      rd.fresh_depth = std::max(rd.fresh_depth, ex->specs[i].depth);
    }
    t_unpack = timer.elapsed();
  }

  // -- Halo phase (lines 14-18): deferred boundary + exec layers. The
  //    import-exec iterations are the owner-compute redundancy the CA
  //    trade buys its messages with; a fused tile's lists reach deeper,
  //    so they are metered separately as redundant_elems. ----------------
  std::int64_t halo_iters = 0;
  std::int64_t redundant = 0;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const halo::SetLayout& lay = st.layout(loops[l].set);
    halo_iters +=
        run_range(st, loops[l], lay.core_count(an.shrink[l]), lay.num_owned);
    const std::int64_t exec_n = run_list(st, loops[l], cp.exec_lists[l]);
    halo_iters += exec_n;
    redundant += exec_n;
  }

  const double t_halo = timer.elapsed();

  // Close the device epoch: written mirrors turn DeviceFresh and the
  // ledger charges the chain's (transfers, kernel seconds) makespan.
  double device_span = 0;
  if (dev != nullptr) {
    for (const auto& rec : loops)
      for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
        if (writes(m.mode)) dev->device_wrote(dat);
    device_span =
        dev->end_epoch((t_core - t_pack) + (t_halo - t_unpack));
  }

  // -- Dirty bits. -------------------------------------------------------
  for (const auto& rec : loops)
    for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
      if (writes(m.mode)) st.rank_dat(dat).fresh_depth = 0;

  LoopMetrics metrics;
  metrics.calls = 1;
  metrics.core_iters = core_iters;
  metrics.halo_iters = halo_iters;
  metrics.msgs = st.comm.stats().epoch_msgs_sent;
  metrics.bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_msg_bytes = st.comm.stats().epoch_max_msg_bytes;
  metrics.max_rank_bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_neighbors =
      static_cast<int>(st.comm.stats().epoch_neighbors.size());
  metrics.wall_seconds = timer.elapsed();
  metrics.pack_seconds = t_pack;
  metrics.core_seconds = t_core - t_pack;
  metrics.wait_seconds = t_wait - t_core;
  metrics.unpack_seconds = t_unpack - t_wait;
  metrics.halo_seconds = metrics.wall_seconds - t_unpack;
  metrics.dispatch_regions = st.dispatch_regions - regions_before;
  metrics.plan_builds = plan_builds;
  metrics.staging_allocs = st.staging.allocations() - allocs_before;
  metrics.chunks = st.dispatch_chunks - chunks_before;
  metrics.max_colours = st.dispatch_max_colours;
  metrics.busy_seconds =
      st.pool ? st.pool->busy_seconds() - busy_before : 0.0;
  metrics.tasks = st.dispatch_tasks - tasks_before;
  metrics.steals = st.dispatch_steals - steals_before;
  metrics.dep_wait_seconds = st.dispatch_dep_wait - dep_wait_before;
  for (const auto& rec : loops) {
    const mesh::OrderingQuality& oq = loop_quality(st, rec);
    metrics.gather_span = std::max(metrics.gather_span, oq.gather_span);
    metrics.reuse_gap = std::max(metrics.reuse_gap, oq.reuse_gap);
    for (const Arg& a : rec.args)
      if (a.kind != Arg::Kind::Gbl)
        metrics.layout_code =
            std::max(metrics.layout_code,
                     static_cast<int>(st.rank_dat(a.dat).layout.kind));
  }
  metrics.halo_elems = halo_elems;
  metrics.numa_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Numa)];
  metrics.node_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Node)];
  metrics.net_bytes =
      st.comm.stats().epoch_bytes_by_tier[static_cast<int>(sim::Tier::Net)];
  metrics.stripes = st.comm.stats().epoch_stripes;
  if (dev != nullptr) {
    const gpu::DeviceStats& ds = dev->stats();
    metrics.h2d_bytes = ds.h2d_bytes - dev_before.h2d_bytes;
    metrics.d2h_bytes = ds.d2h_bytes - dev_before.d2h_bytes;
    metrics.device_transfers =
        (ds.h2d_transfers - dev_before.h2d_transfers) +
        (ds.d2h_transfers - dev_before.d2h_transfers);
    metrics.device_seconds = device_span;
  }
  metrics.tile = tile;
  metrics.redundant_elems = redundant;
  // Per-invocation execution would have paid this epoch's message count
  // once per fused invocation (the stale-dat mask repeats under a steady
  // timestep loop); the fusion posts it once.
  metrics.msgs_saved = static_cast<std::int64_t>(tile - 1) * metrics.msgs;

  LoopMetrics& agg = st.chain_metrics[name];
  const std::int64_t prev_calls = agg.calls;
  agg.merge_from(metrics);
  agg.calls = prev_calls + 1;
}

void execute_chain_ca(RankState& st, const std::string& name,
                      std::vector<LoopRecord>& loops) {
  execute_chain_ca_tiled(st, name, name, loops, /*tile=*/1);
}

}  // namespace op2ca::core::detail
