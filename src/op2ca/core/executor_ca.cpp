// Communication-avoiding chain executor — Alg 2 of the paper.
//
// 1. Inspect the chain (cached by name): Alg-3 halo extensions HE_l,
//    per-loop core shrinks, dats needing a pre-chain sync and their
//    depths.
// 2. Build and post ONE grouped message per neighbour containing every
//    stale dat's exec+nonexec halo layers up to its sync depth (Fig 8).
// 3. While in flight: run every loop's (shrunken) core in chain order.
// 4. Wait, unpack.
// 5. Run every loop's halo region in chain order: the deferred owned
//    boundary (inward distance <= shrink_l) followed by the import-exec
//    layers 1..HE_l — the redundant computation that replaces the
//    per-loop halo exchanges.
#include <algorithm>
#include <deque>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/core/slice.hpp"
#include "op2ca/halo/grouped.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/timer.hpp"

namespace op2ca::core::detail {
namespace {

ChainSpec spec_from(const std::string& name,
                    const std::vector<LoopRecord>& loops) {
  ChainSpec spec;
  spec.name = name;
  spec.loops.reserve(loops.size());
  for (const auto& rec : loops) spec.loops.push_back(rec.spec);
  return spec;
}

}  // namespace

void execute_chain_ca(RankState& st, const std::string& name,
                      std::vector<LoopRecord>& loops) {
  if (loops.empty()) return;
  WallTimer timer;
  const mesh::MeshDef& mesh = st.world->mesh();
  const halo::RankPlan& rp = st.rank_plan();
  st.comm.stats().reset_epoch();

  // -- Inspection (cached; the analysis is rank-independent). ----------
  auto cached = st.chain_cache.find(name);
  if (cached == st.chain_cache.end() ||
      cached->second.he.size() != loops.size()) {
    ChainAnalysis analysis = inspect_chain(mesh, spec_from(name, loops));
    cached = st.chain_cache.insert_or_assign(name, std::move(analysis)).first;
  }
  const ChainAnalysis& an = cached->second;

  auto lists_it = st.chain_exec_lists.find(name);
  if (lists_it == st.chain_exec_lists.end()) {
    lists_it = st.chain_exec_lists
                   .emplace(name, needed_exec_lists(
                                      mesh, rp, st.world->plan().depth,
                                      spec_from(name, loops), an))
                   .first;
  }
  const std::vector<LIdxVec>& exec_lists = lists_it->second;

  OP2CA_REQUIRE(
      an.required_depth <= st.world->plan().depth,
      "chain '" + name + "' needs " + std::to_string(an.required_depth) +
          " halo layers but the World was built with halo_depth=" +
          std::to_string(st.world->plan().depth) +
          "; raise WorldConfig::halo_depth");
  const int cap = st.world->config().chains.max_depth(name);
  OP2CA_REQUIRE(cap == 0 || an.required_depth <= cap,
                "chain '" + name + "' exceeds its configured max depth");

  // -- Pre-chain grouped exchange (lines 1-7 of Alg 2). ----------------
  // Drop dats whose halo is already fresh deep enough (dirty-bit check).
  std::vector<halo::DatSyncSpec> specs;
  std::vector<mesh::dat_id> synced;
  for (const DatSync& s : an.syncs) {
    RankDat& rd = st.rank_dat(s.dat);
    if (rd.fresh_depth >= s.depth) continue;
    halo::DatSyncSpec spec;
    spec.set = mesh.dat(s.dat).set;
    spec.dim = rd.dim;
    spec.depth = s.depth;
    spec.data = rd.data.data();
    specs.push_back(spec);
    synced.push_back(s.dat);
  }

  std::vector<sim::Request> requests;
  std::deque<std::vector<std::byte>> recv_buffers;
  std::vector<rank_t> recv_from;
  if (!specs.empty()) {
    // One grouped message per neighbour (send side).
    for (rank_t q : rp.neighbors) {
      std::vector<std::byte> buf = halo::pack_grouped(rp, q, specs);
      if (!buf.empty())
        requests.push_back(st.comm.isend(q, kChainTag, buf));
    }
    // Matching receives: my import volume from q equals q's export
    // volume toward me, so posting on non-empty import lists is
    // symmetric with the sender's non-empty export check.
    for (rank_t q : rp.neighbors) {
      bool any = false;
      for (const auto& spec : specs) {
        const halo::NeighborLists& nl =
            rp.lists[static_cast<std::size_t>(spec.set)];
        for (const auto* tab : {&nl.imp_exec, &nl.imp_nonexec}) {
          const auto it = tab->find(q);
          if (it == tab->end()) continue;
          for (int k = 1; k <= spec.depth; ++k)
            if (!it->second[static_cast<std::size_t>(k - 1)].empty())
              any = true;
        }
      }
      if (any) {
        recv_buffers.emplace_back();
        recv_from.push_back(q);
        requests.push_back(
            st.comm.irecv(q, kChainTag, &recv_buffers.back()));
      }
    }
  }

  const double t_pack = timer.elapsed();

  // -- Core phase (lines 8-12): every loop's core in chain order. ------
  std::int64_t core_iters = 0;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const halo::SetLayout& lay = st.layout(loops[l].set);
    core_iters += run_range(loops[l], 0, lay.core_count(an.shrink[l]));
  }

  const double t_core = timer.elapsed();

  // -- Wait + unpack (line 13). -----------------------------------------
  st.comm.wait_all(requests);
  for (std::size_t i = 0; i < recv_buffers.size(); ++i)
    halo::unpack_grouped(rp, recv_from[i], specs, recv_buffers[i]);
  for (std::size_t i = 0; i < synced.size(); ++i) {
    RankDat& rd = st.rank_dat(synced[i]);
    rd.fresh_depth = std::max(rd.fresh_depth, specs[i].depth);
  }

  const double t_wait = timer.elapsed();

  // -- Halo phase (lines 14-18): deferred boundary + exec layers. -------
  std::int64_t halo_iters = 0;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const halo::SetLayout& lay = st.layout(loops[l].set);
    halo_iters +=
        run_range(loops[l], lay.core_count(an.shrink[l]), lay.num_owned);
    for (lidx_t e : exec_lists[l]) {
      loops[l].body(e);
      ++halo_iters;
    }
  }

  // -- Dirty bits. -------------------------------------------------------
  for (const auto& rec : loops)
    for (const auto& [dat, m] : merge_loop_accesses(rec.spec))
      if (writes(m.mode)) st.rank_dat(dat).fresh_depth = 0;

  LoopMetrics metrics;
  metrics.calls = 1;
  metrics.core_iters = core_iters;
  metrics.halo_iters = halo_iters;
  metrics.msgs = st.comm.stats().epoch_msgs_sent;
  metrics.bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_msg_bytes = st.comm.stats().epoch_max_msg_bytes;
  metrics.max_rank_bytes = st.comm.stats().epoch_bytes_sent;
  metrics.max_neighbors =
      static_cast<int>(st.comm.stats().epoch_neighbors.size());
  metrics.wall_seconds = timer.elapsed();
  metrics.pack_seconds = t_pack;
  metrics.core_seconds = t_core - t_pack;
  metrics.wait_seconds = t_wait - t_core;
  metrics.halo_seconds = metrics.wall_seconds - t_wait;

  LoopMetrics& agg = st.chain_metrics[name];
  const std::int64_t prev_calls = agg.calls;
  agg.merge_from(metrics);
  agg.calls = prev_calls + 1;
}

}  // namespace op2ca::core::detail
