#include "op2ca/core/chain_config.hpp"

#include <fstream>
#include <sstream>

#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

/// Splits "key=value" into its parts; returns false if no '='.
bool split_kv(const std::string& token, std::string* key,
              std::string* value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

int parse_int(const std::string& v, const std::string& context) {
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    raise("ChainConfig: bad integer '" + v + "' in " + context);
  }
}

}  // namespace

ChainConfig ChainConfig::load(const std::string& path) {
  std::ifstream in(path);
  OP2CA_REQUIRE(in.good(), "ChainConfig: cannot open " + path);
  return parse(in);
}

ChainConfig ChainConfig::parse(std::istream& in) {
  ChainConfig cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank

    const std::string where = "line " + std::to_string(lineno);
    if (directive == "default") {
      std::string v;
      OP2CA_REQUIRE(static_cast<bool>(ls >> v),
                    "ChainConfig: 'default' needs on|off at " + where);
      OP2CA_REQUIRE(v == "on" || v == "off",
                    "ChainConfig: 'default' must be on|off at " + where);
      cfg.default_enabled_ = v == "on";
      continue;
    }
    OP2CA_REQUIRE(directive == "chain",
                  "ChainConfig: unknown directive '" + directive + "' at " +
                      where);
    std::string name;
    OP2CA_REQUIRE(static_cast<bool>(ls >> name),
                  "ChainConfig: 'chain' needs a name at " + where);
    Entry entry;
    std::string token;
    while (ls >> token) {
      std::string key, value;
      OP2CA_REQUIRE(split_kv(token, &key, &value),
                    "ChainConfig: expected key=value, got '" + token +
                        "' at " + where);
      if (key == "loops")
        entry.loops = parse_int(value, where);
      else if (key == "depth")
        entry.max_depth = parse_int(value, where);
      else if (key == "tile") {
        entry.tile = parse_int(value, where);
        OP2CA_REQUIRE(entry.tile >= 1,
                      "ChainConfig: tile must be >= 1 at " + where);
      } else if (key == "enabled")
        entry.enabled = parse_int(value, where) != 0;
      else
        raise("ChainConfig: unknown key '" + key + "' at " + where);
    }
    cfg.entries_[name] = entry;
  }
  return cfg;
}

void ChainConfig::enable(const std::string& name, int loops, int max_depth,
                         int tile) {
  entries_[name] = Entry{true, loops, max_depth, tile};
}

void ChainConfig::disable(const std::string& name) {
  entries_[name] = Entry{false, 0, 0, 0};
}

bool ChainConfig::enabled(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return default_enabled_;
  return it->second.enabled;
}

int ChainConfig::max_depth(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.max_depth;
}

int ChainConfig::expected_loops(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.loops;
}

int ChainConfig::tile(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.tile;
}

}  // namespace op2ca::core
