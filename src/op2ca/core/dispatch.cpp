// Region dispatch: every core/boundary/exec-halo region of both
// executors funnels through run_range / run_list here.
//
// Serial paths are unchanged from the pre-threading runtime: one
// type-erased region body per range/list (or per element under
// serial_dispatch). With a worker pool (threads_per_rank > 1):
//
//  * Loops without indirect writes split regions into contiguous chunks,
//    one per pool thread. Every element writes only its own rows, so any
//    chunking is race-free and bitwise-identical to serial execution.
//  * Loops with indirect writes run colour-ordered sweeps: a greedy
//    colouring of the iteration set (conflict = two elements sharing a
//    target through any written-dat map) is computed once per (set,
//    conflict maps) and cached in RankState next to the exchange plans.
//    Colours execute in ascending order with a pool barrier between
//    them; within a colour no two elements touch the same written
//    element, so the intra-colour split across threads cannot affect any
//    memory cell. Results are therefore a pure function of the colouring
//    — deterministic at every pool width — though increment sums
//    reassociate relative to the width-1 index order.
//  * Loops reducing into a global (arg_gbl INC) fall back to the serial
//    region: the single accumulation buffer is inherently order- and
//    sharing-sensitive.
//
// Taskgraph mode (WorldConfig::taskgraph) replaces the per-colour
// barriers of the indirect-write path with a dependency-driven sweep: the
// block-conflict DAG (edges oriented low colour -> high colour) is
// compiled once per (loop, region) into dense successor/indegree arrays
// and executed by the pool's work-stealing run_graph. A block's next
// chunk becomes runnable the moment its conflicting neighbours of lower
// colour finish — no barrier. Because every pair of conflicting blocks is
// ordered by the DAG and intra-block order is ascending, each memory cell
// sees the same write sequence at every pool width, so results are
// bitwise-identical across widths (and to the blocked colour-barrier
// sweep at the same block size). Executors additionally fold halo-pack
// tasks into the epoch through run_range_tasks: a pack is a root and the
// blocks writing its read rows depend on it, so staging overlaps the bulk
// of core compute.
#include <algorithm>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core::detail {
namespace {

bool has_gbl_inc(const LoopRecord& rec) {
  for (const Arg& a : rec.args)
    if (a.kind == Arg::Kind::Gbl && a.mode == Access::INC) return true;
  return false;
}

/// The maps through which `rec` writes indirectly (sorted, unique), plus
/// a -1 sentinel for the identity view when one of those written dats is
/// also accessed directly in the same loop.
std::vector<mesh::map_id> conflict_maps(const LoopRecord& rec) {
  std::vector<mesh::map_id> maps;
  bool identity = false;
  for (const ArgSpec& a : rec.spec.args) {
    if (a.dat < 0 || !a.indirect || !writes(a.mode)) continue;
    maps.push_back(a.map);
    for (const ArgSpec& b : rec.spec.args)
      if (b.dat == a.dat && !b.indirect) identity = true;
    // Reads of a written dat through another map conflict too.
    for (const ArgSpec& b : rec.spec.args)
      if (b.dat == a.dat && b.indirect) maps.push_back(b.map);
  }
  std::sort(maps.begin(), maps.end());
  maps.erase(std::unique(maps.begin(), maps.end()), maps.end());
  if (identity) maps.push_back(-1);
  return maps;
}

/// Splits [0, n) into at most `parts` balanced chunks; returns the begin
/// offset of each chunk plus the end sentinel.
std::vector<std::size_t> chunk_offsets(std::size_t n, int parts) {
  const std::size_t p = static_cast<std::size_t>(parts);
  std::vector<std::size_t> off(p + 1, n);
  const std::size_t base = n / p, rem = n % p;
  std::size_t at = 0;
  for (std::size_t t = 0; t < p; ++t) {
    off[t] = at;
    at += base + (t < rem ? 1 : 0);
  }
  off[p] = n;
  return off;
}

/// Contiguous-chunk parallel range: safe only for loops whose writes are
/// all direct. Bitwise-identical to the serial region for any width.
std::int64_t run_range_chunked(RankState& st, const LoopRecord& rec,
                               lidx_t begin, lidx_t end) {
  util::ThreadPool& pool = *st.pool;
  const auto n = static_cast<std::size_t>(end - begin);
  const std::vector<std::size_t> off = chunk_offsets(n, pool.threads());
  pool.run([&](int t) {
    const auto b = begin + static_cast<lidx_t>(off[static_cast<std::size_t>(t)]);
    const auto e = begin + static_cast<lidx_t>(off[static_cast<std::size_t>(t) + 1]);
    if (b < e) rec.range_body(b, e);
  });
  std::int64_t chunks = 0;
  for (int t = 0; t < pool.threads(); ++t)
    chunks += off[static_cast<std::size_t>(t)] <
              off[static_cast<std::size_t>(t) + 1];
  st.dispatch_regions += chunks;
  st.dispatch_chunks += chunks;
  return end - begin;
}

/// Contiguous-chunk parallel list (direct-write loops over gather lists).
std::int64_t run_list_chunked(RankState& st, const LoopRecord& rec,
                              const lidx_t* idx, std::size_t n) {
  util::ThreadPool& pool = *st.pool;
  const std::vector<std::size_t> off = chunk_offsets(n, pool.threads());
  pool.run([&](int t) {
    const std::size_t b = off[static_cast<std::size_t>(t)];
    const std::size_t e = off[static_cast<std::size_t>(t) + 1];
    if (b < e) rec.list_body(idx + b, e - b);
  });
  std::int64_t chunks = 0;
  for (int t = 0; t < pool.threads(); ++t)
    chunks += off[static_cast<std::size_t>(t)] <
              off[static_cast<std::size_t>(t) + 1];
  st.dispatch_regions += chunks;
  st.dispatch_chunks += chunks;
  return static_cast<std::int64_t>(n);
}

/// Minimum consecutive-run length worth promoting from the gathered-list
/// body to a contiguous range body (below this the dispatch bookkeeping
/// outweighs the vectorisation win).
constexpr std::size_t kMinRun = 8;

/// Executes idx[0..n) in ascending order through run-aware bodies:
/// maximal consecutive runs of at least kMinRun become range regions
/// (contiguous loads the compiler vectorises), everything between goes
/// through the gathered-list body in one piece. The iteration order is
/// exactly that of a single list_body call over the slice, so results
/// are bitwise-equal to it.
std::int64_t run_aware_span(const LoopRecord& rec, const lidx_t* idx,
                            std::size_t n) {
  std::int64_t regions = 0;
  std::size_t j = 0;
  while (j < n) {
    std::size_t k = j + 1;
    while (k < n && idx[k] == idx[k - 1] + 1) ++k;
    if (k - j >= kMinRun) {
      rec.range_body(idx[j], idx[j] + static_cast<lidx_t>(k - j));
    } else {
      // Merge short runs into one gathered segment.
      while (k < n) {
        std::size_t k2 = k + 1;
        while (k2 < n && idx[k2] == idx[k2 - 1] + 1) ++k2;
        if (k2 - k >= kMinRun) break;
        k = k2;
      }
      rec.list_body(idx + j, k - j);
    }
    ++regions;
    j = k;
  }
  return regions;
}

/// One colour class (or class subrange), split across the pool. With
/// per-element colouring (block <= 1) conflict-freedom within the class
/// makes any split race-free and width-independent; with blocked
/// colouring the conflict-free unit is the block, so chunk boundaries
/// advance to the next block edge (a block never straddles threads) and
/// each chunk executes run-aware. Either way intra-chunk order is
/// ascending, so results are a pure function of the colouring.
void sweep_class(RankState& st, const LoopRecord& rec, const lidx_t* idx,
                 std::size_t n, lidx_t block) {
  if (n == 0) return;
  if (block <= 1) {
    run_list_chunked(st, rec, idx, n);
    return;
  }
  util::ThreadPool& pool = *st.pool;
  std::vector<std::size_t> off = chunk_offsets(n, pool.threads());
  for (std::size_t t = 1; t + 1 < off.size(); ++t) {
    std::size_t o = std::max(off[t], off[t - 1]);
    while (o > 0 && o < n && idx[o] / block == idx[o - 1] / block) ++o;
    off[t] = o;
  }
  std::vector<std::int64_t> regions(
      static_cast<std::size_t>(pool.threads()), 0);
  pool.run([&](int t) {
    const std::size_t b = off[static_cast<std::size_t>(t)];
    const std::size_t e = off[static_cast<std::size_t>(t) + 1];
    if (b < e)
      regions[static_cast<std::size_t>(t)] =
          run_aware_span(rec, idx + b, e - b);
  });
  for (int t = 0; t < pool.threads(); ++t) {
    st.dispatch_regions += regions[static_cast<std::size_t>(t)];
    st.dispatch_chunks += regions[static_cast<std::size_t>(t)] > 0;
  }
}

/// Builds the ColourMapViews of a conflict-map list (the -1 sentinel
/// becomes an identity view backed by `identity`, which must outlive the
/// returned views). Shared by the colouring and the block-graph builders
/// so both see the exact same conflict structure.
std::vector<mesh::ColourMapView> conflict_views(
    RankState& st, mesh::set_id set, const std::vector<mesh::map_id>& maps,
    LIdxVec& identity) {
  const halo::SetLayout& lay = st.layout(set);
  const halo::RankPlan& rp = st.rank_plan();
  std::vector<mesh::ColourMapView> views;
  for (mesh::map_id m : maps) {
    mesh::ColourMapView v;
    if (m < 0) {
      identity.resize(static_cast<std::size_t>(lay.total));
      for (lidx_t e = 0; e < lay.total; ++e)
        identity[static_cast<std::size_t>(e)] = e;
      v.targets = identity.data();
      v.arity = 1;
      v.num_elements = lay.total;
      v.num_targets = lay.total;
    } else {
      const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
      const mesh::MapDef& md = st.world->mesh().map(m);
      v.targets = lm.targets.data();
      v.arity = lm.arity;
      v.num_elements =
          static_cast<lidx_t>(lm.targets.size() /
                              static_cast<std::size_t>(lm.arity));
      v.num_targets = rp.sets[static_cast<std::size_t>(md.to)].total;
    }
    views.push_back(v);
  }
  return views;
}

/// One outer-colour phase of the hierarchical device sweep: the phase's
/// blocks spread across the pool ("one block per thread block"), each
/// block executing its elements serially in block_order — inner-colour
/// rounds in ascending order, the simulated shared-memory schedule.
/// Blocks of one outer colour never conflict and every block stays on
/// one thread, so results are a pure function of the schedule —
/// bitwise-identical at every pool width.
void sweep_hier_colour(RankState& st, const LoopRecord& rec,
                       const gpu::HierColouring& h, const LIdxVec& blocks,
                       lidx_t begin, lidx_t end) {
  if (blocks.empty()) return;
  util::ThreadPool& pool = *st.pool;
  const lidx_t be = h.blocks.block_elems;
  const std::vector<std::size_t> off =
      chunk_offsets(blocks.size(), pool.threads());
  std::vector<std::int64_t> regions(
      static_cast<std::size_t>(pool.threads()), 0);
  pool.run([&](int t) {
    LIdxVec partial;  // scratch for blocks straddling the region edge
    for (std::size_t j = off[static_cast<std::size_t>(t)];
         j < off[static_cast<std::size_t>(t) + 1]; ++j) {
      const lidx_t b = blocks[j];
      const std::size_t lo = h.block_off[static_cast<std::size_t>(b)];
      const std::size_t hi = h.block_off[static_cast<std::size_t>(b) + 1];
      if (b * be >= begin &&
          b * be + static_cast<lidx_t>(hi - lo) <= end) {
        // Block fully inside [begin, end): its order slice runs as-is.
        rec.list_body(h.block_order.data() + lo, hi - lo);
      } else {
        partial.clear();
        for (std::size_t k = lo; k < hi; ++k) {
          const lidx_t e = h.block_order[k];
          if (e >= begin && e < end) partial.push_back(e);
        }
        if (partial.empty()) continue;
        rec.list_body(partial.data(), partial.size());
      }
      ++regions[static_cast<std::size_t>(t)];
    }
  });
  for (int t = 0; t < pool.threads(); ++t) {
    st.dispatch_regions += regions[static_cast<std::size_t>(t)];
    st.dispatch_chunks += regions[static_cast<std::size_t>(t)] > 0;
  }
}

}  // namespace

const mesh::Colouring& loop_colouring(RankState& st, const LoopRecord& rec) {
  const std::vector<mesh::map_id> maps = conflict_maps(rec);
  const auto key = std::make_pair(rec.set, maps);
  auto it = st.colourings.find(key);
  if (it != st.colourings.end()) return it->second;

  const halo::SetLayout& lay = st.layout(rec.set);
  LIdxVec identity;
  const std::vector<mesh::ColourMapView> views =
      conflict_views(st, rec.set, maps, identity);
  mesh::Colouring col =
      st.colour_block > 1
          ? mesh::block_colouring(lay.total, views, st.colour_block)
          : mesh::greedy_colouring(lay.total, views);
  return st.colourings.emplace(key, std::move(col)).first->second;
}

const gpu::HierColouring& loop_hier(RankState& st, const LoopRecord& rec) {
  const std::vector<mesh::map_id> maps = conflict_maps(rec);
  const auto key = std::make_pair(rec.set, maps);
  auto it = st.hier_colourings.find(key);
  if (it != st.hier_colourings.end()) return it->second;

  const halo::SetLayout& lay = st.layout(rec.set);
  LIdxVec identity;
  const std::vector<mesh::ColourMapView> views =
      conflict_views(st, rec.set, maps, identity);
  const gpu::DeviceConfig& dc = st.world->config().device;
  // The shared-memory clamp sizes a block's staging footprint by the
  // widest dat row the mesh declares — conservative, and independent of
  // the particular loop so the (set, maps) cache key stays sufficient.
  int max_dim = 1;
  const mesh::MeshDef& mesh = st.world->mesh();
  for (mesh::dat_id d = 0; d < mesh.num_dats(); ++d)
    max_dim = std::max(max_dim, mesh.dat(d).dim);
  gpu::HierColouring h = gpu::hierarchical_colouring(
      lay.total, views, dc.block_elems, dc.shared_bytes, max_dim);
  return st.hier_colourings.emplace(key, std::move(h)).first->second;
}

LoopGraph& loop_graph(RankState& st, const LoopRecord& rec) {
  const std::vector<mesh::map_id> maps = conflict_maps(rec);
  const auto key = std::make_pair(rec.set, maps);
  auto it = st.loop_graphs.find(key);
  if (it != st.loop_graphs.end()) return it->second;

  const mesh::Colouring& col = loop_colouring(st, rec);
  const halo::SetLayout& lay = st.layout(rec.set);
  LIdxVec identity;
  const std::vector<mesh::ColourMapView> views =
      conflict_views(st, rec.set, maps, identity);
  LoopGraph lg;
  lg.maps = maps;
  lg.graph = mesh::block_conflict_graph(lay.total, views, col);
  lg.writer_off.resize(views.size());
  lg.writer_blk.resize(views.size());
  return st.loop_graphs.emplace(key, std::move(lg)).first->second;
}

const mesh::OrderingQuality& loop_quality(RankState& st,
                                          const LoopRecord& rec) {
  const auto it = st.loop_qualities.find(rec.name);
  if (it != st.loop_qualities.end()) return it->second;
  mesh::OrderingQuality q{};
  const halo::RankPlan& rp = st.rank_plan();
  mesh::map_id best = -1;
  int best_arity = 0;
  for (const ArgSpec& a : rec.spec.args)
    if (a.indirect && a.map >= 0) {
      const int ar = rp.maps[static_cast<std::size_t>(a.map)].arity;
      if (ar > best_arity) {
        best_arity = ar;
        best = a.map;
      }
    }
  if (best >= 0) {
    const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(best)];
    const mesh::MapDef& md = st.world->mesh().map(best);
    q = mesh::ordering_quality(
        lm.targets.data(), lm.arity, st.layout(rec.set).num_owned,
        rp.sets[static_cast<std::size_t>(md.to)].total);
  }
  return st.loop_qualities.emplace(rec.name, q).first->second;
}

namespace {

/// Compiles the block DAG restricted to [begin, end): dense task ids over
/// the intersecting blocks, a successor CSR oriented low colour -> high
/// colour (adjacent blocks always differ in colour), and in-range
/// indegrees — predecessors outside the range are excluded, since region
/// calls are already ordered sequentially on the rank thread. Cached per
/// (begin, end); a loop's region boundaries are stable across calls, so
/// steady-state epochs reuse the arrays untouched.
const LoopGraph::Compiled& compile_range(LoopGraph& lg, lidx_t begin,
                                         lidx_t end) {
  const auto key = std::make_pair(begin, end);
  auto it = lg.ranges.find(key);
  if (it != lg.ranges.end()) return it->second;

  const mesh::BlockGraph& g = lg.graph;
  const lidx_t B = g.block_elems;
  const lidx_t b0 = begin / B;
  const lidx_t b1 = std::min<lidx_t>(g.num_blocks, (end - 1) / B + 1);
  const auto T = static_cast<std::int32_t>(b1 - b0);
  LoopGraph::Compiled c;
  c.first_block = b0;
  c.num_tasks = T;
  c.succ_off.assign(static_cast<std::size_t>(T) + 1, 0);
  c.indeg.assign(static_cast<std::size_t>(T), 0);
  auto each_edge = [&](auto&& fn) {
    for (lidx_t b = b0; b < b1; ++b)
      for (std::size_t r = g.adj_off[static_cast<std::size_t>(b)];
           r < g.adj_off[static_cast<std::size_t>(b) + 1]; ++r) {
        const lidx_t nb = g.adj[r];
        if (nb < b0 || nb >= b1) continue;
        if (g.colour[static_cast<std::size_t>(b)] <
            g.colour[static_cast<std::size_t>(nb)])
          fn(static_cast<std::int32_t>(b - b0),
             static_cast<std::int32_t>(nb - b0));
      }
  };
  each_edge([&](std::int32_t t, std::int32_t nt) {
    ++c.succ_off[static_cast<std::size_t>(t) + 1];
    ++c.indeg[static_cast<std::size_t>(nt)];
  });
  for (std::int32_t t = 0; t < T; ++t)
    c.succ_off[static_cast<std::size_t>(t) + 1] +=
        c.succ_off[static_cast<std::size_t>(t)];
  c.succ.resize(static_cast<std::size_t>(c.succ_off[static_cast<std::size_t>(T)]));
  std::vector<std::int32_t> at(c.succ_off.begin(), c.succ_off.end() - 1);
  each_edge([&](std::int32_t t, std::int32_t nt) {
    c.succ[static_cast<std::size_t>(at[static_cast<std::size_t>(t)]++)] = nt;
  });
  return lg.ranges.emplace(key, std::move(c)).first->second;
}

/// Lazily builds view v's writer incidence: target row -> blocks holding
/// an element that maps onto it (ascending, unique per row). Walked when
/// a pack task's read rows must gate the blocks that overwrite them.
void build_writer_csr(RankState& st, LoopGraph& lg, std::size_t v,
                      mesh::map_id m) {
  if (!lg.writer_off[v].empty()) return;
  const halo::LocalMap& lm =
      st.rank_plan().maps[static_cast<std::size_t>(m)];
  const mesh::MapDef& md = st.world->mesh().map(m);
  const lidx_t ntgt =
      st.rank_plan().sets[static_cast<std::size_t>(md.to)].total;
  const lidx_t B = lg.graph.block_elems;
  const auto nelem = static_cast<lidx_t>(
      lm.targets.size() / static_cast<std::size_t>(lm.arity));
  auto& off = lg.writer_off[v];
  auto& blk = lg.writer_blk[v];
  off.assign(static_cast<std::size_t>(ntgt) + 1, 0);
  // Elements ascend, so each target sees its blocks in ascending order
  // and a last-seen array dedups adjacent repeats (count, then fill).
  LIdxVec last(static_cast<std::size_t>(ntgt), kInvalidLocal);
  auto each = [&](auto&& fn) {
    for (lidx_t e = 0; e < nelem; ++e) {
      const lidx_t b = e / B;
      for (int k = 0; k < lm.arity; ++k) {
        const lidx_t t =
            lm.targets[static_cast<std::size_t>(e) *
                           static_cast<std::size_t>(lm.arity) +
                       static_cast<std::size_t>(k)];
        if (t == kInvalidLocal) continue;
        if (last[static_cast<std::size_t>(t)] == b) continue;
        last[static_cast<std::size_t>(t)] = b;
        fn(t, b);
      }
    }
  };
  each([&](lidx_t t, lidx_t) { ++off[static_cast<std::size_t>(t) + 1]; });
  for (lidx_t t = 0; t < ntgt; ++t)
    off[static_cast<std::size_t>(t) + 1] += off[static_cast<std::size_t>(t)];
  blk.resize(static_cast<std::size_t>(off[static_cast<std::size_t>(ntgt)]));
  std::fill(last.begin(), last.end(), kInvalidLocal);
  std::vector<std::int32_t> at(off.begin(), off.end() - 1);
  each([&](lidx_t t, lidx_t b) {
    blk[static_cast<std::size_t>(at[static_cast<std::size_t>(t)]++)] =
        static_cast<std::int32_t>(b);
  });
}

/// Collects the in-range block-task ids that WRITE any row `pack` reads
/// (sorted, unique) and appends them to `out` — the pack's successor
/// list. Blocks that don't write a packed row never appear, which is the
/// whole point: they run concurrently with the pack.
void append_pack_successors(RankState& st, const LoopRecord& rec,
                            LoopGraph& lg, const PackTask& pack, lidx_t b0,
                            std::int32_t T, std::vector<std::int32_t>& out) {
  const lidx_t B = lg.graph.block_elems;
  std::vector<std::int32_t> blocks;
  auto add = [&](lidx_t wb) {
    if (wb >= b0 && wb < b0 + T)
      blocks.push_back(static_cast<std::int32_t>(wb - b0));
  };
  for (const PackTask::Read& rd : pack.reads) {
    for (const ArgSpec& a : rec.spec.args) {
      if (a.dat != rd.dat || !writes(a.mode)) continue;
      if (!a.indirect) {
        // A directly-written row's writer is its own block (direct writes
        // never conflict, so the identity view need not be in lg.maps).
        for (lidx_t r : *rd.rows) add(r / B);
        continue;
      }
      const auto vit = std::find(lg.maps.begin(), lg.maps.end(), a.map);
      OP2CA_REQUIRE(vit != lg.maps.end(),
                    "taskgraph: written map missing from conflict graph");
      const auto v = static_cast<std::size_t>(vit - lg.maps.begin());
      build_writer_csr(st, lg, v, a.map);
      const auto& off = lg.writer_off[v];
      const auto& blk = lg.writer_blk[v];
      for (lidx_t r : *rd.rows)
        for (std::int32_t i = off[static_cast<std::size_t>(r)];
             i < off[static_cast<std::size_t>(r) + 1]; ++i)
          add(blk[static_cast<std::size_t>(i)]);
    }
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  out.insert(out.end(), blocks.begin(), blocks.end());
}

/// One dependency-graph epoch over a compiled range: block tasks are ids
/// [0, T), pack tasks ride along as ids [T, T + P) — roots whose
/// successors are exactly the blocks writing their read rows. Block-block
/// edges are untouched by the packs, so per-cell write order (and hence
/// the result) is identical with and without staging folded in.
std::int64_t run_graph_epoch(RankState& st, const LoopRecord& rec,
                             LoopGraph& lg, const LoopGraph::Compiled& c,
                             lidx_t begin, lidx_t end,
                             std::span<PackTask> packs) {
  const lidx_t B = lg.graph.block_elems;
  const lidx_t b0 = c.first_block;
  const std::int32_t T = c.num_tasks;
  const auto P = static_cast<std::int32_t>(packs.size());

  const std::int32_t* soff = c.succ_off.data();
  const std::int32_t* succ = c.succ.data();
  const std::int32_t* ind = c.indeg.data();
  std::vector<std::int32_t> xoff, xsucc, xind;
  if (P > 0) {
    xoff.assign(c.succ_off.begin(), c.succ_off.end());
    xsucc.assign(c.succ.begin(), c.succ.end());
    xind.assign(c.indeg.begin(), c.indeg.end());
    xind.resize(static_cast<std::size_t>(T + P), 0);
    for (std::int32_t p = 0; p < P; ++p) {
      const std::size_t before = xsucc.size();
      append_pack_successors(st, rec, lg, packs[static_cast<std::size_t>(p)],
                             b0, T, xsucc);
      for (std::size_t r = before; r < xsucc.size(); ++r)
        ++xind[static_cast<std::size_t>(xsucc[r])];
      xoff.push_back(static_cast<std::int32_t>(xsucc.size()));
    }
    soff = xoff.data();
    succ = xsucc.data();
    ind = xind.data();
  }

  const std::function<void(int)> body = [&](int t) {
    if (t < T) {
      const lidx_t b = b0 + static_cast<lidx_t>(t);
      const lidx_t lo = std::max(begin, b * B);
      const lidx_t hi = std::min(end, (b + 1) * B);
      rec.range_body(lo, hi);
    } else {
      packs[static_cast<std::size_t>(t - T)].body();
    }
  };
  util::GraphStats stats;
  st.pool->run_graph(T + P, soff, succ, ind, body, &stats);
  st.dispatch_tasks += stats.tasks;
  st.dispatch_steals += stats.steals;
  st.dispatch_dep_wait += stats.dep_wait_seconds;
  st.dispatch_regions += T;
  st.dispatch_chunks += T + P;
  st.dispatch_max_colours =
      std::max(st.dispatch_max_colours, lg.graph.num_colours);
  return end - begin;
}

}  // namespace

std::int64_t run_range_tasks(RankState& st, const LoopRecord& rec,
                             lidx_t begin, lidx_t end,
                             std::span<PackTask> packs) {
  const bool graph =
      st.taskgraph && st.pool != nullptr &&
      !(st.device != nullptr && st.device->config().hierarchical) &&
      !has_gbl_inc(rec) && rec.spec.has_indirect_write() && end > begin;
  if (!graph) {
    // Legacy order: stage first, then run the region — packs read
    // pre-loop values either way.
    for (PackTask& p : packs) p.body();
    return run_range(st, rec, begin, end);
  }
  LoopGraph& lg = loop_graph(st, rec);
  const LoopGraph::Compiled& c = compile_range(lg, begin, end);
  return run_graph_epoch(st, rec, lg, c, begin, end, packs);
}

std::int64_t run_range(RankState& st, const LoopRecord& rec, lidx_t begin,
                       lidx_t end) {
  if (end <= begin) return 0;
  if (st.serial_dispatch) {
    for (lidx_t i = begin; i < end; ++i) rec.range_body(i, i + 1);
    st.dispatch_regions += end - begin;
    return end - begin;
  }
  if (st.pool == nullptr || has_gbl_inc(rec)) {
    rec.range_body(begin, end);
    st.dispatch_regions += 1;
    return end - begin;
  }
  if (!rec.spec.has_indirect_write())
    return run_range_chunked(st, rec, begin, end);

  // Hierarchical device sweep (device mode): outer colours execute in
  // ascending order with a phase barrier; each phase launches its blocks
  // across the pool, every block running its inner-colour rounds
  // serially. Wins over taskgraph — the device schedule is the point of
  // device mode.
  if (st.device != nullptr && st.device->config().hierarchical) {
    const gpu::HierColouring& h = loop_hier(st, rec);
    st.dispatch_max_colours =
        std::max(st.dispatch_max_colours, h.blocks.num_colours);
    const lidx_t be = h.blocks.block_elems;
    LIdxVec phase;
    for (const LIdxVec& blocks : h.colour_blocks) {
      phase.clear();
      for (lidx_t b : blocks)
        if (b * be < end &&
            static_cast<lidx_t>(h.block_off[static_cast<std::size_t>(b) + 1]) >
                static_cast<lidx_t>(h.block_off[static_cast<std::size_t>(b)]) &&
            b * be + static_cast<lidx_t>(
                         h.block_off[static_cast<std::size_t>(b) + 1] -
                         h.block_off[static_cast<std::size_t>(b)]) > begin)
          phase.push_back(b);
      sweep_hier_colour(st, rec, h, phase, begin, end);
    }
    return end - begin;
  }

  // Dependency-driven block sweep (taskgraph mode): the conflict DAG, not
  // a per-colour barrier, orders conflicting blocks.
  if (st.taskgraph) {
    LoopGraph& lg = loop_graph(st, rec);
    const LoopGraph::Compiled& c = compile_range(lg, begin, end);
    return run_graph_epoch(st, rec, lg, c, begin, end, {});
  }

  // Colour-ordered sweep. Classes hold ascending indices, so the slice
  // inside [begin, end) is a contiguous subrange found by binary search.
  const mesh::Colouring& col = loop_colouring(st, rec);
  st.dispatch_max_colours = std::max(st.dispatch_max_colours,
                                     col.num_colours);
  for (const LIdxVec& cls : col.classes) {
    const auto lo = std::lower_bound(cls.begin(), cls.end(), begin);
    const auto hi = std::lower_bound(lo, cls.end(), end);
    sweep_class(st, rec, cls.data() + (lo - cls.begin()),
                static_cast<std::size_t>(hi - lo), col.block_elems);
  }
  return end - begin;
}

std::int64_t run_list(RankState& st, const LoopRecord& rec,
                      const LIdxVec& idx) {
  if (idx.empty()) return 0;
  if (st.serial_dispatch) {
    for (lidx_t i : idx) rec.list_body(&i, 1);
    st.dispatch_regions += static_cast<std::int64_t>(idx.size());
    return static_cast<std::int64_t>(idx.size());
  }
  if (st.pool == nullptr || has_gbl_inc(rec)) {
    rec.list_body(idx.data(), idx.size());
    st.dispatch_regions += 1;
    return static_cast<std::int64_t>(idx.size());
  }
  if (!rec.spec.has_indirect_write())
    return run_list_chunked(st, rec, idx.data(), idx.size());

  // Bucket the list per colour (stable order — independent of width),
  // then sweep the buckets colour by colour.
  const mesh::Colouring& col = loop_colouring(st, rec);
  st.dispatch_max_colours = std::max(st.dispatch_max_colours,
                                     col.num_colours);
  std::vector<LIdxVec>& buckets = st.colour_scratch;
  if (buckets.size() < static_cast<std::size_t>(col.num_colours))
    buckets.resize(static_cast<std::size_t>(col.num_colours));
  for (auto& b : buckets) b.clear();
  for (lidx_t i : idx)
    buckets[static_cast<std::size_t>(col.colour[static_cast<std::size_t>(i)])]
        .push_back(i);
  for (int c = 0; c < col.num_colours; ++c)
    sweep_class(st, rec, buckets[static_cast<std::size_t>(c)].data(),
                buckets[static_cast<std::size_t>(c)].size(),
                col.block_elems);
  return static_cast<std::int64_t>(idx.size());
}

}  // namespace op2ca::core::detail
