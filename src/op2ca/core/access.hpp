// OP2 access descriptors: how a par_loop argument touches its dat.
#pragma once

namespace op2ca::core {

/// Mirrors OP2's OP_READ / OP_WRITE / OP_RW / OP_INC access modes.
enum class Access {
  READ,   ///< read-only.
  WRITE,  ///< full overwrite of the touched element.
  RW,     ///< read-modify-write.
  INC,    ///< commutative increment (kernel only adds contributions).
};

constexpr bool reads(Access a) {
  return a == Access::READ || a == Access::RW || a == Access::INC;
}
/// Reads that consume a value (INC's read of the old value is handled
/// separately by the sync-depth rules).
constexpr bool reads_value(Access a) {
  return a == Access::READ || a == Access::RW;
}
constexpr bool writes(Access a) {
  return a == Access::WRITE || a == Access::RW || a == Access::INC;
}

const char* access_name(Access a);

}  // namespace op2ca::core
