#include <exception>
#include <ostream>
#include <mutex>
#include <thread>

#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"
#include "op2ca/util/table.hpp"

namespace op2ca::core {

World::World(mesh::MeshDef mesh, WorldConfig cfg)
    : mesh_(std::move(mesh)), cfg_(std::move(cfg)) {
  OP2CA_REQUIRE(cfg_.nranks >= 1, "World needs nranks >= 1");
  OP2CA_REQUIRE(cfg_.threads_per_rank >= 1,
                "World needs threads_per_rank >= 1");
  OP2CA_REQUIRE(mesh_.num_sets() > 0, "World needs a non-empty mesh");

  mesh::set_id seed = 0;
  if (!cfg_.seed_set.empty()) {
    const auto id = mesh_.find_set(cfg_.seed_set);
    OP2CA_REQUIRE(id.has_value(), "unknown seed set: " + cfg_.seed_set);
    seed = *id;
  }

  part_ = partition::partition_mesh(mesh_, cfg_.nranks, cfg_.partitioner,
                                    seed);

  halo::HaloPlanOptions opts;
  opts.depth = cfg_.halo_depth;
  opts.build_local_maps = true;
  plan_ = halo::build_halo_plan(mesh_, part_, opts);

  // Locality layer: permute each rank's local numbering within the plan's
  // layers BEFORE any per-rank state exists. Dats, exchange plans,
  // colourings and slice tables are all derived lazily from the plan, so
  // ordering the permutation here is what guarantees no cache ever sees
  // the pre-reorder numbering.
  reorder_ = halo::apply_reorder(mesh_, cfg_.reorder, &plan_);

  transport_ = sim::make_backend(cfg_.transport, cfg_.nranks);
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (rank_t r = 0; r < cfg_.nranks; ++r)
    ranks_.push_back(
        std::make_unique<detail::RankState>(this, *transport_, r));
}

World::~World() = default;

void World::run(const std::function<void(Runtime&)>& spmd) {
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto rank_main = [&](detail::RankState* state) {
    try {
      Runtime rt(this, state);
      spmd(rt);
      detail::flush_lazy(*state);  // drain any deferred loops
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Wake peers blocked in matches/barriers so the run can unwind.
      transport_->poison();
    }
  };

  if (cfg_.nranks == 1) {
    rank_main(ranks_[0].get());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(ranks_.size());
    for (auto& state : ranks_)
      threads.emplace_back(rank_main, state.get());
    for (auto& t : threads) t.join();
  }

  if (first_error) {
    // A failed rank may leave peers blocked in matches that will never
    // complete only if they also depend on it; joining above succeeded,
    // so all ranks have returned (errored ranks threw out of their SPMD
    // body). Surface the first error.
    std::rethrow_exception(first_error);
  }
}

std::vector<double> World::fetch_dat(mesh::dat_id d) const {
  const mesh::DatDef& dd = mesh_.dat(d);
  std::vector<double> out(static_cast<std::size_t>(
      mesh_.set(dd.set).size * dd.dim));
  for (const auto& state : ranks_) {
    const halo::SetLayout& lay =
        plan_.layout(state->rank, dd.set);
    const detail::RankDat& rd = state->dats[static_cast<std::size_t>(d)];
    halo::scatter_owned(rd.data.data(), lay, rd.layout, &out);
  }
  return out;
}

void World::reset_dat(mesh::dat_id d, const std::vector<double>& global) {
  const mesh::DatDef& dd = mesh_.dat(d);
  OP2CA_REQUIRE(static_cast<gidx_t>(global.size()) ==
                    mesh_.set(dd.set).size * dd.dim,
                "reset_dat: size mismatch for dat " + dd.name);
  for (auto& state : ranks_) state->refresh_dat_from_global(d, global);
}

std::map<std::string, LoopMetrics> World::loop_metrics() const {
  std::map<std::string, LoopMetrics> merged;
  for (const auto& state : ranks_)
    for (const auto& [name, m] : state->loop_metrics)
      merged[name].merge_from(m);
  return merged;
}

std::map<std::string, LoopMetrics> World::chain_metrics() const {
  std::map<std::string, LoopMetrics> merged;
  for (const auto& state : ranks_)
    for (const auto& [name, m] : state->chain_metrics)
      merged[name].merge_from(m);
  return merged;
}

void World::write_metrics_csv(std::ostream& os) const {
  Table t;
  t.set_header({"kind", "name", "calls", "core_iters", "halo_iters",
                "msgs", "bytes", "max_msg_bytes", "max_neighbors",
                "wall_s", "pack_s", "core_s", "wait_s", "unpack_s",
                "halo_s", "regions", "plan_builds", "staging_allocs",
                "chunks", "colours", "busy_s", "tasks", "steals",
                "dep_wait_s", "gather_span", "reuse_gap", "layout",
                "bytes_per_elem", "numa_bytes", "node_bytes", "net_bytes",
                "stripes"});
  t.set_precision(6);
  auto add = [&t](const std::string& kind, const std::string& name,
                  const LoopMetrics& m) {
    t.add_row({kind, name, m.calls, m.core_iters, m.halo_iters, m.msgs,
               m.bytes, m.max_msg_bytes,
               static_cast<std::int64_t>(m.max_neighbors), m.wall_seconds,
               m.pack_seconds, m.core_seconds, m.wait_seconds,
               m.unpack_seconds, m.halo_seconds, m.dispatch_regions,
               m.plan_builds, m.staging_allocs, m.chunks,
               static_cast<std::int64_t>(m.max_colours), m.busy_seconds,
               m.tasks, m.steals, m.dep_wait_seconds,
               m.gather_span, m.reuse_gap,
               std::string(mesh::layout_name(
                   static_cast<mesh::LayoutKind>(m.layout_code))),
               m.halo_elems > 0
                   ? static_cast<double>(m.bytes) /
                         static_cast<double>(m.halo_elems)
                   : 0.0,
               m.numa_bytes, m.node_bytes, m.net_bytes, m.stripes});
  };
  for (const auto& [name, m] : loop_metrics()) add("loop", name, m);
  for (const auto& [name, m] : chain_metrics()) add("chain", name, m);
  t.write_csv(os);
}

void World::clear_metrics() {
  for (auto& state : ranks_) {
    state->loop_metrics.clear();
    state->chain_metrics.clear();
  }
}

}  // namespace op2ca::core
