#include <cstring>
#include <exception>
#include <ostream>
#include <mutex>
#include <thread>
#include <type_traits>

#include "op2ca/comm/mpi_backend.hpp"
#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/util/error.hpp"
#include "op2ca/util/log.hpp"
#include "op2ca/util/table.hpp"

namespace op2ca::core {

World::World(mesh::MeshDef mesh, WorldConfig cfg)
    : mesh_(std::move(mesh)), cfg_(std::move(cfg)) {
  OP2CA_REQUIRE(cfg_.nranks >= 1, "World needs nranks >= 1");
  OP2CA_REQUIRE(cfg_.threads_per_rank >= 1,
                "World needs threads_per_rank >= 1");
  OP2CA_REQUIRE(cfg_.tile >= 1, "World needs tile >= 1");
  OP2CA_REQUIRE(mesh_.num_sets() > 0, "World needs a non-empty mesh");

  mesh::set_id seed = 0;
  if (!cfg_.seed_set.empty()) {
    const auto id = mesh_.find_set(cfg_.seed_set);
    OP2CA_REQUIRE(id.has_value(), "unknown seed set: " + cfg_.seed_set);
    seed = *id;
  }

  part_ = partition::partition_mesh(mesh_, cfg_.nranks, cfg_.partitioner,
                                    seed);

  halo::HaloPlanOptions opts;
  // Temporal tiling needs layers for the fused window to grow into: a
  // tile of k invocations extends the Alg-3 window roughly k-fold, so
  // the plan is built k times deeper. The largest tile any chain can run
  // at governs (per-chain tile= entries may exceed the world default);
  // tile == 1 everywhere leaves the depth untouched — bitwise-legacy.
  int max_tile = cfg_.tile;
  for (const auto& [name, entry] : cfg_.chains.entries())
    if (entry.enabled) max_tile = std::max(max_tile, entry.tile);
  opts.depth = cfg_.halo_depth * std::max(1, max_tile);
  opts.build_local_maps = true;
  plan_ = halo::build_halo_plan(mesh_, part_, opts);

  // Locality layer: permute each rank's local numbering within the plan's
  // layers BEFORE any per-rank state exists. Dats, exchange plans,
  // colourings and slice tables are all derived lazily from the plan, so
  // ordering the permutation here is what guarantees no cache ever sees
  // the pre-reorder numbering.
  reorder_ = halo::apply_reorder(mesh_, cfg_.reorder, &plan_);

  transport_ = sim::make_backend(cfg_.transport, cfg_.nranks);

  // Process-per-rank SPMD mode: under a real MPI the backend pins this
  // process to one rank; only that rank's state (dats, plans, pools)
  // exists here — peer ranks live in peer processes. The partition and
  // halo plan above are deterministic functions of the mesh and config,
  // so every process derives the identical global plan and disagreement
  // is impossible by construction.
  if (auto* mpi = dynamic_cast<sim::MpiBackend*>(transport_.get()))
    spmd_rank_ = mpi->local_rank();
  ranks_.resize(static_cast<std::size_t>(cfg_.nranks));
  for (rank_t r = 0; r < cfg_.nranks; ++r)
    if (spmd_rank_ < 0 || r == spmd_rank_)
      ranks_[static_cast<std::size_t>(r)] =
          std::make_unique<detail::RankState>(this, *transport_, r);
}

World::~World() = default;

void World::run(const std::function<void(Runtime&)>& spmd) {
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto rank_main = [&](detail::RankState* state) {
    try {
      Runtime rt(this, state);
      spmd(rt);
      detail::flush_deferred(*state);  // drain tiles + lazy queue
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Wake peers blocked in matches/barriers so the run can unwind.
      transport_->poison();
    }
  };

  if (spmd_rank_ >= 0) {
    // One process, one rank: run inline. A peer process that fails exits
    // non-zero and the MPI launcher tears the job down; poison() above
    // only unblocks threads of THIS process, so the local error still
    // surfaces promptly below.
    rank_main(ranks_[static_cast<std::size_t>(spmd_rank_)].get());
  } else if (cfg_.nranks == 1) {
    rank_main(ranks_[0].get());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(ranks_.size());
    for (auto& state : ranks_)
      threads.emplace_back(rank_main, state.get());
    for (auto& t : threads) t.join();
  }

  if (first_error) {
    // A failed rank may leave peers blocked in matches that will never
    // complete only if they also depend on it; joining above succeeded,
    // so all ranks have returned (errored ranks threw out of their SPMD
    // body). Surface the first error.
    std::rethrow_exception(first_error);
  }
}

sim::Comm& World::spmd_comm() const {
  OP2CA_ASSERT(spmd_rank_ >= 0, "spmd_comm outside SPMD mode");
  return ranks_[static_cast<std::size_t>(spmd_rank_)]->comm;
}

std::vector<double> World::fetch_dat(mesh::dat_id d) const {
  const mesh::DatDef& dd = mesh_.dat(d);
  std::vector<double> out(static_cast<std::size_t>(
      mesh_.set(dd.set).size * dd.dim));
  for (const auto& state : ranks_) {
    if (!state) continue;  // SPMD mode: peer ranks live in peer processes.
    const halo::SetLayout& lay =
        plan_.layout(state->rank, dd.set);
    const detail::RankDat& rd = state->dats[static_cast<std::size_t>(d)];
    // Device mode: the host-visible image is the downloaded shadow, not
    // the device array — fetch_dat is the D2H synchronisation point.
    const double* src =
        state->device ? state->device->to_host(d) : rd.data.data();
    halo::scatter_owned(src, lay, rd.layout, &out);
  }
  // SPMD mode: each process scattered only its owned slots into a
  // zero-initialized array, and every global element is owned by exactly
  // one rank, so an element-wise sum reassembles the full array bitwise
  // on every process. Collective — all processes must call fetch_dat in
  // the same order (they do: SPMD programs run the same code).
  if (spmd_rank_ >= 0) out = spmd_comm().allreduce_sum(std::move(out));
  return out;
}

void World::reset_dat(mesh::dat_id d, const std::vector<double>& global) {
  const mesh::DatDef& dd = mesh_.dat(d);
  OP2CA_REQUIRE(static_cast<gidx_t>(global.size()) ==
                    mesh_.set(dd.set).size * dd.dim,
                "reset_dat: size mismatch for dat " + dd.name);
  // SPMD mode needs no exchange: the caller's global array is replicated
  // (every process runs the same program), so each refreshes its rank.
  for (auto& state : ranks_)
    if (state) state->refresh_dat_from_global(d, global);
}

namespace {

// LoopMetrics is a flat struct of scalars; the wire format for the SPMD
// cross-process merge is simply [u32 name length | name | raw struct]
// per map entry. Every process runs the same binary, so the raw layout
// matches by construction.
ByteBuf serialize_metrics(const std::map<std::string, LoopMetrics>& m) {
  static_assert(std::is_trivially_copyable_v<LoopMetrics>,
                "LoopMetrics must stay flat for the SPMD metrics wire");
  std::size_t total = 0;
  for (const auto& [name, lm] : m)
    total += sizeof(std::uint32_t) + name.size() + sizeof(LoopMetrics);
  ByteBuf out(total);
  std::size_t off = 0;
  for (const auto& [name, lm] : m) {
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    std::memcpy(out.data() + off, &len, sizeof(len));
    off += sizeof(len);
    std::memcpy(out.data() + off, name.data(), name.size());
    off += name.size();
    std::memcpy(out.data() + off, &lm, sizeof(LoopMetrics));
    off += sizeof(LoopMetrics);
  }
  return out;
}

void merge_serialized_metrics(const ByteBuf& blob,
                              std::map<std::string, LoopMetrics>* into) {
  std::size_t off = 0;
  while (off < blob.size()) {
    OP2CA_ASSERT(off + sizeof(std::uint32_t) <= blob.size(),
                 "metrics blob truncated");
    std::uint32_t len = 0;
    std::memcpy(&len, blob.data() + off, sizeof(len));
    off += sizeof(len);
    OP2CA_ASSERT(off + len + sizeof(LoopMetrics) <= blob.size(),
                 "metrics blob truncated");
    std::string name(reinterpret_cast<const char*>(blob.data() + off), len);
    off += len;
    LoopMetrics lm;
    std::memcpy(&lm, blob.data() + off, sizeof(LoopMetrics));
    off += sizeof(LoopMetrics);
    (*into)[name].merge_from(lm);
  }
}

}  // namespace

std::map<std::string, LoopMetrics> World::merged_metrics(bool chains) const {
  std::map<std::string, LoopMetrics> merged;
  for (const auto& state : ranks_) {
    if (!state) continue;
    const auto& src = chains ? state->chain_metrics : state->loop_metrics;
    for (const auto& [name, m] : src) merged[name].merge_from(m);
  }
  if (spmd_rank_ >= 0) {
    // Collective: exchange each process's single-rank merge and fold the
    // peers' in rank order, so every process reports the same totals the
    // threaded World would.
    const std::vector<ByteBuf> all =
        spmd_comm().allgather_bytes(serialize_metrics(merged));
    std::map<std::string, LoopMetrics> global;
    for (const ByteBuf& blob : all) merge_serialized_metrics(blob, &global);
    return global;
  }
  return merged;
}

std::map<std::string, LoopMetrics> World::loop_metrics() const {
  return merged_metrics(/*chains=*/false);
}

std::map<std::string, LoopMetrics> World::chain_metrics() const {
  return merged_metrics(/*chains=*/true);
}

void World::write_metrics_csv(std::ostream& os) const {
  Table t;
  t.set_header({"kind", "name", "calls", "core_iters", "halo_iters",
                "msgs", "bytes", "max_msg_bytes", "max_neighbors",
                "wall_s", "pack_s", "core_s", "wait_s", "unpack_s",
                "halo_s", "regions", "plan_builds", "staging_allocs",
                "chunks", "colours", "busy_s", "tasks", "steals",
                "dep_wait_s", "gather_span", "reuse_gap", "layout",
                "bytes_per_elem", "numa_bytes", "node_bytes", "net_bytes",
                "stripes", "h2d_bytes", "d2h_bytes", "device_transfers",
                "device_s", "tile", "redundant_elems", "msgs_saved"});
  t.set_precision(6);
  auto add = [&t](const std::string& kind, const std::string& name,
                  const LoopMetrics& m) {
    t.add_row({kind, name, m.calls, m.core_iters, m.halo_iters, m.msgs,
               m.bytes, m.max_msg_bytes,
               static_cast<std::int64_t>(m.max_neighbors), m.wall_seconds,
               m.pack_seconds, m.core_seconds, m.wait_seconds,
               m.unpack_seconds, m.halo_seconds, m.dispatch_regions,
               m.plan_builds, m.staging_allocs, m.chunks,
               static_cast<std::int64_t>(m.max_colours), m.busy_seconds,
               m.tasks, m.steals, m.dep_wait_seconds,
               m.gather_span, m.reuse_gap,
               std::string(mesh::layout_name(
                   static_cast<mesh::LayoutKind>(m.layout_code))),
               m.halo_elems > 0
                   ? static_cast<double>(m.bytes) /
                         static_cast<double>(m.halo_elems)
                   : 0.0,
               m.numa_bytes, m.node_bytes, m.net_bytes, m.stripes,
               m.h2d_bytes, m.d2h_bytes, m.device_transfers,
               m.device_seconds, m.tile, m.redundant_elems, m.msgs_saved});
  };
  for (const auto& [name, m] : loop_metrics()) add("loop", name, m);
  for (const auto& [name, m] : chain_metrics()) add("chain", name, m);
  t.write_csv(os);
}

void World::clear_metrics() {
  for (auto& state : ranks_) {
    if (!state) continue;
    state->loop_metrics.clear();
    state->chain_metrics.clear();
  }
}

}  // namespace op2ca::core
