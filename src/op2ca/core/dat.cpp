// Per-rank dat storage: localization from the global MeshDef arrays into
// the halo-plan layout, and refresh/scatter helpers.
#include "op2ca/core/runtime_detail.hpp"
#include "op2ca/halo/renumber.hpp"
#include "op2ca/util/error.hpp"

namespace op2ca::core::detail {

RankState::RankState(World* w, sim::TransportBackend& transport, rank_t r)
    : world(w), rank(r),
      comm(transport, r, &w->config().cost, &w->config().transport) {
  const mesh::MeshDef& mesh = world->mesh();
  serial_dispatch = w->config().serial_dispatch;
  // serial_dispatch wins over threading and the task graph: the
  // per-element equivalence knob must reproduce the classic order exactly.
  taskgraph = w->config().taskgraph && !serial_dispatch;
  // Taskgraph mode needs a pool even at width 1 so that the width-1 FIFO
  // graph path runs — keeping a single-thread taskgraph World bitwise
  // equal to wider ones. Device mode needs one for the same reason: the
  // hierarchical sweep dispatches blocks through the pool at any width,
  // so a width-1 device World is bitwise equal to wider ones.
  if ((w->config().threads_per_rank > 1 || taskgraph ||
       w->config().device.enabled) &&
      !serial_dispatch)
    pool = std::make_unique<util::ThreadPool>(w->config().threads_per_rank);
  // Blocked colouring rides with the locality layer: with reordering off
  // every dispatch path must stay bitwise-identical to earlier builds.
  // The task graph always needs blocks (its dependency unit), so its
  // block size wins whenever it is on.
  if (taskgraph)
    colour_block = std::max<lidx_t>(2, w->config().taskgraph_block);
  else if (w->config().reorder.enabled())
    colour_block = std::max<lidx_t>(1, w->config().reorder.colour_block);
  dats.resize(static_cast<std::size_t>(mesh.num_dats()));
  loop_exchanges.resize(static_cast<std::size_t>(mesh.num_dats()));
  const mesh::LayoutConfig& lcfg = w->config().layout;
  for (mesh::dat_id d = 0; d < mesh.num_dats(); ++d) {
    const mesh::DatDef& dd = mesh.dat(d);
    const halo::SetLayout& sl = layout(dd.set);
    RankDat& rd = dats[static_cast<std::size_t>(d)];
    rd.dim = dd.dim;
    rd.layout = mesh::DatLayout::make(
        lcfg.resolve(mesh.set(dd.set).name, dd.name), dd.dim, sl.total,
        lcfg.aosoa_block);
    rd.data.resize(rd.layout.alloc_doubles());
    halo::gather_local(dd.data, sl, rd.layout, rd.data.data());
    // Halos are gathered straight from the global arrays, so every layer
    // the plan holds starts in sync.
    rd.fresh_depth = world->plan().depth;
  }
  if (w->config().device.enabled) {
    device = std::make_unique<gpu::DeviceSpace>(w->config().device, &staging);
    for (mesh::dat_id d = 0; d < mesh.num_dats(); ++d) {
      RankDat& rd = dats[static_cast<std::size_t>(d)];
      device->bind(d, rd.data.data(), rd.data.size());
      // The gather above was a host-side write: the first epoch uploads
      // every dat, then steady-state epochs move nothing redundant.
      device->host_wrote(d);
    }
  }
}

const halo::RankPlan& RankState::rank_plan() const {
  return world->plan().ranks[static_cast<std::size_t>(rank)];
}

const halo::SetLayout& RankState::layout(mesh::set_id s) const {
  return rank_plan().sets[static_cast<std::size_t>(s)];
}

RankDat& RankState::rank_dat(mesh::dat_id d) {
  OP2CA_REQUIRE(d >= 0 && d < static_cast<int>(dats.size()),
                "dat id out of range");
  return dats[static_cast<std::size_t>(d)];
}

void RankState::refresh_dat_from_global(
    mesh::dat_id d, const std::vector<double>& global_data) {
  const mesh::DatDef& dd = world->mesh().dat(d);
  RankDat& rd = rank_dat(d);
  rd.data.resize(rd.layout.alloc_doubles());
  halo::gather_local(global_data, layout(dd.set), rd.layout,
                     rd.data.data());
  rd.fresh_depth = world->plan().depth;
  if (device) {
    device->rebind(d, rd.data.data(), rd.data.size());
    device->host_wrote(d);
  }
}

}  // namespace op2ca::core::detail
