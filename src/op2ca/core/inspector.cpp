// Loop-chain inspection: the runtime dependency analysis of the CA
// back-end (paper Section 3.1).
//
// Three cooperating analyses run over a ChainSpec:
//
// 1. calc_halo_layers — Alg 3 of the paper, implemented verbatim: walking
//    loops n-1..0, per-dat halo extensions accumulate over consecutive
//    indirect reads and close at the first preceding write. These HE
//    values reproduce Tables 3-4 and size the grouped message (Eq 4).
//
// 2. Execution depths — a semantic backward pass tracking, per dat, the
//    halo *level* to which its values must be correct for downstream
//    reads. A writer loop must execute `level (+1 if the write is
//    indirect)` exec-halo layers to regenerate them: every writer of an
//    element at level L sits within layer L+1. This is the depth the CA
//    executor actually iterates; it coincides with Alg 3 on the paper's
//    chains, and stays safe on corner cases the printed Alg 3 glosses
//    over (see DESIGN.md).
//
// 3. Core shrink + sync — a forward pass. Per dat we track sd (how deep
//    into the owned region deferred halo-phase writes will land, in
//    bipartite map-hop units) and pr (how deep deferred halo-phase reads
//    reach). A loop's core must exclude owned elements within `shrink`
//    hops of the boundary so that no core iteration reads data a deferred
//    iteration will produce (flow), overwrites data a deferred iteration
//    still needs (anti), or is overwritten afterwards (output). The same
//    pass derives which dats need a pre-chain halo exchange and to what
//    level (reads of values the chain does not regenerate).
#include "op2ca/core/chain.hpp"

#include <algorithm>

#include "op2ca/util/error.hpp"

namespace op2ca::core {

bool LoopSpec::has_indirect_write() const {
  for (const ArgSpec& a : args)
    if (a.indirect && writes(a.mode)) return true;
  return false;
}

std::map<mesh::dat_id, MergedAccess> merge_loop_accesses(
    const LoopSpec& loop) {
  std::map<mesh::dat_id, MergedAccess> merged;
  for (const ArgSpec& a : loop.args) {
    if (a.dat < 0) continue;  // global args carry no dat
    MergedAccess& m = merged[a.dat];
    if (reads_value(a.mode))
      m.self_combine =
          m.self_combine && a.mode == Access::RW && a.self_combine;
    if (!m.present) {
      m.present = true;
      m.mode = a.mode;
      m.indirect = a.indirect;
      continue;
    }
    m.indirect = m.indirect || a.indirect;
    const bool rd = reads_value(m.mode) || reads_value(a.mode);
    const bool wr = writes(m.mode) || writes(a.mode);
    const bool inc = m.mode == Access::INC || a.mode == Access::INC;
    if (rd && wr)
      m.mode = Access::RW;
    else if (wr)
      m.mode = inc && m.mode == a.mode ? Access::INC
               : inc                   ? Access::RW
                                       : Access::WRITE;
    else
      m.mode = Access::READ;
  }
  return merged;
}

namespace {

/// Alg 3 of the paper (calc_halo_layers), verbatim. Returns per-loop
/// per-dat HE plus the per-loop effective maximum.
void calc_halo_layers(const ChainSpec& spec,
                      std::vector<std::map<mesh::dat_id, int>>* he_per_dat,
                      std::vector<int>* he) {
  const int n = static_cast<int>(spec.loops.size());
  he_per_dat->assign(static_cast<std::size_t>(n), {});
  he->assign(static_cast<std::size_t>(n), 1);

  // Collect every dat accessed anywhere in the chain.
  std::map<mesh::dat_id, bool> dats;
  std::vector<std::map<mesh::dat_id, MergedAccess>> merged(
      static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    merged[static_cast<std::size_t>(l)] =
        merge_loop_accesses(spec.loops[static_cast<std::size_t>(l)]);
    for (const auto& [d, m] : merged[static_cast<std::size_t>(l)])
      dats[d] = true;
  }

  for (const auto& [dat, unused] : dats) {
    (void)unused;
    int halo_ext = 0;
    bool ind_rd = false;
    for (int l = n - 1; l >= 0; --l) {
      int he_dl = 1;
      const auto& lm = merged[static_cast<std::size_t>(l)];
      const auto it = lm.find(dat);
      if (it != lm.end()) {
        const MergedAccess& a = it->second;
        if (ind_rd && writes(a.mode)) {
          he_dl = halo_ext + 1;
          halo_ext = 0;
          ind_rd = false;
        } else if (a.indirect && reads_value(a.mode)) {
          // The printed Alg 3 accumulates (halo_ext += 1) over consecutive
          // indirect reads, but the paper's own Tables 3-4 (period chain,
          // HE_vol of the two limxp reads; jacob chain) show the authors'
          // implementation does not: a fresh read (re)starts the
          // extension at 1 and only a subsequent write deepens it.
          halo_ext = 1;
          he_dl = halo_ext;
          ind_rd = true;
        } else if (!a.indirect && reads_value(a.mode)) {
          he_dl = 1;
          halo_ext = 0;
          ind_rd = false;
        }
      }
      (*he_per_dat)[static_cast<std::size_t>(l)][dat] = he_dl;
    }
  }

  for (int l = 0; l < n; ++l) {
    int m = 1;
    for (const auto& [d, v] : (*he_per_dat)[static_cast<std::size_t>(l)])
      m = std::max(m, v);
    (*he)[static_cast<std::size_t>(l)] = m;
  }
}

/// True when a set can be redundantly executed (sources some map, so it
/// has exec-halo candidates).
bool set_executable(const mesh::MeshDef& mesh, mesh::set_id s) {
  for (mesh::map_id m = 0; m < mesh.num_maps(); ++m)
    if (mesh.map(m).from == s) return true;
  return false;
}

/// Semantic execution depths (backward pass over required value levels).
std::vector<int> calc_exec_depths(const mesh::MeshDef& mesh,
                                  const ChainSpec& spec,
                                  std::vector<char>* exec_halo) {
  const int n = static_cast<int>(spec.loops.size());
  std::vector<int> depth(static_cast<std::size_t>(n), 1);
  exec_halo->assign(static_cast<std::size_t>(n), 0);
  std::map<mesh::dat_id, int> need_level;

  for (int l = n - 1; l >= 0; --l) {
    const LoopSpec& loop = spec.loops[static_cast<std::size_t>(l)];
    const auto merged = merge_loop_accesses(loop);
    int d = 1;
    bool needs_exec = loop.has_indirect_write();
    for (const auto& [dat, m] : merged) {
      if (!writes(m.mode)) continue;
      const auto it = need_level.find(dat);
      if (it == need_level.end() || it->second == 0) continue;
      needs_exec = true;
      // A dat written here and read downstream must be regenerated on
      // the halo; direct writes to a set with no exec halo cannot be.
      OP2CA_REQUIRE(
          m.indirect || set_executable(mesh, loop.set),
          "chain '" + spec.name + "': loop '" + loop.name +
              "' writes dat '" + mesh.dat(dat).name +
              "' (read by a later loop) directly on set '" +
              mesh.set(loop.set).name +
              "', which has no exec halo to recompute the values on — "
              "this chain cannot execute communication-avoiding; split "
              "it at this loop");
      d = std::max(d, it->second + (m.indirect ? 1 : 0));
    }
    depth[static_cast<std::size_t>(l)] = d;
    (*exec_halo)[static_cast<std::size_t>(l)] = needs_exec ? 1 : 0;

    for (const auto& [dat, m] : merged) {
      // A value read by iterations up to layer d consumes the dat at
      // levels <= d — unless every read is a self-combine RW, whose
      // old-value consumption at the write sites is already covered by
      // the dat's existing downstream need.
      if (reads_value(m.mode) &&
          !(writes(m.mode) && m.self_combine))
        need_level[dat] = std::max(need_level[dat], d);
      // A covering overwrite regenerates values; upstream producers no
      // longer matter. Only a direct WRITE is guaranteed covering.
      if (m.mode == Access::WRITE && !m.indirect) need_level[dat] = 0;
    }
  }
  return depth;
}

/// Forward pass: core shrink per loop and pre-chain sync levels per dat.
void calc_shrink_and_syncs(const mesh::MeshDef& mesh, const ChainSpec& spec,
                           const std::vector<int>& exec_depth,
                           const std::vector<char>& exec_halo,
                           std::vector<int>* shrink,
                           std::vector<DatSync>* syncs) {
  const int n = static_cast<int>(spec.loops.size());
  shrink->assign(static_cast<std::size_t>(n), 0);

  std::map<mesh::dat_id, int> sd;   // deferred-write depth into owned
  std::map<mesh::dat_id, int> pr;   // deferred-read depth into owned
  std::map<mesh::dat_id, int> regen;      // level regenerated in-chain
  std::map<mesh::dat_id, bool> triggered;  // pre-chain values consumed

  // Paper packing rule (Eq 4): a synced dat enters the grouped message
  // with eeh+enh layers up to h_l for EVERY loop l that accesses it, so
  // its sync depth is the max effective extension over accessing loops.
  std::map<mesh::dat_id, int> access_depth;
  for (int l = 0; l < n; ++l)
    for (const auto& [dat, m] :
         merge_loop_accesses(spec.loops[static_cast<std::size_t>(l)])) {
      (void)m;
      access_depth[dat] =
          std::max(access_depth[dat],
                   exec_depth[static_cast<std::size_t>(l)]);
    }

  for (int l = 0; l < n; ++l) {
    const LoopSpec& loop = spec.loops[static_cast<std::size_t>(l)];
    const auto merged = merge_loop_accesses(loop);
    const int d = exec_depth[static_cast<std::size_t>(l)];

    bool any_indirect = false;
    for (const auto& [dat, m] : merged) any_indirect |= m.indirect;

    int s = any_indirect ? 1 : 0;
    for (const auto& [dat, m] : merged) {
      const int hop = m.indirect ? 1 : 0;
      if (reads(m.mode)) {  // flow: core must not read deferred writes
        const auto it = sd.find(dat);
        if (it != sd.end() && it->second > 0)
          s = std::max(s, it->second + hop);
      }
      if (writes(m.mode)) {
        // anti: core must not overwrite data deferred reads still need;
        // output: nor data deferred writes will produce afterwards.
        const auto itp = pr.find(dat);
        if (itp != pr.end() && itp->second > 0)
          s = std::max(s, itp->second + hop);
        const auto itw = sd.find(dat);
        if (itw != sd.end() && itw->second > 0)
          s = std::max(s, itw->second + hop);
      }
    }
    (*shrink)[static_cast<std::size_t>(l)] = s;

    // Pre-chain halo values consumed by this loop's reads: fringe level
    // d. Direct reads touch halo elements only when the loop actually
    // executes exec layers.
    for (const auto& [dat, m] : merged) {
      if (!reads_value(m.mode)) continue;
      if (!m.indirect && !exec_halo[static_cast<std::size_t>(l)]) continue;
      const auto rg = regen.find(dat);
      const int have = rg == regen.end() ? 0 : rg->second;
      if (have < d) triggered[dat] = true;
    }

    // Register this loop's deferred footprint and regeneration.
    for (const auto& [dat, m] : merged) {
      const int hop = m.indirect ? 1 : 0;
      if (writes(m.mode)) sd[dat] = std::max(sd[dat], s + hop);
      if (reads(m.mode)) pr[dat] = std::max(pr[dat], s + hop);
      if (m.mode == Access::WRITE) {
        const int rl = m.indirect
                           ? d - 1
                           : (set_executable(mesh, loop.set) ? d : 0);
        regen[dat] = std::max(regen[dat], rl);
      }
    }
  }

  syncs->clear();
  for (const auto& [dat, t] : triggered)
    if (t) syncs->push_back(DatSync{dat, access_depth.at(dat)});
}

}  // namespace

ChainAnalysis inspect_chain(const mesh::MeshDef& mesh,
                            const ChainSpec& spec) {
  OP2CA_REQUIRE(!spec.loops.empty(), "inspect_chain: empty chain");
  for (const LoopSpec& loop : spec.loops) {
    OP2CA_REQUIRE(loop.set >= 0 && loop.set < mesh.num_sets(),
                  "inspect_chain: loop '" + loop.name +
                      "' has an invalid iteration set");
    for (const ArgSpec& a : loop.args) {
      if (a.dat >= 0)
        OP2CA_REQUIRE(a.dat < mesh.num_dats(),
                      "inspect_chain: bad dat in loop '" + loop.name + "'");
      if (a.indirect) {
        OP2CA_REQUIRE(a.map >= 0 && a.map < mesh.num_maps(),
                      "inspect_chain: indirect arg without a map in loop '" +
                          loop.name + "'");
        OP2CA_REQUIRE(mesh.map(a.map).from == loop.set,
                      "inspect_chain: map of indirect arg does not start at "
                      "the iteration set in loop '" +
                          loop.name + "'");
      }
    }
  }

  ChainAnalysis out;
  calc_halo_layers(spec, &out.he_per_dat, &out.he_alg3);

  const std::vector<int> exec_depth =
      calc_exec_depths(mesh, spec, &out.exec_halo);
  // The executor iterates the max of the paper's Alg-3 extension and the
  // semantic depth (they agree on all of the paper's chains).
  out.he.resize(exec_depth.size());
  for (std::size_t l = 0; l < exec_depth.size(); ++l)
    out.he[l] = std::max(out.he_alg3[l], exec_depth[l]);

  calc_shrink_and_syncs(mesh, spec, out.he, out.exec_halo, &out.shrink,
                        &out.syncs);

  out.required_depth = 1;
  for (int h : out.he) out.required_depth = std::max(out.required_depth, h);
  for (const DatSync& s : out.syncs)
    out.required_depth = std::max(out.required_depth, s.depth);
  return out;
}

}  // namespace op2ca::core
