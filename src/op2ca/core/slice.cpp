#include "op2ca/core/slice.hpp"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "op2ca/util/error.hpp"

namespace op2ca::core {
namespace {

/// Layer of each foreign element w.r.t. the chain's own connectivity:
/// a relayering of the structural exec halo using only the maps the
/// chain accesses. layer[set][local] is 1-based; absent = unreachable
/// through chain maps (never executed for this chain).
using ChainLayers = std::vector<std::unordered_map<lidx_t, int>>;

ChainLayers chain_layers(const mesh::MeshDef& mesh,
                         const halo::RankPlan& rp, int plan_depth,
                         const ChainSpec& spec) {
  // Collect the chain's maps once.
  std::set<mesh::map_id> chain_maps;
  for (const LoopSpec& loop : spec.loops)
    for (const ArgSpec& a : loop.args)
      if (a.indirect) chain_maps.insert(a.map);

  const int nsets = mesh.num_sets();
  ChainLayers layer(static_cast<std::size_t>(nsets));
  // Non-owned region membership per set (targets pulled in so far).
  std::vector<std::unordered_set<lidx_t>> region(
      static_cast<std::size_t>(nsets));

  for (int k = 1; k <= plan_depth; ++k) {
    // Exec discovery: structural exec candidates of a from-set whose
    // chain-map targets reach the region built so far.
    std::vector<std::pair<mesh::set_id, lidx_t>> fresh;
    for (mesh::map_id m : chain_maps) {
      const mesh::MapDef& mp = mesh.map(m);
      const halo::SetLayout& flay =
          rp.sets[static_cast<std::size_t>(mp.from)];
      const halo::SetLayout& tlay =
          rp.sets[static_cast<std::size_t>(mp.to)];
      const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
      auto& flayer = layer[static_cast<std::size_t>(mp.from)];
      for (lidx_t e = flay.exec_end[0]; e < flay.exec_end.back(); ++e) {
        if (flayer.count(e) != 0) continue;  // already layered
        bool reaches = false;
        for (int c = 0; c < mp.arity && !reaches; ++c) {
          const lidx_t t =
              lm.targets[static_cast<std::size_t>(e) *
                             static_cast<std::size_t>(mp.arity) +
                         static_cast<std::size_t>(c)];
          if (t == kInvalidLocal) continue;
          if (t < tlay.num_owned)
            reaches = true;  // region level 0
          else if (region[static_cast<std::size_t>(mp.to)].count(t) != 0)
            reaches = true;
        }
        if (reaches) {
          flayer.emplace(e, k);
          fresh.emplace_back(mp.from, e);
        }
      }
    }
    // Region growth: the fresh exec elements and their chain-map
    // targets become reachable for layer k+1.
    for (const auto& [s, e] : fresh) {
      region[static_cast<std::size_t>(s)].insert(e);
      for (mesh::map_id m : chain_maps) {
        const mesh::MapDef& mp = mesh.map(m);
        if (mp.from != s) continue;
        const halo::SetLayout& tlay =
            rp.sets[static_cast<std::size_t>(mp.to)];
        const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
        for (int c = 0; c < mp.arity; ++c) {
          const lidx_t t =
              lm.targets[static_cast<std::size_t>(e) *
                             static_cast<std::size_t>(mp.arity) +
                         static_cast<std::size_t>(c)];
          if (t != kInvalidLocal && t >= tlay.num_owned)
            region[static_cast<std::size_t>(mp.to)].insert(t);
        }
      }
    }
    // Also at layer 1: targets of OWNED iterations seed the region so
    // layer-2 exec elements touching the read fringe are found.
    if (k == 1) {
      for (mesh::map_id m : chain_maps) {
        const mesh::MapDef& mp = mesh.map(m);
        const halo::SetLayout& flay =
            rp.sets[static_cast<std::size_t>(mp.from)];
        const halo::SetLayout& tlay =
            rp.sets[static_cast<std::size_t>(mp.to)];
        const halo::LocalMap& lm = rp.maps[static_cast<std::size_t>(m)];
        // Owned boundary only: interior targets are owned anyway.
        for (lidx_t e = flay.core_count(1); e < flay.num_owned; ++e) {
          for (int c = 0; c < mp.arity; ++c) {
            const lidx_t t =
                lm.targets[static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(mp.arity) +
                           static_cast<std::size_t>(c)];
            if (t != kInvalidLocal && t >= tlay.num_owned)
              region[static_cast<std::size_t>(mp.to)].insert(t);
          }
        }
      }
    }
  }
  return layer;
}

}  // namespace

std::vector<LIdxVec> needed_exec_lists(const mesh::MeshDef& mesh,
                                       const halo::RankPlan& rp,
                                       int plan_depth,
                                       const ChainSpec& spec,
                                       const ChainAnalysis& analysis) {
  const int n = static_cast<int>(spec.loops.size());
  OP2CA_REQUIRE(static_cast<int>(analysis.he.size()) == n,
                "needed_exec_lists: analysis does not match chain");
  OP2CA_REQUIRE(!rp.maps.empty(),
                "needed_exec_lists: plan was built without local maps");

  const ChainLayers layers = chain_layers(mesh, rp, plan_depth, spec);

  std::vector<LIdxVec> lists(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    if (!analysis.exec_halo[static_cast<std::size_t>(l)]) continue;
    const LoopSpec& loop = spec.loops[static_cast<std::size_t>(l)];
    const int he =
        std::min(analysis.he[static_cast<std::size_t>(l)], plan_depth);
    const auto& slayer = layers[static_cast<std::size_t>(loop.set)];
    LIdxVec& out = lists[static_cast<std::size_t>(l)];
    for (const auto& [e, k] : slayer)
      if (k <= he) out.push_back(e);
    std::sort(out.begin(), out.end());
  }
  return lists;
}

}  // namespace op2ca::core
