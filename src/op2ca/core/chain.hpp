// Loop-chain abstraction (Section 2.2 of the paper) and its runtime
// inspection (Section 3.1, Alg 3).
//
// A ChainSpec is a pure structural description of a chain: the ordered
// loops, each with its iteration set and access descriptors. It is what
// the inspector consumes — both when the Runtime captures live par_loop
// calls and when benches analyse application chains without executing
// them (planned mode).
//
// ChainAnalysis is the inspector's output:
//  * per-loop, per-dat halo extensions HE_{D_l} and the per-loop
//    effective extension HE_l = max_D HE_{D_l}         (Alg 3 verbatim);
//  * per-loop core shrink: how many inward layers of owned elements must
//    be deferred to the post-exchange phase so every core iteration of
//    every loop can run while the single grouped message is in flight
//    (flow, anti and output dependencies tracked per dat in bipartite
//    map-hop units);
//  * the dats requiring a halo exchange at the start of the chain and
//    the layer depth each must be synced to (D^h of Alg 2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "op2ca/core/access.hpp"
#include "op2ca/mesh/mesh_def.hpp"

namespace op2ca::core {

/// One access descriptor of a loop: dat + mode (+ map when indirect).
struct ArgSpec {
  mesh::dat_id dat = -1;
  Access mode = Access::READ;
  bool indirect = false;
  mesh::map_id map = -1;  ///< valid when indirect.
  int map_idx = 0;        ///< map target column (indirect only).
  /// RW-only contract: the kernel reads this dat ONLY at the element it
  /// writes, and the value read influences ONLY that element's new value
  /// of this same dat (a monotone/idempotent self-combine, e.g.
  /// qo[v] = max(qo[v], local)). Order-independence across redundantly
  /// executed iterations already requires this discipline for
  /// multi-arity RW; declaring it lets the inspector avoid inflating
  /// upstream halo depths for cross-element reads that never happen.
  bool self_combine = false;
};

/// One loop of a chain.
struct LoopSpec {
  std::string name;
  mesh::set_id set = -1;
  std::vector<ArgSpec> args;
  /// True when some arg writes through a map — the loop must then execute
  /// import-exec halo layers (owner-compute redundant execution).
  bool has_indirect_write() const;
};

/// An ordered sequence of loops without global synchronisation.
struct ChainSpec {
  std::string name;
  std::vector<LoopSpec> loops;
};

/// A dat the chained execution must sync before starting, and how deep.
struct DatSync {
  mesh::dat_id dat = -1;
  int depth = 0;  ///< exec+nonexec layers 1..depth enter the message.
};

struct ChainAnalysis {
  /// he[l] — halo extension the executor iterates for loop l: the max of
  /// the paper's Alg-3 value and the semantic execution depth (identical
  /// on all of the paper's chains).
  std::vector<int> he;
  /// he_alg3[l] — the paper's Alg 3 effective extension, exactly as
  /// printed (reproduces the HE_l columns of Tables 3-4).
  std::vector<int> he_alg3;
  /// he_per_dat[l][dat] — HE_{D_l} for dats accessed in the chain.
  std::vector<std::map<mesh::dat_id, int>> he_per_dat;
  /// shrink[l] — owned elements within `shrink[l]` bipartite hops of the
  /// partition boundary are deferred out of loop l's core.
  std::vector<int> shrink;
  /// exec_halo[l] — whether loop l executes import-exec halo layers at
  /// all: true when it writes through a map (owner-compute) or when a
  /// later chain loop reads data it writes (halo regeneration). Loops
  /// whose halo-side outputs nobody needs skip the redundant execution
  /// (e.g. jac_centreline in Table 4).
  std::vector<char> exec_halo;
  /// Dats needing a pre-chain halo exchange, with their sync depth,
  /// assuming every accessed dat's halo is stale. The executor drops
  /// entries whose halo is already fresh deep enough (dirty-bit check).
  std::vector<DatSync> syncs;
  /// max over loops of he[l]; the halo plan must have been built at least
  /// this deep.
  int required_depth = 1;
};

/// Runs the inspection (Alg 3 + core-shrink dependency walk) on a chain.
ChainAnalysis inspect_chain(const mesh::MeshDef& mesh, const ChainSpec& spec);

/// Merges multiple args of the same dat in one loop into a single
/// (mode, indirect) pair: any-write + any-read => RW-like strength,
/// any indirect access dominates. Exposed for tests.
struct MergedAccess {
  Access mode = Access::READ;
  bool indirect = false;
  bool present = false;
  /// True when every value-reading access to the dat is a self-combine
  /// RW (no cross-element consumption of the dat's values).
  bool self_combine = true;
};
std::map<mesh::dat_id, MergedAccess> merge_loop_accesses(const LoopSpec& loop);

}  // namespace op2ca::core
