#include "op2ca/model/components.hpp"

#include "op2ca/core/slice.hpp"

#include <algorithm>
#include <set>

#include "op2ca/util/error.hpp"

namespace op2ca::model {
namespace {

constexpr std::int64_t kDoubleBytes =
    static_cast<std::int64_t>(sizeof(double));

/// Bytes of one level-1 list of a dat.
std::int64_t list_bytes(const std::vector<LIdxVec>& layers, int depth,
                        int dim) {
  std::int64_t n = 0;
  for (int k = 0; k < depth && k < static_cast<int>(layers.size()); ++k)
    n += static_cast<std::int64_t>(layers[static_cast<std::size_t>(k)].size());
  return n * dim * kDoubleBytes;
}

}  // namespace

double ChainComponents::comm_reduction_pct() const {
  if (op2_comm_bytes == 0) return 0.0;
  return 100.0 *
         static_cast<double>(op2_comm_bytes - ca_comm_bytes) /
         static_cast<double>(op2_comm_bytes);
}

double ChainComponents::comp_increase_pct() const {
  if (op2_total_iters == 0) return 0.0;
  return 100.0 *
         static_cast<double>(ca_total_iters - op2_total_iters) /
         static_cast<double>(op2_total_iters);
}

std::set<mesh::dat_id> steady_state_stale(
    const core::ChainSpec& spec,
    const std::set<mesh::dat_id>& outer_written) {
  std::set<mesh::dat_id> stale = outer_written;
  for (const core::LoopSpec& loop : spec.loops)
    for (const auto& [dat, m] : core::merge_loop_accesses(loop))
      if (core::writes(m.mode)) stale.insert(dat);
  return stale;
}

ChainComponents extract_components(
    const mesh::MeshDef& mesh, const halo::HaloPlan& plan,
    const core::ChainSpec& spec, const core::ChainAnalysis& analysis,
    const std::set<mesh::dat_id>* stale_at_entry) {
  const int n = static_cast<int>(spec.loops.size());
  OP2CA_REQUIRE(static_cast<int>(analysis.he.size()) == n,
                "extract_components: analysis does not match chain");

  ChainComponents out;
  out.op2_terms.assign(static_cast<std::size_t>(n), LoopTerms{});
  out.ca_terms.loops.assign(static_cast<std::size_t>(n), LoopTerms{});

  std::vector<std::map<mesh::dat_id, core::MergedAccess>> merged(
      static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l)
    merged[static_cast<std::size_t>(l)] =
        core::merge_loop_accesses(spec.loops[static_cast<std::size_t>(l)]);

  // Dats whose pre-chain halos are stale (identical on every rank).
  std::set<mesh::dat_id> initially_stale;
  for (const core::DatSync& s : analysis.syncs)
    if (stale_at_entry == nullptr || stale_at_entry->count(s.dat) != 0)
      initially_stale.insert(s.dat);

  for (rank_t r = 0; r < plan.nranks; ++r) {
    const halo::RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];

    // ---- Baseline (OP2) per-loop quantities with dirty-bit emulation.
    std::set<mesh::dat_id> stale = initially_stale;
    std::int64_t r_op2_comm = 0, r_op2_core = 0, r_op2_halo = 0;
    for (int l = 0; l < n; ++l) {
      const core::LoopSpec& loop = spec.loops[static_cast<std::size_t>(l)];
      const halo::SetLayout& lay =
          rp.sets[static_cast<std::size_t>(loop.set)];
      const bool exec_halo = loop.has_indirect_write();

      std::vector<mesh::dat_id> exch;
      for (const auto& [dat, m] : merged[static_cast<std::size_t>(l)]) {
        if (!core::reads_value(m.mode)) continue;
        if (!m.indirect && !exec_halo) continue;
        if (stale.count(dat) != 0) exch.push_back(dat);
      }
      for (mesh::dat_id d : exch) stale.erase(d);
      for (const auto& [dat, m] : merged[static_cast<std::size_t>(l)])
        if (core::writes(m.mode)) stale.insert(dat);

      // Per-class message maxima: eeh and enh travel as separate
      // messages (the factor 2 of Eq 1); classes with no elements send
      // nothing, so the per-neighbour message count is
      // d * (non-empty classes).
      int p_l = 0;
      std::int64_t m1 = 0;
      int classes = 0;
      {
        std::set<rank_t> neighbors;
        bool any_exec = false, any_nonexec = false;
        for (mesh::dat_id d : exch) {
          const mesh::DatDef& dd = mesh.dat(d);
          const halo::NeighborLists& nl =
              rp.lists[static_cast<std::size_t>(dd.set)];
          for (const auto& [q, layers] : nl.exp_exec) {
            const std::int64_t bytes = list_bytes(layers, 1, dd.dim);
            if (bytes > 0) {
              neighbors.insert(q);
              m1 = std::max(m1, bytes);
              any_exec = true;
            }
          }
          for (const auto& [q, layers] : nl.exp_nonexec) {
            const std::int64_t bytes = list_bytes(layers, 1, dd.dim);
            if (bytes > 0) {
              neighbors.insert(q);
              m1 = std::max(m1, bytes);
              any_nonexec = true;
            }
          }
        }
        p_l = static_cast<int>(neighbors.size());
        classes = (any_exec ? 1 : 0) + (any_nonexec ? 1 : 0);
      }

      const std::int64_t s_core = lay.core_count(1);
      std::int64_t s_halo = lay.num_owned - s_core;
      if (exec_halo) {
        const auto [b, e] = lay.exec_layer(1);
        s_halo += e - b;
      }
      const std::int64_t d_l = static_cast<std::int64_t>(exch.size());
      const std::int64_t mpn = d_l * classes;
      r_op2_comm += mpn * p_l * m1;
      r_op2_core += s_core;
      r_op2_halo += s_halo;

      LoopTerms& lt = out.op2_terms[static_cast<std::size_t>(l)];
      lt.core_iters = std::max(lt.core_iters, s_core);
      lt.halo_iters = std::max(lt.halo_iters, s_halo);
      lt.d = std::max(lt.d, static_cast<int>(d_l));
      lt.p = std::max(lt.p, p_l);
      lt.m1 = std::max(lt.m1, m1);
      lt.msgs_per_neighbor =
          std::max(lt.msgs_per_neighbor, static_cast<int>(mpn));
    }

    // ---- CA quantities. The exec-halo side uses the sparse-tiling
    // slice (the same needed-iteration lists the executor runs), so the
    // model components describe what actually executes.
    const std::vector<LIdxVec> exec_lists =
        core::needed_exec_lists(mesh, rp, plan.depth, spec, analysis);
    std::int64_t r_ca_core = 0, r_ca_halo = 0;
    for (int l = 0; l < n; ++l) {
      const core::LoopSpec& loop = spec.loops[static_cast<std::size_t>(l)];
      const halo::SetLayout& lay =
          rp.sets[static_cast<std::size_t>(loop.set)];
      const std::int64_t s_core =
          lay.core_count(analysis.shrink[static_cast<std::size_t>(l)]);
      std::int64_t s_halo = lay.num_owned - s_core;
      s_halo += static_cast<std::int64_t>(
          exec_lists[static_cast<std::size_t>(l)].size());
      r_ca_core += s_core;
      r_ca_halo += s_halo;
      LoopTerms& lt = out.ca_terms.loops[static_cast<std::size_t>(l)];
      lt.core_iters = std::max(lt.core_iters, s_core);
      lt.halo_iters = std::max(lt.halo_iters, s_halo);
    }

    // Grouped message: per-neighbour totals over the stale sync dats
    // (the same filter the CA executor's dirty bits apply).
    std::map<rank_t, std::int64_t> grouped;
    for (const core::DatSync& s : analysis.syncs) {
      if (initially_stale.count(s.dat) == 0) continue;
      const mesh::DatDef& dd = mesh.dat(s.dat);
      const halo::NeighborLists& nl =
          rp.lists[static_cast<std::size_t>(dd.set)];
      for (const auto* tab : {&nl.exp_exec, &nl.exp_nonexec}) {
        for (const auto& [q, layers] : *tab) {
          const std::int64_t bytes = list_bytes(layers, s.depth, dd.dim);
          if (bytes > 0) grouped[q] += bytes;
        }
      }
    }
    std::int64_t m_r = 0;
    for (const auto& [q, bytes] : grouped) m_r = std::max(m_r, bytes);
    const int p = static_cast<int>(grouped.size());

    out.op2_comm_bytes = std::max(out.op2_comm_bytes, r_op2_comm);
    out.op2_core = std::max(out.op2_core, r_op2_core);
    out.op2_halo = std::max(out.op2_halo, r_op2_halo);
    out.op2_total_iters =
        std::max(out.op2_total_iters, r_op2_core + r_op2_halo);
    out.ca_total_iters =
        std::max(out.ca_total_iters, r_ca_core + r_ca_halo);
    out.ca_comm_bytes = std::max(
        out.ca_comm_bytes, static_cast<std::int64_t>(p) * m_r);
    out.ca_core = std::max(out.ca_core, r_ca_core);
    out.ca_halo = std::max(out.ca_halo, r_ca_halo);
    out.ca_terms.p = std::max(out.ca_terms.p, p);
    out.ca_terms.m_r = std::max(out.ca_terms.m_r, m_r);
  }

  return out;
}

void apply_kernel_costs(const core::ChainSpec& spec,
                        const std::map<std::string, double>& host_g,
                        double compute_scale, ChainComponents* comps) {
  OP2CA_REQUIRE(comps != nullptr, "apply_kernel_costs: null components");
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const auto it = host_g.find(spec.loops[l].name);
    OP2CA_REQUIRE(it != host_g.end(),
                  "apply_kernel_costs: no calibrated cost for loop '" +
                      spec.loops[l].name + "'");
    const double g = it->second * compute_scale;
    comps->op2_terms[l].g = g;
    comps->ca_terms.loops[l].g = g;
  }
}

}  // namespace op2ca::model
