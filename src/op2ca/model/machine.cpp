#include "op2ca/model/machine.hpp"

#include "op2ca/util/error.hpp"

namespace op2ca::model {

Machine archer2() {
  Machine m;
  m.name = "archer2";
  m.net.name = "slingshot";
  // Per-message halo-exchange latency: Slingshot MPI pingpong class,
  // plus a small per-message host overhead for MPI matching/progress
  // with 128 ranks per node sharing two NICs.
  m.net.latency_s = 2.0e-6;
  m.net.per_message_overhead_s = 4.0e-6;
  m.net.bandwidth_Bps = 12.5e9;    // 100 Gb/s per direction per NIC.
  m.net.pack_bandwidth_Bps = 35e9; // streaming chunk-memcpy class.
  // Slingshot is provisioned 2 x 100 Gb/s per node: two rails a rank can
  // stripe large messages across. Persistent channels skip the matching/
  // envelope share of the per-message host overhead.
  m.net.net_rails = 2;
  m.net.channel_overhead_s = 1.0e-6;
  // Hierarchy: 2 sockets x 4 NUMA domains x 16 cores; messages that stay
  // inside a NUMA domain or node move at shared-memory latencies.
  m.net.ranks_per_numa = 16;
  m.net.ranks_per_node = 128;
  m.net.numa = {2.0e-7, 50e9, 1};
  m.net.node = {5.0e-7, 25e9, 1};
  m.ranks_per_node = 128;          // 2 x 64 cores, 1 MPI rank per core.
  // An EPYC 7742 core running the production build (AVX2-vectorized
  // flux kernels, -O3) retires these low-arithmetic-intensity kernels
  // ~3x faster than this host's scalar reference build, which is what
  // the calibration measures.
  m.compute_scale = 0.3;
  return m;
}

Machine cirrus_gpu() {
  Machine m;
  m.name = "cirrus";
  m.net.name = "fdr-ib";
  m.net.latency_s = 1.5e-6;        // FDR InfiniBand.
  m.net.bandwidth_Bps = 6.8e9;     // 54.5 Gb/s, single rail.
  m.net.pack_bandwidth_Bps = 25e9;
  // 4 GPUs share one HCA: no striping, but node-local peers exchange
  // over PCIe/NVLink rather than the fabric.
  m.net.ranks_per_node = 4;
  m.net.node = {8.0e-7, 15e9, 1};
  m.ranks_per_node = 4;            // 1 MPI rank per GPU.
  m.is_gpu = true;
  // Staged halo path: D2H copy + H2D copy + kernel-launch overheads per
  // exchange, folded into Lambda (paper Section 3.3).
  m.extra_latency_s = 3.0e-5;
  // One V100 rank does the work of ~60 EPYC cores on memory-bound CFD
  // kernels (900 GB/s HBM2 vs ~15 GB/s per-core share of DDR4), i.e.
  // 0.3/60 of the host-calibrated scalar cost.
  m.compute_scale = 0.3 / 60.0;
  return m;
}

Machine machine_by_name(const std::string& name) {
  if (name == "archer2") return archer2();
  if (name == "cirrus") return cirrus_gpu();
  raise("unknown machine: " + name + " (expected archer2|cirrus)");
}

}  // namespace op2ca::model
