// Kernel-cost calibration: measures per-iteration wall time of each loop
// on this host by running the application once on a single rank, then
// reading the World's metrics. The analytic model scales these host
// costs to the target machine via Machine::compute_scale.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "op2ca/core/runtime.hpp"

namespace op2ca::model {

/// Runs `spmd` on a fresh single-rank World over `mesh` and returns
/// seconds-per-iteration per loop name (wall / (core+halo iterations)),
/// averaged over however many calls the spmd function makes.
std::map<std::string, double> calibrate_loop_costs(
    mesh::MeshDef mesh, const std::function<void(core::Runtime&)>& spmd);

/// Fallback costs (seconds/iteration, host core) when a bench wants to
/// skip the calibration run; roughly a light CFD edge kernel.
double default_host_g();

}  // namespace op2ca::model
